// seer-serve — the open-loop latency service harness (DESIGN.md §12).
//
// Runs a workload config's generator as a long-lived transactional service
// under a scheduling policy and an `open_loop` traffic schedule, and writes
// the JSONL measurement stream run_serve produces (header, periodic
// intervals, one step per swept rate, summary with the saturation knee).
// scripts/process_serve_logs.py turns that stream into summaries and graphs;
// CI gates the deterministic run against bench/baseline_serve.json.
//
// Two backends, selected by --deterministic:
//   real           measure THIS machine: wall-clock arrivals, real threads,
//                  real SoftHtm transactions;
//   deterministic  virtual-time queueing simulation of the same schedule —
//                  byte-identical output for a (config, seed) pair at any
//                  --jobs, which is what makes it CI-gateable.
//
// Exit codes: 0 run completed, 2 usage/config error (including a workload
// config without an `open_loop` section — this tool has no default traffic).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "runtime/policies.hpp"
#include "util/thread_pool.hpp"
#include "workload/registry.hpp"
#include "workload/serve_driver.hpp"

namespace {

using seer::workload::ServeOptions;

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --workload FILE.json [options]\n"
      "\n"
      "Serves the config's generator under its open_loop traffic schedule\n"
      "and writes the JSONL measurement stream to stdout (or --out).\n"
      "\n"
      "  --workload FILE.json   workload config with an open_loop section\n"
      "  --policy NAME          HLE|RTM|SCM|ATS|SGL|Seer|Oracle (default RTM)\n"
      "  --workers N            override the config's service thread count\n"
      "  --deterministic        virtual-time backend (byte-stable output)\n"
      "  --jobs N               deterministic only: parallel rate steps\n"
      "                         (0 = all cores); output bytes are identical\n"
      "  --seed N               arrival/instance RNG seed (default 1)\n"
      "  --rate R               override: serve only this rate (no sweep)\n"
      "  --duration S           override the per-step measured window\n"
      "  --metrics              real mode: runtime counter deltas on\n"
      "                         interval lines (needs SEER_OBS=ON)\n"
      "  --out FILE             write JSONL here instead of stdout\n",
      argv0);
}

[[noreturn]] void die(const std::string& msg) {
  std::fprintf(stderr, "seer-serve: %s\n", msg.c_str());
  std::exit(2);
}

bool parse_policy(const std::string& name, seer::rt::PolicyKind& out) {
  using seer::rt::PolicyKind;
  const PolicyKind kinds[] = {PolicyKind::kHle, PolicyKind::kRtm,
                              PolicyKind::kScm, PolicyKind::kAts,
                              PolicyKind::kSgl, PolicyKind::kSeer,
                              PolicyKind::kOracle};
  for (const PolicyKind k : kinds) {
    if (name == seer::rt::to_string(k)) {
      out = k;
      return true;
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::string workload_path;
  std::string out_path;
  ServeOptions opts;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) die("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--workload") {
      workload_path = next();
    } else if (arg == "--policy") {
      const std::string name = next();
      if (!parse_policy(name, opts.policy.kind)) {
        die("unknown policy \"" + name +
            "\" (known: HLE, RTM, SCM, ATS, SGL, Seer, Oracle)");
      }
    } else if (arg == "--workers") {
      opts.workers_override = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--deterministic") {
      opts.deterministic = true;
    } else if (arg == "--jobs") {
      const long long v = std::atoll(next());
      opts.jobs = v <= 0 ? seer::util::ThreadPool::hardware_jobs()
                         : static_cast<std::size_t>(v);
    } else if (arg == "--seed") {
      opts.seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--rate") {
      opts.rate_override = std::atof(next());
      if (opts.rate_override <= 0.0) die("--rate must be positive");
    } else if (arg == "--duration") {
      opts.duration_override_s = std::atof(next());
      if (opts.duration_override_s <= 0.0) die("--duration must be positive");
    } else if (arg == "--metrics") {
      opts.emit_metrics = true;
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument %s\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }
  if (workload_path.empty()) {
    usage(argv[0]);
    return 2;
  }

  seer::workload::ServeReport report;
  try {
    const seer::workload::Desc desc = seer::workload::resolve(workload_path);
    if (!desc.open_loop) {
      die("workload config " + workload_path +
          " has no \"open_loop\" section — seer-serve needs a traffic "
          "schedule (see bench/workloads/serve_smoke.json)");
    }
    report = seer::workload::run_serve(desc, *desc.open_loop, opts);
  } catch (const seer::workload::ConfigError& e) {
    die(e.what());
  }

  if (out_path.empty()) {
    std::fwrite(report.jsonl.data(), 1, report.jsonl.size(), stdout);
  } else {
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) die("cannot open " + out_path + " for writing");
    std::fwrite(report.jsonl.data(), 1, report.jsonl.size(), f);
    std::fclose(f);
  }

  // Human-readable digest on stderr so stdout stays pure JSONL.
  for (std::size_t i = 0; i < report.steps.size(); ++i) {
    const seer::workload::StepStats& s = report.steps[i];
    std::fprintf(stderr,
                 "step %zu: rate %.0f/s  completed %llu  rejected %.2f%%  "
                 "p50 %.1fus  p99 %.1fus  p999 %.1fus\n",
                 i, s.offered_rate,
                 static_cast<unsigned long long>(s.completed),
                 100.0 * s.rejected_fraction,
                 static_cast<double>(s.p50_ns) / 1000.0,
                 static_cast<double>(s.p99_ns) / 1000.0,
                 static_cast<double>(s.p999_ns) / 1000.0);
  }
  if (report.saturated) {
    std::fprintf(stderr, "saturation knee: %.0f req/s\n", report.knee_rate);
  } else {
    std::fprintf(stderr, "no saturation within the swept rates\n");
  }
  return 0;
}
