// seer-inspect — offline analysis of the bench harness's introspection dumps.
//
// Input: a --snapshots file (bench/runner.cpp write_snapshots_json), which
// holds one flight-recorder dump + simulator ground truth per (cell, seed).
// Optionally the matching --metrics and --trace files from the same run.
//
// Per run it answers the three questions a scheduling investigation starts
// with (DESIGN.md §9):
//   1. WHERE do aborts come from — per-pair attribution from the final model
//      snapshot (the merged Alg. 3 matrices with derived probabilities);
//   2. IS the inferred lock scheme any good — scored against the simulator's
//      exact conflict ground truth: edges with no observed conflict behind
//      them (false serialization) and significant conflict pairs the scheme
//      leaves uncovered (missed conflicts);
//   3. DID the hill climber converge — move/direction-flip counts, box-edge
//      saturation, and the capture timestamp after which (Th1, Th2) stopped
//      changing.
// Plus the flight recorder's anomaly episodes (abort storms, SGL storms)
// and, with --trace, the sink's drop accounting (a truncated trace is a
// suffix of reality and deserves a loud warning).
//
// A second, unrelated mode rides along because this is the one always-built
// CLI that links the workload registry: --validate-workload FILE.json checks
// a generator config (DESIGN.md §11) without running anything — exit 0 with
// a one-line summary when it resolves, exit 2 with the registry's diagnostic
// (naming the offending key) when it does not. CI and the config negative
// tests call this instead of paying for a bench run.
//
// Exit codes: 0 analysis ran, 2 usage/parse error. Runs whose flight dump is
// empty (SEER_OBS=OFF builds) are reported as such, not treated as errors.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "util/json.hpp"
#include "workload/registry.hpp"

namespace {

using seer::util::json::Value;
using seer::util::json::parse_file;

struct CliOptions {
  std::string snapshots_path;
  std::string metrics_path;
  std::string trace_path;
  std::size_t top_pairs = 5;        // abort-attribution rows per run
  double gt_threshold = 0.01;       // conflicts per commit of the victim type
  double stable_eps = 1e-9;         // (Th1, Th2) change below this = stable
};

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s SNAPSHOTS.json [--metrics PATH] [--trace PATH]\n"
               "          [--pairs N] [--gt-threshold F] [--stable-eps F]\n"
               "       %s --validate-workload CONFIG.json\n"
               "\n"
               "Analyzes the model-introspection dump a bench binary wrote with\n"
               "--snapshots: per-pair abort attribution, lock-scheme quality vs\n"
               "the simulator's conflict ground truth, and hill-climber\n"
               "convergence. --metrics/--trace add counter headlines and trace\n"
               "drop accounting from the same run.\n"
               "--validate-workload checks a generator config against the\n"
               "registry (exit 0 valid, exit 2 with the offending key named).\n",
               argv0, argv0);
}

CliOptions parse_cli(int argc, char** argv) {
  CliOptions o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--validate-workload") {
      // Terminal mode: resolve the config and report, nothing else runs.
      const std::string path = next();
      try {
        const seer::workload::Desc desc = seer::workload::from_config(path);
        const auto wl = desc.make(2);
        std::printf("OK: %s — generator \"%s\", %zu tx types, "
                    "%llu txs/thread at full scale\n",
                    path.c_str(), desc.name.c_str(), wl->n_types(),
                    static_cast<unsigned long long>(desc.bench_txs_per_thread));
        std::exit(0);
      } catch (const seer::workload::ConfigError& e) {
        std::fprintf(stderr, "%s\n", e.what());
        std::exit(2);
      }
    } else if (arg == "--metrics") {
      o.metrics_path = next();
    } else if (arg == "--trace") {
      o.trace_path = next();
    } else if (arg == "--pairs") {
      o.top_pairs = static_cast<std::size_t>(std::atoi(next()));
    } else if (arg == "--gt-threshold") {
      o.gt_threshold = std::atof(next());
    } else if (arg == "--stable-eps") {
      o.stable_eps = std::atof(next());
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      std::exit(0);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      std::exit(2);
    } else if (o.snapshots_path.empty()) {
      o.snapshots_path = arg;
    } else {
      std::fprintf(stderr, "unexpected argument %s\n", arg.c_str());
      std::exit(2);
    }
  }
  if (o.snapshots_path.empty()) {
    usage(argv[0]);
    std::exit(2);
  }
  return o;
}

Value load_or_die(const std::string& path) {
  std::string err;
  auto v = parse_file(path, &err);
  if (!v.has_value()) {
    std::fprintf(stderr, "seer-inspect: %s: %s\n", path.c_str(), err.c_str());
    std::exit(2);
  }
  return std::move(*v);
}

// ---------------------------------------------------------------------------
// 1. Abort attribution: top pairs of the final snapshot's merged matrices.

struct PairRow {
  std::uint64_t x = 0;
  std::uint64_t y = 0;
  std::uint64_t aborts = 0;
  std::uint64_t commits = 0;
  double p_cond = 0.0;
  double p_conj = 0.0;
};

void report_attribution(const Value& snap, std::size_t top) {
  const Value* pairs = snap.find("pairs");
  if (pairs == nullptr || !pairs->is_array() || pairs->array.empty()) {
    std::printf("  abort attribution: no pair evidence recorded\n");
    return;
  }
  std::vector<PairRow> rows;
  rows.reserve(pairs->array.size());
  for (const Value& p : pairs->array) {
    PairRow r;
    r.x = p.u64("x");
    r.y = p.u64("y");
    r.aborts = p.u64("aborts");
    r.commits = p.u64("commits");
    r.p_cond = p.num("p_cond");
    r.p_conj = p.num("p_conj");
    rows.push_back(r);
  }
  std::stable_sort(rows.begin(), rows.end(), [](const PairRow& a, const PairRow& b) {
    if (a.p_conj != b.p_conj) return a.p_conj > b.p_conj;
    return a.aborts > b.aborts;
  });
  std::printf("  abort attribution (top %zu of %zu pairs, by P(abort ∩ concurrent)):\n",
              std::min(top, rows.size()), rows.size());
  std::printf("    victim aggressor    aborts   commits    p_cond    p_conj\n");
  for (std::size_t i = 0; i < rows.size() && i < top; ++i) {
    const PairRow& r = rows[i];
    std::printf("    %6llu %9llu %9llu %9llu  %8.6f  %8.6f\n",
                static_cast<unsigned long long>(r.x),
                static_cast<unsigned long long>(r.y),
                static_cast<unsigned long long>(r.aborts),
                static_cast<unsigned long long>(r.commits), r.p_cond, r.p_conj);
  }
}

// ---------------------------------------------------------------------------
// 2. Scheme quality vs simulator ground truth.

void report_scheme_quality(const Value& run, double gt_threshold) {
  const Value* scheme = run.find("final_scheme");
  const Value* gt = run.find("ground_truth");
  if (scheme == nullptr || !scheme->is_array() || gt == nullptr ||
      gt->find("n_types") == nullptr) {
    std::printf("  scheme quality: no ground truth in dump\n");
    return;
  }
  const std::size_t n = gt->u64("n_types");
  if (n == 0) {
    std::printf("  scheme quality: empty type universe\n");
    return;
  }
  std::vector<std::uint64_t> conflicts(n * n, 0);  // victim-major
  if (const Value* cs = gt->find("conflicts"); cs != nullptr && cs->is_array()) {
    for (const Value& c : cs->array) {
      const std::uint64_t x = c.u64("x");
      const std::uint64_t y = c.u64("y");
      if (x < n && y < n) conflicts[x * n + y] = c.u64("count");
    }
  }
  std::vector<std::uint64_t> commits_by_type(n, 0);
  if (const Value* ct = gt->find("commits_by_type");
      ct != nullptr && ct->is_array() && ct->array.size() == n) {
    for (std::size_t t = 0; t < n; ++t) commits_by_type[t] = ct->array[t].as_u64();
  }

  // Scheme edges as an undirected "serializes (x, y)" relation: x acquiring
  // y's lock (or vice versa) prevents their concurrent execution. A self
  // edge (x in its own row) serializes same-type transactions and counts
  // like any other.
  std::vector<char> covered(n * n, 0);
  std::size_t edges = 0;
  std::size_t false_serial = 0;
  for (std::size_t x = 0; x < scheme->array.size() && x < n; ++x) {
    const Value& row = scheme->array[x];
    if (!row.is_array()) continue;
    for (const Value& owner : row.array) {
      const std::uint64_t y = owner.as_u64();
      if (y >= n) continue;
      if (covered[x * n + y] != 0) continue;  // count each unordered pair once
      covered[x * n + y] = 1;
      covered[y * n + x] = 1;
      ++edges;
      // Ground truth saw NO conflict in either direction: this edge
      // serializes types that never actually clashed.
      if (conflicts[x * n + y] == 0 && conflicts[y * n + x] == 0) ++false_serial;
    }
  }

  // Significant ground-truth pairs the scheme leaves unserialized. A pair is
  // significant when the victim suffered at least gt_threshold conflicts per
  // commit of its type — rare clashes are noise the scheme SHOULD ignore.
  std::size_t significant = 0;
  std::size_t missed = 0;
  for (std::size_t v = 0; v < n; ++v) {
    for (std::size_t a = 0; a < n; ++a) {
      const std::uint64_t c = conflicts[v * n + a];
      if (c == 0 || commits_by_type[v] == 0) continue;
      const double rate =
          static_cast<double>(c) / static_cast<double>(commits_by_type[v]);
      if (rate < gt_threshold) continue;
      ++significant;
      if (covered[v * n + a] == 0) ++missed;
    }
  }

  std::printf("  scheme quality vs ground truth (threshold %g conflicts/commit):\n",
              gt_threshold);
  std::printf("    edges %zu, false serializations %zu", edges, false_serial);
  if (edges > 0) {
    std::printf(" (%.1f%%)", 100.0 * static_cast<double>(false_serial) /
                                 static_cast<double>(edges));
  }
  std::printf("\n    significant conflict pairs %zu, missed by scheme %zu",
              significant, missed);
  if (significant > 0) {
    std::printf(" (%.1f%%)", 100.0 * static_cast<double>(missed) /
                                 static_cast<double>(significant));
  }
  std::printf("\n");
}

// ---------------------------------------------------------------------------
// 3. Hill-climber convergence across the retained snapshots.

void report_climber(const Value& flight, double stable_eps) {
  const Value* snaps = flight.find("snapshots");
  if (snaps == nullptr || !snaps->is_array() || snaps->array.size() < 2) {
    std::printf("  climber: too few snapshots for a trajectory\n");
    return;
  }
  double prev_x = 0.0;
  double prev_y = 0.0;
  double prev_dx = 0.0;
  double prev_dy = 0.0;
  bool have_prev = false;
  std::size_t moves = 0;
  std::size_t flips = 0;
  std::size_t edge_hits = 0;
  std::uint64_t stable_since = 0;  // `now` of the last observed change
  std::uint64_t last_epochs = 0;
  for (const Value& s : snaps->array) {
    const Value* climber = s.find("climber");
    const Value* cur = climber != nullptr ? climber->find("cur") : nullptr;
    if (cur == nullptr || !cur->is_array() || cur->array.size() != 2) continue;
    const double x = cur->array[0].number;
    const double y = cur->array[1].number;
    if (climber != nullptr) last_epochs = climber->u64("epochs");
    // The climber's box is [0, 1]^2 (HillClimberConfig defaults); sitting on
    // an edge means the step kept clamping — the optimum may lie outside.
    if (x <= 0.0 || x >= 1.0 || y <= 0.0 || y >= 1.0) ++edge_hits;
    if (have_prev) {
      const double dx = x - prev_x;
      const double dy = y - prev_y;
      if (std::fabs(dx) > stable_eps || std::fabs(dy) > stable_eps) {
        ++moves;
        stable_since = s.u64("now");
        if ((dx > 0 && prev_dx < 0) || (dx < 0 && prev_dx > 0) ||
            (dy > 0 && prev_dy < 0) || (dy < 0 && prev_dy > 0)) {
          ++flips;
        }
        prev_dx = dx;
        prev_dy = dy;
      }
    }
    prev_x = x;
    prev_y = y;
    have_prev = true;
  }
  const char* verdict = "stable";
  if (moves == 0) {
    verdict = "never moved";
  } else if (flips * 2 >= moves) {
    verdict = "oscillating";
  } else if (edge_hits * 2 >= snaps->array.size()) {
    verdict = "saturated at box edge";
  }
  std::printf("  climber: %zu moves, %zu direction flips, %zu/%zu captures on "
              "box edge, %llu epochs — %s",
              moves, flips, edge_hits, snaps->array.size(),
              static_cast<unsigned long long>(last_epochs), verdict);
  if (moves > 0) {
    std::printf(" (last move at t=%llu)",
                static_cast<unsigned long long>(stable_since));
  }
  std::printf("\n    final (Th1, Th2) = (%.6f, %.6f)\n", prev_x, prev_y);
}

void report_anomalies(const Value& flight) {
  const Value* anomalies = flight.find("anomalies");
  if (anomalies == nullptr || !anomalies->is_array() || anomalies->array.empty()) {
    std::printf("  anomalies: none\n");
    return;
  }
  std::printf("  anomalies: %zu episode(s)\n", anomalies->array.size());
  for (const Value& a : anomalies->array) {
    const Value* open = a.find("open");
    std::printf("    %s: rebuilds %llu..%llu, t %llu..%llu, peak rate %.3f%s\n",
                std::string(a.str("kind", "?")).c_str(),
                static_cast<unsigned long long>(a.u64("start_rebuild")),
                static_cast<unsigned long long>(a.u64("end_rebuild")),
                static_cast<unsigned long long>(a.u64("start_now")),
                static_cast<unsigned long long>(a.u64("end_now")),
                a.num("peak_rate"),
                open != nullptr && open->is_bool() && open->boolean
                    ? " (still open at end of run)"
                    : "");
  }
}

// ---------------------------------------------------------------------------
// Companion files.

void report_metrics(const Value& metrics_doc, const Value& run) {
  const Value* results = metrics_doc.find("results");
  if (results == nullptr || !results->is_array()) return;
  for (const Value& rec : results->array) {
    if (rec.str("workload") != run.str("workload") ||
        rec.str("policy") != run.str("policy") ||
        rec.u64("threads") != run.u64("threads") ||
        rec.u64("seed") != run.u64("seed")) {
      continue;
    }
    const Value* m = rec.find("metrics");
    const Value* counters = m != nullptr ? m->find("counters") : nullptr;
    if (counters == nullptr || !counters->is_object()) return;
    std::printf("  metrics:");
    bool any = false;
    for (const auto& [name, v] : counters->object) {
      // htm.* carries the adaptive read-tracking telemetry (DESIGN.md §10):
      // promotion counts plus the sig_only/exact split of capacity aborts,
      // which attributes a capacity regression to the tier that raised it.
      if (name.rfind("seer.", 0) != 0 && name.rfind("sim.", 0) != 0 &&
          name.rfind("htm.", 0) != 0) {
        continue;
      }
      std::printf(" %s=%llu", name.c_str(),
                  static_cast<unsigned long long>(v.as_u64()));
      any = true;
    }
    if (!any) std::printf(" (no seer.*/sim.*/htm.* counters)");
    std::printf("\n");
    return;
  }
  std::printf("  metrics: no matching record in --metrics file\n");
}

void report_trace(const Value& trace_doc) {
  std::printf("trace:\n");
  if (const Value* meta = trace_doc.find("seerMeta");
      meta != nullptr && meta->is_object()) {
    const std::uint64_t dropped = meta->u64("dropped");
    std::printf("  emitted %llu, dropped %llu\n",
                static_cast<unsigned long long>(meta->u64("emitted")),
                static_cast<unsigned long long>(dropped));
    if (dropped > 0) {
      std::printf("  WARNING: trace ring overflowed — per-thread drops:");
      if (const Value* per = meta->find("droppedPerThread");
          per != nullptr && per->is_array()) {
        for (std::size_t t = 0; t < per->array.size(); ++t) {
          std::printf(" t%zu=%llu", t,
                      static_cast<unsigned long long>(per->array[t].as_u64()));
        }
      }
      std::printf("\n");
    }
  } else {
    std::printf("  no seerMeta block (older trace format?)\n");
  }
  if (const Value* events = trace_doc.find("traceEvents");
      events != nullptr && events->is_array()) {
    // Count retained events by name (the B/E pairing is irrelevant here).
    std::vector<std::pair<std::string, std::uint64_t>> counts;
    for (const Value& e : events->array) {
      const std::string name(e.str("name"));
      bool found = false;
      for (auto& [n, c] : counts) {
        if (n == name) {
          ++c;
          found = true;
          break;
        }
      }
      if (!found) counts.emplace_back(name, 1);
    }
    std::printf("  retained events:");
    for (const auto& [n, c] : counts) {
      std::printf(" %s=%llu", n.c_str(), static_cast<unsigned long long>(c));
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions opts = parse_cli(argc, argv);
  const Value doc = load_or_die(opts.snapshots_path);

  const std::uint64_t version = doc.u64("version");
  if (version != 1) {
    std::fprintf(stderr, "seer-inspect: unsupported snapshot version %llu\n",
                 static_cast<unsigned long long>(version));
    return 2;
  }
  const Value* results = doc.find("results");
  if (results == nullptr || !results->is_array()) {
    std::fprintf(stderr, "seer-inspect: no \"results\" array in %s\n",
                 opts.snapshots_path.c_str());
    return 2;
  }

  std::printf("seer-inspect: %s — exhibit \"%s\", %zu run(s)\n",
              opts.snapshots_path.c_str(),
              std::string(doc.str("exhibit", "?")).c_str(),
              results->array.size());

  Value metrics_doc;
  bool have_metrics = false;
  if (!opts.metrics_path.empty()) {
    metrics_doc = load_or_die(opts.metrics_path);
    have_metrics = true;
  }

  for (const Value& run : results->array) {
    std::printf("\nrun: workload=%s policy=%s threads=%llu seed=%llu\n",
                std::string(run.str("workload", "?")).c_str(),
                std::string(run.str("policy", "?")).c_str(),
                static_cast<unsigned long long>(run.u64("threads")),
                static_cast<unsigned long long>(run.u64("seed")));
    const Value* flight = run.find("flight");
    if (flight == nullptr || !flight->is_object() || flight->object.empty()) {
      std::printf("  flight recorder: empty dump (SEER_OBS=OFF build, or a "
                  "non-Seer policy)\n");
    } else {
      std::printf("  flight recorder: %llu captured, %llu overwritten\n",
                  static_cast<unsigned long long>(flight->u64("captured")),
                  static_cast<unsigned long long>(flight->u64("dropped")));
      report_anomalies(*flight);
      const Value* snaps = flight->find("snapshots");
      if (snaps != nullptr && snaps->is_array() && !snaps->array.empty()) {
        report_attribution(snaps->array.back(), opts.top_pairs);
        report_climber(*flight, opts.stable_eps);
      } else {
        std::printf("  no snapshots retained\n");
      }
    }
    report_scheme_quality(run, opts.gt_threshold);
    if (have_metrics) report_metrics(metrics_doc, run);
  }

  if (!opts.trace_path.empty()) {
    std::printf("\n");
    report_trace(load_or_die(opts.trace_path));
  }
  return 0;
}
