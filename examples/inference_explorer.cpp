// inference_explorer — look inside Seer's probabilistic inference.
//
// Runs one simulated experiment (workload and thread count from the command
// line) under Seer and dumps everything the scheduler knows at the end:
// the merged commit/abort matrices, the conditional and conjunctive
// probabilities of Alg. 5, the self-tuned thresholds, and the resulting
// locking scheme — annotated with the workload's actual atomic-block names.
//
//   usage: inference_explorer [workload=intruder] [threads=8] [txs=4000]
#include <cstdio>
#include <cstdlib>

#include "core/probability.hpp"
#include "sim/machine.hpp"
#include "stamp/workloads.hpp"

using namespace seer;

int main(int argc, char** argv) {
  const std::string workload = argc > 1 ? argv[1] : "intruder";
  const std::size_t threads = argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 8;
  const std::uint64_t txs = argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 4000;

  sim::MachineConfig cfg;
  cfg.n_threads = threads;
  cfg.txs_per_thread = txs;
  cfg.policy.kind = rt::PolicyKind::kSeer;
  cfg.seed = 42;

  std::unique_ptr<sim::Workload> wl;
  try {
    wl = stamp::make_workload(workload, threads);
  } catch (const std::out_of_range&) {
    std::fprintf(stderr, "unknown workload '%s'; available:", workload.c_str());
    for (const auto& info : stamp::all_workloads()) {
      std::fprintf(stderr, " %s", info.name.c_str());
    }
    std::fprintf(stderr, "\n");
    return 2;
  }

  sim::Machine machine(cfg, std::move(wl));
  const sim::MachineStats stats = machine.run();
  core::SeerScheduler* seer = machine.policy_shared().seer();

  std::printf("workload %s, %zu threads, %llu txs/thread -> speedup %.2f\n",
              workload.c_str(), threads, static_cast<unsigned long long>(txs),
              stats.speedup());
  std::printf("commit modes:");
  for (int m = 0; m < static_cast<int>(rt::CommitMode::kModeCount); ++m) {
    const auto mode = static_cast<rt::CommitMode>(m);
    if (stats.mode_fraction(mode) > 0.0005) {
      std::printf("  [%s %.1f%%]", rt::to_string(mode), 100.0 * stats.mode_fraction(mode));
    }
  }
  std::printf("\naborts per commit: %.2f   (conflict %llu / capacity %llu / "
              "explicit %llu / other %llu)\n\n",
              static_cast<double>(stats.aborts()) / static_cast<double>(stats.commits),
              static_cast<unsigned long long>(stats.aborts_by_cause[0]),
              static_cast<unsigned long long>(stats.aborts_by_cause[1]),
              static_cast<unsigned long long>(stats.aborts_by_cause[2]),
              static_cast<unsigned long long>(stats.aborts_by_cause[3]));

  const core::GlobalStats g = seer->merged_stats();
  const core::ProbabilityModel prob(g);
  const auto& workload_ref = machine.workload();
  const auto n = static_cast<core::TxTypeId>(g.n_types);

  std::printf("merged statistics (a=aborts of x with y active, c=commits):\n");
  for (core::TxTypeId x = 0; x < n; ++x) {
    std::printf("  %-18s e=%-9llu", workload_ref.type_name(x).c_str(),
                static_cast<unsigned long long>(g.execs(x)));
    for (core::TxTypeId y = 0; y < n; ++y) {
      std::printf("  | vs %-12s a=%-8llu c=%-8llu", workload_ref.type_name(y).c_str(),
                  static_cast<unsigned long long>(g.abort(x, y)),
                  static_cast<unsigned long long>(g.commit(x, y)));
    }
    std::printf("\n");
  }

  std::printf("\nAlg. 5 probabilities:\n");
  std::printf("  %-18s", "P(x ab | x||y)");
  for (core::TxTypeId y = 0; y < n; ++y) {
    std::printf("  %12s", workload_ref.type_name(y).c_str());
  }
  std::printf("\n");
  for (core::TxTypeId x = 0; x < n; ++x) {
    std::printf("  %-18s", workload_ref.type_name(x).c_str());
    for (core::TxTypeId y = 0; y < n; ++y) {
      std::printf("  %6.3f/%5.3f", prob.conditional_abort(x, y),
                  prob.conjunctive_abort(x, y));
    }
    std::printf("   (cond/conj)\n");
  }

  std::printf("\nself-tuned thresholds: Th1=%.3f Th2=%.3f  (%llu rebuilds, %llu tuning epochs)\n",
              stats.final_params.th1, stats.final_params.th2,
              static_cast<unsigned long long>(stats.scheme_rebuilds),
              static_cast<unsigned long long>(seer->tuning_epochs()));

  std::printf("\ninferred locking scheme (locksToAcquire):\n");
  for (core::TxTypeId x = 0; x < n; ++x) {
    std::printf("  %-18s ->", workload_ref.type_name(x).c_str());
    const auto& row = stats.final_scheme[static_cast<std::size_t>(x)];
    if (row.empty()) std::printf(" (runs free)");
    for (core::TxTypeId y : row) std::printf(" L[%s]", workload_ref.type_name(y).c_str());
    std::printf("\n");
  }
  return 0;
}
