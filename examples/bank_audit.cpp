// bank_audit — the classic TM motivating scenario, on real threads.
//
// Two atomic blocks with very different profiles run concurrently:
//   * `transfer` — short, touches two random accounts (low conflict);
//   * `audit`    — long, reads EVERY account (conflicts with every
//                  concurrent transfer, and is the repeat-abort victim a
//                  best-effort HTM starves: every committing transfer kills
//                  the in-flight audit).
//
// This is exactly the pattern Seer's fine-grained serialization exists for:
// the scheduler learns that audits abort because of transfers and makes
// audits take the transfer lock, instead of every audit burning its retry
// budget and serializing the whole bank behind the global lock.
//
// The example compares RTM vs Seer on the same workload and prints, for
// each, how audits ultimately committed.
#include <cstdio>
#include <thread>
#include <vector>

#include "htm/soft_htm.hpp"
#include "runtime/threaded_executor.hpp"
#include "util/rng.hpp"

using namespace seer;

namespace {

constexpr std::size_t kAccounts = 192;
constexpr std::uint64_t kInitialBalance = 1000;
constexpr std::size_t kThreads = 4;
constexpr int kOpsPerThread = 12000;

enum TxType : core::TxTypeId { kTransfer = 0, kAudit = 1 };

struct Outcome {
  rt::ExecutorStats stats;
  std::uint64_t audit_failures = 0;
  bool balanced = false;
};

Outcome run_bank(rt::PolicyKind kind) {
  htm::SoftHtm tm;
  rt::PolicyConfig policy;
  policy.kind = kind;
  rt::ThreadedExecutor::Options opts;
  opts.n_threads = kThreads;
  opts.n_types = 2;
  opts.physical_cores = 2;
  rt::ThreadedExecutor exec(tm, policy, opts);

  std::vector<htm::TmWord> accounts(kAccounts);
  for (auto& a : accounts) a.store(kInitialBalance);

  std::vector<std::unique_ptr<rt::ThreadedExecutor::ThreadHandle>> handles;
  for (core::ThreadId t = 0; t < kThreads; ++t) handles.push_back(exec.make_handle(t));

  std::atomic<std::uint64_t> audit_failures{0};
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      util::Xoshiro256 rng(0xB0B + t);
      for (int i = 0; i < kOpsPerThread; ++i) {
        if (i % 64 == 0) {
          (void)handles[t]->run(kAudit, [&](auto& tx) {
            std::uint64_t total = 0;
            for (auto& a : accounts) total += tx.read(a);
            if (total != kAccounts * kInitialBalance) {
              audit_failures.fetch_add(1);
            }
          });
        } else {
          const auto from = rng.below(kAccounts);
          const auto to = (from + 1 + rng.below(kAccounts - 1)) % kAccounts;
          const std::uint64_t amount = 1 + rng.below(5);
          (void)handles[t]->run(kTransfer, [&](auto& tx) {
            const std::uint64_t f = tx.read(accounts[from]);
            if (f < amount) return;
            tx.write(accounts[from], f - amount);
            tx.write(accounts[to], tx.read(accounts[to]) + amount);
          });
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  Outcome out;
  out.stats = rt::ThreadedExecutor::aggregate(handles);
  out.audit_failures = audit_failures.load();
  std::uint64_t total = 0;
  for (auto& a : accounts) total += a.load();
  out.balanced = (total == kAccounts * kInitialBalance);
  return out;
}

void report(const char* name, const Outcome& o) {
  std::printf("%s:\n", name);
  std::printf("  books balanced: %s, torn audits: %llu\n",
              o.balanced ? "yes" : "NO (BUG)",
              static_cast<unsigned long long>(o.audit_failures));
  std::printf("  commits: %llu, aborts/commit: %.2f\n",
              static_cast<unsigned long long>(o.stats.commits()),
              static_cast<double>(o.stats.aborts()) /
                  static_cast<double>(o.stats.commits()));
  for (int m = 0; m < static_cast<int>(rt::CommitMode::kModeCount); ++m) {
    const auto mode = static_cast<rt::CommitMode>(m);
    if (o.stats.mode_fraction(mode) > 0.0005) {
      std::printf("  %-22s %6.2f%%\n", rt::to_string(mode),
                  100.0 * o.stats.mode_fraction(mode));
    }
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("bank with %zu accounts, %zu threads, transfers + full audits\n\n",
              kAccounts, kThreads);
  const Outcome rtm = run_bank(rt::PolicyKind::kRtm);
  report("RTM (plain retry + global-lock fallback)", rtm);
  const Outcome seer = run_bank(rt::PolicyKind::kSeer);
  report("Seer (probabilistic fine-grained scheduling)", seer);

  const bool ok = rtm.balanced && seer.balanced && rtm.audit_failures == 0 &&
                  seer.audit_failures == 0;
  std::printf("atomicity held under both policies: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
