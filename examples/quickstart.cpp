// Quickstart: protect a shared data structure with Seer-scheduled
// best-effort transactions.
//
// This is the minimal embedding of the library on real threads:
//   1. create a SoftHtm (on TSX silicon you would enable SEER_ENABLE_TSX),
//   2. create a ThreadedExecutor with PolicyKind::kSeer,
//   3. give every thread a ThreadHandle,
//   4. wrap each atomic block in handle.run(<static block id>, body).
//
// The demo runs a tiny key-value store: `put` transactions contend on hot
// buckets, `sum` transactions scan everything. Seer learns which blocks
// contend and schedules them; the program prints the commit-mode breakdown
// and verifies the data structure stayed consistent.
#include <cstdio>
#include <thread>
#include <vector>

#include "htm/soft_htm.hpp"
#include "runtime/threaded_executor.hpp"
#include "util/rng.hpp"

using namespace seer;

namespace {

constexpr std::size_t kBuckets = 64;
constexpr std::size_t kThreads = 4;
constexpr int kOpsPerThread = 20000;

// Static atomic-block ids — "minimalist compiler support" in the paper is
// exactly this enumeration.
enum TxType : core::TxTypeId { kPut = 0, kSum = 1 };

}  // namespace

int main() {
  htm::SoftHtm tm;

  rt::PolicyConfig policy;
  policy.kind = rt::PolicyKind::kSeer;

  rt::ThreadedExecutor::Options opts;
  opts.n_threads = kThreads;
  opts.n_types = 2;
  opts.physical_cores = 2;

  rt::ThreadedExecutor exec(tm, policy, opts);

  // TM-managed memory is arrays of htm::TmWord.
  std::vector<htm::TmWord> buckets(kBuckets);
  htm::TmWord op_count{0};

  std::vector<std::unique_ptr<rt::ThreadedExecutor::ThreadHandle>> handles;
  for (core::ThreadId t = 0; t < kThreads; ++t) handles.push_back(exec.make_handle(t));

  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      util::Xoshiro256 rng(t + 1);
      for (int i = 0; i < kOpsPerThread; ++i) {
        if (i % 16 == 0) {
          // Atomic block "sum": scan all buckets consistently.
          (void)handles[t]->run(kSum, [&](auto& tx) {
            std::uint64_t total = 0;
            for (auto& b : buckets) total += tx.read(b);
            if (total != tx.read(op_count)) {
              std::fprintf(stderr, "CONSISTENCY VIOLATION\n");
              std::abort();
            }
          });
        } else {
          // Atomic block "put": bump one (skewed) bucket and the op count.
          const std::size_t idx = rng.below(8);  // hot head
          (void)handles[t]->run(kPut, [&](auto& tx) {
            tx.write(buckets[idx], tx.read(buckets[idx]) + 1);
            tx.write(op_count, tx.read(op_count) + 1);
          });
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  // Verify and report.
  std::uint64_t total = 0;
  for (auto& b : buckets) total += b.load();
  std::printf("final state: %llu puts recorded, op_count=%llu -> %s\n",
              static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(op_count.load()),
              total == op_count.load() ? "consistent" : "CORRUPT");

  const rt::ExecutorStats stats = rt::ThreadedExecutor::aggregate(handles);
  std::printf("\ncommit modes across %llu transactions:\n",
              static_cast<unsigned long long>(stats.commits()));
  for (int m = 0; m < static_cast<int>(rt::CommitMode::kModeCount); ++m) {
    const auto mode = static_cast<rt::CommitMode>(m);
    if (stats.mode_fraction(mode) > 0.0) {
      std::printf("  %-22s %6.2f%%\n", rt::to_string(mode),
                  100.0 * stats.mode_fraction(mode));
    }
  }
  std::printf("aborts: %llu (%.2f per commit)\n",
              static_cast<unsigned long long>(stats.aborts()),
              static_cast<double>(stats.aborts()) /
                  static_cast<double>(stats.commits()));

  // Peek at what the scheduler inferred.
  if (core::SeerScheduler* seer = exec.policy_shared().seer()) {
    const auto scheme = seer->scheme();
    std::printf("\ninferred locking scheme (Th1=%.2f, Th2=%.2f, %llu rebuilds):\n",
                seer->params().th1, seer->params().th2,
                static_cast<unsigned long long>(seer->rebuild_count()));
    const char* names[] = {"put", "sum"};
    for (core::TxTypeId x = 0; x < 2; ++x) {
      std::printf("  %s acquires:", names[x]);
      for (core::TxTypeId y : scheme->row(x)) std::printf(" L(%s)", names[y]);
      if (scheme->row(x).empty()) std::printf(" (nothing)");
      std::printf("\n");
    }
  }
  return total == op_count.load() ? 0 : 1;
}
