// policy_faceoff — compare every scheduling policy on one workload.
//
// Thread-count sweep of HLE / RTM / SCM / ATS / SGL / Seer on a chosen
// STAMP stand-in, printing the Figure-3-style speedup curves plus fallback
// rates side by side.
//
//   usage: policy_faceoff [workload=genome] [txs=3000] [seed=7]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "sim/machine.hpp"
#include "stamp/workloads.hpp"

using namespace seer;

int main(int argc, char** argv) {
  const std::string workload = argc > 1 ? argv[1] : "genome";
  const std::uint64_t txs = argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 3000;
  const std::uint64_t seed = argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 7;

  constexpr rt::PolicyKind kPolicies[] = {rt::PolicyKind::kHle, rt::PolicyKind::kRtm,
                                          rt::PolicyKind::kScm, rt::PolicyKind::kAts,
                                          rt::PolicyKind::kSgl, rt::PolicyKind::kSeer};
  constexpr std::size_t kThreads[] = {1, 2, 4, 6, 8};

  try {
    (void)stamp::make_workload(workload, 1);
  } catch (const std::out_of_range&) {
    std::fprintf(stderr, "unknown workload '%s'; available:", workload.c_str());
    for (const auto& info : stamp::all_workloads()) {
      std::fprintf(stderr, " %s", info.name.c_str());
    }
    std::fprintf(stderr, "\n");
    return 2;
  }

  std::printf("workload %s, %llu txs/thread, seed %llu\n\n", workload.c_str(),
              static_cast<unsigned long long>(txs),
              static_cast<unsigned long long>(seed));
  std::printf("speedup vs sequential:\n%-6s", "thr");
  for (auto kind : kPolicies) std::printf("  %8s", rt::to_string(kind));
  std::printf("\n");

  double sgl_at_8[std::size(kPolicies)] = {};
  double abcm_at_8[std::size(kPolicies)] = {};

  for (std::size_t threads : kThreads) {
    std::printf("%-6zu", threads);
    for (std::size_t pi = 0; pi < std::size(kPolicies); ++pi) {
      sim::MachineConfig cfg;
      cfg.n_threads = threads;
      cfg.txs_per_thread = txs;
      cfg.policy.kind = kPolicies[pi];
      cfg.seed = seed;
      const sim::MachineStats s =
          sim::run_machine(cfg, stamp::make_workload(workload, threads));
      std::printf("  %8.2f", s.speedup());
      if (threads == 8) {
        sgl_at_8[pi] = s.mode_fraction(rt::CommitMode::kSglFallback);
        abcm_at_8[pi] =
            static_cast<double>(s.aborts()) / static_cast<double>(s.commits);
      }
    }
    std::printf("\n");
  }

  std::printf("\nat 8 threads:\n%-18s", "SGL fallback %");
  for (std::size_t pi = 0; pi < std::size(kPolicies); ++pi) {
    std::printf("  %8.1f", 100.0 * sgl_at_8[pi]);
  }
  std::printf("\n%-18s", "aborts/commit");
  for (std::size_t pi = 0; pi < std::size(kPolicies); ++pi) {
    std::printf("  %8.2f", abcm_at_8[pi]);
  }
  std::printf("\n");
  return 0;
}
