#include "check/differential.hpp"

#include <cstdio>

#include "util/rng.hpp"

namespace seer::check {

std::vector<std::vector<core::TxTypeId>> scheme_rows(const core::LockScheme& scheme) {
  std::vector<std::vector<core::TxTypeId>> rows(scheme.n_types());
  for (std::size_t x = 0; x < scheme.n_types(); ++x) {
    const core::LockRow& row = scheme.row(static_cast<core::TxTypeId>(x));
    rows[x].assign(row.begin(), row.end());
  }
  return rows;
}

void SchedTraceRecorder::on_event(const core::SchedEvent& e) noexcept {
  const std::lock_guard<std::mutex> lk(mu_);
  events_.push_back(e);
}

void SchedTraceRecorder::on_rebuild(std::uint64_t rebuild_index,
                                    const core::InferenceParams& params,
                                    const core::LockScheme& scheme) noexcept {
  const std::lock_guard<std::mutex> lk(mu_);
  decisions_.push_back(SchedDecision{rebuild_index, params, scheme_rows(scheme)});
}

std::vector<core::SchedEvent> SchedTraceRecorder::events() const {
  const std::lock_guard<std::mutex> lk(mu_);
  return events_;
}

std::vector<SchedDecision> SchedTraceRecorder::decisions() const {
  const std::lock_guard<std::mutex> lk(mu_);
  return decisions_;
}

std::vector<SchedDecision> replay_trace(core::SeerScheduler& sched,
                                        const std::vector<core::SchedEvent>& events) {
  SchedTraceRecorder rec;
  sched.set_trace_sink(&rec);
  using Kind = core::SchedEvent::Kind;
  for (const core::SchedEvent& e : events) {
    switch (e.kind) {
      case Kind::kAnnounce: sched.announce(e.thread, e.tx); break;
      case Kind::kClear: sched.clear(e.thread); break;
      case Kind::kAbort: sched.record_abort(e.thread, e.tx); break;
      case Kind::kCommit: sched.record_commit(e.thread, e.tx); break;
      case Kind::kMaybeUpdate: (void)sched.maybe_update(e.thread, e.now); break;
      case Kind::kForceUpdate: sched.force_update(e.now); break;
    }
  }
  sched.set_trace_sink(nullptr);
  return rec.decisions();
}

std::vector<core::SchedEvent> make_synthetic_trace(std::uint64_t seed,
                                                   std::size_t n_threads,
                                                   std::size_t n_types,
                                                   std::size_t n_transactions) {
  using Kind = core::SchedEvent::Kind;
  util::Xoshiro256 rng(seed);
  std::vector<core::SchedEvent> trace;

  // Per-thread lifecycle state: the announced type (kNoTx when idle) and
  // the aborts left before this transaction resolves.
  struct ThreadState {
    core::TxTypeId tx = core::kNoTx;
    int aborts_left = 0;
  };
  std::vector<ThreadState> threads(n_threads);

  std::uint64_t now = 0;
  std::size_t started = 0;
  std::size_t live = 0;
  while (started < n_transactions || live > 0) {
    const auto t = static_cast<core::ThreadId>(rng.below(n_threads));
    ThreadState& st = threads[t];
    now += 1 + rng.below(50);

    if (st.tx == core::kNoTx) {
      if (started >= n_transactions) continue;
      st.tx = static_cast<core::TxTypeId>(rng.below(n_types));
      st.aborts_left = static_cast<int>(rng.below(4));
      ++started;
      ++live;
      trace.push_back({Kind::kAnnounce, t, st.tx, 0});
      // Drivers run maintenance on the start path (DESIGN.md deviation #1).
      trace.push_back({Kind::kMaybeUpdate, t, core::kNoTx, now});
      continue;
    }
    if (st.aborts_left > 0) {
      --st.aborts_left;
      trace.push_back({Kind::kAbort, t, st.tx, 0});
      continue;
    }
    // Resolve: mostly a hardware commit, sometimes an SGL fallback, which
    // clears the announcement without recording a commit (Alg. 2 line 28).
    if (!rng.bernoulli(0.15)) trace.push_back({Kind::kCommit, t, st.tx, 0});
    trace.push_back({Kind::kClear, t, core::kNoTx, 0});
    st.tx = core::kNoTx;
    --live;
  }
  return trace;
}

std::string diff_decisions(const std::vector<SchedDecision>& a,
                           const std::vector<SchedDecision>& b) {
  char buf[160];
  if (a.size() != b.size()) {
    std::snprintf(buf, sizeof(buf), "decision counts differ: %zu vs %zu", a.size(),
                  b.size());
    return buf;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) {
      std::snprintf(buf, sizeof(buf),
                    "decision %zu diverges (rebuild %llu vs %llu, th1 %.6f/%.6f, "
                    "th2 %.6f/%.6f, rows %s)",
                    i, static_cast<unsigned long long>(a[i].rebuild),
                    static_cast<unsigned long long>(b[i].rebuild), a[i].params.th1,
                    b[i].params.th1, a[i].params.th2, b[i].params.th2,
                    a[i].rows == b[i].rows ? "equal" : "differ");
      return buf;
    }
  }
  return "";
}

}  // namespace seer::check
