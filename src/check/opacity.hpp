// Offline opacity / serializability verifier over SoftHtm commit logs.
//
// Memory model (DESIGN.md §7): a word-granularity last-writer store.
// Committed writers are totally ordered by their unique commit_version —
// SoftHtm's global version clock makes the serialization order explicit in
// the log — and a committed read-only transaction serializes immediately
// after the writer whose version equals its begin snapshot. Replaying that
// order against the model, every logged read must observe exactly the value
// its word held at the reader's serialization point. Any mismatch means the
// committed history is not equivalent to a serial one:
//
//   * kStaleRead  — the value is one the word held at an EARLIER version:
//                   a lost update (a read-modify-write built on overwritten
//                   state) or a zombie commit (a transaction that observed
//                   an inconsistent snapshot yet still committed);
//   * kDirtyRead  — the value was NEVER committed to the word by anyone:
//                   the reader saw an aborted transaction's buffered write
//                   or a torn in-flight write-back;
//   * kDuplicateCommitVersion — two writers share a serialization point:
//                   the global clock / stripe-locking protocol is broken.
//
// What passing proves: the committed transactions form a serializable
// word-level history consistent with the TM's own version order, with no
// lost updates, dirty reads, or zombie commits. Opacity's remaining demand
// — that even ABORTED transactions never observe inconsistent snapshots —
// is enforced by SoftHtm's per-read validation, which the fault injector
// and property harness exercise but which by construction leaves no
// committed evidence to replay.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "htm/instrument.hpp"
#include "htm/soft_htm.hpp"

namespace seer::check {

enum class ViolationKind : std::uint8_t {
  kStaleRead,
  kDirtyRead,
  kDuplicateCommitVersion,
};

[[nodiscard]] const char* to_string(ViolationKind k) noexcept;

struct Violation {
  ViolationKind kind = ViolationKind::kStaleRead;
  std::size_t log_index = 0;     // which input log (thread)
  std::size_t record_index = 0;  // which record within it
  std::uint64_t commit_version = 0;
  const void* addr = nullptr;
  std::uint64_t observed = 0;
  std::uint64_t expected = 0;
};

[[nodiscard]] std::string to_string(const Violation& v);

struct OpacityReport {
  std::vector<Violation> violations;
  std::size_t transactions_checked = 0;
  std::size_t reads_checked = 0;
  [[nodiscard]] bool ok() const noexcept { return violations.empty(); }
};

// Word address -> value before the run. Words first touched by a read but
// absent from the snapshot are adopted at their first-read value (an
// unverifiable prefix); pass a full snapshot to make every read checkable.
using MemorySnapshot = std::unordered_map<const void*, std::uint64_t>;

// Convenience: capture `n` contiguous TmWords into `snap` before the run.
void snapshot_words(MemorySnapshot& snap, const htm::TmWord* words, std::size_t n);

// Replays the union of the given per-thread commit logs in serialization
// order and returns every violation found. Call after all recording threads
// have joined.
[[nodiscard]] OpacityReport verify_opacity(const std::vector<const htm::TxLog*>& logs,
                                           const MemorySnapshot& initial = {});

}  // namespace seer::check
