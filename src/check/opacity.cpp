#include "check/opacity.hpp"

#include <algorithm>
#include <cstdio>
#include <unordered_set>

namespace seer::check {

const char* to_string(ViolationKind k) noexcept {
  switch (k) {
    case ViolationKind::kStaleRead: return "stale read (lost update / zombie commit)";
    case ViolationKind::kDirtyRead: return "dirty read (value never committed)";
    case ViolationKind::kDuplicateCommitVersion: return "duplicate commit version";
  }
  return "?";
}

std::string to_string(const Violation& v) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "%s: log %zu record %zu @v%llu word %p observed %llu expected %llu",
                to_string(v.kind), v.log_index, v.record_index,
                static_cast<unsigned long long>(v.commit_version), v.addr,
                static_cast<unsigned long long>(v.observed),
                static_cast<unsigned long long>(v.expected));
  return buf;
}

void snapshot_words(MemorySnapshot& snap, const htm::TmWord* words, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    snap.emplace(&words[i], words[i].load(std::memory_order_relaxed));
  }
}

OpacityReport verify_opacity(const std::vector<const htm::TxLog*>& logs,
                             const MemorySnapshot& initial) {
  OpacityReport report;

  // Flatten and order by serialization point. A writer with version v
  // *produces* state v, so it is checked (against state v-ε) and applied at
  // v; a read-only transaction with snapshot v *consumed* state v and sorts
  // just after the writer that produced it.
  struct Ref {
    std::uint64_t version;
    bool read_only;  // sorts after the same-version writer
    std::size_t log;
    std::size_t rec;
  };
  std::vector<Ref> order;
  for (std::size_t l = 0; l < logs.size(); ++l) {
    for (std::size_t r = 0; r < logs[l]->size(); ++r) {
      const htm::TxRecord& rec = (*logs[l])[r];
      order.push_back(Ref{rec.commit_version, !rec.writer, l, r});
    }
  }
  std::sort(order.begin(), order.end(), [](const Ref& a, const Ref& b) {
    if (a.version != b.version) return a.version < b.version;
    return a.read_only < b.read_only;
  });

  // The model store plus, per word, every value it legitimately held —
  // initial or committed — to tell stale reads from dirty ones.
  MemorySnapshot model = initial;
  std::unordered_map<const void*, std::unordered_set<std::uint64_t>> history;
  for (const auto& [addr, value] : initial) history[addr].insert(value);

  std::uint64_t prev_writer_version = 0;
  bool seen_writer = false;
  for (const Ref& ref : order) {
    const htm::TxRecord& rec = (*logs[ref.log])[ref.rec];
    ++report.transactions_checked;

    if (rec.writer) {
      if (seen_writer && rec.commit_version == prev_writer_version) {
        report.violations.push_back(Violation{ViolationKind::kDuplicateCommitVersion,
                                              ref.log, ref.rec, rec.commit_version,
                                              nullptr, 0, 0});
      }
      prev_writer_version = rec.commit_version;
      seen_writer = true;
    }

    for (const htm::TxRead& rd : rec.reads) {
      ++report.reads_checked;
      const auto it = model.find(rd.addr);
      if (it == model.end()) {
        // Unverifiable prefix: first sighting of a word with no snapshot.
        model.emplace(rd.addr, rd.value);
        history[rd.addr].insert(rd.value);
        continue;
      }
      if (it->second != rd.value) {
        const auto& held = history[rd.addr];
        const ViolationKind kind = held.count(rd.value) != 0
                                       ? ViolationKind::kStaleRead
                                       : ViolationKind::kDirtyRead;
        report.violations.push_back(Violation{kind, ref.log, ref.rec,
                                              rec.commit_version, rd.addr, rd.value,
                                              it->second});
      }
    }

    for (const htm::TxWrite& wr : rec.writes) {
      model[wr.addr] = wr.value;
      history[wr.addr].insert(wr.value);
    }
  }
  return report;
}

}  // namespace seer::check
