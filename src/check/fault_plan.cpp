#include "check/fault_plan.hpp"

namespace seer::check {

FaultPlan::FaultPlan(FaultPlanConfig cfg)
    : cfg_(cfg),
      probabilistic_(cfg.p_conflict + cfg.p_capacity + cfg.p_other > 0.0),
      rng_(cfg.seed) {}

void FaultPlan::force(std::uint64_t attempt, htm::TxOp op, std::uint64_t occurrence,
                      htm::AbortStatus status) {
  forced_.push_back(Forced{attempt, op, occurrence, status});
}

std::optional<htm::AbortStatus> FaultPlan::before_op(htm::TxOp op, std::uint64_t attempt,
                                                     std::uint64_t) noexcept {
  if (attempt != current_attempt_) {
    current_attempt_ = attempt;
    kind_counts_.fill(0);
  }
  const std::uint64_t occurrence = kind_counts_[static_cast<std::size_t>(op)]++;
  ++ops_seen_;

  auto inject = [&](htm::AbortStatus s) -> std::optional<htm::AbortStatus> {
    ++injected_by_cause_[static_cast<std::size_t>(s.cause())];
    return s;
  };

  for (const Forced& f : forced_) {
    if (f.attempt == attempt && f.op == op && f.occurrence == occurrence) {
      return inject(f.status);
    }
  }

  if (probabilistic_) {
    // One draw per operation, spent whether or not a fault fires, so the
    // injection schedule is a pure function of (seed, op stream).
    const double u = rng_.uniform01();
    if (u < cfg_.p_conflict) return inject(htm::AbortStatus::conflict());
    if (u < cfg_.p_conflict + cfg_.p_capacity) {
      return inject(htm::AbortStatus::capacity());
    }
    if (u < cfg_.p_conflict + cfg_.p_capacity + cfg_.p_other) {
      return inject(htm::AbortStatus::other());
    }
  }
  return std::nullopt;
}

std::uint64_t FaultPlan::total_injected() const noexcept {
  std::uint64_t n = 0;
  for (auto c : injected_by_cause_) n += c;
  return n;
}

}  // namespace seer::check
