// Cross-backend differential harness for the SeerScheduler.
//
// Both drivers — the discrete-event simulator and the real-threads executor
// — talk to the scheduler through the same five calls (seer_scheduler.hpp),
// so the scheduler's decisions must be a pure function of the event stream
// it is fed: same trace in, same lock schemes and hill-climber moves out,
// regardless of which backend produced the trace. This harness makes that
// contract executable three ways:
//
//   * capture: a SchedulerTraceSink recording the live event stream and
//     every rebuild decision (scheme rows + thresholds) of a running
//     backend;
//   * replay: feed a captured or synthetic stream into a freshly
//     constructed scheduler and collect the decisions it takes;
//   * diff: report the first divergence between two decision streams.
//
// Live-capture-equals-replay holds for deterministically driven runs (the
// simulator, or a single-thread round-robin over executor handles); under
// free-running threads the recorder still yields *a* consistent
// interleaving, but the racy slab merge at rebuild time may have seen a
// different prefix than the recorded order.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "core/seer_scheduler.hpp"

namespace seer::check {

// One rebuild's outcome: the thresholds in force and the inferred scheme.
struct SchedDecision {
  std::uint64_t rebuild = 0;
  core::InferenceParams params{};
  std::vector<std::vector<core::TxTypeId>> rows;

  friend bool operator==(const SchedDecision& a, const SchedDecision& b) {
    return a.rebuild == b.rebuild && a.params.th1 == b.params.th1 &&
           a.params.th2 == b.params.th2 && a.rows == b.rows;
  }
};

// Flattens a scheme into comparable per-type lock rows.
[[nodiscard]] std::vector<std::vector<core::TxTypeId>> scheme_rows(
    const core::LockScheme& scheme);

// Mutex-guarded recorder, installable on a live scheduler.
class SchedTraceRecorder final : public core::SchedulerTraceSink {
 public:
  void on_event(const core::SchedEvent& e) noexcept override;
  void on_rebuild(std::uint64_t rebuild_index, const core::InferenceParams& params,
                  const core::LockScheme& scheme) noexcept override;

  [[nodiscard]] std::vector<core::SchedEvent> events() const;
  [[nodiscard]] std::vector<SchedDecision> decisions() const;

 private:
  mutable std::mutex mu_;
  std::vector<core::SchedEvent> events_;
  std::vector<SchedDecision> decisions_;
};

// Replays `events` into `sched` (freshly constructed, same SeerConfig as
// the capture) and returns the decisions it takes. Restores the scheduler's
// previous trace sink before returning.
[[nodiscard]] std::vector<SchedDecision> replay_trace(
    core::SeerScheduler& sched, const std::vector<core::SchedEvent>& events);

// Deterministic synthetic trace: `n_transactions` plausible transaction
// lifecycles (announce → aborts* → commit-or-fallback → clear) interleaved
// across threads by a seeded RNG, with designated-thread maintenance calls
// on an advancing clock. The same (seed, shape) always yields the same
// trace, so it can be fed to scheduler instances owned by different
// backends and their decisions compared.
[[nodiscard]] std::vector<core::SchedEvent> make_synthetic_trace(
    std::uint64_t seed, std::size_t n_threads, std::size_t n_types,
    std::size_t n_transactions);

// "" when identical; otherwise a human-readable first divergence.
[[nodiscard]] std::string diff_decisions(const std::vector<SchedDecision>& a,
                                         const std::vector<SchedDecision>& b);

}  // namespace seer::check
