// FaultPlan — deterministic, seeded abort injection for SoftHtm.
//
// Real TSX aborts for reasons the program cannot see: interrupts, capacity
// overflow whose onset shifts with memory layout (Dice et al., "The
// Influence of Malloc Placement on TSX HTM"), and conflicts reported with
// no aggressor identity (the paper's §3 premise). A FaultPlan reproduces
// that hostile environment on demand: install one per ThreadContext (via
// SoftHtm::ThreadContext::set_fault_injector or the ThreadedExecutor handle
// passthrough) and the TM aborts exactly where the plan says, with the
// status the plan says, through the unchanged xbegin/xend interface — the
// scheduler above never knows the abort was synthetic.
//
// Two layers compose:
//   * forced faults pinned to an exact coordinate — "attempt 7 dies of
//     CAPACITY at its 3rd read" — for deterministic unit tests of every
//     abort code;
//   * a seeded probabilistic background — per-operation probabilities of
//     CONFLICT / CAPACITY / OTHER — for property tests. One RNG draw per
//     operation ties the decision stream to the (seed, op stream) pair, so
//     a failing seed replays the identical injection schedule.
//
// A plan is per-context state driven from one thread; it needs and has no
// synchronization.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "htm/instrument.hpp"
#include "util/rng.hpp"

namespace seer::check {

struct FaultPlanConfig {
  // Per-operation probabilities of injecting each abort cause (summed mass
  // must stay <= 1). All zero = forced faults only, no RNG draws.
  double p_conflict = 0.0;
  double p_capacity = 0.0;
  double p_other = 0.0;
  std::uint64_t seed = 1;
};

class FaultPlan final : public htm::FaultInjector {
 public:
  explicit FaultPlan(FaultPlanConfig cfg = {});

  // Pins an abort to the `occurrence`-th operation of kind `op` (0-based,
  // counted within the attempt) of the given 0-based attempt. "The commit"
  // is always (op = kCommit, occurrence = 0).
  void force(std::uint64_t attempt, htm::TxOp op, std::uint64_t occurrence,
             htm::AbortStatus status);

  [[nodiscard]] std::optional<htm::AbortStatus> before_op(
      htm::TxOp op, std::uint64_t attempt, std::uint64_t op_index) noexcept override;

  // Injection census, by htm::AbortCause index.
  [[nodiscard]] std::uint64_t injected(htm::AbortCause c) const noexcept {
    return injected_by_cause_[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] std::uint64_t total_injected() const noexcept;
  [[nodiscard]] std::uint64_t ops_seen() const noexcept { return ops_seen_; }

 private:
  struct Forced {
    std::uint64_t attempt;
    htm::TxOp op;
    std::uint64_t occurrence;
    htm::AbortStatus status;
  };

  FaultPlanConfig cfg_;
  bool probabilistic_;
  util::Xoshiro256 rng_;
  std::vector<Forced> forced_;
  // Occurrence counters for the attempt currently in flight.
  std::uint64_t current_attempt_ = ~0ULL;
  std::array<std::uint64_t, htm::kTxOpCount> kind_counts_{};
  std::array<std::uint64_t, 4> injected_by_cause_{};
  std::uint64_t ops_seen_ = 0;
};

}  // namespace seer::check
