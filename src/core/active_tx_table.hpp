// The active-transactions table (Table 2: `activeTxs`).
//
// One slot per hardware thread. A thread announces the transaction type it
// is about to execute (Alg. 1 line 5) and clears the slot when it finishes
// (Alg. 2 line 32). Slots are single-writer multi-reader registers: the
// paper deliberately uses *no* synchronization here — the whole point of
// Seer is that this imprecise, race-prone snapshot is good enough for
// probabilistic inference. We use relaxed atomics so the C++ memory model
// blesses the same lightweight behaviour.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <vector>

#include "core/types.hpp"
#include "util/cacheline.hpp"

namespace seer::core {

class ActiveTxTable {
 public:
  explicit ActiveTxTable(std::size_t n_threads) : slots_(n_threads) {
    assert(n_threads > 0 && n_threads <= kMaxThreads);
    for (auto& s : slots_) s.value.store(kNoTx, std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t size() const noexcept { return slots_.size(); }

  // Announce that `thread` is executing an instance of `tx`.
  void announce(ThreadId thread, TxTypeId tx) noexcept {
    slots_[thread].value.store(tx, std::memory_order_relaxed);
  }

  // The thread finished its transaction (Alg. 2 line 32).
  void clear(ThreadId thread) noexcept {
    slots_[thread].value.store(kNoTx, std::memory_order_relaxed);
  }

  // What is thread `i` running right now (kNoTx if idle)?
  [[nodiscard]] TxTypeId peek(ThreadId i) const noexcept {
    return slots_[i].value.load(std::memory_order_relaxed);
  }

 private:
  std::vector<util::Padded<std::atomic<TxTypeId>>> slots_;
};

}  // namespace seer::core
