#include "core/lock_scheme.hpp"

#include <algorithm>

#include "util/gaussian.hpp"
#include "util/stats.hpp"

namespace seer::core {

void LockScheme::add(TxTypeId x, TxTypeId y) {
  LockRow& r = rows_[static_cast<std::size_t>(x)];
  auto pos = std::lower_bound(r.begin(), r.end(), y);
  if (pos != r.end() && *pos == y) return;  // already present
  if (r.full()) return;                     // best-effort cap
  r.push_back(y);                           // grow, then rotate into place
  std::rotate(pos, r.end() - 1, r.end());
}

bool LockScheme::empty() const noexcept {
  return std::all_of(rows_.begin(), rows_.end(),
                     [](const LockRow& r) { return r.empty(); });
}

std::size_t LockScheme::edge_count() const noexcept {
  std::size_t n = 0;
  for (const LockRow& r : rows_) n += r.size();
  return n;
}

std::vector<std::vector<TxTypeId>> LockScheme::to_rows() const {
  std::vector<std::vector<TxTypeId>> out(rows_.size());
  for (std::size_t x = 0; x < rows_.size(); ++x) {
    out[x].assign(rows_[x].begin(), rows_[x].end());
  }
  return out;
}

std::shared_ptr<const LockScheme> build_lock_scheme(const GlobalStats& stats,
                                                    const InferenceParams& params) {
  const auto n = static_cast<TxTypeId>(stats.n_types);
  auto scheme = std::make_shared<LockScheme>(stats.n_types);
  const ProbabilityModel prob(stats);

  for (TxTypeId x = 0; x < n; ++x) {
    // Fit N(eta, sigma^2) to the conditional abort probabilities of x
    // against every candidate peer (Alg. 5 lines 67-68). Only pairs with
    // actual concurrent observations contribute evidence.
    util::RunningStats fit;
    for (TxTypeId y = 0; y < n; ++y) {
      if (prob.observed_concurrent(x, y)) {
        fit.add(prob.conditional_abort(x, y));
      }
    }
    if (fit.count() == 0) continue;  // x never observed anyone concurrent

    const double cutoff =
        util::gaussian_percentile(fit.mean(), fit.variance(), params.th2);

    for (TxTypeId y = 0; y < n; ++y) {
      if (!prob.observed_concurrent(x, y)) continue;
      // Alg. 5 line 72: conjunctive probability must clear Th1 AND the
      // conditional probability must sit in the Gaussian tail beyond the
      // Th2-th percentile.
      const bool frequent = prob.conjunctive_abort(x, y) > params.th1;
      const bool outlier = prob.conditional_abort(x, y) > cutoff;
      if (frequent && outlier) {
        // Contending transactions take each other's locks (lines 73-74);
        // x == y (self-contention) degenerates to one self edge.
        scheme->add(x, y);
        scheme->add(y, x);
      }
    }
  }
  return scheme;
}

}  // namespace seer::core
