// Bi-dimensional stochastic hill climbing over (Th1, Th2) (§4, last
// paragraph).
//
// Seer self-tunes the two inference thresholds using run-time throughput
// feedback: each tuning epoch it holds a candidate point, observes the
// throughput achieved while that point was active, and moves in the
// direction of improvement. With a small probability p the climber jumps to
// a random point to escape local minima. The paper's standard values are
// p = 0.1% and the initial point (Th1, Th2) = (0.3, 0.8).
//
// The climber is deliberately generic (it optimizes any 2-D box-constrained
// objective driven by externally supplied scores) so it can be unit-tested
// against synthetic response surfaces.
#pragma once

#include <algorithm>
#include <array>

#include "util/rng.hpp"

namespace seer::core {

struct HillClimberConfig {
  double initial_x = 0.3;       // Th1 start (paper)
  double initial_y = 0.8;       // Th2 start (paper)
  double step = 0.08;           // neighbourhood radius per move
  double jump_probability = 0.001;  // paper's p = 0.1%
  double lo = 0.0;
  double hi = 1.0;
  std::uint64_t seed = 42;
};

class HillClimber {
 public:
  struct Point {
    double x;
    double y;
  };

  explicit HillClimber(HillClimberConfig cfg = {})
      : cfg_(cfg),
        rng_(cfg.seed),
        best_{cfg.initial_x, cfg.initial_y},
        candidate_(best_) {}

  // The point the system should currently be running with.
  [[nodiscard]] Point current() const noexcept { return candidate_; }
  [[nodiscard]] Point best() const noexcept { return best_; }
  [[nodiscard]] double best_score() const noexcept { return best_score_; }
  [[nodiscard]] std::uint64_t epochs() const noexcept { return epochs_; }

  // One-shot view of the search state for introspection (model snapshots,
  // convergence diagnostics in tools/seer_inspect).
  struct State {
    Point current;
    Point best;
    double best_score;
    std::uint64_t epochs;
  };
  [[nodiscard]] State state() const noexcept {
    return {candidate_, best_, best_score_, epochs_};
  }

  // Reports the objective achieved while `current()` was active and
  // advances the search. Returns the next point to run with.
  Point feed(double score) {
    ++epochs_;
    if (!has_baseline_) {
      // First observation establishes the baseline at the initial point.
      best_score_ = score;
      has_baseline_ = true;
    } else if (score > best_score_) {
      best_score_ = score;
      best_ = candidate_;
    } else {
      // Candidate did not improve: retreat to the best-known point before
      // proposing the next neighbour.
      candidate_ = best_;
    }
    propose_next();
    return candidate_;
  }

 private:
  void propose_next() {
    if (rng_.bernoulli(cfg_.jump_probability)) {
      candidate_ = Point{random_coord(), random_coord()};
      return;
    }
    // Perturb one dimension at a time (coordinate-wise stochastic descent);
    // alternating dimensions keeps moves axis-aligned and cheap to reason
    // about, while the random sign explores both directions.
    Point p = best_;
    const double delta = (rng_.bernoulli(0.5) ? 1.0 : -1.0) * cfg_.step;
    if (rng_.bernoulli(0.5)) {
      p.x = clamp(p.x + delta);
    } else {
      p.y = clamp(p.y + delta);
    }
    candidate_ = p;
  }

  [[nodiscard]] double clamp(double v) const noexcept {
    return std::clamp(v, cfg_.lo, cfg_.hi);
  }
  [[nodiscard]] double random_coord() noexcept {
    return cfg_.lo + rng_.uniform01() * (cfg_.hi - cfg_.lo);
  }

  HillClimberConfig cfg_;
  util::Xoshiro256 rng_;
  Point best_;
  Point candidate_;
  double best_score_ = 0.0;
  bool has_baseline_ = false;
  std::uint64_t epochs_ = 0;
};

}  // namespace seer::core
