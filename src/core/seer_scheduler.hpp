// SeerScheduler — the façade tying together the active-transactions table,
// the per-thread statistics, the lock-scheme inference (Alg. 5) and the
// threshold self-tuning.
//
// This class is backend-agnostic: the threaded runtime (over SoftHtm or real
// TSX) and the machine simulator both drive it through the same five calls:
//
//   announce / clear          — Alg. 1 line 5 / Alg. 2 line 32
//   record_abort / commit     — Alg. 3
//   maybe_update              — Alg. 4 lines 52-54 (designated thread only)
//
// and read scheduling decisions through `scheme()`.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/active_tx_table.hpp"
#include "core/conflict_stats.hpp"
#include "core/hill_climber.hpp"
#include "core/lock_scheme.hpp"
#include "core/types.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/snapshot.hpp"
#include "obs/trace.hpp"
#include "util/cacheline.hpp"

namespace seer::core {

// Feature toggles for the Figure 4 / Figure 5 ablations, plus the paper's
// fixed constants.
struct SeerConfig {
  std::size_t n_threads = 8;
  std::size_t n_types = 8;
  std::size_t physical_cores = 4;  // SMT siblings share thread % physical_cores

  // Mechanism toggles (§5.3: each is one cumulative variant of Figure 5).
  bool enable_tx_locks = true;        // fine-grained transaction locks
  bool enable_core_locks = true;      // capacity-driven per-core locks
  bool enable_htm_lock_acquire = true;  // batch lock acquisition inside HTM
  bool enable_hill_climbing = true;   // self-tune Th1/Th2

  // Retry budget for hardware attempts (paper §5.1 uses 5, citing Intel).
  int max_attempts = 5;

  // Scheme maintenance cadence, in transaction executions between rebuilds.
  // The paper rebuilds opportunistically while waiting on the SGL; we also
  // rebuild every `update_period` executions (DESIGN.md deviation #1).
  std::uint64_t update_period = 512;
  // Hill-climber epoch length, in scheme rebuilds per tuning step.
  std::uint64_t rebuilds_per_tuning_epoch = 2;

  InferenceParams initial_params{};
  std::uint64_t seed = 1;

  // --- extensions beyond the paper (its §6 future-work directions) -------
  // Probabilistic sampling of the Alg. 3 statistics (Dice/Lev/Moir-style
  // scalable counters): each commit/abort is recorded with probability
  // 2^-sampling_shift. The inference consumes only count *ratios*, so
  // uniform sampling leaves the probabilities unbiased while cutting the
  // instrumentation cost proportionally. 0 = record everything (paper).
  std::uint32_t sampling_shift = 0;
  // Deterministic counterpart living INSIDE the statistics slabs: each
  // thread records only every k-th of its commit/abort events (execution
  // bump + active-table scan) and the merge scales the sampled counters by
  // k. Unlike sampling_shift this needs no per-event RNG draw, keeps the
  // rebuild cadence and throughput feedback exact (raw tallies are never
  // sampled), and is reproducible run-to-run. 0 or 1 = record everything.
  std::uint32_t stats_sample_period = 1;
  // Exponential decay of the merged statistics between rebuilds, so the
  // scheme tracks time-varying workloads (phased benchmarks) instead of
  // being dominated by stale history. 1.0 = pure accumulation (paper).
  double stats_decay = 1.0;

  // --- observability (src/obs/, DESIGN.md §8) ----------------------------
  // Optional sinks; both must outlive the scheduler and be frozen/drained by
  // the embedding. nullptr (default) disables with one predicted branch per
  // event; with SEER_OBS=OFF the calls compile away entirely.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceSink* obs_trace = nullptr;
  // Model flight recorder (src/obs/flight_recorder.hpp): fed once per scheme
  // rebuild on the maintenance path; when its trigger fires the scheduler
  // builds a full ModelSnapshot. Never consulted on the per-event hot path.
  obs::FlightRecorder* recorder = nullptr;
};

// One scheduler-facing event, as a backend-agnostic value. The five calls
// the backends drive the scheduler with (announce/clear/record_abort/
// record_commit/maybe_update, plus the test-only force_update) map 1:1 onto
// the kinds, so a captured stream can be replayed verbatim into a fresh
// scheduler — the foundation of the cross-backend differential harness
// (src/check/differential.hpp).
struct SchedEvent {
  enum class Kind : std::uint8_t {
    kAnnounce,
    kClear,
    kAbort,
    kCommit,
    kMaybeUpdate,
    kForceUpdate,
  };
  Kind kind = Kind::kAnnounce;
  ThreadId thread = 0;
  TxTypeId tx = kNoTx;     // kAnnounce/kAbort/kCommit only
  std::uint64_t now = 0;   // kMaybeUpdate/kForceUpdate only

  friend constexpr bool operator==(const SchedEvent& a, const SchedEvent& b) noexcept {
    return a.kind == b.kind && a.thread == b.thread && a.tx == b.tx && a.now == b.now;
  }
};

// Opt-in observer of the scheduler's event stream and rebuild decisions.
// on_event fires before the call is processed; on_rebuild fires after a
// rebuild publishes its scheme. Calls arrive on whichever thread drove the
// scheduler — implementations used under real concurrency must synchronize
// internally, and live-capture-equals-replay holds only for runs driven by
// a single thread (the simulator, or a round-robin test driver).
class SchedulerTraceSink {
 public:
  virtual ~SchedulerTraceSink() = default;
  virtual void on_event(const SchedEvent& e) noexcept = 0;
  virtual void on_rebuild(std::uint64_t rebuild_index, const InferenceParams& params,
                          const LockScheme& scheme) noexcept = 0;
};

class SeerScheduler {
 public:
  explicit SeerScheduler(const SeerConfig& cfg);
  SeerScheduler(const SeerScheduler&) = delete;
  SeerScheduler& operator=(const SeerScheduler&) = delete;

  [[nodiscard]] const SeerConfig& config() const noexcept { return cfg_; }

  // --- hot path -----------------------------------------------------------
  void announce(ThreadId thread, TxTypeId tx) noexcept {
    if (trace_) trace_->on_event({SchedEvent::Kind::kAnnounce, thread, tx, 0});
    if (metrics_) metrics_->add(m_announces_, thread);
    active_.announce(thread, tx);
  }
  void clear(ThreadId thread) noexcept {
    if (trace_) trace_->on_event({SchedEvent::Kind::kClear, thread, kNoTx, 0});
    active_.clear(thread);
  }

  // The per-thread slab carries ALL the event bookkeeping (matrices,
  // executions, raw tallies) in one contiguous allocation: a record touches
  // only lines this thread owns — no shared execution counter, no separate
  // commit-count array. Aborts are executions too (Alg. 3 line 34): the
  // rebuild cadence advances even in fallback-heavy phases where commits
  // are scarce, otherwise the scheduler could never learn its way out of
  // them.
  void record_abort(ThreadId thread, TxTypeId tx) noexcept {
    if (trace_) trace_->on_event({SchedEvent::Kind::kAbort, thread, tx, 0});
    if (metrics_) metrics_->add(m_aborts_, thread);
    slabs_[thread]->record_abort(tx, thread, active_);
  }
  void record_commit(ThreadId thread, TxTypeId tx) noexcept {
    if (trace_) trace_->on_event({SchedEvent::Kind::kCommit, thread, tx, 0});
    if (metrics_) metrics_->add(m_commits_, thread);
    slabs_[thread]->record_commit(tx, thread, active_);
  }

  // Current locking scheme; lock-free snapshot (scheme swaps use the
  // indirection-pointer trick the paper describes).
  [[nodiscard]] std::shared_ptr<const LockScheme> scheme() const {
    return std::atomic_load_explicit(&scheme_, std::memory_order_acquire);
  }

  // --- maintenance (designated thread) -------------------------------------
  // Rebuilds the scheme if `update_period` executions elapsed since the last
  // rebuild, and feeds the hill climber every few rebuilds. `now` is a
  // monotonic timestamp in arbitrary units (simulated cycles or rdtsc ticks)
  // used to turn commit counts into throughput. Only the designated thread
  // (0) may call this; returns true if a rebuild happened.
  bool maybe_update(ThreadId thread, std::uint64_t now);

  // Unconditional rebuild (tests, and the SGL-wait trigger).
  void force_update(std::uint64_t now);

  // --- check-harness instrumentation (src/check/) ---------------------------
  // Installs an event/decision observer; nullptr disables. Install before
  // any thread drives the scheduler and remove only after they stop.
  void set_trace_sink(SchedulerTraceSink* sink) noexcept { trace_ = sink; }

  // --- introspection --------------------------------------------------------
  [[nodiscard]] InferenceParams params() const noexcept { return params_; }
  [[nodiscard]] std::uint64_t rebuild_count() const noexcept { return rebuilds_; }
  [[nodiscard]] std::uint64_t tuning_epochs() const noexcept { return climber_.epochs(); }
  [[nodiscard]] const ActiveTxTable& active_table() const noexcept { return active_; }
  [[nodiscard]] GlobalStats merged_stats() const;
  [[nodiscard]] std::uint64_t total_commits() const noexcept;
  [[nodiscard]] std::uint64_t executions_seen() const noexcept;
  [[nodiscard]] HillClimber::State climber_state() const noexcept {
    return climber_.state();
  }

  // Captures the full probabilistic model — merged matrices, thresholds,
  // climber state, active scheme — as a ModelSnapshot. Maintenance-path
  // cost (one slab merge + scheme copy); called for retained flight-recorder
  // captures and end-of-run dumps, never per transaction.
  [[nodiscard]] obs::ModelSnapshot make_model_snapshot(std::uint64_t now) const;

 private:
  void rebuild(std::uint64_t now);
  void merge_slabs_into(GlobalStats& out) const noexcept;

  SeerConfig cfg_;
  ActiveTxTable active_;
  std::vector<std::unique_ptr<ThreadStats>> slabs_;
  SchedulerTraceSink* trace_ = nullptr;

  // Observability sinks (SeerConfig::metrics / obs_trace; dormant when null).
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::TraceSink* obs_trace_ = nullptr;
  obs::FlightRecorder* recorder_ = nullptr;
  obs::MetricId m_announces_ = obs::kNoMetric;
  obs::MetricId m_aborts_ = obs::kNoMetric;
  obs::MetricId m_commits_ = obs::kNoMetric;
  obs::MetricId m_rebuilds_ = obs::kNoMetric;
  obs::MetricId m_climber_steps_ = obs::kNoMetric;
  obs::MetricId h_scheme_edges_ = obs::kNoMetric;

  std::shared_ptr<const LockScheme> scheme_;
  InferenceParams params_;
  HillClimber climber_;

  // Rebuild scratch, sized once in the constructor and reused every period
  // (the maintenance path is allocation-free apart from the scheme object
  // it publishes). merge_bufs_ double-buffers the merged lifetime totals:
  // the current rebuild merges into one buffer while the other still holds
  // the previous rebuild's totals, which is exactly the delta the decay
  // extension needs — no copying of a `last_merged_` snapshot.
  GlobalStats merge_bufs_[2];
  std::size_t cur_buf_ = 0;
  // Decay extension state (when stats_decay < 1): exponentially decayed
  // accumulators and the rounded snapshot handed to the inference.
  GlobalStats decay_snapshot_;
  std::vector<double> decayed_aborts_;
  std::vector<double> decayed_commits_;
  std::vector<double> decayed_execs_;

  std::uint64_t executions_at_last_rebuild_ = 0;
  std::uint64_t rebuilds_ = 0;
  std::uint64_t rebuilds_at_last_epoch_ = 0;
  std::uint64_t commits_at_last_epoch_ = 0;
  std::uint64_t time_at_last_epoch_ = 0;
  bool epoch_clock_started_ = false;
};

}  // namespace seer::core
