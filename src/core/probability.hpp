// Probability estimates over the merged statistics (§4, "Devising the
// Locking Scheme").
//
// With the paper's abbreviations a_xy = abortStats[x][y],
// c_xy = commitStats[x][y], e_x = executions[x]:
//
//   P(x aborts | x || y)  =  a_xy / (c_xy + a_xy)       (conditional)
//   P(x aborts ∩ x || y)  =  a_xy / e_x                 (conjunctive)
//
// The conjunctive probability gates on Th1 (is this pair's abort evidence
// frequent enough, relative to everything x does, to bother serializing?);
// the conditional probability feeds the Gaussian tail test gated by Th2
// (among the transactions seen concurrently with x, is y unusually likely
// to coincide with x's aborts?).
#pragma once

#include "core/conflict_stats.hpp"

namespace seer::core {

class ProbabilityModel {
 public:
  explicit ProbabilityModel(const GlobalStats& stats) : stats_(&stats) {}

  // P(x aborts | x || y). Returns 0 when x and y were never observed
  // concurrently (no evidence either way).
  [[nodiscard]] double conditional_abort(TxTypeId x, TxTypeId y) const noexcept {
    const double a = static_cast<double>(stats_->abort(x, y));
    const double c = static_cast<double>(stats_->commit(x, y));
    const double denom = a + c;
    return denom > 0.0 ? a / denom : 0.0;
  }

  // P(x aborts ∩ x || y).
  [[nodiscard]] double conjunctive_abort(TxTypeId x, TxTypeId y) const noexcept {
    const double e = static_cast<double>(stats_->execs(x));
    if (e <= 0.0) return 0.0;
    return static_cast<double>(stats_->abort(x, y)) / e;
  }

  // True when the pair was ever observed running concurrently — pairs with
  // zero joint observations carry no evidence and are excluded from the
  // Gaussian fit (they would otherwise drag the mean toward zero purely
  // because the program never ran them together).
  [[nodiscard]] bool observed_concurrent(TxTypeId x, TxTypeId y) const noexcept {
    return stats_->abort(x, y) + stats_->commit(x, y) > 0;
  }

 private:
  const GlobalStats* stats_;
};

}  // namespace seer::core
