// Per-thread commit/abort statistics (Table 2: commitStats, abortStats,
// executions; Alg. 3 REGISTER-ABORT / REGISTER-COMMIT).
//
// Each thread owns a private slab of counters; on every commit or abort it
// scans the active-transactions table and bumps, for its own transaction
// type x and every concurrently announced type y, the (x, y) cell of the
// commit or abort matrix. Slabs are written only by their owner and read by
// the one thread that periodically merges them (Alg. 5 prologue) — relaxed
// atomics make that single-writer pattern well-defined without imposing any
// ordering cost on the hot path.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <vector>

#include "core/active_tx_table.hpp"
#include "core/types.hpp"

namespace seer::core {

// Merged, plain-integer view used by the inference step.
struct GlobalStats {
  std::size_t n_types = 0;
  std::vector<std::uint64_t> aborts;      // n_types * n_types, row-major
  std::vector<std::uint64_t> commits;     // n_types * n_types, row-major
  std::vector<std::uint64_t> executions;  // n_types

  explicit GlobalStats(std::size_t types = 0)
      : n_types(types),
        aborts(types * types, 0),
        commits(types * types, 0),
        executions(types, 0) {}

  [[nodiscard]] std::uint64_t abort(TxTypeId x, TxTypeId y) const noexcept {
    return aborts[idx(x, y)];
  }
  [[nodiscard]] std::uint64_t commit(TxTypeId x, TxTypeId y) const noexcept {
    return commits[idx(x, y)];
  }
  [[nodiscard]] std::uint64_t execs(TxTypeId x) const noexcept {
    return executions[static_cast<std::size_t>(x)];
  }
  [[nodiscard]] std::size_t idx(TxTypeId x, TxTypeId y) const noexcept {
    return static_cast<std::size_t>(x) * n_types + static_cast<std::size_t>(y);
  }
  [[nodiscard]] std::uint64_t total_executions() const noexcept {
    std::uint64_t t = 0;
    for (auto e : executions) t += e;
    return t;
  }
};

class ThreadStats {
 public:
  explicit ThreadStats(std::size_t n_types)
      : n_types_(n_types),
        aborts_(n_types * n_types),
        commits_(n_types * n_types),
        executions_(n_types) {}

  // Alg. 3 lines 33-37. `self` is the slot of the recording thread, which is
  // skipped when scanning (a transaction is not concurrent with itself).
  void record_abort(TxTypeId tx, ThreadId self, const ActiveTxTable& active) noexcept {
    bump(executions_[static_cast<std::size_t>(tx)]);
    scan(tx, self, active, aborts_);
  }

  // Alg. 3 lines 38-42.
  void record_commit(TxTypeId tx, ThreadId self, const ActiveTxTable& active) noexcept {
    bump(executions_[static_cast<std::size_t>(tx)]);
    scan(tx, self, active, commits_);
  }

  // Adds this slab into `out` (Alg. 5: periodic merge across per-core
  // matrices). Safe to run concurrently with the owner thread recording.
  void merge_into(GlobalStats& out) const noexcept {
    assert(out.n_types == n_types_);
    for (std::size_t i = 0; i < aborts_.size(); ++i) {
      out.aborts[i] += aborts_[i].load(std::memory_order_relaxed);
      out.commits[i] += commits_[i].load(std::memory_order_relaxed);
    }
    for (std::size_t t = 0; t < n_types_; ++t) {
      out.executions[t] += executions_[t].load(std::memory_order_relaxed);
    }
  }

  [[nodiscard]] std::size_t n_types() const noexcept { return n_types_; }

  // Test hooks.
  [[nodiscard]] std::uint64_t abort_cell(TxTypeId x, TxTypeId y) const noexcept {
    return cell(aborts_, x, y);
  }
  [[nodiscard]] std::uint64_t commit_cell(TxTypeId x, TxTypeId y) const noexcept {
    return cell(commits_, x, y);
  }

 private:
  using Counter = std::atomic<std::uint64_t>;

  static void bump(Counter& c) noexcept {
    // Single-writer counter: a plain load+store beats a locked RMW.
    c.store(c.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
  }

  void scan(TxTypeId tx, ThreadId self, const ActiveTxTable& active,
            std::vector<Counter>& matrix) noexcept {
    const auto row = static_cast<std::size_t>(tx) * n_types_;
    for (ThreadId i = 0; i < active.size(); ++i) {
      if (i == self) continue;
      const TxTypeId other = active.peek(i);
      if (other == kNoTx) continue;
      bump(matrix[row + static_cast<std::size_t>(other)]);
    }
  }

  [[nodiscard]] std::uint64_t cell(const std::vector<Counter>& m, TxTypeId x,
                                   TxTypeId y) const noexcept {
    return m[static_cast<std::size_t>(x) * n_types_ + static_cast<std::size_t>(y)].load(
        std::memory_order_relaxed);
  }

  std::size_t n_types_;
  std::vector<Counter> aborts_;
  std::vector<Counter> commits_;
  std::vector<Counter> executions_;
};

}  // namespace seer::core
