// Per-thread commit/abort statistics (Table 2: commitStats, abortStats,
// executions; Alg. 3 REGISTER-ABORT / REGISTER-COMMIT).
//
// Each thread owns a private slab of counters; on every commit or abort it
// scans the active-transactions table and bumps, for its own transaction
// type x and every concurrently announced type y, the (x, y) cell of the
// commit or abort matrix. Slabs are written only by their owner and read by
// the one thread that periodically merges them (Alg. 5 prologue) — relaxed
// atomics make that single-writer pattern well-defined without imposing any
// ordering cost on the hot path.
//
// Layout: the two matrices, the execution vector and the bookkeeping
// counters live in ONE contiguous cache-line-aligned allocation per thread
// (2·n² + n + 2 counters, padded to whole lines). One slab, one stream of
// lines per recording thread — no per-vector headers interleaved with other
// threads' data, no false sharing between slabs.
//
// Sampling: with `sample_period` k > 1 only every k-th recorded event pays
// for the execution bump and the active-table scan; the merge step scales
// the sampled counters back up by k. The inference consumes only count
// *ratios* (the paper's statistics tolerate imprecision by design — §4), so
// systematic 1-in-k sampling leaves the probabilities asymptotically
// unbiased while cutting the instrumentation cost k-fold. The raw event and
// commit tallies used for rebuild cadence and throughput feedback are NOT
// sampled — they are single-counter bumps and stay exact.
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <vector>

#include "core/active_tx_table.hpp"
#include "core/types.hpp"
#include "util/cacheline.hpp"

namespace seer::core {

// Merged, plain-integer view used by the inference step.
struct GlobalStats {
  std::size_t n_types = 0;
  std::vector<std::uint64_t> aborts;      // n_types * n_types, row-major
  std::vector<std::uint64_t> commits;     // n_types * n_types, row-major
  std::vector<std::uint64_t> executions;  // n_types

  explicit GlobalStats(std::size_t types = 0)
      : n_types(types),
        aborts(types * types, 0),
        commits(types * types, 0),
        executions(types, 0) {}

  // Zeroes every counter without touching capacity (allocation-free reuse).
  void reset() noexcept {
    std::fill(aborts.begin(), aborts.end(), 0);
    std::fill(commits.begin(), commits.end(), 0);
    std::fill(executions.begin(), executions.end(), 0);
  }

  [[nodiscard]] std::uint64_t abort(TxTypeId x, TxTypeId y) const noexcept {
    return aborts[idx(x, y)];
  }
  [[nodiscard]] std::uint64_t commit(TxTypeId x, TxTypeId y) const noexcept {
    return commits[idx(x, y)];
  }
  [[nodiscard]] std::uint64_t execs(TxTypeId x) const noexcept {
    return executions[static_cast<std::size_t>(x)];
  }
  [[nodiscard]] std::size_t idx(TxTypeId x, TxTypeId y) const noexcept {
    return static_cast<std::size_t>(x) * n_types + static_cast<std::size_t>(y);
  }
  [[nodiscard]] std::uint64_t total_executions() const noexcept {
    std::uint64_t t = 0;
    for (auto e : executions) t += e;
    return t;
  }
};

class ThreadStats {
 public:
  explicit ThreadStats(std::size_t n_types, std::uint32_t sample_period = 1)
      : n_types_(n_types),
        cells_(n_types * n_types),
        sample_period_(sample_period == 0 ? 1 : sample_period),
        until_sample_(1),
        slab_(util::make_cache_aligned_slab<Counter>(2 * cells_ + n_types + 2)) {}

  // Alg. 3 lines 33-37. `self` is the slot of the recording thread, which is
  // skipped when scanning (a transaction is not concurrent with itself).
  void record_abort(TxTypeId tx, ThreadId self, const ActiveTxTable& active) noexcept {
    bump(slab_[kRawEvents + 2 * cells_ + n_types_]);
    if (--until_sample_ > 0) return;
    until_sample_ = sample_period_;
    bump(slab_[2 * cells_ + static_cast<std::size_t>(tx)]);
    scan(tx, self, active, /*matrix=*/&slab_[0]);
  }

  // Alg. 3 lines 38-42.
  void record_commit(TxTypeId tx, ThreadId self, const ActiveTxTable& active) noexcept {
    bump(slab_[kRawEvents + 2 * cells_ + n_types_]);
    bump(slab_[kRawCommits + 2 * cells_ + n_types_]);
    if (--until_sample_ > 0) return;
    until_sample_ = sample_period_;
    bump(slab_[2 * cells_ + static_cast<std::size_t>(tx)]);
    scan(tx, self, active, /*matrix=*/&slab_[cells_]);
  }

  // Adds this slab into `out`, scaling sampled counters back to event units
  // (Alg. 5: periodic merge across per-core matrices). Safe to run
  // concurrently with the owner thread recording.
  void merge_into(GlobalStats& out) const noexcept {
    assert(out.n_types == n_types_);
    const std::uint64_t k = sample_period_;
    for (std::size_t i = 0; i < cells_; ++i) {
      out.aborts[i] += slab_[i].load(std::memory_order_relaxed) * k;
      out.commits[i] += slab_[cells_ + i].load(std::memory_order_relaxed) * k;
    }
    for (std::size_t t = 0; t < n_types_; ++t) {
      out.executions[t] += slab_[2 * cells_ + t].load(std::memory_order_relaxed) * k;
    }
  }

  [[nodiscard]] std::size_t n_types() const noexcept { return n_types_; }
  [[nodiscard]] std::uint32_t sample_period() const noexcept { return sample_period_; }

  // Exact (unsampled) tallies: every recorded event / every recorded commit.
  // Single-writer counters like the rest of the slab; used for the rebuild
  // cadence and the hill climber's throughput signal, which must not drift
  // with the sampling rate.
  [[nodiscard]] std::uint64_t raw_events() const noexcept {
    return slab_[kRawEvents + 2 * cells_ + n_types_].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t raw_commits() const noexcept {
    return slab_[kRawCommits + 2 * cells_ + n_types_].load(std::memory_order_relaxed);
  }

  // Test hooks (unscaled, as physically recorded).
  [[nodiscard]] std::uint64_t abort_cell(TxTypeId x, TxTypeId y) const noexcept {
    return slab_[cell_idx(x, y)].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t commit_cell(TxTypeId x, TxTypeId y) const noexcept {
    return slab_[cells_ + cell_idx(x, y)].load(std::memory_order_relaxed);
  }

 private:
  using Counter = std::atomic<std::uint64_t>;

  // Offsets of the bookkeeping counters relative to 2·cells_ + n_types_.
  static constexpr std::size_t kRawEvents = 0;
  static constexpr std::size_t kRawCommits = 1;

  static void bump(Counter& c) noexcept {
    // Single-writer counter: a plain load+store beats a locked RMW.
    c.store(c.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
  }

  void scan(TxTypeId tx, ThreadId self, const ActiveTxTable& active,
            Counter* matrix) noexcept {
    Counter* row = matrix + static_cast<std::size_t>(tx) * n_types_;
    for (ThreadId i = 0; i < active.size(); ++i) {
      if (i == self) continue;
      const TxTypeId other = active.peek(i);
      if (other == kNoTx) continue;
      bump(row[static_cast<std::size_t>(other)]);
    }
  }

  [[nodiscard]] std::size_t cell_idx(TxTypeId x, TxTypeId y) const noexcept {
    return static_cast<std::size_t>(x) * n_types_ + static_cast<std::size_t>(y);
  }

  std::size_t n_types_;
  std::size_t cells_;  // n_types_^2, size of each matrix
  std::uint32_t sample_period_;
  std::uint32_t until_sample_;  // owner-thread-only countdown to next sample
  // [0, cells_): aborts   [cells_, 2·cells_): commits
  // [2·cells_, +n_types_): executions   then raw events, raw commits.
  util::CacheAlignedSlab<Counter> slab_;
};

}  // namespace seer::core
