// Shared identifier types for the scheduler core.
#pragma once

#include <cstddef>
#include <cstdint>

namespace seer::core {

// Identifier of a transaction *type* — one per static atomic block of the
// program (the paper's T_i). The compiler-support the paper assumes is just
// "enumerate the atomic blocks and pass the id into the TM library".
using TxTypeId = std::int32_t;

// Slot in the active-transactions table; one per hardware thread.
// The paper binds each thread to a core, so thread id == slot id.
using ThreadId = std::uint32_t;

inline constexpr TxTypeId kNoTx = -1;

// Upper bound on hardware threads supported without reallocation.
inline constexpr std::size_t kMaxThreads = 64;

}  // namespace seer::core
