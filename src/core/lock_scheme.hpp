// The dynamic fine-grained locking scheme (Table 2: locksToAcquire;
// Alg. 5: UPDATE-SEER-LOCKS).
//
// One lock exists per transaction type. Row x of the scheme lists the locks
// instances of x must ACQUIRE before their last hardware attempt; in
// addition every transaction x WAITS for its own lock L_x to be free before
// starting (Alg. 4 line 57), which is how the pairwise serialization closes:
// if Seer decides x and y contend, x acquires L_y and y acquires L_x, and
// each also yields to its own lock when the other holds it.
//
// Rows are kept canonically sorted so that multi-lock acquisition happens in
// a global order and can never deadlock (§4, "All rows are sorted
// consistently by the periodic update").
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/probability.hpp"
#include "core/types.hpp"
#include "util/small_vec.hpp"

namespace seer::core {

// A transaction acquires at most this many peer locks; beyond that the
// scheme would serialize it against most of the program anyway. 16 covers
// every STAMP application (3–8 atomic blocks each).
inline constexpr std::size_t kMaxLocksPerRow = 16;

using LockRow = util::SmallVec<TxTypeId, kMaxLocksPerRow>;

class LockScheme {
 public:
  explicit LockScheme(std::size_t n_types) : rows_(n_types) {}

  [[nodiscard]] std::size_t n_types() const noexcept { return rows_.size(); }
  [[nodiscard]] const LockRow& row(TxTypeId x) const noexcept {
    return rows_[static_cast<std::size_t>(x)];
  }

  // Builder-side mutation: records "x must take y's lock". Keeps the row
  // sorted and deduplicated; silently drops overflow beyond kMaxLocksPerRow
  // (a row that long serializes x against everything already).
  void add(TxTypeId x, TxTypeId y);

  [[nodiscard]] bool empty() const noexcept;
  // Total number of (x, y) acquire edges — diagnostics for §5.2.
  [[nodiscard]] std::size_t edge_count() const noexcept;
  // Plain-vector copy of every row (model snapshots, MachineStats export).
  [[nodiscard]] std::vector<std::vector<TxTypeId>> to_rows() const;

 private:
  std::vector<LockRow> rows_;
};

// Tunable thresholds (self-tuned at runtime by the hill climber).
struct InferenceParams {
  double th1 = 0.3;  // floor on P(x aborts ∩ x||y)     (paper's init value)
  double th2 = 0.8;  // Gaussian-percentile cut-off on P(x aborts | x||y)
};

// Alg. 5. Pure function from merged statistics + thresholds to a scheme;
// trivially unit-testable.
[[nodiscard]] std::shared_ptr<const LockScheme> build_lock_scheme(
    const GlobalStats& stats, const InferenceParams& params);

}  // namespace seer::core
