#include "core/seer_scheduler.hpp"

namespace seer::core {

SeerScheduler::SeerScheduler(const SeerConfig& cfg)
    : cfg_(cfg),
      active_(cfg.n_threads),
      scheme_(std::make_shared<LockScheme>(cfg.n_types)),
      params_(cfg.initial_params),
      climber_(HillClimberConfig{.initial_x = cfg.initial_params.th1,
                                 .initial_y = cfg.initial_params.th2,
                                 .seed = cfg.seed}),
      merge_bufs_{GlobalStats(cfg.n_types), GlobalStats(cfg.n_types)},
      decay_snapshot_(cfg.n_types) {
  slabs_.reserve(cfg.n_threads);
  for (std::size_t t = 0; t < cfg.n_threads; ++t) {
    slabs_.push_back(
        std::make_unique<ThreadStats>(cfg.n_types, cfg.stats_sample_period));
  }
  if (cfg_.metrics != nullptr) {
    metrics_ = cfg_.metrics;
    m_announces_ = metrics_->counter("seer.announces");
    m_aborts_ = metrics_->counter("seer.aborts");
    m_commits_ = metrics_->counter("seer.commits");
    m_rebuilds_ = metrics_->counter("seer.rebuilds");
    m_climber_steps_ = metrics_->counter("seer.climber_steps");
    h_scheme_edges_ = metrics_->histogram("seer.scheme_edges");
  }
  obs_trace_ = cfg_.obs_trace;
  recorder_ = cfg_.recorder;
  if (cfg_.stats_decay < 1.0) {
    decayed_aborts_.assign(cfg.n_types * cfg.n_types, 0.0);
    decayed_commits_.assign(cfg.n_types * cfg.n_types, 0.0);
    decayed_execs_.assign(cfg.n_types, 0.0);
  }
}

void SeerScheduler::merge_slabs_into(GlobalStats& out) const noexcept {
  out.reset();
  for (const auto& slab : slabs_) slab->merge_into(out);
}

GlobalStats SeerScheduler::merged_stats() const {
  GlobalStats out(cfg_.n_types);
  for (const auto& slab : slabs_) slab->merge_into(out);
  return out;
}

std::uint64_t SeerScheduler::total_commits() const noexcept {
  std::uint64_t total = 0;
  for (const auto& slab : slabs_) total += slab->raw_commits();
  return total;
}

std::uint64_t SeerScheduler::executions_seen() const noexcept {
  std::uint64_t total = 0;
  for (const auto& slab : slabs_) total += slab->raw_events();
  return total;
}

bool SeerScheduler::maybe_update(ThreadId thread, std::uint64_t now) {
  if (trace_) {
    trace_->on_event({SchedEvent::Kind::kMaybeUpdate, thread, kNoTx, now});
  }
  if (thread != 0) return false;  // single designated maintainer — no locks
  const std::uint64_t seen = executions_seen();
  if (seen - executions_at_last_rebuild_ < cfg_.update_period) return false;
  executions_at_last_rebuild_ = seen;
  rebuild(now);
  return true;
}

void SeerScheduler::force_update(std::uint64_t now) {
  if (trace_) {
    trace_->on_event({SchedEvent::Kind::kForceUpdate, /*thread=*/0, kNoTx, now});
  }
  rebuild(now);
}

void SeerScheduler::rebuild(std::uint64_t now) {
  ++rebuilds_;

  // Hill-climber epoch boundary: score the thresholds that were live during
  // the epoch by the commit throughput they produced.
  if (cfg_.enable_hill_climbing &&
      rebuilds_ - rebuilds_at_last_epoch_ >= cfg_.rebuilds_per_tuning_epoch) {
    const std::uint64_t commits = total_commits();
    if (!epoch_clock_started_) {
      epoch_clock_started_ = true;
    } else if (now > time_at_last_epoch_) {
      const double throughput =
          static_cast<double>(commits - commits_at_last_epoch_) /
          static_cast<double>(now - time_at_last_epoch_);
      const HillClimber::Point p = climber_.feed(throughput);
      params_ = InferenceParams{.th1 = p.x, .th2 = p.y};
      if (metrics_) metrics_->add(m_climber_steps_, 0);
      if (obs_trace_) {
        obs_trace_->emit(0, obs::TraceKind::kClimberStep, now, climber_.epochs());
      }
    }
    commits_at_last_epoch_ = commits;
    time_at_last_epoch_ = now;
    rebuilds_at_last_epoch_ = rebuilds_;
  }

  // Merge into the scratch buffer that does NOT hold the previous rebuild's
  // totals; the other buffer IS the previous snapshot, so the decay path
  // reads its delta directly instead of copying lifetime totals around.
  GlobalStats& merged = merge_bufs_[cur_buf_];
  merge_slabs_into(merged);

  const GlobalStats* inference_input = &merged;
  if (cfg_.stats_decay < 1.0) {
    const GlobalStats& prev = merge_bufs_[1 - cur_buf_];
    // Fold the delta since the previous rebuild into exponentially decayed
    // accumulators, then hand the inference a rounded snapshot of those.
    const double d = cfg_.stats_decay;
    for (std::size_t i = 0; i < merged.aborts.size(); ++i) {
      decayed_aborts_[i] =
          decayed_aborts_[i] * d +
          static_cast<double>(merged.aborts[i] - prev.aborts[i]);
      decayed_commits_[i] =
          decayed_commits_[i] * d +
          static_cast<double>(merged.commits[i] - prev.commits[i]);
      decay_snapshot_.aborts[i] = static_cast<std::uint64_t>(decayed_aborts_[i]);
      decay_snapshot_.commits[i] = static_cast<std::uint64_t>(decayed_commits_[i]);
    }
    for (std::size_t t = 0; t < merged.executions.size(); ++t) {
      decayed_execs_[t] =
          decayed_execs_[t] * d +
          static_cast<double>(merged.executions[t] - prev.executions[t]);
      decay_snapshot_.executions[t] = static_cast<std::uint64_t>(decayed_execs_[t]);
    }
    inference_input = &decay_snapshot_;
  }
  cur_buf_ = 1 - cur_buf_;

  auto next = build_lock_scheme(*inference_input, params_);
  if (trace_) trace_->on_rebuild(rebuilds_, params_, *next);
  if (metrics_) {
    metrics_->add(m_rebuilds_, 0);
    metrics_->observe(h_scheme_edges_, 0, next->edge_count());
  }
  if (obs_trace_) {
    obs_trace_->emit(0, obs::TraceKind::kSchemeRebuild, now, next->edge_count());
  }
  std::atomic_store_explicit(&scheme_, std::move(next), std::memory_order_release);

  // Flight-recorder feed: the cheap per-rebuild sample always goes in (it
  // drives the anomaly detectors); the full model capture happens only when
  // the recorder's trigger — periodic cadence or storm entry — fires.
  if (recorder_ != nullptr) {
    const obs::RebuildSample sample{now, rebuilds_, executions_seen(),
                                    total_commits()};
    if (recorder_->on_rebuild(sample)) {
      recorder_->record(make_model_snapshot(now));
    }
  }
}

obs::ModelSnapshot SeerScheduler::make_model_snapshot(std::uint64_t now) const {
  obs::ModelSnapshot snap;
  snap.now = now;
  snap.rebuild = rebuilds_;
  snap.executions = executions_seen();
  snap.commits = total_commits();
  snap.sgl_fallbacks = recorder_ != nullptr ? recorder_->sgl_fallbacks() : 0;
  snap.th1 = params_.th1;
  snap.th2 = params_.th2;
  const HillClimber::State hc = climber_.state();
  snap.climber_cur_x = hc.current.x;
  snap.climber_cur_y = hc.current.y;
  snap.climber_best_x = hc.best.x;
  snap.climber_best_y = hc.best.y;
  snap.climber_best_score = hc.best_score;
  snap.climber_epochs = hc.epochs;
  GlobalStats merged = merged_stats();
  snap.n_types = merged.n_types;
  snap.aborts = std::move(merged.aborts);
  snap.commit_pairs = std::move(merged.commits);
  snap.execs = std::move(merged.executions);
  snap.scheme = scheme()->to_rows();
  return snap;
}

}  // namespace seer::core
