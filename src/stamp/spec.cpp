#include "stamp/spec.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace seer::stamp {

SpecWorkload::SpecWorkload(WorkloadSpec spec, std::size_t n_threads)
    : spec_(std::move(spec)), n_threads_(n_threads) {
  assert(!spec_.types.empty());
  assert(!spec_.regions.empty());
  if (spec_.phases.empty()) {
    // Default: one phase, uniform mix.
    Phase p;
    p.fraction = 1.0;
    p.mix.assign(spec_.types.size(), 1.0);
    spec_.phases.push_back(std::move(p));
  }
  for (const Phase& p : spec_.phases) {
    assert(p.mix.size() == spec_.types.size());
    (void)p;
  }

  // Lay regions out in one global line-id space; per-thread regions get one
  // disjoint slice per thread.
  region_base_.reserve(spec_.regions.size());
  std::uint64_t base = 0;
  for (const Region& r : spec_.regions) {
    region_base_.push_back(base);
    base += static_cast<std::uint64_t>(r.lines) * (r.per_thread ? n_threads_ : 1);
  }

  zipf_.resize(spec_.regions.size());
  for (std::size_t i = 0; i < spec_.regions.size(); ++i) {
    const Region& r = spec_.regions[i];
    if (r.zipf_skew > 0.0 && r.lines > 1) {
      zipf_[i] = std::make_unique<util::Zipf>(r.lines, r.zipf_skew);
    }
  }
}

const Phase& SpecWorkload::phase_at(double progress) const noexcept {
  double acc = 0.0;
  for (const Phase& p : spec_.phases) {
    acc += p.fraction;
    if (progress < acc) return p;
  }
  return spec_.phases.back();
}

std::uint32_t SpecWorkload::sample_line(std::uint16_t region, core::ThreadId thread,
                                        util::Xoshiro256& rng) const {
  const Region& r = spec_.regions[region];
  const std::uint64_t within =
      zipf_[region] ? zipf_[region]->sample(rng) : rng.below(r.lines);
  const std::uint64_t slice =
      r.per_thread ? static_cast<std::uint64_t>(thread) * r.lines : 0;
  return static_cast<std::uint32_t>(region_base_[region] + slice + within);
}

void SpecWorkload::next(core::ThreadId thread, double progress, util::Xoshiro256& rng,
                        sim::TxInstance& out) {
  const Phase& phase = phase_at(progress);

  // Pick the transaction type from the phase mix.
  double total = 0.0;
  for (double w : phase.mix) total += w;
  double pick = rng.uniform01() * total;
  std::size_t type = 0;
  for (; type + 1 < phase.mix.size(); ++type) {
    pick -= phase.mix[type];
    if (pick < 0.0) break;
  }
  const TxTypeSpec& ts = spec_.types[type];

  out.type = static_cast<core::TxTypeId>(type);

  // Duration: uniform jitter around the mean.
  const double lo = 1.0 - ts.duration_jitter;
  const double span = 2.0 * ts.duration_jitter;
  out.duration = static_cast<std::uint64_t>(
      static_cast<double>(ts.duration_mean) * (lo + span * rng.uniform01()));
  if (out.duration == 0) out.duration = 1;

  // Footprint: sample concrete lines per region access. Reads and writes
  // are kept sorted/unique as the conflict detector requires.
  out.reads.clear();
  out.writes.clear();
  for (const RegionAccess& a : ts.accesses) {
    for (std::uint16_t i = 0; i < a.reads; ++i) {
      out.reads.push_back(sample_line(a.region, thread, rng));
    }
    for (std::uint16_t i = 0; i < a.writes; ++i) {
      out.writes.push_back(sample_line(a.region, thread, rng));
    }
  }
  auto canonicalize = [](std::vector<std::uint32_t>& v) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  };
  canonicalize(out.reads);
  canonicalize(out.writes);
}

std::uint64_t SpecWorkload::think_time(core::ThreadId /*thread*/,
                                       util::Xoshiro256& rng) {
  if (spec_.think_mean == 0) return 0;
  // Exponentially distributed inter-transaction gap.
  const double u = std::max(rng.uniform01(), 1e-12);
  return static_cast<std::uint64_t>(-static_cast<double>(spec_.think_mean) *
                                    std::log(u));
}

}  // namespace seer::stamp
