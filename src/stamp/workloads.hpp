// The STAMP benchmark stand-ins (Minh et al., IISWC'08), modelled as
// workload specs for the machine simulator.
//
// The paper evaluates on the standard STAMP suite minus Bayes
// (non-deterministic) and Labyrinth (transactions exceed TSX capacity) —
// the same eight configurations reproduced here:
//   genome, intruder, kmeans-high, kmeans-low, ssca2 (kernel only),
//   vacation-high, vacation-low, yada.
//
// Each spec encodes the benchmark's *transactional geometry* — which atomic
// blocks exist, how long they run, which shared structures they touch and
// how hot those are — calibrated so the per-type conflict and capacity
// behaviour matches the qualitative characterization in the STAMP paper and
// the numbers reported in the Seer paper's evaluation (Figure 3, Table 3).
// The rationale for each parameter choice is documented inline in
// workloads.cpp; the resulting paper-vs-measured comparison lives in
// EXPERIMENTS.md.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "stamp/spec.hpp"

namespace seer::stamp {

[[nodiscard]] WorkloadSpec genome_spec();
[[nodiscard]] WorkloadSpec intruder_spec();
[[nodiscard]] WorkloadSpec kmeans_high_spec();
[[nodiscard]] WorkloadSpec kmeans_low_spec();
[[nodiscard]] WorkloadSpec ssca2_spec();
[[nodiscard]] WorkloadSpec vacation_high_spec();
[[nodiscard]] WorkloadSpec vacation_low_spec();
[[nodiscard]] WorkloadSpec yada_spec();

struct WorkloadInfo {
  std::string name;
  std::function<WorkloadSpec()> spec;
  // Transactions per thread used by the benchmark harnesses (scaled per
  // workload so every benchmark simulates a comparable cycle volume).
  std::uint64_t bench_txs_per_thread;
};

// The eight benchmarks, in the paper's presentation order (Figure 3 a-h).
[[nodiscard]] const std::vector<WorkloadInfo>& all_workloads();

// Builds the named workload ("genome", "kmeans-high", ...). Throws
// std::out_of_range for unknown names.
[[nodiscard]] std::unique_ptr<sim::Workload> make_workload(const std::string& name,
                                                           std::size_t n_threads);

}  // namespace seer::stamp
