#include "stamp/workloads.hpp"

#include <stdexcept>

namespace seer::stamp {

// Calibration note. The shapes the specs below are steered toward (see
// EXPERIMENTS.md for the resulting numbers):
//   * genome / intruder / vacation: conflicts concentrated on specific
//     atomic-block pairs -> Seer's fine-grained serialization gives the
//     paper's 2-2.5x peak wins at 8 threads;
//   * kmeans-high vs -low: same program, hotter vs cooler cluster-center
//     table;
//   * ssca2: tiny uniform transactions, near-linear for everyone;
//   * yada: long, capacity-straddling cavities -> sub-1x speedups, SMT
//     capacity pressure where core locks matter.
// A pairwise conflict probability between concurrent instances follows the
// birthday bound p ~ 1 - exp(-w_a * f_b / L) for w_a written lines against
// f_b touched lines in a region of L lines; hot regions (small L or high
// Zipf skew) are what make specific pairs contend.

WorkloadSpec genome_spec() {
  // Genome assembly: phase 1 deduplicates DNA segments in a shared hash
  // set; phase 2 links unique segments into contigs. Conflicts concentrate
  // on the contig-linking block (hot append regions), while hash inserts
  // conflict only on skewed buckets.
  WorkloadSpec w;
  w.name = "genome";
  w.regions = {
      {.name = "segment_hash", .lines = 2048, .zipf_skew = 0.8},
      {.name = "duplicate_flags", .lines = 64, .zipf_skew = 0.0},
      {.name = "contig_links", .lines = 512, .zipf_skew = 0.6},
  };
  w.types = {
      {.name = "insert_segment",
       .duration_mean = 1100,
       .duration_jitter = 0.3,
       .accesses = {{.region = 0, .reads = 6, .writes = 2}}},
      {.name = "dedup_lookup",
       .duration_mean = 700,
       .duration_jitter = 0.3,
       .accesses = {{.region = 0, .reads = 8, .writes = 0},
                    {.region = 1, .reads = 2, .writes = 1}}},
      {.name = "link_contig",
       .duration_mean = 2000,
       .duration_jitter = 0.4,
       .accesses = {{.region = 0, .reads = 150, .writes = 0},
                    {.region = 2, .reads = 10, .writes = 2}}},
  };
  w.phases = {
      {.fraction = 0.45, .mix = {8, 2, 0}},  // dedup phase
      {.fraction = 0.55, .mix = {1, 2, 7}},  // assembly phase
  };
  w.think_mean = 400;
  return w;
}

WorkloadSpec intruder_spec() {
  // Network intrusion detection: capture pops packet fragments off one
  // shared FIFO (two hot head/tail lines — near-certain conflicts between
  // concurrent captures), reassembly stitches fragments in a shared map,
  // detection reads a decision dictionary. The scheduling win is keeping
  // capture serialized without strangling reassemble/detect.
  // Each stage contends mostly with ITSELF (queue head; fragment-map
  // buckets; result list) and barely across stages — the structure that
  // separates fine-grained scheduling (three parallel serialization lanes)
  // from SCM's single auxiliary lock (one lane for every aborter).
  WorkloadSpec w;
  w.name = "intruder";
  w.regions = {
      {.name = "packet_queue_head", .lines = 4, .zipf_skew = 0.0},
      {.name = "capture_staging", .lines = 64, .zipf_skew = 0.0, .per_thread = true},
      {.name = "fragment_map", .lines = 192, .zipf_skew = 0.3},
      {.name = "decision_dictionary", .lines = 1024, .zipf_skew = 0.8},
      {.name = "result_list", .lines = 24, .zipf_skew = 0.0},
  };
  w.types = {
      {.name = "capture",
       .duration_mean = 350,
       .duration_jitter = 0.25,
       .accesses = {{.region = 0, .reads = 1, .writes = 1},
                    {.region = 1, .reads = 2, .writes = 2}}},
      {.name = "reassemble",
       .duration_mean = 1500,
       .duration_jitter = 0.4,
       .accesses = {{.region = 2, .reads = 16, .writes = 6},
                    {.region = 3, .reads = 6, .writes = 0}}},
      {.name = "detect",
       .duration_mean = 900,
       .duration_jitter = 0.3,
       .accesses = {{.region = 3, .reads = 10, .writes = 0},
                    {.region = 4, .reads = 2, .writes = 2}}},
  };
  w.phases = {{.fraction = 1.0, .mix = {4, 2.5, 3.5}}};
  w.think_mean = 300;
  return w;
}

namespace {

WorkloadSpec kmeans_spec(const char* name, std::uint32_t center_lines) {
  // K-means clustering: assignment scans a thread-private slice of the
  // observation matrix (no cross-thread conflicts, but real capacity
  // occupancy), center updates read-modify-write the shared centroid
  // table. "high" contention = few clusters (hot small table), "low" =
  // many clusters.
  WorkloadSpec w;
  w.name = name;
  w.regions = {
      {.name = "observations", .lines = 1024, .zipf_skew = 0.0, .per_thread = true},
      {.name = "centers", .lines = center_lines, .zipf_skew = 0.3},
  };
  w.types = {
      {.name = "assign_points",
       .duration_mean = 2400,
       .duration_jitter = 0.3,
       .accesses = {{.region = 0, .reads = 100, .writes = 8},
                    {.region = 1, .reads = 4, .writes = 0}}},
      {.name = "update_centers",
       .duration_mean = 450,
       .duration_jitter = 0.3,
       .accesses = {{.region = 1, .reads = 8, .writes = 4}}},
  };
  w.phases = {{.fraction = 1.0, .mix = {5, 5}}};
  w.think_mean = 200;
  return w;
}

}  // namespace

WorkloadSpec kmeans_high_spec() { return kmeans_spec("kmeans-high", 16); }
WorkloadSpec kmeans_low_spec() { return kmeans_spec("kmeans-low", 192); }

WorkloadSpec ssca2_spec() {
  // SSCA2 (kernel only, as in the paper): tiny graph-construction
  // transactions over a huge uniformly-accessed adjacency structure —
  // conflicts are vanishingly rare and everything should scale.
  WorkloadSpec w;
  w.name = "ssca2";
  w.regions = {
      {.name = "adjacency_arrays", .lines = 65536, .zipf_skew = 0.0},
      {.name = "weight_arrays", .lines = 32768, .zipf_skew = 0.0},
  };
  w.types = {
      {.name = "add_edge",
       .duration_mean = 260,
       .duration_jitter = 0.25,
       .accesses = {{.region = 0, .reads = 3, .writes = 2}}},
      {.name = "set_weight",
       .duration_mean = 200,
       .duration_jitter = 0.25,
       .accesses = {{.region = 1, .reads = 2, .writes = 1}}},
  };
  w.phases = {{.fraction = 1.0, .mix = {6, 4}}};
  w.think_mean = 150;
  return w;
}

namespace {

WorkloadSpec vacation_spec(const char* name, std::uint32_t hot_lines,
                           std::uint16_t idx_reads, std::uint16_t hot_writes) {
  // Travel reservation system: three relation trees (flights, rooms, cars)
  // plus a customer table. A reservation walks a large slice of each
  // relation's index (bulk reads -> genuine capacity pressure: alone it
  // fits the per-core transactional budget, but NOT when an SMT sibling is
  // simultaneously transactional) and then updates a few Zipf-popular
  // reservation heads (targeted conflicts). "high" = hotter heads and
  // wider queries, as in STAMP's vacation-high.
  WorkloadSpec w;
  w.name = name;
  w.regions = {
      {.name = "flights_index", .lines = 2048, .zipf_skew = 0.0},
      {.name = "rooms_index", .lines = 2048, .zipf_skew = 0.0},
      {.name = "cars_index", .lines = 2048, .zipf_skew = 0.0},
      {.name = "flights_hot", .lines = hot_lines, .zipf_skew = 0.5},
      {.name = "rooms_hot", .lines = hot_lines, .zipf_skew = 0.5},
      {.name = "cars_hot", .lines = hot_lines, .zipf_skew = 0.5},
      {.name = "customers", .lines = 1024, .zipf_skew = 0.5},
  };
  w.types = {
      {.name = "make_reservation",
       .duration_mean = 1700,
       .duration_jitter = 0.35,
       .accesses = {{.region = 0, .reads = idx_reads, .writes = 0},
                    {.region = 1, .reads = idx_reads, .writes = 0},
                    {.region = 2, .reads = idx_reads, .writes = 0},
                    {.region = 3, .reads = 2, .writes = hot_writes},
                    {.region = 4, .reads = 2, .writes = hot_writes},
                    {.region = 5, .reads = 2, .writes = hot_writes}}},
      {.name = "delete_customer",
       .duration_mean = 1300,
       .duration_jitter = 0.3,
       .accesses = {{.region = 6, .reads = 8, .writes = 4},
                    {.region = 0, .reads = 10, .writes = 0}}},
      {.name = "update_tables",
       .duration_mean = 1000,
       .duration_jitter = 0.3,
       .accesses = {{.region = 0, .reads = 20, .writes = 0},
                    {.region = 3, .reads = 2, .writes = 2},
                    {.region = 4, .reads = 2, .writes = 2}}},
  };
  w.phases = {{.fraction = 1.0, .mix = {85, 5, 10}}};
  w.think_mean = 300;
  return w;
}

}  // namespace

WorkloadSpec vacation_high_spec() { return vacation_spec("vacation-high", 192, 80, 1); }
WorkloadSpec vacation_low_spec() { return vacation_spec("vacation-low", 512, 55, 1); }

WorkloadSpec yada_spec() {
  // Yada (Delaunay mesh refinement): cavities are large — a typical
  // refinement sits just under the per-core transactional budget (so it
  // fits alone but NOT when an SMT sibling shares the core: core-lock
  // territory), and a tail of big cavities exceeds it outright (guaranteed
  // fallback). Cavities also genuinely overlap, so conflicts are frequent
  // and overall speedup stays below 1 as in the paper.
  WorkloadSpec w;
  w.name = "yada";
  w.regions = {
      {.name = "mesh", .lines = 524288, .zipf_skew = 0.0},
      {.name = "work_heap", .lines = 48, .zipf_skew = 0.4},
  };
  w.types = {
      {.name = "refine_cavity",
       .duration_mean = 6000,
       .duration_jitter = 0.35,
       .accesses = {{.region = 0, .reads = 250, .writes = 100},
                    {.region = 1, .reads = 2, .writes = 2}}},
      {.name = "refine_large_cavity",
       .duration_mean = 9500,
       .duration_jitter = 0.3,
       .accesses = {{.region = 0, .reads = 380, .writes = 180},
                    {.region = 1, .reads = 2, .writes = 2}}},
      {.name = "heap_maintenance",
       .duration_mean = 500,
       .duration_jitter = 0.3,
       .accesses = {{.region = 1, .reads = 4, .writes = 2}}},
  };
  w.phases = {{.fraction = 1.0, .mix = {70, 10, 20}}};
  w.think_mean = 500;
  return w;
}

const std::vector<WorkloadInfo>& all_workloads() {
  static const std::vector<WorkloadInfo> kAll = {
      {"genome", genome_spec, 4000},
      {"intruder", intruder_spec, 5000},
      {"kmeans-high", kmeans_high_spec, 4000},
      {"kmeans-low", kmeans_low_spec, 4000},
      {"ssca2", ssca2_spec, 8000},
      {"vacation-high", vacation_high_spec, 3000},
      {"vacation-low", vacation_low_spec, 3000},
      {"yada", yada_spec, 1200},
  };
  return kAll;
}

std::unique_ptr<sim::Workload> make_workload(const std::string& name,
                                             std::size_t n_threads) {
  for (const WorkloadInfo& info : all_workloads()) {
    if (info.name == name) {
      return std::make_unique<SpecWorkload>(info.spec(), n_threads);
    }
  }
  throw std::out_of_range("unknown workload: " + name);
}

}  // namespace seer::stamp
