// Declarative workload specifications.
//
// Each STAMP stand-in (DESIGN.md §1) is described as data: shared memory
// regions (hash tables, queues, reservation tables, meshes...), transaction
// types with durations and per-region access counts, and phases with type
// mixes. SpecWorkload turns a spec into the sim::Workload the machine
// executes, sampling concrete cache-line footprints per transaction
// instance.
//
// Why this models the real benchmarks faithfully *for scheduling purposes*:
// conflicts in the simulator arise from genuine set intersection over the
// sampled lines, so the per-type-pair conflict probabilities — the structure
// Seer's inference discovers — emerge from data-structure geometry (how hot
// a region is, how many lines a transaction touches there) exactly as they
// do in the originals.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/workload.hpp"
#include "util/small_vec.hpp"
#include "util/zipf.hpp"

namespace seer::stamp {

struct Region {
  std::string name;
  std::uint32_t lines = 1;  // size in cache lines
  double zipf_skew = 0.0;   // 0 = uniform access; higher = hotter head
  // Per-thread regions model thread-private data (e.g. a kmeans worker's
  // input slice): each thread addresses a disjoint copy, so accesses there
  // never conflict across threads (but still occupy capacity).
  bool per_thread = false;
};

struct RegionAccess {
  std::uint16_t region = 0;  // index into WorkloadSpec::regions
  std::uint16_t reads = 0;   // lines read from the region
  std::uint16_t writes = 0;  // lines written in the region
};

struct TxTypeSpec {
  std::string name;
  std::uint64_t duration_mean = 1000;  // cycles of serial work
  double duration_jitter = 0.3;        // uniform +- fraction of the mean
  util::SmallVec<RegionAccess, 6> accesses;
};

struct Phase {
  double fraction = 1.0;        // share of a thread's run spent here
  std::vector<double> mix;      // relative weight per transaction type
};

struct WorkloadSpec {
  std::string name;
  std::vector<Region> regions;
  std::vector<TxTypeSpec> types;
  std::vector<Phase> phases;        // must cover fractions summing to ~1
  std::uint64_t think_mean = 300;   // exponential inter-transaction gap
};

// Turns a spec into an executable workload. One instance per simulated run
// (it is stateless apart from precomputed tables, so reuse is also fine).
class SpecWorkload final : public sim::Workload {
 public:
  explicit SpecWorkload(WorkloadSpec spec, std::size_t n_threads);

  [[nodiscard]] const std::string& name() const override { return spec_.name; }
  [[nodiscard]] std::size_t n_types() const override { return spec_.types.size(); }
  [[nodiscard]] const std::string& type_name(core::TxTypeId t) const override {
    return spec_.types[static_cast<std::size_t>(t)].name;
  }

  void next(core::ThreadId thread, double progress, util::Xoshiro256& rng,
            sim::TxInstance& out) override;

  [[nodiscard]] std::uint64_t think_time(core::ThreadId thread,
                                         util::Xoshiro256& rng) override;

  [[nodiscard]] const WorkloadSpec& spec() const noexcept { return spec_; }

 private:
  [[nodiscard]] const Phase& phase_at(double progress) const noexcept;
  [[nodiscard]] std::uint32_t sample_line(std::uint16_t region, core::ThreadId thread,
                                          util::Xoshiro256& rng) const;

  WorkloadSpec spec_;
  std::size_t n_threads_;
  std::vector<std::uint64_t> region_base_;           // global line-id offsets
  std::vector<std::unique_ptr<util::Zipf>> zipf_;    // per skewed region
};

}  // namespace seer::stamp
