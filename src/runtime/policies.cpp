#include "runtime/policies.hpp"

#include "util/rng.hpp"

#include <cassert>

namespace seer::rt {

CommitMode classify_commit(const LockList& held, bool used_sgl) noexcept {
  if (used_sgl) return CommitMode::kSglFallback;
  bool aux = false;
  bool sched = false;
  bool txl = false;
  bool corel = false;
  for (const LockId& l : held) {
    switch (l.kind) {
      case LockKind::kAux: aux = true; break;
      case LockKind::kSched: sched = true; break;
      case LockKind::kTx: txl = true; break;
      case LockKind::kCore: corel = true; break;
      case LockKind::kSgl: break;
    }
  }
  if (aux) return CommitMode::kHtmAuxLock;
  if (sched) return CommitMode::kHtmSchedLock;
  if (txl && corel) return CommitMode::kHtmTxAndCore;
  if (txl) return CommitMode::kHtmTxLocks;
  if (corel) return CommitMode::kHtmCoreLock;
  return CommitMode::kHtmNoLocks;
}

namespace {

// ---------------------------------------------------------------------------
// HLE: implicit elision. Tiny retry budget and, crucially, no waiting on the
// fallback lock before re-attempting — which is exactly what produces the
// lemming effect the paper describes (§5.1, citing Dice et al. [6]).
class HlePolicy final : public Policy {
 public:
  explicit HlePolicy(int budget) : budget_(budget) {}

  void begin_tx(core::TxTypeId tx, std::uint64_t) override {
    tx_ = tx;
    attempts_ = budget_;
  }

  Directive next_attempt(std::uint64_t) override {
    Directive d;
    if (attempts_ <= 0) {
      d.mode = Directive::Mode::kFallback;
      return d;
    }
    d.mode = Directive::Mode::kHardware;
    d.wait_sgl = false;  // no lemming avoidance: retry blindly
    return d;
  }

  void on_abort(htm::AbortStatus, std::uint64_t) override { --attempts_; }

  LockList on_commit(bool, std::uint64_t) override { return {}; }

 private:
  int budget_;
  int attempts_ = 0;
  core::TxTypeId tx_ = core::kNoTx;
};

// ---------------------------------------------------------------------------
// RTM: the software retry loop every production TSX runtime uses — budget of
// MAX_ATTEMPTS and wait-while-SGL-locked before each attempt.
class RtmPolicy final : public Policy {
 public:
  explicit RtmPolicy(int budget) : budget_(budget) {}

  void begin_tx(core::TxTypeId tx, std::uint64_t) override {
    tx_ = tx;
    attempts_ = budget_;
  }

  Directive next_attempt(std::uint64_t) override {
    Directive d;
    if (attempts_ <= 0) {
      d.mode = Directive::Mode::kFallback;
      return d;
    }
    d.mode = Directive::Mode::kHardware;
    d.wait_sgl = true;
    return d;
  }

  void on_abort(htm::AbortStatus, std::uint64_t) override { --attempts_; }

  LockList on_commit(bool, std::uint64_t) override { return {}; }

 private:
  int budget_;
  int attempts_ = 0;
  core::TxTypeId tx_ = core::kNoTx;
};

// ---------------------------------------------------------------------------
// SCM (Afek, Levy, Morrison — PODC'14): after the first abort the
// transaction serializes on one auxiliary lock and keeps retrying in
// hardware while holding it; the SGL is reached only when the budget runs
// out. Restricts parallelism among *all* restarting transactions (the
// coarse-grained behaviour Table 3 quantifies).
class ScmPolicy final : public Policy {
 public:
  explicit ScmPolicy(int budget) : budget_(budget) {}

  void begin_tx(core::TxTypeId tx, std::uint64_t) override {
    tx_ = tx;
    attempts_ = budget_;
    want_aux_ = false;
    holds_aux_ = false;
  }

  Directive next_attempt(std::uint64_t) override {
    Directive d;
    if (attempts_ <= 0) {
      d.mode = Directive::Mode::kFallback;
      if (holds_aux_) {
        d.releases.push_back(kAuxLock);
        holds_aux_ = false;
      }
      return d;
    }
    d.mode = Directive::Mode::kHardware;
    d.wait_sgl = true;
    if (want_aux_ && !holds_aux_) {
      d.acquires.push_back(kAuxLock);
      holds_aux_ = true;
    }
    return d;
  }

  void on_abort(htm::AbortStatus, std::uint64_t) override {
    --attempts_;
    want_aux_ = true;
  }

  LockList on_commit(bool, std::uint64_t) override {
    LockList rel;
    if (holds_aux_) {
      rel.push_back(kAuxLock);
      holds_aux_ = false;
    }
    return rel;
  }

 private:
  int budget_;
  int attempts_ = 0;
  bool want_aux_ = false;
  bool holds_aux_ = false;
  core::TxTypeId tx_ = core::kNoTx;
};

// ---------------------------------------------------------------------------
// ATS (Yoo & Lee, SPAA'08): each thread keeps a contention factor updated on
// commit/abort; when it exceeds a threshold the thread serializes its whole
// attempt behind a single scheduling lock. Coarse-grained by construction —
// the contrast Seer is built against (Table 1).
class AtsPolicy final : public Policy {
 public:
  AtsPolicy(PolicyShared& shared, core::ThreadId self, int budget)
      : shared_(shared), self_(self), budget_(budget) {}

  void begin_tx(core::TxTypeId tx, std::uint64_t) override {
    tx_ = tx;
    attempts_ = budget_;
    holds_sched_ = false;
    serialize_ = shared_.ats_contention(self_) > shared_.config().ats.threshold;
  }

  Directive next_attempt(std::uint64_t) override {
    Directive d;
    if (attempts_ <= 0) {
      d.mode = Directive::Mode::kFallback;
      if (holds_sched_) {
        d.releases.push_back(kSchedLock);
        holds_sched_ = false;
      }
      return d;
    }
    d.mode = Directive::Mode::kHardware;
    d.wait_sgl = true;
    if (serialize_ && !holds_sched_) {
      d.acquires.push_back(kSchedLock);
      holds_sched_ = true;
    }
    return d;
  }

  void on_abort(htm::AbortStatus, std::uint64_t) override {
    --attempts_;
    shared_.ats_update(self_, /*aborted=*/true);
  }

  LockList on_commit(bool, std::uint64_t) override {
    shared_.ats_update(self_, /*aborted=*/false);
    LockList rel;
    if (holds_sched_) {
      rel.push_back(kSchedLock);
      holds_sched_ = false;
    }
    return rel;
  }

 private:
  PolicyShared& shared_;
  core::ThreadId self_;
  int budget_;
  int attempts_ = 0;
  bool holds_sched_ = false;
  bool serialize_ = false;
  core::TxTypeId tx_ = core::kNoTx;
};

// ---------------------------------------------------------------------------
// Oracle: the upper-bound scheduler built on PRECISE conflict attribution
// (available only from drivers that know the aggressor — the simulator,
// standing in for an STM's feedback). With exact pair conflict counts there
// is nothing to infer: flagged pairs are serialized from the FIRST retry,
// not the last-resort attempt, and no Gaussian filtering is needed.
class OraclePolicy final : public Policy {
 public:
  OraclePolicy(OracleShared& shared, core::ThreadId self, int budget)
      : shared_(shared), self_(self), budget_(budget) {}

  void begin_tx(core::TxTypeId tx, std::uint64_t) override {
    tx_ = tx;
    attempts_ = budget_;
    holds_tx_ = false;
    held_row_.clear();
    shared_.record_execution(tx);
    shared_.maybe_rebuild();
  }

  Directive next_attempt(std::uint64_t) override {
    Directive d;
    if (attempts_ <= 0) {
      d.mode = Directive::Mode::kFallback;
      d.releases = held_locks();
      holds_tx_ = false;
      held_row_.clear();
      return d;
    }
    d.mode = Directive::Mode::kHardware;
    d.wait_sgl = true;
    // Precise knowledge engages immediately: after the first abort the
    // flagged peers' locks are taken (contrast: Seer waits for attempts==1).
    if (!holds_tx_ && attempts_ < budget_) {
      const core::LockRow row = shared_.scheme()->row(tx_);
      if (!row.empty()) {
        for (core::TxTypeId y : row) {
          d.acquires.push_back(tx_lock(static_cast<std::uint16_t>(y)));
        }
        held_row_ = row;
        holds_tx_ = true;
      }
    }
    if (!holds_tx_) d.waits.push_back(tx_lock(static_cast<std::uint16_t>(tx_)));
    return d;
  }

  void on_conflict_attribution(core::TxTypeId culprit) override {
    shared_.record_conflict(tx_, culprit);
  }

  void on_abort(htm::AbortStatus, std::uint64_t) override { --attempts_; }

  LockList on_commit(bool, std::uint64_t) override {
    LockList rel = held_locks();
    holds_tx_ = false;
    held_row_.clear();
    return rel;
  }

 private:
  [[nodiscard]] LockList held_locks() const {
    LockList held;
    if (holds_tx_) {
      for (core::TxTypeId y : held_row_) {
        held.push_back(tx_lock(static_cast<std::uint16_t>(y)));
      }
    }
    return held;
  }

  OracleShared& shared_;
  core::ThreadId self_;
  int budget_;
  int attempts_ = 0;
  bool holds_tx_ = false;
  core::LockRow held_row_;
  core::TxTypeId tx_ = core::kNoTx;
};

// ---------------------------------------------------------------------------
// SGL: pessimistic lower bound — every transaction takes the global lock.
class SglPolicy final : public Policy {
 public:
  void begin_tx(core::TxTypeId, std::uint64_t) override {}
  Directive next_attempt(std::uint64_t) override {
    Directive d;
    d.mode = Directive::Mode::kFallback;
    return d;
  }
  void on_abort(htm::AbortStatus, std::uint64_t) override {}
  LockList on_commit(bool, std::uint64_t) override { return {}; }
};

// ---------------------------------------------------------------------------
// Seer — Alg. 1-4 over the core scheduler (Alg. 5 lives in seer_core).
class SeerPolicy final : public Policy {
 public:
  SeerPolicy(core::SeerScheduler& sched, core::ThreadId self)
      : sched_(sched),
        cfg_(sched.config()),
        self_(self),
        my_core_(static_cast<std::uint16_t>(self % cfg_.physical_cores)),
        sample_rng_(cfg_.seed ^ (0x9e3779b97f4a7c15ULL * (self + 1))),
        sample_mask_((1ULL << cfg_.sampling_shift) - 1) {}

  void begin_tx(core::TxTypeId tx, std::uint64_t now) override {
    tx_ = tx;
    attempts_ = cfg_.max_attempts;
    want_core_ = false;
    holds_core_ = false;
    holds_tx_ = false;
    held_row_.clear();
    (void)now;
    // Announce before executing (Alg. 1 line 5). Scheme maintenance is
    // driven by the driver through maintenance() — at transaction start
    // (DESIGN.md deviation #1) and while waiting on the SGL.
    sched_.announce(self_, tx);
  }

  Directive next_attempt(std::uint64_t) override {
    Directive d;
    if (attempts_ <= 0) {
      // Alg. 1 lines 18-20: release every Seer lock, then take the SGL.
      d.mode = Directive::Mode::kFallback;
      d.releases = held_locks();
      drop_held();
      return d;
    }
    d.mode = Directive::Mode::kHardware;
    d.wait_sgl = true;  // Alg. 4 line 55

    // Last-resort tx-lock acquisition (Alg. 4 lines 47-49): only when one
    // attempt remains.
    bool acquire_tx = cfg_.enable_tx_locks && attempts_ == 1 && !holds_tx_;
    core::LockRow row;
    if (acquire_tx) {
      row = sched_.scheme()->row(tx_);
      acquire_tx = !row.empty();
    }
    bool acquire_core = cfg_.enable_core_locks && want_core_ && !holds_core_;

    // Canonical-order re-acquisition: if tx locks are needed while the core
    // lock is already held, release it and take everything back in global
    // order (core before tx). Keeps hold-and-wait acyclic — see lock_id.hpp.
    if (acquire_tx && holds_core_) {
      d.releases.push_back(core_lock(my_core_));
      holds_core_ = false;
      acquire_core = cfg_.enable_core_locks;
    }
    if (acquire_core) {
      d.acquires.push_back(core_lock(my_core_));
      holds_core_ = true;
    }
    if (acquire_tx) {
      for (core::TxTypeId y : row) {
        d.acquires.push_back(tx_lock(static_cast<std::uint16_t>(y)));
      }
      held_row_ = row;
      holds_tx_ = true;
    }
    // §4's multi-CAS optimization: batch 2+ lock acquisitions in one HTM
    // transaction.
    d.htm_batch = cfg_.enable_htm_lock_acquire && d.acquires.size() >= 2;

    // Cooperative waiting (Alg. 4 lines 57-58): wait for our own tx lock and
    // core lock when some *other* thread holds them.
    if (!holds_tx_ && cfg_.enable_tx_locks) {
      d.waits.push_back(tx_lock(static_cast<std::uint16_t>(tx_)));
    }
    if (!holds_core_ && cfg_.enable_core_locks) d.waits.push_back(core_lock(my_core_));
    return d;
  }

  void on_abort(htm::AbortStatus status, std::uint64_t) override {
    if (should_sample()) sched_.record_abort(self_, tx_);  // Alg. 1 line 16
    --attempts_;
    if (status.cause() == htm::AbortCause::kCapacity) want_core_ = true;
  }

  LockList on_commit(bool hardware, std::uint64_t) override {
    // Alg. 2 line 28 (only hardware commits carry scheduling evidence).
    if (hardware && should_sample()) sched_.record_commit(self_, tx_);
    sched_.clear(self_);                             // Alg. 2 line 32
    LockList rel = held_locks();
    drop_held();
    return rel;
  }

  bool maintenance(std::uint64_t now) override {
    // Alg. 4 lines 52-54: one designated thread exploits SGL wait time (the
    // driver also calls this on the start path — DESIGN.md deviation #1).
    if (self_ != 0) return false;
    return sched_.maybe_update(self_, now);
  }

 private:
  [[nodiscard]] LockList held_locks() const {
    LockList held;
    if (holds_core_) held.push_back(core_lock(my_core_));
    if (holds_tx_) {
      for (core::TxTypeId y : held_row_) {
        held.push_back(tx_lock(static_cast<std::uint16_t>(y)));
      }
    }
    return held;
  }
  void drop_held() {
    holds_core_ = false;
    holds_tx_ = false;
    held_row_.clear();
  }

  // Sampling extension (SeerConfig::sampling_shift): record each event with
  // probability 2^-shift. Ratios stay unbiased; instrumentation shrinks.
  [[nodiscard]] bool should_sample() noexcept {
    return sample_mask_ == 0 || (sample_rng_.next() & sample_mask_) == 0;
  }

  core::SeerScheduler& sched_;
  const core::SeerConfig& cfg_;
  core::ThreadId self_;
  std::uint16_t my_core_;
  util::Xoshiro256 sample_rng_;
  std::uint64_t sample_mask_;
  core::TxTypeId tx_ = core::kNoTx;
  int attempts_ = 0;
  bool want_core_ = false;
  bool holds_core_ = false;
  bool holds_tx_ = false;
  core::LockRow held_row_;
};

}  // namespace

OracleShared::OracleShared(std::size_t n_types, const OracleParams& params)
    : n_types_(n_types),
      params_(params),
      pair_conflicts_(n_types * n_types),
      executions_(n_types),
      scheme_(std::make_shared<core::LockScheme>(n_types)) {}

void OracleShared::record_execution(core::TxTypeId x) noexcept {
  executions_[static_cast<std::size_t>(x)].fetch_add(1, std::memory_order_relaxed);
  since_rebuild_.fetch_add(1, std::memory_order_relaxed);
}

void OracleShared::record_conflict(core::TxTypeId victim,
                                   core::TxTypeId culprit) noexcept {
  pair_conflicts_[static_cast<std::size_t>(victim) * n_types_ +
                  static_cast<std::size_t>(culprit)]
      .fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t OracleShared::conflicts(core::TxTypeId x, core::TxTypeId y) const noexcept {
  return pair_conflicts_[static_cast<std::size_t>(x) * n_types_ +
                         static_cast<std::size_t>(y)]
      .load(std::memory_order_relaxed);
}

void OracleShared::maybe_rebuild() {
  std::uint64_t due = since_rebuild_.load(std::memory_order_relaxed);
  if (due < params_.update_period) return;
  if (!since_rebuild_.compare_exchange_strong(due, 0, std::memory_order_acq_rel)) {
    return;  // another thread claimed the rebuild
  }
  auto next = std::make_shared<core::LockScheme>(n_types_);
  const auto n = static_cast<core::TxTypeId>(n_types_);
  for (core::TxTypeId x = 0; x < n; ++x) {
    const auto ex = static_cast<double>(
        executions_[static_cast<std::size_t>(x)].load(std::memory_order_relaxed));
    if (ex <= 0.0) continue;
    for (core::TxTypeId y = 0; y < n; ++y) {
      const auto cxy = static_cast<double>(conflicts(x, y));
      if (cxy / ex > params_.conflict_threshold) {
        next->add(x, y);
        next->add(y, x);
      }
    }
  }
  std::atomic_store_explicit(&scheme_, std::shared_ptr<const core::LockScheme>(next),
                             std::memory_order_release);
}

PolicyShared::PolicyShared(const PolicyConfig& cfg, std::size_t n_threads,
                           std::size_t n_types)
    : cfg_(cfg), n_threads_(n_threads), n_types_(n_types), ats_cf_(n_threads) {
  if (cfg_.kind == PolicyKind::kSeer) {
    core::SeerConfig sc = cfg_.seer;
    sc.n_threads = n_threads;
    sc.n_types = n_types;
    sc.max_attempts = cfg_.max_attempts;
    seer_ = std::make_unique<core::SeerScheduler>(sc);
  }
  if (cfg_.kind == PolicyKind::kOracle) {
    oracle_ = std::make_unique<OracleShared>(n_types, cfg_.oracle);
  }
  for (auto& c : ats_cf_) c.value.store(0.0, std::memory_order_relaxed);
}

double PolicyShared::ats_contention(core::ThreadId t) const noexcept {
  return ats_cf_[t].value.load(std::memory_order_relaxed);
}

void PolicyShared::ats_update(core::ThreadId t, bool aborted) noexcept {
  const double alpha = cfg_.ats.alpha;
  const double cur = ats_cf_[t].value.load(std::memory_order_relaxed);
  const double next = cur * (1.0 - alpha) + (aborted ? alpha : 0.0);
  ats_cf_[t].value.store(next, std::memory_order_relaxed);
}

std::unique_ptr<Policy> PolicyShared::make_thread_policy(core::ThreadId thread) {
  assert(thread < n_threads_);
  switch (cfg_.kind) {
    case PolicyKind::kHle:
      return std::make_unique<HlePolicy>(cfg_.hle_attempts);
    case PolicyKind::kRtm:
      return std::make_unique<RtmPolicy>(cfg_.max_attempts);
    case PolicyKind::kScm:
      return std::make_unique<ScmPolicy>(cfg_.max_attempts);
    case PolicyKind::kAts:
      return std::make_unique<AtsPolicy>(*this, thread, cfg_.max_attempts);
    case PolicyKind::kSgl:
      return std::make_unique<SglPolicy>();
    case PolicyKind::kSeer:
      return std::make_unique<SeerPolicy>(*seer_, thread);
    case PolicyKind::kOracle:
      return std::make_unique<OraclePolicy>(*oracle_, thread, cfg_.max_attempts);
  }
  return nullptr;
}

}  // namespace seer::rt
