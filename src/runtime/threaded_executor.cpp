#include "runtime/threaded_executor.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "util/backoff.hpp"

namespace seer::rt {

ThreadedExecutor::ThreadedExecutor(htm::SoftHtm& tm, const PolicyConfig& policy,
                                   Options opts)
    : tm_(tm),
      opts_(opts),
      shared_(with_obs(policy, opts), opts.n_threads, opts.n_types),
      locks_(opts.n_types, opts.physical_cores) {
  if (opts_.metrics != nullptr) {
    obs::MetricsRegistry& m = *opts_.metrics;
    m_commits_ = m.counter("rt.commits");
    m_sgl_fallbacks_ = m.counter("rt.sgl_fallbacks");
    h_retry_depth_ = m.histogram("rt.retry_depth");
    for (std::size_t c = 0; c < m_aborts_.size(); ++c) {
      m_aborts_[c] = m.counter(
          std::string("rt.aborts.")
              .append(htm::to_string(static_cast<htm::AbortCause>(c))));
    }
    htm_metrics_.registry = opts_.metrics;
    htm_metrics_.promote_capacity = m.counter("htm.read_promote.capacity");
    htm_metrics_.promote_saturation = m.counter("htm.read_promote.saturation");
    htm_metrics_.capacity_abort_sig = m.counter("htm.aborts.capacity.sig_only");
    htm_metrics_.capacity_abort_exact = m.counter("htm.aborts.capacity.exact");
  }
}

std::uint64_t ThreadedExecutor::ThreadHandle::now() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_ia32_rdtsc();  // the paper's RDTSC-based feedback clock
#else
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

void ThreadedExecutor::ThreadHandle::apply_releases(const Directive& d, LockList& held) {
  for (const LockId& id : d.releases) {
    exec_->locks_.get(id).unlock();
    auto it = std::find(held.begin(), held.end(), id);
    assert(it != held.end() && "policy released a lock the driver never took");
    if (it != held.end()) {
      *it = held.back();
      held.pop_back();
    }
  }
}

void ThreadedExecutor::ThreadHandle::acquire_locks(const Directive& d, LockList& held) {
  if (d.acquires.empty()) return;
  bool done = false;
  if (d.htm_batch && d.acquires.size() >= 2) {
    // §4's multi-CAS optimization: grab all locks all-or-nothing. On real
    // TSX this is one hardware transaction over the lock words; over the
    // software TM an equivalent atomic try-all (see DESIGN.md) keeps the
    // all-or-nothing semantics without transacting on directly-mutated
    // words.
    for (int attempt = 0; attempt < exec_->opts_.batch_tries && !done; ++attempt) {
      std::size_t got = 0;
      for (; got < d.acquires.size(); ++got) {
        if (!exec_->locks_.get(d.acquires[got]).try_lock()) break;
      }
      if (got == d.acquires.size()) {
        done = true;
      } else {
        for (std::size_t i = 0; i < got; ++i) {
          exec_->locks_.get(d.acquires[i]).unlock();
        }
        std::this_thread::yield();
      }
    }
  }
  if (!done) {
    // Blocking acquisition in the canonical order the policy supplied —
    // globally consistent, hence deadlock-free.
    for (const LockId& id : d.acquires) exec_->locks_.get(id).lock();
  }
  for (const LockId& id : d.acquires) held.push_back(id);
}

void ThreadedExecutor::ThreadHandle::wait_locks(const Directive& d) {
  if (d.wait_sgl) {
    // Alg. 4 line 55; while waiting, the designated thread opportunistically
    // refreshes the locking scheme (lines 52-54).
    WordLock& sgl = exec_->locks_.sgl();
    util::Backoff backoff;
    while (sgl.is_locked()) {
      policy_->maintenance(now());
      backoff.pause();
    }
  }
  // Cooperative waits are bounded: they are a scheduling heuristic, not a
  // correctness mechanism, and bounding them rules out waiting cycles.
  for (const LockId& id : d.waits) {
    const WordLock& l = exec_->locks_.get(id);
    util::Backoff backoff;
    for (std::uint64_t spin = 0;
         l.is_locked() && spin < exec_->opts_.wait_spin_budget; ++spin) {
      backoff.pause();
    }
  }
}

void ThreadedExecutor::ThreadHandle::finish(bool hardware, LockList& held) {
  const LockList to_release = policy_->on_commit(hardware, now());
  for (const LockId& id : to_release) {
    exec_->locks_.get(id).unlock();
    auto it = std::find(held.begin(), held.end(), id);
    assert(it != held.end() && "policy released a lock the driver never took");
    if (it != held.end()) {
      *it = held.back();
      held.pop_back();
    }
  }
  assert(held.empty() && "locks leaked across transaction completion");
  held.clear();
}

ExecutorStats ThreadedExecutor::aggregate(
    const std::vector<std::unique_ptr<ThreadHandle>>& handles) {
  ExecutorStats stats;
  for (const auto& h : handles) {
    if (!h) continue;
    const ThreadCounters& c = h->counters();
    for (std::size_t i = 0; i < c.commits_by_mode.size(); ++i) {
      stats.total.commits_by_mode[i] += c.commits_by_mode[i];
    }
    for (std::size_t i = 0; i < c.aborts_by_cause.size(); ++i) {
      stats.total.aborts_by_cause[i] += c.aborts_by_cause[i];
    }
    stats.total.hw_attempts += c.hw_attempts;
  }
  return stats;
}

}  // namespace seer::rt
