// The scheduling policies evaluated in the paper (§2, §5.1) plus Seer.
//
//   HLE  — hardware lock elision: a tiny implicit retry budget, no waiting
//          on the fallback lock (hence the lemming effect under contention).
//   RTM  — software retry loop (budget 5), waits for the SGL to be free
//          before every attempt. The de-facto technique for commodity HTM;
//          ATS-in-spirit per the paper's discussion.
//   SCM  — software-assisted conflict management (Afek et al., PODC'14):
//          aborted transactions serialize on one auxiliary lock before
//          retrying in hardware; the SGL is reached only on budget
//          exhaustion.
//   ATS  — adaptive transaction scheduling (Yoo & Lee, SPAA'08): a
//          per-thread contention factor decides whether to serialize the
//          whole attempt behind a single scheduling lock.
//   SGL  — always take the global lock (pessimistic bound).
//   Seer — this paper: Alg. 1-5 over the core scheduler.
#pragma once

#include <memory>
#include <vector>

#include "core/seer_scheduler.hpp"
#include "runtime/policy.hpp"

namespace seer::rt {

// kOracle is an upper-bound baseline available only where precise conflict
// attribution exists (the simulator, standing in for an STM's feedback —
// Figure 1): it learns the conflict graph from exact aggressor identities
// and serializes flagged pairs from the first retry on. The gap between
// Seer and Oracle measures what the probabilistic inference loses to the
// imprecision of commodity HTM feedback.
enum class PolicyKind : std::uint8_t { kHle, kRtm, kScm, kAts, kSgl, kSeer, kOracle };

[[nodiscard]] constexpr const char* to_string(PolicyKind k) noexcept {
  switch (k) {
    case PolicyKind::kHle: return "HLE";
    case PolicyKind::kRtm: return "RTM";
    case PolicyKind::kScm: return "SCM";
    case PolicyKind::kAts: return "ATS";
    case PolicyKind::kSgl: return "SGL";
    case PolicyKind::kSeer: return "Seer";
    case PolicyKind::kOracle: return "Oracle";
  }
  return "?";
}

struct AtsParams {
  double alpha = 0.3;      // exponential moving average weight
  double threshold = 0.5;  // contention factor above which to serialize
};

struct OracleParams {
  // Serialize pair (x, y) once precisely-attributed conflicts between them
  // account for more than this fraction of x's executions.
  double conflict_threshold = 0.05;
  // Executions between scheme rebuilds.
  std::uint64_t update_period = 512;
};

struct PolicyConfig {
  PolicyKind kind = PolicyKind::kRtm;
  int max_attempts = 5;  // paper §5.1: budget of 5 for all approaches
  int hle_attempts = 2;  // HLE's implicit, implementation-defined budget
  AtsParams ats{};
  OracleParams oracle{};
  core::SeerConfig seer{};
};

// Shared state of the Oracle baseline: exact pairwise conflict counts fed
// by precise attribution, and the lock scheme derived from them.
class OracleShared {
 public:
  OracleShared(std::size_t n_types, const OracleParams& params);

  void record_execution(core::TxTypeId x) noexcept;
  void record_conflict(core::TxTypeId victim, core::TxTypeId culprit) noexcept;

  // Rebuilds the scheme if due (any thread may call; internally throttled).
  void maybe_rebuild();

  [[nodiscard]] std::shared_ptr<const core::LockScheme> scheme() const {
    return std::atomic_load_explicit(&scheme_, std::memory_order_acquire);
  }
  [[nodiscard]] std::uint64_t conflicts(core::TxTypeId x,
                                        core::TxTypeId y) const noexcept;

 private:
  std::size_t n_types_;
  OracleParams params_;
  std::vector<std::atomic<std::uint64_t>> pair_conflicts_;  // n*n
  std::vector<std::atomic<std::uint64_t>> executions_;      // n
  std::atomic<std::uint64_t> since_rebuild_{0};
  std::shared_ptr<const core::LockScheme> scheme_;
};

// Global state shared by all threads running one policy instance
// (the SeerScheduler, ATS contention factors, ...). Create one per
// experiment, then one Policy per thread from it.
class PolicyShared {
 public:
  PolicyShared(const PolicyConfig& cfg, std::size_t n_threads, std::size_t n_types);

  [[nodiscard]] std::unique_ptr<Policy> make_thread_policy(core::ThreadId thread);

  [[nodiscard]] const PolicyConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] std::size_t n_threads() const noexcept { return n_threads_; }
  [[nodiscard]] std::size_t n_types() const noexcept { return n_types_; }

  // Non-null only for PolicyKind::kSeer.
  [[nodiscard]] core::SeerScheduler* seer() noexcept { return seer_.get(); }

  // Non-null only for PolicyKind::kOracle.
  [[nodiscard]] OracleShared* oracle() noexcept { return oracle_.get(); }

  // ATS: per-thread contention factors (single-writer cells).
  [[nodiscard]] double ats_contention(core::ThreadId t) const noexcept;
  void ats_update(core::ThreadId t, bool aborted) noexcept;

 private:
  PolicyConfig cfg_;
  std::size_t n_threads_;
  std::size_t n_types_;
  std::unique_ptr<core::SeerScheduler> seer_;
  std::unique_ptr<OracleShared> oracle_;
  std::vector<util::Padded<std::atomic<double>>> ats_cf_;
};

}  // namespace seer::rt
