// Symbolic lock identifiers.
//
// Policies are pure decision logic shared between the real-threads driver
// and the machine simulator, so they cannot hold pointers to concrete lock
// objects. Instead they name locks symbolically and each driver reifies the
// names (WordLock for threads, SimLock for the simulator).
//
// Canonical acquisition order (kind, then index) is a total order used by
// every multi-lock acquisition in the system, which rules out deadlock
// between acquirers: aux < sched < core < tx, and the SGL is never co-held
// with anything (Seer releases all of its locks before falling back,
// Alg. 1 line 19).
#pragma once

#include <compare>
#include <cstdint>

namespace seer::rt {

enum class LockKind : std::uint8_t {
  kSgl = 0,    // single global lock — the pessimistic fallback
  kAux = 1,    // SCM's auxiliary serialization lock
  kSched = 2,  // ATS's serialization lock
  kCore = 3,   // Seer: one per physical core (capacity aborts)
  kTx = 4,     // Seer: one per transaction type (conflict serialization)
};

struct LockId {
  LockKind kind{};
  std::uint16_t index = 0;

  friend constexpr auto operator<=>(const LockId&, const LockId&) = default;
};

inline constexpr LockId kSglLock{LockKind::kSgl, 0};
inline constexpr LockId kAuxLock{LockKind::kAux, 0};
inline constexpr LockId kSchedLock{LockKind::kSched, 0};

[[nodiscard]] constexpr LockId core_lock(std::uint16_t physical_core) noexcept {
  return LockId{LockKind::kCore, physical_core};
}
[[nodiscard]] constexpr LockId tx_lock(std::uint16_t tx_type) noexcept {
  return LockId{LockKind::kTx, tx_type};
}

}  // namespace seer::rt
