// ThreadedExecutor — the real-threads driver of the policy protocol.
//
// Reifies the symbolic lock space as WordLocks, runs transaction bodies over
// a SoftHtm (or, with SEER_ENABLE_TSX, real RTM hardware) and drives any
// Policy through the protocol documented in policy.hpp. This is the
// embedding a downstream user links against: create one executor, one
// ThreadHandle per thread, and call handle.run(txType, body).
//
// The transaction body must be a generic callable `void(auto& tx)` using
// only tx.read / tx.write / tx.abort on htm::TmWord memory. Both paths run
// it through SoftHtm: speculatively with hardware-like capacity limits, or
// — on the single-global-lock fallback — as an unbounded stripe-coordinated
// transaction retried while holding the SGL (which keeps pessimistic
// updates atomic against in-flight speculative commits).
#pragma once

#include <array>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "htm/soft_htm.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/policies.hpp"
#include "runtime/policy.hpp"
#include "runtime/word_lock.hpp"
#include "util/backoff.hpp"
#include "util/cacheline.hpp"

namespace seer::rt {

// The concrete lock objects behind the symbolic LockIds.
class LockSpace {
 public:
  LockSpace(std::size_t n_types, std::size_t physical_cores)
      : tx_locks_(n_types), core_locks_(physical_cores) {}

  [[nodiscard]] WordLock& sgl() noexcept { return sgl_; }

  [[nodiscard]] WordLock& get(LockId id) noexcept {
    switch (id.kind) {
      case LockKind::kSgl: return sgl_;
      case LockKind::kAux: return aux_;
      case LockKind::kSched: return sched_;
      case LockKind::kTx: return tx_locks_[id.index].value;
      case LockKind::kCore: return core_locks_[id.index].value;
    }
    __builtin_unreachable();
  }

 private:
  WordLock sgl_;
  WordLock aux_;
  WordLock sched_;
  std::vector<util::Padded<WordLock>> tx_locks_;
  std::vector<util::Padded<WordLock>> core_locks_;
};

// Per-thread outcome counters (single-writer; summed on demand).
struct ThreadCounters {
  std::array<std::uint64_t, static_cast<std::size_t>(CommitMode::kModeCount)>
      commits_by_mode{};
  std::array<std::uint64_t, 4> aborts_by_cause{};  // indexed by AbortCause
  std::uint64_t hw_attempts = 0;
};

struct ExecutorStats {
  ThreadCounters total;

  [[nodiscard]] std::uint64_t commits() const noexcept {
    std::uint64_t n = 0;
    for (auto c : total.commits_by_mode) n += c;
    return n;
  }
  [[nodiscard]] std::uint64_t aborts() const noexcept {
    std::uint64_t n = 0;
    for (auto c : total.aborts_by_cause) n += c;
    return n;
  }
  [[nodiscard]] double mode_fraction(CommitMode m) const noexcept {
    const std::uint64_t c = commits();
    return c == 0 ? 0.0
                  : static_cast<double>(
                        total.commits_by_mode[static_cast<std::size_t>(m)]) /
                        static_cast<double>(c);
  }
};

class ThreadedExecutor {
 public:
  struct Options {
    std::size_t n_threads = 4;
    std::size_t n_types = 4;
    std::size_t physical_cores = 4;
    // Spin budget for cooperative (non-acquiring) waits on tx/core locks.
    // Bounded so that the wait heuristic can never deadlock (DESIGN.md).
    std::uint64_t wait_spin_budget = 1u << 14;
    // All-or-nothing batched lock acquisition attempts before falling back
    // to blocking in-order acquisition.
    int batch_tries = 8;

    // --- observability (src/obs/, DESIGN.md §8) --------------------------
    // Optional sinks shared by the executor, the SoftHtm contexts it owns
    // and (unless the policy config installs its own) the Seer scheduler.
    // Both must outlive the executor; the embedder freezes the registry
    // after constructing the executor and before spawning threads.
    obs::MetricsRegistry* metrics = nullptr;
    obs::TraceSink* trace = nullptr;
  };

  ThreadedExecutor(htm::SoftHtm& tm, const PolicyConfig& policy, Options opts);

  class ThreadHandle {
   public:
    // Executes one transaction of type `tx` to completion under the policy.
    // Returns how it ultimately committed.
    template <typename Body>
    CommitMode run(core::TxTypeId tx, Body&& body) {
      assert(tx >= 0 && static_cast<std::size_t>(tx) < exec_->opts_.n_types);
      policy_->maintenance(now());
      policy_->begin_tx(tx, now());
      LockList held;
      std::uint64_t tx_attempts = 0;
      while (true) {
        const Directive d = policy_->next_attempt(now());
        apply_releases(d, held);
        acquire_locks(d, held);
        if (d.mode == Directive::Mode::kFallback) {
          run_fallback(body);
          finish(/*hardware=*/false, held);
          obs_tx_done(CommitMode::kSglFallback, tx, tx_attempts);
          return CommitMode::kSglFallback;
        }
        wait_locks(d);
        ++counters_.hw_attempts;
        ++tx_attempts;
        const htm::AbortStatus status = hw_attempt(body);
        if (status.raw() == htm::kXBeginStarted) {
          const CommitMode mode = classify_commit(held, /*used_sgl=*/false);
          counters_.commits_by_mode[static_cast<std::size_t>(mode)]++;
          finish(/*hardware=*/true, held);
          obs_tx_done(mode, tx, tx_attempts);
          return mode;
        }
        counters_.aborts_by_cause[static_cast<std::size_t>(status.cause())]++;
        if (exec_->opts_.metrics != nullptr) {
          exec_->opts_.metrics->add(
              exec_->m_aborts_[static_cast<std::size_t>(status.cause())], id_);
        }
        policy_->on_abort(status, now());
      }
    }

    [[nodiscard]] const ThreadCounters& counters() const noexcept { return counters_; }
    [[nodiscard]] core::ThreadId id() const noexcept { return id_; }

    // --- check-harness instrumentation (src/check/) ----------------------
    // Per-thread hooks into the underlying SoftHtm context: deterministic
    // abort injection and commit logging for the opacity checker. Install
    // before the owning thread starts running transactions; the injector /
    // log must outlive every run() on this handle.
    void set_fault_injector(htm::FaultInjector* injector) noexcept {
      tm_ctx_.set_fault_injector(injector);
    }
    void set_tx_log(htm::TxLog* log) noexcept { tm_ctx_.set_tx_log(log); }

   private:
    friend class ThreadedExecutor;
    ThreadHandle(ThreadedExecutor& exec, core::ThreadId id)
        : exec_(&exec),
          id_(id),
          tm_ctx_(exec.tm_),
          policy_(exec.shared_.make_thread_policy(id)) {
      tm_ctx_.set_obs(exec.opts_.trace, id);
      if (exec.opts_.metrics != nullptr) {
        htm::HtmMetrics m = exec.htm_metrics_;
        m.lane = id;
        tm_ctx_.set_metrics(m);
      }
    }

    // Per-completed-transaction observability: one commit bump, the retry
    // depth (hardware attempts consumed, 0 = straight to fallback), and the
    // fallback counter/event when the SGL path was taken.
    void obs_tx_done(CommitMode mode, core::TxTypeId tx,
                     std::uint64_t attempts) noexcept {
      obs::MetricsRegistry* m = exec_->opts_.metrics;
      if (m != nullptr) {
        m->add(exec_->m_commits_, id_);
        m->observe(exec_->h_retry_depth_, id_, attempts);
        if (mode == CommitMode::kSglFallback) m->add(exec_->m_sgl_fallbacks_, id_);
      }
      if (exec_->opts_.trace != nullptr && mode == CommitMode::kSglFallback) {
        exec_->opts_.trace->emit(id_, obs::TraceKind::kSglFallback,
                                 obs::now_ticks(), static_cast<std::uint64_t>(tx));
      }
    }

    template <typename Body>
    htm::AbortStatus hw_attempt(Body&& body) {
      WordLock& sgl = exec_->locks_.sgl();
      return tm_ctx_.attempt([&](htm::SoftHtm::Tx& tx) {
        // Alg. 1 lines 11-12: abort explicitly if the fallback is in use;
        // subscribing to the observed sequence snapshot aborts us on any
        // later acquisition — including a full acquire/release cycle (the
        // release advances the sequence, so there is no ABA window).
        const std::uint64_t snapshot = sgl.sequence();
        if ((snapshot & 1) != 0) tx.abort(htm::kXAbortCodeSglLocked);
        tx.subscribe(sgl.word(), snapshot);
        body(tx);
      });
    }

    template <typename Body>
    void run_fallback(Body&& body) {
      // Pessimistic path: hold the SGL (blocking new hardware attempts via
      // their subscription) and run the body as an unbounded, stripe-
      // coordinated transaction so its updates are atomic even against
      // hardware transactions that were already mid-commit when we took the
      // lock. Those in-flight commits drain quickly — new ones cannot start
      // while we hold the SGL — so the retry loop terminates.
      WordLock& sgl = exec_->locks_.sgl();
      sgl.lock();
      util::Backoff backoff;
      while (true) {
        const htm::AbortStatus s =
            tm_ctx_.attempt_unbounded([&](htm::SoftHtm::Tx& tx) { body(tx); });
        if (s.raw() == htm::kXBeginStarted) break;
        backoff.pause();
      }
      sgl.unlock();
      counters_.commits_by_mode[static_cast<std::size_t>(CommitMode::kSglFallback)]++;
    }

    void apply_releases(const Directive& d, LockList& held);
    void acquire_locks(const Directive& d, LockList& held);
    void wait_locks(const Directive& d);
    void finish(bool hardware, LockList& held);

    [[nodiscard]] static std::uint64_t now() noexcept;

    ThreadedExecutor* exec_;
    core::ThreadId id_;
    htm::SoftHtm::ThreadContext tm_ctx_;
    std::unique_ptr<Policy> policy_;
    ThreadCounters counters_;
  };

  // One handle per thread; create before spawning, use strictly from the
  // owning thread.
  [[nodiscard]] std::unique_ptr<ThreadHandle> make_handle(core::ThreadId id) {
    assert(id < opts_.n_threads);
    return std::unique_ptr<ThreadHandle>(new ThreadHandle(*this, id));
  }

  [[nodiscard]] const Options& options() const noexcept { return opts_; }
  [[nodiscard]] PolicyShared& policy_shared() noexcept { return shared_; }
  [[nodiscard]] LockSpace& lock_space() noexcept { return locks_; }

  // Sums counters across the given handles (call after joining workers).
  [[nodiscard]] static ExecutorStats aggregate(
      const std::vector<std::unique_ptr<ThreadHandle>>& handles);

 private:
  friend class ThreadHandle;

  // Routes the executor-level obs sinks into the Seer scheduler unless the
  // policy config already carries its own.
  [[nodiscard]] static PolicyConfig with_obs(PolicyConfig policy, const Options& opts) {
    if (policy.seer.metrics == nullptr) policy.seer.metrics = opts.metrics;
    if (policy.seer.obs_trace == nullptr) policy.seer.obs_trace = opts.trace;
    // LockSpace is sized from opts.physical_cores; SeerPolicy indexes its core
    // slice with my_core_ = thread % seer.physical_cores, so keep them in sync.
    policy.seer.physical_cores = opts.physical_cores;
    return policy;
  }

  htm::SoftHtm& tm_;
  Options opts_;
  PolicyShared shared_;
  LockSpace locks_;

  // Observability metric ids (registered in the constructor when
  // opts_.metrics is set; kNoMetric otherwise).
  obs::MetricId m_commits_ = obs::kNoMetric;
  obs::MetricId m_sgl_fallbacks_ = obs::kNoMetric;
  obs::MetricId h_retry_depth_ = obs::kNoMetric;
  std::array<obs::MetricId, 4> m_aborts_{obs::kNoMetric, obs::kNoMetric,
                                         obs::kNoMetric, obs::kNoMetric};
  // SoftHtm read-tier counters (htm.read_promote.*, htm.aborts.capacity.*),
  // registered alongside the rt.* metrics and handed to every ThreadHandle's
  // context with its own lane. These let abort attribution distinguish a
  // capacity abort raised while reads were still signature-only from one
  // raised under exact accounting.
  htm::HtmMetrics htm_metrics_;
};

}  // namespace seer::rt
