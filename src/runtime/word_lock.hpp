// WordLock — a TTAS sequence-lock whose state is a single TM-visible word.
//
// Keeping the lock state in an htm::TmWord lets hardware/software
// transactions *subscribe* to it: reading the word inside a transaction puts
// it in the transaction's read set, so a later acquisition aborts the
// transaction — exactly the mechanism Alg. 1 lines 11-12 relies on for the
// single-global-lock fallback, and what HLE's lock elision does implicitly.
//
// The word encodes a sequence counter: ODD = locked, EVEN = free, and every
// release advances the sequence. This matters for the software TM: a
// subscription checks the word's VALUE, and without the sequence a full
// acquire/release cycle between a transaction's reads and its commit would
// be invisible (ABA) — allowing a speculative reader to miss a pessimistic
// writer's updates. Real HTM gets this for free from cache coherence; the
// sequence restores it here.
#pragma once

#include <atomic>
#include <cstdint>

#include "htm/soft_htm.hpp"
#include "util/backoff.hpp"
#include "util/cacheline.hpp"
#include "util/spinlock.hpp"

namespace seer::rt {

class alignas(util::kCacheLineBytes) WordLock {
 public:
  WordLock() = default;
  WordLock(const WordLock&) = delete;
  WordLock& operator=(const WordLock&) = delete;

  void lock() noexcept {
    util::Backoff backoff;
    while (!try_lock()) {
      while (is_locked()) backoff.pause();
    }
  }

  [[nodiscard]] bool try_lock() noexcept {
    std::uint64_t v = word_.load(std::memory_order_relaxed);
    if ((v & 1) != 0) return false;
    return word_.compare_exchange_strong(v, v + 1, std::memory_order_acquire,
                                         std::memory_order_relaxed);
  }

  void unlock() noexcept {
    // Odd -> next even: frees the lock AND advances the sequence so every
    // subscriber from before this critical section fails revalidation.
    word_.fetch_add(1, std::memory_order_release);
  }

  [[nodiscard]] bool is_locked() const noexcept {
    return (word_.load(std::memory_order_acquire) & 1) != 0;
  }

  // Current raw sequence word. Even values are "free" snapshots suitable as
  // subscription baselines.
  [[nodiscard]] std::uint64_t sequence() const noexcept {
    return word_.load(std::memory_order_acquire);
  }

  // The raw word, for transactional subscription against a snapshot taken
  // with sequence().
  [[nodiscard]] const htm::TmWord& word() const noexcept { return word_; }

 private:
  htm::TmWord word_{0};
};

}  // namespace seer::rt
