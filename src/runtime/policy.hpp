// The policy protocol: how a scheduling policy talks to an execution driver.
//
// A Policy instance is per-thread decision logic (it may share global state
// with its siblings, e.g. the SeerScheduler). A *driver* — the real-threads
// executor or the machine simulator — owns the concrete locks and the HTM
// and runs this loop for every transaction:
//
//   policy.begin_tx(tx, now)
//   loop:
//     d = policy.next_attempt(now)
//     release d.releases; acquire d.acquires (canonical order, optionally
//       batched in one HTM transaction if d.htm_batch); honour d.waits
//     if d.mode == kFallback:
//         take SGL, run body pessimistically, release SGL
//         policy.on_commit(hardware=false) -> locks to release
//     else:
//         run one hardware attempt (subscribed to the SGL word)
//         committed ? policy.on_commit(hardware=true) -> release list
//                   : policy.on_abort(status); continue
//
// Policies never block and never touch memory shared with transaction
// bodies; all waiting/acquiring is performed by the driver, which is what
// lets the identical policy code run on real threads and in simulation.
#pragma once

#include <cstdint>
#include <memory>

#include "core/types.hpp"
#include "htm/abort_code.hpp"
#include "runtime/lock_id.hpp"
#include "util/small_vec.hpp"

namespace seer::rt {

using LockList = util::SmallVec<LockId, 20>;

struct Directive {
  enum class Mode : std::uint8_t {
    kHardware,  // one more speculative attempt
    kFallback,  // give up on HTM, serialize on the single global lock
  };

  Mode mode = Mode::kHardware;
  // Locks to release before acquiring (canonical-order re-acquisition and
  // the pre-fallback release of Alg. 1 line 19).
  LockList releases;
  // Locks to acquire, already in canonical order.
  LockList acquires;
  // Hint: batch `acquires` in a single HTM transaction (§4's multi-CAS
  // optimization). Only meaningful when acquires.size() >= 2.
  bool htm_batch = false;
  // Locks to wait on until free WITHOUT acquiring (cooperative waiting,
  // Alg. 4 lines 57-58). Drivers bound these waits (see DESIGN.md).
  LockList waits;
  // Wait for the SGL to be free before starting (lemming-effect avoidance).
  bool wait_sgl = false;
};

// How a transaction ultimately committed — the Table 3 census.
enum class CommitMode : std::uint8_t {
  kHtmNoLocks = 0,
  kHtmAuxLock,      // SCM's auxiliary lock was held
  kHtmSchedLock,    // ATS's serialization lock was held
  kHtmTxLocks,      // Seer transaction lock(s) held
  kHtmCoreLock,     // Seer core lock held
  kHtmTxAndCore,    // both Seer lock kinds held
  kSglFallback,
  kModeCount,
};

[[nodiscard]] constexpr const char* to_string(CommitMode m) noexcept {
  switch (m) {
    case CommitMode::kHtmNoLocks: return "HTM no locks";
    case CommitMode::kHtmAuxLock: return "HTM + Aux lock";
    case CommitMode::kHtmSchedLock: return "HTM + Sched lock";
    case CommitMode::kHtmTxLocks: return "HTM + Tx Locks";
    case CommitMode::kHtmCoreLock: return "HTM + Core Locks";
    case CommitMode::kHtmTxAndCore: return "HTM + Tx + Core Locks";
    case CommitMode::kSglFallback: return "SGL fall-back";
    case CommitMode::kModeCount: break;
  }
  return "?";
}

// Derives the census row from the set of locks held at commit time.
[[nodiscard]] CommitMode classify_commit(const LockList& held, bool used_sgl) noexcept;

class Policy {
 public:
  virtual ~Policy() = default;

  // A new transaction instance of type `tx` starts on this thread.
  virtual void begin_tx(core::TxTypeId tx, std::uint64_t now) = 0;

  // What should the driver do for the next attempt?
  [[nodiscard]] virtual Directive next_attempt(std::uint64_t now) = 0;

  // A hardware attempt aborted with `status`.
  virtual void on_abort(htm::AbortStatus status, std::uint64_t now) = 0;

  // PRECISE conflict attribution — the information commodity HTMs do NOT
  // provide (Figure 1 of the paper). Only drivers that actually know the
  // aggressor call this (the machine simulator, emulating an STM's precise
  // feedback), immediately before the corresponding on_abort. Real-HTM
  // policies must not depend on it; the Oracle baseline is built on it.
  virtual void on_conflict_attribution(core::TxTypeId culprit) { (void)culprit; }

  // The transaction committed (hardware == false means via the SGL).
  // Returns the locks the driver must now release (SGL excluded; the driver
  // manages the SGL itself).
  [[nodiscard]] virtual LockList on_commit(bool hardware, std::uint64_t now) = 0;

  // Called by the driver at transaction start and while the thread is
  // waiting (e.g. on the SGL) so a designated thread can run scheme
  // maintenance (Alg. 4 lines 52-54). Returns true when a scheme rebuild
  // actually happened (the simulator charges its cost model for it).
  virtual bool maintenance(std::uint64_t now) {
    (void)now;
    return false;
  }
};

}  // namespace seer::rt
