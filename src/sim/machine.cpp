#include "sim/machine.hpp"

#include <algorithm>
#include <cassert>

namespace seer::sim {

struct Machine::ThreadCtx {
  core::ThreadId id = 0;
  std::unique_ptr<rt::Policy> policy;
  util::Xoshiro256 rng{0};
  std::uint64_t txs_done = 0;
  std::uint64_t gen = 0;
  // Cycle costs accumulated since the last scheduled event; folded into the
  // delay of the next one.
  std::uint64_t pending_cost = 0;

  TxInstance inst;
  rt::Directive d;
  std::size_t acquire_idx = 0;
  std::size_t wait_idx = 0;
  rt::LockList held;
  bool in_hw = false;
  Time hw_end = 0;
  bool capacity_scheduled = false;
  // Aggressor type behind a scheduled conflict abort — precise information
  // the simulator has but a commodity HTM would not reveal. Forwarded via
  // Policy::on_conflict_attribution (used by the Oracle baseline only).
  core::TxTypeId pending_culprit = core::kNoTx;

  enum class St : std::uint8_t {
    kIdle,        // between transactions
    kAcquiring,   // queued on a lock in d.acquires
    kWaitSglFree, // subscribed to the SGL becoming free
    kCoopWait,    // bounded cooperative wait on a tx/core lock
    kRunningHw,   // speculative execution in flight
    kQueuedSgl,   // fallback: queued on the SGL
    kRunningSgl,  // pessimistic execution in flight
    kDone,        // finished its share of transactions
  } st = St::kIdle;
};

Machine::Machine(MachineConfig cfg, std::unique_ptr<Workload> workload)
    : cfg_(with_obs(std::move(cfg))),
      workload_(std::move(workload)),
      shared_(cfg_.policy, cfg_.n_threads, workload_->n_types()),
      tx_locks_(workload_->n_types()),
      core_locks_(cfg_.physical_cores) {
  assert(cfg_.n_threads > 0 && cfg_.n_threads <= 2 * cfg_.physical_cores);
  stats_.commits_by_type.assign(workload_->n_types(), 0);
  stats_.gt_conflicts.assign(workload_->n_types() * workload_->n_types(), 0);

  if (cfg_.metrics != nullptr) {
    obs::MetricsRegistry& m = *cfg_.metrics;
    m_commits_ = m.counter("sim.commits");
    m_hw_attempts_ = m.counter("sim.hw_attempts");
    m_sgl_fallbacks_ = m.counter("sim.sgl_fallbacks");
    h_queue_depth_ = m.histogram("sim.queue_depth");
    for (std::size_t c = 0; c < m_aborts_.size(); ++c) {
      m_aborts_[c] = m.counter(
          std::string("sim.aborts.")
              .append(htm::to_string(static_cast<htm::AbortCause>(c))));
    }
  }

  util::Xoshiro256 master(cfg_.seed);
  threads_.reserve(cfg_.n_threads);
  for (core::ThreadId id = 0; id < cfg_.n_threads; ++id) {
    auto t = std::make_unique<ThreadCtx>();
    t->id = id;
    t->policy = shared_.make_thread_policy(id);
    t->rng = master.split();
    threads_.push_back(std::move(t));
  }
}

Machine::~Machine() = default;

SimLock& Machine::lock_of(rt::LockId id) noexcept {
  switch (id.kind) {
    case rt::LockKind::kSgl: return sgl_;
    case rt::LockKind::kAux: return aux_;
    case rt::LockKind::kSched: return sched_;
    case rt::LockKind::kTx: return tx_locks_[id.index];
    case rt::LockKind::kCore: return core_locks_[id.index];
  }
  __builtin_unreachable();
}

std::optional<core::ThreadId> Machine::sibling_of(core::ThreadId t) const noexcept {
  // Linux-style SMT enumeration: thread t and t + physical_cores share a
  // physical core (so do t and t - physical_cores).
  const auto p = static_cast<core::ThreadId>(cfg_.physical_cores);
  const core::ThreadId s = (t >= p) ? t - p : t + p;
  if (s < cfg_.n_threads && s != t) return s;
  return std::nullopt;
}

std::uint32_t Machine::effective_capacity(const ThreadCtx& t) const noexcept {
  // SMT siblings simultaneously in transactions split the core's
  // transactional budget — the pathology core locks exist to suppress.
  const auto sib = sibling_of(t.id);
  const bool shared = sib && threads_[*sib]->in_hw;
  return shared ? cfg_.cache_lines_per_core / 2 : cfg_.cache_lines_per_core;
}

void Machine::push(Time at, core::ThreadId th, EventKind kind, std::uint64_t gen,
                   rt::LockId lockid) {
  Event e;
  e.time = at;
  e.thread = th;
  e.kind = kind;
  e.gen = gen;
  e.lock = lockid;
  queue_.push(e);
}

MachineStats Machine::run() {
  // Stagger thread starts by one think time each (and count those think
  // times toward the sequential-execution estimate). A generator with an
  // empty stream for a thread (e.g. replaying a shorter trace) retires that
  // thread before it ever starts.
  for (auto& t : threads_) {
    workload_->init(t->id);
    if (workload_->exhausted(t->id)) {
      t->st = ThreadCtx::St::kDone;
      ++done_count_;
      continue;
    }
    const std::uint64_t think = workload_->think_time(t->id, t->rng);
    stats_.serial_work += think;
    push(think, t->id, EventKind::kStartTx, kAnyGen);
  }

  while (!queue_.empty() && done_count_ < cfg_.n_threads) {
    const Event e = queue_.pop();
    if (cfg_.metrics != nullptr) {
      cfg_.metrics->observe(h_queue_depth_, 0, queue_.size());
    }
    now_ = std::max(now_, e.time);
    on_event(e);
  }

  stats_.makespan = now_;
  if (auto* s = shared_.seer()) {
    stats_.final_params = s->params();
    stats_.scheme_rebuilds = s->rebuild_count();
    stats_.final_scheme = s->scheme()->to_rows();
    // End-of-run model capture, whatever the periodic cadence last did.
    if (cfg_.recorder != nullptr) {
      cfg_.recorder->record_final(s->make_model_snapshot(now_));
    }
  }
  return stats_;
}

void Machine::on_event(const Event& e) {
  ThreadCtx& t = *threads_[e.thread];
  if (t.st == ThreadCtx::St::kDone) return;

  switch (e.kind) {
    case EventKind::kStartTx:
      start_tx(t);
      break;

    case EventKind::kLockGranted:
      // Ownership was already transferred by release(); must be consumed.
      if (t.st == ThreadCtx::St::kAcquiring) {
        t.held.push_back(e.lock);
        ++t.acquire_idx;
        continue_acquire(t);
      } else if (t.st == ThreadCtx::St::kQueuedSgl) {
        sgl_granted(t);
      } else {
        assert(false && "lock granted to a thread that is not waiting");
      }
      break;

    case EventKind::kFreeNotify:
      if (e.gen != t.gen) break;
      if (t.st == ThreadCtx::St::kWaitSglFree) {
        ++t.gen;
        continue_waits(t);  // re-checks the SGL (it may be taken again)
      } else if (t.st == ThreadCtx::St::kCoopWait) {
        ++t.gen;  // invalidates the paired timeout
        continue_waits(t);
      }
      break;

    case EventKind::kWaitTimeout:
      if (e.gen != t.gen) break;
      if (t.st == ThreadCtx::St::kCoopWait) {
        ++t.gen;
        ++t.wait_idx;  // bounded wait expired: move on regardless
        continue_waits(t);
      }
      break;

    case EventKind::kHwCommit:
      if (e.gen != t.gen) break;
      assert(t.in_hw);
      hw_commit(t);
      break;

    case EventKind::kConflictAbort:
      if (e.gen != t.gen) break;
      if (t.in_hw) abort_hw(t, htm::AbortStatus::conflict());
      break;

    case EventKind::kCapacityAbort:
      if (e.gen != t.gen) break;
      // Lazy revalidation: the overflow only materializes if the capacity
      // squeeze still holds when the high-water point is reached (an SMT
      // sibling that finished early releases its share of the cache before
      // our tracked set is evicted). Core locks rely on this: once the
      // sibling is parked, pending doom evaporates.
      if (t.in_hw) {
        if (t.inst.footprint_lines() > effective_capacity(t)) {
          abort_hw(t, htm::AbortStatus::capacity());
        } else {
          t.capacity_scheduled = false;  // re-armed if a sibling reappears
        }
      }
      break;

    case EventKind::kOtherAbort:
      if (e.gen != t.gen) break;
      if (t.in_hw) abort_hw(t, htm::AbortStatus::other());
      break;

    case EventKind::kSglBodyDone:
      if (e.gen != t.gen) break;
      sgl_done(t);
      break;

    case EventKind::kResume:
      if (e.gen != t.gen) break;
      dispatch(t);
      break;
  }
}

void Machine::record_abort_obs(const ThreadCtx& t, htm::AbortStatus status) {
  if (cfg_.metrics != nullptr) {
    cfg_.metrics->add(m_aborts_[static_cast<std::size_t>(status.cause())], t.id);
  }
  if (cfg_.trace != nullptr) {
    cfg_.trace->emit(t.id, obs::TraceKind::kTxAbort, now_,
                     static_cast<std::uint64_t>(status.cause()));
  }
}

void Machine::run_maintenance(ThreadCtx& t) {
  if (t.policy->maintenance(now_)) {
    t.pending_cost += cfg_.costs.scheme_rebuild;
  }
}

void Machine::start_tx(ThreadCtx& t) {
  run_maintenance(t);  // DESIGN.md deviation #1: start-path trigger
  const double progress = static_cast<double>(t.txs_done) /
                          static_cast<double>(cfg_.txs_per_thread);
  workload_->next(t.id, progress, t.rng, t.inst);
  t.policy->begin_tx(t.inst.type, now_);
  if (is_seer()) t.pending_cost += cfg_.costs.announce;
  assert(t.held.empty());
  dispatch(t);
}

void Machine::dispatch(ThreadCtx& t) {
  t.d = t.policy->next_attempt(now_);
  t.acquire_idx = 0;
  t.wait_idx = 0;
  for (const rt::LockId& id : t.d.releases) release_one(t, id);

  // §5.2 census: how fine-grained is each tx-lock acquisition?
  std::size_t n_tx_locks = 0;
  for (const rt::LockId& id : t.d.acquires) {
    if (id.kind == rt::LockKind::kTx) ++n_tx_locks;
  }
  if (n_tx_locks > 0) {
    stats_.txlock_fraction.add(static_cast<double>(n_tx_locks) /
                               static_cast<double>(workload_->n_types()));
  }
  // Batched (multi-CAS-by-HTM) acquisition costs one synchronization
  // round-trip instead of one per lock (§4's optimization).
  if (t.d.htm_batch && t.d.acquires.size() >= 2) {
    t.pending_cost += cfg_.costs.xbegin + cfg_.costs.cas;
  } else {
    t.pending_cost += cfg_.costs.cas * t.d.acquires.size();
  }
  continue_acquire(t);
}

void Machine::continue_acquire(ThreadCtx& t) {
  while (t.acquire_idx < t.d.acquires.size()) {
    const rt::LockId id = t.d.acquires[t.acquire_idx];
    SimLock& l = lock_of(id);
    if (l.try_acquire(t.id)) {
      t.held.push_back(id);
      ++t.acquire_idx;
    } else {
      l.enqueue(t.id);
      t.st = ThreadCtx::St::kAcquiring;
      return;  // resumed by kLockGranted
    }
  }
  after_acquires(t);
}

void Machine::after_acquires(ThreadCtx& t) {
  if (t.d.mode == rt::Directive::Mode::kFallback) {
    t.pending_cost += cfg_.costs.cas;  // SGL acquisition round-trip
    if (sgl_.try_acquire(t.id)) {
      sgl_granted(t);
    } else {
      sgl_.enqueue(t.id);
      t.st = ThreadCtx::St::kQueuedSgl;
    }
    return;
  }
  continue_waits(t);
}

void Machine::continue_waits(ThreadCtx& t) {
  // Lemming avoidance (Alg. 4 line 55): wait for the SGL to be free, and
  // exploit the wait to run scheme maintenance (lines 52-54).
  if (t.d.wait_sgl && sgl_.is_locked()) {
    t.st = ThreadCtx::St::kWaitSglFree;
    sgl_.subscribe_free(t.id, t.gen);
    run_maintenance(t);
    return;
  }
  // Cooperative bounded waits on tx/core locks (lines 57-58).
  while (t.wait_idx < t.d.waits.size()) {
    const rt::LockId id = t.d.waits[t.wait_idx];
    SimLock& l = lock_of(id);
    if (l.is_locked() && l.owner() != t.id) {
      t.st = ThreadCtx::St::kCoopWait;
      l.subscribe_free(t.id, t.gen);
      push(now_ + cfg_.wait_budget, t.id, EventKind::kWaitTimeout, t.gen, id);
      return;
    }
    ++t.wait_idx;
  }
  start_hw(t);
}

void Machine::start_hw(ThreadCtx& t) {
  ++stats_.hw_attempts;
  if (cfg_.metrics != nullptr) cfg_.metrics->add(m_hw_attempts_, t.id);
  if (cfg_.trace != nullptr) {
    cfg_.trace->emit(t.id, obs::TraceKind::kTxBegin, now_,
                     static_cast<std::uint64_t>(t.inst.type));
  }
  // Alg. 1 lines 11-12: a transaction beginning while the fallback lock is
  // held aborts explicitly (the subscription check).
  if (sgl_.is_locked()) {
    t.pending_cost += cfg_.costs.xbegin;
    const auto status = htm::AbortStatus::explicit_abort(htm::kXAbortCodeSglLocked);
    stats_.aborts_by_cause[static_cast<std::size_t>(status.cause())]++;
    record_abort_obs(t, status);
    t.policy->on_abort(status, now_);
    ++t.gen;
    t.st = ThreadCtx::St::kIdle;
    push(now_ + t.pending_cost + cfg_.costs.abort_penalty + scan_cost(), t.id,
         EventKind::kResume, t.gen);
    t.pending_cost = 0;
    return;
  }

  t.in_hw = true;
  t.st = ThreadCtx::St::kRunningHw;
  ++t.gen;
  const Time commit_at =
      now_ + t.pending_cost + cfg_.costs.xbegin + t.inst.duration;
  t.pending_cost = 0;
  t.hw_end = commit_at;
  push(commit_at, t.id, EventKind::kHwCommit, t.gen);

  // Eager conflict detection (TSX-style): when two concurrent transactions'
  // footprints overlap, the coherence traffic of whichever side issues the
  // conflicting access last aborts the other — one of the pair dies at some
  // point within their coexistence window. The victim learns only
  // "conflict", never the culprit, and its retry (same footprint!)
  // typically strikes back: the mutual-kill thrash that motivates
  // transaction scheduling in the first place.
  for (auto& other : threads_) {
    if (other->id == t.id || !other->in_hw) continue;
    if (instances_conflict(t.inst, other->inst)) {
      const Time horizon = std::min(other->hw_end, commit_at);
      const Time window = horizon > now_ ? horizon - now_ : 1;
      // The conflict only materializes if the colliding accesses actually
      // interleave inside the coexistence window: accesses are spread over
      // each transaction's duration, so a brief overlap usually slips
      // through. This is what makes HTM conflicts *transient* — retrying
      // often succeeds — and blanket serialization overkill.
      const Time longest = std::max(t.inst.duration, other->inst.duration);
      const double p_hit =
          std::min(1.0, static_cast<double>(window) / static_cast<double>(longest));
      if (!t.rng.bernoulli(p_hit)) continue;
      const Time when = now_ + t.rng.below(window);
      if (t.rng.bernoulli(cfg_.p_newcomer_aborts)) {
        t.pending_culprit = other->inst.type;
        push(when, t.id, EventKind::kConflictAbort, t.gen);
      } else {
        other->pending_culprit = t.inst.type;
        push(when, other->id, EventKind::kConflictAbort, other->gen);
      }
    }
  }

  // Capacity: evaluate for this thread and re-evaluate the SMT sibling
  // (whose effective budget we just halved).
  t.capacity_scheduled = false;
  schedule_capacity_check(t);
  if (const auto sib = sibling_of(t.id)) {
    if (threads_[*sib]->in_hw) schedule_capacity_check(*threads_[*sib]);
  }

  // Background aborts (interrupts, ring transitions, ...).
  if (t.rng.bernoulli(cfg_.p_other_abort) && t.inst.duration > 0) {
    push(now_ + t.rng.below(t.inst.duration), t.id, EventKind::kOtherAbort, t.gen);
  }
}

void Machine::schedule_capacity_check(ThreadCtx& t) {
  if (!t.in_hw || t.capacity_scheduled) return;
  if (t.inst.footprint_lines() <= effective_capacity(t)) return;
  // The transaction will overflow its buffers partway through its
  // remaining execution. Once scheduled the abort is not cancelled even if
  // the sibling leaves: evicting a tracked line is irrecoverable in real
  // HTMs, so the damage is already committed.
  const Time remaining = t.hw_end > now_ ? t.hw_end - now_ : 0;
  const auto delay =
      static_cast<Time>(cfg_.capacity_abort_point * static_cast<double>(remaining));
  push(now_ + delay, t.id, EventKind::kCapacityAbort, t.gen);
  t.capacity_scheduled = true;
}

void Machine::hw_commit(ThreadCtx& t) {
  t.in_hw = false;
  ++t.gen;
  t.pending_cost += cfg_.costs.xcommit + scan_cost();
  finish_tx(t, /*hardware=*/true);
}

void Machine::abort_hw(ThreadCtx& t, htm::AbortStatus status) {
  assert(t.in_hw);
  t.in_hw = false;
  ++t.gen;  // cancels the pending commit/capacity/other events
  stats_.aborts_by_cause[static_cast<std::size_t>(status.cause())]++;
  record_abort_obs(t, status);
  if (status.cause() == htm::AbortCause::kConflict &&
      t.pending_culprit != core::kNoTx) {
    // Ground truth the HTM would never reveal: who actually killed whom.
    stats_.gt_conflicts[static_cast<std::size_t>(t.inst.type) *
                            workload_->n_types() +
                        static_cast<std::size_t>(t.pending_culprit)]++;
    t.policy->on_conflict_attribution(t.pending_culprit);
  }
  t.pending_culprit = core::kNoTx;
  t.policy->on_abort(status, now_);
  t.st = ThreadCtx::St::kIdle;
  push(now_ + cfg_.costs.abort_penalty + scan_cost(), t.id, EventKind::kResume,
       t.gen);
}

void Machine::sgl_granted(ThreadCtx& t) {
  assert(sgl_.owner() == t.id);
  t.st = ThreadCtx::St::kRunningSgl;
  ++t.gen;
  if (cfg_.metrics != nullptr) cfg_.metrics->add(m_sgl_fallbacks_, t.id);
  if (cfg_.recorder != nullptr) cfg_.recorder->note_sgl_fallback();
  if (cfg_.trace != nullptr) {
    cfg_.trace->emit(t.id, obs::TraceKind::kSglFallback, now_,
                     static_cast<std::uint64_t>(t.inst.type));
  }
  // Taking the fallback lock invalidates the subscription in every running
  // hardware transaction (Alg. 1's correctness handshake).
  for (auto& other : threads_) {
    if (other->in_hw) {
      abort_hw(*other, htm::AbortStatus::explicit_abort(htm::kXAbortCodeSglLocked));
    }
  }
  const auto body = static_cast<Time>(cfg_.sgl_duration_factor *
                                      static_cast<double>(t.inst.duration));
  push(now_ + t.pending_cost + body, t.id, EventKind::kSglBodyDone, t.gen);
  t.pending_cost = 0;
}

void Machine::sgl_done(ThreadCtx& t) {
  const auto out = sgl_.release(t.id);
  t.pending_cost += cfg_.costs.cas;
  if (out.granted) {
    push(now_ + cfg_.costs.lock_handoff, *out.granted, EventKind::kLockGranted,
         kAnyGen, rt::kSglLock);
  }
  for (const auto& n : out.notified) {
    push(now_, n.thread, EventKind::kFreeNotify, n.gen, rt::kSglLock);
  }
  finish_tx(t, /*hardware=*/false);
}

void Machine::finish_tx(ThreadCtx& t, bool hardware) {
  const rt::CommitMode mode = rt::classify_commit(t.held, !hardware);
  stats_.commits_by_mode[static_cast<std::size_t>(mode)]++;
  ++stats_.commits;
  stats_.commits_by_type[static_cast<std::size_t>(t.inst.type)]++;
  if (cfg_.metrics != nullptr) cfg_.metrics->add(m_commits_, t.id);
  if (cfg_.trace != nullptr) {
    cfg_.trace->emit(t.id, obs::TraceKind::kTxCommit, now_,
                     static_cast<std::uint64_t>(t.inst.type));
  }

  const rt::LockList to_release = t.policy->on_commit(hardware, now_);
  for (const rt::LockId& id : to_release) release_one(t, id);
  assert(t.held.empty() && "policy leaked locks at commit");
  t.held.clear();

  stats_.serial_work += t.inst.duration;
  ++t.txs_done;
  if (t.txs_done >= cfg_.txs_per_thread || workload_->exhausted(t.id)) {
    t.st = ThreadCtx::St::kDone;
    ++done_count_;
    return;
  }
  t.st = ThreadCtx::St::kIdle;
  const std::uint64_t think = workload_->think_time(t.id, t.rng);
  stats_.serial_work += think;
  push(now_ + t.pending_cost + think, t.id, EventKind::kStartTx, kAnyGen);
  t.pending_cost = 0;
}

void Machine::release_one(ThreadCtx& t, rt::LockId id) {
  auto it = std::find(t.held.begin(), t.held.end(), id);
  assert(it != t.held.end() && "policy released a lock the machine never took");
  if (it != t.held.end()) {
    *it = t.held.back();
    t.held.pop_back();
  }
  t.pending_cost += cfg_.costs.cas;
  const auto out = lock_of(id).release(t.id);
  if (out.granted) {
    push(now_ + cfg_.costs.lock_handoff, *out.granted, EventKind::kLockGranted,
         kAnyGen, id);
  }
  for (const auto& n : out.notified) {
    push(now_, n.thread, EventKind::kFreeNotify, n.gen, id);
  }
}

MachineStats run_machine(const MachineConfig& cfg, std::unique_ptr<Workload> workload) {
  Machine m(cfg, std::move(workload));
  return m.run();
}

}  // namespace seer::sim
