// The workload interface the machine simulator executes.
//
// A workload hands the simulator, per transaction instance, the transaction
// type (static atomic block), its serial duration in cycles, and the cache
// lines it reads and writes. Footprints are sampled ONCE per instance and
// reused across retries — a restarted transaction re-executes on the same
// inputs, which is precisely why per-type conflict structure is learnable
// (and why Seer's inference works on the real benchmarks).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "util/rng.hpp"

namespace seer::sim {

struct TxInstance {
  core::TxTypeId type = 0;
  std::uint64_t duration = 0;        // cycles of useful serial work
  std::vector<std::uint32_t> reads;  // global cache-line ids, sorted, unique
  std::vector<std::uint32_t> writes; // ditto; may overlap reads

  [[nodiscard]] std::size_t footprint_lines() const noexcept;
};

// The generator contract (DESIGN.md §11). Both executors — the machine
// simulator and the real-threads driver — speak exactly this protocol, per
// thread:
//
//   init(t)                        once, before the thread's first instance;
//   loop:
//     think_time(t, rng)           inter-transaction gap (cycles);
//     exhausted(t)?                end-of-stream — the thread retires;
//     next(t, progress, rng, out)  sample the next transaction instance.
//
// Implementations must be usable from multiple threads concurrently as long
// as each ThreadId is driven by one caller at a time (the per-thread lanes
// of stateful generators — trace cursors, phase trackers — are single-
// writer). `workload::Generator` (src/workload/generator.hpp) is the same
// type; the registry and JSON config front-end trade in that alias.
class Workload {
 public:
  virtual ~Workload() = default;

  [[nodiscard]] virtual const std::string& name() const = 0;
  [[nodiscard]] virtual std::size_t n_types() const = 0;
  [[nodiscard]] virtual const std::string& type_name(core::TxTypeId t) const = 0;

  // Called once per thread before its first think_time/next call. Stateful
  // generators reset their per-thread lanes here so one instance can drive
  // several runs.
  virtual void init(core::ThreadId thread) { (void)thread; }

  // End-of-stream signal: true once `thread` has no further instances (a
  // replayed trace ran out, a finite script completed). Unbounded
  // generators — every STAMP spec — never exhaust; the executor's
  // txs_per_thread cap bounds those runs instead.
  [[nodiscard]] virtual bool exhausted(core::ThreadId thread) const {
    (void)thread;
    return false;
  }

  // Samples the next transaction instance for `thread`. `progress` is the
  // thread's completed fraction of its run in [0, 1] (drives phase mixes).
  // Must not be called for an exhausted thread.
  virtual void next(core::ThreadId thread, double progress, util::Xoshiro256& rng,
                    TxInstance& out) = 0;

  // Think time (cycles) between transactions.
  [[nodiscard]] virtual std::uint64_t think_time(core::ThreadId thread,
                                                 util::Xoshiro256& rng) = 0;
};

// True when `a.writes` intersects `b.reads ∪ b.writes` — a's speculative
// writes invalidate b. Inputs must be sorted.
[[nodiscard]] bool write_conflicts(const TxInstance& a, const TxInstance& b) noexcept;

// Symmetric transactional conflict: either side's writes intersect the
// other's footprint.
[[nodiscard]] inline bool instances_conflict(const TxInstance& a,
                                             const TxInstance& b) noexcept {
  return write_conflicts(a, b) || write_conflicts(b, a);
}

}  // namespace seer::sim
