// The workload interface the machine simulator executes.
//
// A workload hands the simulator, per transaction instance, the transaction
// type (static atomic block), its serial duration in cycles, and the cache
// lines it reads and writes. Footprints are sampled ONCE per instance and
// reused across retries — a restarted transaction re-executes on the same
// inputs, which is precisely why per-type conflict structure is learnable
// (and why Seer's inference works on the real benchmarks).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "util/rng.hpp"

namespace seer::sim {

struct TxInstance {
  core::TxTypeId type = 0;
  std::uint64_t duration = 0;        // cycles of useful serial work
  std::vector<std::uint32_t> reads;  // global cache-line ids, sorted, unique
  std::vector<std::uint32_t> writes; // ditto; may overlap reads

  [[nodiscard]] std::size_t footprint_lines() const noexcept;
};

class Workload {
 public:
  virtual ~Workload() = default;

  [[nodiscard]] virtual const std::string& name() const = 0;
  [[nodiscard]] virtual std::size_t n_types() const = 0;
  [[nodiscard]] virtual const std::string& type_name(core::TxTypeId t) const = 0;

  // Samples the next transaction instance for `thread`. `progress` is the
  // thread's completed fraction of its run in [0, 1] (drives phase mixes).
  virtual void next(core::ThreadId thread, double progress, util::Xoshiro256& rng,
                    TxInstance& out) = 0;

  // Think time (cycles) between transactions.
  [[nodiscard]] virtual std::uint64_t think_time(util::Xoshiro256& rng) = 0;
};

// True when `a.writes` intersects `b.reads ∪ b.writes` — a's speculative
// writes invalidate b. Inputs must be sorted.
[[nodiscard]] bool write_conflicts(const TxInstance& a, const TxInstance& b) noexcept;

// Symmetric transactional conflict: either side's writes intersect the
// other's footprint.
[[nodiscard]] inline bool instances_conflict(const TxInstance& a,
                                             const TxInstance& b) noexcept {
  return write_conflicts(a, b) || write_conflicts(b, a);
}

}  // namespace seer::sim
