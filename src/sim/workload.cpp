#include "sim/workload.hpp"

#include <algorithm>

namespace seer::sim {

namespace {

// Any-overlap test on two sorted unique sequences: O(n + m).
bool sorted_intersects(const std::vector<std::uint32_t>& a,
                       const std::vector<std::uint32_t>& b) noexcept {
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      return true;
    }
  }
  return false;
}

}  // namespace

std::size_t TxInstance::footprint_lines() const noexcept {
  // reads and writes are sorted unique; count the union without allocating.
  std::size_t n = 0;
  auto ir = reads.begin();
  auto iw = writes.begin();
  while (ir != reads.end() && iw != writes.end()) {
    if (*ir < *iw) {
      ++ir;
    } else if (*iw < *ir) {
      ++iw;
    } else {
      ++ir;
      ++iw;
    }
    ++n;
  }
  n += static_cast<std::size_t>(reads.end() - ir);
  n += static_cast<std::size_t>(writes.end() - iw);
  return n;
}

bool write_conflicts(const TxInstance& a, const TxInstance& b) noexcept {
  return sorted_intersects(a.writes, b.reads) || sorted_intersects(a.writes, b.writes);
}

}  // namespace seer::sim
