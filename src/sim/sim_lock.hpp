// Simulated locks: strict-FIFO queued mutexes plus free-notification
// subscriptions, reifying the symbolic LockIds inside the machine simulator.
//
// Semantics mirror the WordLocks of the threaded driver:
//   * try_acquire / release with FIFO handover (release passes ownership to
//     the queue head directly — no barging, deterministic order);
//   * free subscriptions model the cooperative "wait while locked" loops
//     (Alg. 4 lines 55-58): subscribers are notified when the lock becomes
//     free without receiving ownership.
#pragma once

#include <cassert>
#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "core/types.hpp"

namespace seer::sim {

class SimLock {
 public:
  [[nodiscard]] bool is_locked() const noexcept { return owner_.has_value(); }
  [[nodiscard]] std::optional<core::ThreadId> owner() const noexcept { return owner_; }
  [[nodiscard]] std::size_t queue_length() const noexcept { return waiters_.size(); }

  // Immediate acquisition if free. Never queues.
  [[nodiscard]] bool try_acquire(core::ThreadId t) noexcept {
    if (owner_.has_value()) return false;
    owner_ = t;
    return true;
  }

  // Joins the FIFO acquisition queue (caller must have failed try_acquire).
  void enqueue(core::ThreadId t) { waiters_.push_back(t); }

  // Subscribes to (one-shot) notification of the lock becoming free. The
  // subscriber's current generation stamp is echoed back in the
  // notification so stale subscriptions (the thread moved on) are dropped
  // by the machine's generation check.
  void subscribe_free(core::ThreadId t, std::uint64_t gen) {
    free_subs_.emplace_back(t, gen);
  }

  struct Notification {
    core::ThreadId thread;
    std::uint64_t gen;
  };

  struct ReleaseOutcome {
    // Thread that now owns the lock (ownership handed over), if any.
    std::optional<core::ThreadId> granted;
    // Threads to notify that the lock became free (only when not handed
    // over: a handover keeps the lock held).
    std::vector<Notification> notified;
  };

  // Releases the lock held by `t`. The caller (the machine) turns the
  // outcome into kLockGranted / kFreeNotify events.
  [[nodiscard]] ReleaseOutcome release(core::ThreadId t) {
    assert(owner_ == t && "release by non-owner");
    (void)t;
    ReleaseOutcome out;
    if (!waiters_.empty()) {
      out.granted = waiters_.front();
      waiters_.pop_front();
      owner_ = out.granted;
    } else {
      owner_.reset();
      out.notified.swap(free_subs_);
    }
    return out;
  }

  // Drops `t` from the wait queue (used when a queued thread is redirected;
  // not part of the normal flow but needed for robustness).
  void cancel_wait(core::ThreadId t) {
    for (auto it = waiters_.begin(); it != waiters_.end(); ++it) {
      if (*it == t) {
        waiters_.erase(it);
        return;
      }
    }
  }

 private:
  std::optional<core::ThreadId> owner_;
  std::deque<core::ThreadId> waiters_;
  std::vector<Notification> free_subs_;
};

}  // namespace seer::sim
