// Deterministic discrete-event queue.
//
// The machine simulator is single-threaded and fully deterministic: events
// are ordered by (time, sequence number), so ties are broken by insertion
// order and a (seed, configuration) pair reproduces a run bit-for-bit.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "core/types.hpp"
#include "runtime/lock_id.hpp"

namespace seer::sim {

using Time = std::uint64_t;  // logical cycles

enum class EventKind : std::uint8_t {
  kStartTx,        // thread begins its next transaction instance
  kLockGranted,    // FIFO lock ownership transferred to the thread
  kFreeNotify,     // a lock the thread subscribed to became free
  kWaitTimeout,    // bounded cooperative wait expired
  kHwCommit,       // the thread's hardware transaction reaches its end
  kConflictAbort,  // a concurrent requester's access invalidated this tx
  kCapacityAbort,  // the transaction overflows its transactional buffers
  kOtherAbort,     // interrupt / ring transition / ... (background noise)
  kSglBodyDone,    // pessimistic execution under the SGL finished
  kResume,         // generic continue-after-cost-accounting
};

struct Event {
  Time time = 0;
  std::uint64_t seq = 0;  // tie-breaker, assigned by the queue
  core::ThreadId thread = 0;
  EventKind kind = EventKind::kStartTx;
  // Generation stamp: transient events (commit, aborts, waits, resume) are
  // dropped if the thread moved on. Ownership-transfer events
  // (kLockGranted) must always be delivered and carry kAnyGen.
  std::uint64_t gen = 0;
  rt::LockId lock{};  // payload for lock-related events
};

inline constexpr std::uint64_t kAnyGen = ~std::uint64_t{0};

class EventQueue {
 public:
  void push(Event e) {
    e.seq = next_seq_++;
    heap_.push(e);
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }
  [[nodiscard]] const Event& top() const { return heap_.top(); }

  Event pop() {
    Event e = heap_.top();
    heap_.pop();
    return e;
  }

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace seer::sim
