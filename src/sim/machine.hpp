// Machine — a deterministic discrete-event simulator of a best-effort HTM
// multiprocessor, standing in for the paper's TSX-enabled Haswell testbed
// (DESIGN.md §1 explains the substitution).
//
// Modelled hardware:
//   * `n_threads` hardware threads on `physical_cores` cores, SMT siblings
//     mapped as thread t <-> t + physical_cores (Linux-style enumeration,
//     which is what Alg. 4's `core % PHYSICAL_CORES` adapts to);
//   * per-core transactional capacity (cache lines), HALVED for a thread
//     whose SMT sibling is simultaneously transactional — the capacity
//     amplification that motivates Seer's core locks;
//   * eager requester-wins conflict detection over genuinely sampled
//     read/write line sets: a transaction beginning with a footprint that
//     overlaps a running one kills it at some point in their coexistence
//     window (coarse CONFLICT statuses, never the culprit); retried victims
//     carry the same footprint and strike back — the mutual-kill thrash
//     real best-effort HTMs exhibit;
//   * fallback-lock subscription: acquiring the SGL aborts every running
//     hardware transaction, and transactions beginning while it is held
//     abort explicitly (Alg. 1 lines 11-12);
//   * background OTHER aborts (interrupts etc.) with small probability.
//
// The scheduling policies under test (HLE/RTM/SCM/ATS/SGL/Seer) run as real
// code — the identical Policy objects the threaded driver uses — against
// simulated FIFO locks and a logical-cycle cost model that charges CAS,
// begin/commit, abort penalties, and Seer's instrumentation (announcement,
// active-table scans, scheme rebuilds — this is what Figure 4 measures).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/policies.hpp"
#include "sim/event_queue.hpp"
#include "sim/sim_lock.hpp"
#include "sim/workload.hpp"
#include "util/stats.hpp"

namespace seer::sim {

struct CostModel {
  std::uint64_t xbegin = 40;         // enter speculative mode
  std::uint64_t xcommit = 40;        // successful commit
  std::uint64_t abort_penalty = 180; // rollback + restart latency
  std::uint64_t cas = 50;            // lock acquire/release round-trip
  // Extra latency when a contended lock is handed to a queued waiter: the
  // lock line migrates between cores and the waiter must notice. Charged on
  // every queued handoff — this is what makes funneling work through one
  // lock (SCM's aux, ATS's sched lock, the SGL queue) expensive in practice.
  std::uint64_t lock_handoff = 450;
  // Seer instrumentation (charged only for PolicyKind::kSeer):
  std::uint64_t announce = 6;            // active-table store (Alg. 1 l.5)
  std::uint64_t scan_per_slot = 2;       // Alg. 3 scan, per table slot
  std::uint64_t scheme_rebuild = 1200;   // Alg. 5 merge + inference
};

struct MachineConfig {
  std::size_t n_threads = 8;
  std::size_t physical_cores = 4;
  std::uint32_t cache_lines_per_core = 448;
  // Fraction of the (remaining) duration after which an over-capacity
  // transaction overflows and aborts.
  double capacity_abort_point = 0.6;
  double p_other_abort = 0.002;
  // When a starting transaction's footprint overlaps a running one, one of
  // the two aborts during their coexistence window. Requester-wins HTMs
  // favour whichever side issues the conflicting access *last*, and over a
  // whole overlap of interleaved accesses either side can be that. A fresh
  // transaction issues accesses at full speed while the resident is partway
  // done, so the resident loses more often; this is the probability that
  // the newly-started transaction is the victim instead.
  double p_newcomer_aborts = 0.5;
  // Bounded cooperative waits (cycles). The paper's waits are unbounded;
  // the bound exists only to rule out pathological waiting cycles, so it is
  // set far above any realistic lock tenure.
  std::uint64_t wait_budget = 100000;
  // Pessimistic (SGL) execution runs the body this much slower than a
  // hardware attempt: serialized execution re-warms caches after every
  // lock handoff and forgoes the HTM's speculative locality.
  double sgl_duration_factor = 1.25;
  std::uint64_t txs_per_thread = 20000;
  std::uint64_t seed = 1;
  rt::PolicyConfig policy{};
  CostModel costs{};

  // --- observability (src/obs/, DESIGN.md §8) ----------------------------
  // Optional sinks; the machine also routes them into the Seer scheduler
  // (unless policy.seer carries its own) so one registry collects the whole
  // stack. The embedder freezes the registry after constructing the machine
  // and before run(). All machine-side recording is single-threaded and
  // timestamps are simulated cycles, so metrics and traces are deterministic
  // per (seed, config) — the property the --metrics jobs-invariance test
  // pins down.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceSink* trace = nullptr;
  // Model flight recorder: routed into the Seer scheduler (periodic/anomaly
  // snapshots at rebuilds), fed SGL-fallback notes by the machine, and handed
  // a final end-of-run capture. Null disables; stubbed under SEER_OBS=OFF.
  obs::FlightRecorder* recorder = nullptr;
};

struct MachineStats {
  Time makespan = 0;
  std::uint64_t serial_work = 0;  // estimated sequential execution time
  std::uint64_t commits = 0;
  std::uint64_t hw_attempts = 0;
  std::array<std::uint64_t, static_cast<std::size_t>(rt::CommitMode::kModeCount)>
      commits_by_mode{};
  std::array<std::uint64_t, 4> aborts_by_cause{};  // indexed by AbortCause
  std::vector<std::uint64_t> commits_by_type;
  // §5.2 census: each time a directive acquires tx locks, the fraction of
  // all tx locks it takes.
  util::PercentileSketch txlock_fraction;
  // Seer introspection (zero/empty for other policies).
  std::uint64_t scheme_rebuilds = 0;
  core::InferenceParams final_params{};
  // Final locksToAcquire rows: final_scheme[x] lists the lock owners
  // (transaction types) x acquires.
  std::vector<std::vector<core::TxTypeId>> final_scheme;
  // Ground-truth conflict matrix (victim-major, n_types^2): materialized
  // conflict aborts by (victim type, aggressor type). The simulator knows
  // the aggressor precisely — information a commodity HTM never reveals —
  // which is what lets tools/seer_inspect score Seer's *inferred* scheme
  // for false serializations and missed conflicts against reality.
  std::vector<std::uint64_t> gt_conflicts;

  [[nodiscard]] std::uint64_t gt_conflict(core::TxTypeId victim,
                                          core::TxTypeId aggressor,
                                          std::size_t n_types) const noexcept {
    return gt_conflicts[static_cast<std::size_t>(victim) * n_types +
                        static_cast<std::size_t>(aggressor)];
  }

  [[nodiscard]] double speedup() const noexcept {
    return makespan == 0 ? 0.0
                         : static_cast<double>(serial_work) /
                               static_cast<double>(makespan);
  }
  [[nodiscard]] std::uint64_t aborts() const noexcept {
    std::uint64_t n = 0;
    for (auto a : aborts_by_cause) n += a;
    return n;
  }
  [[nodiscard]] double mode_fraction(rt::CommitMode m) const noexcept {
    return commits == 0
               ? 0.0
               : static_cast<double>(
                     commits_by_mode[static_cast<std::size_t>(m)]) /
                     static_cast<double>(commits);
  }
};

class Machine {
 public:
  Machine(MachineConfig cfg, std::unique_ptr<Workload> workload);
  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;
  ~Machine();

  // Runs the whole experiment to completion and returns the statistics.
  MachineStats run();

  [[nodiscard]] const MachineConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const Workload& workload() const noexcept { return *workload_; }
  [[nodiscard]] rt::PolicyShared& policy_shared() noexcept { return shared_; }

 private:
  struct ThreadCtx;

  void on_event(const Event& e);
  void start_tx(ThreadCtx& t);
  void dispatch(ThreadCtx& t);
  void continue_acquire(ThreadCtx& t);
  void after_acquires(ThreadCtx& t);
  void continue_waits(ThreadCtx& t);
  void start_hw(ThreadCtx& t);
  void hw_commit(ThreadCtx& t);
  void abort_hw(ThreadCtx& t, htm::AbortStatus status);
  void sgl_granted(ThreadCtx& t);
  void sgl_done(ThreadCtx& t);
  void finish_tx(ThreadCtx& t, bool hardware);
  void release_one(ThreadCtx& t, rt::LockId id);
  void run_maintenance(ThreadCtx& t);
  void record_abort_obs(const ThreadCtx& t, htm::AbortStatus status);

  [[nodiscard]] SimLock& lock_of(rt::LockId id) noexcept;
  [[nodiscard]] std::optional<core::ThreadId> sibling_of(core::ThreadId t) const noexcept;
  [[nodiscard]] std::uint32_t effective_capacity(const ThreadCtx& t) const noexcept;
  void schedule_capacity_check(ThreadCtx& t);
  [[nodiscard]] bool is_seer() const noexcept {
    return cfg_.policy.kind == rt::PolicyKind::kSeer;
  }
  [[nodiscard]] std::uint64_t scan_cost() const noexcept {
    return is_seer() ? cfg_.costs.scan_per_slot * cfg_.n_threads : 0;
  }

  void push(Time at, core::ThreadId th, EventKind kind, std::uint64_t gen,
            rt::LockId lock = {});

  // Routes cfg-level obs sinks into the embedded Seer scheduler before
  // PolicyShared is constructed from the patched config.
  [[nodiscard]] static MachineConfig with_obs(MachineConfig cfg) {
    if (cfg.policy.seer.metrics == nullptr) cfg.policy.seer.metrics = cfg.metrics;
    if (cfg.policy.seer.obs_trace == nullptr) cfg.policy.seer.obs_trace = cfg.trace;
    if (cfg.policy.seer.recorder == nullptr) cfg.policy.seer.recorder = cfg.recorder;
    // core_locks_ is sized from cfg.physical_cores, and SeerPolicy indexes it
    // with my_core_ = thread % seer.physical_cores; the two must agree or the
    // policy hands out lock ids past the end of the array.
    cfg.policy.seer.physical_cores = cfg.physical_cores;
    return cfg;
  }

  MachineConfig cfg_;
  std::unique_ptr<Workload> workload_;
  rt::PolicyShared shared_;
  EventQueue queue_;
  Time now_ = 0;

  SimLock sgl_;
  SimLock aux_;
  SimLock sched_;
  std::vector<SimLock> tx_locks_;
  std::vector<SimLock> core_locks_;

  std::vector<std::unique_ptr<ThreadCtx>> threads_;
  std::size_t done_count_ = 0;
  MachineStats stats_;

  // Observability metric ids (registered in the constructor when
  // cfg_.metrics is set; kNoMetric otherwise).
  obs::MetricId m_commits_ = obs::kNoMetric;
  obs::MetricId m_hw_attempts_ = obs::kNoMetric;
  obs::MetricId m_sgl_fallbacks_ = obs::kNoMetric;
  obs::MetricId h_queue_depth_ = obs::kNoMetric;
  std::array<obs::MetricId, 4> m_aborts_{obs::kNoMetric, obs::kNoMetric,
                                         obs::kNoMetric, obs::kNoMetric};
};

// Convenience: build, run, return.
[[nodiscard]] MachineStats run_machine(const MachineConfig& cfg,
                                       std::unique_ptr<Workload> workload);

}  // namespace seer::sim
