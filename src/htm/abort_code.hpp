// TSX-compatible transaction status model.
//
// The entire premise of the paper is that commodity HTMs give only a COARSE
// abort categorization: a conflict happened, or capacity was exceeded, or an
// explicit abort / interrupt occurred — never *which* transaction caused it.
// Every backend in this project (real TSX, the software TM, the simulator)
// reports aborts through this one status word, whose bit layout follows
// Intel's <immintrin.h> _XABORT_* definitions so the real-TSX backend can
// pass statuses through unchanged.
#pragma once

#include <cstdint>
#include <string_view>

namespace seer::htm {

// Bit layout of the EAX status returned by _xbegin() on abort.
inline constexpr unsigned kAbortExplicitBit = 1u << 0;  // _XABORT_EXPLICIT
inline constexpr unsigned kAbortRetryBit = 1u << 1;     // _XABORT_RETRY
inline constexpr unsigned kAbortConflictBit = 1u << 2;  // _XABORT_CONFLICT
inline constexpr unsigned kAbortCapacityBit = 1u << 3;  // _XABORT_CAPACITY
inline constexpr unsigned kAbortDebugBit = 1u << 4;     // _XABORT_DEBUG
inline constexpr unsigned kAbortNestedBit = 1u << 5;    // _XABORT_NESTED

// _XBEGIN_STARTED: the sentinel meaning "transaction is running".
inline constexpr unsigned kXBeginStarted = ~0u;

// Coarse abort categorization — the only information an HTM scheduler can
// rely on (Figure 1 of the paper).
enum class AbortCause : std::uint8_t {
  kConflict,  // data conflict with some (unknown) concurrent transaction
  kCapacity,  // read/write footprint exceeded the transactional buffers
  kExplicit,  // software called xabort (e.g. SGL found locked, Alg. 1 l.12)
  kOther,     // interrupt, ring transition, unsupported instruction, ...
};

[[nodiscard]] constexpr std::string_view to_string(AbortCause c) noexcept {
  switch (c) {
    case AbortCause::kConflict: return "conflict";
    case AbortCause::kCapacity: return "capacity";
    case AbortCause::kExplicit: return "explicit";
    case AbortCause::kOther: return "other";
  }
  return "?";
}

// Value-type wrapper around the raw EAX status word.
class AbortStatus {
 public:
  constexpr AbortStatus() = default;
  explicit constexpr AbortStatus(unsigned raw) noexcept : raw_(raw) {}

  // Factory helpers used by the software backends.
  static constexpr AbortStatus conflict(bool may_retry = true) noexcept {
    return AbortStatus(kAbortConflictBit | (may_retry ? kAbortRetryBit : 0u));
  }
  static constexpr AbortStatus capacity() noexcept {
    return AbortStatus(kAbortCapacityBit);
  }
  static constexpr AbortStatus explicit_abort(std::uint8_t code) noexcept {
    return AbortStatus(kAbortExplicitBit | (static_cast<unsigned>(code) << 24));
  }
  static constexpr AbortStatus other() noexcept { return AbortStatus(0u); }

  [[nodiscard]] constexpr unsigned raw() const noexcept { return raw_; }
  [[nodiscard]] constexpr bool is_conflict() const noexcept {
    return (raw_ & kAbortConflictBit) != 0;
  }
  [[nodiscard]] constexpr bool is_capacity() const noexcept {
    return (raw_ & kAbortCapacityBit) != 0;
  }
  [[nodiscard]] constexpr bool is_explicit() const noexcept {
    return (raw_ & kAbortExplicitBit) != 0;
  }
  [[nodiscard]] constexpr bool may_retry() const noexcept {
    return (raw_ & kAbortRetryBit) != 0;
  }
  // The 8-bit code passed to xabort (valid only when is_explicit()).
  [[nodiscard]] constexpr std::uint8_t explicit_code() const noexcept {
    return static_cast<std::uint8_t>(raw_ >> 24);
  }

  [[nodiscard]] constexpr AbortCause cause() const noexcept {
    // A status can set several bits; classify with the same precedence the
    // paper's discussion uses: capacity dominates (it is deterministic),
    // then conflict, then explicit.
    if (is_capacity()) return AbortCause::kCapacity;
    if (is_conflict()) return AbortCause::kConflict;
    if (is_explicit()) return AbortCause::kExplicit;
    return AbortCause::kOther;
  }

  constexpr friend bool operator==(AbortStatus a, AbortStatus b) noexcept {
    return a.raw_ == b.raw_;
  }

 private:
  unsigned raw_ = 0;
};

// Explicit-abort codes used by the runtime (conventional, mirror known
// HTM runtimes: code 0xFF signals "fallback lock was observed locked").
inline constexpr std::uint8_t kXAbortCodeSglLocked = 0xFF;

}  // namespace seer::htm
