// SoftHtm — a software implementation of a best-effort hardware TM.
//
// Purpose: the paper evaluates on Intel TSX silicon, which is deprecated and
// absent from this machine. SoftHtm gives real multi-threaded programs the
// exact *interface and failure model* of a best-effort HTM: optimistic
// transactions, word-granularity conflict detection, bounded capacity,
// explicit aborts, and a coarse TSX-style abort status. The Seer scheduler
// and all baseline policies run unmodified on top of it.
//
// Design: TL2-style word-based STM.
//   * A global version clock and a striped table of versioned write-locks.
//   * Reads validate their stripe (unlocked, version <= read-version) on
//     every access, so transactions only ever observe consistent snapshots
//     (opacity), mirroring how an HTM aborts eagerly on remote invalidation.
//   * Writes are buffered (lazy versioning) and published at commit after
//     acquiring stripe locks in canonical order (no deadlock, no blocking:
//     a busy stripe aborts the transaction with a CONFLICT status).
//   * Read/write-set sizes are capped to model hardware capacity; exceeding
//     a cap aborts with a CAPACITY status, exactly like L1d overflow in TSX.
//   * Non-transactional writers (the SGL fallback path) are handled by
//     subscriptions: the runtime subscribes to the fallback lock word and
//     the transaction aborts if it changes (the software analogue of the
//     lock sitting in the transaction's read set).
//
// TM-managed memory is arrays of seer::htm::TmWord (relaxed atomics) so that
// concurrent commit write-back never races with speculative reads in the
// C++-memory-model sense.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "htm/abort_code.hpp"
#include "htm/access_set.hpp"
#include "htm/instrument.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/cacheline.hpp"

namespace seer::htm {

// A transactionally managed machine word.
using TmWord = std::atomic<std::uint64_t>;

// Pre-registered metric ids a ThreadContext bumps at read-tier promotions
// and capacity aborts (never per access — the hot path stays untouched).
// The embedder registers the counters on its MetricsRegistry before
// freeze(), then installs the ids via ThreadContext::set_metrics; the
// registry must outlive every attempt run on the context.
struct HtmMetrics {
  obs::MetricsRegistry* registry = nullptr;
  core::ThreadId lane = 0;
  obs::MetricId promote_capacity = obs::kNoMetric;    // htm.read_promote.capacity
  obs::MetricId promote_saturation = obs::kNoMetric;  // htm.read_promote.saturation
  obs::MetricId capacity_abort_sig = obs::kNoMetric;  // htm.aborts.capacity.sig_only
  obs::MetricId capacity_abort_exact = obs::kNoMetric;  // htm.aborts.capacity.exact
};

// Thrown by transactional accesses when the transaction must roll back; the
// driver (SoftHtm::ThreadContext::attempt) catches it — user code must let
// it propagate, the same way a hardware abort jumps back to xbegin.
struct TxAbortException {
  AbortStatus status;
};

class SoftHtm {
 public:
  // Deliberately broken variants of the TM, used ONLY by the check harness
  // (src/check/, DESIGN.md §7) to prove the opacity checker catches a
  // defective implementation. Every real embedding uses kNone.
  enum class Defect : std::uint8_t {
    kNone,
    kSkipCommitValidation,  // commit publishes without read-set validation
    kSkipReadValidation,    // reads skip stripe pre/post-validation
  };

  // How reads are tracked for capacity accounting and commit validation
  // (DESIGN.md §10). kAdaptive transactions start in Tier 0 — cold reads go
  // into a signature filter plus an address replay log, near-zero cost —
  // and are promoted to Tier 1 (PR 5's exact distinct-word accounting) only
  // when the log reaches the capacity budget or the signature saturates.
  // kExact skips Tier 0 entirely: every read pays the exact index probe
  // from the first access, which some tests (and any embedder that wants
  // read_set_size() to be exact mid-transaction) rely on.
  enum class ReadTracking : std::uint8_t { kAdaptive, kExact };

  struct Config {
    // Capacity model. Haswell TSX tracks reads in L1d+L2-victim structures
    // (large) and writes strictly in L1d (small); we default to word counts
    // of comparable magnitude scaled down for test speed.
    std::size_t max_read_set = 4096;
    std::size_t max_write_set = 512;
    // Number of versioned-lock stripes (power of two).
    std::size_t stripes = 1u << 16;
    Defect defect = Defect::kNone;
    ReadTracking read_tracking = ReadTracking::kAdaptive;
  };

  SoftHtm() : SoftHtm(Config{}) {}
  explicit SoftHtm(Config cfg);
  SoftHtm(const SoftHtm&) = delete;
  SoftHtm& operator=(const SoftHtm&) = delete;

  class ThreadContext;

  // Handle passed to the transaction body for transactional accesses.
  class Tx {
   public:
    [[nodiscard]] std::uint64_t read(const TmWord& w);
    void write(TmWord& w, std::uint64_t value);

    // Abort programmatically with an 8-bit code (TSX xabort).
    [[noreturn]] void abort(std::uint8_t code);

    // Subscribe to a non-transactional word: the commit (and every later
    // access) fails with CONFLICT if the word no longer equals `expected`.
    void subscribe(const std::atomic<std::uint64_t>& word, std::uint64_t expected);

   private:
    friend class ThreadContext;
    explicit Tx(ThreadContext& ctx) : ctx_(ctx) {}
    ThreadContext& ctx_;
  };

  // Per-thread transaction machinery. Create one per thread; not shareable.
  //
  // Every per-access structure is O(1) and reusable across attempts
  // (DESIGN.md §10): the write set is indexed by an open-addressed hash
  // table behind a 64-bit signature filter (read-own-writes and write
  // dedup in constant time), reads start in a signature-only Tier 0 (a
  // 1024-bit Bloom filter plus an address replay log) and are promoted
  // lazily to the exact distinct-word index only under capacity pressure
  // or filter saturation, owned stripes are marked at commit in an
  // epoch-tagged stripe-stamp table (cleared by bumping the epoch, never
  // memset), and the commit path sorts a reusable stripe list — zero heap
  // allocations once the vectors and tables are warm.
  class ThreadContext {
   public:
    explicit ThreadContext(SoftHtm& tm)
        : tm_(tm),
          stripe_mask_(tm.stripe_mask_),
          stripe_tab_(tm.stripes_.get()),
          validate_reads_(tm.cfg_.defect != Defect::kSkipReadValidation),
          t0_buf_(std::make_unique<const TmWord*[]>(tm.cfg_.max_read_set)),
          t0_next_(t0_buf_.get()),
          t0_end_(t0_buf_.get() + tm.cfg_.max_read_set),
          t0_check_(t0_buf_.get() + (tm.cfg_.max_read_set < kT0SatCheckStride
                                         ? tm.cfg_.max_read_set
                                         : kT0SatCheckStride)),
          stamps_(std::make_unique<std::uint64_t[]>(tm.cfg_.stripes)) {}
    ThreadContext(const ThreadContext&) = delete;
    ThreadContext& operator=(const ThreadContext&) = delete;

    // Runs `body(Tx&)` as one optimistic transaction attempt.
    // Returns kXBeginStarted's AbortStatus-equivalent on success
    // (status.raw() == kXBeginStarted) or the abort status.
    template <typename Body>
    AbortStatus attempt(Body&& body) {
      try {
        begin();
        Tx tx(*this);
        body(tx);
        return commit();
      } catch (const TxAbortException& e) {
        rollback();
        return e.status;
      }
    }

    // Like attempt(), but exempt from the modelled hardware-capacity caps.
    // Used by pessimistic fallback paths, which must execute arbitrary
    // bodies but still need stripe coordination so their updates are atomic
    // with respect to concurrently committing speculative transactions
    // (a raw non-transactional write could interleave with a commit's
    // write-back and lose updates).
    template <typename Body>
    AbortStatus attempt_unbounded(Body&& body) {
      enforce_capacity_ = false;
      const AbortStatus s = attempt(std::forward<Body>(body));
      enforce_capacity_ = true;
      return s;
    }

    // True while a speculative attempt is executing (xtest analogue).
    [[nodiscard]] bool in_tx() const noexcept { return active_; }

    // Introspection for tests: words read / written this attempt — the
    // quantity the capacity model caps (capacity models L1d words;
    // re-accessing a word consumes no new capacity, exactly like TSX).
    // While reads are still Tier 0 (signature-only) the read count is the
    // replay-log length: a conservative UPPER bound on the distinct-word
    // count, exact whenever no word was read twice. After promotion — and
    // always under ReadTracking::kExact — it is the exact distinct count.
    [[nodiscard]] std::size_t read_set_size() const noexcept {
      return read_tier_exact_ ? reads_.size()
                              : static_cast<std::size_t>(t0_next_ - t0_buf_.get());
    }
    [[nodiscard]] std::size_t write_set_size() const noexcept { return writes_.size(); }

    // Read-tracking tier introspection (tests and metrics plumbing): which
    // tier the current/last attempt's reads are tracked in, and how many
    // promotions this context has performed, split by triggering predicate.
    [[nodiscard]] bool read_tier_is_exact() const noexcept { return read_tier_exact_; }
    [[nodiscard]] std::uint64_t read_promotions_capacity() const noexcept {
      return promote_capacity_;
    }
    [[nodiscard]] std::uint64_t read_promotions_saturation() const noexcept {
      return promote_saturation_;
    }

    // Jumps the stamp/index epoch counter (tests only: exercising the
    // wraparound path without running 2^32 attempts). The next begin()
    // advances from this value.
    void set_stamp_epoch_for_testing(std::uint32_t epoch) noexcept { epoch_ = epoch; }
    [[nodiscard]] std::uint32_t stamp_epoch_for_testing() const noexcept {
      return epoch_;
    }

    // --- check-harness instrumentation (src/check/) ----------------------
    // Installs a deterministic fault injector consulted before every
    // speculative operation; nullptr disables. The injector must outlive
    // every attempt run on this context.
    void set_fault_injector(FaultInjector* injector) noexcept { fault_ = injector; }
    // Enables commit logging for the opacity checker: every committed
    // transaction (speculative or capacity-exempt fallback) appends one
    // TxRecord to `log`. nullptr disables.
    void set_tx_log(TxLog* log) noexcept { log_ = log; }

    // --- observability (src/obs/) ----------------------------------------
    // Emits tx begin/commit/abort events into `lane` of the sink (RDTSC
    // timestamps via obs::now_ticks). The sink must outlive every attempt
    // run on this context; nullptr disables.
    void set_obs(obs::TraceSink* sink, core::ThreadId lane) noexcept {
      obs_ = sink;
      obs_lane_ = lane;
    }
    // Installs pre-registered promotion/capacity-abort counters (see
    // HtmMetrics). Bumped only at tier promotions and capacity aborts —
    // never on the per-access path. The registry must outlive every attempt
    // run on this context; a default-constructed HtmMetrics disables.
    void set_metrics(const HtmMetrics& m) noexcept { metrics_ = m; }

   private:
    friend class Tx;

    struct WriteEntry {
      TmWord* addr;
      std::uint64_t value;
      std::uint32_t stripe;  // index into tm_.stripes_
    };
    struct Subscription {
      const std::atomic<std::uint64_t>* word;
      std::uint64_t expected;
    };

    // Stripe-stamp flag bits (stored in the low bits of a stamp; the
    // current epoch lives in the bits above them). Deliberately touched
    // only at commit time: the table is sized by the stripe count, too
    // large to stay cache-resident, so the per-access paths must not walk
    // it (see do_read).
    static constexpr std::uint64_t kStampOwned = 2;  // commit locks this stripe

    void begin();
    AbortStatus commit();
    void rollback() noexcept;

    // The per-access paths (and everything they touch) are defined inline
    // at the bottom of this header: the call itself is the largest single
    // cost left on a warmed-up read, and inlining lets the caller's loop
    // hoist the dormant-feature checks and hot constants into registers.
    std::uint64_t do_read(const TmWord& w);
    void do_write(TmWord& w, std::uint64_t value);
    void do_subscribe(const std::atomic<std::uint64_t>& word, std::uint64_t expected);
    // Tier-1 tracking for one read: the exact dedup-and-account probe.
    void track_read_exact(const TmWord* w, std::uint32_t si, std::uint64_t h) {
      if (read_words_.find_or_insert(w, si, h) == AddrIndex::kNpos) {
        reads_.push_back(si);
        if (enforce_capacity_ && reads_.size() > tm_.cfg_.max_read_set) {
          abort_capacity();
        }
      }
    }
    // Tier-0 slow path, reached when the log cursor hits t0_check_: either
    // a saturation checkpoint (scan the filter, move the checkpoint, keep
    // logging) or a promotion to exact accounting.
    void t0_checkpoint(const TmWord* w, std::uint64_t h);
    void promote_reads(bool saturated);
    [[noreturn]] void abort_capacity();
    [[noreturn]] void abort_with(AbortStatus status);
    void check_subscriptions();
    // Fault injection is dormant in every non-check embedding: the inline
    // wrapper is one pointer test, the consult lives out of line.
    void maybe_fault(TxOp op) {
      if (fault_ == nullptr || !enforce_capacity_) return;
      maybe_fault_slow(op);
    }
    void maybe_fault_slow(TxOp op);

    [[nodiscard]] bool stamp_has(std::uint32_t stripe,
                                 std::uint64_t flag) const noexcept {
      const std::uint64_t s = stamps_[stripe];
      return (s >> 2) == epoch_ && (s & flag) != 0;
    }
    void stamp_set(std::uint32_t stripe, std::uint64_t flag) noexcept {
      std::uint64_t s = stamps_[stripe];
      if ((s >> 2) != epoch_) s = static_cast<std::uint64_t>(epoch_) << 2;
      stamps_[stripe] = s | flag;
    }

    SoftHtm& tm_;
    // Hot-path constants hoisted out of tm_ at construction (the config and
    // stripe table are immutable after the SoftHtm ctor): per-access code
    // loads nothing through the tm_ indirection.
    std::size_t stripe_mask_;
    util::Padded<std::atomic<std::uint64_t>>* stripe_tab_;
    bool validate_reads_;  // == (defect != kSkipReadValidation)
    bool active_ = false;
    bool enforce_capacity_ = true;
    std::uint64_t read_version_ = 0;
    // Read set, Tier 1 (exact): the stripe of each distinct word read
    // (deduplicated by the read_words_ probe), which is all commit-time
    // validation needs. Two words sharing a stripe contribute two entries;
    // validation simply re-checks that stripe. The guarded pushes make
    // reads_.size() exactly the distinct-word count, so it doubles as the
    // capacity account (the model is L1d words, deliberately independent of
    // the stripe count). Empty while reads are still Tier 0.
    std::vector<std::uint32_t> reads_;
    std::vector<WriteEntry> writes_;
    std::vector<Subscription> subs_;
    // O(1) access-path structures (all epoch-cleared, reused across
    // attempts; see access_set.hpp and DESIGN.md §10).
    AddrSignature write_sig_;
    AddrIndex write_index_;  // word addr -> writes_ slot
    AddrIndex read_words_;   // distinct-words-read set (payload: stripe index)
    // Tier-0 read tracking (ReadTracking::kAdaptive; DESIGN.md §10). Every
    // cold read appends its address to the replay log and sets one filter
    // bit — no hash-table probe, no stamp-table traffic. The log length is
    // a sound upper bound on the distinct-word count (a filter miss is a
    // definite new word; a hit is ambiguous and logged anyway), so Tier 0
    // never needs to raise a read-capacity abort itself: promotion to exact
    // accounting fires at the capacity budget, strictly before the true
    // distinct count can exceed it.
    //
    // The log is a raw cursor over a fixed buffer of max_read_set slots
    // (allocated once, reused across attempts) so the per-read cost is one
    // pointer compare + store. t0_check_ is the next point the slow path
    // runs: the budget boundary (t0_end_) or a saturation checkpoint every
    // kT0SatCheckStride logged reads, whichever is nearer — the filter's
    // population is scanned only there, never per read.
    static constexpr std::size_t kT0SatCheckStride = 64;
    std::unique_ptr<const TmWord*[]> t0_buf_;  // replay log, program order
    const TmWord** t0_next_;   // log cursor (== t0_buf_ when empty)
    const TmWord** t0_end_;    // t0_buf_ + cfg_.max_read_set (the budget)
    const TmWord** t0_check_;  // next slow-path stop: min(end, checkpoint)
    ReadSignature read_sig_;
    bool read_tier_exact_ = false;  // false: Tier 0; true: exact accounting
    std::uint64_t promote_capacity_ = 0;    // promotions by log-at-budget
    std::uint64_t promote_saturation_ = 0;  // promotions by filter saturation
    std::unique_ptr<std::uint64_t[]> stamps_;  // per-stripe (epoch<<2)|flags
    std::uint32_t epoch_ = 0;    // bumped per begin(); 0 is never live
    // Commit scratch (reused; member so the commit path never allocates).
    std::vector<std::uint32_t> lock_stripes_;
    // Single-subscription fast path: the executor subscribes to exactly one
    // word (the SGL), so per-read revalidation is one load/compare.
    const std::atomic<std::uint64_t>* sub0_word_ = nullptr;
    std::uint64_t sub0_expected_ = 0;
    // Check-harness state (dormant unless installed).
    FaultInjector* fault_ = nullptr;
    TxLog* log_ = nullptr;
    // Observability trace sink (dormant unless installed).
    obs::TraceSink* obs_ = nullptr;
    core::ThreadId obs_lane_ = 0;
    HtmMetrics metrics_;  // promotion/capacity counters (dormant unless set)
    std::uint64_t attempt_count_ = 0;  // begins seen by this context
    std::uint64_t op_index_ = 0;       // ops within the current attempt
    std::vector<TxRead> read_log_;     // observed reads, program order
  };

  [[nodiscard]] const Config& config() const noexcept { return cfg_; }

  // Which stripe a word maps to (mix the address; words 8 bytes apart land
  // in different stripes). Public so tests can manufacture same-stripe
  // word pairs deterministically.
  [[nodiscard]] std::size_t stripe_index_of(const void* addr) const noexcept {
    return mix_addr(addr) & stripe_mask_;
  }

 private:
  friend class ThreadContext;

  // Versioned lock encoding: bit 0 = locked; bits 63..1 = version.
  static constexpr std::uint64_t kLockedBit = 1ULL;

  [[nodiscard]] std::atomic<std::uint64_t>& stripe_at(std::size_t index) noexcept {
    return stripes_[index].value;
  }

  Config cfg_;
  std::size_t stripe_mask_;
  std::unique_ptr<util::Padded<std::atomic<std::uint64_t>>[]> stripes_;
  alignas(util::kCacheLineBytes) std::atomic<std::uint64_t> clock_{0};
};

// ---------------------------------------------------------------------------
// Inline per-access paths. These run once per transactional read/write, so
// they live in the header: inlined into the caller's loop, the dormant
// instrumentation checks (fault injector, tx log, subscriptions) fold into
// single predictable tests and the hoisted constants (stripe_mask_,
// stripe_tab_, validate_reads_) stay in registers. Cold continuations —
// begin/commit, promotion, every abort — remain out of line in soft_htm.cpp.

inline void SoftHtm::ThreadContext::check_subscriptions() {
  const std::size_t n = subs_.size();
  if (n == 0) return;
  // Single-subscription fast path: the executor subscribes to exactly one
  // word (the SGL fallback lock), so the per-access revalidation is one
  // load/compare against inline members instead of a vector walk.
  if (sub0_word_->load(std::memory_order_acquire) != sub0_expected_) {
    abort_with(AbortStatus::conflict());
  }
  for (std::size_t i = 1; i < n; ++i) {
    const Subscription& s = subs_[i];
    if (s.word->load(std::memory_order_acquire) != s.expected) {
      abort_with(AbortStatus::conflict());
    }
  }
}

inline std::uint64_t SoftHtm::ThreadContext::do_read(const TmWord& w) {
  assert(active_);
  maybe_fault(TxOp::kRead);
  // One address mix feeds everything below: the signature filter (top
  // bits), the stripe map (low bits) and both index probes.
  const std::uint64_t h = mix_addr(&w);
  // Read-own-writes: the write buffer wins over memory. One AND/compare
  // rules out the overwhelmingly common "not in my write set" case; a
  // filter hit falls through to the exact O(1) index probe.
  if (write_sig_.may_contain(h)) {
    const std::uint32_t idx = write_index_.find(&w, h);
    if (idx != AddrIndex::kNpos) return writes_[idx].value;
  }
  const auto si = static_cast<std::uint32_t>(h & stripe_mask_);
  std::atomic<std::uint64_t>& stripe = stripe_tab_[si].value;
  // TL2 post-validated read: sample the stripe version, read the word,
  // re-check the stripe. Any concurrent commit to this stripe is caught.
  const std::uint64_t v_before = stripe.load(std::memory_order_acquire);
  if (validate_reads_ &&
      ((v_before & kLockedBit) != 0 || v_before > (read_version_ << 1))) {
    abort_with(AbortStatus::conflict());
  }
  const std::uint64_t value = w.load(std::memory_order_acquire);
  const std::uint64_t v_after = stripe.load(std::memory_order_acquire);
  if (validate_reads_ && v_after != v_before) {
    abort_with(AbortStatus::conflict());
  }
  check_subscriptions();
  if (log_ != nullptr) read_log_.push_back(TxRead{&w, value});
  // Two-tier read tracking (DESIGN.md §10). Tier 0 (the common case): log
  // the address and set one filter bit — no hash-table probe, no stamp
  // traffic. Every read is logged, filter hit or miss: a miss is a definite
  // new word, a hit cannot be told from a false positive without the exact
  // probe Tier 0 exists to avoid, so counting both keeps the log length a
  // sound UPPER bound on the distinct-word count. The single cursor
  // compare folds both promotion predicates: t0_check_ is the budget
  // boundary or the next saturation checkpoint, whichever is nearer (the
  // slow halves of both live out of line in soft_htm.cpp).
  if (!read_tier_exact_) {
    if (t0_next_ != t0_check_) [[likely]] {
      read_sig_.add(h);
      *t0_next_++ = &w;
      return value;
    }
    t0_checkpoint(&w, h);
    return value;
  }
  // Tier 1 (exact): one L1-resident probe both dedups the read set and
  // accounts capacity — a word seen before adds nothing (its stripe is
  // already in reads_ and, per the L1d model, a resident line consumes no
  // new capacity). A new word appends its stripe — two distinct words can
  // share a stripe, which merely validates that stripe twice at commit.
  // Keeping the big per-stripe stamp table off the read path matters: it
  // is the one structure too large to stay cache-resident.
  track_read_exact(&w, si, h);
  return value;
}

inline void SoftHtm::ThreadContext::do_write(TmWord& w, std::uint64_t value) {
  assert(active_);
  maybe_fault(TxOp::kWrite);
  // One probe both dedups and claims the slot: an existing entry is
  // overwritten in place, a new word appends to the buffer.
  const std::uint64_t h = mix_addr(&w);
  const std::uint32_t existing =
      write_index_.find_or_insert(&w, static_cast<std::uint32_t>(writes_.size()), h);
  if (existing != AddrIndex::kNpos) {
    writes_[existing].value = value;
    return;
  }
  write_sig_.add(h);
  writes_.push_back(
      WriteEntry{&w, value, static_cast<std::uint32_t>(h & stripe_mask_)});
  if (enforce_capacity_ && writes_.size() > tm_.cfg_.max_write_set) {
    // A write overflow can fire in either read tier — this is the one
    // capacity abort that genuinely lands in the sig_only bucket.
    abort_capacity();
  }
}

inline std::uint64_t SoftHtm::Tx::read(const TmWord& w) { return ctx_.do_read(w); }
inline void SoftHtm::Tx::write(TmWord& w, std::uint64_t value) {
  ctx_.do_write(w, value);
}

}  // namespace seer::htm
