// SoftHtm — a software implementation of a best-effort hardware TM.
//
// Purpose: the paper evaluates on Intel TSX silicon, which is deprecated and
// absent from this machine. SoftHtm gives real multi-threaded programs the
// exact *interface and failure model* of a best-effort HTM: optimistic
// transactions, word-granularity conflict detection, bounded capacity,
// explicit aborts, and a coarse TSX-style abort status. The Seer scheduler
// and all baseline policies run unmodified on top of it.
//
// Design: TL2-style word-based STM.
//   * A global version clock and a striped table of versioned write-locks.
//   * Reads validate their stripe (unlocked, version <= read-version) on
//     every access, so transactions only ever observe consistent snapshots
//     (opacity), mirroring how an HTM aborts eagerly on remote invalidation.
//   * Writes are buffered (lazy versioning) and published at commit after
//     acquiring stripe locks in canonical order (no deadlock, no blocking:
//     a busy stripe aborts the transaction with a CONFLICT status).
//   * Read/write-set sizes are capped to model hardware capacity; exceeding
//     a cap aborts with a CAPACITY status, exactly like L1d overflow in TSX.
//   * Non-transactional writers (the SGL fallback path) are handled by
//     subscriptions: the runtime subscribes to the fallback lock word and
//     the transaction aborts if it changes (the software analogue of the
//     lock sitting in the transaction's read set).
//
// TM-managed memory is arrays of seer::htm::TmWord (relaxed atomics) so that
// concurrent commit write-back never races with speculative reads in the
// C++-memory-model sense.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "htm/abort_code.hpp"
#include "htm/access_set.hpp"
#include "htm/instrument.hpp"
#include "obs/trace.hpp"
#include "util/cacheline.hpp"

namespace seer::htm {

// A transactionally managed machine word.
using TmWord = std::atomic<std::uint64_t>;

// Thrown by transactional accesses when the transaction must roll back; the
// driver (SoftHtm::ThreadContext::attempt) catches it — user code must let
// it propagate, the same way a hardware abort jumps back to xbegin.
struct TxAbortException {
  AbortStatus status;
};

class SoftHtm {
 public:
  // Deliberately broken variants of the TM, used ONLY by the check harness
  // (src/check/, DESIGN.md §7) to prove the opacity checker catches a
  // defective implementation. Every real embedding uses kNone.
  enum class Defect : std::uint8_t {
    kNone,
    kSkipCommitValidation,  // commit publishes without read-set validation
    kSkipReadValidation,    // reads skip stripe pre/post-validation
  };

  struct Config {
    // Capacity model. Haswell TSX tracks reads in L1d+L2-victim structures
    // (large) and writes strictly in L1d (small); we default to word counts
    // of comparable magnitude scaled down for test speed.
    std::size_t max_read_set = 4096;
    std::size_t max_write_set = 512;
    // Number of versioned-lock stripes (power of two).
    std::size_t stripes = 1u << 16;
    Defect defect = Defect::kNone;
  };

  SoftHtm() : SoftHtm(Config{}) {}
  explicit SoftHtm(Config cfg);
  SoftHtm(const SoftHtm&) = delete;
  SoftHtm& operator=(const SoftHtm&) = delete;

  class ThreadContext;

  // Handle passed to the transaction body for transactional accesses.
  class Tx {
   public:
    [[nodiscard]] std::uint64_t read(const TmWord& w);
    void write(TmWord& w, std::uint64_t value);

    // Abort programmatically with an 8-bit code (TSX xabort).
    [[noreturn]] void abort(std::uint8_t code);

    // Subscribe to a non-transactional word: the commit (and every later
    // access) fails with CONFLICT if the word no longer equals `expected`.
    void subscribe(const std::atomic<std::uint64_t>& word, std::uint64_t expected);

   private:
    friend class ThreadContext;
    explicit Tx(ThreadContext& ctx) : ctx_(ctx) {}
    ThreadContext& ctx_;
  };

  // Per-thread transaction machinery. Create one per thread; not shareable.
  //
  // Every per-access structure is O(1) and reusable across attempts
  // (DESIGN.md §10): the write set is indexed by an open-addressed hash
  // table behind a 64-bit signature filter (read-own-writes and write
  // dedup in constant time), reads are deduplicated through an exact
  // distinct-word index (one L1-resident probe doubles as the capacity
  // account), owned stripes are marked at commit in an epoch-tagged
  // stripe-stamp table (cleared by bumping the epoch, never memset), and
  // the commit path sorts a reusable stripe list — zero heap allocations
  // once the vectors and tables are warm.
  class ThreadContext {
   public:
    explicit ThreadContext(SoftHtm& tm)
        : tm_(tm), stamps_(std::make_unique<std::uint64_t[]>(tm.cfg_.stripes)) {}
    ThreadContext(const ThreadContext&) = delete;
    ThreadContext& operator=(const ThreadContext&) = delete;

    // Runs `body(Tx&)` as one optimistic transaction attempt.
    // Returns kXBeginStarted's AbortStatus-equivalent on success
    // (status.raw() == kXBeginStarted) or the abort status.
    template <typename Body>
    AbortStatus attempt(Body&& body) {
      try {
        begin();
        Tx tx(*this);
        body(tx);
        return commit();
      } catch (const TxAbortException& e) {
        rollback();
        return e.status;
      }
    }

    // Like attempt(), but exempt from the modelled hardware-capacity caps.
    // Used by pessimistic fallback paths, which must execute arbitrary
    // bodies but still need stripe coordination so their updates are atomic
    // with respect to concurrently committing speculative transactions
    // (a raw non-transactional write could interleave with a commit's
    // write-back and lose updates).
    template <typename Body>
    AbortStatus attempt_unbounded(Body&& body) {
      enforce_capacity_ = false;
      const AbortStatus s = attempt(std::forward<Body>(body));
      enforce_capacity_ = true;
      return s;
    }

    // True while a speculative attempt is executing (xtest analogue).
    [[nodiscard]] bool in_tx() const noexcept { return active_; }

    // Introspection for tests: distinct words read / written this attempt —
    // the quantity the capacity model caps (capacity models L1d words;
    // re-accessing a word consumes no new capacity, exactly like TSX).
    [[nodiscard]] std::size_t read_set_size() const noexcept { return reads_.size(); }
    [[nodiscard]] std::size_t write_set_size() const noexcept { return writes_.size(); }

    // Jumps the stamp/index epoch counter (tests only: exercising the
    // wraparound path without running 2^32 attempts). The next begin()
    // advances from this value.
    void set_stamp_epoch_for_testing(std::uint32_t epoch) noexcept { epoch_ = epoch; }
    [[nodiscard]] std::uint32_t stamp_epoch_for_testing() const noexcept {
      return epoch_;
    }

    // --- check-harness instrumentation (src/check/) ----------------------
    // Installs a deterministic fault injector consulted before every
    // speculative operation; nullptr disables. The injector must outlive
    // every attempt run on this context.
    void set_fault_injector(FaultInjector* injector) noexcept { fault_ = injector; }
    // Enables commit logging for the opacity checker: every committed
    // transaction (speculative or capacity-exempt fallback) appends one
    // TxRecord to `log`. nullptr disables.
    void set_tx_log(TxLog* log) noexcept { log_ = log; }

    // --- observability (src/obs/) ----------------------------------------
    // Emits tx begin/commit/abort events into `lane` of the sink (RDTSC
    // timestamps via obs::now_ticks). The sink must outlive every attempt
    // run on this context; nullptr disables.
    void set_obs(obs::TraceSink* sink, core::ThreadId lane) noexcept {
      obs_ = sink;
      obs_lane_ = lane;
    }

   private:
    friend class Tx;

    struct WriteEntry {
      TmWord* addr;
      std::uint64_t value;
      std::uint32_t stripe;  // index into tm_.stripes_
    };
    struct Subscription {
      const std::atomic<std::uint64_t>* word;
      std::uint64_t expected;
    };

    // Stripe-stamp flag bits (stored in the low bits of a stamp; the
    // current epoch lives in the bits above them). Deliberately touched
    // only at commit time: the table is sized by the stripe count, too
    // large to stay cache-resident, so the per-access paths must not walk
    // it (see do_read).
    static constexpr std::uint64_t kStampOwned = 2;  // commit locks this stripe

    void begin();
    AbortStatus commit();
    void rollback() noexcept;

    std::uint64_t do_read(const TmWord& w);
    void do_write(TmWord& w, std::uint64_t value);
    void do_subscribe(const std::atomic<std::uint64_t>& word, std::uint64_t expected);
    [[noreturn]] void abort_with(AbortStatus status);
    void check_subscriptions();
    void maybe_fault(TxOp op);

    [[nodiscard]] bool stamp_has(std::uint32_t stripe,
                                 std::uint64_t flag) const noexcept {
      const std::uint64_t s = stamps_[stripe];
      return (s >> 2) == epoch_ && (s & flag) != 0;
    }
    void stamp_set(std::uint32_t stripe, std::uint64_t flag) noexcept {
      std::uint64_t s = stamps_[stripe];
      if ((s >> 2) != epoch_) s = static_cast<std::uint64_t>(epoch_) << 2;
      stamps_[stripe] = s | flag;
    }

    SoftHtm& tm_;
    bool active_ = false;
    bool enforce_capacity_ = true;
    std::uint64_t read_version_ = 0;
    // Read set: the stripe of each distinct word read (deduplicated by the
    // read_words_ probe), which is all commit-time validation needs. Two
    // words sharing a stripe contribute two entries; validation simply
    // re-checks that stripe. The guarded pushes make reads_.size() exactly
    // the distinct-word count, so it doubles as the capacity account (the
    // model is L1d words, deliberately independent of the stripe count).
    std::vector<std::uint32_t> reads_;
    std::vector<WriteEntry> writes_;
    std::vector<Subscription> subs_;
    // O(1) access-path structures (all epoch-cleared, reused across
    // attempts; see access_set.hpp and DESIGN.md §10).
    AddrSignature write_sig_;
    AddrIndex write_index_;  // word addr -> writes_ slot
    AddrIndex read_words_;   // distinct-words-read set (payload: stripe index)
    std::unique_ptr<std::uint64_t[]> stamps_;  // per-stripe (epoch<<2)|flags
    std::uint32_t epoch_ = 0;    // bumped per begin(); 0 is never live
    // Commit scratch (reused; member so the commit path never allocates).
    std::vector<std::uint32_t> lock_stripes_;
    // Single-subscription fast path: the executor subscribes to exactly one
    // word (the SGL), so per-read revalidation is one load/compare.
    const std::atomic<std::uint64_t>* sub0_word_ = nullptr;
    std::uint64_t sub0_expected_ = 0;
    // Check-harness state (dormant unless installed).
    FaultInjector* fault_ = nullptr;
    TxLog* log_ = nullptr;
    // Observability trace sink (dormant unless installed).
    obs::TraceSink* obs_ = nullptr;
    core::ThreadId obs_lane_ = 0;
    std::uint64_t attempt_count_ = 0;  // begins seen by this context
    std::uint64_t op_index_ = 0;       // ops within the current attempt
    std::vector<TxRead> read_log_;     // observed reads, program order
  };

  [[nodiscard]] const Config& config() const noexcept { return cfg_; }

  // Which stripe a word maps to (mix the address; words 8 bytes apart land
  // in different stripes). Public so tests can manufacture same-stripe
  // word pairs deterministically.
  [[nodiscard]] std::size_t stripe_index_of(const void* addr) const noexcept {
    return mix_addr(addr) & stripe_mask_;
  }

 private:
  friend class ThreadContext;

  // Versioned lock encoding: bit 0 = locked; bits 63..1 = version.
  static constexpr std::uint64_t kLockedBit = 1ULL;

  [[nodiscard]] std::atomic<std::uint64_t>& stripe_at(std::size_t index) noexcept {
    return stripes_[index].value;
  }

  Config cfg_;
  std::size_t stripe_mask_;
  std::unique_ptr<util::Padded<std::atomic<std::uint64_t>>[]> stripes_;
  alignas(util::kCacheLineBytes) std::atomic<std::uint64_t> clock_{0};
};

}  // namespace seer::htm
