// Check-harness hooks into the software HTM (consumed by src/check/).
//
// Two opt-in instruments share this header so that SoftHtm never depends on
// the check library: a fault-injection interface consulted before every
// speculative transactional operation, and the commit-log record types the
// opacity checker replays offline. Both cost one dormant null-pointer test
// on the hot path until a harness installs them on a ThreadContext.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "htm/abort_code.hpp"

namespace seer::htm {

// The transactional operations a fault can be attached to. kSubscribe is
// the lock-word subscription (Tx::subscribe) — on real TSX the fallback
// lock sits in the transaction's read set, so its acquisition is exactly
// as abortable as any other speculative access and fault plans must be
// able to pin aborts to it.
enum class TxOp : std::uint8_t { kBegin, kRead, kWrite, kCommit, kSubscribe };

inline constexpr std::size_t kTxOpCount = 5;

[[nodiscard]] constexpr std::string_view to_string(TxOp op) noexcept {
  switch (op) {
    case TxOp::kBegin: return "begin";
    case TxOp::kRead: return "read";
    case TxOp::kWrite: return "write";
    case TxOp::kCommit: return "commit";
    case TxOp::kSubscribe: return "subscribe";
  }
  return "?";
}

// Deterministic abort injection. SoftHtm consults the installed injector
// before every operation of a *speculative* attempt (never on the
// capacity-exempt SGL fallback path, which models non-speculative
// execution). Returning a status aborts the attempt with it through the
// normal rollback path, so to the caller — and to any scheduling policy
// above it — an injected fault is indistinguishable from a spurious
// hardware abort.
//
// An injector is installed per ThreadContext and is only ever called from
// that context's owning thread; implementations need no synchronization.
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;

  // `attempt` counts transactions begun on the installing context (0-based,
  // across retries and distinct transactions alike); `op_index` is the
  // operation's 0-based position within the current attempt (kBegin is
  // always op_index 0).
  [[nodiscard]] virtual std::optional<AbortStatus> before_op(
      TxOp op, std::uint64_t attempt, std::uint64_t op_index) noexcept = 0;
};

// One transactional read as the opacity checker sees it: the word and the
// post-validation value the transaction observed. Reads satisfied from the
// transaction's own write buffer are not logged — they never touch shared
// memory and are trivially consistent.
struct TxRead {
  const void* addr = nullptr;
  std::uint64_t value = 0;
};

// One committed write: the word and the final value published at commit
// (one entry per distinct word; intermediate overwrites are invisible).
struct TxWrite {
  const void* addr = nullptr;
  std::uint64_t value = 0;
};

// The log record of one COMMITTED transaction. Aborted attempts are rolled
// back and leave no trace — the checker verifies the committed history.
struct TxRecord {
  std::uint64_t begin_version = 0;   // global-clock snapshot at begin
  std::uint64_t commit_version = 0;  // unique write version (writers);
                                     // begin_version for read-only commits
  bool writer = false;
  std::vector<TxRead> reads;    // program order, post-validation values
  std::vector<TxWrite> writes;  // final value per distinct word
};

// Per-context commit log (single-writer; harvest after joining workers).
using TxLog = std::vector<TxRecord>;

}  // namespace seer::htm
