#include "htm/soft_htm.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace seer::htm {

SoftHtm::SoftHtm(Config cfg) : cfg_(cfg) {
  assert(std::has_single_bit(cfg_.stripes) && "stripe count must be a power of two");
  stripe_mask_ = cfg_.stripes - 1;
  stripes_ = std::make_unique<util::Padded<std::atomic<std::uint64_t>>[]>(cfg_.stripes);
  for (std::size_t i = 0; i < cfg_.stripes; ++i) {
    stripes_[i].value.store(0, std::memory_order_relaxed);
  }
}

std::uint64_t SoftHtm::Tx::read(const TmWord& w) { return ctx_.do_read(w); }
void SoftHtm::Tx::write(TmWord& w, std::uint64_t value) { ctx_.do_write(w, value); }
void SoftHtm::Tx::abort(std::uint8_t code) {
  ctx_.abort_with(AbortStatus::explicit_abort(code));
}
void SoftHtm::Tx::subscribe(const std::atomic<std::uint64_t>& word,
                            std::uint64_t expected) {
  ctx_.do_subscribe(word, expected);
}

void SoftHtm::ThreadContext::begin() {
  assert(!active_ && "SoftHtm transactions do not nest");
  active_ = true;
  reads_.clear();
  writes_.clear();
  subs_.clear();
  read_log_.clear();
  ++attempt_count_;
  op_index_ = 0;
  read_version_ = tm_.clock_.load(std::memory_order_acquire);
  if (obs_ != nullptr) {
    obs_->emit(obs_lane_, obs::TraceKind::kTxBegin, obs::now_ticks(),
               attempt_count_ - 1);
  }
  maybe_fault(TxOp::kBegin);
}

void SoftHtm::ThreadContext::rollback() noexcept {
  active_ = false;
  reads_.clear();
  writes_.clear();
  subs_.clear();
}

void SoftHtm::ThreadContext::abort_with(AbortStatus status) {
  if (obs_ != nullptr) {
    obs_->emit(obs_lane_, obs::TraceKind::kTxAbort, obs::now_ticks(),
               static_cast<std::uint64_t>(status.cause()));
  }
  throw TxAbortException{status};
}

void SoftHtm::ThreadContext::maybe_fault(TxOp op) {
  // Injection models *hardware* abort noise, so the capacity-exempt path
  // (the pessimistic SGL fallback, which is not speculative) is exempt too —
  // otherwise a high-rate plan could starve the fallback's retry loop.
  if (fault_ == nullptr || !enforce_capacity_) return;
  const std::uint64_t i = op_index_++;
  if (const auto forced = fault_->before_op(op, attempt_count_ - 1, i)) {
    abort_with(*forced);
  }
}

void SoftHtm::ThreadContext::check_subscriptions() {
  for (const Subscription& s : subs_) {
    if (s.word->load(std::memory_order_acquire) != s.expected) {
      abort_with(AbortStatus::conflict());
    }
  }
}

std::uint64_t SoftHtm::ThreadContext::do_read(const TmWord& w) {
  assert(active_);
  maybe_fault(TxOp::kRead);
  // Read-own-writes: the write buffer wins over memory.
  for (auto it = writes_.rbegin(); it != writes_.rend(); ++it) {
    if (it->addr == &w) return it->value;
  }
  std::atomic<std::uint64_t>& stripe = tm_.stripe_of(&w);
  const bool validate = tm_.cfg_.defect != Defect::kSkipReadValidation;
  // TL2 post-validated read: sample the stripe version, read the word,
  // re-check the stripe. Any concurrent commit to this stripe is caught.
  const std::uint64_t v_before = stripe.load(std::memory_order_acquire);
  if (validate &&
      ((v_before & kLockedBit) != 0 || v_before > (read_version_ << 1))) {
    abort_with(AbortStatus::conflict());
  }
  const std::uint64_t value = w.load(std::memory_order_acquire);
  const std::uint64_t v_after = stripe.load(std::memory_order_acquire);
  if (validate && v_after != v_before) {
    abort_with(AbortStatus::conflict());
  }
  check_subscriptions();
  if (log_ != nullptr) read_log_.push_back(TxRead{&w, value});
  reads_.push_back(ReadEntry{&stripe});
  if (enforce_capacity_ && reads_.size() > tm_.cfg_.max_read_set) {
    abort_with(AbortStatus::capacity());
  }
  return value;
}

void SoftHtm::ThreadContext::do_write(TmWord& w, std::uint64_t value) {
  assert(active_);
  maybe_fault(TxOp::kWrite);
  for (auto& e : writes_) {
    if (e.addr == &w) {
      e.value = value;
      return;
    }
  }
  writes_.push_back(WriteEntry{&w, value, &tm_.stripe_of(&w)});
  if (enforce_capacity_ && writes_.size() > tm_.cfg_.max_write_set) {
    abort_with(AbortStatus::capacity());
  }
}

void SoftHtm::ThreadContext::do_subscribe(const std::atomic<std::uint64_t>& word,
                                          std::uint64_t expected) {
  assert(active_);
  if (word.load(std::memory_order_acquire) != expected) {
    abort_with(AbortStatus::conflict());
  }
  subs_.push_back(Subscription{&word, expected});
}

AbortStatus SoftHtm::ThreadContext::commit() {
  assert(active_);
  maybe_fault(TxOp::kCommit);
  if (writes_.empty()) {
    // Read-only transactions were validated on every read; nothing to publish.
    check_subscriptions();
    if (log_ != nullptr) {
      // A read-only commit serializes at its snapshot: it saw every write
      // with version <= read_version_ and none after.
      log_->push_back(TxRecord{.begin_version = read_version_,
                               .commit_version = read_version_,
                               .writer = false,
                               .reads = read_log_,
                               .writes = {}});
    }
    if (obs_ != nullptr) {
      obs_->emit(obs_lane_, obs::TraceKind::kTxCommit, obs::now_ticks(), 0);
    }
    rollback();
    return AbortStatus(kXBeginStarted);
  }

  // Acquire stripe locks in canonical (address) order; never block — a busy
  // stripe means a concurrent committer, which an HTM would report as a
  // conflict abort.
  std::vector<WriteEntry*> order;
  order.reserve(writes_.size());
  for (auto& e : writes_) order.push_back(&e);
  std::sort(order.begin(), order.end(), [](const WriteEntry* a, const WriteEntry* b) {
    return a->stripe < b->stripe;
  });

  // NOTE: every abort below this point must release the stripes acquired so
  // far — a leaked stripe lock poisons that stripe forever (all later
  // transactions touching it abort with CONFLICT unconditionally).
  std::size_t locked = 0;
  auto release_locked = [&]() noexcept {
    for (std::size_t i = 0; i < locked; ++i) {
      std::atomic<std::uint64_t>* s = order[i]->stripe;
      if (i > 0 && order[i - 1]->stripe == s) continue;  // dedup same stripe
      s->fetch_and(~kLockedBit, std::memory_order_release);
    }
  };

  try {
    for (std::size_t i = 0; i < order.size(); ++i) {
      std::atomic<std::uint64_t>* s = order[i]->stripe;
      if (i > 0 && order[i - 1]->stripe == s) {
        ++locked;  // already own this stripe
        continue;
      }
      std::uint64_t cur = s->load(std::memory_order_acquire);
      if ((cur & kLockedBit) != 0 || cur > (read_version_ << 1) ||
          !s->compare_exchange_strong(cur, cur | kLockedBit, std::memory_order_acq_rel)) {
        release_locked();
        abort_with(AbortStatus::conflict());
      }
      ++locked;
    }

    // Validate the read set against the read version (stripes we own pass
    // by construction: we checked their version before locking).
    if (tm_.cfg_.defect != Defect::kSkipCommitValidation) {
      for (const ReadEntry& r : reads_) {
        const std::uint64_t v = r.stripe->load(std::memory_order_acquire);
        if ((v & kLockedBit) != 0) {
          const bool own =
              std::any_of(order.begin(), order.end(), [&](const WriteEntry* e) {
            return e->stripe == r.stripe;
          });
          if (!own) {
            release_locked();
            abort_with(AbortStatus::conflict());
          }
        } else if (v > (read_version_ << 1)) {
          release_locked();
          abort_with(AbortStatus::conflict());
        }
      }
    }
    for (const Subscription& sub : subs_) {
      if (sub.word->load(std::memory_order_acquire) != sub.expected) {
        release_locked();
        abort_with(AbortStatus::conflict());
      }
    }
  } catch (const TxAbortException&) {
    rollback();
    throw;
  }

  // Publish: bump the clock, write back, release stripes at the new version.
  const std::uint64_t wv = tm_.clock_.fetch_add(1, std::memory_order_acq_rel) + 1;
  for (const WriteEntry& e : writes_) {
    e.addr->store(e.value, std::memory_order_release);
  }
  for (std::size_t i = 0; i < order.size(); ++i) {
    std::atomic<std::uint64_t>* s = order[i]->stripe;
    if (i > 0 && order[i - 1]->stripe == s) continue;
    s->store(wv << 1, std::memory_order_release);
  }
  if (log_ != nullptr) {
    TxRecord rec{.begin_version = read_version_,
                 .commit_version = wv,
                 .writer = true,
                 .reads = read_log_,
                 .writes = {}};
    rec.writes.reserve(writes_.size());
    for (const WriteEntry& e : writes_) rec.writes.push_back(TxWrite{e.addr, e.value});
    log_->push_back(std::move(rec));
  }
  if (obs_ != nullptr) {
    obs_->emit(obs_lane_, obs::TraceKind::kTxCommit, obs::now_ticks(), writes_.size());
  }
  rollback();
  return AbortStatus(kXBeginStarted);
}

}  // namespace seer::htm
