#include "htm/soft_htm.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace seer::htm {

SoftHtm::SoftHtm(Config cfg) : cfg_(cfg) {
  assert(std::has_single_bit(cfg_.stripes) && "stripe count must be a power of two");
  assert(cfg_.stripes <= (1ULL << 31) && "stripe indices must fit in 32 bits");
  stripe_mask_ = cfg_.stripes - 1;
  stripes_ = std::make_unique<util::Padded<std::atomic<std::uint64_t>>[]>(cfg_.stripes);
  for (std::size_t i = 0; i < cfg_.stripes; ++i) {
    stripes_[i].value.store(0, std::memory_order_relaxed);
  }
}

void SoftHtm::Tx::abort(std::uint8_t code) {
  ctx_.abort_with(AbortStatus::explicit_abort(code));
}
void SoftHtm::Tx::subscribe(const std::atomic<std::uint64_t>& word,
                            std::uint64_t expected) {
  ctx_.do_subscribe(word, expected);
}

void SoftHtm::ThreadContext::begin() {
  assert(!active_ && "SoftHtm transactions do not nest");
  active_ = true;
  reads_.clear();
  writes_.clear();
  subs_.clear();
  read_log_.clear();
  write_sig_.clear();
  // Reads start signature-only (Tier 0) unless the config demands exact
  // accounting from the first access. 16 word stores clear the filter.
  read_tier_exact_ = tm_.cfg_.read_tracking == ReadTracking::kExact;
  t0_next_ = t0_buf_.get();
  t0_check_ = std::min(t0_end_, t0_next_ + kT0SatCheckStride);
  read_sig_.clear();
  // One integer bump retires every stamp and index slot of the previous
  // attempt. On the (once per 2^32 attempts) wraparound the tagged
  // structures must forget their stale epochs, or a recycled epoch value
  // would resurrect entries from 4 billion attempts ago.
  if (++epoch_ == 0) {
    std::fill_n(stamps_.get(), tm_.cfg_.stripes, 0);
    write_index_.hard_reset();
    read_words_.hard_reset();
    epoch_ = 1;
  }
  write_index_.begin_epoch(epoch_);
  read_words_.begin_epoch(epoch_);
  ++attempt_count_;
  op_index_ = 0;
  read_version_ = tm_.clock_.load(std::memory_order_acquire);
  if (obs_ != nullptr) {
    obs_->emit(obs_lane_, obs::TraceKind::kTxBegin, obs::now_ticks(),
               attempt_count_ - 1);
  }
  maybe_fault(TxOp::kBegin);
}

void SoftHtm::ThreadContext::rollback() noexcept {
  active_ = false;
  reads_.clear();
  writes_.clear();
  subs_.clear();
  t0_next_ = t0_buf_.get();
}

void SoftHtm::ThreadContext::abort_with(AbortStatus status) {
  if (obs_ != nullptr) {
    obs_->emit(obs_lane_, obs::TraceKind::kTxAbort, obs::now_ticks(),
               static_cast<std::uint64_t>(status.cause()));
  }
  throw TxAbortException{status};
}

void SoftHtm::ThreadContext::maybe_fault_slow(TxOp op) {
  // Injection models *hardware* abort noise, so the capacity-exempt path
  // (the pessimistic SGL fallback, which is not speculative) is exempt too —
  // otherwise a high-rate plan could starve the fallback's retry loop (the
  // inline maybe_fault wrapper filters both conditions before landing here).
  const std::uint64_t i = op_index_++;
  if (const auto forced = fault_->before_op(op, attempt_count_ - 1, i)) {
    abort_with(*forced);
  }
}

// Tier-0 → Tier-1 promotion: replay the logged addresses through the exact
// distinct-word index once, then continue with exact accounting for the
// rest of the attempt. The replay dedups — reads_ ends at the true distinct
// count ≤ log length — so a capacity-pressure promotion (log == budget)
// can never itself overflow the cap; the belt-and-braces check at the end
// guards the invariant, not a reachable state. reserve_for/reserve make
// the rebuild at most one allocation each the first time a context
// promotes at a given size, and none once warm.
void SoftHtm::ThreadContext::promote_reads(bool saturated) {
  const auto logged = static_cast<std::size_t>(t0_next_ - t0_buf_.get());
  read_words_.reserve_for(logged + 1);
  if (reads_.capacity() < logged) reads_.reserve(logged);
  for (const TmWord* const* p = t0_buf_.get(); p != t0_next_; ++p) {
    const TmWord* a = *p;
    const std::uint64_t h = mix_addr(a);
    const auto si = static_cast<std::uint32_t>(h & stripe_mask_);
    if (read_words_.find_or_insert(a, si, h) == AddrIndex::kNpos) {
      reads_.push_back(si);
    }
  }
  t0_next_ = t0_buf_.get();
  read_tier_exact_ = true;
  if (saturated) {
    ++promote_saturation_;
  } else {
    ++promote_capacity_;
  }
  if (metrics_.registry != nullptr) {
    metrics_.registry->add(
        saturated ? metrics_.promote_saturation : metrics_.promote_capacity,
        metrics_.lane);
  }
  if (enforce_capacity_ && reads_.size() > tm_.cfg_.max_read_set) {
    abort_capacity();
  }
}

// Capacity aborts funnel through here so abort attribution can split them
// by read tier: "capacity while signature-only" means the write set (or a
// promotion replay) overflowed while reads were still approximate;
// "capacity after exact accounting" means the exact distinct-word count
// did. Read-capacity aborts always land in the exact bucket by
// construction — Tier 0 promotes at the budget instead of aborting.
void SoftHtm::ThreadContext::abort_capacity() {
  if (metrics_.registry != nullptr) {
    metrics_.registry->add(read_tier_exact_ ? metrics_.capacity_abort_exact
                                            : metrics_.capacity_abort_sig,
                           metrics_.lane);
  }
  abort_with(AbortStatus::capacity());
}

// Tier-0 slow path: the log cursor reached t0_check_. Either this is just
// a saturation checkpoint — scan the filter population (16 popcounts, paid
// once per kT0SatCheckStride logged reads), push the checkpoint forward and
// keep logging — or the log hit the capacity budget / the filter saturated,
// in which case the attempt promotes to exact accounting and the current
// read is the first one tracked exactly.
void SoftHtm::ThreadContext::t0_checkpoint(const TmWord* w, std::uint64_t h) {
  if (t0_next_ != t0_end_ && !read_sig_.saturated()) {
    t0_check_ = std::min(t0_end_, t0_next_ + kT0SatCheckStride);
    read_sig_.add(h);
    *t0_next_++ = w;
    return;
  }
  promote_reads(/*saturated=*/t0_next_ != t0_end_);
  track_read_exact(w, static_cast<std::uint32_t>(h & stripe_mask_), h);
}

void SoftHtm::ThreadContext::do_subscribe(const std::atomic<std::uint64_t>& word,
                                          std::uint64_t expected) {
  assert(active_);
  maybe_fault(TxOp::kSubscribe);
  if (word.load(std::memory_order_acquire) != expected) {
    abort_with(AbortStatus::conflict());
  }
  if (subs_.empty()) {
    sub0_word_ = &word;
    sub0_expected_ = expected;
  }
  subs_.push_back(Subscription{&word, expected});
}

AbortStatus SoftHtm::ThreadContext::commit() {
  assert(active_);
  maybe_fault(TxOp::kCommit);
  if (writes_.empty()) {
    // Read-only transactions were validated on every read; nothing to publish.
    check_subscriptions();
    if (log_ != nullptr) {
      // A read-only commit serializes at its snapshot: it saw every write
      // with version <= read_version_ and none after.
      log_->push_back(TxRecord{.begin_version = read_version_,
                               .commit_version = read_version_,
                               .writer = false,
                               .reads = read_log_,
                               .writes = {}});
    }
    if (obs_ != nullptr) {
      obs_->emit(obs_lane_, obs::TraceKind::kTxCommit, obs::now_ticks(), 0);
    }
    rollback();
    return AbortStatus(kXBeginStarted);
  }

  // The stripes to lock, deduplicated through the stamp table while the
  // owned mark is planted — commit read-set validation below recognizes
  // own-locked stripes with one stamp lookup instead of scanning the write
  // set. lock_stripes_ is a reusable member: the commit path performs no
  // heap allocation once warm.
  lock_stripes_.clear();
  for (const WriteEntry& e : writes_) {
    if (!stamp_has(e.stripe, kStampOwned)) {
      stamp_set(e.stripe, kStampOwned);
      lock_stripes_.push_back(e.stripe);
    }
  }
  // Canonical (stripe-index) order, deadlock-free across committers. Small
  // write sets touch stripes in hash order, which is rarely sorted, but
  // the is_sorted probe is cheap and spares the common already-sorted
  // single-stripe and sequential-buffer cases the full sort.
  if (!std::is_sorted(lock_stripes_.begin(), lock_stripes_.end())) {
    std::sort(lock_stripes_.begin(), lock_stripes_.end());
  }

  // NOTE: every abort below this point must release the stripes acquired so
  // far — a leaked stripe lock poisons that stripe forever (all later
  // transactions touching it abort with CONFLICT unconditionally).
  std::size_t locked = 0;
  auto release_locked = [&]() noexcept {
    for (std::size_t i = 0; i < locked; ++i) {
      tm_.stripe_at(lock_stripes_[i]).fetch_and(~kLockedBit, std::memory_order_release);
    }
  };

  try {
    // Acquire in canonical order; never block — a busy stripe means a
    // concurrent committer, which an HTM would report as a conflict abort.
    for (const std::uint32_t si : lock_stripes_) {
      std::atomic<std::uint64_t>& s = tm_.stripe_at(si);
      std::uint64_t cur = s.load(std::memory_order_acquire);
      if ((cur & kLockedBit) != 0 || cur > (read_version_ << 1) ||
          !s.compare_exchange_strong(cur, cur | kLockedBit,
                                     std::memory_order_acq_rel)) {
        release_locked();
        abort_with(AbortStatus::conflict());
      }
      ++locked;
    }

    // Validate the read set against the read version. A locked stripe is
    // fine iff the lock is ours, which the owned stamp answers in O(1)
    // (stripes we own passed the version check just before locking).
    if (tm_.cfg_.defect != Defect::kSkipCommitValidation) {
      auto validate_stripe = [&](std::uint32_t si) {
        const std::uint64_t v = tm_.stripe_at(si).load(std::memory_order_acquire);
        if ((v & kLockedBit) != 0) {
          if (!stamp_has(si, kStampOwned)) {
            release_locked();
            abort_with(AbortStatus::conflict());
          }
        } else if (v > (read_version_ << 1)) {
          release_locked();
          abort_with(AbortStatus::conflict());
        }
      };
      // Tier-0 reads never built reads_: walk the replay log instead,
      // recomputing each entry's stripe. Undeduplicated, so a re-read
      // stripe validates more than once — the price a writer pays for
      // having skipped per-read exact accounting, and exactly why a
      // read-only commit (the Tier-0 sweet spot) skips this entirely.
      for (const TmWord* const* p = t0_buf_.get(); p != t0_next_; ++p) {
        validate_stripe(static_cast<std::uint32_t>(mix_addr(*p) & stripe_mask_));
      }
      // Tier-1 reads: each distinct stripe entry once. Empty in Tier 0.
      for (const std::uint32_t si : reads_) validate_stripe(si);
    }
    for (const Subscription& sub : subs_) {
      if (sub.word->load(std::memory_order_acquire) != sub.expected) {
        release_locked();
        abort_with(AbortStatus::conflict());
      }
    }
  } catch (const TxAbortException&) {
    rollback();
    throw;
  }

  // Publish: bump the clock, write back, release stripes at the new version.
  const std::uint64_t wv = tm_.clock_.fetch_add(1, std::memory_order_acq_rel) + 1;
  for (const WriteEntry& e : writes_) {
    e.addr->store(e.value, std::memory_order_release);
  }
  for (const std::uint32_t si : lock_stripes_) {
    tm_.stripe_at(si).store(wv << 1, std::memory_order_release);
  }
  if (log_ != nullptr) {
    TxRecord rec{.begin_version = read_version_,
                 .commit_version = wv,
                 .writer = true,
                 .reads = read_log_,
                 .writes = {}};
    rec.writes.reserve(writes_.size());
    for (const WriteEntry& e : writes_) rec.writes.push_back(TxWrite{e.addr, e.value});
    log_->push_back(std::move(rec));
  }
  if (obs_ != nullptr) {
    obs_->emit(obs_lane_, obs::TraceKind::kTxCommit, obs::now_ticks(), writes_.size());
  }
  rollback();
  return AbortStatus(kXBeginStarted);
}

}  // namespace seer::htm
