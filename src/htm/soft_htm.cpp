#include "htm/soft_htm.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace seer::htm {

SoftHtm::SoftHtm(Config cfg) : cfg_(cfg) {
  assert(std::has_single_bit(cfg_.stripes) && "stripe count must be a power of two");
  assert(cfg_.stripes <= (1ULL << 31) && "stripe indices must fit in 32 bits");
  stripe_mask_ = cfg_.stripes - 1;
  stripes_ = std::make_unique<util::Padded<std::atomic<std::uint64_t>>[]>(cfg_.stripes);
  for (std::size_t i = 0; i < cfg_.stripes; ++i) {
    stripes_[i].value.store(0, std::memory_order_relaxed);
  }
}

std::uint64_t SoftHtm::Tx::read(const TmWord& w) { return ctx_.do_read(w); }
void SoftHtm::Tx::write(TmWord& w, std::uint64_t value) { ctx_.do_write(w, value); }
void SoftHtm::Tx::abort(std::uint8_t code) {
  ctx_.abort_with(AbortStatus::explicit_abort(code));
}
void SoftHtm::Tx::subscribe(const std::atomic<std::uint64_t>& word,
                            std::uint64_t expected) {
  ctx_.do_subscribe(word, expected);
}

void SoftHtm::ThreadContext::begin() {
  assert(!active_ && "SoftHtm transactions do not nest");
  active_ = true;
  reads_.clear();
  writes_.clear();
  subs_.clear();
  read_log_.clear();
  write_sig_.clear();
  // One integer bump retires every stamp and index slot of the previous
  // attempt. On the (once per 2^32 attempts) wraparound the tagged
  // structures must forget their stale epochs, or a recycled epoch value
  // would resurrect entries from 4 billion attempts ago.
  if (++epoch_ == 0) {
    std::fill_n(stamps_.get(), tm_.cfg_.stripes, 0);
    write_index_.hard_reset();
    read_words_.hard_reset();
    epoch_ = 1;
  }
  write_index_.begin_epoch(epoch_);
  read_words_.begin_epoch(epoch_);
  ++attempt_count_;
  op_index_ = 0;
  read_version_ = tm_.clock_.load(std::memory_order_acquire);
  if (obs_ != nullptr) {
    obs_->emit(obs_lane_, obs::TraceKind::kTxBegin, obs::now_ticks(),
               attempt_count_ - 1);
  }
  maybe_fault(TxOp::kBegin);
}

void SoftHtm::ThreadContext::rollback() noexcept {
  active_ = false;
  reads_.clear();
  writes_.clear();
  subs_.clear();
}

void SoftHtm::ThreadContext::abort_with(AbortStatus status) {
  if (obs_ != nullptr) {
    obs_->emit(obs_lane_, obs::TraceKind::kTxAbort, obs::now_ticks(),
               static_cast<std::uint64_t>(status.cause()));
  }
  throw TxAbortException{status};
}

void SoftHtm::ThreadContext::maybe_fault(TxOp op) {
  // Injection models *hardware* abort noise, so the capacity-exempt path
  // (the pessimistic SGL fallback, which is not speculative) is exempt too —
  // otherwise a high-rate plan could starve the fallback's retry loop.
  if (fault_ == nullptr || !enforce_capacity_) return;
  const std::uint64_t i = op_index_++;
  if (const auto forced = fault_->before_op(op, attempt_count_ - 1, i)) {
    abort_with(*forced);
  }
}

void SoftHtm::ThreadContext::check_subscriptions() {
  const std::size_t n = subs_.size();
  if (n == 0) return;
  // Single-subscription fast path: the executor subscribes to exactly one
  // word (the SGL fallback lock), so the per-access revalidation is one
  // load/compare against inline members instead of a vector walk.
  if (sub0_word_->load(std::memory_order_acquire) != sub0_expected_) {
    abort_with(AbortStatus::conflict());
  }
  for (std::size_t i = 1; i < n; ++i) {
    const Subscription& s = subs_[i];
    if (s.word->load(std::memory_order_acquire) != s.expected) {
      abort_with(AbortStatus::conflict());
    }
  }
}

std::uint64_t SoftHtm::ThreadContext::do_read(const TmWord& w) {
  assert(active_);
  maybe_fault(TxOp::kRead);
  // One address mix feeds everything below: the signature filter (top
  // bits), the stripe map (low bits) and both index probes.
  const std::uint64_t h = mix_addr(&w);
  // Read-own-writes: the write buffer wins over memory. One AND/compare
  // rules out the overwhelmingly common "not in my write set" case; a
  // filter hit falls through to the exact O(1) index probe.
  if (write_sig_.may_contain(h)) {
    const std::uint32_t idx = write_index_.find(&w, h);
    if (idx != AddrIndex::kNpos) return writes_[idx].value;
  }
  const auto si = static_cast<std::uint32_t>(h & tm_.stripe_mask_);
  std::atomic<std::uint64_t>& stripe = tm_.stripe_at(si);
  const bool validate = tm_.cfg_.defect != Defect::kSkipReadValidation;
  // TL2 post-validated read: sample the stripe version, read the word,
  // re-check the stripe. Any concurrent commit to this stripe is caught.
  const std::uint64_t v_before = stripe.load(std::memory_order_acquire);
  if (validate &&
      ((v_before & kLockedBit) != 0 || v_before > (read_version_ << 1))) {
    abort_with(AbortStatus::conflict());
  }
  const std::uint64_t value = w.load(std::memory_order_acquire);
  const std::uint64_t v_after = stripe.load(std::memory_order_acquire);
  if (validate && v_after != v_before) {
    abort_with(AbortStatus::conflict());
  }
  check_subscriptions();
  if (log_ != nullptr) read_log_.push_back(TxRead{&w, value});
  // One L1-resident probe both dedups the read set and accounts capacity:
  // a word seen before adds nothing (its stripe is already in reads_ and,
  // per the L1d model, a resident line consumes no new capacity). A new
  // word appends its stripe — two distinct words can share a stripe, which
  // merely validates that stripe twice at commit. Keeping the big
  // per-stripe stamp table off the read path matters: it is the one
  // structure too large to stay cache-resident.
  if (read_words_.find_or_insert(&w, si, h) == AddrIndex::kNpos) {
    reads_.push_back(si);
    if (enforce_capacity_ && reads_.size() > tm_.cfg_.max_read_set) {
      abort_with(AbortStatus::capacity());
    }
  }
  return value;
}

void SoftHtm::ThreadContext::do_write(TmWord& w, std::uint64_t value) {
  assert(active_);
  maybe_fault(TxOp::kWrite);
  // One probe both dedups and claims the slot: an existing entry is
  // overwritten in place, a new word appends to the buffer.
  const std::uint64_t h = mix_addr(&w);
  const std::uint32_t existing =
      write_index_.find_or_insert(&w, static_cast<std::uint32_t>(writes_.size()), h);
  if (existing != AddrIndex::kNpos) {
    writes_[existing].value = value;
    return;
  }
  write_sig_.add(h);
  writes_.push_back(
      WriteEntry{&w, value, static_cast<std::uint32_t>(h & tm_.stripe_mask_)});
  if (enforce_capacity_ && writes_.size() > tm_.cfg_.max_write_set) {
    abort_with(AbortStatus::capacity());
  }
}

void SoftHtm::ThreadContext::do_subscribe(const std::atomic<std::uint64_t>& word,
                                          std::uint64_t expected) {
  assert(active_);
  maybe_fault(TxOp::kSubscribe);
  if (word.load(std::memory_order_acquire) != expected) {
    abort_with(AbortStatus::conflict());
  }
  if (subs_.empty()) {
    sub0_word_ = &word;
    sub0_expected_ = expected;
  }
  subs_.push_back(Subscription{&word, expected});
}

AbortStatus SoftHtm::ThreadContext::commit() {
  assert(active_);
  maybe_fault(TxOp::kCommit);
  if (writes_.empty()) {
    // Read-only transactions were validated on every read; nothing to publish.
    check_subscriptions();
    if (log_ != nullptr) {
      // A read-only commit serializes at its snapshot: it saw every write
      // with version <= read_version_ and none after.
      log_->push_back(TxRecord{.begin_version = read_version_,
                               .commit_version = read_version_,
                               .writer = false,
                               .reads = read_log_,
                               .writes = {}});
    }
    if (obs_ != nullptr) {
      obs_->emit(obs_lane_, obs::TraceKind::kTxCommit, obs::now_ticks(), 0);
    }
    rollback();
    return AbortStatus(kXBeginStarted);
  }

  // The stripes to lock, deduplicated through the stamp table while the
  // owned mark is planted — commit read-set validation below recognizes
  // own-locked stripes with one stamp lookup instead of scanning the write
  // set. lock_stripes_ is a reusable member: the commit path performs no
  // heap allocation once warm.
  lock_stripes_.clear();
  for (const WriteEntry& e : writes_) {
    if (!stamp_has(e.stripe, kStampOwned)) {
      stamp_set(e.stripe, kStampOwned);
      lock_stripes_.push_back(e.stripe);
    }
  }
  // Canonical (stripe-index) order, deadlock-free across committers. Small
  // write sets touch stripes in hash order, which is rarely sorted, but
  // the is_sorted probe is cheap and spares the common already-sorted
  // single-stripe and sequential-buffer cases the full sort.
  if (!std::is_sorted(lock_stripes_.begin(), lock_stripes_.end())) {
    std::sort(lock_stripes_.begin(), lock_stripes_.end());
  }

  // NOTE: every abort below this point must release the stripes acquired so
  // far — a leaked stripe lock poisons that stripe forever (all later
  // transactions touching it abort with CONFLICT unconditionally).
  std::size_t locked = 0;
  auto release_locked = [&]() noexcept {
    for (std::size_t i = 0; i < locked; ++i) {
      tm_.stripe_at(lock_stripes_[i]).fetch_and(~kLockedBit, std::memory_order_release);
    }
  };

  try {
    // Acquire in canonical order; never block — a busy stripe means a
    // concurrent committer, which an HTM would report as a conflict abort.
    for (const std::uint32_t si : lock_stripes_) {
      std::atomic<std::uint64_t>& s = tm_.stripe_at(si);
      std::uint64_t cur = s.load(std::memory_order_acquire);
      if ((cur & kLockedBit) != 0 || cur > (read_version_ << 1) ||
          !s.compare_exchange_strong(cur, cur | kLockedBit,
                                     std::memory_order_acq_rel)) {
        release_locked();
        abort_with(AbortStatus::conflict());
      }
      ++locked;
    }

    // Validate the read set against the read version. reads_ holds each
    // stripe once; a locked stripe is fine iff the lock is ours, which the
    // owned stamp answers in O(1) (stripes we own passed the version check
    // just before locking).
    if (tm_.cfg_.defect != Defect::kSkipCommitValidation) {
      for (const std::uint32_t si : reads_) {
        const std::uint64_t v = tm_.stripe_at(si).load(std::memory_order_acquire);
        if ((v & kLockedBit) != 0) {
          if (!stamp_has(si, kStampOwned)) {
            release_locked();
            abort_with(AbortStatus::conflict());
          }
        } else if (v > (read_version_ << 1)) {
          release_locked();
          abort_with(AbortStatus::conflict());
        }
      }
    }
    for (const Subscription& sub : subs_) {
      if (sub.word->load(std::memory_order_acquire) != sub.expected) {
        release_locked();
        abort_with(AbortStatus::conflict());
      }
    }
  } catch (const TxAbortException&) {
    rollback();
    throw;
  }

  // Publish: bump the clock, write back, release stripes at the new version.
  const std::uint64_t wv = tm_.clock_.fetch_add(1, std::memory_order_acq_rel) + 1;
  for (const WriteEntry& e : writes_) {
    e.addr->store(e.value, std::memory_order_release);
  }
  for (const std::uint32_t si : lock_stripes_) {
    tm_.stripe_at(si).store(wv << 1, std::memory_order_release);
  }
  if (log_ != nullptr) {
    TxRecord rec{.begin_version = read_version_,
                 .commit_version = wv,
                 .writer = true,
                 .reads = read_log_,
                 .writes = {}};
    rec.writes.reserve(writes_.size());
    for (const WriteEntry& e : writes_) rec.writes.push_back(TxWrite{e.addr, e.value});
    log_->push_back(std::move(rec));
  }
  if (obs_ != nullptr) {
    obs_->emit(obs_lane_, obs::TraceKind::kTxCommit, obs::now_ticks(), writes_.size());
  }
  rollback();
  return AbortStatus(kXBeginStarted);
}

}  // namespace seer::htm
