// Real Intel TSX (RTM) backend.
//
// This is the backend the paper actually evaluates on. It is a thin wrapper
// over the RTM intrinsics producing the same AbortStatus model as SoftHtm,
// so the scheduler stack runs unchanged on TSX silicon. It is compiled only
// when the build enables SEER_ENABLE_TSX (requires -mrtm); TSX has been
// deprecated/fused off on most shipping parts, so the default build uses
// SoftHtm and the machine simulator instead (see DESIGN.md §1).
#pragma once

#if defined(SEER_ENABLE_TSX)

#include <immintrin.h>

#include "htm/abort_code.hpp"

namespace seer::htm {

class TsxBackend {
 public:
  // Runs `body()` once speculatively. Inside the body, memory accesses are
  // plain loads/stores — the hardware tracks them. Returns started-status on
  // commit, or the hardware abort status.
  template <typename Body>
  static AbortStatus attempt(Body&& body) {
    const unsigned status = _xbegin();
    if (status == _XBEGIN_STARTED) {
      body();
      _xend();
      return AbortStatus(kXBeginStarted);
    }
    return AbortStatus(status);
  }

  [[nodiscard]] static bool in_tx() noexcept { return _xtest() != 0; }

  template <std::uint8_t Code>
  [[noreturn]] static void abort() {
    _xabort(Code);
    __builtin_unreachable();
  }
};

}  // namespace seer::htm

#endif  // SEER_ENABLE_TSX
