// Constant-time access-set structures for the SoftHtm speculative hot path.
//
// SoftHtm's per-access costs must stay O(1) or every threaded exhibit ends
// up measuring the TM's bookkeeping instead of the scheduler above it
// (DESIGN.md §10). Two small, allocation-stingy structures provide that:
//
//   * AddrSignature — a 64-bit Bloom-style filter over word addresses. One
//     AND/compare answers the overwhelmingly common "this word is NOT in my
//     write set" question on the read path; a hit falls through to the
//     exact index below.
//   * AddrIndex — an open-addressed, power-of-two hash table mapping a word
//     address to a 32-bit payload (the write-set slot, or nothing when used
//     as a set). Slots are epoch-tagged: clearing the table between
//     transaction attempts is one integer bump, never a memset. The table
//     only allocates when it grows past its load factor, so a warmed-up
//     context runs allocation-free.
//   * ReadSignature — a 1024-bit Bloom filter over word addresses with an
//     incrementally maintained population count. Tier-0 read tracking
//     (DESIGN.md §10) records cold reads here for near-zero cost; the
//     population count drives the saturation predicate that promotes the
//     transaction to exact accounting before the filter's false-positive
//     rate becomes meaningless.
//
// All are strictly thread-local (one per ThreadContext) and need no
// synchronization.
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <memory>

namespace seer::htm {

// Address mixer shared by the stripe map, the signature filter and the
// index probes (same constants as SoftHtm::stripe_index_of: words 8 bytes
// apart spread out).
[[nodiscard]] inline std::uint64_t mix_addr(const void* addr) noexcept {
  auto h = static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(addr) >> 3);
  h ^= h >> 17;
  h *= 0x9e3779b97f4a7c15ULL;
  h ^= h >> 32;
  return h;
}

// 64-bit membership filter with no false negatives. False positives are
// resolved by the exact AddrIndex probe behind it. All operations take the
// pre-mixed hash so the hot path mixes each address exactly once and feeds
// every structure from the same 64 bits.
class AddrSignature {
 public:
  [[nodiscard]] static unsigned bit_of_hash(std::uint64_t h) noexcept {
    return static_cast<unsigned>(h >> 58);  // top 6 bits; stripes use the low bits
  }
  // Exposed so tests can manufacture deliberate bit collisions.
  [[nodiscard]] static unsigned bit_of(const void* addr) noexcept {
    return bit_of_hash(mix_addr(addr));
  }

  void add(std::uint64_t h) noexcept { bits_ |= 1ULL << bit_of_hash(h); }
  [[nodiscard]] bool may_contain(std::uint64_t h) const noexcept {
    return ((bits_ >> bit_of_hash(h)) & 1ULL) != 0;
  }
  void clear() noexcept { bits_ = 0; }
  [[nodiscard]] bool empty() const noexcept { return bits_ == 0; }

 private:
  std::uint64_t bits_ = 0;
};

// 1024-bit read-side Bloom filter (no false negatives) with an incremental
// population count. Bits 45..54 of the mixed hash index the filter —
// disjoint from both the write signature (top 6 bits) and the stripe map
// (low bits), so a transaction's three filters never alias through the one
// shared mix. One bit per add (k = 1): at the saturation threshold below
// the expected distinct-word count is m·ln2 ≈ 710, far past the point where
// exact accounting should have taken over anyway.
class ReadSignature {
 public:
  static constexpr std::size_t kBits = 1024;
  static constexpr std::size_t kWords = kBits / 64;
  // Promotion predicate: at half the bits set the false-positive rate is
  // ~50% and the filter stops carrying information — the owner must switch
  // to exact tracking no later than this.
  static constexpr std::uint32_t kSaturationPop = kBits / 2;

  [[nodiscard]] static unsigned bit_of_hash(std::uint64_t h) noexcept {
    return static_cast<unsigned>((h >> 45) & (kBits - 1));
  }
  // Exposed so tests can manufacture deliberate bit collisions.
  [[nodiscard]] static unsigned bit_of(const void* addr) noexcept {
    return bit_of_hash(mix_addr(addr));
  }

  // Deliberately does NOT maintain an incremental population count: add()
  // sits on the per-read hot path and must stay a load/or/store. Owners
  // evaluate saturation at checkpoints (every kSatCheckStride logged reads)
  // via the pop() scan — 16 popcounts, amortized to noise.
  void add(std::uint64_t h) noexcept {
    const unsigned b = bit_of_hash(h);
    words_[b >> 6] |= 1ULL << (b & 63);
  }
  [[nodiscard]] bool may_contain(std::uint64_t h) const noexcept {
    const unsigned b = bit_of_hash(h);
    return ((words_[b >> 6] >> (b & 63)) & 1ULL) != 0;
  }
  // Distinct set bits — a lower bound on the distinct words added (never an
  // upper bound: collisions hide adds, which is why the owner's capacity
  // account must come from its replay log, not from here).
  [[nodiscard]] std::uint32_t pop() const noexcept {
    std::uint32_t n = 0;
    for (const std::uint64_t w : words_) n += static_cast<std::uint32_t>(std::popcount(w));
    return n;
  }
  [[nodiscard]] bool saturated() const noexcept { return pop() >= kSaturationPop; }

  void clear() noexcept {
    for (std::uint64_t& w : words_) w = 0;
  }

 private:
  std::uint64_t words_[kWords] = {};
};

// Open-addressed (linear probing), epoch-tagged addr -> uint32 map.
class AddrIndex {
 public:
  static constexpr std::uint32_t kNpos = 0xFFFFFFFFu;

  explicit AddrIndex(std::size_t min_slots = 64) { allocate(min_slots); }

  // Starts a new logical epoch: every slot written under an earlier epoch
  // becomes invisible. O(1). `epoch` must never be 0 (the empty tag) and
  // must not repeat between hard_reset() calls — the owner guarantees both
  // by bumping a counter and hard-resetting on wraparound.
  void begin_epoch(std::uint32_t epoch) noexcept {
    assert(epoch != 0);
    epoch_ = epoch;
    live_ = 0;
  }

  // Forgets everything, including stale epoch tags. Called by the owner
  // when its epoch counter wraps, so a recycled epoch value can never
  // resurrect a years-old slot.
  void hard_reset() noexcept {
    for (std::size_t i = 0; i <= mask_; ++i) slots_[i].epoch = 0;
    live_ = 0;
  }

  // The hashed variants take the pre-mixed hash of `addr` (mix_addr): the
  // caller computes it once per access and feeds the signature filter, the
  // stripe map and the index probes from the same 64 bits.
  [[nodiscard]] std::uint32_t find(const void* addr, std::uint64_t h) const noexcept {
    std::size_t i = h & mask_;
    while (true) {
      const Slot& s = slots_[i];
      if (s.epoch != epoch_) return kNpos;
      if (s.addr == addr) return s.value;
      i = (i + 1) & mask_;
    }
  }
  [[nodiscard]] std::uint32_t find(const void* addr) const noexcept {
    return find(addr, mix_addr(addr));
  }

  // Returns the existing payload for `addr`, or inserts addr -> value and
  // returns kNpos ("it was new"). The single-probe combination keeps the
  // write-set dedup at exactly one table walk per access.
  std::uint32_t find_or_insert(const void* addr, std::uint32_t value, std::uint64_t h) {
    if (live_ >= grow_at_) grow();
    std::size_t i = h & mask_;
    while (true) {
      Slot& s = slots_[i];
      if (s.epoch != epoch_) {
        s = Slot{addr, value, epoch_};
        ++live_;
        return kNpos;
      }
      if (s.addr == addr) return s.value;
      i = (i + 1) & mask_;
    }
  }
  std::uint32_t find_or_insert(const void* addr, std::uint32_t value) {
    return find_or_insert(addr, value, mix_addr(addr));
  }

  // Grows (in one allocation) until `n` entries fit under the load factor.
  // Incremental growth would reach the same size through log2 doublings,
  // each a fresh allocation + rehash; a caller that knows its population up
  // front — the Tier-0 promotion replay — calls this once instead.
  void reserve_for(std::size_t n) {
    std::size_t want = mask_ + 1;
    while (want * 7 / 10 < n) want <<= 1;
    if (want > mask_ + 1) rehash_to(want);
  }

  [[nodiscard]] std::size_t live() const noexcept { return live_; }
  [[nodiscard]] std::size_t slot_count() const noexcept { return mask_ + 1; }

 private:
  struct Slot {
    const void* addr = nullptr;
    std::uint32_t value = 0;
    std::uint32_t epoch = 0;  // 0 = never written
  };

  void allocate(std::size_t n_slots) {
    assert(n_slots >= 2 && (n_slots & (n_slots - 1)) == 0);
    slots_ = std::make_unique<Slot[]>(n_slots);
    mask_ = n_slots - 1;
    grow_at_ = n_slots * 7 / 10;  // 70% load factor, precomputed off the hot path
  }

  void grow() { rehash_to((mask_ + 1) * 2); }

  void rehash_to(std::size_t n_slots) {
    const std::size_t old_count = mask_ + 1;
    std::unique_ptr<Slot[]> old = std::move(slots_);
    allocate(n_slots);
    for (std::size_t i = 0; i < old_count; ++i) {
      const Slot& s = old[i];
      if (s.epoch != epoch_) continue;
      std::size_t j = mix_addr(s.addr) & mask_;
      while (slots_[j].epoch == epoch_) j = (j + 1) & mask_;
      slots_[j] = s;
    }
  }

  std::unique_ptr<Slot[]> slots_;
  std::size_t mask_ = 0;
  std::size_t live_ = 0;
  std::size_t grow_at_ = 0;
  std::uint32_t epoch_ = 0;  // matches no slot until begin_epoch
};

}  // namespace seer::htm
