#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#if SEER_OBS_ENABLED

namespace seer::obs {

namespace {

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

void append_rate(std::string& out, double v) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%.6f", v);
  out += buf;
}

}  // namespace

FlightRecorder::FlightRecorder(FlightRecorderConfig cfg) : cfg_(cfg) {
  if (cfg_.capacity == 0) cfg_.capacity = 1;
  ring_.reserve(cfg_.capacity);
}

bool FlightRecorder::detect(bool* in_anomaly, AnomalyEpisode::Kind kind,
                            double rate, double enter, double exit_level,
                            const RebuildSample& s) {
  if (!*in_anomaly) {
    if (rate < enter) return false;
    *in_anomaly = true;
    AnomalyEpisode ep;
    ep.kind = kind;
    ep.start_now = s.now;
    ep.start_rebuild = s.rebuild;
    ep.end_now = s.now;
    ep.end_rebuild = s.rebuild;
    ep.peak_rate = rate;
    episodes_.push_back(ep);
    return true;
  }
  // Inside an episode: extend it and apply the exit hysteresis.
  for (auto it = episodes_.rbegin(); it != episodes_.rend(); ++it) {
    if (it->kind != kind || !it->open) continue;
    it->end_now = s.now;
    it->end_rebuild = s.rebuild;
    it->peak_rate = std::max(it->peak_rate, rate);
    if (rate <= exit_level) {
      it->open = false;
      *in_anomaly = false;
    }
    break;
  }
  return false;
}

bool FlightRecorder::on_rebuild(const RebuildSample& s) {
  const std::uint64_t sgl_now = sgl_fallbacks();
  bool anomaly_entered = false;

  if (has_window_) {
    const std::uint64_t events = s.executions - last_sample_.executions;
    if (events >= cfg_.min_window_events) {
      const std::uint64_t commits = s.commits - last_sample_.commits;
      const std::uint64_t sgl = sgl_now - sgl_at_last_sample_;
      const double ev = static_cast<double>(events);
      const double abort_rate =
          1.0 - static_cast<double>(std::min(commits, events)) / ev;
      const double sgl_rate = static_cast<double>(sgl) / ev;
      anomaly_entered |=
          detect(&in_abort_storm_, AnomalyEpisode::Kind::kAbortStorm, abort_rate,
                 cfg_.abort_rate_enter, cfg_.abort_rate_exit, s);
      anomaly_entered |=
          detect(&in_sgl_storm_, AnomalyEpisode::Kind::kSglStorm, sgl_rate,
                 cfg_.sgl_rate_enter, cfg_.sgl_rate_exit, s);
      last_sample_ = s;
      sgl_at_last_sample_ = sgl_now;
    }
    // Windows below min_window_events keep accumulating into the next one.
  } else {
    has_window_ = true;
    last_sample_ = s;
    sgl_at_last_sample_ = sgl_now;
  }

  if (anomaly_entered) {
    pending_reason_ = SnapshotReason::kAnomaly;
    last_capture_rebuild_ = s.rebuild;
    return true;
  }
  if (cfg_.period != 0 &&
      (captured_ == 0 || s.rebuild - last_capture_rebuild_ >= cfg_.period)) {
    pending_reason_ = SnapshotReason::kPeriodic;
    last_capture_rebuild_ = s.rebuild;
    return true;
  }
  return false;
}

void FlightRecorder::push(ModelSnapshot&& snap) {
  snap.seq = captured_;
  if (ring_.size() < cfg_.capacity) {
    ring_.push_back(std::move(snap));
  } else {
    ring_[static_cast<std::size_t>(captured_ % cfg_.capacity)] = std::move(snap);
  }
  ++captured_;
}

void FlightRecorder::record(ModelSnapshot&& snap) {
  snap.reason = pending_reason_;
  push(std::move(snap));
}

void FlightRecorder::record_final(ModelSnapshot&& snap) {
  snap.reason = SnapshotReason::kFinal;
  // Close still-open episodes at the final clock; `open` stays true in the
  // dump so tools can tell "subsided" from "ran hot to the end".
  for (AnomalyEpisode& ep : episodes_) {
    if (ep.open) {
      ep.end_now = snap.now;
      ep.end_rebuild = snap.rebuild;
    }
  }
  push(std::move(snap));
}

std::vector<const ModelSnapshot*> FlightRecorder::snapshots() const {
  std::vector<const ModelSnapshot*> out;
  out.reserve(ring_.size());
  for (const ModelSnapshot& s : ring_) out.push_back(&s);
  std::sort(out.begin(), out.end(),
            [](const ModelSnapshot* a, const ModelSnapshot* b) {
              return a->seq < b->seq;
            });
  return out;
}

std::string FlightRecorder::to_json() const {
  std::string out = "{\"version\": ";
  append_u64(out, kModelSnapshotVersion);
  out += ", \"captured\": ";
  append_u64(out, captured_);
  out += ", \"dropped\": ";
  append_u64(out, dropped());
  out += ", \"snapshots\": [";
  bool first = true;
  for (const ModelSnapshot* s : snapshots()) {
    if (!first) out += ", ";
    first = false;
    s->append_json(out);
  }
  out += "], \"anomalies\": [";
  first = true;
  for (const AnomalyEpisode& ep : episodes_) {
    if (!first) out += ", ";
    first = false;
    out += "{\"kind\": \"";
    out += to_string(ep.kind);
    out += "\", \"start_now\": ";
    append_u64(out, ep.start_now);
    out += ", \"start_rebuild\": ";
    append_u64(out, ep.start_rebuild);
    out += ", \"end_now\": ";
    append_u64(out, ep.end_now);
    out += ", \"end_rebuild\": ";
    append_u64(out, ep.end_rebuild);
    out += ", \"peak_rate\": ";
    append_rate(out, ep.peak_rate);
    out += ", \"open\": ";
    out += ep.open ? "true" : "false";
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace seer::obs

#endif  // SEER_OBS_ENABLED
