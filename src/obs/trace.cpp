#include "obs/trace.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <chrono>
#include <cinttypes>
#include <cstdio>

namespace seer::obs {

std::uint64_t now_ticks() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_ia32_rdtsc();
#else
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

#if SEER_OBS_ENABLED

TraceSink::TraceSink(std::size_t n_threads, std::size_t capacity) {
  const std::size_t cap = std::bit_ceil(std::max<std::size_t>(capacity, 2));
  mask_ = cap - 1;
  lanes_.reserve(n_threads);
  for (std::size_t t = 0; t < n_threads; ++t) {
    auto lane = std::make_unique<Lane>();
    lane->slots.resize(cap);
    lanes_.push_back(std::move(lane));
  }
}

std::uint64_t TraceSink::emitted() const noexcept {
  std::uint64_t n = 0;
  for (const auto& l : lanes_) n += l->head.load(std::memory_order_acquire);
  return n;
}

std::uint64_t TraceSink::dropped() const noexcept {
  const std::uint64_t cap = mask_ + 1;
  std::uint64_t n = 0;
  for (const auto& l : lanes_) {
    const std::uint64_t h = l->head.load(std::memory_order_acquire);
    if (h > cap) n += h - cap;
  }
  return n;
}

std::vector<std::uint64_t> TraceSink::dropped_per_lane() const {
  const std::uint64_t cap = mask_ + 1;
  std::vector<std::uint64_t> out(lanes_.size(), 0);
  for (std::size_t t = 0; t < lanes_.size(); ++t) {
    const std::uint64_t h = lanes_[t]->head.load(std::memory_order_acquire);
    if (h > cap) out[t] = h - cap;
  }
  return out;
}

std::vector<TraceEvent> TraceSink::drain_sorted() const {
  std::vector<TraceEvent> out;
  const std::uint64_t cap = mask_ + 1;
  for (const auto& l : lanes_) {
    const std::uint64_t head = l->head.load(std::memory_order_acquire);
    const std::uint64_t n = std::min(head, cap);
    for (std::uint64_t i = head - n; i < head; ++i) {
      out.push_back(l->slots[i & mask_]);
    }
  }
  // Lane-internal order is emission order (ascending i above); the merge is
  // stabilized by (ts, thread) so equal-timestamp events across lanes land
  // deterministically.
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.ts != b.ts) return a.ts < b.ts;
                     return a.thread < b.thread;
                   });
  return out;
}

bool TraceSink::write_chrome_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::vector<TraceEvent> events = drain_sorted();

  // Depth of open "B" spans per lane, so the emitted B/E stream is always
  // balanced: an abort/commit with no open begin (its begin was overwritten
  // by wraparound) demotes to an instant, and begins still open at the end
  // are closed at the final timestamp.
  std::vector<int> depth(lanes_.size(), 0);
  std::uint64_t last_ts = 0;

  // seerMeta carries the sink's bookkeeping (ignored by Chrome/Perfetto,
  // read by tools/seer_inspect): droppedPerThread nonzero means that lane's
  // oldest events were overwritten and the trace is a suffix of reality.
  const std::vector<std::uint64_t> lane_drops = dropped_per_lane();
  std::fprintf(f,
               "{\"displayTimeUnit\": \"ns\", \"seerMeta\": {\"emitted\": %" PRIu64
               ", \"dropped\": %" PRIu64 ", \"droppedPerThread\": [",
               emitted(), dropped());
  for (std::size_t t = 0; t < lane_drops.size(); ++t) {
    std::fprintf(f, "%s%" PRIu64, t > 0 ? ", " : "", lane_drops[t]);
  }
  std::fprintf(f, "]}, \"traceEvents\": [\n");
  bool first = true;
  auto emit_record = [&](const char* name, const char* ph, std::uint64_t ts,
                         core::ThreadId tid, std::uint64_t arg, bool instant) {
    std::fprintf(f,
                 "%s  {\"name\": \"%s\", \"ph\": \"%s\", \"ts\": %" PRIu64
                 ", \"pid\": 0, \"tid\": %u%s, \"args\": {\"arg\": %" PRIu64 "}}",
                 first ? "" : ",\n", name, ph, ts, tid,
                 instant ? ", \"s\": \"t\"" : "", arg);
    first = false;
  };

  for (const TraceEvent& e : events) {
    last_ts = e.ts;
    switch (e.kind) {
      case TraceKind::kTxBegin:
        emit_record("tx", "B", e.ts, e.thread, e.arg, false);
        ++depth[e.thread];
        break;
      case TraceKind::kTxCommit:
      case TraceKind::kTxAbort:
        if (depth[e.thread] > 0) {
          emit_record(to_string(e.kind), "E", e.ts, e.thread, e.arg, false);
          --depth[e.thread];
        } else {
          emit_record(to_string(e.kind), "i", e.ts, e.thread, e.arg, true);
        }
        break;
      default:
        emit_record(to_string(e.kind), "i", e.ts, e.thread, e.arg, true);
        break;
    }
  }
  for (std::size_t t = 0; t < depth.size(); ++t) {
    while (depth[t] > 0) {
      emit_record("tx", "E", last_ts, static_cast<core::ThreadId>(t), 0, false);
      --depth[t];
    }
  }
  std::fprintf(f, "\n]}\n");
  std::fclose(f);
  return true;
}

std::string TraceSink::summary() const {
  constexpr std::size_t kKinds = static_cast<std::size_t>(TraceKind::kKindCount);
  std::vector<std::array<std::uint64_t, kKinds>> per_lane(lanes_.size());
  for (auto& row : per_lane) row.fill(0);
  for (const TraceEvent& e : drain_sorted()) {
    per_lane[e.thread][static_cast<std::size_t>(e.kind)]++;
  }

  const std::vector<std::uint64_t> lane_drops = dropped_per_lane();
  std::string out = "thread";
  for (std::size_t k = 0; k < kKinds; ++k) {
    out += "  ";
    out += to_string(static_cast<TraceKind>(k));
  }
  out += "  lost\n";
  char buf[96];
  for (std::size_t t = 0; t < per_lane.size(); ++t) {
    std::snprintf(buf, sizeof buf, "%6zu", t);
    out += buf;
    for (std::size_t k = 0; k < kKinds; ++k) {
      const char* kind = to_string(static_cast<TraceKind>(k));
      std::snprintf(buf, sizeof buf, "  %*" PRIu64,
                    static_cast<int>(std::char_traits<char>::length(kind)),
                    per_lane[t][k]);
      out += buf;
    }
    std::snprintf(buf, sizeof buf, "  %4" PRIu64 "\n", lane_drops[t]);
    out += buf;
  }
  const std::uint64_t total_dropped = dropped();
  std::snprintf(buf, sizeof buf,
                "emitted %" PRIu64 "  retained %zu  dropped %" PRIu64 "\n",
                emitted(), drain_sorted().size(), total_dropped);
  out += buf;
  if (total_dropped > 0) {
    std::snprintf(buf, sizeof buf, "WARNING: %" PRIu64 " events lost",
                  total_dropped);
    out += buf;
    out += " to ring wraparound; per-thread history is truncated "
           "(raise trace capacity)\n";
  }
  return out;
}

#endif  // SEER_OBS_ENABLED

}  // namespace seer::obs
