// Compile-time gate for the observability layer.
//
// The build defines SEER_OBS_ENABLED=1/0 from the SEER_OBS CMake option
// (default ON). When OFF, obs/metrics.hpp and obs/trace.hpp expose empty
// inline stubs with the identical surface, so every instrumentation point in
// the components compiles away to nothing — no pointer checks survive
// optimization because the called bodies have no side effects.
#pragma once

#ifndef SEER_OBS_ENABLED
#define SEER_OBS_ENABLED 1
#endif
