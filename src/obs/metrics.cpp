#include "obs/metrics.hpp"

#include <cinttypes>
#include <cstdio>

namespace seer::obs {

namespace {

void append_u64(std::string& out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

}  // namespace

std::string MetricsSnapshot::to_json() const {
  if (counters.empty() && histograms.empty()) return "{}";
  std::string out = "{\"counters\": {";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    if (i > 0) out += ", ";
    out += "\"" + counters[i].name + "\": ";
    append_u64(out, counters[i].value);
  }
  out += "}, \"histograms\": {";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const HistogramSnapshot& h = histograms[i];
    if (i > 0) out += ", ";
    out += "\"" + h.name + "\": {\"count\": ";
    append_u64(out, h.count);
    out += ", \"sum\": ";
    append_u64(out, h.sum);
    out += ", \"buckets\": [";
    bool first = true;
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (h.buckets[b] == 0) continue;
      if (!first) out += ", ";
      first = false;
      out += "[";
      append_u64(out, b);
      out += ", ";
      append_u64(out, h.buckets[b]);
      out += "]";
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

#if SEER_OBS_ENABLED

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  snap.counters.reserve(counter_names_.size());
  for (std::size_t c = 0; c < counter_names_.size(); ++c) {
    CounterSnapshot cs;
    cs.name = counter_names_[c];
    if (frozen_) {
      for (std::size_t t = 0; t < n_threads_; ++t) {
        cs.value += lanes_[t][c].load(std::memory_order_relaxed);
      }
    }
    snap.counters.push_back(std::move(cs));
  }
  snap.histograms.reserve(histogram_names_.size());
  for (std::size_t h = 0; h < histogram_names_.size(); ++h) {
    HistogramSnapshot hs;
    hs.name = histogram_names_[h];
    if (frozen_) {
      const std::size_t base = counter_names_.size() + h * kHistogramSlots;
      for (std::size_t t = 0; t < n_threads_; ++t) {
        const Cell* block = &lanes_[t][base];
        for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
          hs.buckets[b] += block[b].load(std::memory_order_relaxed);
        }
        hs.count += block[kHistogramBuckets].load(std::memory_order_relaxed);
        hs.sum += block[kHistogramBuckets + 1].load(std::memory_order_relaxed);
      }
    }
    snap.histograms.push_back(std::move(hs));
  }
  return snap;
}

#endif  // SEER_OBS_ENABLED

}  // namespace seer::obs
