#include "obs/periodic.hpp"

#include <cinttypes>
#include <cstdio>

namespace seer::obs {

std::string PeriodicMetricsDelta::delta_fields(
    std::initializer_list<std::string_view> prefixes) {
  std::string out;
  if (registry_ == nullptr) return out;
  const MetricsSnapshot snap = registry_->snapshot();
  if (prev_.size() < snap.counters.size()) prev_.resize(snap.counters.size(), 0);
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    const CounterSnapshot& c = snap.counters[i];
    const std::uint64_t delta =
        c.value >= prev_[i] ? c.value - prev_[i] : 0;  // counters never shrink
    prev_[i] = c.value;
    bool wanted = false;
    for (const std::string_view p : prefixes) {
      if (c.name.size() >= p.size() &&
          std::string_view(c.name).substr(0, p.size()) == p) {
        wanted = true;
        break;
      }
    }
    if (!wanted) continue;
    char buf[32];
    std::snprintf(buf, sizeof buf, "%" PRIu64, delta);
    out += ", \"";
    out += c.name;  // registered names are plain identifiers, no escaping
    out += "\": ";
    out += buf;
  }
  return out;
}

}  // namespace seer::obs
