// ModelSnapshot — a point-in-time capture of the Seer scheduler's full
// probabilistic state: the merged Alg. 3 abort/commit matrices, the derived
// pairwise conflict probabilities, the active fine-grained lock scheme, and
// the hill climber's position in (Th1, Th2) space.
//
// The struct is plain data and always compiles (it carries no hot-path
// machinery); the FlightRecorder that retains and serializes snapshots is
// what the SEER_OBS gate stubs out. Snapshots are built on the maintenance
// path only (scheme rebuilds, end of run) — never on the per-transaction
// record_commit/record_abort path — so the allocations here cost the same
// class of work as the rebuild that triggers them.
//
// Serialization is a versioned JSON object (kModelSnapshotVersion). The
// format is append-only by contract: consumers (tools/seer_inspect) must
// tolerate unknown keys, and any key removal or meaning change bumps the
// version. All numeric formatting is locale-independent printf, so dumps
// are byte-identical across runs of the same deterministic embedding — the
// property the bench harness's --jobs invariance tests pin down.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace seer::obs {

inline constexpr int kModelSnapshotVersion = 1;

enum class SnapshotReason : std::uint8_t {
  kPeriodic,  // every k-th scheme rebuild (FlightRecorderConfig::period)
  kAnomaly,   // abort-storm / SGL-storm detector fired
  kFinal,     // end-of-run capture
};

[[nodiscard]] constexpr const char* to_string(SnapshotReason r) noexcept {
  switch (r) {
    case SnapshotReason::kPeriodic: return "periodic";
    case SnapshotReason::kAnomaly: return "anomaly";
    case SnapshotReason::kFinal: return "final";
  }
  return "?";
}

struct ModelSnapshot {
  // Capture identity (seq is assigned by the FlightRecorder on record()).
  std::uint64_t seq = 0;
  SnapshotReason reason = SnapshotReason::kPeriodic;
  std::uint64_t now = 0;      // logical clock of the embedding (cycles/ticks)
  std::uint64_t rebuild = 0;  // scheduler rebuild count at capture

  // Exact (unsampled) lifetime tallies at capture.
  std::uint64_t executions = 0;
  std::uint64_t commits = 0;
  std::uint64_t sgl_fallbacks = 0;

  // Inference thresholds live at capture (Th1, Th2).
  double th1 = 0.0;
  double th2 = 0.0;

  // Hill-climber search state.
  double climber_cur_x = 0.0;
  double climber_cur_y = 0.0;
  double climber_best_x = 0.0;
  double climber_best_y = 0.0;
  double climber_best_score = 0.0;
  std::uint64_t climber_epochs = 0;

  // Merged Alg. 3 statistics (row-major n_types x n_types; sampled counters
  // already scaled back to event units by the merge).
  std::size_t n_types = 0;
  std::vector<std::uint64_t> aborts;
  std::vector<std::uint64_t> commit_pairs;
  std::vector<std::uint64_t> execs;  // n_types

  // Active locksToAcquire rows: scheme[x] lists the lock owners x acquires.
  std::vector<std::vector<core::TxTypeId>> scheme;

  [[nodiscard]] std::uint64_t abort(core::TxTypeId x, core::TxTypeId y) const noexcept {
    return aborts[static_cast<std::size_t>(x) * n_types + static_cast<std::size_t>(y)];
  }
  [[nodiscard]] std::uint64_t commit_pair(core::TxTypeId x,
                                          core::TxTypeId y) const noexcept {
    return commit_pairs[static_cast<std::size_t>(x) * n_types +
                        static_cast<std::size_t>(y)];
  }

  // Appends this snapshot as one JSON object. Pairs with zero evidence are
  // omitted (the matrices are sparse in practice); each emitted pair carries
  // the raw tallies AND the derived probabilities the paper's inference
  // consumes — P(x aborts | x||y) and P(x aborts ∩ x||y) — so offline tools
  // need not re-derive them.
  void append_json(std::string& out) const;
};

}  // namespace seer::obs
