// FlightRecorder — a bounded ring of ModelSnapshots plus an anomaly trigger,
// the always-on "black box" for the Seer scheduler's learned model.
//
// The recorder never touches the per-transaction hot path. It is fed from
// exactly two places:
//   * note_sgl_fallback() — on the SGL fallback path (already the slow
//     path by definition; one relaxed atomic increment);
//   * on_rebuild() — once per scheme rebuild, on the designated maintenance
//     thread, with the exact lifetime tallies the scheduler already holds.
// on_rebuild() decides — from the capture period and the anomaly detectors —
// whether the caller should build a full ModelSnapshot and record() it. The
// expensive part (merging matrices, copying the scheme) therefore happens
// only for rebuilds that are actually retained.
//
// Anomaly detection works on the *window* between consecutive rebuilds:
//   abort storm — window abort rate (1 - commits/executions) crosses
//       `abort_rate_enter`; re-arms when it falls below `abort_rate_exit`;
//   SGL storm  — window SGL fallbacks per execution crosses
//       `sgl_rate_enter`; re-arms below `sgl_rate_exit`.
// Both detectors carry hysteresis so a rate hovering around the threshold
// produces one episode, not a capture per rebuild. Entering an episode
// forces a capture (reason "anomaly") regardless of the periodic cadence;
// episodes record their [start, end] rebuild/clock bounds and peak rate.
//
// With SEER_OBS=OFF the class is an empty stub: on_rebuild() returns false
// so the scheduler never builds a snapshot, and to_json() returns "{}".
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/obs_config.hpp"
#include "obs/snapshot.hpp"

namespace seer::obs {

struct FlightRecorderConfig {
  // Snapshot ring capacity; older snapshots are overwritten (the drop count
  // survives, like the TraceSink rings).
  std::size_t capacity = 64;
  // Capture every `period`-th rebuild; 0 disables periodic capture (anomaly
  // and final captures still fire).
  std::uint64_t period = 8;
  // Abort-storm detector thresholds (window abort rate), with hysteresis.
  double abort_rate_enter = 0.90;
  double abort_rate_exit = 0.60;
  // SGL-storm detector thresholds (window fallbacks per execution).
  double sgl_rate_enter = 0.25;
  double sgl_rate_exit = 0.05;
  // Windows with fewer executions than this carry too little evidence to
  // classify and are skipped by the detectors.
  std::uint64_t min_window_events = 64;
};

// Per-rebuild feed for the trigger logic: exact lifetime tallies, cheap to
// produce (the scheduler sums its raw slab counters anyway).
struct RebuildSample {
  std::uint64_t now = 0;
  std::uint64_t rebuild = 0;
  std::uint64_t executions = 0;
  std::uint64_t commits = 0;
};

struct AnomalyEpisode {
  enum class Kind : std::uint8_t { kAbortStorm, kSglStorm };
  Kind kind = Kind::kAbortStorm;
  std::uint64_t start_now = 0;
  std::uint64_t start_rebuild = 0;
  std::uint64_t end_now = 0;      // last rebuild observed inside the episode
  std::uint64_t end_rebuild = 0;
  double peak_rate = 0.0;
  bool open = true;  // still above the exit threshold at end of run
};

[[nodiscard]] constexpr const char* to_string(AnomalyEpisode::Kind k) noexcept {
  switch (k) {
    case AnomalyEpisode::Kind::kAbortStorm: return "abort_storm";
    case AnomalyEpisode::Kind::kSglStorm: return "sgl_storm";
  }
  return "?";
}

#if SEER_OBS_ENABLED

class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderConfig cfg = {});
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // --- feed (any thread; the SGL path is already slow) ---------------------
  void note_sgl_fallback() noexcept {
    sgl_fallbacks_.fetch_add(1, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sgl_fallbacks() const noexcept {
    return sgl_fallbacks_.load(std::memory_order_relaxed);
  }

  // --- trigger (designated maintenance thread only) ------------------------
  // Returns true when the caller should build a ModelSnapshot for this
  // rebuild and record() it; the reason to stamp is held internally.
  [[nodiscard]] bool on_rebuild(const RebuildSample& s);

  // Retains a snapshot, stamping its seq and the reason decided by the last
  // on_rebuild() (record) or kFinal (record_final, which also closes any
  // open anomaly episodes at the snapshot's clock).
  void record(ModelSnapshot&& snap);
  void record_final(ModelSnapshot&& snap);

  // --- introspection / export (after the embedding quiesces) ---------------
  [[nodiscard]] std::uint64_t captured() const noexcept { return captured_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return captured_ > ring_.size() ? captured_ - ring_.size() : 0;
  }
  // Retained snapshots in seq order (oldest first).
  [[nodiscard]] std::vector<const ModelSnapshot*> snapshots() const;
  [[nodiscard]] const std::vector<AnomalyEpisode>& episodes() const noexcept {
    return episodes_;
  }

  // Versioned dump: {"version": 1, "captured": N, "dropped": N,
  // "snapshots": [...], "anomalies": [...]}.
  [[nodiscard]] std::string to_json() const;

 private:
  void push(ModelSnapshot&& snap);
  // One hysteresis detector step; returns true when the episode opens now.
  bool detect(bool* in_anomaly, AnomalyEpisode::Kind kind, double rate,
              double enter, double exit_level, const RebuildSample& s);

  FlightRecorderConfig cfg_;
  std::vector<ModelSnapshot> ring_;  // capacity-bounded, overwrite-oldest
  std::uint64_t captured_ = 0;

  std::atomic<std::uint64_t> sgl_fallbacks_{0};

  // Trigger state (maintenance thread only).
  SnapshotReason pending_reason_ = SnapshotReason::kPeriodic;
  std::uint64_t last_capture_rebuild_ = 0;
  bool has_window_ = false;
  RebuildSample last_sample_{};
  std::uint64_t sgl_at_last_sample_ = 0;
  bool in_abort_storm_ = false;
  bool in_sgl_storm_ = false;
  std::vector<AnomalyEpisode> episodes_;
};

#else  // !SEER_OBS_ENABLED — zero-cost stubs with the identical surface.

class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderConfig = {}) {}
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  void note_sgl_fallback() noexcept {}
  [[nodiscard]] std::uint64_t sgl_fallbacks() const noexcept { return 0; }
  [[nodiscard]] bool on_rebuild(const RebuildSample&) { return false; }
  void record(ModelSnapshot&&) {}
  void record_final(ModelSnapshot&&) {}
  [[nodiscard]] std::uint64_t captured() const noexcept { return 0; }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return 0; }
  [[nodiscard]] std::vector<const ModelSnapshot*> snapshots() const { return {}; }
  [[nodiscard]] const std::vector<AnomalyEpisode>& episodes() const noexcept {
    static const std::vector<AnomalyEpisode> kEmpty;
    return kEmpty;
  }
  [[nodiscard]] std::string to_json() const { return "{}"; }
};

#endif  // SEER_OBS_ENABLED

}  // namespace seer::obs
