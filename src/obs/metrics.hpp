// MetricsRegistry — low-overhead named counters and log-bucketed histograms
// shared by every layer of the system (scheduler core, HTM, threaded
// runtime, machine simulator).
//
// Design constraints, in order:
//   1. The stats hot path (Alg. 3 record_commit/record_abort) runs millions
//      of times per second; an attached registry may add at most a couple of
//      single-writer relaxed counter bumps to it (<2% — see DESIGN.md §8 and
//      bench/micro_obs.cpp).
//   2. A collector must be able to snapshot every metric *while* worker
//      threads keep recording — no stop-the-world, no locks on either side.
//   3. With SEER_OBS=OFF the whole layer compiles to empty inline stubs, so
//      the instrumentation points in the components cost literally nothing.
//
// The implementation copies the ThreadStats recipe (core/conflict_stats.hpp):
// every thread owns one contiguous cache-line-aligned slab holding its lane
// of every registered metric. A counter bump is a relaxed load+store to a
// line only the owner writes; a histogram observation is three such bumps
// (bucket, count, sum). The snapshot thread sums lanes with relaxed loads —
// the single-writer/multi-reader pattern used throughout this codebase, and
// the reason snapshots need no synchronization: each lane value read is a
// valid (possibly slightly stale) count, and after the owners quiesce a
// snapshot is exact.
//
// Lifecycle: components register metrics while the embedding is being built
// (single-threaded), the owner calls freeze() once to allocate the lanes,
// and only then may worker threads record. Registration is idempotent by
// name so two components can share a metric deliberately.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "obs/obs_config.hpp"
#include "util/cacheline.hpp"

namespace seer::obs {

using MetricId = std::uint32_t;
inline constexpr MetricId kNoMetric = ~MetricId{0};

// Bucket b of a histogram counts observations v with std::bit_width(v) == b:
// bucket 0 is exactly v = 0 and bucket b >= 1 spans [2^(b-1), 2^b).
inline constexpr std::size_t kHistogramBuckets = 65;

struct CounterSnapshot {
  std::string name;
  std::uint64_t value = 0;
};

struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};
};

// Point-in-time view of every registered metric, in registration order (the
// order is deterministic because registration happens on the single thread
// that builds the embedding — this is what makes --metrics output
// byte-identical for any --jobs value).
struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<HistogramSnapshot> histograms;

  // Stable JSON: registration-ordered keys, histograms as sparse
  // [bucket, count] pairs. Returns "{}" when empty.
  [[nodiscard]] std::string to_json() const;
};

#if SEER_OBS_ENABLED

class MetricsRegistry {
 public:
  explicit MetricsRegistry(std::size_t n_threads) : n_threads_(n_threads) {
    assert(n_threads_ > 0);
  }
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // --- registration (single-threaded, before freeze) ----------------------
  MetricId counter(std::string name) {
    assert(!frozen_ && "register metrics before freeze()");
    for (std::size_t i = 0; i < counter_names_.size(); ++i) {
      if (counter_names_[i] == name) return static_cast<MetricId>(i);
    }
    counter_names_.push_back(std::move(name));
    return static_cast<MetricId>(counter_names_.size() - 1);
  }
  MetricId histogram(std::string name) {
    assert(!frozen_ && "register metrics before freeze()");
    for (std::size_t i = 0; i < histogram_names_.size(); ++i) {
      if (histogram_names_[i] == name) return static_cast<MetricId>(i);
    }
    histogram_names_.push_back(std::move(name));
    return static_cast<MetricId>(histogram_names_.size() - 1);
  }

  // Allocates the per-thread lanes. Idempotent; call once after every
  // component has registered and before any worker thread records.
  void freeze() {
    if (frozen_) return;
    frozen_ = true;
    lane_len_ = counter_names_.size() + histogram_names_.size() * kHistogramSlots;
    lanes_.reserve(n_threads_);
    for (std::size_t t = 0; t < n_threads_; ++t) {
      lanes_.push_back(util::make_cache_aligned_slab<Cell>(
          lane_len_ == 0 ? 1 : lane_len_));
    }
  }
  [[nodiscard]] bool frozen() const noexcept { return frozen_; }
  [[nodiscard]] std::size_t n_threads() const noexcept { return n_threads_; }

  // --- hot path (owner thread only per lane) ------------------------------
  void add(MetricId c, core::ThreadId thread, std::uint64_t delta = 1) noexcept {
    assert(frozen_ && thread < n_threads_ && c < counter_names_.size());
    bump(lanes_[thread][c], delta);
  }
  void observe(MetricId h, core::ThreadId thread, std::uint64_t value) noexcept {
    assert(frozen_ && thread < n_threads_ && h < histogram_names_.size());
    Cell* block = &lanes_[thread][counter_names_.size() +
                                  static_cast<std::size_t>(h) * kHistogramSlots];
    bump(block[bucket_of(value)], 1);
    bump(block[kHistogramBuckets], 1);      // count
    bump(block[kHistogramBuckets + 1], value);  // sum
  }

  // --- collection (any thread, any time after freeze) ---------------------
  [[nodiscard]] MetricsSnapshot snapshot() const;

  [[nodiscard]] static std::size_t bucket_of(std::uint64_t v) noexcept {
    return static_cast<std::size_t>(std::bit_width(v));
  }

 private:
  using Cell = std::atomic<std::uint64_t>;
  // Per histogram: kHistogramBuckets buckets, then count, then sum.
  static constexpr std::size_t kHistogramSlots = kHistogramBuckets + 2;

  static void bump(Cell& c, std::uint64_t delta) noexcept {
    // Single-writer counter: a plain load+store beats a locked RMW.
    c.store(c.load(std::memory_order_relaxed) + delta, std::memory_order_relaxed);
  }

  std::size_t n_threads_;
  bool frozen_ = false;
  std::size_t lane_len_ = 0;
  std::vector<std::string> counter_names_;
  std::vector<std::string> histogram_names_;
  std::vector<util::CacheAlignedSlab<Cell>> lanes_;
};

#else  // !SEER_OBS_ENABLED — zero-cost stubs with the identical surface.

class MetricsRegistry {
 public:
  explicit MetricsRegistry(std::size_t) {}
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  MetricId counter(const std::string&) { return kNoMetric; }
  MetricId histogram(const std::string&) { return kNoMetric; }
  void freeze() {}
  [[nodiscard]] bool frozen() const noexcept { return true; }
  [[nodiscard]] std::size_t n_threads() const noexcept { return 0; }
  void add(MetricId, core::ThreadId, std::uint64_t = 1) noexcept {}
  void observe(MetricId, core::ThreadId, std::uint64_t) noexcept {}
  [[nodiscard]] MetricsSnapshot snapshot() const { return {}; }
};

#endif  // SEER_OBS_ENABLED

}  // namespace seer::obs
