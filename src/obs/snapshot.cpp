#include "obs/snapshot.hpp"

#include <cinttypes>
#include <cstdio>

namespace seer::obs {

namespace {

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

// Shortest round-trippable-enough form: thresholds and scores are plain
// doubles computed deterministically, and %.9g prints them identically on
// every run — the formatting half of the --jobs byte-identity contract.
void append_dbl(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  out += buf;
}

void append_prob(std::string& out, double v) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%.6f", v);
  out += buf;
}

}  // namespace

void ModelSnapshot::append_json(std::string& out) const {
  out += "{\"seq\": ";
  append_u64(out, seq);
  out += ", \"reason\": \"";
  out += to_string(reason);
  out += "\", \"now\": ";
  append_u64(out, now);
  out += ", \"rebuild\": ";
  append_u64(out, rebuild);
  out += ", \"executions\": ";
  append_u64(out, executions);
  out += ", \"commits\": ";
  append_u64(out, commits);
  out += ", \"sgl_fallbacks\": ";
  append_u64(out, sgl_fallbacks);

  out += ", \"params\": {\"th1\": ";
  append_dbl(out, th1);
  out += ", \"th2\": ";
  append_dbl(out, th2);
  out += "}";

  out += ", \"climber\": {\"cur\": [";
  append_dbl(out, climber_cur_x);
  out += ", ";
  append_dbl(out, climber_cur_y);
  out += "], \"best\": [";
  append_dbl(out, climber_best_x);
  out += ", ";
  append_dbl(out, climber_best_y);
  out += "], \"best_score\": ";
  append_dbl(out, climber_best_score);
  out += ", \"epochs\": ";
  append_u64(out, climber_epochs);
  out += "}";

  out += ", \"n_types\": ";
  append_u64(out, n_types);
  out += ", \"execs\": [";
  for (std::size_t t = 0; t < execs.size(); ++t) {
    if (t != 0) out += ", ";
    append_u64(out, execs[t]);
  }
  out += "]";

  out += ", \"pairs\": [";
  bool first = true;
  for (std::size_t x = 0; x < n_types; ++x) {
    for (std::size_t y = 0; y < n_types; ++y) {
      const std::uint64_t a = aborts[x * n_types + y];
      const std::uint64_t c = commit_pairs[x * n_types + y];
      if (a + c == 0) continue;  // no joint evidence: omit (sparse format)
      if (!first) out += ", ";
      first = false;
      out += "{\"x\": ";
      append_u64(out, x);
      out += ", \"y\": ";
      append_u64(out, y);
      out += ", \"aborts\": ";
      append_u64(out, a);
      out += ", \"commits\": ";
      append_u64(out, c);
      // P(x aborts | x || y) and P(x aborts ∩ x || y) — core/probability.hpp.
      out += ", \"p_cond\": ";
      append_prob(out, static_cast<double>(a) / static_cast<double>(a + c));
      out += ", \"p_conj\": ";
      const std::uint64_t e = execs[x];
      append_prob(out,
                  e == 0 ? 0.0 : static_cast<double>(a) / static_cast<double>(e));
      out += "}";
    }
  }
  out += "]";

  out += ", \"scheme\": [";
  for (std::size_t x = 0; x < scheme.size(); ++x) {
    if (x != 0) out += ", ";
    out += "[";
    for (std::size_t i = 0; i < scheme[x].size(); ++i) {
      if (i != 0) out += ", ";
      append_u64(out, static_cast<std::uint64_t>(scheme[x][i]));
    }
    out += "]";
  }
  out += "]}";
}

}  // namespace seer::obs
