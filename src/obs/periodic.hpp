// Periodic metrics emission: successive MetricsRegistry snapshots rendered
// as JSON counter *deltas* (DESIGN.md §12).
//
// The serving harness appends these fields to its per-interval JSONL lines
// so a log line says what happened *during* the interval (commits, aborts by
// cause, fallbacks), not since process start — the shape process_serve_logs
// graphs over time. The registry's snapshots are safe to take while worker
// threads keep recording (metrics.hpp documents why), so this is exactly a
// monitor-thread consumer.
//
// The class holds the previous snapshot's counter values by registration
// index; registration order is fixed after freeze(), so index-keyed deltas
// are stable. Histograms are deliberately not emitted here — the serve
// harness carries its own latency accounting (util/latency_histogram.hpp)
// with better-defined semantics than a generic bucket dump.
//
// Compiles against both SEER_OBS settings: with the layer off the stub
// registry snapshots empty and delta_fields() returns "".
#pragma once

#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace seer::obs {

class PeriodicMetricsDelta {
 public:
  // `registry` may be null (no-op: every call returns ""). The registry must
  // be frozen before the first call and outlive this object.
  explicit PeriodicMetricsDelta(const MetricsRegistry* registry)
      : registry_(registry) {}

  // JSON fields (`, "name": delta` fragments, leading comma included, empty
  // string when nothing to emit) for every counter whose name starts with
  // one of `prefixes`, valued as the increase since the previous call (the
  // whole current value on the first call). Counters that did not move are
  // still emitted — a stalled service showing "rt.commits": 0 is signal.
  [[nodiscard]] std::string delta_fields(
      std::initializer_list<std::string_view> prefixes);

 private:
  const MetricsRegistry* registry_;
  std::vector<std::uint64_t> prev_;  // by counter registration index
};

}  // namespace seer::obs
