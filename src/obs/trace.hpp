// Event tracing — per-thread lock-free ring buffers of typed events with
// logical timestamps, exportable to Chrome trace_event JSON
// (chrome://tracing / https://ui.perfetto.dev) and a compact text summary.
//
// Each thread (lane) owns a fixed-capacity single-producer ring: emitting an
// event is a slot write plus one release store of the lane head, and a full
// ring silently overwrites the oldest events (the drop count is recoverable,
// never the events — bounded memory beats completeness for always-on
// tracing). Producers never synchronize with each other; the exporter runs
// after the producers quiesce (end of run / join), which is the only point
// at which reading the slots is race-free.
//
// Timestamps are logical, supplied by the embedding: the machine simulator
// passes its deterministic cycle clock (traces are byte-identical per seed),
// the threaded runtime passes now_ticks() (RDTSC) so spans are comparable
// across threads of one process.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "obs/obs_config.hpp"
#include "util/cacheline.hpp"

namespace seer::obs {

enum class TraceKind : std::uint8_t {
  kTxBegin,        // arg = transaction type
  kTxCommit,       // arg = transaction type
  kTxAbort,        // arg = abort cause (htm::AbortCause)
  kSglFallback,    // arg = transaction type
  kSchemeRebuild,  // arg = number of (type, lock) edges in the new scheme
  kClimberStep,    // arg = tuning epoch index
  kKindCount,
};

[[nodiscard]] constexpr const char* to_string(TraceKind k) noexcept {
  switch (k) {
    case TraceKind::kTxBegin: return "tx";
    case TraceKind::kTxCommit: return "commit";
    case TraceKind::kTxAbort: return "abort";
    case TraceKind::kSglFallback: return "sgl_fallback";
    case TraceKind::kSchemeRebuild: return "scheme_rebuild";
    case TraceKind::kClimberStep: return "climber_step";
    case TraceKind::kKindCount: break;
  }
  return "?";
}

struct TraceEvent {
  std::uint64_t ts = 0;   // logical timestamp (cycles)
  std::uint64_t arg = 0;  // kind-specific payload
  core::ThreadId thread = 0;
  TraceKind kind = TraceKind::kTxBegin;
};

// Coarse RDTSC-style logical clock for embeddings without a simulated one.
[[nodiscard]] std::uint64_t now_ticks() noexcept;

#if SEER_OBS_ENABLED

class TraceSink {
 public:
  // `capacity` (rounded up to a power of two, per lane) bounds memory to
  // n_threads * capacity * sizeof(TraceEvent).
  explicit TraceSink(std::size_t n_threads, std::size_t capacity = 1u << 14);
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  // --- hot path: owner thread of `lane` only -------------------------------
  void emit(core::ThreadId lane, TraceKind kind, std::uint64_t ts,
            std::uint64_t arg) noexcept {
    assert(lane < lanes_.size());
    Lane& l = *lanes_[lane];
    const std::uint64_t h = l.head.load(std::memory_order_relaxed);
    TraceEvent& slot = l.slots[h & mask_];
    slot.ts = ts;
    slot.arg = arg;
    slot.thread = lane;
    slot.kind = kind;
    // Publish after the slot write; the post-quiescence reader acquires.
    l.head.store(h + 1, std::memory_order_release);
  }

  // --- export (after producers quiesce) ------------------------------------
  // Events from every lane, merged and ordered by (ts, lane, lane-order).
  [[nodiscard]] std::vector<TraceEvent> drain_sorted() const;
  // Events emitted but overwritten by wraparound, across all lanes.
  [[nodiscard]] std::uint64_t dropped() const noexcept;
  // Same, resolved per lane — nonzero entries tell WHICH thread's history
  // was truncated (summary() and tools/seer_inspect surface these).
  [[nodiscard]] std::vector<std::uint64_t> dropped_per_lane() const;
  [[nodiscard]] std::uint64_t emitted() const noexcept;
  [[nodiscard]] std::size_t n_lanes() const noexcept { return lanes_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }

  // Chrome trace_event JSON: tx begin/commit/abort become "B"/"E" span pairs
  // per tid (unmatched ends demote to instants, unmatched begins are closed
  // at the last timestamp, so the output is always well-formed), everything
  // else becomes instant events. Returns false if the file cannot be opened.
  [[nodiscard]] bool write_chrome_json(const std::string& path) const;

  // Compact text table: per-kind event counts per lane plus drop totals.
  [[nodiscard]] std::string summary() const;

 private:
  struct Lane {
    alignas(util::kCacheLineBytes) std::atomic<std::uint64_t> head{0};
    std::vector<TraceEvent> slots;
  };

  std::size_t mask_;
  std::vector<std::unique_ptr<Lane>> lanes_;
};

#else  // !SEER_OBS_ENABLED — zero-cost stubs with the identical surface.

class TraceSink {
 public:
  explicit TraceSink(std::size_t, std::size_t = 0) {}
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  void emit(core::ThreadId, TraceKind, std::uint64_t, std::uint64_t) noexcept {}
  [[nodiscard]] std::vector<TraceEvent> drain_sorted() const { return {}; }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return 0; }
  [[nodiscard]] std::vector<std::uint64_t> dropped_per_lane() const { return {}; }
  [[nodiscard]] std::uint64_t emitted() const noexcept { return 0; }
  [[nodiscard]] std::size_t n_lanes() const noexcept { return 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return 0; }
  [[nodiscard]] bool write_chrome_json(const std::string&) const { return true; }
  [[nodiscard]] std::string summary() const { return "observability disabled\n"; }
};

#endif  // SEER_OBS_ENABLED

}  // namespace seer::obs
