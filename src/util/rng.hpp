// Deterministic pseudo-random number generation.
//
// Everything in the simulator and the workload generators draws from these
// generators so that a (seed, configuration) pair fully determines a run.
// We use SplitMix64 for seeding and xoshiro256** as the workhorse generator:
// both are tiny, fast, allocation-free, and well studied.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace seer::util {

// SplitMix64: used to expand a single 64-bit seed into generator state.
// (Vigna, 2015 — public domain reference implementation.)
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// xoshiro256**: main generator. Satisfies UniformRandomBitGenerator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed = 0x5eed5eed5eedULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept { return next(); }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Unbiased integer in [0, bound) via Lemire's multiply-shift rejection.
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    if (bound <= 1) return 0;
    while (true) {
      const std::uint64_t x = next();
      const auto m = static_cast<unsigned __int128>(x) * bound;
      const auto lo = static_cast<std::uint64_t>(m);
      if (lo >= bound || lo >= (0 - bound) % bound) {
        return static_cast<std::uint64_t>(m >> 64);
      }
    }
  }

  // Integer in the inclusive range [lo, hi].
  constexpr std::uint64_t range(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + below(hi - lo + 1);
  }

  // Uniform double in [0, 1) with 53 bits of precision.
  constexpr double uniform01() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  constexpr bool bernoulli(double p) noexcept { return uniform01() < p; }

  // Derive an independent child generator (for per-thread streams).
  constexpr Xoshiro256 split() noexcept {
    return Xoshiro256(next() ^ 0xa02be1badb0d5eedULL);
  }

  // Full-state checkpointing. Workload trace replay (src/workload/trace.hpp)
  // records the post-call state of the per-thread stream so that replaying a
  // captured instance sequence leaves the generator exactly where the
  // recording run did — the machine's own draws then continue unchanged.
  [[nodiscard]] constexpr std::array<std::uint64_t, 4> state() const noexcept {
    return {s_[0], s_[1], s_[2], s_[3]};
  }
  constexpr void set_state(const std::array<std::uint64_t, 4>& s) noexcept {
    for (std::size_t i = 0; i < 4; ++i) s_[i] = s[i];
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace seer::util
