#include "util/json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace seer::util::json {

namespace {

constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Value> run(std::string* error) {
    Value v;
    if (!parse_value(v, 0)) {
      report(error);
      return std::nullopt;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after document");
      report(error);
      return std::nullopt;
    }
    return v;
  }

 private:
  void skip_ws() noexcept {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] bool eof() const noexcept { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const noexcept { return text_[pos_]; }

  bool fail(const char* what) {
    if (error_ == nullptr) {  // keep the first (innermost) diagnosis
      error_ = what;
      error_pos_ = pos_;
    }
    return false;
  }

  void report(std::string* error) const {
    if (error == nullptr) return;
    char buf[160];
    std::snprintf(buf, sizeof buf, "JSON parse error at offset %zu: %s",
                  error_pos_, error_ != nullptr ? error_ : "invalid document");
    *error = buf;
  }

  bool literal(const char* word, std::size_t len) {
    if (text_.size() - pos_ < len || text_.compare(pos_, len, word) != 0) {
      return fail("invalid literal");
    }
    pos_ += len;
    return true;
  }

  bool parse_value(Value& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (eof()) return fail("unexpected end of input");
    switch (peek()) {
      case 'n':
        out.type = Value::Type::kNull;
        return literal("null", 4);
      case 't':
        out.type = Value::Type::kBool;
        out.boolean = true;
        return literal("true", 4);
      case 'f':
        out.type = Value::Type::kBool;
        out.boolean = false;
        return literal("false", 5);
      case '"':
        out.type = Value::Type::kString;
        return parse_string(out.string);
      case '[':
        return parse_array(out, depth);
      case '{':
        return parse_object(out, depth);
      default:
        return parse_number(out);
    }
  }

  bool parse_number(Value& out) {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    while (!eof() && (std::isdigit(static_cast<unsigned char>(peek())) != 0 ||
                      peek() == '.' || peek() == 'e' || peek() == 'E' ||
                      peek() == '+' || peek() == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected a value");
    // strtod needs NUL termination; numbers are short, copy locally.
    char buf[64];
    const std::size_t len = pos_ - start;
    if (len >= sizeof buf) return fail("number too long");
    std::memcpy(buf, text_.data() + start, len);
    buf[len] = '\0';
    char* end = nullptr;
    out.number = std::strtod(buf, &end);
    if (end != buf + len) {
      pos_ = start;
      return fail("malformed number");
    }
    out.type = Value::Type::kNumber;
    return true;
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (true) {
      if (eof()) return fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return fail("control char in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (eof()) return fail("unterminated escape");
      c = text_[pos_++];
      switch (c) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (!append_unicode(out)) return false;
          break;
        }
        default: return fail("invalid escape");
      }
    }
  }

  bool append_unicode(std::string& out) {
    unsigned cp = 0;
    if (!read_hex4(cp)) return false;
    // Surrogate pair?
    if (cp >= 0xD800 && cp <= 0xDBFF && text_.size() - pos_ >= 2 &&
        text_[pos_] == '\\' && text_[pos_ + 1] == 'u') {
      pos_ += 2;
      unsigned lo = 0;
      if (!read_hex4(lo)) return false;
      if (lo >= 0xDC00 && lo <= 0xDFFF) {
        cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
      } else {
        return fail("invalid surrogate pair");
      }
    }
    // UTF-8 encode.
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
    return true;
  }

  bool read_hex4(unsigned& out) {
    if (text_.size() - pos_ < 4) return fail("truncated \\u escape");
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      out <<= 4;
      if (c >= '0' && c <= '9') {
        out |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        out |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        out |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return fail("invalid \\u escape");
      }
    }
    return true;
  }

  bool parse_array(Value& out, int depth) {
    ++pos_;  // '['
    out.type = Value::Type::kArray;
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      Value elem;
      if (!parse_value(elem, depth + 1)) return false;
      out.array.push_back(std::move(elem));
      skip_ws();
      if (eof()) return fail("unterminated array");
      const char c = text_[pos_++];
      if (c == ']') return true;
      if (c != ',') {
        --pos_;
        return fail("expected ',' or ']'");
      }
    }
  }

  bool parse_object(Value& out, int depth) {
    ++pos_;  // '{'
    out.type = Value::Type::kObject;
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (eof() || peek() != '"') return fail("expected object key");
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (eof() || text_[pos_] != ':') return fail("expected ':'");
      ++pos_;
      Value val;
      if (!parse_value(val, depth + 1)) return false;
      out.object.emplace_back(std::move(key), std::move(val));
      skip_ws();
      if (eof()) return fail("unterminated object");
      const char c = text_[pos_++];
      if (c == '}') return true;
      if (c != ',') {
        --pos_;
        return fail("expected ',' or '}'");
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  const char* error_ = nullptr;
  std::size_t error_pos_ = 0;
};

}  // namespace

std::optional<Value> parse(std::string_view text, std::string* error) {
  return Parser(text).run(error);
}

std::optional<Value> parse_file(const std::string& path, std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::string text;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  return parse(text, error);
}

}  // namespace seer::util::json
