// Fixed-size worker pool + deterministic indexed fan-out.
//
// The evaluation harness replays hundreds of independent, deterministic
// simulator configurations; this pool lets them run on every host core while
// keeping the OBSERVABLE result identical to a serial sweep: work is handed
// out by index, each result lands in the slot of its submitting index, and
// the caller consumes the vector in order. Scheduling nondeterminism can
// change only wall-clock time, never output.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace seer::util {

class ThreadPool {
 public:
  // Spawns `n_workers` threads (clamped to at least one).
  explicit ThreadPool(std::size_t n_workers) {
    if (n_workers == 0) n_workers = 1;
    workers_.reserve(n_workers);
    for (std::size_t i = 0; i < n_workers; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Drains: every task already submitted runs to completion before the
  // workers are joined.
  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_task_.notify_all();
    for (auto& w : workers_) w.join();
  }

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  // Tasks must not throw — wrap exceptions into state the caller owns
  // (parallel_for_indexed does exactly that).
  void submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      queue_.push_back(std::move(task));
    }
    cv_task_.notify_one();
  }

  // Blocks until the queue is empty and no worker is mid-task.
  void wait_idle() {
    std::unique_lock<std::mutex> lk(mu_);
    cv_idle_.wait(lk, [&] { return queue_.empty() && active_ == 0; });
  }

  // Number of logical CPUs, with a sane floor when the runtime cannot tell.
  [[nodiscard]] static std::size_t hardware_jobs() noexcept {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lk(mu_);
        cv_task_.wait(lk, [&] { return stop_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stop_ requested and nothing left
        task = std::move(queue_.front());
        queue_.pop_front();
        ++active_;
      }
      task();
      {
        std::lock_guard<std::mutex> lk(mu_);
        --active_;
        if (queue_.empty() && active_ == 0) cv_idle_.notify_all();
      }
    }
  }

  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t active_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

// Invokes fn(0) .. fn(n-1) on the pool's workers and returns the results in
// index order (fn must be safe to call concurrently; results must be
// default-constructible). Every item is attempted even if some throw; after
// the batch completes, the exception of the LOWEST failing index is
// rethrown, so error reporting is as deterministic as the results.
template <typename F>
auto parallel_for_indexed(ThreadPool& pool, std::size_t n, F&& fn)
    -> std::vector<std::invoke_result_t<F&, std::size_t>> {
  using R = std::invoke_result_t<F&, std::size_t>;
  std::vector<R> results(n);
  std::vector<std::exception_ptr> errors(n);

  std::mutex done_mu;
  std::condition_variable done_cv;
  std::size_t done = 0;

  for (std::size_t i = 0; i < n; ++i) {
    pool.submit([&, i] {
      try {
        results[i] = fn(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
      {
        // Notify while still holding the lock: the caller destroys done_cv
        // the moment its wait sees done == n, so a notify after unlocking
        // could touch a dead condition variable.
        std::lock_guard<std::mutex> lk(done_mu);
        if (++done == n) done_cv.notify_one();
      }
    });
  }
  {
    std::unique_lock<std::mutex> lk(done_mu);
    done_cv.wait(lk, [&] { return done == n; });
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (errors[i]) std::rethrow_exception(errors[i]);
  }
  return results;
}

// Convenience form: `jobs <= 1` runs inline on the calling thread (no pool,
// no synchronization — bitwise the same results by construction); otherwise
// a transient pool of min(jobs, n) workers is used.
template <typename F>
auto parallel_for_indexed(std::size_t jobs, std::size_t n, F&& fn)
    -> std::vector<std::invoke_result_t<F&, std::size_t>> {
  using R = std::invoke_result_t<F&, std::size_t>;
  if (jobs <= 1 || n <= 1) {
    std::vector<R> results(n);
    for (std::size_t i = 0; i < n; ++i) results[i] = fn(i);
    return results;
  }
  ThreadPool pool(jobs < n ? jobs : n);
  return parallel_for_indexed(pool, n, std::forward<F>(fn));
}

}  // namespace seer::util
