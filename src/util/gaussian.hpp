// Standard normal distribution helpers.
//
// Alg. 5 line 72 of the paper keeps a pair (x, y) only if
// P(x aborts | x || y) exceeds the Th2-th percentile of a Gaussian
// N(eta, sigma^2) fitted to the observed probability set. That percentile is
// eta + z(Th2) * sigma where z is the standard normal quantile function.
#pragma once

namespace seer::util {

// Standard normal CDF, Phi(x).
[[nodiscard]] double normal_cdf(double x) noexcept;

// Standard normal quantile (inverse CDF), z(p) for p in (0, 1).
// Peter Acklam's rational approximation (relative error < 1.15e-9),
// refined with one Halley step. p outside (0,1) is clamped to the
// representable tail.
[[nodiscard]] double normal_quantile(double p) noexcept;

// The Th2-th percentile of N(mean, variance): mean + z(p) * sqrt(variance).
[[nodiscard]] double gaussian_percentile(double mean, double variance, double p) noexcept;

}  // namespace seer::util
