// Minimal JSON DOM parser — just enough for the repo's own dump formats
// (--json / --metrics / --snapshots / Chrome traces), with no third-party
// dependency. Used by tools/seer_inspect and by tests that validate the
// dumps structurally instead of by substring.
//
// Scope: full JSON value grammar (null, bool, number, string, array,
// object) with the usual escapes; numbers are held as double (every counter
// we emit fits 2^53 losslessly); object member order is preserved.
// Out of scope: serialization (the writers hand-format for byte-stable
// output), streaming, and >64-deep nesting (parse error, not UB).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace seer::util::json {

class Value {
 public:
  enum class Type : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  // Insertion-ordered; duplicate keys keep the first occurrence on lookup.
  std::vector<std::pair<std::string, Value>> object;

  [[nodiscard]] bool is_null() const noexcept { return type == Type::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return type == Type::kBool; }
  [[nodiscard]] bool is_number() const noexcept { return type == Type::kNumber; }
  [[nodiscard]] bool is_string() const noexcept { return type == Type::kString; }
  [[nodiscard]] bool is_array() const noexcept { return type == Type::kArray; }
  [[nodiscard]] bool is_object() const noexcept { return type == Type::kObject; }

  [[nodiscard]] std::uint64_t as_u64() const noexcept {
    if (number < 0.0) return 0;
    // 2^64 and above would overflow the cast (UB); saturate instead.
    if (number >= 18446744073709551616.0) return ~std::uint64_t{0};
    return static_cast<std::uint64_t>(number);
  }
  [[nodiscard]] std::int64_t as_i64() const noexcept {
    return static_cast<std::int64_t>(number);
  }

  // Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Value* find(std::string_view key) const noexcept {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  // Chained convenience: obj.u64("commits", fallback) etc.
  [[nodiscard]] std::uint64_t u64(std::string_view key,
                                  std::uint64_t fallback = 0) const noexcept {
    const Value* v = find(key);
    return v != nullptr && v->is_number() ? v->as_u64() : fallback;
  }
  [[nodiscard]] double num(std::string_view key, double fallback = 0.0) const noexcept {
    const Value* v = find(key);
    return v != nullptr && v->is_number() ? v->number : fallback;
  }
  [[nodiscard]] std::string_view str(std::string_view key,
                                     std::string_view fallback = "") const noexcept {
    const Value* v = find(key);
    return v != nullptr && v->is_string() ? std::string_view(v->string) : fallback;
  }
};

// Parses one JSON document (trailing garbage is an error). On failure
// returns nullopt and, when `error` is non-null, fills it with a message
// that includes the byte offset.
[[nodiscard]] std::optional<Value> parse(std::string_view text,
                                         std::string* error = nullptr);

// Reads the whole file then parses it. Missing/unreadable file is reported
// through `error` like a syntax problem.
[[nodiscard]] std::optional<Value> parse_file(const std::string& path,
                                              std::string* error = nullptr);

}  // namespace seer::util::json
