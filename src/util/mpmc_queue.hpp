// Bounded lock-free MPMC queue (Vyukov's array queue).
//
// The serving harness's admission queue: the open-loop generator pushes
// timestamped requests without ever blocking — a full queue is an explicit
// *shed* (try_push returns false and the caller counts a rejection), because
// an open-loop producer that blocks silently degrades into a closed-loop one
// and the latency numbers stop meaning anything. Workers pop concurrently.
//
// Each cell carries a sequence number that encodes, relative to the two
// monotonically increasing positions, whether the cell is empty (seq ==
// enqueue position), full (seq == dequeue position + 1), or still being
// filled/drained by another thread (anything else — the operation backs off
// and re-reads the position). Both ends are wait-free in the absence of
// contention and lock-free under it; no operation ever waits on a thread
// that is descheduled mid-cell, because try_push/try_pop give up and report
// full/empty instead of spinning on the in-flight cell.
#pragma once

#include <atomic>
#include <bit>
#include <cassert>
#include <cstdint>
#include <memory>
#include <utility>

#include "util/cacheline.hpp"

namespace seer::util {

template <typename T>
class MpmcQueue {
 public:
  // Capacity is rounded up to a power of two, minimum 2.
  explicit MpmcQueue(std::size_t min_capacity)
      : mask_(std::bit_ceil(min_capacity < 2 ? std::size_t{2} : min_capacity) - 1),
        cells_(std::make_unique<Cell[]>(mask_ + 1)) {
    for (std::size_t i = 0; i <= mask_; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }
  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }

  // False = queue full (shed). Never blocks.
  [[nodiscard]] bool try_push(T&& v) noexcept {
    std::size_t pos = enqueue_.value.load(std::memory_order_relaxed);
    while (true) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t seq = cell.seq.load(std::memory_order_acquire);
      const std::intptr_t diff = static_cast<std::intptr_t>(seq) -
                                 static_cast<std::intptr_t>(pos);
      if (diff == 0) {
        if (enqueue_.value.compare_exchange_weak(pos, pos + 1,
                                                 std::memory_order_relaxed)) {
          cell.value = std::move(v);
          cell.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
        // CAS lost: pos was reloaded, retry with it.
      } else if (diff < 0) {
        return false;  // the cell still holds an unconsumed element: full
      } else {
        pos = enqueue_.value.load(std::memory_order_relaxed);
      }
    }
  }

  // False = queue empty. Never blocks.
  [[nodiscard]] bool try_pop(T& out) noexcept {
    std::size_t pos = dequeue_.value.load(std::memory_order_relaxed);
    while (true) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t seq = cell.seq.load(std::memory_order_acquire);
      const std::intptr_t diff = static_cast<std::intptr_t>(seq) -
                                 static_cast<std::intptr_t>(pos + 1);
      if (diff == 0) {
        if (dequeue_.value.compare_exchange_weak(pos, pos + 1,
                                                 std::memory_order_relaxed)) {
          out = std::move(cell.value);
          cell.seq.store(pos + mask_ + 1, std::memory_order_release);
          return true;
        }
      } else if (diff < 0) {
        return false;  // the cell has not been published yet: empty
      } else {
        pos = dequeue_.value.load(std::memory_order_relaxed);
      }
    }
  }

  // Instantaneous depth estimate for monitoring. Racy by nature (the two
  // positions are read at different moments), clamped to [0, capacity].
  [[nodiscard]] std::size_t approx_size() const noexcept {
    const std::size_t e = enqueue_.value.load(std::memory_order_relaxed);
    const std::size_t d = dequeue_.value.load(std::memory_order_relaxed);
    if (e <= d) return 0;
    const std::size_t n = e - d;
    return n > capacity() ? capacity() : n;
  }

 private:
  struct Cell {
    std::atomic<std::size_t> seq;
    T value;
  };

  std::size_t mask_;
  std::unique_ptr<Cell[]> cells_;
  // The two positions live on their own cache lines so producers and
  // consumers do not false-share.
  Padded<std::atomic<std::size_t>> enqueue_{};
  Padded<std::atomic<std::size_t>> dequeue_{};
};

}  // namespace seer::util
