// Test-and-test-and-set spinlock.
//
// This is the lock flavor Seer's runtime uses for the single-global-lock
// fallback, the per-transaction locks and the per-core locks in the
// real-threads driver (the simulator reifies locks as queued SimLocks
// instead). TTAS keeps the contended path read-only until the lock is seen
// free, which matters because waiting threads sit inside hardware
// transactions' read sets in the lemming-avoidance path.
#pragma once

#include <atomic>

#include "util/cacheline.hpp"

namespace seer::util {

class alignas(kCacheLineBytes) SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void lock() noexcept {
    while (!try_lock()) {
      while (locked_.load(std::memory_order_relaxed)) cpu_relax();
    }
  }

  [[nodiscard]] bool try_lock() noexcept {
    return !locked_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept { locked_.store(false, std::memory_order_release); }

  // Non-mutating probe — the paper's is-locked(sgl) (Alg. 1 line 11).
  [[nodiscard]] bool is_locked() const noexcept {
    return locked_.load(std::memory_order_acquire);
  }

  // Address of the raw flag, for HTM read-set subscription.
  [[nodiscard]] const std::atomic<bool>* flag() const noexcept { return &locked_; }

  static void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#else
    std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
  }

 private:
  std::atomic<bool> locked_{false};
};

// RAII guard (std::lock_guard works too; this one allows early release).
class SpinGuard {
 public:
  explicit SpinGuard(SpinLock& l) noexcept : lock_(&l) { lock_->lock(); }
  ~SpinGuard() { release(); }
  SpinGuard(const SpinGuard&) = delete;
  SpinGuard& operator=(const SpinGuard&) = delete;

  void release() noexcept {
    if (lock_ != nullptr) {
      lock_->unlock();
      lock_ = nullptr;
    }
  }

 private:
  SpinLock* lock_;
};

}  // namespace seer::util
