// Fixed-capacity inline vector.
//
// Lock directives and per-transaction lock rows are tiny (bounded by the
// number of atomic blocks in the program) and live on hot paths; SmallVec
// keeps them allocation-free and trivially copyable when T is trivial.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <initializer_list>

namespace seer::util {

template <typename T, std::size_t Cap>
class SmallVec {
 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  constexpr SmallVec() = default;
  constexpr SmallVec(std::initializer_list<T> init) {
    assert(init.size() <= Cap);
    for (const T& v : init) push_back(v);
  }

  static constexpr std::size_t capacity() noexcept { return Cap; }
  [[nodiscard]] constexpr std::size_t size() const noexcept { return size_; }
  [[nodiscard]] constexpr bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] constexpr bool full() const noexcept { return size_ == Cap; }

  constexpr void push_back(const T& v) {
    assert(size_ < Cap && "SmallVec overflow");
    data_[size_++] = v;
  }

  // push_back that drops the element when full (used where best-effort
  // tracking is acceptable); returns whether the element was stored.
  constexpr bool try_push_back(const T& v) {
    if (size_ >= Cap) return false;
    data_[size_++] = v;
    return true;
  }

  constexpr void pop_back() {
    assert(size_ > 0);
    --size_;
  }

  constexpr void clear() noexcept { size_ = 0; }

  constexpr T& operator[](std::size_t i) {
    assert(i < size_);
    return data_[i];
  }
  constexpr const T& operator[](std::size_t i) const {
    assert(i < size_);
    return data_[i];
  }

  constexpr T& back() {
    assert(size_ > 0);
    return data_[size_ - 1];
  }

  constexpr iterator begin() noexcept { return data_; }
  constexpr iterator end() noexcept { return data_ + size_; }
  constexpr const_iterator begin() const noexcept { return data_; }
  constexpr const_iterator end() const noexcept { return data_ + size_; }

  [[nodiscard]] constexpr bool contains(const T& v) const {
    return std::find(begin(), end(), v) != end();
  }

  constexpr friend bool operator==(const SmallVec& a, const SmallVec& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }

 private:
  T data_[Cap]{};
  std::size_t size_ = 0;
};

}  // namespace seer::util
