// Cache-line geometry helpers.
//
// Shared mutable state in this project is either strictly per-thread
// (the per-core statistics matrices of Seer, Table 2 of the paper) or
// single-writer multi-reader (the active-transactions table). Both rely on
// cache-line padding to avoid false sharing between hardware threads.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>

namespace seer::util {

// std::hardware_destructive_interference_size is not universally available;
// 64 bytes is correct for every x86 part the paper targets.
inline constexpr std::size_t kCacheLineBytes = 64;

// Wraps a value and pads it to a cache-line multiple so that adjacent
// array elements never share a line.
template <typename T>
struct alignas(kCacheLineBytes) Padded {
  T value{};

  Padded() = default;
  explicit Padded(const T& v) : value(v) {}

  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }
};

static_assert(alignof(Padded<char>) == kCacheLineBytes);
static_assert(sizeof(Padded<char>) % kCacheLineBytes == 0);

// A heap array that starts on a cache-line boundary and occupies a whole
// number of lines, so two slabs owned by different threads can never share a
// line no matter where the allocator places them. Elements are
// value-initialized. Restricted to trivially destructible types (counters),
// which keeps deallocation a plain aligned delete.
template <typename T>
struct AlignedSlabDeleter {
  void operator()(T* p) const noexcept {
    ::operator delete(static_cast<void*>(p), std::align_val_t{kCacheLineBytes});
  }
};

template <typename T>
using CacheAlignedSlab = std::unique_ptr<T[], AlignedSlabDeleter<T>>;

template <typename T>
[[nodiscard]] CacheAlignedSlab<T> make_cache_aligned_slab(std::size_t n) {
  static_assert(std::is_trivially_destructible_v<T>);
  static_assert(alignof(T) <= kCacheLineBytes);
  std::size_t bytes = n * sizeof(T);
  bytes = (bytes + kCacheLineBytes - 1) / kCacheLineBytes * kCacheLineBytes;
  void* raw = ::operator new(bytes, std::align_val_t{kCacheLineBytes});
  T* first = static_cast<T*>(raw);
  for (std::size_t i = 0; i < n; ++i) new (first + i) T();
  return CacheAlignedSlab<T>(first);
}

}  // namespace seer::util
