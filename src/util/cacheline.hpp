// Cache-line geometry helpers.
//
// Shared mutable state in this project is either strictly per-thread
// (the per-core statistics matrices of Seer, Table 2 of the paper) or
// single-writer multi-reader (the active-transactions table). Both rely on
// cache-line padding to avoid false sharing between hardware threads.
#pragma once

#include <cstddef>
#include <new>

namespace seer::util {

// std::hardware_destructive_interference_size is not universally available;
// 64 bytes is correct for every x86 part the paper targets.
inline constexpr std::size_t kCacheLineBytes = 64;

// Wraps a value and pads it to a cache-line multiple so that adjacent
// array elements never share a line.
template <typename T>
struct alignas(kCacheLineBytes) Padded {
  T value{};

  Padded() = default;
  explicit Padded(const T& v) : value(v) {}

  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }
};

static_assert(alignof(Padded<char>) == kCacheLineBytes);
static_assert(sizeof(Padded<char>) % kCacheLineBytes == 0);

}  // namespace seer::util
