#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace seer::util {

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void GeoMean::add(double x) noexcept {
  if (x <= 0.0) return;  // geometric mean is defined over positive values
  ++n_;
  log_sum_ += std::log(x);
}

double GeoMean::value() const noexcept {
  return n_ > 0 ? std::exp(log_sum_ / static_cast<double>(n_)) : 0.0;
}

double PercentileSketch::percentile(double q) const {
  if (xs_.empty()) return 0.0;
  std::vector<double> sorted(xs_);
  std::sort(sorted.begin(), sorted.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

double PercentileSketch::mean() const noexcept {
  if (xs_.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs_) acc += x;
  return acc / static_cast<double>(xs_.size());
}

}  // namespace seer::util
