#include "util/gaussian.hpp"

#include <algorithm>
#include <cmath>

namespace seer::util {

double normal_cdf(double x) noexcept {
  return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

namespace {

// Acklam's coefficients for the rational approximation of the normal quantile.
constexpr double kA[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                         -2.759285104469687e+02, 1.383577518672690e+02,
                         -3.066479806614716e+01, 2.506628277459239e+00};
constexpr double kB[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                         -1.556989798598866e+02, 6.680131188771972e+01,
                         -1.328068155288572e+01};
constexpr double kC[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                         -2.400758277161838e+00, -2.549732539343734e+00,
                         4.374664141464968e+00, 2.938163982698783e+00};
constexpr double kD[] = {7.784695709041462e-03, 3.224671290700398e-01,
                         2.445134137142996e+00, 3.754408661907416e+00};

double acklam(double p) noexcept {
  constexpr double p_low = 0.02425;
  constexpr double p_high = 1.0 - p_low;
  double x;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((kC[0] * q + kC[1]) * q + kC[2]) * q + kC[3]) * q + kC[4]) * q + kC[5]) /
        ((((kD[0] * q + kD[1]) * q + kD[2]) * q + kD[3]) * q + 1.0);
  } else if (p <= p_high) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((kA[0] * r + kA[1]) * r + kA[2]) * r + kA[3]) * r + kA[4]) * r + kA[5]) * q /
        (((((kB[0] * r + kB[1]) * r + kB[2]) * r + kB[3]) * r + kB[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((kC[0] * q + kC[1]) * q + kC[2]) * q + kC[3]) * q + kC[4]) * q + kC[5]) /
        ((((kD[0] * q + kD[1]) * q + kD[2]) * q + kD[3]) * q + 1.0);
  }
  return x;
}

}  // namespace

double normal_quantile(double p) noexcept {
  // Clamp into the open interval; the inference layer passes Th2 in [0,1].
  constexpr double kTiny = 1e-12;
  p = std::clamp(p, kTiny, 1.0 - kTiny);
  double x = acklam(p);
  // One Halley refinement step using the exact CDF.
  const double e = normal_cdf(x) - p;
  const double u = e * std::sqrt(2.0 * M_PI) * std::exp(x * x / 2.0);
  x = x - u / (1.0 + x * u / 2.0);
  return x;
}

double gaussian_percentile(double mean, double variance, double p) noexcept {
  const double sigma = std::sqrt(std::max(variance, 0.0));
  return mean + normal_quantile(p) * sigma;
}

}  // namespace seer::util
