// Spin-then-yield backoff.
//
// Busy-wait loops in the runtime (lock acquisition, lemming-avoidance waits,
// fallback retries) first spin with `pause`, then start yielding the CPU.
// Pure pause-spinning is correct on a dedicated many-core box but livelocks
// practically on oversubscribed or single-core hosts, where the thread being
// waited for cannot run until the waiter burns its scheduling quantum.
#pragma once

#include <cstdint>
#include <thread>

#include "util/spinlock.hpp"

namespace seer::util {

class Backoff {
 public:
  // `spin_limit`: pause-iterations before yielding begins.
  explicit Backoff(std::uint32_t spin_limit = 128) noexcept
      : spin_limit_(spin_limit) {}

  void pause() noexcept {
    if (spins_ < spin_limit_) {
      ++spins_;
      SpinLock::cpu_relax();
    } else {
      std::this_thread::yield();
    }
  }

  void reset() noexcept { spins_ = 0; }

 private:
  std::uint32_t spin_limit_;
  std::uint32_t spins_ = 0;
};

}  // namespace seer::util
