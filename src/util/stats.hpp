// Streaming statistics helpers.
//
// The lock-scheme inference of Alg. 5 needs the mean and variance of the
// per-pair conditional abort probabilities; the benchmark harness needs
// geometric means across workloads (Figure 3i) and percentile summaries.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace seer::util {

// Welford's online algorithm: numerically stable single-pass mean/variance.
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  void reset() noexcept { *this = RunningStats{}; }

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  // Population variance (the paper's N(eta, sigma^2) is fit to the observed
  // set of probabilities, so the population — not sample — variance applies).
  [[nodiscard]] double variance() const noexcept {
    return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
  }
  [[nodiscard]] double sample_variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept;

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

// Geometric mean accumulator (log-domain to avoid overflow/underflow).
class GeoMean {
 public:
  void add(double x) noexcept;
  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double value() const noexcept;

 private:
  std::uint64_t n_ = 0;
  double log_sum_ = 0.0;
};

// Exact percentile over a stored sample (linear interpolation between ranks).
// Used by the bench harness to summarize the 20-run distributions.
class PercentileSketch {
 public:
  void add(double x) { xs_.push_back(x); }
  [[nodiscard]] std::size_t count() const noexcept { return xs_.size(); }
  // q in [0, 1]; q=0.5 is the median. Returns 0 for an empty sketch.
  [[nodiscard]] double percentile(double q) const;
  [[nodiscard]] double mean() const noexcept;

 private:
  std::vector<double> xs_;
};

}  // namespace seer::util
