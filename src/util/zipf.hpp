// Zipf-distributed sampling over a finite universe [0, n).
//
// The STAMP stand-in workloads use Zipfian access skew to model hot data
// (e.g. popular customers in vacation, frequent flows in intruder). For the
// universe sizes involved (up to a few hundred thousand lines) a precomputed
// inverse-CDF table is both exact and fast to sample from.
#pragma once

#include <cstdint>
#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace seer::util {

class Zipf {
 public:
  // `n` — universe size; `s` — skew exponent (0 = uniform; 0.99 ~ YCSB-hot).
  Zipf(std::uint64_t n, double s) : n_(n), s_(s) {
    cdf_.reserve(static_cast<std::size_t>(n));
    double acc = 0.0;
    for (std::uint64_t k = 1; k <= n; ++k) {
      acc += 1.0 / std::pow(static_cast<double>(k), s);
      cdf_.push_back(acc);
    }
    const double total = acc;
    for (auto& c : cdf_) c /= total;
  }

  [[nodiscard]] std::uint64_t n() const noexcept { return n_; }
  [[nodiscard]] double skew() const noexcept { return s_; }

  // Samples a rank in [0, n); rank 0 is the hottest element.
  [[nodiscard]] std::uint64_t sample(Xoshiro256& rng) const noexcept {
    const double u = rng.uniform01();
    // Binary search for the first CDF entry >= u.
    std::size_t lo = 0;
    std::size_t hi = cdf_.size() - 1;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return static_cast<std::uint64_t>(lo);
  }

  // Probability mass of rank k (diagnostics / tests).
  [[nodiscard]] double pmf(std::uint64_t k) const noexcept {
    if (k >= n_) return 0.0;
    const double hi = cdf_[static_cast<std::size_t>(k)];
    const double lo = (k == 0) ? 0.0 : cdf_[static_cast<std::size_t>(k) - 1];
    return hi - lo;
  }

 private:
  std::uint64_t n_;
  double s_;
  std::vector<double> cdf_;
};

}  // namespace seer::util
