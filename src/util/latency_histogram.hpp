// Latency accounting for the serving harness.
//
// Two complementary structures, because the harness needs two different
// guarantees:
//
//   * LatencyHistogram — exact tail quantiles. Retains every recorded sample
//     (8 bytes each — a few-minute serve run at 100k req/s fits in well under
//     a gigabyte, and the harness keeps one per rate step), single-writer.
//     Quantiles use the nearest-rank definition so a p999 over N samples is
//     literally the ceil(0.999*N)-th smallest recorded value — no model, no
//     interpolation, directly checkable against a sorted reference. Workers
//     each own one and the driver merges them after the step quiesces.
//
//   * LatencyBuckets — a shared, multi-writer-safe coarse histogram (one
//     relaxed fetch_add per record into a bit_width bucket, the obs-layer
//     bucketing) that a monitor thread can snapshot mid-flight for the
//     periodic JSONL interval lines. Quantiles from it are estimates with
//     bucket-granular (~2x) resolution, clearly labelled *_est in the output;
//     the exact per-step numbers always come from LatencyHistogram.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

namespace seer::util {

class LatencyHistogram {
 public:
  void record(std::uint64_t v) {
    samples_.push_back(v);
    sum_ += v;
  }

  void merge(const LatencyHistogram& other) {
    samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
    sum_ += other.sum_;
  }

  void reserve(std::size_t n) { samples_.reserve(n); }
  [[nodiscard]] std::uint64_t count() const noexcept { return samples_.size(); }
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept {
    return samples_.empty() ? 0.0
                            : static_cast<double>(sum_) /
                                  static_cast<double>(samples_.size());
  }
  [[nodiscard]] std::uint64_t max() const noexcept {
    return samples_.empty() ? 0 : *std::max_element(samples_.begin(), samples_.end());
  }

  // Nearest-rank quantile: the ceil(q*N)-th smallest sample (1-based),
  // clamped to [1, N]. Exact — q=0.5 of {1,2,3,4} is 2, q=1 is the max.
  // Returns 0 for an empty histogram.
  [[nodiscard]] std::uint64_t quantile(double q) const {
    if (samples_.empty()) return 0;
    std::vector<std::uint64_t> scratch(samples_);
    const std::size_t idx = rank_of(q, scratch.size());
    std::nth_element(scratch.begin(),
                     scratch.begin() + static_cast<std::ptrdiff_t>(idx),
                     scratch.end());
    return scratch[idx];
  }

  // Several quantiles from one sort (the step-end summary asks for five).
  [[nodiscard]] std::vector<std::uint64_t> quantiles(
      std::span<const double> qs) const {
    std::vector<std::uint64_t> out(qs.size(), 0);
    if (samples_.empty()) return out;
    std::vector<std::uint64_t> sorted(samples_);
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i < qs.size(); ++i) {
      out[i] = sorted[rank_of(qs[i], sorted.size())];
    }
    return out;
  }

 private:
  // 0-based index of the nearest-rank order statistic for q over n samples.
  [[nodiscard]] static std::size_t rank_of(double q, std::size_t n) noexcept {
    if (q <= 0.0) return 0;
    const double r = std::ceil(q * static_cast<double>(n));
    if (r <= 1.0) return 0;
    if (r >= static_cast<double>(n)) return n - 1;
    return static_cast<std::size_t>(r) - 1;
  }

  std::vector<std::uint64_t> samples_;
  std::uint64_t sum_ = 0;
};

// Bucket b counts samples v with bit_width(v) == b: bucket 0 is exactly 0,
// bucket b >= 1 spans [2^(b-1), 2^b) — the obs-layer convention.
inline constexpr std::size_t kLatencyBucketCount = 65;
using LatencyBucketCounts = std::array<std::uint64_t, kLatencyBucketCount>;

class LatencyBuckets {
 public:
  void record(std::uint64_t v) noexcept {
    buckets_[static_cast<std::size_t>(std::bit_width(v))].fetch_add(
        1, std::memory_order_relaxed);
  }

  // Safe while writers keep recording: each bucket value read is a valid,
  // possibly slightly stale count.
  [[nodiscard]] LatencyBucketCounts snapshot() const noexcept {
    LatencyBucketCounts out{};
    for (std::size_t i = 0; i < kLatencyBucketCount; ++i) {
      out[i] = buckets_[i].load(std::memory_order_relaxed);
    }
    return out;
  }

 private:
  std::array<std::atomic<std::uint64_t>, kLatencyBucketCount> buckets_{};
};

// Quantile estimate over bucketed counts (e.g. the delta of two
// LatencyBuckets snapshots): finds the bucket holding the nearest-rank
// sample and interpolates linearly inside its [2^(b-1), 2^b) value range by
// the rank's position within the bucket. Resolution is bucket-granular; the
// true quantile lies within the returned bucket's bounds. Returns 0 when the
// counts are empty.
[[nodiscard]] inline double bucket_quantile_estimate(
    const LatencyBucketCounts& counts, double q) {
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  double rank = std::ceil(q * static_cast<double>(total));
  if (rank < 1.0) rank = 1.0;
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < kLatencyBucketCount; ++b) {
    if (counts[b] == 0) continue;
    if (static_cast<double>(cum + counts[b]) >= rank) {
      if (b == 0) return 0.0;
      const double lo = std::ldexp(1.0, static_cast<int>(b) - 1);
      const double hi =
          b >= 64 ? std::ldexp(1.0, 64) : std::ldexp(1.0, static_cast<int>(b));
      const double within =
          (rank - static_cast<double>(cum)) / static_cast<double>(counts[b]);
      return lo + (hi - lo) * within;
    }
    cum += counts[b];
  }
  return std::ldexp(1.0, 64);  // unreachable with consistent counts
}

}  // namespace seer::util
