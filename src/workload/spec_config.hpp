// JSON → stamp::WorkloadSpec.
//
// The declarative geometry the compiled-in STAMP stand-ins are written in
// (stamp/spec.hpp) becomes expressible as data: regions, transaction types
// with per-region access counts, and phase mixes. Used by the "spec"
// generator directly and by "phased" for each of its regimes (registry.hpp
// documents the enclosing config schema; DESIGN.md §11 shows a full
// example).
#pragma once

#include <string>

#include "stamp/spec.hpp"
#include "util/json.hpp"

namespace seer::workload {

// Parses one spec object. `origin` prefixes every diagnostic (e.g.
// "params.phases[0].spec"); `default_name` applies when the object carries
// no "name". Throws ConfigError naming the bad key on any violation.
[[nodiscard]] stamp::WorkloadSpec spec_from_json(const util::json::Value& obj,
                                                 const std::string& origin,
                                                 const std::string& default_name);

}  // namespace seer::workload
