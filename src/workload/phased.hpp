// Phased workload: config-driven contention-regime shifts.
//
// A run is divided at progress boundaries into regimes, each a full
// stamp-style spec (stamp/spec.hpp geometry). All regimes share one
// transaction-type vocabulary and one region layout — same shared memory,
// different behavior — so what shifts at a boundary is the conflict
// structure itself: which type pairs collide, how hot each region runs.
// This is the workload that stresses Seer's stats decay and re-inference
// (ROADMAP item 4): the scheduler's learned pair probabilities must chase a
// moving ground truth.
//
// Config (the "params" object of a "phased" registry config):
//   {
//     "think_mean": 300,                       // optional, cycles
//     "phases": [
//       {"until": 0.5, "spec": { ...spec_config.hpp schema... }},
//       {"until": 1.0, "spec": { ... }}
//     ]
//   }
// "until" values are strictly increasing, in (0, 1], and the last must
// reach 1.0. Regime specs must agree on type names and on region
// name/size/per_thread layout (zipf skew and accesses may differ).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "stamp/spec.hpp"
#include "util/json.hpp"
#include "workload/generator.hpp"

namespace seer::workload {

class PhasedWorkload final : public Generator {
 public:
  struct Regime {
    double until = 1.0;  // active while progress < until
    stamp::WorkloadSpec spec;
  };

  // Validated construction from the params JSON. Throws ConfigError naming
  // the bad key. `origin` prefixes diagnostics (usually "params").
  [[nodiscard]] static std::unique_ptr<PhasedWorkload> from_json(
      const util::json::Value& params, const std::string& origin,
      const std::string& name, std::size_t n_threads);

  PhasedWorkload(std::string name, std::vector<Regime> regimes,
                 std::uint64_t think_mean, std::size_t n_threads);

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] std::size_t n_types() const override;
  [[nodiscard]] const std::string& type_name(core::TxTypeId t) const override;

  void next(core::ThreadId thread, double progress, util::Xoshiro256& rng,
            TxInstance& out) override;
  [[nodiscard]] std::uint64_t think_time(core::ThreadId thread,
                                         util::Xoshiro256& rng) override;

  // Which regime is active at `progress` (tests pin boundary semantics).
  [[nodiscard]] std::size_t regime_index(double progress) const noexcept;
  [[nodiscard]] std::size_t n_regimes() const noexcept { return regimes_.size(); }

 private:
  std::string name_;
  std::uint64_t think_mean_;
  std::vector<double> until_;
  std::vector<std::unique_ptr<stamp::SpecWorkload>> regimes_;
};

}  // namespace seer::workload
