#include "workload/spec_config.hpp"

#include <cstdint>
#include <limits>

#include "workload/json_util.hpp"

namespace seer::workload {

using jsonu::Value;

namespace {

std::uint16_t small_count(const Value& obj, const char* key, std::uint16_t fallback,
                          const std::string& origin) {
  const std::uint64_t v = jsonu::opt_u64(obj, key, fallback, origin);
  if (v > std::numeric_limits<std::uint16_t>::max()) {
    jsonu::fail(jsonu::sub(origin, key), "must be at most 65535");
  }
  return static_cast<std::uint16_t>(v);
}

std::vector<double> parse_mix(const Value& arr, std::size_t n_types,
                              const std::string& origin) {
  if (arr.array.size() != n_types) {
    jsonu::fail(origin, "must list one weight per transaction type (" +
                            std::to_string(n_types) + " types, got " +
                            std::to_string(arr.array.size()) + ")");
  }
  std::vector<double> mix;
  mix.reserve(arr.array.size());
  double total = 0.0;
  for (std::size_t i = 0; i < arr.array.size(); ++i) {
    const Value& w = arr.array[i];
    if (!w.is_number() || w.number < 0.0) {
      jsonu::fail(jsonu::at(origin, i), "must be a non-negative number");
    }
    mix.push_back(w.number);
    total += w.number;
  }
  if (total <= 0.0) jsonu::fail(origin, "weights must not all be zero");
  return mix;
}

}  // namespace

stamp::WorkloadSpec spec_from_json(const Value& obj, const std::string& origin,
                                   const std::string& default_name) {
  jsonu::reject_unknown(
      obj, {"name", "think_mean", "regions", "types", "phases", "mix"}, origin);

  stamp::WorkloadSpec spec;
  spec.name = default_name;
  if (const Value* n = obj.find("name"); n != nullptr) {
    if (!n->is_string()) jsonu::fail(jsonu::sub(origin, "name"), "must be a string");
    spec.name = n->string;
  }
  spec.think_mean = jsonu::opt_u64(obj, "think_mean", spec.think_mean, origin);

  // Regions.
  const Value& regions = jsonu::require_array(obj, "regions", origin);
  if (regions.array.empty()) {
    jsonu::fail(jsonu::sub(origin, "regions"), "must not be empty");
  }
  for (std::size_t i = 0; i < regions.array.size(); ++i) {
    const std::string ro = jsonu::at(jsonu::sub(origin, "regions"), i);
    const Value& r = regions.array[i];
    jsonu::reject_unknown(r, {"name", "lines", "zipf_skew", "per_thread"}, ro);
    stamp::Region region;
    region.name = jsonu::require_str(r, "name", ro);
    const std::uint64_t lines = jsonu::require_u64(r, "lines", ro);
    if (lines == 0 || lines > std::numeric_limits<std::uint32_t>::max()) {
      jsonu::fail(jsonu::sub(ro, "lines"), "must be in [1, 2^32)");
    }
    region.lines = static_cast<std::uint32_t>(lines);
    region.zipf_skew = jsonu::opt_num(r, "zipf_skew", 0.0, ro);
    if (region.zipf_skew < 0.0) {
      jsonu::fail(jsonu::sub(ro, "zipf_skew"), "must be non-negative");
    }
    region.per_thread = jsonu::opt_bool(r, "per_thread", false, ro);
    for (const stamp::Region& prev : spec.regions) {
      if (prev.name == region.name) {
        jsonu::fail(jsonu::sub(ro, "name"),
                    "duplicate region name \"" + region.name + "\"");
      }
    }
    spec.regions.push_back(std::move(region));
  }

  // Transaction types, with region accesses referenced by region *name*.
  const Value& types = jsonu::require_array(obj, "types", origin);
  if (types.array.empty()) jsonu::fail(jsonu::sub(origin, "types"), "must not be empty");
  for (std::size_t i = 0; i < types.array.size(); ++i) {
    const std::string to = jsonu::at(jsonu::sub(origin, "types"), i);
    const Value& t = types.array[i];
    jsonu::reject_unknown(
        t, {"name", "duration_mean", "duration_jitter", "accesses"}, to);
    stamp::TxTypeSpec ts;
    ts.name = jsonu::require_str(t, "name", to);
    ts.duration_mean = jsonu::require_u64(t, "duration_mean", to);
    if (ts.duration_mean == 0) {
      jsonu::fail(jsonu::sub(to, "duration_mean"), "must be at least 1");
    }
    ts.duration_jitter = jsonu::opt_num(t, "duration_jitter", 0.3, to);
    if (ts.duration_jitter < 0.0 || ts.duration_jitter >= 1.0) {
      jsonu::fail(jsonu::sub(to, "duration_jitter"), "must be in [0, 1)");
    }
    const Value& accesses = jsonu::require_array(t, "accesses", to);
    for (std::size_t j = 0; j < accesses.array.size(); ++j) {
      const std::string ao = jsonu::at(jsonu::sub(to, "accesses"), j);
      const Value& a = accesses.array[j];
      jsonu::reject_unknown(a, {"region", "reads", "writes"}, ao);
      const std::string& rname = jsonu::require_str(a, "region", ao);
      stamp::RegionAccess acc;
      bool found = false;
      for (std::size_t ri = 0; ri < spec.regions.size(); ++ri) {
        if (spec.regions[ri].name == rname) {
          acc.region = static_cast<std::uint16_t>(ri);
          found = true;
          break;
        }
      }
      if (!found) {
        jsonu::fail(jsonu::sub(ao, "region"), "unknown region \"" + rname + "\"");
      }
      acc.reads = small_count(a, "reads", 0, ao);
      acc.writes = small_count(a, "writes", 0, ao);
      ts.accesses.push_back(acc);
    }
    for (const stamp::TxTypeSpec& prev : spec.types) {
      if (prev.name == ts.name) {
        jsonu::fail(jsonu::sub(to, "name"), "duplicate type name \"" + ts.name + "\"");
      }
    }
    spec.types.push_back(std::move(ts));
  }

  // Mixes: either a "phases" schedule or the single-phase "mix" shorthand
  // (or neither — SpecWorkload defaults to one uniform phase).
  if (obj.find("phases") != nullptr && obj.find("mix") != nullptr) {
    jsonu::fail(origin, "\"phases\" and \"mix\" are mutually exclusive");
  }
  if (const Value* mix = obj.find("mix"); mix != nullptr) {
    if (!mix->is_array()) jsonu::fail(jsonu::sub(origin, "mix"), "must be an array");
    stamp::Phase p;
    p.fraction = 1.0;
    p.mix = parse_mix(*mix, spec.types.size(), jsonu::sub(origin, "mix"));
    spec.phases.push_back(std::move(p));
  } else if (const Value* phases = obj.find("phases"); phases != nullptr) {
    if (!phases->is_array() || phases->array.empty()) {
      jsonu::fail(jsonu::sub(origin, "phases"), "must be a non-empty array");
    }
    double total = 0.0;
    for (std::size_t i = 0; i < phases->array.size(); ++i) {
      const std::string po = jsonu::at(jsonu::sub(origin, "phases"), i);
      const Value& ph = phases->array[i];
      jsonu::reject_unknown(ph, {"fraction", "mix"}, po);
      stamp::Phase p;
      p.fraction = jsonu::require_num(ph, "fraction", po);
      if (p.fraction <= 0.0 || p.fraction > 1.0) {
        jsonu::fail(jsonu::sub(po, "fraction"), "must be in (0, 1]");
      }
      total += p.fraction;
      p.mix = parse_mix(jsonu::require_array(ph, "mix", po), spec.types.size(),
                        jsonu::sub(po, "mix"));
      spec.phases.push_back(std::move(p));
    }
    if (total < 0.999 || total > 1.001) {
      jsonu::fail(jsonu::sub(origin, "phases"),
                  "fractions must sum to 1 (got " + std::to_string(total) + ")");
    }
  }

  return spec;
}

}  // namespace seer::workload
