// Open-loop traffic description: the `open_loop` section of a workload
// config (DESIGN.md §12).
//
// A closed-loop driver (everything in bench/) issues the next transaction
// only after the previous one finished, so the system can never fall
// behind — throughput numbers survive, queueing never shows. An open-loop
// driver issues requests on a wall-clock (or virtual-clock) schedule that
// does not care whether the service keeps up; latency then includes queue
// wait, and overload appears as growing tails and shed requests instead of
// silently reduced offered load. The schedule here is:
//
//   rate(t) = base_rate * diurnal(t) * burst(t)
//
//   diurnal(t) = 1 + amplitude * sin(2*pi*t / period)     (optional)
//   burst(t)   = multiplier while t in [at, at+duration)  (each burst)
//
// sampled either as a constant process (gaps of exactly 1/rate(t)) or a
// non-homogeneous Poisson process (exponential gaps at the instantaneous
// rate). A `sweep` replaces the single base rate with a stepped series —
// one serve step per rate — which is how the harness finds the saturation
// knee.
//
// All validation happens at config-parse time and throws ConfigError naming
// the offending key (the registry front-door contract).
#pragma once

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "util/json.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"

namespace seer::workload {

struct Burst {
  double at_s = 0.0;        // offset from step start (warmup included)
  double duration_s = 0.0;  // > 0
  double multiplier = 1.0;  // > 0; < 1 models a dip
};

struct Diurnal {
  double period_s = 0.0;   // 0 = disabled
  double amplitude = 0.0;  // in [0, 1)
};

struct OpenLoopConfig {
  // Exactly one of `rate` (single-step) or `sweep_rates` (stepped) is set.
  double rate = 0.0;                // requests/second, > 0 when single-step
  std::vector<double> sweep_rates;  // strictly increasing, all > 0

  enum class Process : std::uint8_t { kConstant, kPoisson };
  Process process = Process::kPoisson;

  double duration_s = 2.0;  // measured window per rate step
  double warmup_s = 0.0;    // excluded from step statistics
  std::uint64_t queue_capacity = 4096;  // admission queue bound (shed beyond)
  std::uint64_t workers = 4;            // service threads (CLI can override)
  std::uint64_t emit_interval_ms = 100; // JSONL interval-line cadence
  std::uint64_t table_words = 1u << 16; // TmWord table the requests run over
  // Deterministic backend: modelled cycles -> virtual nanoseconds.
  double cycles_per_us = 1000.0;

  Diurnal diurnal;
  std::vector<Burst> bursts;

  // Saturation-knee criteria for the step summary: the knee is the first
  // swept rate whose p99 exceeds knee_p99_ms (0 disables the latency
  // criterion) or whose rejected fraction exceeds knee_rejected_fraction.
  double knee_p99_ms = 0.0;
  double knee_rejected_fraction = 0.01;

  // The rates the harness actually serves, in step order.
  [[nodiscard]] std::vector<double> rates() const {
    return sweep_rates.empty() ? std::vector<double>{rate} : sweep_rates;
  }

  // Parses and validates one `open_loop` object; `origin` prefixes
  // diagnostics ("serve.json: open_loop"). Throws ConfigError.
  [[nodiscard]] static OpenLoopConfig from_json(const util::json::Value& obj,
                                                const std::string& origin);
};

[[nodiscard]] const char* to_string(OpenLoopConfig::Process p) noexcept;

// The arrival process for one rate step: deterministic given (config, base
// rate, rng seed), which is the deterministic-mode byte-identity contract.
class ArrivalSchedule {
 public:
  ArrivalSchedule(const OpenLoopConfig& cfg, double base_rate) noexcept
      : cfg_(&cfg), base_rate_(base_rate) {}

  // Instantaneous offered rate (requests/second) at `t_s` since step start.
  [[nodiscard]] double rate_at(double t_s) const noexcept;

  // Gap (ns) from an arrival at `t_s` to the next one. Always >= 1.
  [[nodiscard]] std::uint64_t next_gap_ns(double t_s, util::Xoshiro256& rng) const;

  [[nodiscard]] double base_rate() const noexcept { return base_rate_; }

 private:
  const OpenLoopConfig* cfg_;
  double base_rate_;
};

}  // namespace seer::workload
