// Modelled binary-search-tree workload: add / remove / contains.
//
// The Seer-vs-baselines data-structure exhibit ROADMAP item 3 names (after
// the LocklessTransactions TATAS-vs-HLE-vs-RTM experiment). A static BST
// over `keys` keys is built once from a seeded random insertion order; each
// node occupies one cache line. An operation on key k reads the root→k
// search path; add and remove additionally write k's node and its parent
// (the link update). Conflicts therefore have genuine tree geometry: a
// mutation near the root invalidates every concurrent search whose path
// crosses it, while deep-leaf mutations conflict with almost nothing —
// exactly the asymmetric per-type conflict structure Seer's inference is
// supposed to discover (contains vs add/remove, not contains vs contains).
//
// Config (the "params" object of a "bst" registry config), all optional:
//   {
//     "keys": 1024,          // tree size (cache lines), >= 2
//     "mix": {"add": 2, "remove": 2, "contains": 6},
//     "key_skew": 0.8,       // Zipf skew over keys; 0 = uniform
//     "base_cost": 150,      // cycles per op before the walk
//     "node_cost": 60,       // cycles per node on the search path
//     "think_mean": 200,     // exponential inter-transaction gap
//     "shape_seed": 1        // insertion-order seed (tree shape)
//   }
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/json.hpp"
#include "util/zipf.hpp"
#include "workload/generator.hpp"

namespace seer::workload {

class BstWorkload final : public Generator {
 public:
  struct Config {
    std::uint32_t keys = 1024;
    double mix_add = 2.0;
    double mix_remove = 2.0;
    double mix_contains = 6.0;
    double key_skew = 0.8;
    std::uint64_t base_cost = 150;
    std::uint64_t node_cost = 60;
    std::uint64_t think_mean = 200;
    std::uint64_t shape_seed = 1;
  };

  // Validated construction from the params JSON. Throws ConfigError naming
  // the bad key.
  [[nodiscard]] static std::unique_ptr<BstWorkload> from_json(
      const util::json::Value& params, const std::string& origin,
      const std::string& name);

  explicit BstWorkload(Config cfg, std::string name = "bst");

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] std::size_t n_types() const override { return 3; }
  [[nodiscard]] const std::string& type_name(core::TxTypeId t) const override;

  void next(core::ThreadId thread, double progress, util::Xoshiro256& rng,
            TxInstance& out) override;
  [[nodiscard]] std::uint64_t think_time(core::ThreadId thread,
                                         util::Xoshiro256& rng) override;

  // Tree introspection for tests: number of nodes on the root→key path
  // (the root is depth 1) and the key's parent (itself for the root).
  [[nodiscard]] std::size_t depth(std::uint32_t key) const;
  [[nodiscard]] std::uint32_t parent(std::uint32_t key) const {
    return parent_[key];
  }

  static constexpr core::TxTypeId kAdd = 0;
  static constexpr core::TxTypeId kRemove = 1;
  static constexpr core::TxTypeId kContains = 2;

 private:
  Config cfg_;
  std::string name_;
  // Root→key paths, flattened: path_lines_[path_off_[k] .. path_off_[k+1]).
  std::vector<std::uint32_t> path_off_;
  std::vector<std::uint32_t> path_lines_;
  std::vector<std::uint32_t> parent_;
  std::unique_ptr<util::Zipf> zipf_;  // null when key_skew == 0
};

}  // namespace seer::workload
