// Strict-extraction helpers over the util::json DOM for workload configs.
//
// Every helper takes an `origin` — the dotted path of the value being read
// (e.g. "params.phases[1].spec") — and throws ConfigError naming exactly the
// bad key, so a typo in a config file surfaces as one actionable line
// instead of a default silently applied (the failure mode `Value::num(key,
// fallback)` was designed for, and precisely wrong here).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>

#include "util/json.hpp"
#include "workload/generator.hpp"

namespace seer::workload::jsonu {

using util::json::Value;

[[noreturn]] inline void fail(const std::string& origin, const std::string& msg) {
  throw ConfigError("workload config: " + origin + ": " + msg);
}

inline std::string sub(const std::string& origin, std::string_view key) {
  return origin.empty() ? std::string(key) : origin + "." + std::string(key);
}

inline std::string at(const std::string& origin, std::size_t index) {
  return origin + "[" + std::to_string(index) + "]";
}

inline const Value& require(const Value& obj, const char* key,
                            const std::string& origin) {
  if (!obj.is_object()) fail(origin, "expected an object");
  const Value* v = obj.find(key);
  if (v == nullptr) fail(origin, std::string("missing required key \"") + key + "\"");
  return *v;
}

inline double require_num(const Value& obj, const char* key,
                          const std::string& origin) {
  const Value& v = require(obj, key, origin);
  if (!v.is_number()) fail(sub(origin, key), "must be a number");
  return v.number;
}

inline std::uint64_t require_u64(const Value& obj, const char* key,
                                 const std::string& origin) {
  const Value& v = require(obj, key, origin);
  if (!v.is_number() || v.number < 0.0) fail(sub(origin, key), "must be a non-negative integer");
  return v.as_u64();
}

inline const std::string& require_str(const Value& obj, const char* key,
                                      const std::string& origin) {
  const Value& v = require(obj, key, origin);
  if (!v.is_string()) fail(sub(origin, key), "must be a string");
  return v.string;
}

inline const Value& require_array(const Value& obj, const char* key,
                                  const std::string& origin) {
  const Value& v = require(obj, key, origin);
  if (!v.is_array()) fail(sub(origin, key), "must be an array");
  return v;
}

inline const Value& require_object(const Value& obj, const char* key,
                                   const std::string& origin) {
  const Value& v = require(obj, key, origin);
  if (!v.is_object()) fail(sub(origin, key), "must be an object");
  return v;
}

// Optional scalar reads: absent → fallback, present-but-mistyped → error.
inline double opt_num(const Value& obj, const char* key, double fallback,
                      const std::string& origin) {
  const Value* v = obj.find(key);
  if (v == nullptr) return fallback;
  if (!v->is_number()) fail(sub(origin, key), "must be a number");
  return v->number;
}

inline std::uint64_t opt_u64(const Value& obj, const char* key, std::uint64_t fallback,
                             const std::string& origin) {
  const Value* v = obj.find(key);
  if (v == nullptr) return fallback;
  if (!v->is_number() || v->number < 0.0) fail(sub(origin, key), "must be a non-negative integer");
  return v->as_u64();
}

inline bool opt_bool(const Value& obj, const char* key, bool fallback,
                     const std::string& origin) {
  const Value* v = obj.find(key);
  if (v == nullptr) return fallback;
  if (!v->is_bool()) fail(sub(origin, key), "must be true or false");
  return v->boolean;
}

// Rejects keys outside `allowed` so config typos ("regons") fail loudly.
inline void reject_unknown(const Value& obj, std::initializer_list<const char*> allowed,
                           const std::string& origin) {
  if (!obj.is_object()) fail(origin, "expected an object");
  for (const auto& [k, v] : obj.object) {
    (void)v;
    bool ok = false;
    for (const char* a : allowed) {
      if (k == a) {
        ok = true;
        break;
      }
    }
    if (!ok) fail(origin, "unknown key \"" + k + "\"");
  }
}

}  // namespace seer::workload::jsonu
