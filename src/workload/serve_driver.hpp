// Open-loop serving harness (DESIGN.md §12): runs a registered generator as
// a long-lived transactional service and measures end-to-end latency.
//
// Where threaded_driver answers "how fast can N threads push transactions
// through", this driver answers the service operator's question: at a given
// *offered* load, what latency do requests see, how deep does the admission
// queue get, and when does the system saturate? Per rate step it:
//
//   producer ──MpmcQueue──▶ workers(ThreadedExecutor over SoftHtm)
//
// The producer paces arrivals from an ArrivalSchedule (constant or Poisson
// gaps, diurnal/burst modulation), stamps each request with its enqueue
// time, and *never blocks*: a full queue is a shed, counted as `rejected`.
// Workers pop, execute the instance via the shared run_instance body, and
// record (completion - enqueue) — queue wait included — into exact
// per-worker latency histograms. Requests that arrive during `warmup_s`
// carry counted=false and are executed but excluded from step statistics.
//
// Two backends share all accounting and JSONL formatting:
//
//   * real          — wall-clock arrivals, real threads, real SoftHtm
//                     transactions. The numbers are about this machine.
//   * deterministic — a virtual-clock M/G/k queueing simulation: same
//                     schedule, same shed policy, service time taken from
//                     the instance's modelled `duration` cycles via
//                     cycles_per_us. Output is a pure function of (config,
//                     seed), byte-identical across runs and --jobs — which
//                     is what CI gates against a checked-in baseline.
//
// Output is JSONL: one header line, periodic `interval` lines (queue depth,
// rate, bucket-estimate p50/p99), one `step` line per rate with exact
// nearest-rank quantiles, and a `summary` line naming the saturation knee —
// the first swept rate whose p99 or rejected fraction crosses the config's
// criteria. scripts/process_serve_logs.py consumes exactly this stream.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/policies.hpp"
#include "workload/open_loop.hpp"
#include "workload/registry.hpp"

namespace seer::workload {

struct ServeOptions {
  rt::PolicyConfig policy{};
  std::size_t workers_override = 0;  // 0 = config's `workers`
  std::size_t physical_cores = 0;    // 0 = worker count
  std::uint64_t seed = 1;
  bool deterministic = false;
  // Deterministic mode only: rate steps simulated concurrently. Output is
  // buffered per step and concatenated in step order, so any value produces
  // identical bytes. Ignored (steps are inherently serial) in real mode.
  std::size_t jobs = 1;
  double duration_override_s = 0.0;  // 0 = config; replaces duration_s
  double rate_override = 0.0;        // 0 = config; replaces rate AND sweep
  // Real mode: append per-interval counter deltas (rt./htm./seer. metrics)
  // to the interval JSONL lines. Deterministic mode ignores this so its
  // output cannot depend on SEER_OBS.
  bool emit_metrics = false;
};

// Per-rate-step statistics. The counters span the whole step window (warmup
// included — both backends count identically); the latency fields cover only
// *counted* requests, those that arrived after warmup_s. Latencies are
// end-to-end nanoseconds: enqueue to commit (real) or to service completion
// (deterministic), queue wait included. Requests still queued when the step
// window closes are drained and their latencies kept — they arrived inside
// the window, so dropping them would censor the tail.
struct StepStats {
  double offered_rate = 0.0;  // base rate of this step (requests/second)
  double duration_s = 0.0;    // measured window (excludes warmup)
  std::uint64_t arrivals = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;  // shed at the admission queue
  std::uint64_t completed = 0;
  double rejected_fraction = 0.0;  // rejected / arrivals
  double throughput_rps = 0.0;     // completed / duration_s
  std::uint64_t latency_count = 0;
  double latency_mean_ns = 0.0;
  std::uint64_t p50_ns = 0;
  std::uint64_t p90_ns = 0;
  std::uint64_t p99_ns = 0;
  std::uint64_t p999_ns = 0;
  std::uint64_t max_ns = 0;
  std::uint64_t queue_depth_peak = 0;
  std::uint64_t sgl_commits = 0;  // real mode: counted commits via fallback
  double sgl_fraction = 0.0;      // sgl_commits / completed
};

struct ServeReport {
  std::vector<StepStats> steps;  // in sweep order
  // First swept rate crossing the config's knee criteria; 0 when the system
  // kept up through the whole sweep.
  double knee_rate = 0.0;
  bool saturated = false;
  std::string jsonl;  // the full log: header / interval* / step* / summary
};

// Serves every rate step of `ol` using `desc`'s generator. The Desc's own
// open_loop pointer is NOT consulted — callers pass the section explicitly
// so overrides stay visible at the call site. Throws ConfigError on
// impossible combinations (none today; reserved for CLI overrides).
[[nodiscard]] ServeReport run_serve(const Desc& desc, const OpenLoopConfig& ol,
                                    const ServeOptions& opts);

}  // namespace seer::workload
