// Runs any registered generator on the real-threads executor.
//
// The machine simulator consumes generators natively (sim::Machine takes a
// Workload); this driver is the ThreadedExecutor-side counterpart. Each
// thread follows the generator contract — init, think, next — and executes
// the sampled instance as a real transaction over a TmWord table: every
// read line is tx.read, every write line a read-modify-write increment.
// Line ids map onto the caller's word table modulo its size, so the
// generator's conflict geometry (which lines collide) becomes genuine
// memory conflicts under SoftHtm, at whatever table scale the embedder
// picks.
//
// The increment bodies make runs checkable: the returned totals satisfy
// sum(words) - sum(initial words) == total_writes, and with per-thread
// TxLogs installed the offline opacity verifier applies unchanged (the
// property-test sweep drives exactly this).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "htm/soft_htm.hpp"
#include "obs/metrics.hpp"
#include "runtime/threaded_executor.hpp"
#include "workload/generator.hpp"

namespace seer::workload {

struct ThreadedRunOptions {
  std::size_t n_threads = 2;
  std::size_t physical_cores = 2;
  // Per-thread transaction cap; a generator's end-of-stream can end a
  // thread earlier.
  std::uint64_t txs_per_thread = 500;
  std::uint64_t seed = 1;
  rt::PolicyConfig policy{};

  // Optional hooks, each either empty or sized n_threads (indexed by
  // ThreadId). Raw pointers may be null.
  std::vector<htm::TxLog*> tx_logs;
  std::vector<htm::FaultInjector*> fault_injectors;
  obs::MetricsRegistry* metrics = nullptr;  // frozen by the driver before spawn
};

// Executes one sampled instance as a real transaction on handle `h`: every
// read line is tx.read, every write line a read-modify-write increment, with
// line ids mapped onto `words` modulo its size. This is the one body shape
// both drivers use — the closed-loop benchmark driver below and the
// open-loop serve driver (serve_driver.hpp) — so latency and throughput
// numbers from either are about the same memory traffic.
inline rt::CommitMode run_instance(rt::ThreadedExecutor::ThreadHandle& h,
                                   std::span<htm::TmWord> words,
                                   const TxInstance& inst) {
  return h.run(inst.type, [&](auto& tx) {
    for (const std::uint32_t line : inst.reads) {
      (void)tx.read(words[line % words.size()]);
    }
    for (const std::uint32_t line : inst.writes) {
      htm::TmWord& w = words[line % words.size()];
      const std::uint64_t v = tx.read(w);
      tx.write(w, v + 1);
    }
  });
}

struct ThreadedRunResult {
  std::uint64_t txs = 0;           // committed transactions (all threads)
  std::uint64_t total_writes = 0;  // increments applied by committed bodies
  std::uint64_t exhausted_threads = 0;  // threads ended by end-of-stream
};

// Executes `gen` over `words` (caller-owned so opacity snapshots can be
// taken against the same addresses). Blocks until every thread finishes.
[[nodiscard]] ThreadedRunResult run_threaded(Generator& gen, htm::SoftHtm& tm,
                                             std::span<htm::TmWord> words,
                                             const ThreadedRunOptions& opts);

}  // namespace seer::workload
