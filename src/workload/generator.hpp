// The pluggable workload-generator API (DESIGN.md §11).
//
// A *generator* is the thing an executor pulls transaction instances from:
// `init(thread)` once per thread, then an alternation of
// `think_time(thread, rng)` and `next(thread, progress, rng, out)` until the
// executor's transaction cap is reached or the generator reports
// `exhausted(thread)` (end of stream). That contract is exactly
// `sim::Workload` — both the machine simulator and the real-threads driver
// already consume it — so Generator is the same type under the name the
// registry and JSON config front-end (registry.hpp) trade in.
//
// Scenarios are data: a generator is constructed from a name
// ("genome", "phased", "bst", "trace-replay", ...) plus a JSON params
// object, so new scenarios are config files, not recompiles.
#pragma once

#include <stdexcept>
#include <string>

#include "sim/workload.hpp"

namespace seer::workload {

using Generator = sim::Workload;
using TxInstance = sim::TxInstance;

// A malformed workload config or trace file. The message always names the
// offending key/path (e.g. `workload config intruder.json: phases[2].until:
// must be in (0, 1]`) so CLI consumers can print it verbatim and exit.
class ConfigError : public std::runtime_error {
 public:
  explicit ConfigError(const std::string& msg) : std::runtime_error(msg) {}
};

}  // namespace seer::workload
