#include "workload/threaded_driver.hpp"

#include <atomic>
#include <cassert>
#include <thread>

#include "util/rng.hpp"

namespace seer::workload {

ThreadedRunResult run_threaded(Generator& gen, htm::SoftHtm& tm,
                               std::span<htm::TmWord> words,
                               const ThreadedRunOptions& opts) {
  assert(!words.empty());
  assert(opts.tx_logs.empty() || opts.tx_logs.size() == opts.n_threads);
  assert(opts.fault_injectors.empty() ||
         opts.fault_injectors.size() == opts.n_threads);

  rt::ThreadedExecutor::Options eopts;
  eopts.n_threads = opts.n_threads;
  eopts.n_types = gen.n_types();
  eopts.physical_cores = opts.physical_cores;
  eopts.metrics = opts.metrics;
  rt::ThreadedExecutor exec(tm, opts.policy, eopts);
  if (opts.metrics != nullptr) opts.metrics->freeze();

  std::vector<std::uint64_t> txs(opts.n_threads, 0);
  std::vector<std::uint64_t> writes(opts.n_threads, 0);
  std::vector<std::uint8_t> ended_early(opts.n_threads, 0);
  std::atomic<std::size_t> ready{0};
  std::vector<std::thread> threads;
  threads.reserve(opts.n_threads);
  for (std::size_t t = 0; t < opts.n_threads; ++t) {
    threads.emplace_back([&, t] {
      const auto id = static_cast<core::ThreadId>(t);
      auto h = exec.make_handle(id);
      if (!opts.fault_injectors.empty() && opts.fault_injectors[t] != nullptr) {
        h->set_fault_injector(opts.fault_injectors[t]);
      }
      if (!opts.tx_logs.empty() && opts.tx_logs[t] != nullptr) {
        h->set_tx_log(opts.tx_logs[t]);
      }
      gen.init(id);
      // Start together so few-core hosts still overlap transactions.
      ready.fetch_add(1);
      while (ready.load() < opts.n_threads) std::this_thread::yield();

      util::Xoshiro256 rng(opts.seed ^ (0x9e3779b97f4a7c15ULL * (t + 1)));
      TxInstance inst;
      for (std::uint64_t i = 0; i < opts.txs_per_thread; ++i) {
        if (gen.exhausted(id)) {
          ended_early[t] = 1;
          break;
        }
        // The gap is modelled time; a real sleep would only slow the test.
        (void)gen.think_time(id, rng);
        const double progress = static_cast<double>(i) /
                                static_cast<double>(opts.txs_per_thread);
        gen.next(id, progress, rng, inst);
        (void)run_instance(*h, words, inst);
        ++txs[t];
        writes[t] += inst.writes.size();
      }
    });
  }
  for (auto& th : threads) th.join();

  ThreadedRunResult out;
  for (std::size_t t = 0; t < opts.n_threads; ++t) {
    out.txs += txs[t];
    out.total_writes += writes[t];
    out.exhausted_threads += ended_early[t];
  }
  return out;
}

}  // namespace seer::workload
