#include "workload/registry.hpp"

#include <algorithm>
#include <utility>

#include "stamp/spec.hpp"
#include "workload/bst.hpp"
#include "workload/json_util.hpp"
#include "workload/phased.hpp"
#include "workload/spec_config.hpp"
#include "workload/trace.hpp"

namespace seer::workload {

using jsonu::Value;

Desc::Desc(const stamp::WorkloadInfo& info)
    : name(info.name),
      bench_txs_per_thread(info.bench_txs_per_thread),
      make([spec = info.spec](std::size_t n_threads) -> std::unique_ptr<Generator> {
        return std::make_unique<stamp::SpecWorkload>(spec(), n_threads);
      }) {}

void Registry::add(std::string name, Factory factory) {
  entries_.emplace_back(std::move(name), std::move(factory));
}

const Factory* Registry::lookup(const std::string& name) const {
  for (const auto& [n, f] : entries_) {
    if (n == name) return &f;
  }
  return nullptr;
}

std::vector<std::string> Registry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [n, f] : entries_) {
    (void)f;
    out.push_back(n);
  }
  return out;
}

namespace {

// Generators that take no parameters reject a non-empty params object so a
// misplaced key fails instead of being ignored.
void require_no_params(const Value& params, const std::string& generator,
                       const std::string& origin) {
  if (params.is_object() && !params.object.empty()) {
    jsonu::fail(origin, "generator \"" + generator + "\" takes no params (got \"" +
                            params.object.front().first + "\")");
  }
}

Registry make_builtin_registry() {
  Registry reg;

  // The eight STAMP stand-ins: thin adapters over the compiled-in specs.
  for (const stamp::WorkloadInfo& info : stamp::all_workloads()) {
    reg.add(info.name, [info](const Value& params, const std::string& display,
                              const std::string& origin) -> Desc {
      require_no_params(params, info.name, origin);
      Desc d{info};
      if (!display.empty()) d.name = display;
      return d;
    });
  }

  // "spec": a one-off stamp-style geometry straight from JSON.
  reg.add("spec", [](const Value& params, const std::string& display,
                     const std::string& origin) -> Desc {
    auto spec = std::make_shared<stamp::WorkloadSpec>(
        spec_from_json(params, origin, display));
    return Desc(spec->name, 4000,
                [spec](std::size_t n_threads) -> std::unique_ptr<Generator> {
                  return std::make_unique<stamp::SpecWorkload>(*spec, n_threads);
                });
  });

  // "phased": contention-regime shifts at progress boundaries.
  reg.add("phased", [](const Value& params, const std::string& display,
                       const std::string& origin) -> Desc {
    const std::string name = display.empty() ? "phased" : display;
    // Validate now (config-parse time); rebuild per make with the real
    // thread count from the captured params copy.
    (void)PhasedWorkload::from_json(params, origin, name, 1);
    auto params_copy = std::make_shared<Value>(params);
    return Desc(name, 4000,
                [params_copy, name, origin](std::size_t n_threads)
                    -> std::unique_ptr<Generator> {
                  return PhasedWorkload::from_json(*params_copy, origin, name,
                                                   n_threads);
                });
  });

  // "bst": add/remove/contains over a modelled binary search tree.
  reg.add("bst", [](const Value& params, const std::string& display,
                    const std::string& origin) -> Desc {
    const std::string name = display.empty() ? "bst" : display;
    (void)BstWorkload::from_json(params, origin, name);
    auto params_copy = std::make_shared<Value>(params);
    return Desc(name, 4000,
                [params_copy, name, origin](std::size_t) -> std::unique_ptr<Generator> {
                  return BstWorkload::from_json(*params_copy, origin, name);
                });
  });

  // "trace-replay": a captured instance stream, loaded (and validated)
  // eagerly so a bad path fails at config time, not mid-sweep.
  reg.add("trace-replay", [](const Value& params, const std::string& display,
                             const std::string& origin) -> Desc {
    jsonu::reject_unknown(params, {"path"}, origin);
    const std::string& path = jsonu::require_str(params, "path", origin);
    auto trace = std::make_shared<InstanceTrace>(InstanceTrace::load(path));
    TraceReplay probe(*trace);
    const std::uint64_t txs = std::max<std::uint64_t>(
        1, probe.max_instances_per_thread());
    const std::string name = display.empty() ? probe.name() : display;
    return Desc(name, txs,
                [trace, name](std::size_t) -> std::unique_ptr<Generator> {
                  return std::make_unique<TraceReplay>(*trace, name);
                });
  });

  return reg;
}

}  // namespace

Registry& Registry::global() {
  static Registry reg = make_builtin_registry();
  return reg;
}

const std::vector<std::string>& stamp_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const stamp::WorkloadInfo& info : stamp::all_workloads()) {
      out.push_back(info.name);
    }
    return out;
  }();
  return names;
}

Desc find(const std::string& name) {
  const Factory* f = Registry::global().lookup(name);
  if (f == nullptr) {
    std::string known;
    for (const std::string& n : Registry::global().names()) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    throw ConfigError("unknown generator \"" + name + "\" (known: " + known + ")");
  }
  Value empty;
  empty.type = Value::Type::kObject;
  return (*f)(empty, "", name);
}

Desc from_config_json(const Value& doc, const std::string& origin) {
  if (!doc.is_object()) jsonu::fail(origin, "expected a JSON object");
  if (doc.find("generator") == nullptr) {
    // A raw instance trace doubles as a config: replay it.
    if (doc.find("version") != nullptr && doc.find("threads") != nullptr) {
      auto trace = std::make_shared<InstanceTrace>(InstanceTrace::parse(doc, origin));
      TraceReplay probe(*trace);
      const std::uint64_t txs =
          std::max<std::uint64_t>(1, probe.max_instances_per_thread());
      const std::string name = probe.name();
      return Desc(name, txs,
                  [trace, name](std::size_t) -> std::unique_ptr<Generator> {
                    return std::make_unique<TraceReplay>(*trace, name);
                  });
    }
    jsonu::fail(origin, "missing required key \"generator\"");
  }
  jsonu::reject_unknown(
      doc, {"generator", "name", "txs_per_thread", "params", "open_loop"},
      origin);
  const std::string& generator = jsonu::require_str(doc, "generator", origin);
  const Factory* f = Registry::global().lookup(generator);
  if (f == nullptr) {
    std::string known;
    for (const std::string& n : Registry::global().names()) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    jsonu::fail(jsonu::sub(origin, "generator"),
                "unknown generator \"" + generator + "\" (known: " + known + ")");
  }
  std::string display;
  if (const Value* n = doc.find("name"); n != nullptr) {
    if (!n->is_string()) jsonu::fail(jsonu::sub(origin, "name"), "must be a string");
    display = n->string;
  }
  Value empty_params;
  empty_params.type = Value::Type::kObject;
  const Value* params = doc.find("params");
  if (params != nullptr && !params->is_object()) {
    jsonu::fail(jsonu::sub(origin, "params"), "must be an object");
  }
  Desc d = (*f)(params != nullptr ? *params : empty_params, display,
                jsonu::sub(origin, "params"));
  d.bench_txs_per_thread =
      jsonu::opt_u64(doc, "txs_per_thread", d.bench_txs_per_thread, origin);
  if (d.bench_txs_per_thread == 0) {
    jsonu::fail(jsonu::sub(origin, "txs_per_thread"), "must be at least 1");
  }
  if (const Value* ol = doc.find("open_loop"); ol != nullptr) {
    d.open_loop = std::make_shared<const OpenLoopConfig>(
        OpenLoopConfig::from_json(*ol, jsonu::sub(origin, "open_loop")));
  }
  return d;
}

Desc from_config(const std::string& path) {
  std::string error;
  const auto doc = util::json::parse_file(path, &error);
  if (!doc) throw ConfigError("workload config " + path + ": " + error);
  return from_config_json(*doc, path);
}

Desc resolve(const std::string& name_or_path) {
  const std::string suffix = ".json";
  if (name_or_path.size() > suffix.size() &&
      name_or_path.compare(name_or_path.size() - suffix.size(), suffix.size(),
                           suffix) == 0) {
    return from_config(name_or_path);
  }
  return find(name_or_path);
}

}  // namespace seer::workload
