#include "workload/phased.hpp"

#include <algorithm>
#include <cmath>

#include "workload/json_util.hpp"
#include "workload/spec_config.hpp"

namespace seer::workload {

using jsonu::Value;

std::unique_ptr<PhasedWorkload> PhasedWorkload::from_json(const Value& params,
                                                          const std::string& origin,
                                                          const std::string& name,
                                                          std::size_t n_threads) {
  jsonu::reject_unknown(params, {"think_mean", "phases"}, origin);
  const std::uint64_t think_mean = jsonu::opt_u64(params, "think_mean", 300, origin);

  const Value& phases = jsonu::require_array(params, "phases", origin);
  if (phases.array.empty()) {
    jsonu::fail(jsonu::sub(origin, "phases"), "must not be empty");
  }
  std::vector<Regime> regimes;
  regimes.reserve(phases.array.size());
  double prev_until = 0.0;
  for (std::size_t i = 0; i < phases.array.size(); ++i) {
    const std::string po = jsonu::at(jsonu::sub(origin, "phases"), i);
    const Value& ph = phases.array[i];
    jsonu::reject_unknown(ph, {"until", "spec"}, po);
    Regime regime;
    regime.until = jsonu::require_num(ph, "until", po);
    if (regime.until <= 0.0 || regime.until > 1.0) {
      jsonu::fail(jsonu::sub(po, "until"), "must be in (0, 1]");
    }
    if (regime.until <= prev_until) {
      jsonu::fail(jsonu::sub(po, "until"), "must be strictly increasing");
    }
    prev_until = regime.until;
    const Value& spec = jsonu::require_object(ph, "spec", po);
    if (spec.find("think_mean") != nullptr) {
      jsonu::fail(jsonu::sub(jsonu::sub(po, "spec"), "think_mean"),
                  "set the phased generator's top-level think_mean instead");
    }
    regime.spec = spec_from_json(spec, jsonu::sub(po, "spec"),
                                 name + "#" + std::to_string(i));
    regimes.push_back(std::move(regime));
  }
  if (prev_until < 1.0) {
    jsonu::fail(jsonu::sub(origin, "phases"),
                "last \"until\" must reach 1.0 (got " + std::to_string(prev_until) +
                    "); the regimes must cover the whole run");
  }

  // One vocabulary, one memory: regimes must agree on the type list and on
  // region layout so a shift changes behavior, not the address space.
  const stamp::WorkloadSpec& first = regimes.front().spec;
  for (std::size_t i = 1; i < regimes.size(); ++i) {
    const std::string po = jsonu::at(jsonu::sub(origin, "phases"), i);
    const stamp::WorkloadSpec& s = regimes[i].spec;
    if (s.types.size() != first.types.size()) {
      jsonu::fail(jsonu::sub(po, "spec"),
                  "all phases must declare the same transaction types");
    }
    for (std::size_t t = 0; t < s.types.size(); ++t) {
      if (s.types[t].name != first.types[t].name) {
        jsonu::fail(jsonu::sub(po, "spec"),
                    "type " + std::to_string(t) + " is \"" + s.types[t].name +
                        "\" but phase 0 names it \"" + first.types[t].name + "\"");
      }
    }
    if (s.regions.size() != first.regions.size()) {
      jsonu::fail(jsonu::sub(po, "spec"),
                  "all phases must declare the same region layout");
    }
    for (std::size_t r = 0; r < s.regions.size(); ++r) {
      const stamp::Region& a = first.regions[r];
      const stamp::Region& b = s.regions[r];
      if (a.name != b.name || a.lines != b.lines || a.per_thread != b.per_thread) {
        jsonu::fail(jsonu::sub(po, "spec"),
                    "region \"" + b.name + "\" must match phase 0's \"" + a.name +
                        "\" in name, lines, and per_thread (zipf_skew may differ)");
      }
    }
  }

  return std::make_unique<PhasedWorkload>(name, std::move(regimes), think_mean,
                                          n_threads);
}

PhasedWorkload::PhasedWorkload(std::string name, std::vector<Regime> regimes,
                               std::uint64_t think_mean, std::size_t n_threads)
    : name_(std::move(name)), think_mean_(think_mean) {
  until_.reserve(regimes.size());
  regimes_.reserve(regimes.size());
  for (Regime& r : regimes) {
    until_.push_back(r.until);
    regimes_.push_back(
        std::make_unique<stamp::SpecWorkload>(std::move(r.spec), n_threads));
  }
}

std::size_t PhasedWorkload::n_types() const { return regimes_.front()->n_types(); }

const std::string& PhasedWorkload::type_name(core::TxTypeId t) const {
  return regimes_.front()->type_name(t);
}

std::size_t PhasedWorkload::regime_index(double progress) const noexcept {
  for (std::size_t i = 0; i + 1 < until_.size(); ++i) {
    if (progress < until_[i]) return i;
  }
  return until_.size() - 1;
}

void PhasedWorkload::next(core::ThreadId thread, double progress,
                          util::Xoshiro256& rng, TxInstance& out) {
  regimes_[regime_index(progress)]->next(thread, progress, rng, out);
}

std::uint64_t PhasedWorkload::think_time(core::ThreadId /*thread*/,
                                         util::Xoshiro256& rng) {
  if (think_mean_ == 0) return 0;
  const double u = std::max(rng.uniform01(), 1e-12);
  return static_cast<std::uint64_t>(-static_cast<double>(think_mean_) * std::log(u));
}

}  // namespace seer::workload
