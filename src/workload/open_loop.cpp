#include "workload/open_loop.hpp"

#include <algorithm>

#include "workload/json_util.hpp"

namespace seer::workload {

using jsonu::Value;

const char* to_string(OpenLoopConfig::Process p) noexcept {
  switch (p) {
    case OpenLoopConfig::Process::kConstant: return "constant";
    case OpenLoopConfig::Process::kPoisson: return "poisson";
  }
  return "?";
}

namespace {

double require_positive(const Value& obj, const char* key, double fallback,
                        const std::string& origin) {
  const double v = jsonu::opt_num(obj, key, fallback, origin);
  if (!(v > 0.0)) jsonu::fail(jsonu::sub(origin, key), "must be > 0");
  return v;
}

Diurnal parse_diurnal(const Value& obj, const std::string& origin) {
  jsonu::reject_unknown(obj, {"period_s", "amplitude"}, origin);
  Diurnal d;
  d.period_s = jsonu::require_num(obj, "period_s", origin);
  if (!(d.period_s > 0.0)) jsonu::fail(jsonu::sub(origin, "period_s"), "must be > 0");
  d.amplitude = jsonu::require_num(obj, "amplitude", origin);
  if (d.amplitude < 0.0 || d.amplitude >= 1.0) {
    jsonu::fail(jsonu::sub(origin, "amplitude"), "must be in [0, 1)");
  }
  return d;
}

Burst parse_burst(const Value& obj, const std::string& origin) {
  jsonu::reject_unknown(obj, {"at_s", "duration_s", "multiplier"}, origin);
  Burst b;
  b.at_s = jsonu::require_num(obj, "at_s", origin);
  if (b.at_s < 0.0) jsonu::fail(jsonu::sub(origin, "at_s"), "must be >= 0");
  b.duration_s = jsonu::require_num(obj, "duration_s", origin);
  if (!(b.duration_s > 0.0)) {
    jsonu::fail(jsonu::sub(origin, "duration_s"), "must be > 0");
  }
  b.multiplier = jsonu::require_num(obj, "multiplier", origin);
  if (!(b.multiplier > 0.0)) {
    jsonu::fail(jsonu::sub(origin, "multiplier"), "must be > 0");
  }
  return b;
}

}  // namespace

OpenLoopConfig OpenLoopConfig::from_json(const Value& obj,
                                         const std::string& origin) {
  if (!obj.is_object()) jsonu::fail(origin, "expected an object");
  jsonu::reject_unknown(obj,
                        {"rate", "process", "duration_s", "warmup_s",
                         "queue_capacity", "workers", "emit_interval_ms",
                         "table_words", "cycles_per_us", "diurnal", "bursts",
                         "sweep"},
                        origin);
  OpenLoopConfig cfg;

  const Value* sweep = obj.find("sweep");
  const Value* rate = obj.find("rate");
  if (sweep != nullptr && rate != nullptr) {
    jsonu::fail(jsonu::sub(origin, "rate"),
                "mutually exclusive with \"sweep\" (the sweep's rates replace it)");
  }
  if (sweep == nullptr && rate == nullptr) {
    jsonu::fail(origin, "missing required key \"rate\" (or a \"sweep\")");
  }
  if (rate != nullptr) {
    cfg.rate = require_positive(obj, "rate", 0.0, origin);
  }
  if (sweep != nullptr) {
    const std::string sorigin = jsonu::sub(origin, "sweep");
    if (!sweep->is_object()) jsonu::fail(sorigin, "must be an object");
    jsonu::reject_unknown(*sweep,
                          {"rates", "knee_p99_ms", "knee_rejected_fraction"},
                          sorigin);
    const Value& rates = jsonu::require_array(*sweep, "rates", sorigin);
    if (rates.array.empty()) {
      jsonu::fail(jsonu::sub(sorigin, "rates"), "must not be empty");
    }
    for (std::size_t i = 0; i < rates.array.size(); ++i) {
      const Value& r = rates.array[i];
      const std::string rorigin = jsonu::at(jsonu::sub(sorigin, "rates"), i);
      if (!r.is_number() || !(r.number > 0.0)) {
        jsonu::fail(rorigin, "must be a number > 0");
      }
      if (i > 0 && r.number <= cfg.sweep_rates.back()) {
        jsonu::fail(rorigin, "rates must be strictly increasing");
      }
      cfg.sweep_rates.push_back(r.number);
    }
    cfg.knee_p99_ms = jsonu::opt_num(*sweep, "knee_p99_ms", 0.0, sorigin);
    if (cfg.knee_p99_ms < 0.0) {
      jsonu::fail(jsonu::sub(sorigin, "knee_p99_ms"), "must be >= 0");
    }
    cfg.knee_rejected_fraction =
        jsonu::opt_num(*sweep, "knee_rejected_fraction", 0.01, sorigin);
    if (cfg.knee_rejected_fraction < 0.0 || cfg.knee_rejected_fraction > 1.0) {
      jsonu::fail(jsonu::sub(sorigin, "knee_rejected_fraction"),
                  "must be in [0, 1]");
    }
  }

  if (const Value* p = obj.find("process"); p != nullptr) {
    if (!p->is_string()) jsonu::fail(jsonu::sub(origin, "process"), "must be a string");
    if (p->string == "constant") {
      cfg.process = Process::kConstant;
    } else if (p->string == "poisson") {
      cfg.process = Process::kPoisson;
    } else {
      jsonu::fail(jsonu::sub(origin, "process"),
                  "unknown process \"" + p->string +
                      "\" (known: constant, poisson)");
    }
  }

  cfg.duration_s = require_positive(obj, "duration_s", cfg.duration_s, origin);
  cfg.warmup_s = jsonu::opt_num(obj, "warmup_s", cfg.warmup_s, origin);
  if (cfg.warmup_s < 0.0) jsonu::fail(jsonu::sub(origin, "warmup_s"), "must be >= 0");

  cfg.queue_capacity =
      jsonu::opt_u64(obj, "queue_capacity", cfg.queue_capacity, origin);
  if (cfg.queue_capacity == 0 || cfg.queue_capacity > (1u << 24)) {
    jsonu::fail(jsonu::sub(origin, "queue_capacity"),
                "must be in [1, 2^24]");
  }
  cfg.workers = jsonu::opt_u64(obj, "workers", cfg.workers, origin);
  if (cfg.workers == 0 || cfg.workers > 256) {
    jsonu::fail(jsonu::sub(origin, "workers"), "must be in [1, 256]");
  }
  cfg.emit_interval_ms =
      jsonu::opt_u64(obj, "emit_interval_ms", cfg.emit_interval_ms, origin);
  if (cfg.emit_interval_ms == 0) {
    jsonu::fail(jsonu::sub(origin, "emit_interval_ms"), "must be >= 1");
  }
  cfg.table_words = jsonu::opt_u64(obj, "table_words", cfg.table_words, origin);
  if (cfg.table_words == 0) {
    jsonu::fail(jsonu::sub(origin, "table_words"), "must be >= 1");
  }
  cfg.cycles_per_us =
      require_positive(obj, "cycles_per_us", cfg.cycles_per_us, origin);

  if (const Value* d = obj.find("diurnal"); d != nullptr) {
    const std::string dorigin = jsonu::sub(origin, "diurnal");
    if (!d->is_object()) jsonu::fail(dorigin, "must be an object");
    cfg.diurnal = parse_diurnal(*d, dorigin);
  }
  if (const Value* bs = obj.find("bursts"); bs != nullptr) {
    const std::string borigin = jsonu::sub(origin, "bursts");
    if (!bs->is_array()) jsonu::fail(borigin, "must be an array");
    for (std::size_t i = 0; i < bs->array.size(); ++i) {
      cfg.bursts.push_back(parse_burst(bs->array[i], jsonu::at(borigin, i)));
    }
  }
  return cfg;
}

double ArrivalSchedule::rate_at(double t_s) const noexcept {
  double r = base_rate_;
  if (cfg_->diurnal.period_s > 0.0) {
    r *= 1.0 + cfg_->diurnal.amplitude *
                   std::sin(2.0 * M_PI * t_s / cfg_->diurnal.period_s);
  }
  for (const Burst& b : cfg_->bursts) {
    if (t_s >= b.at_s && t_s < b.at_s + b.duration_s) r *= b.multiplier;
  }
  // The diurnal floor 1-amplitude > 0 and multipliers are > 0, so r > 0;
  // clamp anyway so a pathological combination cannot divide by zero.
  return r > 1e-9 ? r : 1e-9;
}

std::uint64_t ArrivalSchedule::next_gap_ns(double t_s,
                                           util::Xoshiro256& rng) const {
  const double r = rate_at(t_s);
  double gap_s;
  if (cfg_->process == OpenLoopConfig::Process::kConstant) {
    gap_s = 1.0 / r;
  } else {
    // Exponential gap at the instantaneous rate. 1 - uniform01() is in
    // (0, 1], so the log argument never hits zero.
    gap_s = -std::log(1.0 - rng.uniform01()) / r;
  }
  const double ns = gap_s * 1e9;
  if (ns <= 1.0) return 1;
  if (ns >= 9e18) return static_cast<std::uint64_t>(9e18);
  return static_cast<std::uint64_t>(ns);
}

}  // namespace seer::workload
