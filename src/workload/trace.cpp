#include "workload/trace.hpp"

#include <cstdio>
#include <cstdlib>

#include "workload/json_util.hpp"

namespace seer::workload {

using jsonu::Value;

namespace {

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

void append_rng(std::string& out, const RngState& s) {
  out += "\"rng\": [";
  for (std::size_t i = 0; i < 4; ++i) {
    char buf[20];
    std::snprintf(buf, sizeof buf, "\"%016llx\"",
                  static_cast<unsigned long long>(s[i]));
    if (i > 0) out += ", ";
    out += buf;
  }
  out += "]";
}

void append_lines(std::string& out, const char* key,
                  const std::vector<std::uint32_t>& v) {
  out += "\"";
  out += key;
  out += "\": [";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out += ", ";
    append_u64(out, v[i]);
  }
  out += "]";
}

RngState parse_rng(const Value& obj, const std::string& origin) {
  const Value& arr = jsonu::require_array(obj, "rng", origin);
  if (arr.array.size() != 4) {
    jsonu::fail(jsonu::sub(origin, "rng"), "must hold exactly 4 hex words");
  }
  RngState s{};
  for (std::size_t i = 0; i < 4; ++i) {
    const Value& w = arr.array[i];
    const std::string wo = jsonu::at(jsonu::sub(origin, "rng"), i);
    if (!w.is_string() || w.string.empty() || w.string.size() > 16) {
      jsonu::fail(wo, "must be a 1-16 character hex string");
    }
    char* end = nullptr;
    s[i] = std::strtoull(w.string.c_str(), &end, 16);
    if (end != w.string.c_str() + w.string.size()) {
      jsonu::fail(wo, "must be a hex string");
    }
  }
  return s;
}

std::vector<std::uint32_t> parse_lines(const Value& obj, const char* key,
                                       const std::string& origin) {
  const Value& arr = jsonu::require_array(obj, key, origin);
  std::vector<std::uint32_t> out;
  out.reserve(arr.array.size());
  for (std::size_t i = 0; i < arr.array.size(); ++i) {
    const Value& v = arr.array[i];
    const std::string vo = jsonu::at(jsonu::sub(origin, key), i);
    if (!v.is_number() || v.number < 0.0 || v.number >= 4294967296.0) {
      jsonu::fail(vo, "must be a line id in [0, 2^32)");
    }
    const auto line = static_cast<std::uint32_t>(v.as_u64());
    if (!out.empty() && line <= out.back()) {
      jsonu::fail(vo, "line ids must be sorted and unique");
    }
    out.push_back(line);
  }
  return out;
}

}  // namespace

std::string InstanceTrace::to_json() const {
  std::string out = "{\n  \"version\": 1,\n  \"workload\": \"";
  out += workload;
  out += "\",\n  \"type_names\": [";
  for (std::size_t i = 0; i < type_names.size(); ++i) {
    if (i > 0) out += ", ";
    out += "\"";
    out += type_names[i];
    out += "\"";
  }
  out += "],\n  \"threads\": [\n";
  for (std::size_t t = 0; t < lanes.size(); ++t) {
    const TraceLane& lane = lanes[t];
    out += t > 0 ? ",\n    {\"thread\": " : "    {\"thread\": ";
    append_u64(out, t);
    out += ",\n     \"thinks\": [";
    for (std::size_t i = 0; i < lane.thinks.size(); ++i) {
      out += i > 0 ? ",\n       {\"t\": " : "\n       {\"t\": ";
      append_u64(out, lane.thinks[i]);
      out += ", ";
      append_rng(out, lane.think_rng[i]);
      out += "}";
    }
    out += "],\n     \"instances\": [";
    for (std::size_t i = 0; i < lane.instances.size(); ++i) {
      const TxInstance& inst = lane.instances[i];
      out += i > 0 ? ",\n       {\"type\": " : "\n       {\"type\": ";
      append_u64(out, inst.type);
      out += ", \"duration\": ";
      append_u64(out, inst.duration);
      out += ", ";
      append_lines(out, "reads", inst.reads);
      out += ", ";
      append_lines(out, "writes", inst.writes);
      out += ", ";
      append_rng(out, lane.instance_rng[i]);
      out += "}";
    }
    out += "]}";
  }
  out += "\n  ]\n}\n";
  return out;
}

InstanceTrace InstanceTrace::parse(const Value& doc, const std::string& origin) {
  jsonu::reject_unknown(doc, {"version", "workload", "type_names", "threads"},
                        origin);
  const std::uint64_t version = jsonu::require_u64(doc, "version", origin);
  if (version != 1) {
    jsonu::fail(jsonu::sub(origin, "version"),
                "unsupported trace version " + std::to_string(version));
  }
  InstanceTrace trace;
  trace.workload = jsonu::require_str(doc, "workload", origin);
  const Value& names = jsonu::require_array(doc, "type_names", origin);
  if (names.array.empty()) {
    jsonu::fail(jsonu::sub(origin, "type_names"), "must not be empty");
  }
  for (std::size_t i = 0; i < names.array.size(); ++i) {
    const Value& n = names.array[i];
    if (!n.is_string()) {
      jsonu::fail(jsonu::at(jsonu::sub(origin, "type_names"), i),
                  "must be a string");
    }
    trace.type_names.push_back(n.string);
  }

  const Value& threads = jsonu::require_array(doc, "threads", origin);
  trace.lanes.reserve(threads.array.size());
  for (std::size_t t = 0; t < threads.array.size(); ++t) {
    const std::string to = jsonu::at(jsonu::sub(origin, "threads"), t);
    const Value& th = threads.array[t];
    jsonu::reject_unknown(th, {"thread", "thinks", "instances"}, to);
    if (jsonu::require_u64(th, "thread", to) != t) {
      jsonu::fail(jsonu::sub(to, "thread"),
                  "lanes must be listed in thread order 0..n-1");
    }
    TraceLane lane;
    const Value& thinks = jsonu::require_array(th, "thinks", to);
    for (std::size_t i = 0; i < thinks.array.size(); ++i) {
      const std::string ko = jsonu::at(jsonu::sub(to, "thinks"), i);
      const Value& k = thinks.array[i];
      jsonu::reject_unknown(k, {"t", "rng"}, ko);
      lane.thinks.push_back(jsonu::require_u64(k, "t", ko));
      lane.think_rng.push_back(parse_rng(k, ko));
    }
    const Value& instances = jsonu::require_array(th, "instances", to);
    for (std::size_t i = 0; i < instances.array.size(); ++i) {
      const std::string io = jsonu::at(jsonu::sub(to, "instances"), i);
      const Value& in = instances.array[i];
      jsonu::reject_unknown(in, {"type", "duration", "reads", "writes", "rng"}, io);
      TxInstance inst;
      const std::uint64_t type = jsonu::require_u64(in, "type", io);
      if (type >= trace.type_names.size()) {
        jsonu::fail(jsonu::sub(io, "type"),
                    "type " + std::to_string(type) + " is out of range (" +
                        std::to_string(trace.type_names.size()) + " types)");
      }
      inst.type = static_cast<core::TxTypeId>(type);
      inst.duration = jsonu::require_u64(in, "duration", io);
      if (inst.duration == 0) {
        jsonu::fail(jsonu::sub(io, "duration"), "must be at least 1");
      }
      inst.reads = parse_lines(in, "reads", io);
      inst.writes = parse_lines(in, "writes", io);
      lane.instances.push_back(std::move(inst));
      lane.instance_rng.push_back(parse_rng(in, io));
    }
    trace.lanes.push_back(std::move(lane));
  }
  return trace;
}

InstanceTrace InstanceTrace::load(const std::string& path) {
  std::string error;
  const auto doc = util::json::parse_file(path, &error);
  if (!doc) {
    throw ConfigError("workload trace " + path + ": " + error);
  }
  return parse(*doc, path);
}

bool write_trace_json(const InstanceTrace& trace, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = trace.to_json();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return true;
}

InstanceTraceRecorder::InstanceTraceRecorder(std::unique_ptr<Generator> inner,
                                             std::size_t n_threads,
                                             InstanceTrace* out)
    : inner_(std::move(inner)), out_(out) {
  out_->workload = inner_->name();
  out_->type_names.clear();
  for (std::size_t t = 0; t < inner_->n_types(); ++t) {
    out_->type_names.push_back(inner_->type_name(static_cast<core::TxTypeId>(t)));
  }
  out_->lanes.assign(n_threads, {});
}

void InstanceTraceRecorder::init(core::ThreadId thread) {
  out_->lanes[thread] = {};
  inner_->init(thread);
}

void InstanceTraceRecorder::next(core::ThreadId thread, double progress,
                                 util::Xoshiro256& rng, TxInstance& out) {
  inner_->next(thread, progress, rng, out);
  TraceLane& lane = out_->lanes[thread];
  lane.instances.push_back(out);
  lane.instance_rng.push_back(rng.state());
}

std::uint64_t InstanceTraceRecorder::think_time(core::ThreadId thread,
                                                util::Xoshiro256& rng) {
  const std::uint64_t t = inner_->think_time(thread, rng);
  TraceLane& lane = out_->lanes[thread];
  lane.thinks.push_back(t);
  lane.think_rng.push_back(rng.state());
  return t;
}

TraceReplay::TraceReplay(InstanceTrace trace, std::string name)
    : trace_(std::move(trace)),
      name_(name.empty() ? "replay:" + trace_.workload : std::move(name)),
      inst_cursor_(trace_.lanes.size(), 0),
      think_cursor_(trace_.lanes.size(), 0) {}

void TraceReplay::init(core::ThreadId thread) {
  if (thread < trace_.lanes.size()) {
    inst_cursor_[thread] = 0;
    think_cursor_[thread] = 0;
  }
}

bool TraceReplay::exhausted(core::ThreadId thread) const {
  if (thread >= trace_.lanes.size()) return true;
  return inst_cursor_[thread] >= trace_.lanes[thread].instances.size();
}

void TraceReplay::next(core::ThreadId thread, double /*progress*/,
                       util::Xoshiro256& rng, TxInstance& out) {
  if (exhausted(thread)) {
    throw std::runtime_error("TraceReplay::next called past end of stream for thread " +
                             std::to_string(thread));
  }
  const TraceLane& lane = trace_.lanes[thread];
  const std::size_t i = inst_cursor_[thread]++;
  out = lane.instances[i];
  rng.set_state(lane.instance_rng[i]);
}

std::uint64_t TraceReplay::think_time(core::ThreadId thread,
                                      util::Xoshiro256& rng) {
  if (thread >= trace_.lanes.size()) return 0;
  const TraceLane& lane = trace_.lanes[thread];
  const std::size_t i = think_cursor_[thread];
  // Executors may probe one think past the recorded stream (the recording
  // run stopped at its cap); answer 0 without disturbing the RNG.
  if (i >= lane.thinks.size()) return 0;
  ++think_cursor_[thread];
  rng.set_state(lane.think_rng[i]);
  return lane.thinks[i];
}

std::uint64_t TraceReplay::max_instances_per_thread() const noexcept {
  std::uint64_t m = 0;
  for (const TraceLane& lane : trace_.lanes) {
    m = std::max<std::uint64_t>(m, lane.instances.size());
  }
  return m;
}

}  // namespace seer::workload
