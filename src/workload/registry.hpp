// Name → generator registry with a JSON config front-end.
//
// Every workload the harnesses can run is registered here under a name:
// the eight compiled-in STAMP stand-ins (thin adapters over
// stamp::make_workload — the legacy call sites keep working), plus the
// data-driven generators ("spec", "phased", "bst", "trace-replay"). A
// `--workload` argument is either a registered NAME or a FILE.json config:
//
//   {
//     "generator": "phased",        // registry name (required)
//     "name": "cross-shift",        // display name (optional)
//     "txs_per_thread": 2000,       // bench default (optional)
//     "params": { ... }             // generator-specific (optional)
//   }
//
// A raw instance-trace file (trace.hpp's format — it has "version" and
// "threads" instead of "generator") is also accepted and wraps itself in a
// trace-replay generator. An optional top-level "open_loop" object describes
// open-loop traffic over the generator (arrival rate/process, diurnal curve,
// bursts, admission-queue bound — open_loop.hpp documents the schema); it is
// validated here like everything else but only tools/seer_serve consumes it,
// the closed-loop bench harnesses ignore it. All validation happens at
// config-parse time: unknown names, missing/mistyped fields, and
// out-of-range values throw ConfigError naming the bad key, which the CLIs
// print and exit non-zero.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "stamp/workloads.hpp"
#include "util/json.hpp"
#include "workload/generator.hpp"
#include "workload/open_loop.hpp"

namespace seer::workload {

// A resolved workload: everything a harness needs to build and label runs.
// `make` may be called many times (one generator per run/cell).
struct Desc {
  std::string name;
  std::uint64_t bench_txs_per_thread = 4000;
  std::function<std::unique_ptr<Generator>(std::size_t n_threads)> make;
  // The config's "open_loop" section; null when absent (every registered
  // NAME, and any config without one). seer_serve requires it.
  std::shared_ptr<const OpenLoopConfig> open_loop;

  Desc() = default;
  Desc(std::string n, std::uint64_t txs,
       std::function<std::unique_ptr<Generator>(std::size_t)> m)
      : name(std::move(n)), bench_txs_per_thread(txs), make(std::move(m)) {}
  // Adapter so bench code that builds ad-hoc stamp::WorkloadInfo values
  // (e.g. fig4's hashmap) keeps working unchanged.
  Desc(const stamp::WorkloadInfo& info);  // NOLINT(google-explicit-constructor)
};

// Builds a Desc from a params object; `display_name` is the config's "name"
// (or the generator name), `origin` prefixes diagnostics.
using Factory = std::function<Desc(const util::json::Value& params,
                                   const std::string& display_name,
                                   const std::string& origin)>;

class Registry {
 public:
  // The process-wide registry, pre-populated with the builtins.
  [[nodiscard]] static Registry& global();

  void add(std::string name, Factory factory);
  [[nodiscard]] const Factory* lookup(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> names() const;  // registration order

 private:
  std::vector<std::pair<std::string, Factory>> entries_;
};

// Resolves a registered NAME with empty params. Throws ConfigError listing
// the known names for an unknown one.
[[nodiscard]] Desc find(const std::string& name);

// Parses and validates a config (or raw instance-trace) file / DOM.
[[nodiscard]] Desc from_config(const std::string& path);
[[nodiscard]] Desc from_config_json(const util::json::Value& doc,
                                    const std::string& origin);

// `--workload` semantics: *.json → from_config, anything else → find.
[[nodiscard]] Desc resolve(const std::string& name_or_path);

// The eight STAMP registry names, in the paper's presentation order — what
// the bench harness sweeps when no --workload is given.
[[nodiscard]] const std::vector<std::string>& stamp_names();

}  // namespace seer::workload
