#include "workload/bst.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/rng.hpp"
#include "workload/json_util.hpp"

namespace seer::workload {

using jsonu::Value;

namespace {
const std::string kTypeNames[3] = {"add", "remove", "contains"};
}

std::unique_ptr<BstWorkload> BstWorkload::from_json(const Value& params,
                                                    const std::string& origin,
                                                    const std::string& name) {
  jsonu::reject_unknown(params,
                        {"keys", "mix", "key_skew", "base_cost", "node_cost",
                         "think_mean", "shape_seed"},
                        origin);
  Config cfg;
  const std::uint64_t keys = jsonu::opt_u64(params, "keys", cfg.keys, origin);
  if (keys < 2 || keys > (1u << 22)) {
    jsonu::fail(jsonu::sub(origin, "keys"), "must be in [2, 2^22]");
  }
  cfg.keys = static_cast<std::uint32_t>(keys);
  if (const Value* mix = params.find("mix"); mix != nullptr) {
    const std::string mo = jsonu::sub(origin, "mix");
    jsonu::reject_unknown(*mix, {"add", "remove", "contains"}, mo);
    cfg.mix_add = jsonu::opt_num(*mix, "add", 0.0, mo);
    cfg.mix_remove = jsonu::opt_num(*mix, "remove", 0.0, mo);
    cfg.mix_contains = jsonu::opt_num(*mix, "contains", 0.0, mo);
    if (cfg.mix_add < 0.0 || cfg.mix_remove < 0.0 || cfg.mix_contains < 0.0) {
      jsonu::fail(mo, "weights must be non-negative");
    }
    if (cfg.mix_add + cfg.mix_remove + cfg.mix_contains <= 0.0) {
      jsonu::fail(mo, "weights must not all be zero");
    }
  }
  cfg.key_skew = jsonu::opt_num(params, "key_skew", cfg.key_skew, origin);
  if (cfg.key_skew < 0.0) {
    jsonu::fail(jsonu::sub(origin, "key_skew"), "must be non-negative");
  }
  cfg.base_cost = jsonu::opt_u64(params, "base_cost", cfg.base_cost, origin);
  if (cfg.base_cost == 0) {
    jsonu::fail(jsonu::sub(origin, "base_cost"), "must be at least 1");
  }
  cfg.node_cost = jsonu::opt_u64(params, "node_cost", cfg.node_cost, origin);
  cfg.think_mean = jsonu::opt_u64(params, "think_mean", cfg.think_mean, origin);
  cfg.shape_seed = jsonu::opt_u64(params, "shape_seed", cfg.shape_seed, origin);
  return std::make_unique<BstWorkload>(cfg, name);
}

BstWorkload::BstWorkload(Config cfg, std::string name)
    : cfg_(cfg), name_(std::move(name)) {
  const std::uint32_t n = cfg_.keys;

  // Shape the tree: insert 0..n-1 in a seeded shuffled order. The shape is
  // part of the workload's identity (same config → same tree → same
  // conflict structure), independent of the executor's run seed.
  std::vector<std::uint32_t> order(n);
  for (std::uint32_t i = 0; i < n; ++i) order[i] = i;
  util::Xoshiro256 shape_rng(cfg_.shape_seed);
  for (std::uint32_t i = n - 1; i > 0; --i) {
    const auto j = static_cast<std::uint32_t>(shape_rng.below(i + 1));
    std::swap(order[i], order[j]);
  }

  constexpr std::uint32_t kNone = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> left(n, kNone);
  std::vector<std::uint32_t> right(n, kNone);
  parent_.assign(n, kNone);
  const std::uint32_t root = order[0];
  parent_[root] = root;
  for (std::uint32_t i = 1; i < n; ++i) {
    const std::uint32_t k = order[i];
    std::uint32_t cur = root;
    while (true) {
      std::uint32_t& child = k < cur ? left[cur] : right[cur];
      if (child == kNone) {
        child = k;
        parent_[k] = cur;
        break;
      }
      cur = child;
    }
  }

  // Flatten every root→key path once; next() only copies.
  path_off_.assign(n + 1, 0);
  std::vector<std::uint32_t> path;
  for (std::uint32_t k = 0; k < n; ++k) {
    path.clear();
    for (std::uint32_t cur = k;; cur = parent_[cur]) {
      path.push_back(cur);
      if (cur == root) break;
    }
    path_off_[k + 1] = path_off_[k] + static_cast<std::uint32_t>(path.size());
    path_lines_.insert(path_lines_.end(), path.rbegin(), path.rend());
  }

  if (cfg_.key_skew > 0.0) {
    zipf_ = std::make_unique<util::Zipf>(n, cfg_.key_skew);
  }
}

const std::string& BstWorkload::type_name(core::TxTypeId t) const {
  return kTypeNames[static_cast<std::size_t>(t)];
}

std::size_t BstWorkload::depth(std::uint32_t key) const {
  return path_off_[key + 1] - path_off_[key];
}

void BstWorkload::next(core::ThreadId /*thread*/, double /*progress*/,
                       util::Xoshiro256& rng, TxInstance& out) {
  // Operation type from the mix weights.
  const double total = cfg_.mix_add + cfg_.mix_remove + cfg_.mix_contains;
  const double pick = rng.uniform01() * total;
  out.type = pick < cfg_.mix_add                   ? kAdd
             : pick < cfg_.mix_add + cfg_.mix_remove ? kRemove
                                                     : kContains;

  const auto key = static_cast<std::uint32_t>(zipf_ ? zipf_->sample(rng)
                                                    : rng.below(cfg_.keys));

  // Reads: the search path, root included. Writes (mutations only): the
  // node and the parent link it hangs off.
  out.reads.assign(path_lines_.begin() + path_off_[key],
                   path_lines_.begin() + path_off_[key + 1]);
  std::sort(out.reads.begin(), out.reads.end());
  out.writes.clear();
  if (out.type != kContains) {
    out.writes.push_back(key);
    if (parent_[key] != key) out.writes.push_back(parent_[key]);
    std::sort(out.writes.begin(), out.writes.end());
  }

  out.duration = cfg_.base_cost + cfg_.node_cost * depth(key);
}

std::uint64_t BstWorkload::think_time(core::ThreadId /*thread*/,
                                      util::Xoshiro256& rng) {
  if (cfg_.think_mean == 0) return 0;
  const double u = std::max(rng.uniform01(), 1e-12);
  return static_cast<std::uint64_t>(-static_cast<double>(cfg_.think_mean) *
                                    std::log(u));
}

}  // namespace seer::workload
