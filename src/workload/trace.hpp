// Instance-stream capture and deterministic replay.
//
// An InstanceTraceRecorder wraps any generator and records, per thread, the
// exact sequence of think times and transaction instances the executor
// drew — together with the post-call state of the per-thread RNG. A
// TraceReplay feeds a captured trace back in as a generator: it returns the
// recorded values verbatim and restores the recorded RNG state after each
// call, so the executor's *own* draws (conflict windows, victim choices,
// background aborts) continue from exactly where they did in the recording
// run. Replaying a machine run under the same config therefore reproduces
// it decision-for-decision — the property the trace-replay round-trip test
// pins with the PR 2 differential checker — while replaying under a
// different scheduling policy reruns the identical instance stream against
// the new policy.
//
// Trace files are JSON (util/json DOM, no new dependencies):
//   {
//     "version": 1,
//     "workload": "genome",
//     "type_names": ["t0", ...],
//     "threads": [
//       {"thread": 0,
//        "thinks": [{"t": 123, "rng": ["<16-hex>", x4]}, ...],
//        "instances": [{"type": 0, "duration": 812, "reads": [...],
//                       "writes": [...], "rng": ["<16-hex>", x4]}, ...]},
//       ...]
//   }
// RNG words are hex strings because the DOM holds numbers as double (u64
// state does not survive a 2^53 round-trip). Malformed or truncated files
// fail with a ConfigError naming the bad key.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/json.hpp"
#include "workload/generator.hpp"

namespace seer::workload {

using RngState = std::array<std::uint64_t, 4>;

struct TraceLane {
  std::vector<std::uint64_t> thinks;
  std::vector<RngState> think_rng;      // post-call state, parallel to thinks
  std::vector<TxInstance> instances;
  std::vector<RngState> instance_rng;   // post-call state, parallel to instances
};

struct InstanceTrace {
  std::string workload;                 // source generator's name
  std::vector<std::string> type_names;
  std::vector<TraceLane> lanes;         // index == ThreadId

  [[nodiscard]] std::string to_json() const;  // byte-stable serialization

  // Validating parse of a trace DOM / file. Throws ConfigError naming the
  // bad key (origin: the file path, or "<trace>" for in-memory docs).
  [[nodiscard]] static InstanceTrace parse(const util::json::Value& doc,
                                           const std::string& origin);
  [[nodiscard]] static InstanceTrace load(const std::string& path);
};

// Writes trace.to_json() to `path`; false when the file cannot be opened.
[[nodiscard]] bool write_trace_json(const InstanceTrace& trace,
                                    const std::string& path);

// Pass-through generator that records everything drawn through it into
// `out` (caller-owned so the trace survives the executor that consumed the
// recorder). One lane per thread, single-writer like the generator contract.
class InstanceTraceRecorder final : public Generator {
 public:
  InstanceTraceRecorder(std::unique_ptr<Generator> inner, std::size_t n_threads,
                        InstanceTrace* out);

  [[nodiscard]] const std::string& name() const override { return inner_->name(); }
  [[nodiscard]] std::size_t n_types() const override { return inner_->n_types(); }
  [[nodiscard]] const std::string& type_name(core::TxTypeId t) const override {
    return inner_->type_name(t);
  }
  void init(core::ThreadId thread) override;
  [[nodiscard]] bool exhausted(core::ThreadId thread) const override {
    return inner_->exhausted(thread);
  }
  void next(core::ThreadId thread, double progress, util::Xoshiro256& rng,
            TxInstance& out) override;
  [[nodiscard]] std::uint64_t think_time(core::ThreadId thread,
                                         util::Xoshiro256& rng) override;

  [[nodiscard]] Generator& inner() noexcept { return *inner_; }

 private:
  std::unique_ptr<Generator> inner_;
  InstanceTrace* out_;
};

// Replays a captured trace. Threads beyond the trace's lane count (and
// threads whose lane is consumed) report exhausted; the executor retires
// them. init(thread) rewinds that thread's cursors, so one instance can
// drive several runs.
class TraceReplay final : public Generator {
 public:
  explicit TraceReplay(InstanceTrace trace, std::string name = "");

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] std::size_t n_types() const override {
    return trace_.type_names.size();
  }
  [[nodiscard]] const std::string& type_name(core::TxTypeId t) const override {
    return trace_.type_names[static_cast<std::size_t>(t)];
  }
  void init(core::ThreadId thread) override;
  [[nodiscard]] bool exhausted(core::ThreadId thread) const override;
  void next(core::ThreadId thread, double progress, util::Xoshiro256& rng,
            TxInstance& out) override;
  [[nodiscard]] std::uint64_t think_time(core::ThreadId thread,
                                         util::Xoshiro256& rng) override;

  [[nodiscard]] const InstanceTrace& trace() const noexcept { return trace_; }
  // Longest per-thread instance count — the natural txs_per_thread for a
  // full replay.
  [[nodiscard]] std::uint64_t max_instances_per_thread() const noexcept;

 private:
  InstanceTrace trace_;
  std::string name_;
  std::vector<std::size_t> inst_cursor_;
  std::vector<std::size_t> think_cursor_;
};

}  // namespace seer::workload
