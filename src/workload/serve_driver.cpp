#include "workload/serve_driver.hpp"

#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <memory>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

#include "htm/soft_htm.hpp"
#include "obs/metrics.hpp"
#include "obs/periodic.hpp"
#include "util/latency_histogram.hpp"
#include "util/mpmc_queue.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "workload/threaded_driver.hpp"

namespace seer::workload {

namespace {

// --- byte-stable JSONL formatting (the snapshot.cpp conventions) -----------
// Deterministic mode promises byte-identical output for a (config, seed)
// pair, so every number goes through one fixed snprintf recipe.

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

void append_dbl(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  out += buf;
}

void append_str(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

// Per-step seed: decorrelated from sibling steps the same way the threaded
// driver seeds sibling threads, and independent of step execution order.
std::uint64_t step_seed(std::uint64_t base, std::size_t step) {
  return base ^ (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(step) + 1));
}

std::uint64_t seconds_to_ns(double s) {
  return static_cast<std::uint64_t>(s * 1e9 + 0.5);
}

// --- shared accounting ------------------------------------------------------

// Counted-traffic totals, snapshotted for interval deltas.
struct Totals {
  std::uint64_t arrivals = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;
};

void append_interval_line(std::string& out, std::size_t step, double t_s,
                          double rate_now, const Totals& cur, Totals& prev,
                          std::size_t queue_depth,
                          const util::LatencyBucketCounts& bcur,
                          util::LatencyBucketCounts& bprev,
                          const std::string& metric_fields) {
  util::LatencyBucketCounts delta{};
  for (std::size_t i = 0; i < util::kLatencyBucketCount; ++i) {
    delta[i] = bcur[i] - bprev[i];
  }
  out += "{\"kind\": \"interval\", \"step\": ";
  append_u64(out, step);
  out += ", \"t_s\": ";
  append_dbl(out, t_s);
  out += ", \"offered_rate\": ";
  append_dbl(out, rate_now);
  out += ", \"arrivals\": ";
  append_u64(out, cur.arrivals - prev.arrivals);
  out += ", \"accepted\": ";
  append_u64(out, cur.accepted - prev.accepted);
  out += ", \"rejected\": ";
  append_u64(out, cur.rejected - prev.rejected);
  out += ", \"completed\": ";
  append_u64(out, cur.completed - prev.completed);
  out += ", \"queue_depth\": ";
  append_u64(out, queue_depth);
  out += ", \"p50_est_us\": ";
  append_dbl(out, util::bucket_quantile_estimate(delta, 0.5) / 1000.0);
  out += ", \"p99_est_us\": ";
  append_dbl(out, util::bucket_quantile_estimate(delta, 0.99) / 1000.0);
  out += metric_fields;
  out += "}\n";
  prev = cur;
  bprev = bcur;
}

StepStats finalize_step(double rate, double duration_s, const Totals& totals,
                        const util::LatencyHistogram& hist,
                        std::uint64_t queue_peak, std::uint64_t sgl_commits) {
  StepStats s;
  s.offered_rate = rate;
  s.duration_s = duration_s;
  s.arrivals = totals.arrivals;
  s.accepted = totals.accepted;
  s.rejected = totals.rejected;
  s.completed = totals.completed;
  s.rejected_fraction =
      totals.arrivals == 0
          ? 0.0
          : static_cast<double>(totals.rejected) / static_cast<double>(totals.arrivals);
  s.throughput_rps =
      duration_s <= 0.0 ? 0.0 : static_cast<double>(totals.completed) / duration_s;
  s.latency_count = hist.count();
  s.latency_mean_ns = hist.mean();
  const double qs[] = {0.5, 0.9, 0.99, 0.999};
  const std::vector<std::uint64_t> v = hist.quantiles(qs);
  s.p50_ns = v[0];
  s.p90_ns = v[1];
  s.p99_ns = v[2];
  s.p999_ns = v[3];
  s.max_ns = hist.max();
  s.queue_depth_peak = queue_peak;
  s.sgl_commits = sgl_commits;
  s.sgl_fraction = totals.completed == 0
                       ? 0.0
                       : static_cast<double>(sgl_commits) /
                             static_cast<double>(totals.completed);
  return s;
}

void append_step_line(std::string& out, std::size_t step, const StepStats& s) {
  out += "{\"kind\": \"step\", \"step\": ";
  append_u64(out, step);
  out += ", \"offered_rate\": ";
  append_dbl(out, s.offered_rate);
  out += ", \"duration_s\": ";
  append_dbl(out, s.duration_s);
  out += ", \"arrivals\": ";
  append_u64(out, s.arrivals);
  out += ", \"accepted\": ";
  append_u64(out, s.accepted);
  out += ", \"rejected\": ";
  append_u64(out, s.rejected);
  out += ", \"rejected_fraction\": ";
  append_dbl(out, s.rejected_fraction);
  out += ", \"completed\": ";
  append_u64(out, s.completed);
  out += ", \"throughput_rps\": ";
  append_dbl(out, s.throughput_rps);
  out += ", \"latency_ns\": {\"count\": ";
  append_u64(out, s.latency_count);
  out += ", \"mean\": ";
  append_dbl(out, s.latency_mean_ns);
  out += ", \"p50\": ";
  append_u64(out, s.p50_ns);
  out += ", \"p90\": ";
  append_u64(out, s.p90_ns);
  out += ", \"p99\": ";
  append_u64(out, s.p99_ns);
  out += ", \"p999\": ";
  append_u64(out, s.p999_ns);
  out += ", \"max\": ";
  append_u64(out, s.max_ns);
  out += "}, \"queue_depth_peak\": ";
  append_u64(out, s.queue_depth_peak);
  out += ", \"sgl_fraction\": ";
  append_dbl(out, s.sgl_fraction);
  out += "}\n";
}

struct StepOutput {
  StepStats stats;
  std::string jsonl;  // interval lines then the step line
};

// --- deterministic backend: virtual-time M/G/k simulation -------------------
//
// One rate step as an event loop over two event sources — the arrival
// schedule and a min-heap of in-service completions — on a virtual
// nanosecond clock. `workers` virtual servers each serve one request at a
// time; service time is the instance's modelled `duration` in cycles scaled
// by cycles_per_us. The admission path is the SAME MpmcQueue the real
// backend uses (single-threaded here, but identical capacity rounding and
// shed behaviour). Ties break completion-before-arrival, and equal-time
// completions break by service start order, so the event order — and with
// it the output bytes — is a pure function of (config, seed).

struct VirtualRequest {
  std::uint64_t enqueue_ns = 0;
  std::uint64_t service_ns = 0;
  bool counted = false;
};

struct Busy {
  std::uint64_t done_ns = 0;
  std::uint64_t seq = 0;  // service start order, for deterministic ties
  std::uint64_t enqueue_ns = 0;
  bool counted = false;
};

struct BusyLater {
  bool operator()(const Busy& a, const Busy& b) const noexcept {
    if (a.done_ns != b.done_ns) return a.done_ns > b.done_ns;
    return a.seq > b.seq;
  }
};

StepOutput run_step_virtual(const Desc& desc, const OpenLoopConfig& ol,
                            const ServeOptions& opts, std::size_t step,
                            double rate, double duration_s,
                            std::size_t workers) {
  auto gen = desc.make(1);
  gen->init(0);
  util::Xoshiro256 rng(step_seed(opts.seed, step));
  const ArrivalSchedule sched(ol, rate);

  const std::uint64_t warmup_ns = seconds_to_ns(ol.warmup_s);
  const std::uint64_t end_ns = seconds_to_ns(ol.warmup_s + duration_s);
  const std::uint64_t emit_ns = ol.emit_interval_ms * 1000000ULL;
  const double ns_per_cycle = 1000.0 / ol.cycles_per_us;

  util::MpmcQueue<VirtualRequest> queue(ol.queue_capacity);
  std::priority_queue<Busy, std::vector<Busy>, BusyLater> busy;
  util::LatencyHistogram hist;
  util::LatencyBuckets buckets;
  util::LatencyBucketCounts bprev{};
  Totals totals, tprev;
  std::uint64_t queue_depth = 0, queue_peak = 0, next_seq = 0;
  std::uint64_t next_arrival = sched.next_gap_ns(0.0, rng);
  std::uint64_t next_emit = emit_ns;
  bool arrivals_done = false;
  StepOutput out;
  sim::TxInstance inst;

  const auto start_service = [&](std::uint64_t now) {
    VirtualRequest r;
    while (busy.size() < workers && queue.try_pop(r)) {
      --queue_depth;
      busy.push(Busy{now + r.service_ns, next_seq++, r.enqueue_ns, r.counted});
    }
  };

  for (;;) {
    const std::uint64_t arrival_t =
        arrivals_done ? ~std::uint64_t{0} : next_arrival;
    const std::uint64_t completion_t =
        busy.empty() ? ~std::uint64_t{0} : busy.top().done_ns;
    const std::uint64_t t_next = completion_t < arrival_t ? completion_t : arrival_t;
    if (t_next == ~std::uint64_t{0}) break;  // idle and out of arrivals

    while (next_emit <= t_next && next_emit <= end_ns) {
      const double t_s = static_cast<double>(next_emit) / 1e9;
      append_interval_line(out.jsonl, step, t_s, sched.rate_at(t_s), totals,
                           tprev, queue_depth, buckets.snapshot(), bprev, "");
      next_emit += emit_ns;
    }

    if (completion_t <= arrival_t) {
      const Busy b = busy.top();
      busy.pop();
      ++totals.completed;
      if (b.counted) hist.record(b.done_ns - b.enqueue_ns);
      if (b.counted) buckets.record(b.done_ns - b.enqueue_ns);
      start_service(b.done_ns);
      continue;
    }

    const std::uint64_t now = next_arrival;
    if (now >= end_ns || gen->exhausted(0)) {
      arrivals_done = true;
      continue;
    }
    const double progress =
        static_cast<double>(now) / static_cast<double>(end_ns);
    gen->next(0, progress, rng, inst);
    double service_d = static_cast<double>(inst.duration) * ns_per_cycle;
    if (service_d < 1.0) service_d = 1.0;
    VirtualRequest r{now, static_cast<std::uint64_t>(service_d), now >= warmup_ns};
    ++totals.arrivals;
    if (queue.try_push(std::move(r))) {
      ++totals.accepted;
      ++queue_depth;
      if (queue_depth > queue_peak) queue_peak = queue_depth;
    } else {
      ++totals.rejected;
    }
    start_service(now);
    next_arrival = now + sched.next_gap_ns(static_cast<double>(now) / 1e9, rng);
  }

  // Idle tail: a lightly loaded step can quiesce long before the window
  // closes, but the real backend's emitter keeps its cadence to the end —
  // flush the remaining boundaries so both modes emit the same line count.
  while (next_emit <= end_ns) {
    const double t_s = static_cast<double>(next_emit) / 1e9;
    append_interval_line(out.jsonl, step, t_s, sched.rate_at(t_s), totals,
                         tprev, queue_depth, buckets.snapshot(), bprev, "");
    next_emit += emit_ns;
  }

  out.stats = finalize_step(rate, duration_s, totals, hist, queue_peak, 0);
  append_step_line(out.jsonl, step, out.stats);
  return out;
}

// --- real backend: wall-clock producer, real transactions -------------------

struct Request {
  std::uint64_t enqueue_ns = 0;
  bool counted = false;
  sim::TxInstance inst;
};

using Clock = std::chrono::steady_clock;

StepOutput run_step_real(const Desc& desc, const OpenLoopConfig& ol,
                         const ServeOptions& opts, std::size_t step,
                         double rate, double duration_s, std::size_t workers) {
  auto gen = desc.make(1);  // one lane: the producer samples all instances
  const ArrivalSchedule sched(ol, rate);
  const std::uint64_t warmup_ns = seconds_to_ns(ol.warmup_s);
  const std::uint64_t end_ns = seconds_to_ns(ol.warmup_s + duration_s);

  std::vector<htm::TmWord> words(ol.table_words);
  htm::SoftHtm tm;
  obs::MetricsRegistry metrics(workers);
  rt::ThreadedExecutor::Options eopts;
  eopts.n_threads = workers;
  eopts.n_types = gen->n_types();
  eopts.physical_cores =
      opts.physical_cores != 0 ? opts.physical_cores : workers;
  eopts.metrics = opts.emit_metrics ? &metrics : nullptr;
  rt::ThreadedExecutor exec(tm, opts.policy, eopts);
  metrics.freeze();

  util::MpmcQueue<Request> queue(ol.queue_capacity);
  util::LatencyBuckets buckets;
  std::vector<util::LatencyHistogram> hists(workers);
  std::atomic<std::uint64_t> arrivals{0}, accepted{0}, rejected{0}, completed{0};
  std::atomic<std::uint64_t> sgl_commits{0}, queue_peak{0};
  std::atomic<bool> producer_done{false}, emitter_stop{false};
  std::atomic<std::size_t> ready{0};
  const std::size_t participants = workers + 1;  // workers + producer
  const auto t0_ready = [&] {
    ready.fetch_add(1);
    while (ready.load() < participants) std::this_thread::yield();
  };
  // t0 is set by the producer once everyone is spinning; the emitter only
  // reads it after the producer published it.
  std::atomic<std::int64_t> t0_ns{0};

  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t t = 0; t < workers; ++t) {
    threads.emplace_back([&, t] {
      auto h = exec.make_handle(static_cast<core::ThreadId>(t));
      t0_ready();
      Request r;
      const auto serve_one = [&] {
        const rt::CommitMode mode = run_instance(*h, words, r.inst);
        const std::uint64_t now = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now().time_since_epoch())
                .count());
        completed.fetch_add(1, std::memory_order_relaxed);
        if (r.counted) {
          const std::uint64_t lat = now > r.enqueue_ns ? now - r.enqueue_ns : 0;
          hists[t].record(lat);
          buckets.record(lat);
          if (mode == rt::CommitMode::kSglFallback) {
            sgl_commits.fetch_add(1, std::memory_order_relaxed);
          }
        }
      };
      for (;;) {
        if (queue.try_pop(r)) {
          serve_one();
          continue;
        }
        if (producer_done.load(std::memory_order_acquire)) {
          // The producer stopped pushing before setting the flag, so one
          // more failed pop after observing it means the queue is drained
          // (a pop-miss against an empty queue, not a half-pushed cell).
          if (!queue.try_pop(r)) break;
          serve_one();
          continue;
        }
        std::this_thread::yield();
      }
    });
  }

  std::thread producer([&] {
    gen->init(0);
    util::Xoshiro256 rng(step_seed(opts.seed, step));
    t0_ready();
    const auto t0 = Clock::now();
    t0_ns.store(std::chrono::duration_cast<std::chrono::nanoseconds>(
                    t0.time_since_epoch())
                    .count(),
                std::memory_order_release);
    sim::TxInstance inst;
    std::uint64_t next_ns = sched.next_gap_ns(0.0, rng);
    while (next_ns < end_ns && !gen->exhausted(0)) {
      const auto target =
          t0 + std::chrono::nanoseconds(static_cast<std::int64_t>(next_ns));
      for (;;) {  // sleep coarsely, then yield-spin the last stretch
        const auto now = Clock::now();
        if (now >= target) break;
        if (target - now > std::chrono::microseconds(200)) {
          std::this_thread::sleep_for(target - now -
                                      std::chrono::microseconds(100));
        } else {
          std::this_thread::yield();
        }
      }
      const double progress =
          static_cast<double>(next_ns) / static_cast<double>(end_ns);
      gen->next(0, progress, rng, inst);
      Request r;
      r.enqueue_ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              Clock::now().time_since_epoch())
              .count());
      r.counted = next_ns >= warmup_ns;
      r.inst = std::move(inst);
      arrivals.fetch_add(1, std::memory_order_relaxed);
      if (queue.try_push(std::move(r))) {
        accepted.fetch_add(1, std::memory_order_relaxed);
        const std::uint64_t depth = queue.approx_size();
        std::uint64_t cur = queue_peak.load(std::memory_order_relaxed);
        while (depth > cur && !queue_peak.compare_exchange_weak(
                                  cur, depth, std::memory_order_relaxed)) {
        }
      } else {
        rejected.fetch_add(1, std::memory_order_relaxed);
      }
      next_ns += sched.next_gap_ns(static_cast<double>(next_ns) / 1e9, rng);
    }
    producer_done.store(true, std::memory_order_release);
  });

  // Interval emitter: the monitor thread. Samples the shared counters and
  // the coarse bucket histogram on a wall-clock cadence; exact numbers come
  // from the per-worker histograms after the step quiesces.
  std::string interval_jsonl;
  std::thread emitter([&] {
    obs::PeriodicMetricsDelta deltas(opts.emit_metrics ? &metrics : nullptr);
    util::LatencyBucketCounts bprev{};
    Totals tprev;
    while (t0_ns.load(std::memory_order_acquire) == 0 &&
           !emitter_stop.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    const auto t0 = std::chrono::time_point<Clock>(
        std::chrono::nanoseconds(t0_ns.load(std::memory_order_acquire)));
    std::uint64_t tick = 1;
    while (!emitter_stop.load(std::memory_order_acquire)) {
      const auto target =
          t0 + std::chrono::milliseconds(
                   static_cast<std::int64_t>(tick * ol.emit_interval_ms));
      std::this_thread::sleep_until(target);
      if (emitter_stop.load(std::memory_order_acquire)) break;
      const double t_s =
          std::chrono::duration<double>(Clock::now() - t0).count();
      const Totals cur{arrivals.load(std::memory_order_relaxed),
                       accepted.load(std::memory_order_relaxed),
                       rejected.load(std::memory_order_relaxed),
                       completed.load(std::memory_order_relaxed)};
      append_interval_line(
          interval_jsonl, step, t_s, sched.rate_at(t_s), cur, tprev,
          queue.approx_size(), buckets.snapshot(), bprev,
          opts.emit_metrics ? deltas.delta_fields({"rt.", "htm.", "seer."})
                            : std::string());
      ++tick;
    }
  });

  producer.join();
  for (auto& th : threads) th.join();
  emitter_stop.store(true, std::memory_order_release);
  emitter.join();

  util::LatencyHistogram hist;
  for (const util::LatencyHistogram& h : hists) hist.merge(h);
  Totals totals{arrivals.load(), accepted.load(), rejected.load(),
                completed.load()};
  StepOutput out;
  out.jsonl = std::move(interval_jsonl);
  out.stats = finalize_step(rate, duration_s, totals, hist, queue_peak.load(),
                            sgl_commits.load());
  append_step_line(out.jsonl, step, out.stats);
  return out;
}

}  // namespace

ServeReport run_serve(const Desc& desc, const OpenLoopConfig& ol,
                      const ServeOptions& opts) {
  const double duration_s =
      opts.duration_override_s > 0.0 ? opts.duration_override_s : ol.duration_s;
  const std::vector<double> rates = opts.rate_override > 0.0
                                        ? std::vector<double>{opts.rate_override}
                                        : ol.rates();
  const std::size_t workers = opts.workers_override != 0
                                  ? opts.workers_override
                                  : static_cast<std::size_t>(ol.workers);

  ServeReport report;
  std::string& out = report.jsonl;
  out += "{\"kind\": \"serve_header\", \"version\": 1, \"workload\": ";
  append_str(out, desc.name);
  out += ", \"policy\": ";
  append_str(out, rt::to_string(opts.policy.kind));
  out += ", \"mode\": ";
  append_str(out, opts.deterministic ? "deterministic" : "real");
  out += ", \"process\": ";
  append_str(out, to_string(ol.process));
  out += ", \"workers\": ";
  append_u64(out, workers);
  out += ", \"queue_capacity\": ";
  append_u64(out, ol.queue_capacity);
  out += ", \"table_words\": ";
  append_u64(out, ol.table_words);
  out += ", \"rates\": [";
  for (std::size_t i = 0; i < rates.size(); ++i) {
    if (i != 0) out += ", ";
    append_dbl(out, rates[i]);
  }
  out += "], \"duration_s\": ";
  append_dbl(out, duration_s);
  out += ", \"warmup_s\": ";
  append_dbl(out, ol.warmup_s);
  out += ", \"emit_interval_ms\": ";
  append_u64(out, ol.emit_interval_ms);
  out += ", \"seed\": ";
  append_u64(out, opts.seed);
  out += "}\n";

  std::vector<StepOutput> steps;
  if (opts.deterministic) {
    // Steps are independent simulations; fan out and reassemble in step
    // order. parallel_for_indexed keeps the observable result identical to
    // a serial sweep, which is the --jobs byte-identity contract.
    steps = util::parallel_for_indexed(
        opts.jobs, rates.size(), [&](std::size_t i) {
          return run_step_virtual(desc, ol, opts, i, rates[i], duration_s,
                                  workers);
        });
  } else {
    // Real steps share the machine; running two at once would corrupt both
    // measurements. Always serial.
    for (std::size_t i = 0; i < rates.size(); ++i) {
      steps.push_back(
          run_step_real(desc, ol, opts, i, rates[i], duration_s, workers));
    }
  }

  Totals grand;
  std::uint64_t worst_p99 = 0;
  for (std::size_t i = 0; i < steps.size(); ++i) {
    out += steps[i].jsonl;
    const StepStats& s = steps[i].stats;
    report.steps.push_back(s);
    grand.arrivals += s.arrivals;
    grand.rejected += s.rejected;
    grand.completed += s.completed;
    if (s.p99_ns > worst_p99) worst_p99 = s.p99_ns;
    const bool p99_over =
        ol.knee_p99_ms > 0.0 &&
        static_cast<double>(s.p99_ns) > ol.knee_p99_ms * 1e6;
    const bool shed_over = s.rejected_fraction > ol.knee_rejected_fraction;
    if (!report.saturated && (p99_over || shed_over)) {
      report.saturated = true;
      report.knee_rate = s.offered_rate;
    }
  }
  report.knee_rate = report.saturated ? report.knee_rate : 0.0;

  out += "{\"kind\": \"summary\", \"steps\": ";
  append_u64(out, steps.size());
  out += ", \"knee_rate\": ";
  append_dbl(out, report.knee_rate);
  out += ", \"saturated\": ";
  out += report.saturated ? "true" : "false";
  out += ", \"worst_p99_ns\": ";
  append_u64(out, worst_p99);
  out += ", \"arrivals\": ";
  append_u64(out, grand.arrivals);
  out += ", \"rejected\": ";
  append_u64(out, grand.rejected);
  out += ", \"completed\": ";
  append_u64(out, grand.completed);
  out += "}\n";
  return report;
}

}  // namespace seer::workload
