// Umbrella header: everything a downstream user of the Seer library needs.
//
//   #include "seer/seer.hpp"
//
//   * run transactions on real threads:   rt::ThreadedExecutor (+ htm::SoftHtm)
//   * pick a scheduling policy:           rt::PolicyConfig / rt::PolicyKind
//   * inspect what Seer inferred:         core::SeerScheduler
//   * evaluate policies in simulation:    sim::Machine + stamp::make_workload
#pragma once

#include "core/seer_scheduler.hpp"
#include "htm/abort_code.hpp"
#include "htm/soft_htm.hpp"
#include "runtime/policies.hpp"
#include "runtime/threaded_executor.hpp"
#include "sim/machine.hpp"
#include "stamp/workloads.hpp"

#if defined(SEER_ENABLE_TSX)
#include "htm/tsx_backend.hpp"
#endif
