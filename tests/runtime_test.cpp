// Tests for the policy layer: directive sequences of every policy under
// scripted abort-status sequences, commit-mode classification, and the
// Seer policy's lock-management rules (Alg. 1-4).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "runtime/policies.hpp"
#include "runtime/policy.hpp"

namespace seer::rt {
namespace {

using htm::AbortStatus;

// ------------------------------------------------------ classify_commit ----

struct ClassifyCase {
  LockList held;
  bool sgl;
  CommitMode expected;
};

class ClassifyParam : public ::testing::TestWithParam<ClassifyCase> {};

TEST_P(ClassifyParam, Classifies) {
  const auto& c = GetParam();
  EXPECT_EQ(classify_commit(c.held, c.sgl), c.expected);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ClassifyParam,
    ::testing::Values(
        ClassifyCase{{}, false, CommitMode::kHtmNoLocks},
        ClassifyCase{{}, true, CommitMode::kSglFallback},
        ClassifyCase{{kAuxLock}, false, CommitMode::kHtmAuxLock},
        ClassifyCase{{kSchedLock}, false, CommitMode::kHtmSchedLock},
        ClassifyCase{{tx_lock(3)}, false, CommitMode::kHtmTxLocks},
        ClassifyCase{{core_lock(1)}, false, CommitMode::kHtmCoreLock},
        ClassifyCase{{core_lock(0), tx_lock(2)}, false, CommitMode::kHtmTxAndCore},
        ClassifyCase{{tx_lock(1), tx_lock(2)}, false, CommitMode::kHtmTxLocks},
        ClassifyCase{{core_lock(0), tx_lock(2)}, true, CommitMode::kSglFallback}));

TEST(LockId, CanonicalOrdering) {
  EXPECT_LT(kAuxLock, kSchedLock);
  EXPECT_LT(kSchedLock, core_lock(0));
  EXPECT_LT(core_lock(5), tx_lock(0));
  EXPECT_LT(tx_lock(0), tx_lock(1));
  EXPECT_EQ(tx_lock(3), tx_lock(3));
}

// -------------------------------------------------------------- helpers ----

PolicyConfig config_for(PolicyKind kind) {
  PolicyConfig cfg;
  cfg.kind = kind;
  cfg.max_attempts = 5;
  cfg.hle_attempts = 2;
  return cfg;
}

// Runs a transaction to completion against a scripted status sequence and
// returns the directives observed. `statuses` aborts are consumed one per
// hardware attempt; when they run out, the next hardware attempt commits.
struct Trace {
  std::vector<Directive> directives;
  bool hardware_commit = false;
  LockList final_releases;
};

Trace run_scripted(Policy& p, core::TxTypeId tx, std::vector<AbortStatus> statuses) {
  Trace trace;
  p.begin_tx(tx, 0);
  std::size_t next = 0;
  for (int guard = 0; guard < 64; ++guard) {
    Directive d = p.next_attempt(0);
    trace.directives.push_back(d);
    if (d.mode == Directive::Mode::kFallback) {
      trace.hardware_commit = false;
      trace.final_releases = p.on_commit(/*hardware=*/false, 0);
      return trace;
    }
    if (next < statuses.size()) {
      p.on_abort(statuses[next++], 0);
    } else {
      trace.hardware_commit = true;
      trace.final_releases = p.on_commit(/*hardware=*/true, 0);
      return trace;
    }
  }
  ADD_FAILURE() << "policy did not terminate";
  return trace;
}

std::vector<AbortStatus> conflicts(int n) {
  return std::vector<AbortStatus>(static_cast<std::size_t>(n),
                                  AbortStatus::conflict());
}

// ------------------------------------------------------------------ RTM ----

TEST(RtmPolicy, CommitsFirstTryWithoutLocks) {
  PolicyShared shared(config_for(PolicyKind::kRtm), 4, 4);
  auto p = shared.make_thread_policy(0);
  const Trace t = run_scripted(*p, 0, {});
  ASSERT_EQ(t.directives.size(), 1u);
  EXPECT_EQ(t.directives[0].mode, Directive::Mode::kHardware);
  EXPECT_TRUE(t.directives[0].wait_sgl) << "lemming avoidance";
  EXPECT_TRUE(t.directives[0].acquires.empty());
  EXPECT_TRUE(t.directives[0].waits.empty());
  EXPECT_TRUE(t.hardware_commit);
}

TEST(RtmPolicy, FallsBackAfterBudgetExhausted) {
  PolicyShared shared(config_for(PolicyKind::kRtm), 4, 4);
  auto p = shared.make_thread_policy(0);
  const Trace t = run_scripted(*p, 0, conflicts(5));
  ASSERT_EQ(t.directives.size(), 6u) << "5 hardware attempts then fallback";
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(t.directives[static_cast<std::size_t>(i)].mode,
              Directive::Mode::kHardware);
  }
  EXPECT_EQ(t.directives[5].mode, Directive::Mode::kFallback);
  EXPECT_FALSE(t.hardware_commit);
}

TEST(RtmPolicy, BudgetResetsPerTransaction) {
  PolicyShared shared(config_for(PolicyKind::kRtm), 4, 4);
  auto p = shared.make_thread_policy(0);
  (void)run_scripted(*p, 0, conflicts(5));
  const Trace t = run_scripted(*p, 0, conflicts(2));
  EXPECT_EQ(t.directives.size(), 3u);
  EXPECT_TRUE(t.hardware_commit);
}

// ------------------------------------------------------------------ HLE ----

TEST(HlePolicy, SmallBudgetAndNoLemmingAvoidance) {
  PolicyShared shared(config_for(PolicyKind::kHle), 4, 4);
  auto p = shared.make_thread_policy(0);
  const Trace t = run_scripted(*p, 0, conflicts(5));
  ASSERT_EQ(t.directives.size(), 3u) << "2 attempts then the elided lock";
  EXPECT_FALSE(t.directives[0].wait_sgl) << "HLE retries blindly";
  EXPECT_EQ(t.directives[2].mode, Directive::Mode::kFallback);
}

// ------------------------------------------------------------------ SCM ----

TEST(ScmPolicy, AcquiresAuxAfterFirstAbort) {
  PolicyShared shared(config_for(PolicyKind::kScm), 4, 4);
  auto p = shared.make_thread_policy(0);
  const Trace t = run_scripted(*p, 0, conflicts(1));
  ASSERT_EQ(t.directives.size(), 2u);
  EXPECT_TRUE(t.directives[0].acquires.empty());
  ASSERT_EQ(t.directives[1].acquires.size(), 1u);
  EXPECT_EQ(t.directives[1].acquires[0], kAuxLock);
  EXPECT_TRUE(t.hardware_commit);
  ASSERT_EQ(t.final_releases.size(), 1u);
  EXPECT_EQ(t.final_releases[0], kAuxLock);
}

TEST(ScmPolicy, AuxAcquiredOnceAcrossRetries) {
  PolicyShared shared(config_for(PolicyKind::kScm), 4, 4);
  auto p = shared.make_thread_policy(0);
  const Trace t = run_scripted(*p, 0, conflicts(3));
  ASSERT_EQ(t.directives.size(), 4u);
  EXPECT_EQ(t.directives[1].acquires.size(), 1u);
  EXPECT_TRUE(t.directives[2].acquires.empty());
  EXPECT_TRUE(t.directives[3].acquires.empty());
}

TEST(ScmPolicy, FallbackReleasesAuxFirst) {
  PolicyShared shared(config_for(PolicyKind::kScm), 4, 4);
  auto p = shared.make_thread_policy(0);
  const Trace t = run_scripted(*p, 0, conflicts(5));
  const Directive& fb = t.directives.back();
  EXPECT_EQ(fb.mode, Directive::Mode::kFallback);
  ASSERT_EQ(fb.releases.size(), 1u);
  EXPECT_EQ(fb.releases[0], kAuxLock);
  EXPECT_TRUE(t.final_releases.empty());
}

TEST(ScmPolicy, CleanRunNeverTouchesAux) {
  PolicyShared shared(config_for(PolicyKind::kScm), 4, 4);
  auto p = shared.make_thread_policy(0);
  const Trace t = run_scripted(*p, 0, {});
  EXPECT_TRUE(t.directives[0].acquires.empty());
  EXPECT_TRUE(t.final_releases.empty());
}

// ------------------------------------------------------------------ ATS ----

TEST(AtsPolicy, ContentionFactorEma) {
  PolicyShared shared(config_for(PolicyKind::kAts), 4, 4);
  EXPECT_DOUBLE_EQ(shared.ats_contention(0), 0.0);
  shared.ats_update(0, true);
  EXPECT_DOUBLE_EQ(shared.ats_contention(0), 0.3);
  shared.ats_update(0, true);
  EXPECT_DOUBLE_EQ(shared.ats_contention(0), 0.3 * 0.7 + 0.3);
  shared.ats_update(0, false);
  EXPECT_NEAR(shared.ats_contention(0), (0.3 * 0.7 + 0.3) * 0.7, 1e-12);
  EXPECT_DOUBLE_EQ(shared.ats_contention(1), 0.0) << "per-thread factors";
}

TEST(AtsPolicy, SerializesAboveThreshold) {
  PolicyShared shared(config_for(PolicyKind::kAts), 4, 4);
  auto p = shared.make_thread_policy(0);
  // Drive the contention factor above 0.5 via repeated aborting runs.
  (void)run_scripted(*p, 0, conflicts(5));
  ASSERT_GT(shared.ats_contention(0), 0.5);
  const Trace t = run_scripted(*p, 0, {});
  ASSERT_EQ(t.directives.size(), 1u);
  ASSERT_EQ(t.directives[0].acquires.size(), 1u);
  EXPECT_EQ(t.directives[0].acquires[0], kSchedLock);
  ASSERT_EQ(t.final_releases.size(), 1u);
  EXPECT_EQ(t.final_releases[0], kSchedLock);
}

TEST(AtsPolicy, CalmThreadRunsFree) {
  PolicyShared shared(config_for(PolicyKind::kAts), 4, 4);
  auto p = shared.make_thread_policy(1);
  const Trace t = run_scripted(*p, 0, {});
  EXPECT_TRUE(t.directives[0].acquires.empty());
}

// ------------------------------------------------------------------ SGL ----

TEST(SglPolicy, AlwaysFallsBack) {
  PolicyShared shared(config_for(PolicyKind::kSgl), 4, 4);
  auto p = shared.make_thread_policy(0);
  const Trace t = run_scripted(*p, 0, {});
  ASSERT_EQ(t.directives.size(), 1u);
  EXPECT_EQ(t.directives[0].mode, Directive::Mode::kFallback);
}

// ----------------------------------------------------------------- Seer ----

PolicyConfig seer_config(bool tx_locks = true, bool core_locks = true,
                         bool htm_acquire = true) {
  PolicyConfig cfg;
  cfg.kind = PolicyKind::kSeer;
  cfg.max_attempts = 5;
  cfg.seer.physical_cores = 4;
  cfg.seer.enable_tx_locks = tx_locks;
  cfg.seer.enable_core_locks = core_locks;
  cfg.seer.enable_htm_lock_acquire = htm_acquire;
  cfg.seer.enable_hill_climbing = false;
  cfg.seer.update_period = 1u << 30;  // never auto-rebuild in these tests
  return cfg;
}

// Plants a scheme edge pair (a <-> b) by manufacturing statistics and
// forcing a rebuild.
void plant_edge(core::SeerScheduler& s, core::TxTypeId a, core::TxTypeId b) {
  s.announce(1, b);
  for (int i = 0; i < 90; ++i) s.record_abort(0, a);
  for (int i = 0; i < 10; ++i) s.record_commit(0, a);
  s.clear(1);
  // Background benign evidence against another type so the Gaussian has
  // contrast to cut on.
  const core::TxTypeId other = static_cast<core::TxTypeId>(
      (std::max(a, b) + 1) % static_cast<core::TxTypeId>(s.config().n_types));
  s.announce(1, other);
  for (int i = 0; i < 95; ++i) s.record_commit(0, a);
  for (int i = 0; i < 5; ++i) s.record_abort(0, a);
  s.clear(1);
  s.force_update(0);
}

TEST(SeerPolicy, AnnouncesOnBeginAndClearsOnCommit) {
  PolicyShared shared(seer_config(), 8, 4);
  auto p = shared.make_thread_policy(3);
  p->begin_tx(2, 0);
  EXPECT_EQ(shared.seer()->active_table().peek(3), 2);
  (void)p->next_attempt(0);
  (void)p->on_commit(true, 0);
  EXPECT_EQ(shared.seer()->active_table().peek(3), core::kNoTx);
}

TEST(SeerPolicy, WaitsOnOwnLocksEveryAttempt) {
  PolicyShared shared(seer_config(), 8, 4);
  auto p = shared.make_thread_policy(5);  // physical core 5 % 4 = 1
  p->begin_tx(2, 0);
  const Directive d = p->next_attempt(0);
  EXPECT_EQ(d.mode, Directive::Mode::kHardware);
  EXPECT_TRUE(d.wait_sgl);
  EXPECT_TRUE(d.waits.contains(tx_lock(2))) << "Alg. 4 line 57: own tx lock";
  EXPECT_TRUE(d.waits.contains(core_lock(1))) << "Alg. 4 line 58: own core lock";
  EXPECT_TRUE(d.acquires.empty());
}

TEST(SeerPolicy, CapacityAbortTriggersCoreLock) {
  PolicyShared shared(seer_config(), 8, 4);
  auto p = shared.make_thread_policy(6);  // core 2
  p->begin_tx(0, 0);
  (void)p->next_attempt(0);
  p->on_abort(AbortStatus::capacity(), 0);
  const Directive d = p->next_attempt(0);
  ASSERT_EQ(d.acquires.size(), 1u);
  EXPECT_EQ(d.acquires[0], core_lock(2));
  // Once held, the own-core-lock wait disappears.
  EXPECT_FALSE(d.waits.contains(core_lock(2)));
  // Held until commit.
  const LockList rel = p->on_commit(true, 0);
  ASSERT_EQ(rel.size(), 1u);
  EXPECT_EQ(rel[0], core_lock(2));
}

TEST(SeerPolicy, ConflictAbortDoesNotTakeCoreLock) {
  PolicyShared shared(seer_config(), 8, 4);
  auto p = shared.make_thread_policy(0);
  p->begin_tx(0, 0);
  (void)p->next_attempt(0);
  p->on_abort(AbortStatus::conflict(), 0);
  const Directive d = p->next_attempt(0);
  EXPECT_TRUE(d.acquires.empty());
}

TEST(SeerPolicy, TxLocksAcquiredOnlyOnLastAttempt) {
  PolicyShared shared(seer_config(), 8, 4);
  plant_edge(*shared.seer(), 1, 2);
  ASSERT_TRUE(shared.seer()->scheme()->row(1).contains(2));

  auto p = shared.make_thread_policy(0);
  p->begin_tx(1, 0);
  for (int attempt = 0; attempt < 3; ++attempt) {
    const Directive d = p->next_attempt(0);
    EXPECT_TRUE(d.acquires.empty()) << "no tx locks before the last attempt";
    p->on_abort(AbortStatus::conflict(), 0);
  }
  // 4th abort leaves one attempt: the next directive takes the row locks.
  p->on_abort(AbortStatus::conflict(), 0);
  const Directive d = p->next_attempt(0);
  ASSERT_EQ(d.acquires.size(), 1u);
  EXPECT_EQ(d.acquires[0], tx_lock(2));
  EXPECT_FALSE(d.waits.contains(tx_lock(1)))
      << "holding tx locks suppresses the own-lock wait (Alg. 4 line 57)";
  const LockList rel = p->on_commit(true, 0);
  EXPECT_TRUE(rel.contains(tx_lock(2)));
}

TEST(SeerPolicy, FallbackReleasesEverything) {
  PolicyShared shared(seer_config(), 8, 4);
  plant_edge(*shared.seer(), 1, 2);
  auto p = shared.make_thread_policy(0);
  p->begin_tx(1, 0);
  (void)p->next_attempt(0);
  p->on_abort(AbortStatus::capacity(), 0);  // -> core lock
  (void)p->next_attempt(0);
  p->on_abort(AbortStatus::conflict(), 0);
  (void)p->next_attempt(0);
  p->on_abort(AbortStatus::conflict(), 0);
  (void)p->next_attempt(0);
  p->on_abort(AbortStatus::conflict(), 0);  // attempts = 1 next
  (void)p->next_attempt(0);                 // acquires tx locks
  p->on_abort(AbortStatus::conflict(), 0);  // attempts = 0
  const Directive fb = p->next_attempt(0);
  EXPECT_EQ(fb.mode, Directive::Mode::kFallback);
  EXPECT_TRUE(fb.releases.contains(core_lock(0)));
  EXPECT_TRUE(fb.releases.contains(tx_lock(2)));
  EXPECT_TRUE(fb.acquires.empty());
  const LockList rel = p->on_commit(false, 0);
  EXPECT_TRUE(rel.empty()) << "everything was already released pre-SGL";
}

TEST(SeerPolicy, CanonicalReacquisitionWhenTxLocksJoinCoreLock) {
  PolicyShared shared(seer_config(), 8, 4);
  plant_edge(*shared.seer(), 1, 2);
  auto p = shared.make_thread_policy(2);  // core 2
  p->begin_tx(1, 0);
  (void)p->next_attempt(0);
  p->on_abort(AbortStatus::capacity(), 0);
  (void)p->next_attempt(0);  // acquires core lock
  p->on_abort(AbortStatus::conflict(), 0);
  (void)p->next_attempt(0);
  p->on_abort(AbortStatus::conflict(), 0);
  (void)p->next_attempt(0);
  p->on_abort(AbortStatus::conflict(), 0);  // one attempt left
  const Directive d = p->next_attempt(0);
  // Core lock must be released and re-acquired ahead of the tx locks so the
  // global acquisition order (core < tx) is preserved.
  ASSERT_EQ(d.releases.size(), 1u);
  EXPECT_EQ(d.releases[0], core_lock(2));
  ASSERT_EQ(d.acquires.size(), 2u);
  EXPECT_EQ(d.acquires[0], core_lock(2));
  EXPECT_EQ(d.acquires[1], tx_lock(2));
  EXPECT_TRUE(d.htm_batch) << "2+ locks: the multi-CAS-by-HTM path applies";
}

TEST(SeerPolicy, HtmBatchDisabledByConfig) {
  PolicyShared shared(seer_config(true, true, /*htm_acquire=*/false), 8, 4);
  plant_edge(*shared.seer(), 1, 2);
  auto p = shared.make_thread_policy(2);
  p->begin_tx(1, 0);
  (void)p->next_attempt(0);
  p->on_abort(AbortStatus::capacity(), 0);
  (void)p->next_attempt(0);
  for (int i = 0; i < 3; ++i) {
    p->on_abort(AbortStatus::conflict(), 0);
    if (i < 2) (void)p->next_attempt(0);
  }
  const Directive d = p->next_attempt(0);
  EXPECT_GE(d.acquires.size(), 2u);
  EXPECT_FALSE(d.htm_batch);
}

TEST(SeerPolicy, ProfileOnlyVariantNeverAcquiresOrWaits) {
  // The Figure 4 variant: full profiling, no lock acquisition.
  PolicyShared shared(seer_config(false, false, false), 8, 4);
  plant_edge(*shared.seer(), 1, 2);
  auto p = shared.make_thread_policy(0);
  p->begin_tx(1, 0);
  for (int i = 0; i < 5; ++i) {
    const Directive d = p->next_attempt(0);
    if (d.mode == Directive::Mode::kFallback) break;
    EXPECT_TRUE(d.acquires.empty());
    EXPECT_TRUE(d.waits.empty());
    p->on_abort(AbortStatus::capacity(), 0);
  }
  // Profiling still ran: statistics accumulated.
  EXPECT_GT(shared.seer()->merged_stats().total_executions(), 0u);
}

TEST(SeerPolicy, EmptyRowMeansNoTxLockAcquisition) {
  PolicyShared shared(seer_config(), 8, 4);  // empty scheme
  auto p = shared.make_thread_policy(0);
  p->begin_tx(1, 0);
  for (int i = 0; i < 4; ++i) {
    (void)p->next_attempt(0);
    p->on_abort(AbortStatus::conflict(), 0);
  }
  const Directive d = p->next_attempt(0);  // last attempt, row empty
  EXPECT_TRUE(d.acquires.empty());
}

TEST(SeerPolicy, MaintenanceOnlyOnDesignatedThread) {
  PolicyConfig cfg = seer_config();
  cfg.seer.update_period = 1;
  PolicyShared shared(cfg, 8, 4);
  auto p0 = shared.make_thread_policy(0);
  auto p1 = shared.make_thread_policy(1);
  // Generate enough executions for an update to be due.
  shared.seer()->record_commit(1, 0);
  shared.seer()->record_commit(1, 0);
  EXPECT_FALSE(p1->maintenance(100));
  EXPECT_TRUE(p0->maintenance(100));
  EXPECT_EQ(shared.seer()->rebuild_count(), 1u);
}

TEST(SeerPolicy, RecordsAbortAndCommitStats) {
  PolicyShared shared(seer_config(), 8, 4);
  auto p0 = shared.make_thread_policy(0);
  auto p1 = shared.make_thread_policy(1);
  p1->begin_tx(3, 0);  // announce type 3 on thread 1
  p0->begin_tx(2, 0);
  (void)p0->next_attempt(0);
  p0->on_abort(AbortStatus::conflict(), 0);
  (void)p0->next_attempt(0);
  (void)p0->on_commit(true, 0);
  const core::GlobalStats g = shared.seer()->merged_stats();
  EXPECT_EQ(g.abort(2, 3), 1u);
  EXPECT_EQ(g.commit(2, 3), 1u);
  EXPECT_EQ(g.execs(2), 2u);
}

TEST(SeerPolicy, SglCommitDoesNotRecordCommitStats) {
  PolicyShared shared(seer_config(), 8, 4);
  auto p0 = shared.make_thread_policy(0);
  auto p1 = shared.make_thread_policy(1);
  p1->begin_tx(3, 0);
  p0->begin_tx(2, 0);
  (void)p0->on_commit(/*hardware=*/false, 0);  // Alg. 2: only HW commits record
  const core::GlobalStats g = shared.seer()->merged_stats();
  EXPECT_EQ(g.commit(2, 3), 0u);
  EXPECT_EQ(g.execs(2), 0u);
  EXPECT_EQ(shared.seer()->active_table().peek(0), core::kNoTx)
      << "the active slot clears on either path";
}

// One parameterized sweep: every policy terminates and leaks no locks under
// every abort-cause bombardment.
struct PolicyStressCase {
  PolicyKind kind;
  htm::AbortCause cause;
};

class PolicyStress : public ::testing::TestWithParam<PolicyStressCase> {};

TEST_P(PolicyStress, TerminatesAndBalancesLocks) {
  const auto [kind, cause] = GetParam();
  PolicyConfig cfg = config_for(kind);
  if (kind == PolicyKind::kSeer) cfg = seer_config();
  PolicyShared shared(cfg, 8, 4);
  auto p = shared.make_thread_policy(2);

  AbortStatus status = AbortStatus::other();
  switch (cause) {
    case htm::AbortCause::kConflict: status = AbortStatus::conflict(); break;
    case htm::AbortCause::kCapacity: status = AbortStatus::capacity(); break;
    case htm::AbortCause::kExplicit:
      status = AbortStatus::explicit_abort(htm::kXAbortCodeSglLocked);
      break;
    case htm::AbortCause::kOther: break;
  }

  for (int round = 0; round < 10; ++round) {
    LockList held;
    p->begin_tx(round % 4, 0);
    for (int guard = 0;; ++guard) {
      ASSERT_LT(guard, 32) << "policy failed to terminate";
      const Directive d = p->next_attempt(0);
      for (const LockId& id : d.releases) {
        auto it = std::find(held.begin(), held.end(), id);
        ASSERT_NE(it, held.end()) << "released a lock it does not hold";
        *it = held.back();
        held.pop_back();
      }
      for (const LockId& id : d.acquires) {
        ASSERT_FALSE(held.contains(id)) << "double acquisition";
        held.push_back(id);
      }
      if (d.mode == Directive::Mode::kFallback) {
        const LockList rel = p->on_commit(false, 0);
        for (const LockId& id : rel) {
          auto it = std::find(held.begin(), held.end(), id);
          ASSERT_NE(it, held.end());
          *it = held.back();
          held.pop_back();
        }
        break;
      }
      p->on_abort(status, 0);
    }
    EXPECT_TRUE(held.empty()) << "locks leaked across a transaction";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PolicyStress,
    ::testing::Values(PolicyStressCase{PolicyKind::kHle, htm::AbortCause::kConflict},
                      PolicyStressCase{PolicyKind::kRtm, htm::AbortCause::kConflict},
                      PolicyStressCase{PolicyKind::kRtm, htm::AbortCause::kCapacity},
                      PolicyStressCase{PolicyKind::kScm, htm::AbortCause::kConflict},
                      PolicyStressCase{PolicyKind::kScm, htm::AbortCause::kExplicit},
                      PolicyStressCase{PolicyKind::kAts, htm::AbortCause::kConflict},
                      PolicyStressCase{PolicyKind::kSgl, htm::AbortCause::kOther},
                      PolicyStressCase{PolicyKind::kSeer, htm::AbortCause::kConflict},
                      PolicyStressCase{PolicyKind::kSeer, htm::AbortCause::kCapacity},
                      PolicyStressCase{PolicyKind::kSeer, htm::AbortCause::kExplicit},
                      PolicyStressCase{PolicyKind::kSeer, htm::AbortCause::kOther}));

TEST(SeerPolicy, SampledStatisticsScaleDownButStayUnbiased) {
  // Extension (SeerConfig::sampling_shift): with shift = 2 roughly a quarter
  // of the events are recorded, and the abort/commit RATIO — all the
  // inference consumes — is preserved.
  PolicyConfig cfg = seer_config();
  cfg.seer.sampling_shift = 2;
  PolicyShared shared(cfg, 8, 4);
  auto p0 = shared.make_thread_policy(0);
  auto p1 = shared.make_thread_policy(1);
  p1->begin_tx(3, 0);  // keep a peer announced

  constexpr int kRounds = 4000;
  for (int i = 0; i < kRounds; ++i) {
    p0->begin_tx(2, 0);
    (void)p0->next_attempt(0);
    p0->on_abort(AbortStatus::conflict(), 0);  // one abort...
    (void)p0->next_attempt(0);
    (void)p0->on_commit(true, 0);  // ...and one commit per round
  }
  const core::GlobalStats g = shared.seer()->merged_stats();
  const double recorded =
      static_cast<double>(g.abort(2, 3) + g.commit(2, 3));
  EXPECT_NEAR(recorded / (2.0 * kRounds), 0.25, 0.05)
      << "sampling rate should be ~2^-shift";
  ASSERT_GT(g.abort(2, 3) + g.commit(2, 3), 100u);
  const double ratio = static_cast<double>(g.abort(2, 3)) /
                       static_cast<double>(g.abort(2, 3) + g.commit(2, 3));
  EXPECT_NEAR(ratio, 0.5, 0.06) << "sampling must not bias the ratio";
}

TEST(SeerPolicy, SamplingShiftZeroRecordsEverything) {
  PolicyConfig cfg = seer_config();
  cfg.seer.sampling_shift = 0;
  PolicyShared shared(cfg, 8, 4);
  auto p0 = shared.make_thread_policy(0);
  auto p1 = shared.make_thread_policy(1);
  p1->begin_tx(3, 0);
  for (int i = 0; i < 100; ++i) {
    p0->begin_tx(2, 0);
    (void)p0->next_attempt(0);
    (void)p0->on_commit(true, 0);
  }
  EXPECT_EQ(shared.seer()->merged_stats().commit(2, 3), 100u);
}

// ----------------------------------------------------------------- Oracle --

TEST(OraclePolicy, LearnsFromPreciseAttribution) {
  PolicyConfig cfg = config_for(PolicyKind::kOracle);
  cfg.oracle.update_period = 4;
  cfg.oracle.conflict_threshold = 0.05;
  PolicyShared shared(cfg, 4, 4);
  auto p = shared.make_thread_policy(0);

  // Feed precisely-attributed conflicts: type 1 keeps getting killed by 2.
  for (int i = 0; i < 20; ++i) {
    p->begin_tx(1, 0);
    (void)p->next_attempt(0);
    p->on_conflict_attribution(2);
    p->on_abort(AbortStatus::conflict(), 0);
    (void)p->next_attempt(0);
    (void)p->on_commit(true, 0);
  }
  ASSERT_NE(shared.oracle(), nullptr);
  EXPECT_GE(shared.oracle()->conflicts(1, 2), 20u);
  EXPECT_TRUE(shared.oracle()->scheme()->row(1).contains(2));
  EXPECT_TRUE(shared.oracle()->scheme()->row(2).contains(1)) << "symmetric";
}

TEST(OraclePolicy, SerializesFromFirstRetry) {
  PolicyConfig cfg = config_for(PolicyKind::kOracle);
  cfg.oracle.update_period = 2;
  PolicyShared shared(cfg, 4, 4);
  auto p = shared.make_thread_policy(0);
  for (int i = 0; i < 10; ++i) {
    p->begin_tx(1, 0);
    (void)p->next_attempt(0);
    p->on_conflict_attribution(2);
    p->on_abort(AbortStatus::conflict(), 0);
    (void)p->next_attempt(0);
    (void)p->on_commit(true, 0);
  }
  // Now a fresh instance: first attempt free, first RETRY takes the lock —
  // earlier than Seer's attempts==1 last resort.
  p->begin_tx(1, 0);
  const Directive first = p->next_attempt(0);
  EXPECT_TRUE(first.acquires.empty());
  EXPECT_TRUE(first.waits.contains(tx_lock(1))) << "waits on own lock";
  p->on_abort(AbortStatus::conflict(), 0);
  const Directive retry = p->next_attempt(0);
  ASSERT_EQ(retry.acquires.size(), 1u);
  EXPECT_EQ(retry.acquires[0], tx_lock(2));
  const LockList rel = p->on_commit(true, 0);
  EXPECT_TRUE(rel.contains(tx_lock(2)));
}

TEST(OraclePolicy, IgnoresAttributionlessAborts) {
  PolicyConfig cfg = config_for(PolicyKind::kOracle);
  cfg.oracle.update_period = 2;
  PolicyShared shared(cfg, 4, 4);
  auto p = shared.make_thread_policy(0);
  for (int i = 0; i < 10; ++i) {
    p->begin_tx(1, 0);
    (void)p->next_attempt(0);
    p->on_abort(AbortStatus::capacity(), 0);  // no attribution call
    (void)p->next_attempt(0);
    (void)p->on_commit(true, 0);
  }
  EXPECT_TRUE(shared.oracle()->scheme()->empty());
}

TEST(PolicyShared, KindNamesRoundTrip) {
  EXPECT_STREQ(to_string(PolicyKind::kHle), "HLE");
  EXPECT_STREQ(to_string(PolicyKind::kRtm), "RTM");
  EXPECT_STREQ(to_string(PolicyKind::kScm), "SCM");
  EXPECT_STREQ(to_string(PolicyKind::kAts), "ATS");
  EXPECT_STREQ(to_string(PolicyKind::kSgl), "SGL");
  EXPECT_STREQ(to_string(PolicyKind::kSeer), "Seer");
}

TEST(PolicyShared, SeerOnlyForSeerKind) {
  PolicyShared rtm(config_for(PolicyKind::kRtm), 4, 4);
  EXPECT_EQ(rtm.seer(), nullptr);
  PolicyShared seer(seer_config(), 4, 4);
  EXPECT_NE(seer.seer(), nullptr);
  EXPECT_EQ(seer.seer()->config().n_threads, 4u);
  EXPECT_EQ(seer.seer()->config().n_types, 4u);
}

}  // namespace
}  // namespace seer::rt
