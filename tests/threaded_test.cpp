// Tests for the real-threads driver (ThreadedExecutor over SoftHtm): every
// policy must preserve atomicity under genuine concurrency, balance its
// locks, and produce consistent statistics. Thread counts are kept small —
// the CI box may have a single core — and no assertion is timing-based.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "htm/soft_htm.hpp"
#include "runtime/threaded_executor.hpp"

namespace seer::rt {
namespace {

ThreadedExecutor::Options small_opts(std::size_t threads, std::size_t types) {
  ThreadedExecutor::Options o;
  o.n_threads = threads;
  o.n_types = types;
  o.physical_cores = 2;
  return o;
}

PolicyConfig make_policy(PolicyKind kind) {
  PolicyConfig cfg;
  cfg.kind = kind;
  if (kind == PolicyKind::kSeer) {
    cfg.seer.update_period = 128;
    cfg.seer.physical_cores = 2;
  }
  return cfg;
}

// ------------------------------------------------------- single thread -----

TEST(ThreadedExecutor, SingleThreadCommitsInHardware) {
  htm::SoftHtm tm;
  ThreadedExecutor exec(tm, make_policy(PolicyKind::kRtm), small_opts(1, 1));
  auto h = exec.make_handle(0);
  htm::TmWord w{0};
  for (int i = 0; i < 100; ++i) {
    const CommitMode mode = h->run(0, [&](auto& tx) { tx.write(w, tx.read(w) + 1); });
    EXPECT_EQ(mode, CommitMode::kHtmNoLocks);
  }
  EXPECT_EQ(w.load(), 100u);
  EXPECT_EQ(h->counters().commits_by_mode[0], 100u);
  EXPECT_EQ(h->counters().hw_attempts, 100u);
}

TEST(ThreadedExecutor, SglPolicyRunsPessimistically) {
  htm::SoftHtm tm;
  ThreadedExecutor exec(tm, make_policy(PolicyKind::kSgl), small_opts(1, 1));
  auto h = exec.make_handle(0);
  htm::TmWord w{0};
  const CommitMode mode = h->run(0, [&](auto& tx) { tx.write(w, 7); });
  EXPECT_EQ(mode, CommitMode::kSglFallback);
  EXPECT_EQ(w.load(), 7u);
  EXPECT_EQ(h->counters().hw_attempts, 0u);
  EXPECT_FALSE(exec.lock_space().sgl().is_locked()) << "SGL released after use";
}

TEST(ThreadedExecutor, ExplicitCapacityFallsBackToSgl) {
  htm::SoftHtm tm(htm::SoftHtm::Config{.max_read_set = 4, .max_write_set = 4});
  ThreadedExecutor exec(tm, make_policy(PolicyKind::kRtm), small_opts(1, 1));
  auto h = exec.make_handle(0);
  std::vector<htm::TmWord> words(16);
  const CommitMode mode = h->run(0, [&](auto& tx) {
    for (auto& w : words) tx.write(w, 1);
  });
  EXPECT_EQ(mode, CommitMode::kSglFallback);
  for (auto& w : words) EXPECT_EQ(w.load(), 1u);
  const auto capacity_idx = static_cast<std::size_t>(htm::AbortCause::kCapacity);
  EXPECT_EQ(h->counters().aborts_by_cause[capacity_idx], 5u)
      << "all five budget attempts abort on capacity";
}

// --------------------------------------------------------- concurrency -----

class PolicyAtomicity : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(PolicyAtomicity, ConcurrentCounterExact) {
  htm::SoftHtm tm;
  constexpr std::size_t kThreads = 4;
  constexpr int kIters = 2500;
  ThreadedExecutor exec(tm, make_policy(GetParam()), small_opts(kThreads, 2));
  htm::TmWord counter{0};

  std::vector<std::unique_ptr<ThreadedExecutor::ThreadHandle>> handles;
  for (core::ThreadId t = 0; t < kThreads; ++t) handles.push_back(exec.make_handle(t));

  std::vector<std::thread> ts;
  for (std::size_t t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        (void)handles[t]->run(static_cast<core::TxTypeId>(i % 2), [&](auto& tx) {
          tx.write(counter, tx.read(counter) + 1);
        });
      }
    });
  }
  for (auto& th : ts) th.join();

  EXPECT_EQ(counter.load(), kThreads * kIters);
  const ExecutorStats stats = ThreadedExecutor::aggregate(handles);
  EXPECT_EQ(stats.commits(), kThreads * kIters) << "one commit per transaction";

  // Every lock must be free after the storm.
  LockSpace& ls = exec.lock_space();
  EXPECT_FALSE(ls.sgl().is_locked());
  EXPECT_FALSE(ls.get(kAuxLock).is_locked());
  EXPECT_FALSE(ls.get(kSchedLock).is_locked());
  for (std::uint16_t i = 0; i < 2; ++i) {
    EXPECT_FALSE(ls.get(tx_lock(i)).is_locked());
    EXPECT_FALSE(ls.get(core_lock(i)).is_locked());
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyAtomicity,
                         ::testing::Values(PolicyKind::kHle, PolicyKind::kRtm,
                                           PolicyKind::kScm, PolicyKind::kAts,
                                           PolicyKind::kSgl, PolicyKind::kSeer));

TEST(ThreadedExecutor, BankInvariantUnderSeer) {
  htm::SoftHtm tm;
  constexpr std::size_t kThreads = 4;
  constexpr int kAccounts = 16;
  constexpr std::uint64_t kInitial = 100;
  ThreadedExecutor exec(tm, make_policy(PolicyKind::kSeer), small_opts(kThreads, 2));
  std::vector<htm::TmWord> accounts(kAccounts);
  for (auto& a : accounts) a.store(kInitial);

  std::vector<std::unique_ptr<ThreadedExecutor::ThreadHandle>> handles;
  for (core::ThreadId t = 0; t < kThreads; ++t) handles.push_back(exec.make_handle(t));

  std::atomic<std::uint64_t> bad_audits{0};
  std::vector<std::thread> ts;
  for (std::size_t t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      util::Xoshiro256 rng(t + 1);
      for (int i = 0; i < 1500; ++i) {
        if (i % 8 == 0) {
          // Type 1: full audit.
          (void)handles[t]->run(1, [&](auto& tx) {
            std::uint64_t total = 0;
            for (auto& a : accounts) total += tx.read(a);
            if (total != kAccounts * kInitial) bad_audits.fetch_add(1);
          });
        } else {
          // Type 0: transfer.
          const auto from = rng.below(kAccounts);
          const auto to = (from + 1 + rng.below(kAccounts - 1)) % kAccounts;
          (void)handles[t]->run(0, [&](auto& tx) {
            const std::uint64_t f = tx.read(accounts[from]);
            if (f == 0) return;
            tx.write(accounts[from], f - 1);
            tx.write(accounts[to], tx.read(accounts[to]) + 1);
          });
        }
      }
    });
  }
  for (auto& th : ts) th.join();

  EXPECT_EQ(bad_audits.load(), 0u) << "an audit observed a torn bank state";
  std::uint64_t total = 0;
  for (auto& a : accounts) total += a.load();
  EXPECT_EQ(total, kAccounts * kInitial);
}

TEST(ThreadedExecutor, SeerStatisticsAccumulateUnderThreads) {
  htm::SoftHtm tm;
  constexpr std::size_t kThreads = 3;
  PolicyConfig pc = make_policy(PolicyKind::kSeer);
  ThreadedExecutor exec(tm, pc, small_opts(kThreads, 2));
  htm::TmWord hot{0};

  std::vector<std::unique_ptr<ThreadedExecutor::ThreadHandle>> handles;
  for (core::ThreadId t = 0; t < kThreads; ++t) handles.push_back(exec.make_handle(t));

  std::vector<std::thread> ts;
  for (std::size_t t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      for (int i = 0; i < 2000; ++i) {
        (void)handles[t]->run(0, [&](auto& tx) { tx.write(hot, tx.read(hot) + 1); });
      }
    });
  }
  for (auto& th : ts) th.join();

  core::SeerScheduler* seer = exec.policy_shared().seer();
  ASSERT_NE(seer, nullptr);
  EXPECT_EQ(seer->total_commits() +
                ThreadedExecutor::aggregate(handles)
                    .total.commits_by_mode[static_cast<std::size_t>(
                        CommitMode::kSglFallback)],
            kThreads * 2000u)
      << "hardware commits recorded + SGL commits = all transactions";
  EXPECT_EQ(seer->merged_stats().total_executions(),
            seer->total_commits() + ThreadedExecutor::aggregate(handles).aborts());
}

TEST(ThreadedExecutor, AggregateSumsAcrossHandles) {
  htm::SoftHtm tm;
  ThreadedExecutor exec(tm, make_policy(PolicyKind::kRtm), small_opts(2, 1));
  auto h0 = exec.make_handle(0);
  auto h1 = exec.make_handle(1);
  htm::TmWord w{0};
  (void)h0->run(0, [&](auto& tx) { tx.write(w, 1); });
  (void)h1->run(0, [&](auto& tx) { tx.write(w, 2); });
  std::vector<std::unique_ptr<ThreadedExecutor::ThreadHandle>> handles;
  handles.push_back(std::move(h0));
  handles.push_back(std::move(h1));
  const ExecutorStats stats = ThreadedExecutor::aggregate(handles);
  EXPECT_EQ(stats.commits(), 2u);
  EXPECT_DOUBLE_EQ(stats.mode_fraction(CommitMode::kHtmNoLocks), 1.0);
}

}  // namespace
}  // namespace seer::rt
