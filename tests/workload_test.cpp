// Tests for the pluggable workload-generator API (src/workload/):
//
//   * golden equivalence — every STAMP name resolved through the registry
//     produces the byte-identical instance/think stream (and machine run)
//     as the legacy stamp::make_workload path;
//   * bench equivalence — cells built from `--workload genome` match cells
//     built from the legacy stamp::WorkloadInfo table, byte for byte in the
//     --json output, for any --jobs value;
//   * trace record/replay — a recorded run replays decision-for-decision
//     (PR 2 differential checker) and cycle-for-cycle; malformed and
//     truncated trace files fail with errors naming the bad key;
//   * the phased and bst generators' own invariants;
//   * config-parse negatives — unknown generators, missing/mistyped fields,
//     and out-of-range phase boundaries all throw ConfigError naming the
//     offending key (the subprocess exit-code side lives in
//     scripts/test_workload_config.py).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench/runner.hpp"
#include "check/differential.hpp"
#include "sim/machine.hpp"
#include "stamp/workloads.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "workload/bst.hpp"
#include "workload/phased.hpp"
#include "workload/registry.hpp"
#include "workload/trace.hpp"

namespace seer::workload {
namespace {

using util::json::Value;

Value parse_or_die(const std::string& text) {
  std::string err;
  auto doc = util::json::parse(text, &err);
  EXPECT_TRUE(doc.has_value()) << err << "\nin: " << text;
  return doc.has_value() ? *doc : Value{};
}

// Expects `fn` to throw ConfigError whose message mentions `needle`.
template <typename Fn>
void expect_config_error(Fn&& fn, const std::string& needle) {
  try {
    fn();
    FAIL() << "expected ConfigError mentioning \"" << needle << "\"";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "diagnostic does not name the bad key: " << e.what();
  }
}

std::string temp_path(const std::string& leaf) {
  return ::testing::TempDir() + leaf;
}

// ------------------------------------------------- golden equivalence ----

void expect_same_instance(const sim::TxInstance& a, const sim::TxInstance& b,
                          const std::string& where) {
  EXPECT_EQ(a.type, b.type) << where;
  EXPECT_EQ(a.duration, b.duration) << where;
  EXPECT_EQ(a.reads, b.reads) << where;
  EXPECT_EQ(a.writes, b.writes) << where;
}

TEST(GoldenEquivalence, RegistryMatchesLegacyStampStreams) {
  for (const std::string& name : stamp_names()) {
    for (const std::uint64_t seed : {1ull, 0xBEEFull}) {
      for (const std::size_t n_threads : {1u, 4u}) {
        const Desc desc = find(name);
        EXPECT_EQ(desc.name, name);
        const auto via_registry = desc.make(n_threads);
        const auto legacy = stamp::make_workload(name, n_threads);
        ASSERT_EQ(via_registry->n_types(), legacy->n_types()) << name;
        for (std::size_t t = 0; t < legacy->n_types(); ++t) {
          EXPECT_EQ(via_registry->type_name(static_cast<core::TxTypeId>(t)),
                    legacy->type_name(static_cast<core::TxTypeId>(t)));
        }
        // Identical seeds in, identical streams out — interleaved think/next
        // like the executors drive it.
        for (std::size_t th = 0; th < n_threads; ++th) {
          const auto id = static_cast<core::ThreadId>(th);
          util::Xoshiro256 rng_a(seed ^ th);
          util::Xoshiro256 rng_b(seed ^ th);
          via_registry->init(id);
          legacy->init(id);
          sim::TxInstance ia;
          sim::TxInstance ib;
          for (int i = 0; i < 40; ++i) {
            const std::string where = name + " seed=" + std::to_string(seed) +
                                      " thread=" + std::to_string(th) +
                                      " i=" + std::to_string(i);
            EXPECT_EQ(via_registry->think_time(id, rng_a),
                      legacy->think_time(id, rng_b))
                << where;
            const double progress = i / 40.0;
            via_registry->next(id, progress, rng_a, ia);
            legacy->next(id, progress, rng_b, ib);
            expect_same_instance(ia, ib, where);
          }
          EXPECT_EQ(rng_a.state(), rng_b.state())
              << name << ": the paths consumed different draw counts";
        }
      }
    }
  }
}

TEST(GoldenEquivalence, DescMetadataMatchesLegacyTable) {
  const auto& legacy = stamp::all_workloads();
  ASSERT_EQ(stamp_names().size(), legacy.size());
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_EQ(stamp_names()[i], legacy[i].name) << "presentation order changed";
    const Desc d = find(legacy[i].name);
    EXPECT_EQ(d.bench_txs_per_thread, legacy[i].bench_txs_per_thread);
  }
}

TEST(GoldenEquivalence, MachineRunsMatchLegacyConstruction) {
  sim::MachineConfig cfg;
  cfg.n_threads = 4;
  cfg.txs_per_thread = 250;
  cfg.seed = 99;
  cfg.policy.kind = rt::PolicyKind::kSeer;

  sim::Machine a(cfg, find("genome").make(cfg.n_threads));
  const sim::MachineStats sa = a.run();
  sim::Machine b(cfg, stamp::make_workload("genome", cfg.n_threads));
  const sim::MachineStats sb = b.run();

  EXPECT_EQ(sa.commits, sb.commits);
  EXPECT_EQ(sa.makespan, sb.makespan);
  EXPECT_EQ(sa.aborts_by_cause, sb.aborts_by_cause);
  EXPECT_EQ(sa.commits_by_mode, sb.commits_by_mode);
  EXPECT_EQ(sa.gt_conflicts, sb.gt_conflicts);
}

TEST(GoldenEquivalence, BenchWorkloadFlagMatchesLegacyPathForAnyJobs) {
  bench::Options opts;
  opts.runs = 1;
  opts.txs_scale = 0.02;
  opts.base_seed = 777;
  opts.workloads = {"genome"};

  auto cells_for = [](const Desc& d) {
    std::vector<bench::Cell> cells;
    for (std::size_t threads : {2u, 4u}) {
      cells.push_back({d, bench::policy_of(rt::PolicyKind::kSeer), threads, {}});
    }
    return cells;
  };
  // The registry path (--workload genome) vs the legacy table entry,
  // through the implicit WorkloadInfo → Desc adapter.
  const auto selected = opts.selected();
  ASSERT_EQ(selected.size(), 1u);
  stamp::WorkloadInfo legacy_info;
  for (const auto& info : stamp::all_workloads()) {
    if (info.name == "genome") legacy_info = info;
  }

  auto json_of = [&](const std::vector<bench::Cell>& cells, int jobs) {
    bench::Options o = opts;
    o.jobs = jobs;
    o.json_path = temp_path("workload_equiv.json");
    const auto results = bench::run_cells(cells, o);
    bench::write_json("equiv", cells, results, o);
    std::ifstream in(o.json_path);
    EXPECT_TRUE(in.good());
    std::stringstream ss;
    ss << in.rdbuf();
    std::remove(o.json_path.c_str());
    return ss.str();
  };

  const std::string registry_j1 = json_of(cells_for(selected[0]), 1);
  const std::string registry_j4 = json_of(cells_for(selected[0]), 4);
  const std::string legacy_j1 = json_of(cells_for(Desc{legacy_info}), 1);
  const std::string legacy_j4 = json_of(cells_for(Desc{legacy_info}), 4);
  EXPECT_EQ(registry_j1, legacy_j1) << "registry path diverges from legacy";
  EXPECT_EQ(registry_j1, registry_j4) << "--jobs changed the output";
  EXPECT_EQ(legacy_j1, legacy_j4) << "--jobs changed the output";
}

// ------------------------------------------------ trace record/replay ----

sim::MachineConfig replay_config() {
  sim::MachineConfig cfg;
  cfg.n_threads = 4;
  cfg.txs_per_thread = 300;
  cfg.seed = 4242;
  cfg.policy.kind = rt::PolicyKind::kSeer;
  cfg.policy.seer.update_period = 64;  // frequent rebuilds → many decisions
  return cfg;
}

TEST(TraceRoundTrip, ReplayReproducesSchedulerDecisionsAndStats) {
  const sim::MachineConfig cfg = replay_config();

  InstanceTrace trace;
  check::SchedTraceRecorder cap_a;
  sim::MachineStats sa;
  {
    sim::Machine a(cfg, std::make_unique<InstanceTraceRecorder>(
                            find("genome").make(cfg.n_threads), cfg.n_threads,
                            &trace));
    core::SeerScheduler* sched = a.policy_shared().seer();
    ASSERT_NE(sched, nullptr);
    sched->set_trace_sink(&cap_a);
    sa = a.run();
    sched->set_trace_sink(nullptr);
  }
  ASSERT_EQ(trace.lanes.size(), cfg.n_threads);
  for (const TraceLane& lane : trace.lanes) {
    EXPECT_EQ(lane.instances.size(), cfg.txs_per_thread);
    EXPECT_EQ(lane.thinks.size(), cfg.txs_per_thread);
  }

  check::SchedTraceRecorder cap_b;
  sim::MachineStats sb;
  {
    sim::Machine b(cfg, std::make_unique<TraceReplay>(trace));
    core::SeerScheduler* sched = b.policy_shared().seer();
    ASSERT_NE(sched, nullptr);
    sched->set_trace_sink(&cap_b);
    sb = b.run();
    sched->set_trace_sink(nullptr);
  }

  // The differential checker must see the identical decision stream: the
  // replayed run is the recorded run, not merely a similar one.
  ASSERT_FALSE(cap_a.decisions().empty()) << "run produced no rebuild decisions";
  EXPECT_EQ(check::diff_decisions(cap_a.decisions(), cap_b.decisions()), "");
  EXPECT_EQ(sa.commits, sb.commits);
  EXPECT_EQ(sa.makespan, sb.makespan);
  EXPECT_EQ(sa.aborts_by_cause, sb.aborts_by_cause);
  EXPECT_EQ(sa.commits_by_mode, sb.commits_by_mode);
}

TEST(TraceRoundTrip, SerializationIsByteStableAndFileRoundTrips) {
  const sim::MachineConfig cfg = replay_config();
  InstanceTrace trace;
  sim::MachineStats sa;
  {
    sim::Machine a(cfg, std::make_unique<InstanceTraceRecorder>(
                            find("genome").make(cfg.n_threads), cfg.n_threads,
                            &trace));
    sa = a.run();
  }

  // to_json → parse → to_json is a fixed point.
  const std::string text = trace.to_json();
  const InstanceTrace reparsed = InstanceTrace::parse(parse_or_die(text), "<mem>");
  EXPECT_EQ(reparsed.to_json(), text);

  // File round trip through the registry (--workload TRACE.json semantics:
  // a raw trace auto-wraps as a replay generator).
  const std::string path = temp_path("roundtrip.trace.json");
  ASSERT_TRUE(write_trace_json(trace, path));
  const Desc d = resolve(path);
  EXPECT_EQ(d.name, "replay:genome");
  EXPECT_EQ(d.bench_txs_per_thread, cfg.txs_per_thread);
  sim::Machine b(cfg, d.make(cfg.n_threads));
  const sim::MachineStats sb = b.run();
  EXPECT_EQ(sa.commits, sb.commits);
  EXPECT_EQ(sa.makespan, sb.makespan);
  EXPECT_EQ(sa.aborts_by_cause, sb.aborts_by_cause);
  std::remove(path.c_str());
}

TEST(TraceRoundTrip, ReplayUnderDifferentPolicyIsDeterministic) {
  sim::MachineConfig cfg = replay_config();
  InstanceTrace trace;
  {
    sim::Machine a(cfg, std::make_unique<InstanceTraceRecorder>(
                            find("genome").make(cfg.n_threads), cfg.n_threads,
                            &trace));
    (void)a.run();
  }
  // Same instance stream, different scheduling policy: not the recorded
  // run any more, but still a deterministic one.
  cfg.policy = {};
  cfg.policy.kind = rt::PolicyKind::kRtm;
  sim::Machine b1(cfg, std::make_unique<TraceReplay>(trace));
  const sim::MachineStats s1 = b1.run();
  sim::Machine b2(cfg, std::make_unique<TraceReplay>(trace));
  const sim::MachineStats s2 = b2.run();
  EXPECT_GT(s1.commits, 0u);
  EXPECT_EQ(s1.commits, s2.commits);
  EXPECT_EQ(s1.makespan, s2.makespan);
  EXPECT_EQ(s1.aborts_by_cause, s2.aborts_by_cause);
}

TEST(TraceErrors, MalformedDocumentsNameTheBadKey) {
  const std::string rng = R"("rng": ["1", "2", "3", "4"])";
  const auto trace_doc = [&](const std::string& threads) {
    return R"({"version": 1, "workload": "w", "type_names": ["a"], "threads": [)" +
           threads + "]}";
  };

  expect_config_error(
      [] {
        (void)InstanceTrace::parse(
            parse_or_die(R"({"workload": "w", "type_names": ["a"], "threads": []})"),
            "<t>");
      },
      "version");
  expect_config_error(
      [] {
        (void)InstanceTrace::parse(
            parse_or_die(
                R"({"version": 7, "workload": "w", "type_names": ["a"], "threads": []})"),
            "<t>");
      },
      "unsupported trace version");
  // Lanes out of thread order.
  expect_config_error(
      [&] {
        (void)InstanceTrace::parse(
            parse_or_die(trace_doc(R"({"thread": 1, "thinks": [], "instances": []})")),
            "<t>");
      },
      "thread order");
  // RNG checkpoint with the wrong arity.
  expect_config_error(
      [&] {
        (void)InstanceTrace::parse(
            parse_or_die(trace_doc(
                R"({"thread": 0, "thinks": [{"t": 5, "rng": ["1", "2"]}], "instances": []})")),
            "<t>");
      },
      "4 hex words");
  // Instance type out of the declared vocabulary.
  expect_config_error(
      [&] {
        (void)InstanceTrace::parse(
            parse_or_die(trace_doc(
                R"({"thread": 0, "thinks": [], "instances": [{"type": 3, "duration": 10, "reads": [], "writes": [], )" +
                rng + "}]}")),
            "<t>");
      },
      "out of range");
  // Unsorted line ids.
  expect_config_error(
      [&] {
        (void)InstanceTrace::parse(
            parse_or_die(trace_doc(
                R"({"thread": 0, "thinks": [], "instances": [{"type": 0, "duration": 10, "reads": [9, 3], "writes": [], )" +
                rng + "}]}")),
            "<t>");
      },
      "sorted and unique");
}

TEST(TraceErrors, TruncatedAndMissingFilesFailCleanly) {
  // Record a real trace, then cut the file in half: the parse error must
  // carry the file path.
  sim::MachineConfig cfg = replay_config();
  cfg.txs_per_thread = 40;
  InstanceTrace trace;
  {
    sim::Machine a(cfg, std::make_unique<InstanceTraceRecorder>(
                            find("genome").make(cfg.n_threads), cfg.n_threads,
                            &trace));
    (void)a.run();
  }
  const std::string full = trace.to_json();
  const std::string path = temp_path("truncated.trace.json");
  {
    std::ofstream out(path);
    out << full.substr(0, full.size() / 2);
  }
  expect_config_error([&] { (void)InstanceTrace::load(path); }, path);
  std::remove(path.c_str());

  expect_config_error(
      [&] { (void)InstanceTrace::load(temp_path("does_not_exist.trace.json")); },
      "does_not_exist");
}

// ------------------------------------------------------------- phased ----

std::string two_regime_params(const std::string& until_a = "0.5") {
  return R"({
    "think_mean": 100,
    "phases": [
      {"until": )" +
         until_a + R"(, "spec": {
        "regions": [{"name": "r", "lines": 256}],
        "types": [{"name": "t", "duration_mean": 100, "duration_jitter": 0,
                   "accesses": [{"region": "r", "reads": 2, "writes": 1}]}]}},
      {"until": 1.0, "spec": {
        "regions": [{"name": "r", "lines": 256}],
        "types": [{"name": "t", "duration_mean": 900, "duration_jitter": 0,
                   "accesses": [{"region": "r", "reads": 2, "writes": 1}]}]}}
    ]})";
}

TEST(Phased, RegimeSelectionFollowsProgress) {
  const Value params = parse_or_die(two_regime_params());
  const auto wl = PhasedWorkload::from_json(params, "<p>", "shift", 2);
  EXPECT_EQ(wl->n_types(), 1u);
  // Zero jitter makes the regime's duration_mean show through verbatim.
  util::Xoshiro256 rng(7);
  sim::TxInstance inst;
  for (const double progress : {0.0, 0.25, 0.499}) {
    wl->next(0, progress, rng, inst);
    EXPECT_EQ(inst.duration, 100u) << "progress " << progress;
  }
  for (const double progress : {0.5, 0.75, 1.0}) {
    wl->next(0, progress, rng, inst);
    EXPECT_EQ(inst.duration, 900u) << "progress " << progress;
  }
}

TEST(Phased, ConfigErrorsNameTheBadKey) {
  const auto phased = [](const std::string& params) {
    return [params] {
      (void)PhasedWorkload::from_json(parse_or_die(params), "<p>", "x", 2);
    };
  };
  expect_config_error(phased(two_regime_params("1.5")), "until");
  expect_config_error(phased(two_regime_params("0.0")), "until");
  expect_config_error(phased(R"({"phases": []})"), "phases");
  expect_config_error(phased(R"({"bogus": 1, "phases": []})"), "bogus");
  // Regimes must not smuggle their own think_mean.
  expect_config_error(
      phased(R"({"phases": [{"until": 1.0, "spec": {"think_mean": 5,
        "regions": [{"name": "r", "lines": 8}],
        "types": [{"name": "t", "duration_mean": 10, "accesses": []}]}}]})"),
      "think_mean");
  // Last regime must reach progress 1.0.
  expect_config_error(
      phased(R"({"phases": [{"until": 0.5, "spec": {
        "regions": [{"name": "r", "lines": 8}],
        "types": [{"name": "t", "duration_mean": 10, "accesses": []}]}}]})"),
      "1.0");
  // Type vocabulary must agree across regimes.
  expect_config_error(
      phased(R"({"phases": [
        {"until": 0.5, "spec": {
          "regions": [{"name": "r", "lines": 8}],
          "types": [{"name": "a", "duration_mean": 10, "accesses": []}]}},
        {"until": 1.0, "spec": {
          "regions": [{"name": "r", "lines": 8}],
          "types": [{"name": "b", "duration_mean": 10, "accesses": []}]}}]})"),
      "phase 0");
}

// ---------------------------------------------------------------- bst ----

TEST(Bst, InstancesRespectTreeGeometry) {
  BstWorkload::Config cfg;
  cfg.keys = 512;
  cfg.base_cost = 150;
  cfg.node_cost = 60;
  BstWorkload wl(cfg, "bst-test");
  EXPECT_EQ(wl.n_types(), 3u);

  util::Xoshiro256 rng(11);
  sim::TxInstance inst;
  bool saw_mutation = false;
  bool saw_contains = false;
  for (int i = 0; i < 300; ++i) {
    wl.next(0, 0.0, rng, inst);
    // Reads are the root→key search path: sorted, unique, non-empty.
    ASSERT_FALSE(inst.reads.empty());
    for (std::size_t j = 1; j < inst.reads.size(); ++j) {
      ASSERT_LT(inst.reads[j - 1], inst.reads[j]);
    }
    // Duration prices the traversal: base + node_cost per path node.
    EXPECT_EQ(inst.duration,
              cfg.base_cost + cfg.node_cost * inst.reads.size());
    if (inst.type == BstWorkload::kContains) {
      saw_contains = true;
      EXPECT_TRUE(inst.writes.empty());
    } else {
      saw_mutation = true;
      // Mutations write the node and its parent link — both on the path.
      ASSERT_FALSE(inst.writes.empty());
      ASSERT_LE(inst.writes.size(), 2u);
      for (const std::uint32_t w : inst.writes) {
        EXPECT_TRUE(std::find(inst.reads.begin(), inst.reads.end(), w) !=
                    inst.reads.end())
            << "write target " << w << " not on the search path";
      }
    }
  }
  EXPECT_TRUE(saw_mutation);
  EXPECT_TRUE(saw_contains);
}

TEST(Bst, TreeShapeIsDeterministicPerSeed) {
  BstWorkload::Config cfg;
  cfg.keys = 256;
  const BstWorkload a(cfg, "a");
  const BstWorkload b(cfg, "b");
  cfg.shape_seed = 2;
  const BstWorkload c(cfg, "c");
  bool differs = false;
  for (std::uint32_t k = 0; k < cfg.keys; ++k) {
    EXPECT_EQ(a.depth(k), b.depth(k));
    EXPECT_EQ(a.parent(k), b.parent(k));
    if (a.depth(k) != c.depth(k)) differs = true;
  }
  EXPECT_TRUE(differs) << "shape_seed had no effect on the tree";
}

TEST(Bst, ConfigErrorsNameTheBadKey) {
  const auto bst = [](const std::string& params) {
    return [params] {
      (void)BstWorkload::from_json(parse_or_die(params), "<b>", "x");
    };
  };
  expect_config_error(bst(R"({"keys": 1})"), "keys");
  expect_config_error(bst(R"({"mix": {"add": 0, "remove": 0, "contains": 0}})"),
                      "mix");
  expect_config_error(bst(R"({"mix": {"lookup": 1}})"), "lookup");
  expect_config_error(bst(R"({"base_cost": 0})"), "base_cost");
  expect_config_error(bst(R"({"keys": "many"})"), "keys");
}

// ----------------------------------------------------- config front-end ----

TEST(Config, NegativeCasesNameTheBadKey) {
  const auto cfg = [](const std::string& text) {
    return [text] { (void)from_config_json(parse_or_die(text), "<c>"); };
  };
  expect_config_error(cfg(R"({"generator": "nope"})"), "unknown generator");
  expect_config_error(cfg(R"({"generator": "nope"})"), "genome");  // lists known
  expect_config_error(cfg(R"({})"), "generator");
  expect_config_error(cfg(R"({"generator": "bst", "workload": "x"})"), "workload");
  expect_config_error(cfg(R"({"generator": "genome", "params": {"keys": 4}})"),
                      "takes no params");
  expect_config_error(cfg(R"({"generator": "bst", "txs_per_thread": 0})"),
                      "txs_per_thread");
  expect_config_error(cfg(R"({"generator": "bst", "params": 7})"), "params");
  expect_config_error(cfg(R"({"generator": "spec", "params": {}})"), "regions");
  expect_config_error(
      cfg(R"({"generator": "phased", "params": {"phases": [{"until": 2.0,
          "spec": {"regions": [{"name": "r", "lines": 8}],
                   "types": [{"name": "t", "duration_mean": 10,
                              "accesses": []}]}}]}})"),
      "until");
  expect_config_error([] { (void)find("hashmap"); }, "unknown generator");
  expect_config_error(
      [] { (void)from_config(temp_path("missing_config.json")); },
      "missing_config");
}

TEST(Config, SpecGeneratorBuildsARunnableWorkload) {
  const Value doc = parse_or_die(R"({
    "generator": "spec",
    "name": "mini",
    "txs_per_thread": 123,
    "params": {
      "regions": [{"name": "tab", "lines": 128, "zipf_skew": 0.7}],
      "types": [
        {"name": "get", "duration_mean": 200,
         "accesses": [{"region": "tab", "reads": 3}]},
        {"name": "put", "duration_mean": 300,
         "accesses": [{"region": "tab", "reads": 1, "writes": 2}]}
      ],
      "mix": [3, 1]
    }})");
  const Desc d = from_config_json(doc, "<c>");
  EXPECT_EQ(d.name, "mini");
  EXPECT_EQ(d.bench_txs_per_thread, 123u);
  const auto wl = d.make(2);
  ASSERT_EQ(wl->n_types(), 2u);
  EXPECT_EQ(wl->type_name(0), "get");
  EXPECT_EQ(wl->type_name(1), "put");

  sim::MachineConfig mcfg;
  mcfg.n_threads = 2;
  mcfg.txs_per_thread = 200;
  sim::Machine m(mcfg, d.make(mcfg.n_threads));
  const sim::MachineStats s = m.run();
  EXPECT_EQ(s.commits, 400u);
}

TEST(Config, ResolveDispatchesOnJsonSuffix) {
  // A registered name resolves directly...
  EXPECT_EQ(resolve("yada").name, "yada");
  // ...and a .json path goes through from_config (here: a bad one, to prove
  // the dispatch happened).
  expect_config_error([] { (void)resolve("no_such_file.json"); },
                      "no_such_file.json");
}

}  // namespace
}  // namespace seer::workload
