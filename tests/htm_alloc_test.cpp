// Proves the SoftHtm writer commit path is allocation-free once warm
// (ISSUE 5 acceptance): after a few warm-up transactions every vector and
// index has reached steady-state capacity, and whole attempt/commit cycles
// must run without touching the global allocator.
//
// The instrumentation replaces global operator new/delete with counting
// forwarders, so this binary is deliberately NOT in the sanitizer label set
// (tsan/asan interpose on the allocator themselves).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "htm/abort_code.hpp"
#include "htm/soft_htm.hpp"

namespace {
std::atomic<std::uint64_t> g_news{0};
}  // namespace

// GCC cannot see through the counting forwarders below and flags new/free
// pairs that are in fact malloc/free end to end.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t n) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace seer::htm {
namespace {

bool committed(AbortStatus s) { return s.raw() == kXBeginStarted; }

TEST(SoftHtmAlloc, CountersActuallyCount) {
  const std::uint64_t before = g_news.load();
  // A direct operator-new call: new-EXPRESSIONS are elidable at -O2, direct
  // calls are not.
  void* p = ::operator new(8);
  ::operator delete(p);
  EXPECT_GT(g_news.load(), before) << "the counting operator new is not linked in";
}

TEST(SoftHtmAlloc, WriterCommitPathIsAllocationFreeOnceWarm) {
  SoftHtm tm;
  SoftHtm::ThreadContext ctx(tm);
  std::vector<TmWord> words(64);
  TmWord lone{0};
  auto body = [&](SoftHtm::Tx& tx) {
    for (auto& w : words) tx.write(w, tx.read(w) + 1);
  };
  // Warm-up: vectors and index tables grow to steady state here.
  const std::uint64_t cold = g_news.load();
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(committed(ctx.attempt(body)));
  }
  ASSERT_GT(g_news.load(), cold)
      << "warm-up growth must be visible, or the counter is not wired up";

  const std::uint64_t before = g_news.load();
  for (int i = 0; i < 100; ++i) {
    (void)ctx.attempt(body);
    // Read-only commits share the same reusable structures and must be
    // just as free.
    (void)ctx.attempt([&](SoftHtm::Tx& tx) { (void)tx.read(lone); });
  }
  EXPECT_EQ(g_news.load(), before)
      << "a warm writer attempt/commit cycle must never hit the allocator";
  for (auto& w : words) EXPECT_EQ(w.load(), 108u);
}

TEST(SoftHtmAlloc, Tier0ReadOnlyTransactionsAreAllocationFreeFromTheFirstRun) {
  // The Tier-0 replay log is a fixed buffer sized at context construction
  // (max_read_set slots) and the signature is inline: a read-only
  // transaction that stays in Tier 0 must not allocate even on its very
  // first attempt — there is nothing to warm up.
  SoftHtm tm;
  SoftHtm::ThreadContext ctx(tm);
  std::vector<TmWord> words(256);
  const std::uint64_t before = g_news.load();
  for (int i = 0; i < 50; ++i) {
    std::uint64_t acc = 0;
    ASSERT_TRUE(committed(ctx.attempt([&](SoftHtm::Tx& tx) {
      for (auto& w : words) acc += tx.read(w);
    })));
    ASSERT_FALSE(ctx.read_tier_is_exact()) << "256 reads must stay Tier 0";
  }
  EXPECT_EQ(g_news.load(), before)
      << "a Tier-0 read-only transaction must never hit the allocator";
}

TEST(SoftHtmAlloc, PromotionAllocatesOnceThenSteadyStatePromotionsAreFree) {
  // Promotion rebuilds the exact index and reads_ vector from the replay
  // log. The first promotion at a given size may grow both (bounded
  // allocations); every later promotion through the same context must
  // reuse them and stay allocation-free.
  SoftHtm tm{SoftHtm::Config{.max_read_set = 64}};
  SoftHtm::ThreadContext ctx(tm);
  std::vector<TmWord> words(64);
  auto promoting_body = [&](SoftHtm::Tx& tx) {
    std::uint64_t acc = 0;
    for (auto& w : words) acc += tx.read(w);
    acc += tx.read(words[0]);  // budget-boundary read: forces promotion
    (void)acc;
  };
  ASSERT_TRUE(committed(ctx.attempt(promoting_body)));
  ASSERT_TRUE(ctx.read_tier_is_exact());
  ASSERT_EQ(ctx.read_promotions_capacity(), 1u);

  const std::uint64_t before = g_news.load();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(committed(ctx.attempt(promoting_body)));
  }
  EXPECT_EQ(g_news.load(), before)
      << "steady-state promotions must replay into the reused index";
  EXPECT_EQ(ctx.read_promotions_capacity(), 101u);
}

TEST(SoftHtmAlloc, WarmPostPromotionWriterCommitsAreAllocationFree) {
  // A writer that crosses the tier boundary every transaction: fills the
  // Tier-0 log to the budget, keeps reading (duplicates — the log counts
  // them, the exact index dedups them back under budget), writes, commits.
  // Once warm, the whole cycle — Tier-0 logging, promotion replay, exact
  // tail, commit validation over both tiers' read sets — must not allocate.
  SoftHtm tm{SoftHtm::Config{.max_read_set = 64}};
  SoftHtm::ThreadContext ctx(tm);
  std::vector<TmWord> words(64);
  auto body = [&](SoftHtm::Tx& tx) {
    std::uint64_t acc = 0;
    for (auto& w : words) acc += tx.read(w);  // fills the 64-slot log
    for (int i = 0; i < 32; ++i) {
      acc += tx.read(words[i]);  // promotes at logged read 65, dedups
    }
    tx.write(words[0], acc);
  };
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(committed(ctx.attempt(body)));
    ASSERT_TRUE(ctx.read_tier_is_exact());
  }
  const std::uint64_t before = g_news.load();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(committed(ctx.attempt(body)));
  }
  EXPECT_EQ(g_news.load(), before)
      << "a warm promote-read-write-commit cycle must never hit the allocator";
}

}  // namespace
}  // namespace seer::htm
