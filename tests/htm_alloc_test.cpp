// Proves the SoftHtm writer commit path is allocation-free once warm
// (ISSUE 5 acceptance): after a few warm-up transactions every vector and
// index has reached steady-state capacity, and whole attempt/commit cycles
// must run without touching the global allocator.
//
// The instrumentation replaces global operator new/delete with counting
// forwarders, so this binary is deliberately NOT in the sanitizer label set
// (tsan/asan interpose on the allocator themselves).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "htm/abort_code.hpp"
#include "htm/soft_htm.hpp"

namespace {
std::atomic<std::uint64_t> g_news{0};
}  // namespace

// GCC cannot see through the counting forwarders below and flags new/free
// pairs that are in fact malloc/free end to end.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t n) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace seer::htm {
namespace {

bool committed(AbortStatus s) { return s.raw() == kXBeginStarted; }

TEST(SoftHtmAlloc, CountersActuallyCount) {
  const std::uint64_t before = g_news.load();
  // A direct operator-new call: new-EXPRESSIONS are elidable at -O2, direct
  // calls are not.
  void* p = ::operator new(8);
  ::operator delete(p);
  EXPECT_GT(g_news.load(), before) << "the counting operator new is not linked in";
}

TEST(SoftHtmAlloc, WriterCommitPathIsAllocationFreeOnceWarm) {
  SoftHtm tm;
  SoftHtm::ThreadContext ctx(tm);
  std::vector<TmWord> words(64);
  TmWord lone{0};
  auto body = [&](SoftHtm::Tx& tx) {
    for (auto& w : words) tx.write(w, tx.read(w) + 1);
  };
  // Warm-up: vectors and index tables grow to steady state here.
  const std::uint64_t cold = g_news.load();
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(committed(ctx.attempt(body)));
  }
  ASSERT_GT(g_news.load(), cold)
      << "warm-up growth must be visible, or the counter is not wired up";

  const std::uint64_t before = g_news.load();
  for (int i = 0; i < 100; ++i) {
    (void)ctx.attempt(body);
    // Read-only commits share the same reusable structures and must be
    // just as free.
    (void)ctx.attempt([&](SoftHtm::Tx& tx) { (void)tx.read(lone); });
  }
  EXPECT_EQ(g_news.load(), before)
      << "a warm writer attempt/commit cycle must never hit the allocator";
  for (auto& w : words) EXPECT_EQ(w.load(), 108u);
}

}  // namespace
}  // namespace seer::htm
