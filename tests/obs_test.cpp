// Tests for the observability layer (src/obs/): metrics registry semantics,
// concurrent snapshotting, ring-buffer tracing (wraparound, drop counts),
// Chrome trace_event export well-formedness, and the end-to-end integration
// with the ThreadedExecutor. Built only with SEER_OBS=ON — the OFF
// configuration replaces everything here with inline no-op stubs.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "htm/soft_htm.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/threaded_executor.hpp"

namespace seer::obs {
namespace {

// ---------------------------------------------------- metrics registry -----

TEST(MetricsRegistry, RegistrationIsIdempotentByName) {
  MetricsRegistry reg(1);
  const MetricId a = reg.counter("x.count");
  const MetricId b = reg.counter("y.count");
  EXPECT_EQ(reg.counter("x.count"), a) << "same name, same id";
  EXPECT_NE(a, b);
  const MetricId h = reg.histogram("x.hist");
  EXPECT_EQ(reg.histogram("x.hist"), h);
  // Counters and histograms live in separate id spaces.
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(h, 0u);
}

TEST(MetricsRegistry, CountersSumAcrossThreadLanes) {
  MetricsRegistry reg(3);
  const MetricId c = reg.counter("c");
  reg.freeze();
  reg.add(c, 0, 5);
  reg.add(c, 1, 7);
  reg.add(c, 2);
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].name, "c");
  EXPECT_EQ(snap.counters[0].value, 13u);
}

TEST(MetricsRegistry, HistogramLogBucketing) {
  // Bucket b holds values v with bit_width(v) == b: bucket 0 is exactly 0,
  // bucket b >= 1 spans [2^(b-1), 2^b).
  EXPECT_EQ(MetricsRegistry::bucket_of(0), 0u);
  EXPECT_EQ(MetricsRegistry::bucket_of(1), 1u);
  EXPECT_EQ(MetricsRegistry::bucket_of(2), 2u);
  EXPECT_EQ(MetricsRegistry::bucket_of(3), 2u);
  EXPECT_EQ(MetricsRegistry::bucket_of(4), 3u);
  EXPECT_EQ(MetricsRegistry::bucket_of(1023), 10u);
  EXPECT_EQ(MetricsRegistry::bucket_of(1024), 11u);
  EXPECT_EQ(MetricsRegistry::bucket_of(~std::uint64_t{0}), 64u);

  MetricsRegistry reg(2);
  const MetricId h = reg.histogram("h");
  reg.freeze();
  for (std::uint64_t v : {0u, 1u, 2u, 3u, 1000u}) reg.observe(h, 0, v);
  reg.observe(h, 1, 1000);
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const HistogramSnapshot& hs = snap.histograms[0];
  EXPECT_EQ(hs.count, 6u);
  EXPECT_EQ(hs.sum, 2006u);
  EXPECT_EQ(hs.buckets[0], 1u);
  EXPECT_EQ(hs.buckets[1], 1u);
  EXPECT_EQ(hs.buckets[2], 2u);
  EXPECT_EQ(hs.buckets[10], 2u) << "both lanes' 1000s land in [512, 1024)";
}

TEST(MetricsRegistry, SnapshotUnderConcurrentIncrementIsSafeAndExact) {
  // The no-stop-the-world contract: a collector may snapshot while owner
  // threads keep bumping their lanes. Mid-flight snapshots see valid partial
  // sums (monotonicity is checked against the final total); the snapshot
  // after joining is exact. TSan (the `sanitize` ctest label) verifies the
  // relaxed single-writer/multi-reader protocol is race-free.
  constexpr std::size_t kThreads = 4;
  constexpr std::uint64_t kPerThread = 20000;
  MetricsRegistry reg(kThreads);
  const MetricId c = reg.counter("ops");
  const MetricId h = reg.histogram("vals");
  reg.freeze();

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        reg.add(c, static_cast<core::ThreadId>(t));
        reg.observe(h, static_cast<core::ThreadId>(t), i & 255);
      }
    });
  }
  std::uint64_t last = 0;
  for (int probe = 0; probe < 50; ++probe) {
    const MetricsSnapshot snap = reg.snapshot();
    ASSERT_EQ(snap.counters.size(), 1u);
    EXPECT_LE(snap.counters[0].value, kThreads * kPerThread);
    EXPECT_GE(snap.counters[0].value, last) << "per-lane counters only grow";
    last = snap.counters[0].value;
  }
  for (auto& w : workers) w.join();

  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters[0].value, kThreads * kPerThread);
  EXPECT_EQ(snap.histograms[0].count, kThreads * kPerThread);
}

TEST(MetricsRegistry, ToJsonIsStableAndRegistrationOrdered) {
  MetricsRegistry reg(1);
  const MetricId b = reg.counter("b.second");
  const MetricId a = reg.counter("a.first");  // lexically before, registered after
  const MetricId h = reg.histogram("lat");
  reg.freeze();
  reg.add(b, 0, 2);
  reg.add(a, 0, 1);
  reg.observe(h, 0, 5);
  const std::string json = reg.snapshot().to_json();
  EXPECT_EQ(json,
            "{\"counters\": {\"b.second\": 2, \"a.first\": 1}, "
            "\"histograms\": {\"lat\": {\"count\": 1, \"sum\": 5, "
            "\"buckets\": [[3, 1]]}}}");
  EXPECT_EQ(MetricsSnapshot{}.to_json(), "{}");
}

// -------------------------------------------------------- trace sink -------

TEST(TraceSink, RingWraparoundKeepsNewestAndCountsDrops) {
  TraceSink sink(1, 8);
  ASSERT_EQ(sink.capacity(), 8u);
  for (std::uint64_t i = 0; i < 20; ++i) {
    sink.emit(0, TraceKind::kTxCommit, /*ts=*/i, /*arg=*/i);
  }
  EXPECT_EQ(sink.emitted(), 20u);
  EXPECT_EQ(sink.dropped(), 12u);
  const std::vector<TraceEvent> events = sink.drain_sorted();
  ASSERT_EQ(events.size(), 8u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].ts, 12 + i) << "oldest events overwritten first";
  }
}

TEST(TraceSink, CapacityRoundsUpToPowerOfTwo) {
  TraceSink sink(2, 9);
  EXPECT_EQ(sink.capacity(), 16u);
  EXPECT_EQ(sink.n_lanes(), 2u);
}

TEST(TraceSink, DrainMergesLanesByTimestamp) {
  TraceSink sink(3, 16);
  sink.emit(2, TraceKind::kTxBegin, 30, 0);
  sink.emit(0, TraceKind::kTxBegin, 10, 0);
  sink.emit(1, TraceKind::kTxBegin, 20, 0);
  sink.emit(0, TraceKind::kTxCommit, 25, 0);
  const auto events = sink.drain_sorted();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].ts, 10u);
  EXPECT_EQ(events[1].ts, 20u);
  EXPECT_EQ(events[2].ts, 25u);
  EXPECT_EQ(events[3].ts, 30u);
  EXPECT_EQ(events[3].thread, 2u);
}

TEST(TraceSink, SummaryTabulatesPerLaneKindCounts) {
  TraceSink sink(2, 8);
  sink.emit(0, TraceKind::kTxBegin, 1, 0);
  sink.emit(0, TraceKind::kTxCommit, 2, 0);
  sink.emit(1, TraceKind::kTxAbort, 3, 0);
  const std::string s = sink.summary();
  EXPECT_NE(s.find("commit"), std::string::npos);
  EXPECT_NE(s.find("abort"), std::string::npos);
  EXPECT_NE(s.find("emitted 3"), std::string::npos) << s;
  EXPECT_NE(s.find("dropped 0"), std::string::npos) << s;
}

// Structural validation of the Chrome trace_event output. The format is
// consumed by chrome://tracing and ui.perfetto.dev; this checks the JSON is
// balanced and every event carries the required keys with matched B/E pairs
// per tid (what those UIs actually require to render spans).
void validate_chrome_json(const std::string& json) {
  // String values here never contain structural characters, so bracket
  // counting is exact.
  long braces = 0;
  long brackets = 0;
  for (char ch : json) {
    braces += (ch == '{') - (ch == '}');
    brackets += (ch == '[') - (ch == ']');
    ASSERT_GE(braces, 0);
    ASSERT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos) << "top-level wrapper";

  auto count = [&](const std::string& needle) {
    std::size_t n = 0;
    for (std::size_t pos = json.find(needle); pos != std::string::npos;
         pos = json.find(needle, pos + 1)) {
      ++n;
    }
    return n;
  };
  EXPECT_EQ(count("\"ph\": \"B\""), count("\"ph\": \"E\""))
      << "span begins and ends must pair up";
  const std::size_t events =
      count("\"ph\": \"B\"") + count("\"ph\": \"E\"") + count("\"ph\": \"i\"");
  EXPECT_EQ(count("\"ts\": "), events) << "every event is timestamped";
  EXPECT_EQ(count("\"pid\": "), events);
  EXPECT_EQ(count("\"tid\": "), events);
}

std::string write_and_read(const TraceSink& sink) {
  const std::string path = ::testing::TempDir() + "obs_test_trace.json";
  EXPECT_TRUE(sink.write_chrome_json(path));
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  std::remove(path.c_str());
  return ss.str();
}

TEST(TraceSink, DroppedPerLaneResolvesWhichRingWrapped) {
  TraceSink sink(2, 4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    sink.emit(0, TraceKind::kTxCommit, i, 0);
  }
  sink.emit(1, TraceKind::kTxCommit, 99, 0);
  const auto lanes = sink.dropped_per_lane();
  ASSERT_EQ(lanes.size(), 2u);
  EXPECT_EQ(lanes[0], 6u) << "10 emitted into a 4-slot ring";
  EXPECT_EQ(lanes[1], 0u);
  EXPECT_EQ(sink.dropped(), 6u);
}

TEST(TraceSink, SummaryWarnsWhenARingOverflowed) {
  TraceSink quiet(1, 8);
  quiet.emit(0, TraceKind::kTxCommit, 1, 0);
  EXPECT_EQ(quiet.summary().find("WARNING"), std::string::npos);

  TraceSink noisy(1, 4);
  for (std::uint64_t i = 0; i < 9; ++i) {
    noisy.emit(0, TraceKind::kTxCommit, i, 0);
  }
  const std::string s = noisy.summary();
  EXPECT_NE(s.find("WARNING"), std::string::npos) << s;
  EXPECT_NE(s.find("dropped 5"), std::string::npos) << s;
}

TEST(TraceSink, ChromeJsonCarriesDropAccountingInSeerMeta) {
  TraceSink sink(2, 4);
  for (std::uint64_t i = 0; i < 7; ++i) {
    sink.emit(0, TraceKind::kTxCommit, i, 0);
  }
  sink.emit(1, TraceKind::kTxCommit, 50, 0);
  const std::string json = write_and_read(sink);
  validate_chrome_json(json);
  EXPECT_NE(json.find("\"seerMeta\": {\"emitted\": 8, \"dropped\": 3, "
                      "\"droppedPerThread\": [3, 0]}"),
            std::string::npos)
      << json;
}

TEST(TraceSink, ChromeJsonPairsSpansAndIsWellFormed) {
  TraceSink sink(2, 32);
  // Lane 0: begin -> abort -> begin -> commit (one retry).
  sink.emit(0, TraceKind::kTxBegin, 10, 1);
  sink.emit(0, TraceKind::kTxAbort, 20, 0);
  sink.emit(0, TraceKind::kTxBegin, 30, 1);
  sink.emit(0, TraceKind::kTxCommit, 40, 1);
  // Lane 1: an instant plus an unclosed begin (must be closed at last ts).
  sink.emit(1, TraceKind::kSchemeRebuild, 15, 6);
  sink.emit(1, TraceKind::kTxBegin, 35, 2);
  const std::string json = write_and_read(sink);
  validate_chrome_json(json);
  EXPECT_NE(json.find("\"scheme_rebuild\""), std::string::npos);
}

TEST(TraceSink, ChromeJsonDemotesUnmatchedEndsToInstants) {
  TraceSink sink(1, 8);
  sink.emit(0, TraceKind::kTxCommit, 5, 0);  // commit with no begin (SGL path)
  const std::string json = write_and_read(sink);
  validate_chrome_json(json);
  EXPECT_EQ(json.find("\"ph\": \"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
}

// ------------------------------------------------- executor integration ----

TEST(ObsIntegration, ThreadedExecutorRecordsCommitsAndTraces) {
  constexpr std::size_t kThreads = 2;
  constexpr int kTxPerThread = 200;
  MetricsRegistry reg(kThreads);
  TraceSink trace(kThreads);

  htm::SoftHtm tm;
  rt::ThreadedExecutor::Options opts;
  opts.n_threads = kThreads;
  opts.n_types = 2;
  opts.physical_cores = 2;
  opts.metrics = &reg;
  opts.trace = &trace;
  rt::PolicyConfig policy;
  policy.kind = rt::PolicyKind::kSeer;
  policy.seer.update_period = 64;
  policy.seer.physical_cores = 2;
  rt::ThreadedExecutor exec(tm, policy, opts);
  reg.freeze();

  std::vector<htm::TmWord> words(64);
  std::vector<std::thread> threads;
  for (core::ThreadId id = 0; id < kThreads; ++id) {
    threads.emplace_back([&, id] {
      auto h = exec.make_handle(id);
      for (int i = 0; i < kTxPerThread; ++i) {
        h->run(static_cast<core::TxTypeId>(i % 2), [&](auto& tx) {
          const std::size_t slot = (static_cast<std::size_t>(i) * 7 + id) % words.size();
          tx.write(words[slot], tx.read(words[slot]) + 1);
        });
      }
    });
  }
  for (auto& t : threads) t.join();

  const MetricsSnapshot snap = reg.snapshot();
  std::uint64_t commits = 0;
  std::uint64_t announces = 0;
  for (const auto& c : snap.counters) {
    if (c.name == "rt.commits") commits = c.value;
    if (c.name == "seer.announces") announces = c.value;
  }
  EXPECT_EQ(commits, kThreads * static_cast<std::uint64_t>(kTxPerThread));
  EXPECT_GT(announces, 0u) << "executor-level sinks reach the Seer scheduler";
  for (const auto& h : snap.histograms) {
    if (h.name == "rt.retry_depth") {
      EXPECT_EQ(h.count, kThreads * static_cast<std::uint64_t>(kTxPerThread));
    }
  }
  EXPECT_GT(trace.emitted(), 0u);
  validate_chrome_json(write_and_read(trace));
}

TEST(ObsIntegration, ThreadedExecutorRegistersAndBumpsHtmTierCounters) {
  // The executor registers the adaptive read-tracking telemetry
  // (DESIGN.md §10) alongside its own rt.* metrics and installs it into
  // every handle's SoftHtm context. A workload whose Tier-0 log fills every
  // transaction must show up in htm.read_promote.capacity; nothing here
  // saturates the signature or capacity-aborts, so those stay zero.
  constexpr std::size_t kThreads = 2;
  constexpr int kTxPerThread = 50;
  MetricsRegistry reg(kThreads);
  htm::SoftHtm tm{htm::SoftHtm::Config{.max_read_set = 16}};
  rt::ThreadedExecutor::Options opts;
  opts.n_threads = kThreads;
  opts.n_types = 1;
  opts.physical_cores = 2;
  opts.metrics = &reg;
  rt::PolicyConfig policy;
  policy.kind = rt::PolicyKind::kRtm;
  rt::ThreadedExecutor exec(tm, policy, opts);
  reg.freeze();

  std::vector<std::thread> threads;
  for (core::ThreadId id = 0; id < kThreads; ++id) {
    threads.emplace_back([&, id] {
      auto h = exec.make_handle(id);
      std::vector<htm::TmWord> words(16);  // per-thread: no conflicts
      for (int i = 0; i < kTxPerThread; ++i) {
        h->run(0, [&](auto& tx) {
          std::uint64_t acc = 0;
          for (auto& w : words) acc += tx.read(w);
          acc += tx.read(words[0]);  // 17th logged read: promotes
          tx.write(words[0], acc);
        });
      }
    });
  }
  for (auto& t : threads) t.join();

  const MetricsSnapshot snap = reg.snapshot();
  std::uint64_t found = 0;
  std::uint64_t promotions = 0;
  for (const auto& c : snap.counters) {
    if (c.name.rfind("htm.", 0) != 0) continue;
    ++found;
    if (c.name == "htm.read_promote.capacity") {
      promotions = c.value;
    } else {
      EXPECT_EQ(c.value, 0u) << c.name << " must stay untouched";
    }
  }
  EXPECT_EQ(found, 4u) << "all four htm.* counters must be registered";
  EXPECT_GE(promotions, kThreads * static_cast<std::uint64_t>(kTxPerThread))
      << "every committed transaction crossed the tier boundary";
}

}  // namespace
}  // namespace seer::obs
