// End-to-end shape tests: full simulator runs over the calibrated STAMP
// stand-ins, asserting the qualitative results the paper reports (who wins,
// where the crossovers fall, where the locks engage) rather than absolute
// numbers. These are the automated guardrails behind EXPERIMENTS.md.
#include <gtest/gtest.h>

#include <memory>

#include "sim/machine.hpp"
#include "stamp/workloads.hpp"

namespace seer {
namespace {

sim::MachineStats run(const std::string& workload, rt::PolicyKind kind,
                      std::size_t threads, std::uint64_t txs = 1200,
                      std::uint64_t seed = 21) {
  sim::MachineConfig cfg;
  cfg.n_threads = threads;
  cfg.txs_per_thread = txs;
  cfg.policy.kind = kind;
  cfg.seed = seed;
  return sim::run_machine(cfg, stamp::make_workload(workload, threads));
}

double sgl_fraction(const sim::MachineStats& s) {
  return s.mode_fraction(rt::CommitMode::kSglFallback);
}

// ------------------------------------------------------------- Figure 3 ----

TEST(Shape, SeerBeatsRtmOnEveryConflictHeavyBenchmark) {
  for (const char* wl : {"genome", "intruder", "kmeans-high", "vacation-high"}) {
    const auto seer = run(wl, rt::PolicyKind::kSeer, 8);
    const auto rtm = run(wl, rt::PolicyKind::kRtm, 8);
    EXPECT_GT(seer.speedup(), rtm.speedup()) << wl;
  }
}

TEST(Shape, VacationHighReproducesHeadlineGain) {
  // The paper's peak: ~2-2.5x over the best baseline curve shape for
  // RTM (~0.8 at 8 threads) vs Seer (~2.2).
  const auto seer = run("vacation-high", rt::PolicyKind::kSeer, 8);
  const auto rtm = run("vacation-high", rt::PolicyKind::kRtm, 8);
  EXPECT_LT(rtm.speedup(), 1.2);
  EXPECT_GT(seer.speedup(), 1.8);
  EXPECT_GT(seer.speedup(), 2.0 * rtm.speedup());
}

TEST(Shape, Ssca2ScalesForEveryPolicyAndSeerOverheadIsSmall) {
  const auto rtm = run("ssca2", rt::PolicyKind::kRtm, 8, 2500);
  const auto seer = run("ssca2", rt::PolicyKind::kSeer, 8, 2500);
  const auto scm = run("ssca2", rt::PolicyKind::kScm, 8, 2500);
  EXPECT_GT(rtm.speedup(), 4.0);
  EXPECT_GT(scm.speedup(), 4.0);
  EXPECT_GT(seer.speedup(), 4.0);
  // Figure 4's bound: the profiling machinery costs well under 10%.
  EXPECT_GT(seer.speedup() / rtm.speedup(), 0.90);
}

TEST(Shape, YadaStaysBelowOneForEveryone) {
  for (auto kind : {rt::PolicyKind::kHle, rt::PolicyKind::kRtm, rt::PolicyKind::kScm,
                    rt::PolicyKind::kSeer}) {
    const auto s = run("yada", rt::PolicyKind(kind), 8, 600);
    EXPECT_LT(s.speedup(), 1.25) << rt::to_string(kind);
  }
}

TEST(Shape, SeerMatchesBaselinesAtLowThreadCounts) {
  // §5.1: "Seer performs similarly to the best solution up to 3 threads".
  for (const char* wl : {"intruder", "kmeans-high"}) {
    const auto seer = run(wl, rt::PolicyKind::kSeer, 2);
    const auto rtm = run(wl, rt::PolicyKind::kRtm, 2);
    EXPECT_GT(seer.speedup(), 0.85 * rtm.speedup()) << wl;
  }
}

// -------------------------------------------------------------- Table 3 ----

TEST(Shape, HleSuffersTheLemmingEffect) {
  const auto s = run("intruder", rt::PolicyKind::kHle, 8);
  EXPECT_GT(sgl_fraction(s), 0.75)
      << "HLE at 8 threads must devolve to the elided lock";
  const auto s2 = run("intruder", rt::PolicyKind::kHle, 2);
  EXPECT_LT(sgl_fraction(s2), sgl_fraction(s)) << "fraction grows with threads";
}

TEST(Shape, RtmFallbackGrowsWithThreads) {
  const auto t2 = run("genome", rt::PolicyKind::kRtm, 2);
  const auto t8 = run("genome", rt::PolicyKind::kRtm, 8);
  EXPECT_GT(sgl_fraction(t8), sgl_fraction(t2));
  EXPECT_GT(sgl_fraction(t8), 0.05);
}

TEST(Shape, SeerDrasticallyReducesFallbackVsRtm) {
  for (const char* wl : {"genome", "intruder", "kmeans-high", "vacation-high"}) {
    const auto seer = run(wl, rt::PolicyKind::kSeer, 8);
    const auto rtm = run(wl, rt::PolicyKind::kRtm, 8);
    EXPECT_LT(sgl_fraction(seer), 0.55 * sgl_fraction(rtm) + 0.01) << wl;
  }
}

TEST(Shape, ScmRunsUnderAuxiliaryLock) {
  const auto s = run("intruder", rt::PolicyKind::kScm, 8);
  EXPECT_GT(s.mode_fraction(rt::CommitMode::kHtmAuxLock), 0.02)
      << "a visible share of SCM commits happens under the aux lock";
  EXPECT_LT(sgl_fraction(s), 0.10) << "SCM rarely reaches the SGL";
}

TEST(Shape, SeerUsesFineGrainedModes) {
  const auto s = run("intruder", rt::PolicyKind::kSeer, 8, 2500);
  const double tx_modes = s.mode_fraction(rt::CommitMode::kHtmTxLocks) +
                          s.mode_fraction(rt::CommitMode::kHtmTxAndCore);
  EXPECT_GT(tx_modes, 0.01) << "tx locks must carry some commits";
  EXPECT_GT(s.mode_fraction(rt::CommitMode::kHtmNoLocks), 0.5)
      << "most commits still run completely lock-free (Table 3: 80%)";
}

TEST(Shape, ModeFractionsSumToOne) {
  for (auto kind : {rt::PolicyKind::kHle, rt::PolicyKind::kRtm, rt::PolicyKind::kScm,
                    rt::PolicyKind::kAts, rt::PolicyKind::kSgl, rt::PolicyKind::kSeer}) {
    const auto s = run("kmeans-low", rt::PolicyKind(kind), 6, 500);
    double total = 0.0;
    for (std::size_t m = 0; m < s.commits_by_mode.size(); ++m) {
      total += s.mode_fraction(static_cast<rt::CommitMode>(m));
    }
    EXPECT_NEAR(total, 1.0, 1e-9) << rt::to_string(kind);
  }
}

// ----------------------------------------------------------- §5.2 claim ----

TEST(Shape, TxLockAcquisitionsAreFineGrained) {
  const auto s = run("intruder", rt::PolicyKind::kSeer, 8, 2500);
  ASSERT_GT(s.txlock_fraction.count(), 0u);
  // Median acquisition takes a small fraction of the available tx locks
  // (paper §5.2: below 23% in half the cases, on larger programs).
  EXPECT_LE(s.txlock_fraction.percentile(0.5), 0.67);
}

// ------------------------------------------------------------- capacity ----

TEST(Shape, YadaCapacityAbortsAppearOnlyWithSmt) {
  const auto t4 = run("yada", rt::PolicyKind::kRtm, 4, 400);
  const auto t8 = run("yada", rt::PolicyKind::kRtm, 8, 400);
  const auto cap = static_cast<std::size_t>(htm::AbortCause::kCapacity);
  EXPECT_GT(t8.aborts_by_cause[cap], 4 * t4.aborts_by_cause[cap])
      << "SMT sharing is what creates capacity pressure";
}

TEST(Shape, SeerCoreLocksEngageOnYada) {
  const auto s = run("yada", rt::PolicyKind::kSeer, 8, 600);
  const double core_modes = s.mode_fraction(rt::CommitMode::kHtmCoreLock) +
                            s.mode_fraction(rt::CommitMode::kHtmTxAndCore);
  EXPECT_GT(core_modes, 0.02);
}

// ------------------------------------------------------------ inference ----

TEST(Shape, SeerInfersIntruderSelfConflicts) {
  const auto s = run("intruder", rt::PolicyKind::kSeer, 8, 2500);
  ASSERT_EQ(s.final_scheme.size(), 3u);
  // The three pipeline stages contend with themselves; at least two of the
  // three self edges must be discovered (statistics are noisy by design).
  int self_edges = 0;
  for (core::TxTypeId t = 0; t < 3; ++t) {
    for (core::TxTypeId y : s.final_scheme[static_cast<std::size_t>(t)]) {
      if (y == t) ++self_edges;
    }
  }
  EXPECT_GE(self_edges, 2);
  EXPECT_GT(s.scheme_rebuilds, 3u);
}

TEST(Shape, SeerSchemeStaysEmptyWithoutConflicts) {
  const auto s = run("ssca2", rt::PolicyKind::kSeer, 8, 2000);
  std::size_t edges = 0;
  for (const auto& row : s.final_scheme) edges += row.size();
  EXPECT_EQ(edges, 0u) << "no conflicts, no serialization";
}

TEST(Shape, HillClimbingMovesThresholds) {
  sim::MachineConfig cfg;
  cfg.n_threads = 8;
  cfg.txs_per_thread = 3000;
  cfg.policy.kind = rt::PolicyKind::kSeer;
  cfg.seed = 21;
  const auto s = sim::run_machine(cfg, stamp::make_workload("intruder", 8));
  const bool moved = s.final_params.th1 != 0.3 || s.final_params.th2 != 0.8;
  EXPECT_TRUE(moved) << "self-tuning never adjusted (Th1, Th2)";
}

// ------------------------------------------------------------- ablation ----

TEST(Shape, OracleBoundsSeerFromAbove) {
  // The Oracle has STM-grade precise attribution (Figure 1's left side);
  // Seer must land between RTM and the Oracle on conflict-heavy workloads.
  for (const char* wl : {"intruder", "kmeans-high"}) {
    const auto rtm = run(wl, rt::PolicyKind::kRtm, 8, 2000);
    const auto seer = run(wl, rt::PolicyKind::kSeer, 8, 2000);
    const auto oracle = run(wl, rt::PolicyKind::kOracle, 8, 2000);
    EXPECT_GT(oracle.speedup(), rtm.speedup()) << wl;
    EXPECT_GT(seer.speedup(), rtm.speedup()) << wl;
    EXPECT_GT(oracle.speedup(), 0.85 * seer.speedup())
        << wl << ": precise information should not lose badly to inference";
  }
}

TEST(Shape, OracleLearnsPreciselyOnIntruder) {
  sim::MachineConfig cfg;
  cfg.n_threads = 8;
  cfg.txs_per_thread = 2000;
  cfg.policy.kind = rt::PolicyKind::kOracle;
  cfg.seed = 21;
  sim::Machine m(cfg, stamp::make_workload("intruder", 8));
  (void)m.run();
  auto* oracle = m.policy_shared().oracle();
  ASSERT_NE(oracle, nullptr);
  // capture<->capture is the hottest precisely-attributed pair.
  EXPECT_GT(oracle->conflicts(0, 0), 0u);
  EXPECT_TRUE(oracle->scheme()->row(0).contains(0));
}

TEST(Shape, TxLocksImproveOverProfileOnly) {
  sim::MachineConfig base;
  base.n_threads = 8;
  base.txs_per_thread = 1500;
  base.seed = 21;
  base.policy.kind = rt::PolicyKind::kSeer;
  base.policy.seer.enable_tx_locks = false;
  base.policy.seer.enable_core_locks = false;
  base.policy.seer.enable_htm_lock_acquire = false;
  base.policy.seer.enable_hill_climbing = false;

  auto with_tx = base;
  with_tx.policy.seer.enable_tx_locks = true;

  const auto profile_only =
      sim::run_machine(base, stamp::make_workload("intruder", 8));
  const auto tx_locks =
      sim::run_machine(with_tx, stamp::make_workload("intruder", 8));
  EXPECT_GT(tx_locks.speedup(), profile_only.speedup())
      << "Figure 5: transaction locks provide the largest boost";
}

TEST(Shape, CoreLocksAloneHelpYadaAt8Threads) {
  sim::MachineConfig base;
  base.n_threads = 8;
  base.txs_per_thread = 600;
  base.seed = 21;
  base.policy.kind = rt::PolicyKind::kSeer;
  base.policy.seer.enable_tx_locks = false;
  base.policy.seer.enable_core_locks = false;
  base.policy.seer.enable_htm_lock_acquire = false;
  base.policy.seer.enable_hill_climbing = false;

  auto with_core = base;
  with_core.policy.seer.enable_core_locks = true;

  const auto off = sim::run_machine(base, stamp::make_workload("yada", 8));
  const auto on = sim::run_machine(with_core, stamp::make_workload("yada", 8));
  EXPECT_GT(on.speedup(), off.speedup())
      << "§5.3: enabling only core locks speeds up SMT-capacity workloads";
}

}  // namespace
}  // namespace seer
