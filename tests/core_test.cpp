// Tests for the Seer scheduler core: active-transactions table, per-thread
// statistics (Alg. 3), probability model, lock-scheme inference (Alg. 5),
// stochastic hill climbing and the SeerScheduler façade.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "core/active_tx_table.hpp"
#include "core/conflict_stats.hpp"
#include "core/hill_climber.hpp"
#include "core/lock_scheme.hpp"
#include "core/probability.hpp"
#include "core/seer_scheduler.hpp"
#include "util/rng.hpp"

namespace seer::core {
namespace {

// ------------------------------------------------------ ActiveTxTable ------

TEST(ActiveTxTable, StartsEmpty) {
  ActiveTxTable t(4);
  for (ThreadId i = 0; i < 4; ++i) EXPECT_EQ(t.peek(i), kNoTx);
}

TEST(ActiveTxTable, AnnounceAndClearAreSlotLocal) {
  ActiveTxTable t(4);
  t.announce(1, 7);
  t.announce(3, 2);
  EXPECT_EQ(t.peek(0), kNoTx);
  EXPECT_EQ(t.peek(1), 7);
  EXPECT_EQ(t.peek(2), kNoTx);
  EXPECT_EQ(t.peek(3), 2);
  t.clear(1);
  EXPECT_EQ(t.peek(1), kNoTx);
  EXPECT_EQ(t.peek(3), 2);
}

TEST(ActiveTxTable, ReAnnounceOverwrites) {
  ActiveTxTable t(2);
  t.announce(0, 1);
  t.announce(0, 5);
  EXPECT_EQ(t.peek(0), 5);
}

// -------------------------------------------------------- ThreadStats ------

TEST(ThreadStats, RecordsConcurrentTypesOnAbort) {
  ActiveTxTable active(4);
  ThreadStats stats(3);
  active.announce(0, 0);  // self — must be skipped
  active.announce(1, 2);
  active.announce(2, 1);
  // slot 3 idle
  stats.record_abort(0, /*self=*/0, active);
  EXPECT_EQ(stats.abort_cell(0, 2), 1u);
  EXPECT_EQ(stats.abort_cell(0, 1), 1u);
  EXPECT_EQ(stats.abort_cell(0, 0), 0u) << "own slot must be skipped";
  EXPECT_EQ(stats.commit_cell(0, 2), 0u);
}

TEST(ThreadStats, MultiplicityCountsPerSlot) {
  // Two threads running the same type y mean two increments for (x, y) —
  // the paper's per-slot scan semantics (Alg. 3).
  ActiveTxTable active(4);
  ThreadStats stats(2);
  active.announce(1, 1);
  active.announce(2, 1);
  active.announce(3, 1);
  stats.record_commit(0, 0, active);
  EXPECT_EQ(stats.commit_cell(0, 1), 3u);
}

TEST(ThreadStats, ExecutionsCountBothOutcomes) {
  ActiveTxTable active(2);
  ThreadStats stats(2);
  stats.record_abort(1, 0, active);
  stats.record_abort(1, 0, active);
  stats.record_commit(1, 0, active);
  GlobalStats g(2);
  stats.merge_into(g);
  EXPECT_EQ(g.execs(1), 3u);
  EXPECT_EQ(g.execs(0), 0u);
}

TEST(ThreadStats, MergeSumsAcrossSlabs) {
  ActiveTxTable active(2);
  active.announce(1, 0);
  ThreadStats a(2);
  ThreadStats b(2);
  a.record_abort(0, 0, active);
  a.record_commit(0, 0, active);
  b.record_abort(0, 0, active);
  GlobalStats g(2);
  a.merge_into(g);
  b.merge_into(g);
  EXPECT_EQ(g.abort(0, 0), 2u);
  EXPECT_EQ(g.commit(0, 0), 1u);
  EXPECT_EQ(g.execs(0), 3u);
  EXPECT_EQ(g.total_executions(), 3u);
}

TEST(ThreadStats, SampledMergeScalesBackToEventUnits) {
  ActiveTxTable active(2);
  active.announce(1, 1);
  ThreadStats stats(2, /*sample_period=*/4);
  for (int i = 0; i < 8; ++i) stats.record_commit(0, 0, active);
  // Events 1 and 5 are the sampled ones (the countdown starts hot so short
  // runs still record); the merge scales the 2 physical bumps back to 8.
  EXPECT_EQ(stats.commit_cell(0, 1), 2u);
  GlobalStats g(2);
  stats.merge_into(g);
  EXPECT_EQ(g.commit(0, 1), 8u);
  EXPECT_EQ(g.execs(0), 8u);
  // Raw tallies are exact regardless of the sampling period.
  EXPECT_EQ(stats.raw_events(), 8u);
  EXPECT_EQ(stats.raw_commits(), 8u);
}

TEST(ThreadStats, SampledMergeConvergesToUnsampled) {
  // Satellite check for the stats_sample_period extension: on a synthetic
  // workload the scaled sampled matrix must converge to the unsampled one.
  constexpr std::size_t kTypes = 4;
  constexpr std::uint32_t kPeriod = 8;
  ActiveTxTable active(4);
  ThreadStats exact(kTypes, 1);
  ThreadStats sampled(kTypes, kPeriod);
  util::Xoshiro256 rng(2024);
  for (int i = 0; i < 64000; ++i) {
    // Re-announce the two concurrent peers now and then, abort ~25% of the
    // time — both slabs see the IDENTICAL event stream.
    if (i % 7 == 0) {
      active.announce(1, static_cast<TxTypeId>(rng.below(kTypes)));
      active.announce(2, static_cast<TxTypeId>(rng.below(kTypes)));
    }
    const auto tx = static_cast<TxTypeId>(rng.below(kTypes));
    if (rng.below(4) == 0) {
      exact.record_abort(tx, 0, active);
      sampled.record_abort(tx, 0, active);
    } else {
      exact.record_commit(tx, 0, active);
      sampled.record_commit(tx, 0, active);
    }
  }
  GlobalStats ge(kTypes);
  GlobalStats gs(kTypes);
  exact.merge_into(ge);
  sampled.merge_into(gs);
  EXPECT_EQ(exact.raw_events(), sampled.raw_events());
  for (TxTypeId x = 0; x < static_cast<TxTypeId>(kTypes); ++x) {
    // ~16k executions per type; systematic 1-in-8 sampling stays well
    // within 10% on every aggregate the inference consumes.
    EXPECT_NEAR(static_cast<double>(gs.execs(x)), static_cast<double>(ge.execs(x)),
                0.10 * static_cast<double>(ge.execs(x)));
    for (TxTypeId y = 0; y < static_cast<TxTypeId>(kTypes); ++y) {
      const double e = static_cast<double>(ge.abort(x, y) + ge.commit(x, y));
      const double s = static_cast<double>(gs.abort(x, y) + gs.commit(x, y));
      if (e < 500.0) continue;  // skip cells without statistical mass
      EXPECT_NEAR(s, e, 0.15 * e) << "cell (" << int(x) << "," << int(y) << ")";
    }
  }
}

// -------------------------------------------------- ProbabilityModel -------

GlobalStats make_stats(std::size_t n) { return GlobalStats(n); }

TEST(ProbabilityModel, MatchesPaperFormulas) {
  GlobalStats g = make_stats(2);
  // a_01 = 30, c_01 = 10, e_0 = 100
  g.aborts[g.idx(0, 1)] = 30;
  g.commits[g.idx(0, 1)] = 10;
  g.executions[0] = 100;
  const ProbabilityModel p(g);
  EXPECT_DOUBLE_EQ(p.conditional_abort(0, 1), 30.0 / 40.0);
  EXPECT_DOUBLE_EQ(p.conjunctive_abort(0, 1), 30.0 / 100.0);
  EXPECT_TRUE(p.observed_concurrent(0, 1));
}

TEST(ProbabilityModel, ZeroEvidenceIsZero) {
  GlobalStats g = make_stats(2);
  g.executions[0] = 50;
  const ProbabilityModel p(g);
  EXPECT_EQ(p.conditional_abort(0, 1), 0.0);
  EXPECT_EQ(p.conjunctive_abort(0, 1), 0.0);
  EXPECT_FALSE(p.observed_concurrent(0, 1));
}

TEST(ProbabilityModel, ZeroExecutionsGuarded) {
  GlobalStats g = make_stats(2);
  g.aborts[g.idx(0, 1)] = 5;
  const ProbabilityModel p(g);
  EXPECT_EQ(p.conjunctive_abort(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(p.conditional_abort(0, 1), 1.0);
}

TEST(ProbabilityModel, EmptyStatsAreFiniteEverywhere) {
  // A scheduler rebuilding before any slab recorded a sample must see
  // probabilities, not NaNs: every cell of an all-zero stats matrix is 0.
  GlobalStats g = make_stats(3);
  const ProbabilityModel p(g);
  for (TxTypeId x = 0; x < 3; ++x) {
    for (TxTypeId y = 0; y < 3; ++y) {
      EXPECT_EQ(p.conditional_abort(x, y), 0.0);
      EXPECT_EQ(p.conjunctive_abort(x, y), 0.0);
      EXPECT_FALSE(p.observed_concurrent(x, y));
    }
  }
}

TEST(ProbabilityModel, SingleThreadRunsCarryNoPairEvidence) {
  // One thread, one active slot: the Alg. 3 scan skips self, so a
  // single-threaded run accumulates executions but NEVER concurrent
  // evidence — every pair probability must stay 0 (nothing to serialize).
  ActiveTxTable active(1);
  ThreadStats stats(2);
  for (int i = 0; i < 10; ++i) {
    active.announce(0, 0);
    stats.record_abort(0, /*self=*/0, active);
    stats.record_commit(0, /*self=*/0, active);
    active.clear(0);
  }
  GlobalStats g = make_stats(2);
  stats.merge_into(g);
  EXPECT_EQ(g.execs(0), 20u);
  const ProbabilityModel p(g);
  for (TxTypeId x = 0; x < 2; ++x) {
    for (TxTypeId y = 0; y < 2; ++y) {
      EXPECT_EQ(p.conditional_abort(x, y), 0.0) << int(x) << "," << int(y);
      EXPECT_EQ(p.conjunctive_abort(x, y), 0.0) << int(x) << "," << int(y);
      EXPECT_FALSE(p.observed_concurrent(x, y));
    }
  }
}

TEST(ProbabilityModel, SelfConcurrencyCountsAsPairEvidence) {
  // Two threads running the SAME type: (x, x) is a real pair — the model
  // must not special-case the diagonal.
  ActiveTxTable active(2);
  active.announce(1, 0);
  ThreadStats stats(1);
  stats.record_abort(0, /*self=*/0, active);
  GlobalStats g = make_stats(1);
  stats.merge_into(g);
  const ProbabilityModel p(g);
  EXPECT_DOUBLE_EQ(p.conditional_abort(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(p.conjunctive_abort(0, 0), 1.0);
  EXPECT_TRUE(p.observed_concurrent(0, 0));
}

// --------------------------------------------------------- LockScheme ------

TEST(LockScheme, AddKeepsRowsSortedAndUnique) {
  LockScheme s(4);
  s.add(0, 3);
  s.add(0, 1);
  s.add(0, 3);
  s.add(0, 2);
  const LockRow& r = s.row(0);
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r[0], 1);
  EXPECT_EQ(r[1], 2);
  EXPECT_EQ(r[2], 3);
  EXPECT_TRUE(s.row(1).empty());
  EXPECT_EQ(s.edge_count(), 3u);
  EXPECT_FALSE(s.empty());
}

TEST(LockScheme, OverflowDropsSilently) {
  LockScheme s(kMaxLocksPerRow + 8);
  for (TxTypeId y = 0; y < static_cast<TxTypeId>(kMaxLocksPerRow + 8); ++y) {
    s.add(0, y);
  }
  EXPECT_EQ(s.row(0).size(), kMaxLocksPerRow);
  EXPECT_TRUE(std::is_sorted(s.row(0).begin(), s.row(0).end()));
}

// Builds stats where pair (x, y) has the given abort/commit evidence and
// everything else is uniform background noise.
GlobalStats hot_pair_stats(std::size_t n, TxTypeId x, TxTypeId y,
                           std::uint64_t hot_aborts, std::uint64_t hot_commits,
                           std::uint64_t noise_aborts = 5,
                           std::uint64_t noise_commits = 95) {
  GlobalStats g(n);
  for (TxTypeId a = 0; a < static_cast<TxTypeId>(n); ++a) {
    std::uint64_t execs = 0;
    for (TxTypeId b = 0; b < static_cast<TxTypeId>(n); ++b) {
      g.aborts[g.idx(a, b)] = noise_aborts;
      g.commits[g.idx(a, b)] = noise_commits;
      execs += noise_aborts + noise_commits;
    }
    g.executions[a] = execs;
  }
  g.aborts[g.idx(x, y)] = hot_aborts;
  g.commits[g.idx(x, y)] = hot_commits;
  g.executions[x] += hot_aborts + hot_commits - noise_aborts - noise_commits;
  return g;
}

TEST(BuildLockScheme, FlagsHotPairSymmetrically) {
  const GlobalStats g = hot_pair_stats(4, 1, 2, /*aborts=*/400, /*commits=*/100);
  const auto scheme = build_lock_scheme(g, InferenceParams{.th1 = 0.3, .th2 = 0.8});
  EXPECT_TRUE(scheme->row(1).contains(2));
  EXPECT_TRUE(scheme->row(2).contains(1)) << "lines 73-74: symmetric locks";
  EXPECT_FALSE(scheme->row(0).contains(3));
  EXPECT_FALSE(scheme->row(3).contains(0));
}

TEST(BuildLockScheme, SelfConflictYieldsSelfEdge) {
  const GlobalStats g = hot_pair_stats(3, 1, 1, 500, 100);
  const auto scheme = build_lock_scheme(g, InferenceParams{.th1 = 0.3, .th2 = 0.8});
  EXPECT_TRUE(scheme->row(1).contains(1));
}

TEST(BuildLockScheme, EmptyStatsGiveEmptyScheme) {
  const GlobalStats g(4);
  const auto scheme = build_lock_scheme(g, InferenceParams{});
  EXPECT_TRUE(scheme->empty());
}

TEST(BuildLockScheme, UniformRowsProduceNoEdges) {
  // All pairs identical: zero variance, strict '>' comparison — nothing is
  // an outlier, nothing gets serialized.
  GlobalStats g(4);
  for (TxTypeId a = 0; a < 4; ++a) {
    for (TxTypeId b = 0; b < 4; ++b) {
      g.aborts[g.idx(a, b)] = 50;
      g.commits[g.idx(a, b)] = 50;
    }
    g.executions[a] = 400;
  }
  const auto scheme = build_lock_scheme(g, InferenceParams{.th1 = 0.05, .th2 = 0.8});
  EXPECT_TRUE(scheme->empty());
}

TEST(BuildLockScheme, Th1GatesRarePairs) {
  // Hot conditional probability but RARE in absolute terms: the pair aborts
  // always when concurrent, but concurrency is 1% of executions.
  GlobalStats g(2);
  g.aborts[g.idx(0, 1)] = 10;   // always aborts when 1 is around...
  g.commits[g.idx(0, 1)] = 0;
  g.aborts[g.idx(0, 0)] = 1;
  g.commits[g.idx(0, 0)] = 99;
  g.executions[0] = 1000;       // ...but that is only 1% of executions
  g.executions[1] = 1000;
  const auto high_th1 = build_lock_scheme(g, InferenceParams{.th1 = 0.3, .th2 = 0.5});
  EXPECT_FALSE(high_th1->row(0).contains(1)) << "Th1 must veto rare pairs";
  const auto low_th1 = build_lock_scheme(g, InferenceParams{.th1 = 0.005, .th2 = 0.5});
  EXPECT_TRUE(low_th1->row(0).contains(1));
}

class Th2Monotonicity : public ::testing::TestWithParam<double> {};

TEST_P(Th2Monotonicity, HigherTh2NeverAddsEdges) {
  const double th2 = GetParam();
  GlobalStats g(6);
  // Structured evidence: pair (0,1) strong, (2,3) medium, rest weak noise.
  for (TxTypeId a = 0; a < 6; ++a) {
    for (TxTypeId b = 0; b < 6; ++b) {
      g.aborts[g.idx(a, b)] = 10;
      g.commits[g.idx(a, b)] = 90;
    }
    g.executions[a] = 600;
  }
  g.aborts[g.idx(0, 1)] = 300;
  g.commits[g.idx(0, 1)] = 50;
  g.aborts[g.idx(2, 3)] = 120;
  g.commits[g.idx(2, 3)] = 80;
  const auto lo = build_lock_scheme(g, InferenceParams{.th1 = 0.05, .th2 = th2});
  const auto hi = build_lock_scheme(g, InferenceParams{.th1 = 0.05, .th2 = th2 + 0.15});
  EXPECT_GE(lo->edge_count(), hi->edge_count());
}

INSTANTIATE_TEST_SUITE_P(Grid, Th2Monotonicity,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.8));

TEST(BuildLockScheme, DeterministicForSameInputs) {
  const GlobalStats g = hot_pair_stats(5, 0, 4, 300, 100);
  const InferenceParams p{.th1 = 0.2, .th2 = 0.7};
  const auto a = build_lock_scheme(g, p);
  const auto b = build_lock_scheme(g, p);
  ASSERT_EQ(a->n_types(), b->n_types());
  for (TxTypeId x = 0; x < 5; ++x) EXPECT_EQ(a->row(x), b->row(x));
}

TEST(BuildLockScheme, RowsAreSortedForDeadlockFreedom) {
  GlobalStats g(6);
  for (TxTypeId b = 0; b < 6; ++b) {
    g.aborts[g.idx(0, b)] = (b == 2 || b == 4) ? 200 : 2;
    g.commits[g.idx(0, b)] = 50;
  }
  g.executions[0] = 800;
  for (TxTypeId a = 1; a < 6; ++a) g.executions[a] = 800;
  const auto scheme = build_lock_scheme(g, InferenceParams{.th1 = 0.05, .th2 = 0.6});
  for (TxTypeId x = 0; x < 6; ++x) {
    EXPECT_TRUE(std::is_sorted(scheme->row(x).begin(), scheme->row(x).end()));
  }
}

// -------------------------------------------------------- HillClimber ------

TEST(HillClimber, StartsAtPaperDefaults) {
  HillClimber hc;
  EXPECT_DOUBLE_EQ(hc.current().x, 0.3);
  EXPECT_DOUBLE_EQ(hc.current().y, 0.8);
  EXPECT_EQ(hc.epochs(), 0u);
}

TEST(HillClimber, ClimbsAQuadraticBowl) {
  // Objective peaked at (0.6, 0.2).
  auto score = [](HillClimber::Point p) {
    const double dx = p.x - 0.6;
    const double dy = p.y - 0.2;
    return 1.0 - (dx * dx + dy * dy);
  };
  HillClimberConfig cfg;
  cfg.jump_probability = 0.0;  // pure local search for this test
  cfg.seed = 9;
  HillClimber hc(cfg);
  for (int i = 0; i < 400; ++i) {
    (void)hc.feed(score(hc.current()));
  }
  EXPECT_NEAR(hc.best().x, 0.6, 0.1);
  EXPECT_NEAR(hc.best().y, 0.2, 0.1);
  EXPECT_GT(hc.best_score(), 0.98);
}

TEST(HillClimber, StaysInBox) {
  HillClimberConfig cfg;
  cfg.initial_x = 0.0;
  cfg.initial_y = 1.0;
  cfg.jump_probability = 0.5;  // jump a lot
  cfg.seed = 4;
  HillClimber hc(cfg);
  for (int i = 0; i < 500; ++i) {
    const auto p = hc.feed(0.5);
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 1.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 1.0);
  }
}

TEST(HillClimber, RetreatsFromWorseCandidates) {
  HillClimberConfig cfg;
  cfg.jump_probability = 0.0;
  cfg.seed = 2;
  HillClimber hc(cfg);
  const auto start = hc.current();
  (void)hc.feed(10.0);  // baseline at the initial point
  for (int i = 0; i < 50; ++i) {
    (void)hc.feed(1.0);  // every candidate is worse
  }
  EXPECT_NEAR(hc.best().x, start.x, 1e-12);
  EXPECT_NEAR(hc.best().y, start.y, 1e-12);
  EXPECT_DOUBLE_EQ(hc.best_score(), 10.0);
}

TEST(HillClimber, DeterministicBySeed) {
  HillClimberConfig cfg;
  cfg.seed = 77;
  HillClimber a(cfg);
  HillClimber b(cfg);
  for (int i = 0; i < 100; ++i) {
    const auto pa = a.feed(static_cast<double>(i % 7));
    const auto pb = b.feed(static_cast<double>(i % 7));
    EXPECT_DOUBLE_EQ(pa.x, pb.x);
    EXPECT_DOUBLE_EQ(pa.y, pb.y);
  }
}

TEST(HillClimber, OscillatingScoresDoNotCauseDrift) {
  // A noisy objective that alternates good/bad feedback must not walk the
  // climber away from its best-known point: every non-improving epoch
  // retreats to best, so the candidate is never more than one step from
  // it. Unchecked, oscillation-chasing would random-walk the thresholds.
  HillClimberConfig cfg;
  cfg.jump_probability = 0.0;
  cfg.seed = 11;
  HillClimber hc(cfg);
  const auto start = hc.current();
  (void)hc.feed(100.0);  // strong baseline at the paper's initial point
  for (int i = 0; i < 300; ++i) {
    // Oscillate well below the baseline: none of these are improvements.
    (void)hc.feed(i % 2 == 0 ? 1.0 : 50.0);
    const auto p = hc.current();
    EXPECT_LE(std::abs(p.x - start.x) + std::abs(p.y - start.y),
              cfg.step + 1e-12)
        << "candidate drifted more than one step from best at epoch " << i;
  }
  EXPECT_NEAR(hc.best().x, start.x, 1e-12);
  EXPECT_NEAR(hc.best().y, start.y, 1e-12);
  EXPECT_DOUBLE_EQ(hc.best_score(), 100.0);
}

TEST(HillClimber, BoundaryMovesClampAtMinCorner) {
  // Pinned at the (lo, lo) corner, downhill proposals clamp onto the
  // boundary instead of leaving the box; the clamped coordinate stays
  // exactly lo, never a negative epsilon.
  HillClimberConfig cfg;
  cfg.initial_x = 0.0;
  cfg.initial_y = 0.0;
  cfg.jump_probability = 0.0;
  cfg.seed = 5;
  HillClimber hc(cfg);
  for (int i = 0; i < 200; ++i) {
    const auto p = hc.feed(0.0);  // never improve: best stays at the corner
    EXPECT_GE(p.x, 0.0);
    EXPECT_GE(p.y, 0.0);
    // One axis moved by at most +step, the other must sit exactly on lo.
    EXPECT_TRUE(p.x == 0.0 || p.y == 0.0)
        << "coordinate-wise proposal moved both axes: " << p.x << "," << p.y;
    EXPECT_LE(p.x, cfg.step + 1e-12);
    EXPECT_LE(p.y, cfg.step + 1e-12);
  }
}

TEST(HillClimber, BoundaryMovesClampAtMaxCorner) {
  HillClimberConfig cfg;
  cfg.initial_x = 1.0;
  cfg.initial_y = 1.0;
  cfg.jump_probability = 0.0;
  cfg.seed = 6;
  HillClimber hc(cfg);
  for (int i = 0; i < 200; ++i) {
    const auto p = hc.feed(0.0);
    EXPECT_LE(p.x, 1.0);
    EXPECT_LE(p.y, 1.0);
    EXPECT_GE(p.x, 1.0 - cfg.step - 1e-12);
    EXPECT_GE(p.y, 1.0 - cfg.step - 1e-12);
  }
}

TEST(HillClimber, DegenerateBoxPinsEveryProposal) {
  // lo == hi: the box is a single point; proposals and jumps alike must
  // collapse onto it rather than divide-by-zero or escape.
  HillClimberConfig cfg;
  cfg.lo = 0.4;
  cfg.hi = 0.4;
  cfg.initial_x = 0.4;
  cfg.initial_y = 0.4;
  cfg.jump_probability = 0.5;  // exercise the jump path too
  cfg.seed = 8;
  HillClimber hc(cfg);
  for (int i = 0; i < 100; ++i) {
    const auto p = hc.feed(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(p.x, 0.4);
    EXPECT_DOUBLE_EQ(p.y, 0.4);
  }
}

// ------------------------------------------------------ SeerScheduler ------

SeerConfig small_config() {
  SeerConfig cfg;
  cfg.n_threads = 4;
  cfg.n_types = 3;
  cfg.update_period = 10;
  cfg.rebuilds_per_tuning_epoch = 2;
  return cfg;
}

TEST(SeerScheduler, AnnounceVisibleInActiveTable) {
  SeerScheduler s(small_config());
  s.announce(2, 1);
  EXPECT_EQ(s.active_table().peek(2), 1);
  s.clear(2);
  EXPECT_EQ(s.active_table().peek(2), kNoTx);
}

TEST(SeerScheduler, RecordsFlowIntoMergedStats) {
  SeerScheduler s(small_config());
  s.announce(1, 2);
  s.record_abort(0, 0);   // thread 0 aborts type 0 while thread 1 runs type 2
  s.record_commit(0, 0);  // and then commits one
  const GlobalStats g = s.merged_stats();
  EXPECT_EQ(g.abort(0, 2), 1u);
  EXPECT_EQ(g.commit(0, 2), 1u);
  EXPECT_EQ(g.execs(0), 2u);
  EXPECT_EQ(s.total_commits(), 1u);
}

TEST(SeerScheduler, OnlyDesignatedThreadRebuilds) {
  SeerScheduler s(small_config());
  for (int i = 0; i < 100; ++i) s.record_commit(1, 0);
  EXPECT_FALSE(s.maybe_update(1, 1000));
  EXPECT_FALSE(s.maybe_update(3, 1000));
  EXPECT_EQ(s.rebuild_count(), 0u);
  EXPECT_TRUE(s.maybe_update(0, 1000));
  EXPECT_EQ(s.rebuild_count(), 1u);
}

TEST(SeerScheduler, UpdatePeriodThrottlesRebuilds) {
  SeerScheduler s(small_config());  // period 10
  for (int i = 0; i < 9; ++i) s.record_commit(0, 0);
  EXPECT_FALSE(s.maybe_update(0, 10));
  s.record_commit(0, 0);
  EXPECT_TRUE(s.maybe_update(0, 20));
  EXPECT_FALSE(s.maybe_update(0, 30)) << "no new executions since last rebuild";
}

TEST(SeerScheduler, SchemeSwapsAfterRebuildWithEvidence) {
  SeerConfig cfg = small_config();
  cfg.enable_hill_climbing = false;
  cfg.initial_params = InferenceParams{.th1 = 0.05, .th2 = 0.6};
  SeerScheduler s(cfg);
  EXPECT_TRUE(s.scheme()->empty());
  // Manufacture heavy 0<->1 conflict evidence plus benign background.
  s.announce(1, 1);
  for (int i = 0; i < 90; ++i) s.record_abort(0, 0);
  for (int i = 0; i < 10; ++i) s.record_commit(0, 0);
  s.clear(1);
  s.announce(1, 2);
  for (int i = 0; i < 5; ++i) s.record_abort(0, 0);
  for (int i = 0; i < 95; ++i) s.record_commit(0, 0);
  s.clear(1);
  s.force_update(1234);
  const auto scheme = s.scheme();
  EXPECT_TRUE(scheme->row(0).contains(1));
  EXPECT_TRUE(scheme->row(1).contains(0));
  EXPECT_FALSE(scheme->row(0).contains(2));
}

TEST(SeerScheduler, SampledStatsReachSameSchemeOnStrongSignal) {
  SeerConfig base = small_config();
  base.enable_hill_climbing = false;
  base.initial_params = InferenceParams{.th1 = 0.05, .th2 = 0.6};
  SeerConfig sampled_cfg = base;
  sampled_cfg.stats_sample_period = 8;
  SeerScheduler exact(base);
  SeerScheduler sampled(sampled_cfg);

  // The SchemeSwapsAfterRebuildWithEvidence workload, scaled x8 so the 1-in-8
  // sampler sees enough physical events in every phase.
  auto drive = [](SeerScheduler& s) {
    s.announce(1, 1);
    for (int i = 0; i < 90 * 8; ++i) s.record_abort(0, 0);
    for (int i = 0; i < 10 * 8; ++i) s.record_commit(0, 0);
    s.clear(1);
    s.announce(1, 2);
    for (int i = 0; i < 5 * 8; ++i) s.record_abort(0, 0);
    for (int i = 0; i < 95 * 8; ++i) s.record_commit(0, 0);
    s.clear(1);
    s.force_update(1234);
  };
  drive(exact);
  drive(sampled);

  // Raw (unsampled) tallies stay exact, so rebuild cadence is unaffected.
  EXPECT_EQ(sampled.total_commits(), exact.total_commits());
  EXPECT_EQ(sampled.executions_seen(), exact.executions_seen());

  const auto se = exact.scheme();
  const auto ss = sampled.scheme();
  for (TxTypeId x = 0; x < 3; ++x) {
    for (TxTypeId y = 0; y < 3; ++y) {
      EXPECT_EQ(ss->row(x).contains(y), se->row(x).contains(y))
          << "(" << int(x) << "," << int(y) << ")";
    }
  }
  EXPECT_TRUE(ss->row(0).contains(1));
}

TEST(SeerScheduler, HillClimberAdvancesWithEpochs) {
  SeerConfig cfg = small_config();
  cfg.enable_hill_climbing = true;
  SeerScheduler s(cfg);
  std::uint64_t now = 0;
  for (int round = 0; round < 40; ++round) {
    for (int i = 0; i < 12; ++i) s.record_commit(0, 0);
    now += 1000;
    (void)s.maybe_update(0, now);
  }
  EXPECT_GT(s.rebuild_count(), 10u);
  EXPECT_GT(s.tuning_epochs(), 2u);
}

TEST(SeerScheduler, StatsDecayForgetsStaleConflicts) {
  // Extension (SeerConfig::stats_decay): a pair that was hot long ago but
  // has gone quiet must eventually drop out of the scheme; without decay it
  // never would (lifetime accumulation).
  SeerConfig cfg = small_config();
  cfg.enable_hill_climbing = false;
  cfg.initial_params = InferenceParams{.th1 = 0.05, .th2 = 0.6};
  cfg.stats_decay = 0.3;
  SeerScheduler s(cfg);

  // Phase 1: heavy 0<->1 conflicts plus benign 0-with-2 background.
  for (int round = 0; round < 3; ++round) {
    s.announce(1, 1);
    for (int i = 0; i < 90; ++i) s.record_abort(0, 0);
    for (int i = 0; i < 10; ++i) s.record_commit(0, 0);
    s.clear(1);
    s.announce(1, 2);
    for (int i = 0; i < 95; ++i) s.record_commit(0, 0);
    for (int i = 0; i < 5; ++i) s.record_abort(0, 0);
    s.clear(1);
    s.force_update(100 * (round + 1));
  }
  ASSERT_TRUE(s.scheme()->row(0).contains(1)) << "phase-1 conflict learned";

  // Phase 2: the workload shifted — type 0 now always commits, with both
  // peers around. The decayed evidence must fall below the thresholds.
  for (int round = 0; round < 12; ++round) {
    s.announce(1, 1);
    s.announce(2, 2);
    for (int i = 0; i < 100; ++i) s.record_commit(0, 0);
    s.clear(1);
    s.clear(2);
    s.force_update(1000 + 100 * round);
  }
  EXPECT_FALSE(s.scheme()->row(0).contains(1))
      << "decay failed to forget the stale conflict";
}

TEST(SeerScheduler, NoDecayKeepsLifetimeEvidence) {
  // Control for the previous test: with the paper's pure accumulation the
  // stale edge persists through the same phase shift.
  SeerConfig cfg = small_config();
  cfg.enable_hill_climbing = false;
  cfg.initial_params = InferenceParams{.th1 = 0.05, .th2 = 0.6};
  cfg.stats_decay = 1.0;
  SeerScheduler s(cfg);
  for (int round = 0; round < 3; ++round) {
    s.announce(1, 1);
    for (int i = 0; i < 90; ++i) s.record_abort(0, 0);
    for (int i = 0; i < 10; ++i) s.record_commit(0, 0);
    s.clear(1);
    s.announce(1, 2);
    for (int i = 0; i < 95; ++i) s.record_commit(0, 0);
    for (int i = 0; i < 5; ++i) s.record_abort(0, 0);
    s.clear(1);
    s.force_update(100 * (round + 1));
  }
  ASSERT_TRUE(s.scheme()->row(0).contains(1));
  for (int round = 0; round < 4; ++round) {
    s.announce(1, 1);
    s.announce(2, 2);
    for (int i = 0; i < 100; ++i) s.record_commit(0, 0);
    s.clear(1);
    s.clear(2);
    s.force_update(1000 + 100 * round);
  }
  // Conditional P(0 ab | 0||1) still reflects the hot phase strongly enough
  // to stay flagged (270 aborts vs 430 commits against y=1).
  EXPECT_TRUE(s.scheme()->row(0).contains(1));
}

TEST(SeerScheduler, HillClimbingDisabledKeepsParams) {
  SeerConfig cfg = small_config();
  cfg.enable_hill_climbing = false;
  cfg.initial_params = InferenceParams{.th1 = 0.3, .th2 = 0.8};
  SeerScheduler s(cfg);
  std::uint64_t now = 0;
  for (int round = 0; round < 40; ++round) {
    for (int i = 0; i < 12; ++i) s.record_commit(0, 0);
    now += 1000;
    (void)s.maybe_update(0, now);
  }
  EXPECT_DOUBLE_EQ(s.params().th1, 0.3);
  EXPECT_DOUBLE_EQ(s.params().th2, 0.8);
  EXPECT_EQ(s.tuning_epochs(), 0u);
}

}  // namespace
}  // namespace seer::core
