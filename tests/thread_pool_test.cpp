// Tests for the evaluation harness's worker pool: deterministic by-index
// result collection, exception propagation, and drain-on-destruction — the
// properties that make fanning the benchmark sweep out across cores safe.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "util/thread_pool.hpp"

namespace seer::util {
namespace {

TEST(ThreadPool, ResultsLandAtSubmittingIndex) {
  ThreadPool pool(4);
  const auto results = parallel_for_indexed(
      pool, 200, [](std::size_t i) { return i * i; });
  ASSERT_EQ(results.size(), 200u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], i * i);
  }
}

TEST(ThreadPool, JobCountDoesNotChangeResults) {
  auto fn = [](std::size_t i) { return 3 * i + 7; };
  const auto serial = parallel_for_indexed(std::size_t{1}, 64, fn);
  for (std::size_t jobs : {2u, 4u, 8u, 16u}) {
    const auto parallel = parallel_for_indexed(std::size_t{jobs}, 64, fn);
    EXPECT_EQ(parallel, serial) << "jobs=" << jobs;
  }
}

TEST(ThreadPool, ExceptionsPropagateToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(parallel_for_indexed(pool, 50,
                                    [](std::size_t i) -> int {
                                      if (i == 17) throw std::runtime_error("boom 17");
                                      return 0;
                                    }),
               std::runtime_error);
}

TEST(ThreadPool, LowestFailingIndexWins) {
  // All items run; the rethrown error is the lowest index, deterministically,
  // no matter which worker hit its exception first.
  ThreadPool pool(8);
  try {
    (void)parallel_for_indexed(pool, 100, [](std::size_t i) -> int {
      if (i == 5 || i == 80) throw std::runtime_error("item " + std::to_string(i));
      return 0;
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "item 5");
  }
}

TEST(ThreadPool, SerialPathPropagatesExceptions) {
  EXPECT_THROW(parallel_for_indexed(std::size_t{1}, 10,
                                    [](std::size_t i) -> int {
                                      if (i == 3) throw std::runtime_error("serial");
                                      return 0;
                                    }),
               std::runtime_error);
}

TEST(ThreadPool, DrainsQueuedTasksOnDestruction) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      pool.submit([&done] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        done.fetch_add(1, std::memory_order_relaxed);
      });
    }
    // Destructor runs here, with most tasks still queued.
  }
  EXPECT_EQ(done.load(), 32);
}

TEST(ThreadPool, WaitIdleBlocksUntilQueueEmpty) {
  ThreadPool pool(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 20; ++i) {
    pool.submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      done.fetch_add(1, std::memory_order_relaxed);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 20);
}

TEST(ThreadPool, ZeroItemsIsEmpty) {
  EXPECT_TRUE(
      parallel_for_indexed(std::size_t{4}, 0, [](std::size_t) { return 1; }).empty());
}

TEST(ThreadPool, ZeroWorkersClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  const auto r = parallel_for_indexed(pool, 5, [](std::size_t i) { return i; });
  ASSERT_EQ(r.size(), 5u);
  EXPECT_EQ(r[4], 4u);
}

}  // namespace
}  // namespace seer::util
