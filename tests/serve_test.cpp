// Serving-harness building blocks (DESIGN.md §12): the MPMC admission
// queue, exact/bucket latency accounting, the arrival schedule, open_loop
// config validation, and the deterministic serve driver's contracts —
// accounting identities, byte-identical reruns, and --jobs invariance.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "util/json.hpp"
#include "util/latency_histogram.hpp"
#include "util/mpmc_queue.hpp"
#include "util/rng.hpp"
#include "workload/open_loop.hpp"
#include "workload/registry.hpp"
#include "workload/serve_driver.hpp"

namespace {

using seer::util::LatencyHistogram;
using seer::util::MpmcQueue;
using seer::workload::ArrivalSchedule;
using seer::workload::ConfigError;
using seer::workload::OpenLoopConfig;

// --- MpmcQueue --------------------------------------------------------------

TEST(MpmcQueue, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(MpmcQueue<int>(1).capacity(), 2u);
  EXPECT_EQ(MpmcQueue<int>(3).capacity(), 4u);
  EXPECT_EQ(MpmcQueue<int>(4).capacity(), 4u);
  EXPECT_EQ(MpmcQueue<int>(100).capacity(), 128u);
}

TEST(MpmcQueue, FifoAcrossManyWraparounds) {
  MpmcQueue<int> q(4);
  int expected = 0;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(q.try_push(2 * i));
    ASSERT_TRUE(q.try_push(2 * i + 1));
    int v = -1;
    ASSERT_TRUE(q.try_pop(v));
    EXPECT_EQ(v, expected++);
    ASSERT_TRUE(q.try_pop(v));
    EXPECT_EQ(v, expected++);
  }
  int v = -1;
  EXPECT_FALSE(q.try_pop(v));
}

TEST(MpmcQueue, FullQueueShedsUntilPopMakesRoom) {
  MpmcQueue<int> q(4);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(q.try_push(int{i}));
  EXPECT_FALSE(q.try_push(99));  // shed, not block
  EXPECT_EQ(q.approx_size(), 4u);
  int v = -1;
  ASSERT_TRUE(q.try_pop(v));
  EXPECT_EQ(v, 0);
  EXPECT_TRUE(q.try_push(99));
  // Drain preserves order: 1, 2, 3, 99.
  std::vector<int> rest;
  while (q.try_pop(v)) rest.push_back(v);
  EXPECT_EQ(rest, (std::vector<int>{1, 2, 3, 99}));
}

// The tsan-facing stress: every pushed value is popped exactly once, no
// element is lost or duplicated, across concurrent producers and consumers
// that wrap the ring many times over.
TEST(MpmcQueue, MultiProducerMultiConsumerStress) {
  constexpr int kProducers = 4, kConsumers = 4, kPerProducer = 20000;
  MpmcQueue<std::uint64_t> q(64);
  std::atomic<std::uint64_t> popped_sum{0}, popped_count{0};
  std::atomic<bool> done{false};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const std::uint64_t v =
            static_cast<std::uint64_t>(p) * kPerProducer + i + 1;
        while (!q.try_push(std::uint64_t{v})) std::this_thread::yield();
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      std::uint64_t v = 0;
      for (;;) {
        if (q.try_pop(v)) {
          popped_sum.fetch_add(v, std::memory_order_relaxed);
          popped_count.fetch_add(1, std::memory_order_relaxed);
        } else if (done.load(std::memory_order_acquire)) {
          if (!q.try_pop(v)) break;
          popped_sum.fetch_add(v, std::memory_order_relaxed);
          popped_count.fetch_add(1, std::memory_order_relaxed);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[static_cast<std::size_t>(p)].join();
  done.store(true, std::memory_order_release);
  for (std::size_t t = kProducers; t < threads.size(); ++t) threads[t].join();

  const std::uint64_t n = std::uint64_t{kProducers} * kPerProducer;
  EXPECT_EQ(popped_count.load(), n);
  EXPECT_EQ(popped_sum.load(), n * (n + 1) / 2);  // values were 1..n
}

// --- LatencyHistogram -------------------------------------------------------

TEST(LatencyHistogram, NearestRankSmallCases) {
  LatencyHistogram h;
  for (const std::uint64_t v : {4, 1, 3, 2}) h.record(v);
  EXPECT_EQ(h.quantile(0.25), 1u);
  EXPECT_EQ(h.quantile(0.5), 2u);
  EXPECT_EQ(h.quantile(0.75), 3u);
  EXPECT_EQ(h.quantile(0.999), 4u);
  EXPECT_EQ(h.quantile(1.0), 4u);
  EXPECT_EQ(h.max(), 4u);
  EXPECT_EQ(h.count(), 4u);
}

TEST(LatencyHistogram, QuantilesMatchSortedReference) {
  seer::util::Xoshiro256 rng(7);
  LatencyHistogram h;
  std::vector<std::uint64_t> ref;
  for (int i = 0; i < 5000; ++i) {
    // Log-uniform-ish spread, like real latencies.
    const std::uint64_t v = (rng.next() % 1000) << (rng.next() % 20);
    h.record(v);
    ref.push_back(v);
  }
  std::sort(ref.begin(), ref.end());
  const double qs[] = {0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0};
  const std::vector<std::uint64_t> batch = h.quantiles(qs);
  for (std::size_t i = 0; i < std::size(qs); ++i) {
    const double r = std::ceil(qs[i] * static_cast<double>(ref.size()));
    const std::size_t idx =
        r <= 1.0 ? 0
                 : std::min(ref.size() - 1, static_cast<std::size_t>(r) - 1);
    EXPECT_EQ(h.quantile(qs[i]), ref[idx]) << "q=" << qs[i];
    EXPECT_EQ(batch[i], ref[idx]) << "batch q=" << qs[i];
  }
}

TEST(LatencyHistogram, MergeEqualsConcatenation) {
  LatencyHistogram a, b, all;
  seer::util::Xoshiro256 rng(11);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t v = rng.next() % 10000;
    ((i % 2 != 0) ? a : b).record(v);
    all.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_EQ(a.sum(), all.sum());
  for (const double q : {0.5, 0.9, 0.99}) {
    EXPECT_EQ(a.quantile(q), all.quantile(q));
  }
}

TEST(LatencyHistogram, EmptyReportsZeroes) {
  const LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.99), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(LatencyBuckets, EstimateLandsInTheTrueQuantilesBucket) {
  seer::util::LatencyBuckets b;
  for (int i = 0; i < 1000; ++i) b.record(100);  // bucket 7: [64, 128)
  const auto snap = b.snapshot();
  const double est = seer::util::bucket_quantile_estimate(snap, 0.5);
  EXPECT_GE(est, 64.0);
  EXPECT_LE(est, 128.0);
  EXPECT_EQ(seer::util::bucket_quantile_estimate({}, 0.5), 0.0);
}

// --- ArrivalSchedule --------------------------------------------------------

OpenLoopConfig base_config() {
  OpenLoopConfig cfg;
  cfg.rate = 1000.0;
  cfg.process = OpenLoopConfig::Process::kConstant;
  return cfg;
}

TEST(ArrivalSchedule, ConstantGapIsInverseRate) {
  const OpenLoopConfig cfg = base_config();
  const ArrivalSchedule sched(cfg, cfg.rate);
  seer::util::Xoshiro256 rng(1);
  EXPECT_EQ(sched.next_gap_ns(0.0, rng), 1000000u);  // 1 ms at 1000/s
}

TEST(ArrivalSchedule, DiurnalModulatesAroundTheBase) {
  OpenLoopConfig cfg = base_config();
  cfg.diurnal.period_s = 1.0;
  cfg.diurnal.amplitude = 0.5;
  const ArrivalSchedule sched(cfg, cfg.rate);
  EXPECT_NEAR(sched.rate_at(0.25), 1500.0, 1e-6);  // sin peak
  EXPECT_NEAR(sched.rate_at(0.75), 500.0, 1e-6);   // sin trough
  EXPECT_NEAR(sched.rate_at(0.0), 1000.0, 1e-6);
}

TEST(ArrivalSchedule, BurstMultipliesOnlyInsideItsWindow) {
  OpenLoopConfig cfg = base_config();
  cfg.bursts.push_back({1.0, 0.5, 4.0});
  const ArrivalSchedule sched(cfg, cfg.rate);
  EXPECT_NEAR(sched.rate_at(0.99), 1000.0, 1e-6);
  EXPECT_NEAR(sched.rate_at(1.0), 4000.0, 1e-6);
  EXPECT_NEAR(sched.rate_at(1.49), 4000.0, 1e-6);
  EXPECT_NEAR(sched.rate_at(1.5), 1000.0, 1e-6);
}

TEST(ArrivalSchedule, PoissonGapsAverageTheInverseRate) {
  OpenLoopConfig cfg = base_config();
  cfg.process = OpenLoopConfig::Process::kPoisson;
  const ArrivalSchedule sched(cfg, cfg.rate);
  seer::util::Xoshiro256 rng(42);
  double sum_ns = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    sum_ns += static_cast<double>(sched.next_gap_ns(0.0, rng));
  }
  EXPECT_NEAR(sum_ns / kDraws, 1e6, 2e4);  // within 2% of the 1 ms mean
}

// --- open_loop config validation -------------------------------------------

seer::util::json::Value parse_json(const std::string& text) {
  std::string err;
  auto doc = seer::util::json::parse(text, &err);
  EXPECT_TRUE(doc) << err;
  return *doc;
}

void expect_config_error(const std::string& open_loop_json,
                         const std::string& needle) {
  try {
    (void)OpenLoopConfig::from_json(parse_json(open_loop_json), "test");
    FAIL() << "expected ConfigError mentioning \"" << needle << "\"";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << e.what();
  }
}

TEST(OpenLoopConfig, RateAndSweepAreMutuallyExclusive) {
  expect_config_error(
      R"({"rate": 100, "sweep": {"rates": [100, 200]}})", "mutually exclusive");
}

TEST(OpenLoopConfig, MissingRateAndSweepIsAnError) {
  expect_config_error(R"({"duration_s": 1.0})", "rate");
}

TEST(OpenLoopConfig, UnknownProcessIsNamed) {
  expect_config_error(R"({"rate": 100, "process": "bursty"})", "bursty");
}

TEST(OpenLoopConfig, DiurnalAmplitudeMustStayBelowOne) {
  expect_config_error(
      R"({"rate": 100, "diurnal": {"period_s": 1.0, "amplitude": 1.0}})",
      "amplitude");
}

TEST(OpenLoopConfig, SweepRatesMustStrictlyIncrease) {
  expect_config_error(
      R"({"sweep": {"rates": [200, 100]}})", "strictly increasing");
}

TEST(OpenLoopConfig, UnknownKeyIsRejected) {
  expect_config_error(R"({"rate": 100, "queue_cap": 64})", "queue_cap");
}

// --- serve driver (deterministic backend) ----------------------------------

// A small self-contained service config; `open_loop` is spliced in.
std::string service_config(const std::string& open_loop) {
  return std::string(R"({
    "generator": "spec",
    "name": "serve-test",
    "params": {
      "think_mean": 0,
      "regions": [{"name": "hot", "lines": 64, "zipf_skew": 0.9}],
      "types": [
        {"name": "lookup", "duration_mean": 300,
         "accesses": [{"region": "hot", "reads": 4}]},
        {"name": "update", "duration_mean": 500,
         "accesses": [{"region": "hot", "reads": 2, "writes": 2}]}
      ],
      "mix": [3, 1]
    },
    "open_loop": )") +
         open_loop + "}";
}

seer::workload::Desc desc_of(const std::string& config_json) {
  return seer::workload::from_config_json(parse_json(config_json), "test");
}

constexpr const char* kSmallOpenLoop = R"({
  "rate": 5000, "duration_s": 0.3, "warmup_s": 0.05,
  "queue_capacity": 64, "workers": 2, "emit_interval_ms": 50,
  "cycles_per_us": 1.0,
  "bursts": [{"at_s": 0.15, "duration_s": 0.05, "multiplier": 3.0}]
})";

TEST(ServeDriver, RegistryExposesTheOpenLoopSection) {
  const auto desc = desc_of(service_config(kSmallOpenLoop));
  ASSERT_TRUE(desc.open_loop != nullptr);
  EXPECT_EQ(desc.open_loop->rate, 5000.0);
  EXPECT_EQ(desc.open_loop->workers, 2u);
  // A config without the section leaves the pointer empty.
  EXPECT_TRUE(seer::workload::find("genome").open_loop == nullptr);
}

TEST(ServeDriver, DeterministicAccountingIdentitiesHold) {
  const auto desc = desc_of(service_config(kSmallOpenLoop));
  seer::workload::ServeOptions opts;
  opts.deterministic = true;
  const auto report = run_serve(desc, *desc.open_loop, opts);
  ASSERT_EQ(report.steps.size(), 1u);
  const auto& s = report.steps[0];
  EXPECT_GT(s.arrivals, 0u);
  EXPECT_EQ(s.arrivals, s.accepted + s.rejected);
  // Nothing is lost between admission and service: every accepted request
  // completes (the drain serves whatever is still queued at window close).
  EXPECT_EQ(s.completed, s.accepted);
  EXPECT_LE(s.latency_count, s.completed);
  EXPECT_GT(s.latency_count, 0u);
  EXPECT_LE(s.p50_ns, s.p90_ns);
  EXPECT_LE(s.p90_ns, s.p99_ns);
  EXPECT_LE(s.p99_ns, s.p999_ns);
  EXPECT_LE(s.p999_ns, s.max_ns);
}

TEST(ServeDriver, DeterministicRunsAreByteIdentical) {
  const auto desc = desc_of(service_config(kSmallOpenLoop));
  seer::workload::ServeOptions opts;
  opts.deterministic = true;
  opts.seed = 3;
  const auto a = run_serve(desc, *desc.open_loop, opts);
  const auto b = run_serve(desc, *desc.open_loop, opts);
  EXPECT_EQ(a.jsonl, b.jsonl);
  // A different seed samples different arrivals — the bytes must move.
  opts.seed = 4;
  const auto c = run_serve(desc, *desc.open_loop, opts);
  EXPECT_NE(a.jsonl, c.jsonl);
}

TEST(ServeDriver, SweepOutputIsJobsInvariant) {
  const auto desc = desc_of(service_config(R"({
    "sweep": {"rates": [500, 2000, 8000], "knee_p99_ms": 2.0},
    "duration_s": 0.2, "queue_capacity": 64, "workers": 1,
    "cycles_per_us": 1.0
  })"));
  seer::workload::ServeOptions opts;
  opts.deterministic = true;
  const auto serial = run_serve(desc, *desc.open_loop, opts);
  opts.jobs = 4;
  const auto parallel = run_serve(desc, *desc.open_loop, opts);
  EXPECT_EQ(serial.jsonl, parallel.jsonl);
  ASSERT_EQ(serial.steps.size(), 3u);
}

TEST(ServeDriver, SweepFindsTheSaturationKnee) {
  // One worker at ~350 cycles/request and cycles_per_us=1 serves ~2850/s;
  // 500/s keeps up, 8000/s cannot — the knee criteria must fire there.
  const auto desc = desc_of(service_config(R"({
    "sweep": {"rates": [500, 8000], "knee_p99_ms": 2.0,
              "knee_rejected_fraction": 0.01},
    "duration_s": 0.2, "queue_capacity": 32, "workers": 1,
    "cycles_per_us": 1.0
  })"));
  seer::workload::ServeOptions opts;
  opts.deterministic = true;
  const auto report = run_serve(desc, *desc.open_loop, opts);
  EXPECT_TRUE(report.saturated);
  EXPECT_EQ(report.knee_rate, 8000.0);
  EXPECT_GT(report.steps[1].rejected, 0u);
  EXPECT_GT(report.steps[1].p99_ns, report.steps[0].p99_ns);
}

// --- serve driver (real backend, kept tiny for test walltime) ---------------

TEST(ServeDriver, RealModeServesAndDrainsEverything) {
  const auto desc = desc_of(service_config(R"({
    "rate": 2000, "duration_s": 0.1, "queue_capacity": 256,
    "workers": 2, "emit_interval_ms": 20, "table_words": 4096
  })"));
  seer::workload::ServeOptions opts;  // real mode, RTM policy
  const auto report = run_serve(desc, *desc.open_loop, opts);
  ASSERT_EQ(report.steps.size(), 1u);
  const auto& s = report.steps[0];
  EXPECT_GT(s.arrivals, 0u);
  EXPECT_EQ(s.arrivals, s.accepted + s.rejected);
  EXPECT_EQ(s.completed, s.accepted);
  EXPECT_EQ(s.latency_count, s.completed);  // warmup_s = 0: all counted
  EXPECT_GT(s.max_ns, 0u);
}

}  // namespace
