// Cross-backend differential tests: the SeerScheduler's decisions must be a
// pure function of the event stream it is fed, whichever backend owns it.
// Synthetic traces replayed into schedulers constructed by the simulator
// and by the real-threads executor must yield identical lock schemes and
// hill-climber moves; a live capture from a deterministically driven
// executor must replay to the same decisions.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "check/differential.hpp"
#include "runtime/threaded_executor.hpp"
#include "sim/machine.hpp"

namespace seer::check {
namespace {

core::SeerConfig small_seer_config() {
  core::SeerConfig cfg;
  cfg.n_threads = 4;
  cfg.n_types = 3;
  cfg.update_period = 64;
  return cfg;
}

// ------------------------------------------------------ synthetic trace ----

TEST(SyntheticTrace, DeterministicForSeed) {
  const auto a = make_synthetic_trace(7, 4, 3, 500);
  const auto b = make_synthetic_trace(7, 4, 3, 500);
  EXPECT_EQ(a, b);
  const auto c = make_synthetic_trace(8, 4, 3, 500);
  EXPECT_NE(a, c);
}

TEST(SyntheticTrace, EveryTransactionResolves) {
  const auto trace = make_synthetic_trace(11, 4, 3, 300);
  std::size_t announces = 0;
  std::size_t clears = 0;
  for (const auto& e : trace) {
    if (e.kind == core::SchedEvent::Kind::kAnnounce) ++announces;
    if (e.kind == core::SchedEvent::Kind::kClear) ++clears;
  }
  EXPECT_EQ(announces, 300u);
  EXPECT_EQ(clears, 300u) << "no transaction left announced";
}

// -------------------------------------------------------------- replay -----

TEST(Replay, SameTraceSameDecisions) {
  const auto trace = make_synthetic_trace(21, 4, 3, 3000);
  core::SeerScheduler s1(small_seer_config());
  core::SeerScheduler s2(small_seer_config());
  const auto d1 = replay_trace(s1, trace);
  const auto d2 = replay_trace(s2, trace);
  EXPECT_FALSE(d1.empty()) << "the trace must drive real rebuilds";
  EXPECT_EQ(diff_decisions(d1, d2), "");
}

TEST(Replay, DecisionStreamsCoverRebuildSequence) {
  const auto trace = make_synthetic_trace(22, 4, 3, 3000);
  core::SeerScheduler s(small_seer_config());
  const auto decisions = replay_trace(s, trace);
  ASSERT_FALSE(decisions.empty());
  for (std::size_t i = 0; i < decisions.size(); ++i) {
    EXPECT_EQ(decisions[i].rebuild, i + 1) << "rebuild indices are dense";
    EXPECT_EQ(decisions[i].rows.size(), 3u);
  }
  EXPECT_EQ(s.rebuild_count(), decisions.size());
}

TEST(DiffDecisions, ReportsFirstDivergence) {
  SchedDecision a;
  a.rebuild = 1;
  a.params = core::InferenceParams{.th1 = 0.3, .th2 = 0.8};
  a.rows = {{}, {}};
  SchedDecision b = a;
  EXPECT_EQ(diff_decisions({a}, {b}), "");
  b.params.th1 = 0.5;
  const std::string msg = diff_decisions({a}, {b});
  EXPECT_NE(msg, "");
  EXPECT_NE(msg.find("decision 0"), std::string::npos) << msg;
  EXPECT_EQ(diff_decisions({a}, {a, a}).find("counts differ"), 9u);
}

// -------------------------------------------------------- cross-backend ----

// A minimal workload so a Machine (and its PolicyShared) can be built; the
// machine never runs — the differential drives its scheduler directly.
class IdleWorkload final : public sim::Workload {
 public:
  const std::string& name() const override { return name_; }
  std::size_t n_types() const override { return 3; }
  const std::string& type_name(core::TxTypeId) const override { return name_; }
  void next(core::ThreadId, double, util::Xoshiro256&, sim::TxInstance& out) override {
    out.type = 0;
    out.duration = 100;
  }
  std::uint64_t think_time(core::ThreadId, util::Xoshiro256&) override { return 10; }

 private:
  std::string name_ = "idle";
};

// The tentpole assertion: a scheduler constructed through the SIM backend
// and one constructed through the THREADED backend, given the identical
// abort/commit trace, must infer the same lock schemes and take the same
// hill-climber steps.
TEST(CrossBackend, SimAndThreadedSchedulersAgreeOnIdenticalTrace) {
  rt::PolicyConfig policy;
  policy.kind = rt::PolicyKind::kSeer;
  policy.seer.update_period = 64;

  sim::MachineConfig mcfg;
  mcfg.n_threads = 4;
  mcfg.policy = policy;
  sim::Machine machine(mcfg, std::make_unique<IdleWorkload>());
  core::SeerScheduler* sim_sched = machine.policy_shared().seer();
  ASSERT_NE(sim_sched, nullptr);

  htm::SoftHtm tm;
  rt::ThreadedExecutor::Options opts;
  opts.n_threads = 4;
  opts.n_types = 3;
  opts.physical_cores = 2;
  rt::ThreadedExecutor exec(tm, policy, opts);
  core::SeerScheduler* thr_sched = exec.policy_shared().seer();
  ASSERT_NE(thr_sched, nullptr);

  // Both backends must have resolved to the same effective scheduler shape,
  // or the comparison is vacuous.
  ASSERT_EQ(sim_sched->config().n_threads, thr_sched->config().n_threads);
  ASSERT_EQ(sim_sched->config().n_types, thr_sched->config().n_types);
  ASSERT_EQ(sim_sched->config().update_period, thr_sched->config().update_period);

  const auto trace = make_synthetic_trace(33, 4, 3, 4000);
  const auto sim_decisions = replay_trace(*sim_sched, trace);
  const auto thr_decisions = replay_trace(*thr_sched, trace);
  ASSERT_FALSE(sim_decisions.empty()) << "trace produced no rebuilds";
  EXPECT_EQ(diff_decisions(sim_decisions, thr_decisions), "")
      << "backends disagree on an identical event stream";
}

// Live capture from a deterministically driven executor replays to the
// same decisions in a fresh scheduler: the event stream fully determines
// the scheduler's behaviour (no hidden backend state).
TEST(CrossBackend, LiveCaptureReplaysToIdenticalDecisions) {
  htm::SoftHtm tm;
  rt::PolicyConfig policy;
  policy.kind = rt::PolicyKind::kSeer;
  policy.seer.update_period = 32;
  rt::ThreadedExecutor::Options opts;
  opts.n_threads = 2;
  opts.n_types = 2;
  opts.physical_cores = 2;
  rt::ThreadedExecutor exec(tm, policy, opts);
  core::SeerScheduler* sched = exec.policy_shared().seer();
  ASSERT_NE(sched, nullptr);

  SchedTraceRecorder capture;
  sched->set_trace_sink(&capture);

  // Round-robin both handles from this one thread: a deterministic drive
  // with real conflicts (both types hammer the same word).
  auto h0 = exec.make_handle(0);
  auto h1 = exec.make_handle(1);
  htm::TmWord w{0};
  for (int i = 0; i < 600; ++i) {
    const core::TxTypeId type = static_cast<core::TxTypeId>(i % 2);
    auto& h = (i % 2 == 0) ? h0 : h1;
    (void)h->run(type, [&](auto& tx) { tx.write(w, tx.read(w) + 1); });
  }
  sched->set_trace_sink(nullptr);
  EXPECT_EQ(w.load(), 600u);

  const auto events = capture.events();
  const auto live = capture.decisions();
  ASSERT_FALSE(events.empty());
  ASSERT_FALSE(live.empty()) << "drive long enough to rebuild at least once";

  core::SeerScheduler fresh(sched->config());
  const auto replayed = replay_trace(fresh, events);
  EXPECT_EQ(diff_decisions(live, replayed), "")
      << "capture and replay must describe the same scheduler run";
}

}  // namespace
}  // namespace seer::check
