// Model-introspection subsystem: FlightRecorder trigger/ring semantics,
// ModelSnapshot serialization, and the scheduler/machine integration.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/seer_scheduler.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/snapshot.hpp"
#include "sim/machine.hpp"
#include "stamp/workloads.hpp"
#include "util/json.hpp"

// The OFF-build contract (on_rebuild always false, to_json "{}") is covered
// by bench_runner_test, which runs in both configurations; everything below
// exercises the real recorder and is only built with SEER_OBS=ON.

namespace seer::obs {
namespace {

ModelSnapshot tiny_snapshot(std::uint64_t now, std::uint64_t rebuild) {
  ModelSnapshot s;
  s.now = now;
  s.rebuild = rebuild;
  s.n_types = 2;
  s.aborts = {0, 3, 1, 0};
  s.commit_pairs = {5, 2, 2, 7};
  s.execs = {10, 12};
  s.scheme = {{0, 1}, {0}};
  return s;
}

// One rebuild window worth of feed: `commit_share` of `events` commit.
RebuildSample sample_at(std::uint64_t rebuild, std::uint64_t executions,
                        std::uint64_t commits) {
  return RebuildSample{rebuild * 1000, rebuild, executions, commits};
}

TEST(FlightRecorder, PeriodicCadenceCapturesEveryKthRebuild) {
  FlightRecorderConfig cfg;
  cfg.period = 3;
  cfg.min_window_events = 1u << 20;  // detectors never arm in this test
  FlightRecorder rec(cfg);

  std::vector<std::uint64_t> captured_at;
  for (std::uint64_t r = 1; r <= 10; ++r) {
    if (rec.on_rebuild(sample_at(r, r * 100, r * 90))) {
      captured_at.push_back(r);
      rec.record(tiny_snapshot(r * 1000, r));
    }
  }
  // First rebuild always captures (captured_ == 0), then every `period`.
  EXPECT_EQ(captured_at, (std::vector<std::uint64_t>{1, 4, 7, 10}));
  EXPECT_EQ(rec.captured(), 4u);
  EXPECT_EQ(rec.dropped(), 0u);
  for (const ModelSnapshot* s : rec.snapshots()) {
    EXPECT_EQ(s->reason, SnapshotReason::kPeriodic);
  }
}

TEST(FlightRecorder, ZeroPeriodDisablesPeriodicCapture) {
  FlightRecorderConfig cfg;
  cfg.period = 0;
  cfg.min_window_events = 1u << 20;
  FlightRecorder rec(cfg);
  for (std::uint64_t r = 1; r <= 5; ++r) {
    EXPECT_FALSE(rec.on_rebuild(sample_at(r, r * 100, r * 90)));
  }
  rec.record_final(tiny_snapshot(9000, 9));
  EXPECT_EQ(rec.captured(), 1u);
  EXPECT_EQ(rec.snapshots()[0]->reason, SnapshotReason::kFinal);
}

TEST(FlightRecorder, RingOverwritesOldestAndKeepsSeqOrder) {
  FlightRecorderConfig cfg;
  cfg.capacity = 4;
  cfg.period = 1;
  cfg.min_window_events = 1u << 20;
  FlightRecorder rec(cfg);
  for (std::uint64_t r = 1; r <= 10; ++r) {
    ASSERT_TRUE(rec.on_rebuild(sample_at(r, r * 100, r * 90)));
    rec.record(tiny_snapshot(r * 1000, r));
  }
  EXPECT_EQ(rec.captured(), 10u);
  EXPECT_EQ(rec.dropped(), 6u);
  const auto snaps = rec.snapshots();
  ASSERT_EQ(snaps.size(), 4u);
  // Seqs 0..9 were assigned; the ring retains the newest four, seq-ordered.
  for (std::size_t i = 0; i < snaps.size(); ++i) {
    EXPECT_EQ(snaps[i]->seq, 6u + i);
    EXPECT_EQ(snaps[i]->rebuild, 7u + i);  // rebuild r got seq r-1
  }
}

TEST(FlightRecorder, AbortStormOpensOneEpisodeWithHysteresis) {
  FlightRecorderConfig cfg;
  cfg.period = 0;  // isolate the anomaly trigger
  cfg.min_window_events = 64;
  cfg.abort_rate_enter = 0.90;
  cfg.abort_rate_exit = 0.60;
  FlightRecorder rec(cfg);

  std::uint64_t executions = 0;
  std::uint64_t commits = 0;
  std::uint64_t rebuild = 0;
  // First on_rebuild only arms the window (never classified).
  EXPECT_FALSE(rec.on_rebuild(sample_at(++rebuild, executions, commits)));
  // Per-window commit counts (1000 executions each): healthy (abort rate
  // 0.10), storm entry (0.95), still hot (0.92 — hysteresis, no re-capture),
  // hovering above exit (0.65 — episode stays open), recovery (0.20 — closes
  // it), then a second storm (0.95 — new episode, new capture).
  const std::uint64_t window_commits[] = {900, 50, 80, 350, 800, 50};
  std::vector<bool> fired;
  for (const std::uint64_t wc : window_commits) {
    executions += 1000;
    commits += wc;
    fired.push_back(rec.on_rebuild(sample_at(++rebuild, executions, commits)));
    if (fired.back()) rec.record(tiny_snapshot(rebuild * 1000, rebuild));
  }
  EXPECT_EQ(fired, (std::vector<bool>{false, true, false, false, false, true}));

  const auto& eps = rec.episodes();
  ASSERT_EQ(eps.size(), 2u);
  EXPECT_EQ(eps[0].kind, AnomalyEpisode::Kind::kAbortStorm);
  EXPECT_FALSE(eps[0].open);
  EXPECT_NEAR(eps[0].peak_rate, 0.95, 1e-9);
  EXPECT_GT(eps[0].end_rebuild, eps[0].start_rebuild);
  EXPECT_TRUE(eps[1].open) << "second storm runs hot to the end";
  for (const ModelSnapshot* s : rec.snapshots()) {
    EXPECT_EQ(s->reason, SnapshotReason::kAnomaly);
  }
}

TEST(FlightRecorder, SglStormTracksFallbackRate) {
  FlightRecorderConfig cfg;
  cfg.period = 0;
  cfg.min_window_events = 64;
  cfg.sgl_rate_enter = 0.25;
  cfg.sgl_rate_exit = 0.05;
  FlightRecorder rec(cfg);

  EXPECT_FALSE(rec.on_rebuild(sample_at(1, 0, 0)));  // bootstrap
  // Healthy window: 1000 executions, few fallbacks.
  for (int i = 0; i < 10; ++i) rec.note_sgl_fallback();
  EXPECT_FALSE(rec.on_rebuild(sample_at(2, 1000, 900)));
  // Storm window: 300 fallbacks over 1000 executions = 0.30 >= enter.
  for (int i = 0; i < 300; ++i) rec.note_sgl_fallback();
  ASSERT_TRUE(rec.on_rebuild(sample_at(3, 2000, 1500)));
  rec.record(tiny_snapshot(3000, 3));
  ASSERT_EQ(rec.episodes().size(), 1u);
  EXPECT_EQ(rec.episodes()[0].kind, AnomalyEpisode::Kind::kSglStorm);
  EXPECT_NEAR(rec.episodes()[0].peak_rate, 0.30, 1e-9);
  EXPECT_EQ(rec.sgl_fallbacks(), 310u);
}

TEST(FlightRecorder, RecordFinalClosesOpenEpisodesAtFinalClock) {
  FlightRecorderConfig cfg;
  cfg.period = 0;
  cfg.min_window_events = 64;
  FlightRecorder rec(cfg);
  EXPECT_FALSE(rec.on_rebuild(sample_at(1, 0, 0)));
  ASSERT_TRUE(rec.on_rebuild(sample_at(2, 1000, 10)));  // abort storm
  rec.record(tiny_snapshot(2000, 2));
  ModelSnapshot fin = tiny_snapshot(7777, 9);
  rec.record_final(std::move(fin));
  ASSERT_EQ(rec.episodes().size(), 1u);
  EXPECT_TRUE(rec.episodes()[0].open) << "open flag survives for the dump";
  EXPECT_EQ(rec.episodes()[0].end_now, 7777u);
  EXPECT_EQ(rec.episodes()[0].end_rebuild, 9u);
  EXPECT_EQ(rec.snapshots().back()->reason, SnapshotReason::kFinal);
}

TEST(ModelSnapshot, JsonRoundTripsThroughParser) {
  ModelSnapshot s = tiny_snapshot(123, 7);
  s.seq = 3;
  s.reason = SnapshotReason::kAnomaly;
  s.executions = 22;
  s.commits = 12;
  s.sgl_fallbacks = 4;
  s.th1 = 0.3;
  s.th2 = 0.8;
  s.climber_cur_x = 0.38;
  s.climber_cur_y = 0.8;
  s.climber_best_x = 0.3;
  s.climber_best_y = 0.8;
  s.climber_best_score = 1.5;
  s.climber_epochs = 9;

  std::string text;
  s.append_json(text);
  std::string err;
  const auto v = util::json::parse(text, &err);
  ASSERT_TRUE(v.has_value()) << err << "\n" << text;
  EXPECT_EQ(v->u64("seq"), 3u);
  EXPECT_EQ(v->str("reason"), "anomaly");
  EXPECT_EQ(v->u64("now"), 123u);
  EXPECT_EQ(v->u64("rebuild"), 7u);
  EXPECT_EQ(v->u64("executions"), 22u);
  EXPECT_EQ(v->u64("sgl_fallbacks"), 4u);
  EXPECT_DOUBLE_EQ(v->find("params")->num("th1"), 0.3);
  EXPECT_DOUBLE_EQ(v->find("params")->num("th2"), 0.8);
  const util::json::Value* climber = v->find("climber");
  ASSERT_NE(climber, nullptr);
  EXPECT_DOUBLE_EQ(climber->find("cur")->array[0].number, 0.38);
  EXPECT_EQ(climber->u64("epochs"), 9u);
  EXPECT_EQ(v->u64("n_types"), 2u);
  // All four pairs carry joint evidence (aborts or commits), so none are
  // dropped by the sparse-omission rule.
  const util::json::Value* pairs = v->find("pairs");
  ASSERT_NE(pairs, nullptr);
  ASSERT_EQ(pairs->array.size(), 4u);
  const util::json::Value& p01 = pairs->array[1];
  EXPECT_EQ(p01.u64("x"), 0u);
  EXPECT_EQ(p01.u64("y"), 1u);
  EXPECT_EQ(p01.u64("aborts"), 3u);
  EXPECT_EQ(p01.u64("commits"), 2u);
  EXPECT_DOUBLE_EQ(p01.num("p_cond"), 3.0 / 5.0);
  EXPECT_DOUBLE_EQ(p01.num("p_conj"), 3.0 / 10.0);
  const util::json::Value* scheme = v->find("scheme");
  ASSERT_NE(scheme, nullptr);
  ASSERT_EQ(scheme->array.size(), 2u);
  EXPECT_EQ(scheme->array[0].array.size(), 2u);
  EXPECT_EQ(scheme->array[1].array[0].as_u64(), 0u);
}

// ------------------------------------------------- scheduler integration ---

TEST(SchedulerIntegration, RebuildFeedsRecorderAndSnapshotsModel) {
  FlightRecorderConfig rcfg;
  rcfg.period = 1;
  rcfg.min_window_events = 1u << 20;
  FlightRecorder rec(rcfg);

  core::SeerConfig cfg;
  cfg.n_threads = 2;
  cfg.n_types = 2;
  cfg.update_period = 8;
  cfg.recorder = &rec;
  core::SeerScheduler sched(cfg);

  sched.announce(1, 1);
  for (int i = 0; i < 8; ++i) {
    sched.announce(0, 0);
    sched.record_abort(0, 0);
  }
  EXPECT_TRUE(sched.maybe_update(0, 1000));
  ASSERT_EQ(rec.captured(), 1u);
  const ModelSnapshot* snap = rec.snapshots()[0];
  EXPECT_EQ(snap->rebuild, 1u);
  EXPECT_EQ(snap->now, 1000u);
  EXPECT_EQ(snap->n_types, 2u);
  EXPECT_EQ(snap->executions, sched.executions_seen());
  EXPECT_GT(snap->abort(0, 1), 0u) << "thread 1 was announced as type 1";
  EXPECT_EQ(snap->th1, sched.params().th1);
}

// --------------------------------------------------- machine integration ---

TEST(MachineIntegration, SeerRunFeedsRecorderAndFinalSnapshot) {
  sim::MachineConfig cfg;
  cfg.n_threads = 4;
  cfg.physical_cores = 2;
  cfg.txs_per_thread = 600;
  cfg.seed = 7;
  cfg.policy.kind = rt::PolicyKind::kSeer;
  cfg.policy.seer.update_period = 64;
  FlightRecorder rec;
  cfg.recorder = &rec;

  const sim::MachineStats stats =
      sim::run_machine(cfg, stamp::make_workload("intruder", cfg.n_threads));

  ASSERT_GE(rec.captured(), 1u);
  const auto snaps = rec.snapshots();
  EXPECT_EQ(snaps.back()->reason, SnapshotReason::kFinal);
  for (std::size_t i = 1; i < snaps.size(); ++i) {
    EXPECT_GT(snaps[i]->seq, snaps[i - 1]->seq);
    EXPECT_GE(snaps[i]->now, snaps[i - 1]->now);
  }
  // The final capture agrees with the machine's own epilogue readings.
  EXPECT_EQ(snaps.back()->scheme, stats.final_scheme);
  EXPECT_EQ(snaps.back()->rebuild, stats.scheme_rebuilds);
  EXPECT_EQ(snaps.back()->th1, stats.final_params.th1);

  // And the dump parses.
  std::string err;
  const auto doc = util::json::parse(rec.to_json(), &err);
  ASSERT_TRUE(doc.has_value()) << err;
  EXPECT_EQ(doc->u64("captured"), rec.captured());
}

}  // namespace
}  // namespace seer::obs
