// Property-based correctness driver: seeded random workloads crossed with
// seeded random FaultPlans, executed on the real-threads backend with
// commit logging on, then verified by the opacity checker and an exact
// final-state oracle. Every iteration is reproducible from one 64-bit
// seed; a failing run prints it in replay form.
//
// Environment knobs:
//   SEER_PROPERTY_ITERS  — iterations per ctest invocation (default 25;
//                          scripts/verify.sh runs 100)
//   SEER_PROPERTY_SEED   — replay exactly this iteration seed and stop
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "check/fault_plan.hpp"
#include "check/opacity.hpp"
#include "htm/soft_htm.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "runtime/threaded_executor.hpp"
#include "sim/machine.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "workload/phased.hpp"
#include "workload/threaded_driver.hpp"

namespace seer::check {
namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtoull(v, nullptr, 10);
}

// One randomly shaped run, fully determined by `seed`.
struct Shape {
  std::size_t n_threads;
  std::size_t n_types;
  std::size_t n_words;
  std::size_t txs_per_thread;
  std::size_t max_words_per_tx;
  std::size_t max_pure_reads;  // reads of words the tx does NOT write
  bool yield_mid_tx;  // widen conflict windows on few-core hosts
  rt::PolicyKind policy;
  FaultPlanConfig fault;
};

Shape shape_for(std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  Shape s;
  s.n_threads = 1 + rng.below(4);
  s.n_types = 1 + rng.below(3);
  s.n_words = 2 + rng.below(14);
  s.txs_per_thread = 100 + rng.below(200);
  s.max_words_per_tx = 1 + rng.below(4);
  s.max_pure_reads = rng.below(4);
  s.yield_mid_tx = rng.bernoulli(0.5);
  s.policy = rng.bernoulli(0.5) ? rt::PolicyKind::kSeer : rt::PolicyKind::kRtm;
  // A hostile but not wall-to-wall injection schedule: enough to push
  // traffic through every abort cause and onto the SGL fallback.
  s.fault.p_conflict = rng.uniform01() * 0.05;
  s.fault.p_capacity = rng.uniform01() * 0.03;
  s.fault.p_other = rng.uniform01() * 0.02;
  s.fault.seed = rng.next();
  return s;
}

struct Outcome {
  OpacityReport report;
  std::uint64_t expected_total = 0;  // sum of all per-word increments
  std::uint64_t actual_total = 0;
  std::uint64_t injected = 0;
  std::uint64_t promotions = 0;  // htm.read_promote.* across all threads
};

Outcome run_iteration(std::uint64_t seed, htm::SoftHtm::Defect defect,
                      std::size_t max_read_set = 0) {
  const Shape shape = shape_for(seed);
  htm::SoftHtm::Config cfg{.defect = defect};
  // 0 keeps the library default; a tiny budget forces the adaptive read
  // tracking to cross the Tier-0/exact boundary mid-transaction.
  if (max_read_set != 0) cfg.max_read_set = max_read_set;
  htm::SoftHtm tm(cfg);
  rt::PolicyConfig policy;
  policy.kind = shape.policy;
  if (shape.policy == rt::PolicyKind::kSeer) {
    policy.seer.update_period = 64;
    policy.seer.physical_cores = 2;
  }
  rt::ThreadedExecutor::Options opts;
  opts.n_threads = shape.n_threads;
  opts.n_types = shape.n_types;
  opts.physical_cores = 2;
  obs::MetricsRegistry metrics(shape.n_threads);
  opts.metrics = &metrics;
  rt::ThreadedExecutor exec(tm, policy, opts);
  metrics.freeze();

  std::vector<htm::TmWord> words(shape.n_words);
  MemorySnapshot initial;
  snapshot_words(initial, words.data(), words.size());

  std::vector<htm::TxLog> logs(shape.n_threads);
  std::vector<FaultPlan> plans;
  plans.reserve(shape.n_threads);
  for (std::size_t t = 0; t < shape.n_threads; ++t) {
    FaultPlanConfig fcfg = shape.fault;
    fcfg.seed += t;  // distinct per-thread injection streams
    plans.emplace_back(fcfg);
  }

  std::vector<std::uint64_t> increments(shape.n_threads, 0);
  std::atomic<std::size_t> ready{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < shape.n_threads; ++t) {
    threads.emplace_back([&, t] {
      auto h = exec.make_handle(static_cast<core::ThreadId>(t));
      h->set_fault_injector(&plans[t]);
      h->set_tx_log(&logs[t]);
      // Start together: a single-core host would otherwise serialize whole
      // threads and the run would exercise no concurrency at all.
      ready.fetch_add(1);
      while (ready.load() < shape.n_threads) std::this_thread::yield();
      util::Xoshiro256 rng(seed ^ (0x9e37u + t));
      for (std::size_t i = 0; i < shape.txs_per_thread; ++i) {
        const auto type = static_cast<core::TxTypeId>(rng.below(shape.n_types));
        const std::size_t k = 1 + rng.below(shape.max_words_per_tx);
        const std::size_t r = shape.max_pure_reads == 0
                                  ? 0
                                  : rng.below(shape.max_pure_reads + 1);
        // Pick word indices up front so the body is replay-stable across
        // retries (the RNG is not drawn inside the transaction).
        std::array<std::size_t, 4> picks{};
        std::array<std::size_t, 4> read_picks{};
        for (std::size_t j = 0; j < k; ++j) picks[j] = rng.below(shape.n_words);
        for (std::size_t j = 0; j < r; ++j) read_picks[j] = rng.below(shape.n_words);
        (void)h->run(type, [&](auto& tx) {
          // Pure reads first: words read but (possibly) not written, the
          // case only commit-time read-set validation defends.
          for (std::size_t j = 0; j < r; ++j) (void)tx.read(words[read_picks[j]]);
          for (std::size_t j = 0; j < k; ++j) {
            htm::TmWord& w = words[picks[j]];
            const std::uint64_t v = tx.read(w);
            if (shape.yield_mid_tx) std::this_thread::yield();
            tx.write(w, v + 1);
          }
        });
        // run() retries until the body commits exactly once.
        increments[t] += k;
      }
    });
  }
  for (auto& th : threads) th.join();

  Outcome out;
  std::vector<const htm::TxLog*> log_ptrs;
  for (const auto& l : logs) log_ptrs.push_back(&l);
  out.report = verify_opacity(log_ptrs, initial);
  for (const std::uint64_t n : increments) out.expected_total += n;
  for (const auto& w : words) out.actual_total += w.load();
  for (const auto& p : plans) out.injected += p.total_injected();
  for (const auto& c : metrics.snapshot().counters) {
    if (c.name == "htm.read_promote.capacity" ||
        c.name == "htm.read_promote.saturation") {
      out.promotions += c.value;
    }
  }
  return out;
}

std::string replay_hint(std::uint64_t seed) {
  return "replay with: SEER_PROPERTY_SEED=" + std::to_string(seed) +
         " ./build/tests/property_test";
}

// On a healthy TM, every random (workload, fault plan) pair must preserve
// opacity AND exact counts — injected aborts may cost retries, never
// updates.
TEST(PropertyHarness, RandomWorkloadsStayOpaque) {
  const std::uint64_t master = env_u64("SEER_PROPERTY_SEED", 0);
  const std::uint64_t iters = master != 0 ? 1 : env_u64("SEER_PROPERTY_ITERS", 25);
  std::uint64_t injected_somewhere = 0;
  for (std::uint64_t i = 0; i < iters; ++i) {
    const std::uint64_t seed = master != 0 ? master : 0xA11CE000u + i;
    const Outcome out = run_iteration(seed, htm::SoftHtm::Defect::kNone);
    injected_somewhere += out.injected;
    if (!out.report.ok()) {
      FAIL() << "opacity violation at seed " << seed << ": "
             << to_string(out.report.violations.front()) << "\n"
             << replay_hint(seed);
    }
    ASSERT_EQ(out.actual_total, out.expected_total)
        << "lost/phantom update at seed " << seed << "\n"
        << replay_hint(seed);
  }
  if (iters > 1) {
    EXPECT_GT(injected_somewhere, 0u)
        << "the fault plans never fired — the harness is not exercising aborts";
  }
}

// Tier-transition sweep: a read-set budget of 4 against bodies that log up
// to ~7 reads (plus retries' duplicates) forces a steady mix of Tier-0-only
// commits, mid-body promotions, exact-tier capacity aborts, and SGL
// fallbacks — opacity and exact counts must survive all of it. The
// promotion counters prove the sweep actually crosses the boundary rather
// than vacuously passing in Tier 0.
TEST(PropertyHarness, RandomWorkloadsStayOpaqueAcrossTierTransitions) {
  const std::uint64_t master = env_u64("SEER_PROPERTY_SEED", 0);
  const std::uint64_t iters = master != 0 ? 1 : env_u64("SEER_PROPERTY_ITERS", 25);
  std::uint64_t promoted_somewhere = 0;
  for (std::uint64_t i = 0; i < iters; ++i) {
    const std::uint64_t seed = master != 0 ? master : 0x7EE5000u + i;
    const Outcome out = run_iteration(seed, htm::SoftHtm::Defect::kNone,
                                      /*max_read_set=*/4);
    promoted_somewhere += out.promotions;
    if (!out.report.ok()) {
      FAIL() << "opacity violation at seed " << seed << ": "
             << to_string(out.report.violations.front()) << "\n"
             << replay_hint(seed);
    }
    ASSERT_EQ(out.actual_total, out.expected_total)
        << "lost/phantom update at seed " << seed << "\n"
        << replay_hint(seed);
  }
#if SEER_OBS_ENABLED
  if (iters > 1) {
    EXPECT_GT(promoted_somewhere, 0u)
        << "no transaction ever promoted — the sweep is not crossing tiers";
  }
#else
  (void)promoted_somewhere;  // counters are stubs under SEER_OBS=OFF
#endif
}

// ------------------------------------------------ phased regime shifts ----

// A randomly shaped two-regime phased workload, built through the JSON
// config path so the sweep also exercises spec_from_json/PhasedWorkload
// validation on every seed. Both regimes write a small hot region; the
// shift moves which types carry the write traffic.
std::unique_ptr<workload::PhasedWorkload> phased_for(std::uint64_t seed,
                                                     util::Xoshiro256& rng,
                                                     std::size_t n_threads) {
  const std::uint64_t hot_lines = 2 + rng.below(6);
  const std::uint64_t cold_lines = 32 + rng.below(64);
  const std::uint64_t dur_a = 100 + rng.below(300);
  const std::uint64_t dur_b = 100 + rng.below(300);
  const double shift = 0.3 + 0.4 * rng.uniform01();
  char shift_buf[32];
  std::snprintf(shift_buf, sizeof shift_buf, "%.3f", shift);

  const auto spec = [&](const char* w1_region, const char* w2_region,
                        std::uint64_t dur) {
    return std::string(R"({
      "regions": [{"name": "hot", "lines": )") +
           std::to_string(hot_lines) + R"(}, {"name": "cold", "lines": )" +
           std::to_string(cold_lines) + R"(}],
      "types": [
        {"name": "w1", "duration_mean": )" +
           std::to_string(dur) + R"(, "accesses": [{"region": ")" + w1_region +
           R"(", "reads": 1, "writes": 2}]},
        {"name": "w2", "duration_mean": )" +
           std::to_string(dur) + R"(, "accesses": [{"region": ")" + w2_region +
           R"(", "reads": 1, "writes": 2}]}
      ]})";
  };
  // Regime A: w1 hammers the hot region while w2 stays cold; regime B swaps
  // the roles — the pairwise conflict structure flips at the boundary.
  const std::string params = std::string(R"({"think_mean": 50, "phases": [)") +
                             R"({"until": )" + shift_buf + R"(, "spec": )" +
                             spec("hot", "cold", dur_a) + "}, " +
                             R"({"until": 1.0, "spec": )" +
                             spec("cold", "hot", dur_b) + "}]}";
  std::string err;
  const auto doc = util::json::parse(params, &err);
  EXPECT_TRUE(doc.has_value()) << err;
  return workload::PhasedWorkload::from_json(
      *doc, "seed " + std::to_string(seed), "phased-prop", n_threads);
}

// Opacity and exact counts must hold ACROSS contention-regime shifts: the
// scheduler re-learns mid-run, but correctness never depends on what the
// model believes.
TEST(PropertyHarness, PhasedRegimeShiftsStayOpaqueWithExactCounts) {
  const std::uint64_t master = env_u64("SEER_PROPERTY_SEED", 0);
  const std::uint64_t iters = master != 0 ? 1 : env_u64("SEER_PROPERTY_ITERS", 25);
  std::uint64_t injected_somewhere = 0;
  for (std::uint64_t i = 0; i < iters; ++i) {
    const std::uint64_t seed = master != 0 ? master : 0x5EED5000u + i;
    util::Xoshiro256 rng(seed);
    workload::ThreadedRunOptions opts;
    opts.n_threads = 2 + rng.below(3);
    opts.physical_cores = 2;
    opts.txs_per_thread = 100 + rng.below(150);
    opts.seed = seed;
    opts.policy.kind =
        rng.bernoulli(0.5) ? rt::PolicyKind::kSeer : rt::PolicyKind::kRtm;
    if (opts.policy.kind == rt::PolicyKind::kSeer) {
      opts.policy.seer.update_period = 64;
      opts.policy.seer.physical_cores = 2;
    }
    const auto gen = phased_for(seed, rng, opts.n_threads);

    htm::SoftHtm tm;
    std::vector<htm::TmWord> words(16 + rng.below(48));
    MemorySnapshot initial;
    snapshot_words(initial, words.data(), words.size());
    std::vector<htm::TxLog> logs(opts.n_threads);
    std::vector<FaultPlan> plans;
    plans.reserve(opts.n_threads);
    for (std::size_t t = 0; t < opts.n_threads; ++t) {
      FaultPlanConfig fcfg;
      fcfg.p_conflict = rng.uniform01() * 0.05;
      fcfg.p_capacity = rng.uniform01() * 0.03;
      fcfg.p_other = rng.uniform01() * 0.02;
      fcfg.seed = seed + t;
      plans.emplace_back(fcfg);
    }
    for (auto& l : logs) opts.tx_logs.push_back(&l);
    for (auto& p : plans) opts.fault_injectors.push_back(&p);

    const workload::ThreadedRunResult res =
        workload::run_threaded(*gen, tm, words, opts);
    EXPECT_EQ(res.exhausted_threads, 0u) << "phased generators never exhaust";
    EXPECT_EQ(res.txs, opts.n_threads * opts.txs_per_thread);

    std::vector<const htm::TxLog*> log_ptrs;
    for (const auto& l : logs) log_ptrs.push_back(&l);
    const OpacityReport report = verify_opacity(log_ptrs, initial);
    if (!report.ok()) {
      FAIL() << "opacity violation across a regime shift at seed " << seed
             << ": " << to_string(report.violations.front()) << "\n"
             << replay_hint(seed);
    }
    std::uint64_t total = 0;
    for (const auto& w : words) total += w.load();
    ASSERT_EQ(total, res.total_writes)
        << "lost/phantom update across a regime shift at seed " << seed << "\n"
        << replay_hint(seed);
    for (const auto& p : plans) injected_somewhere += p.total_injected();
  }
  if (iters > 1) {
    EXPECT_GT(injected_somewhere, 0u)
        << "the fault plans never fired — the sweep is not exercising aborts";
  }
}

#if SEER_OBS_ENABLED
// After the shift, the scheduler's learned pair probabilities must move
// toward the NEW ground truth: a deterministic simulator run whose conflict
// mass flips from pair (a,b) to pair (b,c) at progress 0.5, snapshotted at
// every rebuild. Early snapshots must attribute abort mass to the old hot
// pair, and the post-shift snapshot *delta* to the new one.
TEST(PropertyHarness, PhasedSnapshotsTrackTheNewConflictMatrix) {
  const std::string params = R"({
    "think_mean": 40,
    "phases": [
      {"until": 0.5, "spec": {
        "regions": [{"name": "hot", "lines": 4}, {"name": "cold", "lines": 512}],
        "types": [
          {"name": "a", "duration_mean": 500,
           "accesses": [{"region": "hot", "reads": 1, "writes": 2}]},
          {"name": "b", "duration_mean": 500,
           "accesses": [{"region": "hot", "reads": 1, "writes": 2}]},
          {"name": "c", "duration_mean": 500,
           "accesses": [{"region": "cold", "reads": 4}]}
        ]}},
      {"until": 1.0, "spec": {
        "regions": [{"name": "hot", "lines": 4}, {"name": "cold", "lines": 512}],
        "types": [
          {"name": "a", "duration_mean": 500,
           "accesses": [{"region": "cold", "reads": 4}]},
          {"name": "b", "duration_mean": 500,
           "accesses": [{"region": "hot", "reads": 1, "writes": 2}]},
          {"name": "c", "duration_mean": 500,
           "accesses": [{"region": "hot", "reads": 1, "writes": 2}]}
        ]}}
    ]})";
  std::string err;
  const auto doc = util::json::parse(params, &err);
  ASSERT_TRUE(doc.has_value()) << err;

  sim::MachineConfig cfg;
  cfg.n_threads = 4;
  cfg.txs_per_thread = 1500;
  cfg.seed = 7;
  cfg.policy.kind = rt::PolicyKind::kSeer;
  cfg.policy.seer.update_period = 64;
  obs::FlightRecorderConfig rcfg;
  rcfg.capacity = 4096;  // retain every rebuild — the test reads the timeline
  rcfg.period = 1;
  obs::FlightRecorder recorder(rcfg);
  cfg.recorder = &recorder;
  sim::Machine machine(cfg, workload::PhasedWorkload::from_json(
                                *doc, "<phased>", "shift", cfg.n_threads));
  const sim::MachineStats stats = machine.run();
  ASSERT_GT(stats.commits, 0u);
  ASSERT_EQ(recorder.dropped(), 0u);

  const auto snaps = recorder.snapshots();
  ASSERT_GT(snaps.size(), 4u) << "too few rebuild snapshots to read a timeline";
  const obs::ModelSnapshot& last = *snaps.back();
  ASSERT_EQ(last.n_types, 3u);

  // Cross-pair abort mass (x aborted with y, both directions).
  const auto cross = [](const obs::ModelSnapshot& s, core::TxTypeId x,
                        core::TxTypeId y) {
    return s.abort(x, y) + s.abort(y, x);
  };
  // Latest all-regime-A snapshot and latest safely-post-shift baseline, by
  // commit fraction (the shift lands at roughly half of the commits).
  const obs::ModelSnapshot* early = nullptr;
  const obs::ModelSnapshot* post_base = nullptr;
  for (const obs::ModelSnapshot* s : snaps) {
    if (s->commits * 10 <= last.commits * 4) early = s;
    if (s->commits * 10 <= last.commits * 6) post_base = s;
  }
  ASSERT_NE(early, nullptr) << "no snapshot captured before the shift";
  ASSERT_NE(post_base, nullptr);

  // Pre-shift: the (a,b) pair owns the conflict mass; (b,c) has none — c
  // only reads a region nobody writes.
  EXPECT_GT(cross(*early, 0, 1), cross(*early, 1, 2))
      << "pre-shift snapshots do not reflect regime A's ground truth";
  // Post-shift delta: new conflicts accrue on (b,c), not on the retired
  // (a,b) pair.
  const std::uint64_t d_old = cross(last, 0, 1) - cross(*post_base, 0, 1);
  const std::uint64_t d_new = cross(last, 1, 2) - cross(*post_base, 1, 2);
  EXPECT_GT(d_new, d_old)
      << "post-shift snapshots are not moving toward the new conflict matrix "
      << "(old-pair delta " << d_old << ", new-pair delta " << d_new << ")";
}
#endif  // SEER_OBS_ENABLED

// Acceptance gate: a TM that skips commit-time read-set validation must be
// caught by the checker well within 100 seeds. The workload reads one word
// and writes a DIFFERENT one (t0: A→B, t1: B→A) — when read and write sets
// coincide, the stripe-acquire version check catches conflicts even without
// read-set validation, so cross-shaped transactions are the narrowest
// workload the defect is exposed on. A mid-body yield widens the doomed
// window even on a single-core host.
TEST(PropertyHarness, CheckerCatchesBrokenHtm) {
  bool caught = false;
  std::uint64_t caught_at = 0;
  for (std::uint64_t seed = 1; seed <= 100 && !caught; ++seed) {
    htm::SoftHtm tm(htm::SoftHtm::Config{
        .defect = htm::SoftHtm::Defect::kSkipCommitValidation});
    rt::PolicyConfig policy;
    policy.kind = rt::PolicyKind::kRtm;
    rt::ThreadedExecutor::Options opts;
    opts.n_threads = 2;
    opts.n_types = 1;
    opts.physical_cores = 2;
    rt::ThreadedExecutor exec(tm, policy, opts);
    std::array<htm::TmWord, 2> words{};
    MemorySnapshot initial;
    snapshot_words(initial, words.data(), words.size());
    std::vector<htm::TxLog> logs(2);
    constexpr std::uint64_t kPerThread = 200;
    // Without a start barrier a single-core host can run the two workers
    // back-to-back — zero overlap, nothing for the checker to catch.
    std::atomic<int> ready{0};
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < 2; ++t) {
      threads.emplace_back([&, t] {
        auto h = exec.make_handle(static_cast<core::ThreadId>(t));
        h->set_tx_log(&logs[t]);
        htm::TmWord& src = words[t];
        htm::TmWord& dst = words[1 - t];
        ready.fetch_add(1);
        while (ready.load() < 2) std::this_thread::yield();
        for (std::uint64_t i = 0; i < kPerThread; ++i) {
          (void)h->run(0, [&](auto& tx) {
            const std::uint64_t v = tx.read(src);
            std::this_thread::yield();
            tx.write(dst, v + 1);
          });
        }
      });
    }
    for (auto& th : threads) th.join();
    const OpacityReport report = verify_opacity({&logs[0], &logs[1]}, initial);
    if (!report.ok()) {
      caught = true;
      caught_at = seed;
    }
  }
  EXPECT_TRUE(caught)
      << "a TM without commit validation survived 100 property seeds";
  if (caught) {
    EXPECT_LE(caught_at, 100u);
  }
}

}  // namespace
}  // namespace seer::check
