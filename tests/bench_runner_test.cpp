// Tests for the parallel bench harness: the sweep's results must be
// invariant under --jobs (the whole determinism argument of the parallel
// evaluation layer), and --json must emit one well-formed record per
// (cell, seed).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "bench/runner.hpp"
#include "util/json.hpp"

namespace seer::bench {
namespace {

Options tiny_options() {
  Options opts;
  opts.runs = 2;
  opts.txs_scale = 0.02;  // floors at 200 txs/thread — seconds, not minutes
  opts.base_seed = 4242;
  return opts;
}

// A small Figure-3 slice: one workload, two policies, two thread counts.
std::vector<Cell> fig3_slice() {
  stamp::WorkloadInfo genome;
  for (const auto& info : stamp::all_workloads()) {
    if (info.name == "genome") genome = info;
  }
  std::vector<Cell> cells;
  for (std::size_t threads : {2u, 4u}) {
    for (auto kind : {rt::PolicyKind::kRtm, rt::PolicyKind::kSeer}) {
      cells.push_back({genome, policy_of(kind), threads, {}});
    }
  }
  return cells;
}

void expect_identical(const CellResult& a, const CellResult& b, std::size_t i) {
  EXPECT_EQ(a.summary.speedup, b.summary.speedup) << "cell " << i;
  EXPECT_EQ(a.summary.sgl_fraction, b.summary.sgl_fraction) << "cell " << i;
  EXPECT_EQ(a.summary.no_lock_fraction, b.summary.no_lock_fraction) << "cell " << i;
  EXPECT_EQ(a.summary.tx_fraction, b.summary.tx_fraction) << "cell " << i;
  EXPECT_EQ(a.summary.aborts_per_commit, b.summary.aborts_per_commit) << "cell " << i;
  EXPECT_EQ(a.summary.capacity_aborts, b.summary.capacity_aborts) << "cell " << i;
  ASSERT_EQ(a.runs.size(), b.runs.size()) << "cell " << i;
  for (std::size_t r = 0; r < a.runs.size(); ++r) {
    EXPECT_EQ(a.runs[r].seed, b.runs[r].seed);
    EXPECT_EQ(a.runs[r].speedup, b.runs[r].speedup);
    EXPECT_EQ(a.runs[r].commits, b.runs[r].commits);
    EXPECT_EQ(a.runs[r].makespan, b.runs[r].makespan);
    EXPECT_EQ(a.runs[r].aborts_by_cause, b.runs[r].aborts_by_cause);
  }
}

TEST(BenchRunner, JobsCountDoesNotChangeResults) {
  const std::vector<Cell> cells = fig3_slice();

  Options serial = tiny_options();
  serial.jobs = 1;
  const auto base = run_cells(cells, serial);
  ASSERT_EQ(base.size(), cells.size());

  Options pooled = tiny_options();
  pooled.jobs = 8;
  const auto par = run_cells(cells, pooled);
  ASSERT_EQ(par.size(), cells.size());

  for (std::size_t i = 0; i < cells.size(); ++i) {
    expect_identical(base[i], par[i], i);
  }
}

TEST(BenchRunner, JobsInvarianceHoldsWithSampledStats) {
  // Statistical sampling (stats_sample_period > 1) adds another seeded RNG
  // stream to the Seer hot path; the byte-identical --jobs invariance must
  // survive it — sampling decisions may depend on the run's own seed, never
  // on worker scheduling.
  stamp::WorkloadInfo genome;
  for (const auto& info : stamp::all_workloads()) {
    if (info.name == "genome") genome = info;
  }
  std::vector<Cell> cells;
  for (std::size_t threads : {2u, 4u}) {
    rt::PolicyConfig pol = policy_of(rt::PolicyKind::kSeer);
    pol.seer.stats_sample_period = 4;
    cells.push_back({genome, pol, threads, {}});
  }

  Options serial = tiny_options();
  serial.jobs = 1;
  const auto base = run_cells(cells, serial);
  ASSERT_EQ(base.size(), cells.size());

  Options pooled = tiny_options();
  pooled.jobs = 8;
  const auto par = run_cells(cells, pooled);
  ASSERT_EQ(par.size(), cells.size());

  for (std::size_t i = 0; i < cells.size(); ++i) {
    expect_identical(base[i], par[i], i);
  }
}

TEST(BenchRunner, RunRecordsCarryThroughput) {
  Options opts = tiny_options();
  opts.jobs = 2;
  const auto results = run_cells(fig3_slice(), opts);
  for (const auto& cell : results) {
    ASSERT_EQ(cell.runs.size(), 2u);
    for (const auto& r : cell.runs) {
      EXPECT_GT(r.commits, 0u);
      EXPECT_GT(r.makespan, 0u);
      EXPECT_GT(r.commits_per_mcycle, 0.0);
      EXPECT_GT(r.speedup, 0.0);
    }
  }
}

TEST(BenchRunner, WriteJsonEmitsOneRecordPerCellAndSeed) {
  const std::vector<Cell> cells = fig3_slice();
  Options opts = tiny_options();
  opts.jobs = 4;
  opts.json_path = ::testing::TempDir() + "bench_runner_test.json";
  const auto results = run_cells(cells, opts);
  write_json("fig3_slice", cells, results, opts);

  std::ifstream in(opts.json_path);
  ASSERT_TRUE(in.good()) << opts.json_path;
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string json = ss.str();

  EXPECT_NE(json.find("\"exhibit\": \"fig3_slice\""), std::string::npos);
  EXPECT_NE(json.find("\"workload\": \"genome\""), std::string::npos);
  EXPECT_NE(json.find("\"policy\": \"RTM\""), std::string::npos);
  EXPECT_NE(json.find("\"policy\": \"Seer\""), std::string::npos);
  EXPECT_NE(json.find("\"commits_per_mcycle\""), std::string::npos);
  EXPECT_NE(json.find("\"capacity\""), std::string::npos);

  std::size_t records = 0;
  for (std::size_t pos = json.find("\"seed\""); pos != std::string::npos;
       pos = json.find("\"seed\"", pos + 1)) {
    ++records;
  }
  EXPECT_EQ(records, cells.size() * static_cast<std::size_t>(opts.runs));
  std::remove(opts.json_path.c_str());
}

TEST(BenchRunner, MetricsOutputIsByteIdenticalForAnyJobsCount) {
  // The --metrics contract: each run owns its registry, registration order
  // is fixed, the simulator is single-threaded per run — so the serialized
  // snapshots depend only on (cell, seed), never on worker scheduling.
  const std::vector<Cell> cells = fig3_slice();

  auto metrics_file = [&](int jobs, const std::string& path) {
    Options opts = tiny_options();
    opts.jobs = jobs;
    opts.metrics_path = path;
    const auto results = run_cells(cells, opts);
    write_metrics_json("fig3_slice", cells, results, opts);
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::stringstream ss;
    ss << in.rdbuf();
    std::remove(path.c_str());
    return ss.str();
  };

  const std::string serial =
      metrics_file(1, ::testing::TempDir() + "bench_metrics_j1.json");
  const std::string pooled =
      metrics_file(8, ::testing::TempDir() + "bench_metrics_j8.json");
  EXPECT_EQ(serial, pooled) << "--metrics must be --jobs invariant, byte for byte";
#if SEER_OBS_ENABLED
  EXPECT_NE(serial.find("\"sim.commits\""), std::string::npos);
  EXPECT_NE(serial.find("\"seer.announces\""), std::string::npos);
  EXPECT_NE(serial.find("\"sim.queue_depth\""), std::string::npos);
#endif
}

TEST(BenchRunner, MetricsSkippedWhenPathEmpty) {
  Options opts = tiny_options();
  opts.jobs = 2;
  const auto results = run_cells(fig3_slice(), opts);
  for (const auto& cell : results) {
    for (const auto& r : cell.runs) {
      EXPECT_TRUE(r.metrics.empty()) << "no --metrics, no snapshot cost";
    }
  }
}

TEST(BenchRunner, EmptyJsonPathIsNoOp) {
  const std::vector<Cell> cells;
  const std::vector<CellResult> results;
  Options opts = tiny_options();
  EXPECT_NO_THROW(write_json("noop", cells, results, opts));
}

namespace {

std::string snapshots_file(const std::vector<Cell>& cells, int jobs,
                           const std::string& path,
                           std::uint32_t sample_period = 1) {
  std::vector<Cell> patched = cells;
  for (Cell& c : patched) c.policy.seer.stats_sample_period = sample_period;
  Options opts = tiny_options();
  opts.jobs = jobs;
  opts.snapshots_path = path;
  const auto results = run_cells(patched, opts);
  write_snapshots_json("fig3_slice", patched, results, opts);
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::stringstream ss;
  ss << in.rdbuf();
  std::remove(path.c_str());
  return ss.str();
}

}  // namespace

TEST(BenchRunner, SnapshotsOutputIsByteIdenticalForAnyJobsCount) {
  // The --snapshots contract mirrors --metrics: each run owns its
  // FlightRecorder, fed only by that run's single-threaded simulator, and
  // serialization happens after the sweep in cell order — so the dump
  // depends only on (cell, seed), never on worker scheduling.
  const std::vector<Cell> cells = fig3_slice();
  const std::string serial =
      snapshots_file(cells, 1, ::testing::TempDir() + "bench_snap_j1.json");
  const std::string two =
      snapshots_file(cells, 2, ::testing::TempDir() + "bench_snap_j2.json");
  const std::string pooled =
      snapshots_file(cells, 8, ::testing::TempDir() + "bench_snap_j8.json");
  EXPECT_EQ(serial, two) << "--snapshots must be --jobs invariant, byte for byte";
  EXPECT_EQ(serial, pooled) << "--snapshots must be --jobs invariant, byte for byte";
}

TEST(BenchRunner, SnapshotsInvarianceHoldsWithSampledStats) {
  // Deterministic stats sampling changes WHAT the model snapshots contain
  // (scaled counters) but must not break the invariance: sampling decisions
  // live inside the per-run slabs, keyed by the run's own seed.
  const std::vector<Cell> cells = fig3_slice();
  const std::string serial = snapshots_file(
      cells, 1, ::testing::TempDir() + "bench_snap_sp_j1.json", 4);
  const std::string pooled = snapshots_file(
      cells, 8, ::testing::TempDir() + "bench_snap_sp_j8.json", 4);
  EXPECT_EQ(serial, pooled);
}

TEST(BenchRunner, SnapshotsDumpIsValidVersionedJson) {
  // The dump must parse as JSON in every build configuration; the flight
  // objects are full under SEER_OBS=ON and empty ({}) under OFF, but the
  // envelope (version, per-run records, ground truth) is always present —
  // the simulator side of the introspection does not compile away.
  const std::vector<Cell> cells = fig3_slice();
  const std::string text =
      snapshots_file(cells, 2, ::testing::TempDir() + "bench_snap_valid.json");

  std::string err;
  const auto doc = util::json::parse(text, &err);
  ASSERT_TRUE(doc.has_value()) << err;
  EXPECT_EQ(doc->u64("version"), 1u);
  const util::json::Value* results = doc->find("results");
  ASSERT_NE(results, nullptr);
  ASSERT_TRUE(results->is_array());
  const Options opts = tiny_options();
  ASSERT_EQ(results->array.size(),
            cells.size() * static_cast<std::size_t>(opts.runs));
  bool saw_seer_flight = false;
  for (const auto& run : results->array) {
    const util::json::Value* flight = run.find("flight");
    ASSERT_NE(flight, nullptr);
    ASSERT_TRUE(flight->is_object());
    const util::json::Value* gt = run.find("ground_truth");
    ASSERT_NE(gt, nullptr);
    EXPECT_GT(gt->u64("n_types"), 0u);
    if (run.str("policy") == "Seer" && !flight->object.empty()) {
      saw_seer_flight = true;
      EXPECT_EQ(flight->u64("version"), 1u);
      // End-of-run capture is unconditional: at least the final snapshot.
      EXPECT_GE(flight->u64("captured"), 1u);
      const util::json::Value* snaps = flight->find("snapshots");
      ASSERT_NE(snaps, nullptr);
      ASSERT_TRUE(snaps->is_array());
      ASSERT_FALSE(snaps->array.empty());
      EXPECT_EQ(snaps->array.back().str("reason"), "final");
      // seq strictly increases across retained snapshots.
      std::uint64_t prev_seq = 0;
      bool first = true;
      for (const auto& s : snaps->array) {
        const std::uint64_t seq = s.u64("seq");
        if (!first) {
          EXPECT_GT(seq, prev_seq);
        }
        prev_seq = seq;
        first = false;
      }
    }
  }
#if SEER_OBS_ENABLED
  EXPECT_TRUE(saw_seer_flight) << "Seer runs must carry flight dumps";
#else
  EXPECT_FALSE(saw_seer_flight) << "OFF builds dump empty flight objects";
#endif
}

TEST(BenchRunner, SnapshotsSkippedWhenPathEmpty) {
  Options opts = tiny_options();
  opts.jobs = 2;
  const auto results = run_cells(fig3_slice(), opts);
  for (const auto& cell : results) {
    for (const auto& r : cell.runs) {
      EXPECT_TRUE(r.flight.empty()) << "no --snapshots, no recorder cost";
      EXPECT_TRUE(r.ground_truth.empty());
    }
  }
}

}  // namespace
}  // namespace seer::bench
