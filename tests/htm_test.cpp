// Tests for the SoftHtm software implementation of a best-effort HTM:
// TSX-compatible status model, transactional semantics (atomicity, isolation,
// opacity), capacity model, explicit aborts, subscriptions, and
// multi-threaded correctness properties.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "htm/abort_code.hpp"
#include "htm/soft_htm.hpp"
#include "util/rng.hpp"

namespace seer::htm {
namespace {

bool committed(AbortStatus s) { return s.raw() == kXBeginStarted; }

// ---------------------------------------------------------- AbortStatus ----

TEST(AbortStatus, FactoryBitsMatchTsxLayout) {
  EXPECT_EQ(AbortStatus::conflict().raw(), kAbortConflictBit | kAbortRetryBit);
  EXPECT_EQ(AbortStatus::conflict(false).raw(), kAbortConflictBit);
  EXPECT_EQ(AbortStatus::capacity().raw(), kAbortCapacityBit);
  EXPECT_EQ(AbortStatus::other().raw(), 0u);
  const AbortStatus e = AbortStatus::explicit_abort(0xAB);
  EXPECT_TRUE(e.is_explicit());
  EXPECT_EQ(e.explicit_code(), 0xAB);
}

TEST(AbortStatus, CausePrecedence) {
  EXPECT_EQ(AbortStatus::conflict().cause(), AbortCause::kConflict);
  EXPECT_EQ(AbortStatus::capacity().cause(), AbortCause::kCapacity);
  EXPECT_EQ(AbortStatus::explicit_abort(1).cause(), AbortCause::kExplicit);
  EXPECT_EQ(AbortStatus::other().cause(), AbortCause::kOther);
  // Capacity wins over conflict when both bits are set (deterministic cause).
  const AbortStatus both(kAbortCapacityBit | kAbortConflictBit);
  EXPECT_EQ(both.cause(), AbortCause::kCapacity);
}

TEST(AbortStatus, ToStringCoversAllCauses) {
  EXPECT_EQ(to_string(AbortCause::kConflict), "conflict");
  EXPECT_EQ(to_string(AbortCause::kCapacity), "capacity");
  EXPECT_EQ(to_string(AbortCause::kExplicit), "explicit");
  EXPECT_EQ(to_string(AbortCause::kOther), "other");
}

// ------------------------------------------------------ single threaded ----

TEST(SoftHtm, CommitPublishesWrites) {
  SoftHtm tm;
  SoftHtm::ThreadContext ctx(tm);
  TmWord w{0};
  const AbortStatus s = ctx.attempt([&](SoftHtm::Tx& tx) { tx.write(w, 42); });
  EXPECT_TRUE(committed(s));
  EXPECT_EQ(w.load(), 42u);
}

TEST(SoftHtm, ReadYourOwnWrites) {
  SoftHtm tm;
  SoftHtm::ThreadContext ctx(tm);
  TmWord w{7};
  const AbortStatus s = ctx.attempt([&](SoftHtm::Tx& tx) {
    tx.write(w, 100);
    EXPECT_EQ(tx.read(w), 100u);
    tx.write(w, 200);
    EXPECT_EQ(tx.read(w), 200u);
  });
  EXPECT_TRUE(committed(s));
  EXPECT_EQ(w.load(), 200u);
}

TEST(SoftHtm, ReadOnlyTransactionCommits) {
  SoftHtm tm;
  SoftHtm::ThreadContext ctx(tm);
  TmWord w{9};
  std::uint64_t seen = 0;
  const AbortStatus s = ctx.attempt([&](SoftHtm::Tx& tx) { seen = tx.read(w); });
  EXPECT_TRUE(committed(s));
  EXPECT_EQ(seen, 9u);
  EXPECT_FALSE(ctx.in_tx());
}

TEST(SoftHtm, ExplicitAbortRollsBack) {
  SoftHtm tm;
  SoftHtm::ThreadContext ctx(tm);
  TmWord w{1};
  const AbortStatus s = ctx.attempt([&](SoftHtm::Tx& tx) {
    tx.write(w, 99);
    tx.abort(0x5A);
  });
  EXPECT_FALSE(committed(s));
  EXPECT_TRUE(s.is_explicit());
  EXPECT_EQ(s.explicit_code(), 0x5A);
  EXPECT_EQ(w.load(), 1u) << "aborted writes must not be visible";
}

TEST(SoftHtm, WriteCapacityAborts) {
  SoftHtm tm(SoftHtm::Config{.max_read_set = 1024, .max_write_set = 8});
  SoftHtm::ThreadContext ctx(tm);
  std::vector<TmWord> words(16);
  const AbortStatus s = ctx.attempt([&](SoftHtm::Tx& tx) {
    for (auto& w : words) tx.write(w, 1);
  });
  EXPECT_FALSE(committed(s));
  EXPECT_EQ(s.cause(), AbortCause::kCapacity);
  for (auto& w : words) EXPECT_EQ(w.load(), 0u);
}

TEST(SoftHtm, ReadCapacityAborts) {
  SoftHtm tm(SoftHtm::Config{.max_read_set = 8, .max_write_set = 8});
  SoftHtm::ThreadContext ctx(tm);
  std::vector<TmWord> words(16);
  const AbortStatus s = ctx.attempt([&](SoftHtm::Tx& tx) {
    std::uint64_t acc = 0;
    for (auto& w : words) acc += tx.read(w);
    (void)acc;
  });
  EXPECT_FALSE(committed(s));
  EXPECT_EQ(s.cause(), AbortCause::kCapacity);
}

TEST(SoftHtm, RewritingSameWordUsesOneWriteSlot) {
  SoftHtm tm(SoftHtm::Config{.max_read_set = 1024, .max_write_set = 4});
  SoftHtm::ThreadContext ctx(tm);
  TmWord w{0};
  const AbortStatus s = ctx.attempt([&](SoftHtm::Tx& tx) {
    for (int i = 0; i < 100; ++i) tx.write(w, static_cast<std::uint64_t>(i));
  });
  EXPECT_TRUE(committed(s));
  EXPECT_EQ(w.load(), 99u);
}

TEST(SoftHtm, SubscriptionFailsAtRegistrationIfWordChanged) {
  SoftHtm tm;
  SoftHtm::ThreadContext ctx(tm);
  std::atomic<std::uint64_t> lock_word{1};  // already "locked"
  const AbortStatus s = ctx.attempt([&](SoftHtm::Tx& tx) {
    tx.subscribe(lock_word, 0);
    FAIL() << "subscribe must abort when the word differs";
  });
  EXPECT_FALSE(committed(s));
  EXPECT_EQ(s.cause(), AbortCause::kConflict);
}

TEST(SoftHtm, SubscriptionFailsIfWordChangesMidTransaction) {
  SoftHtm tm;
  SoftHtm::ThreadContext ctx(tm);
  std::atomic<std::uint64_t> lock_word{0};
  TmWord data{0};
  const AbortStatus s = ctx.attempt([&](SoftHtm::Tx& tx) {
    tx.subscribe(lock_word, 0);
    lock_word.store(1);  // a fallback path acquires the lock
    tx.write(data, 5);   // next access revalidates subscriptions
    (void)tx.read(data);
  });
  EXPECT_FALSE(committed(s));
  EXPECT_EQ(data.load(), 0u);
}

// Conflict between two contexts, driven deterministically from one thread by
// nesting a committing transaction inside another's body.
TEST(SoftHtm, WriteWriteConflictDetected) {
  SoftHtm tm;
  SoftHtm::ThreadContext a(tm);
  SoftHtm::ThreadContext b(tm);
  TmWord w{0};
  const AbortStatus s = a.attempt([&](SoftHtm::Tx& tx) {
    (void)tx.read(w);
    // B commits a write to the same word while A is speculating.
    const AbortStatus sb = b.attempt([&](SoftHtm::Tx& txb) { txb.write(w, 7); });
    ASSERT_TRUE(committed(sb));
    tx.write(w, 9);  // A's commit must now fail validation
  });
  EXPECT_FALSE(committed(s));
  EXPECT_EQ(s.cause(), AbortCause::kConflict);
  EXPECT_EQ(w.load(), 7u) << "only B's value survives";
}

TEST(SoftHtm, OpacityReadsConsistentSnapshot) {
  SoftHtm tm;
  SoftHtm::ThreadContext a(tm);
  SoftHtm::ThreadContext b(tm);
  TmWord x{1};
  TmWord y{1};  // invariant: x == y
  const AbortStatus s = a.attempt([&](SoftHtm::Tx& tx) {
    const std::uint64_t vx = tx.read(x);
    const AbortStatus sb = b.attempt([&](SoftHtm::Tx& txb) {
      txb.write(x, 2);
      txb.write(y, 2);
    });
    ASSERT_TRUE(committed(sb));
    // A must NOT observe the new y next to the old x: the read aborts.
    const std::uint64_t vy = tx.read(y);
    EXPECT_EQ(vx, vy) << "opacity violated: mixed snapshot observed";
  });
  EXPECT_FALSE(committed(s)) << "A read stale data and must abort";
}

TEST(SoftHtm, ReadOnlyVsWriterStillSerializable) {
  SoftHtm tm;
  SoftHtm::ThreadContext a(tm);
  SoftHtm::ThreadContext b(tm);
  TmWord x{10};
  // A reads x, then B writes x and commits, then A commits read-only. A
  // observed a consistent pre-B snapshot on every read, so it serializes
  // BEFORE B and commits — no write-back, no validation needed.
  const AbortStatus s = a.attempt([&](SoftHtm::Tx& tx) {
    EXPECT_EQ(tx.read(x), 10u);
    const AbortStatus sb = b.attempt([&](SoftHtm::Tx& txb) { txb.write(x, 11); });
    ASSERT_TRUE(committed(sb));
  });
  EXPECT_TRUE(committed(s));
  EXPECT_EQ(x.load(), 11u);
}

TEST(SoftHtm, AbortClearsContextState) {
  SoftHtm tm;
  SoftHtm::ThreadContext ctx(tm);
  TmWord w{0};
  (void)ctx.attempt([&](SoftHtm::Tx& tx) {
    tx.write(w, 1);
    tx.abort(1);
  });
  EXPECT_EQ(ctx.read_set_size(), 0u);
  EXPECT_EQ(ctx.write_set_size(), 0u);
  EXPECT_FALSE(ctx.in_tx());
  // The context is immediately reusable.
  const AbortStatus s = ctx.attempt([&](SoftHtm::Tx& tx) { tx.write(w, 2); });
  EXPECT_TRUE(committed(s));
  EXPECT_EQ(w.load(), 2u);
}

TEST(SoftHtm, SequentialTransactionsSeeEachOther) {
  SoftHtm tm;
  SoftHtm::ThreadContext ctx(tm);
  TmWord w{0};
  for (std::uint64_t i = 1; i <= 50; ++i) {
    const AbortStatus s = ctx.attempt([&](SoftHtm::Tx& tx) {
      EXPECT_EQ(tx.read(w), i - 1);
      tx.write(w, i);
    });
    ASSERT_TRUE(committed(s));
  }
  EXPECT_EQ(w.load(), 50u);
}

// ------------------------------------------------------- multi threaded ----

TEST(SoftHtm, ConcurrentCounterIsExact) {
  SoftHtm tm;
  TmWord counter{0};
  constexpr int kThreads = 4;
  constexpr int kIncrements = 4000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      SoftHtm::ThreadContext ctx(tm);
      for (int i = 0; i < kIncrements; ++i) {
        while (true) {
          const AbortStatus s = ctx.attempt([&](SoftHtm::Tx& tx) {
            tx.write(counter, tx.read(counter) + 1);
          });
          if (committed(s)) break;
        }
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(counter.load(), static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST(SoftHtm, BankTransferInvariantHolds) {
  SoftHtm tm;
  constexpr int kAccounts = 32;
  constexpr std::uint64_t kInitial = 1000;
  std::vector<TmWord> accounts(kAccounts);
  for (auto& a : accounts) a.store(kInitial);

  constexpr int kThreads = 4;
  constexpr int kTransfers = 3000;
  std::atomic<bool> violation{false};
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      SoftHtm::ThreadContext ctx(tm);
      util::Xoshiro256 rng(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < kTransfers; ++i) {
        const auto from = rng.below(kAccounts);
        const auto to = rng.below(kAccounts);
        if (from == to) continue;
        while (true) {
          const AbortStatus s = ctx.attempt([&](SoftHtm::Tx& tx) {
            const std::uint64_t f = tx.read(accounts[from]);
            if (f == 0) return;
            tx.write(accounts[from], f - 1);
            tx.write(accounts[to], tx.read(accounts[to]) + 1);
          });
          if (committed(s)) break;
        }
        // Occasionally audit the total transactionally.
        if (i % 256 == 0) {
          while (true) {
            std::uint64_t total = 0;
            const AbortStatus s = ctx.attempt([&](SoftHtm::Tx& tx) {
              total = 0;
              for (auto& a : accounts) total += tx.read(a);
            });
            if (committed(s)) {
              if (total != kAccounts * kInitial) violation.store(true);
              break;
            }
          }
        }
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_FALSE(violation.load()) << "transactional audit saw a torn total";
  std::uint64_t total = 0;
  for (auto& a : accounts) total += a.load();
  EXPECT_EQ(total, kAccounts * kInitial);
}

TEST(SoftHtm, SubscribedTransactionsYieldToNonTransactionalWriter) {
  SoftHtm tm;
  TmWord data{0};
  std::atomic<std::uint64_t> lock_word{0};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> aborted_by_lock{0};

  std::thread worker([&] {
    SoftHtm::ThreadContext ctx(tm);
    while (!stop.load()) {
      const AbortStatus s = ctx.attempt([&](SoftHtm::Tx& tx) {
        tx.subscribe(lock_word, 0);
        tx.write(data, tx.read(data) + 1);
      });
      if (!committed(s)) aborted_by_lock.fetch_add(1);
    }
  });

  for (int i = 0; i < 200; ++i) {
    lock_word.store(1);
    std::this_thread::yield();
    lock_word.store(0);
  }
  stop.store(true);
  worker.join();
  // The exact count is timing-dependent; the property under test is that the
  // run terminates without torn state and the counter only grew.
  EXPECT_GE(data.load(), 0u);
}

// ------------------------------------- O(1) access-path structures ----
// The constant-time write-set index, signature filter, stripe stamps and
// distinct-word read accounting behind do_read/do_write (access_set.hpp,
// DESIGN.md §10).

TEST(SoftHtm, WriteSetIndexSurvivesGrowthAndCollisions) {
  // 300 distinct words force the 64-slot AddrIndex through two growth
  // rounds mid-transaction; read-own-writes and overwrite dedup must hold
  // across every rehash.
  SoftHtm tm;
  SoftHtm::ThreadContext ctx(tm);
  constexpr std::size_t kWords = 300;
  std::vector<TmWord> words(kWords);
  const AbortStatus s = ctx.attempt([&](SoftHtm::Tx& tx) {
    for (std::size_t i = 0; i < kWords; ++i) tx.write(words[i], i + 1000);
    for (std::size_t i = 0; i < kWords; ++i) {
      if (tx.read(words[i]) != i + 1000) tx.abort(0x01);
    }
    // Second pass overwrites in place: the index must dedup, not append.
    for (std::size_t i = 0; i < kWords; ++i) tx.write(words[i], i);
    if (ctx.write_set_size() != kWords) tx.abort(0x02);
    // Buffered reads never touch shared memory, so the read set stays empty.
    if (ctx.read_set_size() != 0) tx.abort(0x03);
  });
  ASSERT_TRUE(committed(s));
  for (std::size_t i = 0; i < kWords; ++i) EXPECT_EQ(words[i].load(), i);
}

TEST(SoftHtm, SignatureFalsePositiveFallsBackToExactProbe) {
  // Two words sharing a filter bit: writing one makes the filter claim the
  // other "may be mine"; the exact index probe must answer no and the read
  // must come from memory.
  SoftHtm tm;
  SoftHtm::ThreadContext ctx(tm);
  std::vector<TmWord> pool(65);  // 65 words, 64 filter bits: collision certain
  std::size_t ci = 0;
  std::size_t cj = 0;
  bool found = false;
  for (std::size_t i = 0; i < pool.size() && !found; ++i) {
    for (std::size_t j = i + 1; j < pool.size() && !found; ++j) {
      if (AddrSignature::bit_of(&pool[i]) == AddrSignature::bit_of(&pool[j])) {
        ci = i;
        cj = j;
        found = true;
      }
    }
  }
  ASSERT_TRUE(found) << "pigeonhole failed?";
  TmWord& written = pool[ci];
  TmWord& aliased = pool[cj];
  aliased.store(77);
  const AbortStatus s = ctx.attempt([&](SoftHtm::Tx& tx) {
    tx.write(written, 11);
    if (tx.read(aliased) != 77) tx.abort(0x01);  // filter hit, index miss
    if (tx.read(written) != 11) tx.abort(0x02);  // genuine buffered read
  });
  ASSERT_TRUE(committed(s));
  EXPECT_EQ(written.load(), 11u);
  EXPECT_EQ(aliased.load(), 77u);
}

TEST(SoftHtm, StampEpochWraparoundDoesNotResurrectState) {
  // The context's first attempt runs under epoch 1. Jumping the counter to
  // its maximum makes the next begin() wrap to 0, which must hard-reset
  // every epoch-tagged structure before recycling epoch 1 — otherwise the
  // first attempt's index entries come back from the dead.
  // kExact: under adaptive tracking these few reads would stay in the
  // Tier-0 log and never touch the epoch-stamped read index this test
  // exists to exercise.
  SoftHtm tm(SoftHtm::Config{.read_tracking = SoftHtm::ReadTracking::kExact});
  SoftHtm::ThreadContext ctx(tm);
  TmWord w{0};
  TmWord r{0};
  TmWord other{0};
  const AbortStatus first = ctx.attempt([&](SoftHtm::Tx& tx) {
    tx.write(w, 42);
    (void)tx.read(r);
    tx.abort(0x01);  // populate the indices under epoch 1, publish nothing
  });
  ASSERT_FALSE(committed(first));
  EXPECT_EQ(ctx.stamp_epoch_for_testing(), 1u);

  ctx.set_stamp_epoch_for_testing(0xFFFFFFFFu);
  const AbortStatus s = ctx.attempt([&](SoftHtm::Tx& tx) {
    // A resurrected read_words_ entry would swallow this read's accounting.
    (void)tx.read(r);
    if (ctx.read_set_size() != 1) tx.abort(0x02);
    // A resurrected write_index_ entry for w (slot 0 under the stale epoch
    // 1) would redirect this write into `other`'s buffer slot.
    tx.write(other, 5);
    tx.write(w, 7);
    if (ctx.write_set_size() != 2) tx.abort(0x03);
  });
  ASSERT_TRUE(committed(s));
  EXPECT_EQ(ctx.stamp_epoch_for_testing(), 1u) << "wrap lands on epoch 1 again";
  EXPECT_EQ(w.load(), 7u);
  EXPECT_EQ(other.load(), 5u);
  EXPECT_EQ(r.load(), 0u);
}

TEST(SoftHtm, ReReadsConsumeNoReadCapacity) {
  // The capacity model is distinct L1d words: re-reading a resident word
  // must be free, no matter how often (re-reads were what the seed's
  // per-access accounting overcounted).
  SoftHtm tm(SoftHtm::Config{.max_read_set = 4, .max_write_set = 8});
  SoftHtm::ThreadContext ctx(tm);
  std::vector<TmWord> words(4);
  const AbortStatus s = ctx.attempt([&](SoftHtm::Tx& tx) {
    for (int round = 0; round < 100; ++round) {
      for (auto& w : words) (void)tx.read(w);
    }
    if (ctx.read_set_size() != words.size()) tx.abort(0x01);
  });
  EXPECT_TRUE(committed(s));

  // One more distinct word crosses the cap.
  TmWord extra{0};
  const AbortStatus over = ctx.attempt([&](SoftHtm::Tx& tx) {
    for (auto& w : words) (void)tx.read(w);
    (void)tx.read(extra);
  });
  EXPECT_FALSE(committed(over));
  EXPECT_EQ(over.cause(), AbortCause::kCapacity);
}

// ------------------------------------- adaptive read-tracking tiers ----
// DESIGN.md §10: reads start signature-only (Tier 0, a fixed replay log +
// Bloom signature) and promote to the exact per-word index only when the
// log reaches the capacity budget or the signature saturates.

TEST(SoftHtm, AdaptiveReadTrackingPromotesAtTheBudgetBoundary) {
  SoftHtm tm(SoftHtm::Config{.max_read_set = 8});
  SoftHtm::ThreadContext ctx(tm);
  std::vector<TmWord> words(8);

  // 8 distinct reads fit the Tier-0 log exactly: no promotion.
  AbortStatus s = ctx.attempt([&](SoftHtm::Tx& tx) {
    for (auto& w : words) (void)tx.read(w);
    if (ctx.read_tier_is_exact()) tx.abort(0x01);
    if (ctx.read_set_size() != words.size()) tx.abort(0x02);
  });
  EXPECT_TRUE(committed(s));
  EXPECT_EQ(ctx.read_promotions_capacity(), 0u);
  EXPECT_EQ(ctx.read_promotions_saturation(), 0u);

  // A 9th LOGGED read — a duplicate — fills the log: the boundary read
  // promotes, the replay dedups back to 8 distinct, and the transaction
  // commits instead of capacity-aborting.
  s = ctx.attempt([&](SoftHtm::Tx& tx) {
    for (auto& w : words) (void)tx.read(w);
    (void)tx.read(words[0]);
    if (!ctx.read_tier_is_exact()) tx.abort(0x03);
    if (ctx.read_set_size() != words.size()) tx.abort(0x04);
  });
  EXPECT_TRUE(committed(s));
  EXPECT_EQ(ctx.read_promotions_capacity(), 1u);
  EXPECT_EQ(ctx.read_promotions_saturation(), 0u);

  // Every attempt starts over in Tier 0 — the promotion does not stick.
  s = ctx.attempt([&](SoftHtm::Tx& tx) {
    (void)tx.read(words[0]);
    if (ctx.read_tier_is_exact()) tx.abort(0x05);
  });
  EXPECT_TRUE(committed(s));
  EXPECT_EQ(ctx.read_promotions_capacity(), 1u);
}

TEST(SoftHtm, SignatureSaturationPromotesWellBeforeTheBudget) {
  // 2048 distinct reads against the 1024-bit signature push its population
  // far past the saturation threshold (expected ~885 bits set), so the
  // checkpoint scan must promote on saturation long before the 4096-word
  // budget — and the exact tail must still account every distinct word.
  SoftHtm tm;
  SoftHtm::ThreadContext ctx(tm);
  std::vector<TmWord> words(2048);
  const AbortStatus s = ctx.attempt([&](SoftHtm::Tx& tx) {
    std::uint64_t acc = 0;
    for (auto& w : words) acc += tx.read(w);
    (void)acc;
    if (!ctx.read_tier_is_exact()) tx.abort(0x01);
    if (ctx.read_set_size() != words.size()) tx.abort(0x02);
  });
  EXPECT_TRUE(committed(s));
  EXPECT_EQ(ctx.read_promotions_saturation(), 1u);
  EXPECT_EQ(ctx.read_promotions_capacity(), 0u);
}

TEST(SoftHtm, ExactReadTrackingModeNeverEntersTier0) {
  SoftHtm tm(SoftHtm::Config{.max_read_set = 8,
                             .read_tracking = SoftHtm::ReadTracking::kExact});
  SoftHtm::ThreadContext ctx(tm);
  std::vector<TmWord> words(8);
  const AbortStatus s = ctx.attempt([&](SoftHtm::Tx& tx) {
    if (!ctx.read_tier_is_exact()) tx.abort(0x01);
    for (auto& w : words) (void)tx.read(w);
    for (int i = 0; i < 100; ++i) (void)tx.read(words[0]);  // free re-reads
    if (ctx.read_set_size() != words.size()) tx.abort(0x02);
  });
  EXPECT_TRUE(committed(s));
  EXPECT_EQ(ctx.read_promotions_capacity(), 0u)
      << "kExact starts exact; there is nothing to promote";
  EXPECT_EQ(ctx.read_promotions_saturation(), 0u);

  // Exact capacity semantics are unchanged: one extra distinct word aborts.
  TmWord extra{0};
  const AbortStatus over = ctx.attempt([&](SoftHtm::Tx& tx) {
    for (auto& w : words) (void)tx.read(w);
    (void)tx.read(extra);
  });
  EXPECT_FALSE(committed(over));
  EXPECT_EQ(over.cause(), AbortCause::kCapacity);
}

// --------------------------------- duplicate-stripe commit accounting ----

// Two words hashing to the same stripe must acquire that stripe's lock
// exactly once, and an abort part-way through acquisition must release
// exactly the acquired prefix — a leaked lock poisons the stripe forever,
// a double-release corrupts a later owner's lock bit.
TEST(SoftHtm, SameStripeWritesCommitThroughOneLock) {
  SoftHtm tm(SoftHtm::Config{.stripes = 2});
  SoftHtm::ThreadContext ctx(tm);
  std::vector<TmWord> pool(32);
  TmWord* s0_a = nullptr;
  TmWord* s0_b = nullptr;
  for (auto& w : pool) {
    if (tm.stripe_index_of(&w) != 0) continue;
    if (s0_a == nullptr) {
      s0_a = &w;
    } else if (s0_b == nullptr) {
      s0_b = &w;
    }
  }
  ASSERT_NE(s0_a, nullptr);
  ASSERT_NE(s0_b, nullptr);
  const AbortStatus s = ctx.attempt([&](SoftHtm::Tx& tx) {
    tx.write(*s0_a, 1);
    tx.write(*s0_b, 2);
  });
  ASSERT_TRUE(committed(s));
  EXPECT_EQ(s0_a->load(), 1u);
  EXPECT_EQ(s0_b->load(), 2u);
  // The stripe lock was fully released: an immediate retouch commits.
  EXPECT_TRUE(committed(ctx.attempt([&](SoftHtm::Tx& tx) { tx.write(*s0_a, 3); })));
}

TEST(SoftHtm, MidAcquisitionAbortReleasesExactlyTheAcquiredStripes) {
  SoftHtm tm(SoftHtm::Config{.stripes = 2});
  SoftHtm::ThreadContext a(tm);
  SoftHtm::ThreadContext b(tm);
  std::vector<TmWord> pool(32);
  TmWord* s0_a = nullptr;
  TmWord* s0_b = nullptr;
  TmWord* s1_w = nullptr;
  for (auto& w : pool) {
    if (tm.stripe_index_of(&w) == 0) {
      if (s0_a == nullptr) {
        s0_a = &w;
      } else if (s0_b == nullptr) {
        s0_b = &w;
      }
    } else if (s1_w == nullptr) {
      s1_w = &w;
    }
  }
  ASSERT_NE(s0_a, nullptr);
  ASSERT_NE(s0_b, nullptr);
  ASSERT_NE(s1_w, nullptr);

  // A writes both stripes (stripe 0 twice — deduplicated to one lock).
  // Mid-body, B commits to stripe 1, bumping its version past A's read
  // version: A's canonical-order acquisition takes stripe 0, then fails on
  // stripe 1 and must release exactly stripe 0, exactly once.
  const AbortStatus s = a.attempt([&](SoftHtm::Tx& tx) {
    tx.write(*s0_a, 10);
    tx.write(*s0_b, 11);
    tx.write(*s1_w, 12);
    const AbortStatus sb =
        b.attempt([&](SoftHtm::Tx& txb) { txb.write(*s1_w, 99); });
    ASSERT_TRUE(committed(sb));
  });
  EXPECT_FALSE(committed(s));
  EXPECT_EQ(s.cause(), AbortCause::kConflict);
  EXPECT_EQ(s0_a->load(), 0u) << "aborted writes must not publish";
  EXPECT_EQ(s1_w->load(), 99u);

  // Neither stripe leaked a lock: transactions touching both commit freely
  // from either context.
  EXPECT_TRUE(committed(a.attempt([&](SoftHtm::Tx& tx) {
    tx.write(*s0_a, 1);
    tx.write(*s1_w, 2);
  })));
  EXPECT_TRUE(committed(b.attempt([&](SoftHtm::Tx& tx) {
    tx.write(*s0_b, 3);
    tx.write(*s1_w, 4);
  })));
  EXPECT_EQ(s0_a->load(), 1u);
  EXPECT_EQ(s0_b->load(), 3u);
  EXPECT_EQ(s1_w->load(), 4u);
}

}  // namespace
}  // namespace seer::htm
