// Tests for the SoftHtm software implementation of a best-effort HTM:
// TSX-compatible status model, transactional semantics (atomicity, isolation,
// opacity), capacity model, explicit aborts, subscriptions, and
// multi-threaded correctness properties.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "htm/abort_code.hpp"
#include "htm/soft_htm.hpp"
#include "util/rng.hpp"

namespace seer::htm {
namespace {

bool committed(AbortStatus s) { return s.raw() == kXBeginStarted; }

// ---------------------------------------------------------- AbortStatus ----

TEST(AbortStatus, FactoryBitsMatchTsxLayout) {
  EXPECT_EQ(AbortStatus::conflict().raw(), kAbortConflictBit | kAbortRetryBit);
  EXPECT_EQ(AbortStatus::conflict(false).raw(), kAbortConflictBit);
  EXPECT_EQ(AbortStatus::capacity().raw(), kAbortCapacityBit);
  EXPECT_EQ(AbortStatus::other().raw(), 0u);
  const AbortStatus e = AbortStatus::explicit_abort(0xAB);
  EXPECT_TRUE(e.is_explicit());
  EXPECT_EQ(e.explicit_code(), 0xAB);
}

TEST(AbortStatus, CausePrecedence) {
  EXPECT_EQ(AbortStatus::conflict().cause(), AbortCause::kConflict);
  EXPECT_EQ(AbortStatus::capacity().cause(), AbortCause::kCapacity);
  EXPECT_EQ(AbortStatus::explicit_abort(1).cause(), AbortCause::kExplicit);
  EXPECT_EQ(AbortStatus::other().cause(), AbortCause::kOther);
  // Capacity wins over conflict when both bits are set (deterministic cause).
  const AbortStatus both(kAbortCapacityBit | kAbortConflictBit);
  EXPECT_EQ(both.cause(), AbortCause::kCapacity);
}

TEST(AbortStatus, ToStringCoversAllCauses) {
  EXPECT_EQ(to_string(AbortCause::kConflict), "conflict");
  EXPECT_EQ(to_string(AbortCause::kCapacity), "capacity");
  EXPECT_EQ(to_string(AbortCause::kExplicit), "explicit");
  EXPECT_EQ(to_string(AbortCause::kOther), "other");
}

// ------------------------------------------------------ single threaded ----

TEST(SoftHtm, CommitPublishesWrites) {
  SoftHtm tm;
  SoftHtm::ThreadContext ctx(tm);
  TmWord w{0};
  const AbortStatus s = ctx.attempt([&](SoftHtm::Tx& tx) { tx.write(w, 42); });
  EXPECT_TRUE(committed(s));
  EXPECT_EQ(w.load(), 42u);
}

TEST(SoftHtm, ReadYourOwnWrites) {
  SoftHtm tm;
  SoftHtm::ThreadContext ctx(tm);
  TmWord w{7};
  const AbortStatus s = ctx.attempt([&](SoftHtm::Tx& tx) {
    tx.write(w, 100);
    EXPECT_EQ(tx.read(w), 100u);
    tx.write(w, 200);
    EXPECT_EQ(tx.read(w), 200u);
  });
  EXPECT_TRUE(committed(s));
  EXPECT_EQ(w.load(), 200u);
}

TEST(SoftHtm, ReadOnlyTransactionCommits) {
  SoftHtm tm;
  SoftHtm::ThreadContext ctx(tm);
  TmWord w{9};
  std::uint64_t seen = 0;
  const AbortStatus s = ctx.attempt([&](SoftHtm::Tx& tx) { seen = tx.read(w); });
  EXPECT_TRUE(committed(s));
  EXPECT_EQ(seen, 9u);
  EXPECT_FALSE(ctx.in_tx());
}

TEST(SoftHtm, ExplicitAbortRollsBack) {
  SoftHtm tm;
  SoftHtm::ThreadContext ctx(tm);
  TmWord w{1};
  const AbortStatus s = ctx.attempt([&](SoftHtm::Tx& tx) {
    tx.write(w, 99);
    tx.abort(0x5A);
  });
  EXPECT_FALSE(committed(s));
  EXPECT_TRUE(s.is_explicit());
  EXPECT_EQ(s.explicit_code(), 0x5A);
  EXPECT_EQ(w.load(), 1u) << "aborted writes must not be visible";
}

TEST(SoftHtm, WriteCapacityAborts) {
  SoftHtm tm(SoftHtm::Config{.max_read_set = 1024, .max_write_set = 8});
  SoftHtm::ThreadContext ctx(tm);
  std::vector<TmWord> words(16);
  const AbortStatus s = ctx.attempt([&](SoftHtm::Tx& tx) {
    for (auto& w : words) tx.write(w, 1);
  });
  EXPECT_FALSE(committed(s));
  EXPECT_EQ(s.cause(), AbortCause::kCapacity);
  for (auto& w : words) EXPECT_EQ(w.load(), 0u);
}

TEST(SoftHtm, ReadCapacityAborts) {
  SoftHtm tm(SoftHtm::Config{.max_read_set = 8, .max_write_set = 8});
  SoftHtm::ThreadContext ctx(tm);
  std::vector<TmWord> words(16);
  const AbortStatus s = ctx.attempt([&](SoftHtm::Tx& tx) {
    std::uint64_t acc = 0;
    for (auto& w : words) acc += tx.read(w);
    (void)acc;
  });
  EXPECT_FALSE(committed(s));
  EXPECT_EQ(s.cause(), AbortCause::kCapacity);
}

TEST(SoftHtm, RewritingSameWordUsesOneWriteSlot) {
  SoftHtm tm(SoftHtm::Config{.max_read_set = 1024, .max_write_set = 4});
  SoftHtm::ThreadContext ctx(tm);
  TmWord w{0};
  const AbortStatus s = ctx.attempt([&](SoftHtm::Tx& tx) {
    for (int i = 0; i < 100; ++i) tx.write(w, static_cast<std::uint64_t>(i));
  });
  EXPECT_TRUE(committed(s));
  EXPECT_EQ(w.load(), 99u);
}

TEST(SoftHtm, SubscriptionFailsAtRegistrationIfWordChanged) {
  SoftHtm tm;
  SoftHtm::ThreadContext ctx(tm);
  std::atomic<std::uint64_t> lock_word{1};  // already "locked"
  const AbortStatus s = ctx.attempt([&](SoftHtm::Tx& tx) {
    tx.subscribe(lock_word, 0);
    FAIL() << "subscribe must abort when the word differs";
  });
  EXPECT_FALSE(committed(s));
  EXPECT_EQ(s.cause(), AbortCause::kConflict);
}

TEST(SoftHtm, SubscriptionFailsIfWordChangesMidTransaction) {
  SoftHtm tm;
  SoftHtm::ThreadContext ctx(tm);
  std::atomic<std::uint64_t> lock_word{0};
  TmWord data{0};
  const AbortStatus s = ctx.attempt([&](SoftHtm::Tx& tx) {
    tx.subscribe(lock_word, 0);
    lock_word.store(1);  // a fallback path acquires the lock
    tx.write(data, 5);   // next access revalidates subscriptions
    (void)tx.read(data);
  });
  EXPECT_FALSE(committed(s));
  EXPECT_EQ(data.load(), 0u);
}

// Conflict between two contexts, driven deterministically from one thread by
// nesting a committing transaction inside another's body.
TEST(SoftHtm, WriteWriteConflictDetected) {
  SoftHtm tm;
  SoftHtm::ThreadContext a(tm);
  SoftHtm::ThreadContext b(tm);
  TmWord w{0};
  const AbortStatus s = a.attempt([&](SoftHtm::Tx& tx) {
    (void)tx.read(w);
    // B commits a write to the same word while A is speculating.
    const AbortStatus sb = b.attempt([&](SoftHtm::Tx& txb) { txb.write(w, 7); });
    ASSERT_TRUE(committed(sb));
    tx.write(w, 9);  // A's commit must now fail validation
  });
  EXPECT_FALSE(committed(s));
  EXPECT_EQ(s.cause(), AbortCause::kConflict);
  EXPECT_EQ(w.load(), 7u) << "only B's value survives";
}

TEST(SoftHtm, OpacityReadsConsistentSnapshot) {
  SoftHtm tm;
  SoftHtm::ThreadContext a(tm);
  SoftHtm::ThreadContext b(tm);
  TmWord x{1};
  TmWord y{1};  // invariant: x == y
  const AbortStatus s = a.attempt([&](SoftHtm::Tx& tx) {
    const std::uint64_t vx = tx.read(x);
    const AbortStatus sb = b.attempt([&](SoftHtm::Tx& txb) {
      txb.write(x, 2);
      txb.write(y, 2);
    });
    ASSERT_TRUE(committed(sb));
    // A must NOT observe the new y next to the old x: the read aborts.
    const std::uint64_t vy = tx.read(y);
    EXPECT_EQ(vx, vy) << "opacity violated: mixed snapshot observed";
  });
  EXPECT_FALSE(committed(s)) << "A read stale data and must abort";
}

TEST(SoftHtm, ReadOnlyVsWriterStillSerializable) {
  SoftHtm tm;
  SoftHtm::ThreadContext a(tm);
  SoftHtm::ThreadContext b(tm);
  TmWord x{10};
  // A reads x, then B writes x and commits, then A commits read-only. A
  // observed a consistent pre-B snapshot on every read, so it serializes
  // BEFORE B and commits — no write-back, no validation needed.
  const AbortStatus s = a.attempt([&](SoftHtm::Tx& tx) {
    EXPECT_EQ(tx.read(x), 10u);
    const AbortStatus sb = b.attempt([&](SoftHtm::Tx& txb) { txb.write(x, 11); });
    ASSERT_TRUE(committed(sb));
  });
  EXPECT_TRUE(committed(s));
  EXPECT_EQ(x.load(), 11u);
}

TEST(SoftHtm, AbortClearsContextState) {
  SoftHtm tm;
  SoftHtm::ThreadContext ctx(tm);
  TmWord w{0};
  (void)ctx.attempt([&](SoftHtm::Tx& tx) {
    tx.write(w, 1);
    tx.abort(1);
  });
  EXPECT_EQ(ctx.read_set_size(), 0u);
  EXPECT_EQ(ctx.write_set_size(), 0u);
  EXPECT_FALSE(ctx.in_tx());
  // The context is immediately reusable.
  const AbortStatus s = ctx.attempt([&](SoftHtm::Tx& tx) { tx.write(w, 2); });
  EXPECT_TRUE(committed(s));
  EXPECT_EQ(w.load(), 2u);
}

TEST(SoftHtm, SequentialTransactionsSeeEachOther) {
  SoftHtm tm;
  SoftHtm::ThreadContext ctx(tm);
  TmWord w{0};
  for (std::uint64_t i = 1; i <= 50; ++i) {
    const AbortStatus s = ctx.attempt([&](SoftHtm::Tx& tx) {
      EXPECT_EQ(tx.read(w), i - 1);
      tx.write(w, i);
    });
    ASSERT_TRUE(committed(s));
  }
  EXPECT_EQ(w.load(), 50u);
}

// ------------------------------------------------------- multi threaded ----

TEST(SoftHtm, ConcurrentCounterIsExact) {
  SoftHtm tm;
  TmWord counter{0};
  constexpr int kThreads = 4;
  constexpr int kIncrements = 4000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      SoftHtm::ThreadContext ctx(tm);
      for (int i = 0; i < kIncrements; ++i) {
        while (true) {
          const AbortStatus s = ctx.attempt([&](SoftHtm::Tx& tx) {
            tx.write(counter, tx.read(counter) + 1);
          });
          if (committed(s)) break;
        }
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(counter.load(), static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST(SoftHtm, BankTransferInvariantHolds) {
  SoftHtm tm;
  constexpr int kAccounts = 32;
  constexpr std::uint64_t kInitial = 1000;
  std::vector<TmWord> accounts(kAccounts);
  for (auto& a : accounts) a.store(kInitial);

  constexpr int kThreads = 4;
  constexpr int kTransfers = 3000;
  std::atomic<bool> violation{false};
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      SoftHtm::ThreadContext ctx(tm);
      util::Xoshiro256 rng(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < kTransfers; ++i) {
        const auto from = rng.below(kAccounts);
        const auto to = rng.below(kAccounts);
        if (from == to) continue;
        while (true) {
          const AbortStatus s = ctx.attempt([&](SoftHtm::Tx& tx) {
            const std::uint64_t f = tx.read(accounts[from]);
            if (f == 0) return;
            tx.write(accounts[from], f - 1);
            tx.write(accounts[to], tx.read(accounts[to]) + 1);
          });
          if (committed(s)) break;
        }
        // Occasionally audit the total transactionally.
        if (i % 256 == 0) {
          while (true) {
            std::uint64_t total = 0;
            const AbortStatus s = ctx.attempt([&](SoftHtm::Tx& tx) {
              total = 0;
              for (auto& a : accounts) total += tx.read(a);
            });
            if (committed(s)) {
              if (total != kAccounts * kInitial) violation.store(true);
              break;
            }
          }
        }
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_FALSE(violation.load()) << "transactional audit saw a torn total";
  std::uint64_t total = 0;
  for (auto& a : accounts) total += a.load();
  EXPECT_EQ(total, kAccounts * kInitial);
}

TEST(SoftHtm, SubscribedTransactionsYieldToNonTransactionalWriter) {
  SoftHtm tm;
  TmWord data{0};
  std::atomic<std::uint64_t> lock_word{0};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> aborted_by_lock{0};

  std::thread worker([&] {
    SoftHtm::ThreadContext ctx(tm);
    while (!stop.load()) {
      const AbortStatus s = ctx.attempt([&](SoftHtm::Tx& tx) {
        tx.subscribe(lock_word, 0);
        tx.write(data, tx.read(data) + 1);
      });
      if (!committed(s)) aborted_by_lock.fetch_add(1);
    }
  });

  for (int i = 0; i < 200; ++i) {
    lock_word.store(1);
    std::this_thread::yield();
    lock_word.store(0);
  }
  stop.store(true);
  worker.join();
  // The exact count is timing-dependent; the property under test is that the
  // run terminates without torn state and the counter only grew.
  EXPECT_GE(data.load(), 0u);
}

}  // namespace
}  // namespace seer::htm
