// Tests for the STAMP workload specifications and the SpecWorkload sampler.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "stamp/spec.hpp"
#include "stamp/workloads.hpp"

namespace seer::stamp {
namespace {

// ----------------------------------------------------------- registry ------

TEST(Registry, HasTheEightPaperBenchmarks) {
  const auto& all = all_workloads();
  ASSERT_EQ(all.size(), 8u);
  const std::vector<std::string> expected = {
      "genome",       "intruder",      "kmeans-high", "kmeans-low",
      "ssca2",        "vacation-high", "vacation-low", "yada"};
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(all[i].name, expected[i]);
    EXPECT_GT(all[i].bench_txs_per_thread, 0u);
  }
}

TEST(Registry, MakeWorkloadByName) {
  const auto wl = make_workload("intruder", 8);
  EXPECT_EQ(wl->name(), "intruder");
  EXPECT_EQ(wl->n_types(), 3u);
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW((void)make_workload("labyrinth", 8), std::out_of_range);
}

// ---------------------------------------------------------- spec sanity ----

class SpecSanity : public ::testing::TestWithParam<std::string> {};

TEST_P(SpecSanity, StructurallyValid) {
  WorkloadSpec spec;
  for (const auto& info : all_workloads()) {
    if (info.name == GetParam()) spec = info.spec();
  }
  ASSERT_FALSE(spec.types.empty());
  ASSERT_FALSE(spec.regions.empty());
  double frac = 0.0;
  for (const Phase& p : spec.phases) {
    EXPECT_EQ(p.mix.size(), spec.types.size());
    EXPECT_GT(p.fraction, 0.0);
    double mix_total = 0.0;
    for (double m : p.mix) {
      EXPECT_GE(m, 0.0);
      mix_total += m;
    }
    EXPECT_GT(mix_total, 0.0);
    frac += p.fraction;
  }
  EXPECT_NEAR(frac, 1.0, 1e-9);
  for (const TxTypeSpec& t : spec.types) {
    EXPECT_GT(t.duration_mean, 0u);
    EXPECT_GE(t.duration_jitter, 0.0);
    EXPECT_LT(t.duration_jitter, 1.0);
    EXPECT_FALSE(t.accesses.empty());
    for (const RegionAccess& a : t.accesses) {
      ASSERT_LT(a.region, spec.regions.size());
      EXPECT_GT(a.reads + a.writes, 0);
    }
  }
  for (const Region& r : spec.regions) {
    EXPECT_GT(r.lines, 0u);
    EXPECT_GE(r.zipf_skew, 0.0);
  }
}

TEST_P(SpecSanity, SamplesAreWellFormed) {
  const auto wl = make_workload(GetParam(), 8);
  util::Xoshiro256 rng(99);
  sim::TxInstance inst;
  for (int i = 0; i < 300; ++i) {
    const double progress = i / 300.0;
    wl->next(i % 8, progress, rng, inst);
    ASSERT_GE(inst.type, 0);
    ASSERT_LT(static_cast<std::size_t>(inst.type), wl->n_types());
    EXPECT_GT(inst.duration, 0u);
    EXPECT_TRUE(std::is_sorted(inst.reads.begin(), inst.reads.end()));
    EXPECT_TRUE(std::is_sorted(inst.writes.begin(), inst.writes.end()));
    EXPECT_TRUE(std::adjacent_find(inst.reads.begin(), inst.reads.end()) ==
                inst.reads.end())
        << "duplicate read lines";
    EXPECT_TRUE(std::adjacent_find(inst.writes.begin(), inst.writes.end()) ==
                inst.writes.end())
        << "duplicate write lines";
    EXPECT_LE(inst.footprint_lines(), 1500u) << "implausibly large footprint";
  }
}

TEST_P(SpecSanity, ThinkTimesArePositiveAndBounded) {
  const auto wl = make_workload(GetParam(), 8);
  util::Xoshiro256 rng(7);
  double sum = 0.0;
  constexpr int kN = 5000;
  for (int i = 0; i < kN; ++i) {
    const std::uint64_t t = wl->think_time(0, rng);
    EXPECT_LT(t, 1000000u);
    sum += static_cast<double>(t);
  }
  EXPECT_GT(sum / kN, 0.0);
}

INSTANTIATE_TEST_SUITE_P(All, SpecSanity,
                         ::testing::Values("genome", "intruder", "kmeans-high",
                                           "kmeans-low", "ssca2", "vacation-high",
                                           "vacation-low", "yada"));

// ------------------------------------------------------- SpecWorkload ------

TEST(SpecWorkload, DurationWithinJitterBounds) {
  WorkloadSpec spec;
  spec.name = "jitter";
  spec.regions = {{.name = "r", .lines = 64}};
  spec.types = {{.name = "t",
                 .duration_mean = 1000,
                 .duration_jitter = 0.25,
                 .accesses = {{.region = 0, .reads = 1, .writes = 0}}}};
  SpecWorkload wl(std::move(spec), 2);
  util::Xoshiro256 rng(5);
  sim::TxInstance inst;
  for (int i = 0; i < 500; ++i) {
    wl.next(0, 0.0, rng, inst);
    EXPECT_GE(inst.duration, 750u);
    EXPECT_LE(inst.duration, 1250u);
  }
}

TEST(SpecWorkload, PerThreadRegionsAreDisjoint) {
  WorkloadSpec spec;
  spec.name = "private";
  spec.regions = {{.name = "priv", .lines = 32, .zipf_skew = 0.0, .per_thread = true}};
  spec.types = {{.name = "t",
                 .duration_mean = 100,
                 .duration_jitter = 0.0,
                 .accesses = {{.region = 0, .reads = 8, .writes = 4}}}};
  SpecWorkload wl(std::move(spec), 4);
  util::Xoshiro256 rng(5);
  std::set<std::uint32_t> seen[4];
  sim::TxInstance inst;
  for (core::ThreadId t = 0; t < 4; ++t) {
    for (int i = 0; i < 100; ++i) {
      wl.next(t, 0.0, rng, inst);
      for (auto l : inst.reads) seen[t].insert(l);
      for (auto l : inst.writes) seen[t].insert(l);
    }
  }
  for (int a = 0; a < 4; ++a) {
    for (int b = a + 1; b < 4; ++b) {
      std::vector<std::uint32_t> inter;
      std::set_intersection(seen[a].begin(), seen[a].end(), seen[b].begin(),
                            seen[b].end(), std::back_inserter(inter));
      EXPECT_TRUE(inter.empty())
          << "threads " << a << " and " << b << " share private lines";
    }
  }
}

TEST(SpecWorkload, SharedRegionsDoOverlapAcrossThreads) {
  WorkloadSpec spec;
  spec.name = "shared";
  spec.regions = {{.name = "hot", .lines = 4}};
  spec.types = {{.name = "t",
                 .duration_mean = 100,
                 .duration_jitter = 0.0,
                 .accesses = {{.region = 0, .reads = 2, .writes = 2}}}};
  SpecWorkload wl(std::move(spec), 2);
  util::Xoshiro256 rng(5);
  sim::TxInstance a;
  sim::TxInstance b;
  int conflicts = 0;
  for (int i = 0; i < 200; ++i) {
    wl.next(0, 0.0, rng, a);
    wl.next(1, 0.0, rng, b);
    if (sim::instances_conflict(a, b)) ++conflicts;
  }
  EXPECT_GT(conflicts, 100) << "4-line hot region must collide often";
}

TEST(SpecWorkload, PhasesFollowProgress) {
  WorkloadSpec spec;
  spec.name = "phased";
  spec.regions = {{.name = "r", .lines = 64}};
  spec.types = {{.name = "a",
                 .duration_mean = 100,
                 .duration_jitter = 0.0,
                 .accesses = {{.region = 0, .reads = 1, .writes = 0}}},
                {.name = "b",
                 .duration_mean = 100,
                 .duration_jitter = 0.0,
                 .accesses = {{.region = 0, .reads = 1, .writes = 0}}}};
  spec.phases = {{.fraction = 0.5, .mix = {1, 0}}, {.fraction = 0.5, .mix = {0, 1}}};
  SpecWorkload wl(std::move(spec), 1);
  util::Xoshiro256 rng(5);
  sim::TxInstance inst;
  for (int i = 0; i < 100; ++i) {
    wl.next(0, 0.1, rng, inst);
    EXPECT_EQ(inst.type, 0) << "early progress must sample phase-1 types";
    wl.next(0, 0.9, rng, inst);
    EXPECT_EQ(inst.type, 1) << "late progress must sample phase-2 types";
  }
}

TEST(SpecWorkload, DefaultPhaseIsUniformMix) {
  WorkloadSpec spec;
  spec.name = "nophase";
  spec.regions = {{.name = "r", .lines = 64}};
  spec.types = {{.name = "a",
                 .duration_mean = 100,
                 .duration_jitter = 0.0,
                 .accesses = {{.region = 0, .reads = 1, .writes = 0}}},
                {.name = "b",
                 .duration_mean = 100,
                 .duration_jitter = 0.0,
                 .accesses = {{.region = 0, .reads = 1, .writes = 0}}}};
  SpecWorkload wl(std::move(spec), 1);
  util::Xoshiro256 rng(5);
  sim::TxInstance inst;
  int count_a = 0;
  constexpr int kN = 4000;
  for (int i = 0; i < kN; ++i) {
    wl.next(0, 0.5, rng, inst);
    if (inst.type == 0) ++count_a;
  }
  EXPECT_NEAR(count_a / static_cast<double>(kN), 0.5, 0.05);
}

TEST(SpecWorkload, TypeNamesExposed) {
  const auto wl = make_workload("intruder", 4);
  EXPECT_EQ(wl->type_name(0), "capture");
  EXPECT_EQ(wl->type_name(1), "reassemble");
  EXPECT_EQ(wl->type_name(2), "detect");
}

// Domain-structure checks on the calibrated specs --------------------------

TEST(WorkloadStructure, IntruderCapturesSelfConflict) {
  const auto wl = make_workload("intruder", 8);
  util::Xoshiro256 rng(31);
  sim::TxInstance a;
  sim::TxInstance b;
  int conflicts = 0;
  int trials = 0;
  for (int i = 0; i < 3000 && trials < 300; ++i) {
    wl->next(0, 0.5, rng, a);
    if (a.type != 0) continue;
    wl->next(1, 0.5, rng, b);
    if (b.type != 0) continue;
    ++trials;
    if (sim::instances_conflict(a, b)) ++conflicts;
  }
  ASSERT_GT(trials, 50);
  EXPECT_GT(conflicts, trials / 10) << "queue head must make captures collide";
}

TEST(WorkloadStructure, Ssca2IsNearlyConflictFree) {
  const auto wl = make_workload("ssca2", 8);
  util::Xoshiro256 rng(31);
  sim::TxInstance a;
  sim::TxInstance b;
  int conflicts = 0;
  for (int i = 0; i < 2000; ++i) {
    wl->next(0, 0.5, rng, a);
    wl->next(1, 0.5, rng, b);
    if (sim::instances_conflict(a, b)) ++conflicts;
  }
  EXPECT_LT(conflicts, 20);
}

TEST(WorkloadStructure, YadaCavitiesPressSmtCapacity) {
  const auto wl = make_workload("yada", 8);
  util::Xoshiro256 rng(31);
  sim::TxInstance inst;
  std::size_t big = 0;
  std::size_t trials = 0;
  for (int i = 0; i < 2000; ++i) {
    wl->next(0, 0.5, rng, inst);
    if (inst.type != 0) continue;  // refine_cavity
    ++trials;
    // Fits a full core budget (448) but not the SMT-shared half (224).
    if (inst.footprint_lines() > 224 && inst.footprint_lines() <= 448) ++big;
  }
  ASSERT_GT(trials, 100);
  EXPECT_GT(big, trials * 9 / 10);
}

TEST(WorkloadStructure, KmeansHighHotterThanLow) {
  const auto probe = [](const char* name) {
    const auto wl = make_workload(name, 8);
    util::Xoshiro256 rng(13);
    sim::TxInstance a;
    sim::TxInstance b;
    int conflicts = 0;
    int trials = 0;
    while (trials < 400) {
      wl->next(0, 0.5, rng, a);
      if (a.type != 1) continue;  // update_centers
      wl->next(1, 0.5, rng, b);
      if (b.type != 1) continue;
      ++trials;
      if (sim::instances_conflict(a, b)) ++conflicts;
    }
    return conflicts;
  };
  EXPECT_GT(probe("kmeans-high"), 2 * probe("kmeans-low"));
}

}  // namespace
}  // namespace seer::stamp
