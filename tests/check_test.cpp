// Tests for the correctness harness (src/check/): deterministic fault
// injection through SoftHtm's unchanged xbegin/xend interface, and the
// offline opacity verifier over recorded commit logs — including the
// acceptance gate that the verifier catches a deliberately broken TM.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "check/fault_plan.hpp"
#include "check/opacity.hpp"
#include "htm/soft_htm.hpp"
#include "runtime/threaded_executor.hpp"

namespace seer::check {
namespace {

bool committed(htm::AbortStatus s) { return s.raw() == htm::kXBeginStarted; }

// ----------------------------------------------------------- FaultPlan -----

TEST(FaultPlan, ForcesEveryAbortCauseDeterministically) {
  const struct {
    htm::AbortStatus status;
    htm::AbortCause cause;
  } cases[] = {
      {htm::AbortStatus::conflict(), htm::AbortCause::kConflict},
      {htm::AbortStatus::capacity(), htm::AbortCause::kCapacity},
      {htm::AbortStatus::other(), htm::AbortCause::kOther},
  };
  for (const auto& c : cases) {
    htm::SoftHtm tm;
    htm::SoftHtm::ThreadContext ctx(tm);
    FaultPlan plan;
    plan.force(/*attempt=*/0, htm::TxOp::kWrite, /*occurrence=*/0, c.status);
    ctx.set_fault_injector(&plan);
    htm::TmWord w{0};

    const htm::AbortStatus first =
        ctx.attempt([&](htm::SoftHtm::Tx& tx) { tx.write(w, 1); });
    EXPECT_FALSE(committed(first));
    EXPECT_EQ(first.cause(), c.cause) << "forced cause must come back verbatim";
    EXPECT_EQ(w.load(), 0u) << "injected abort must roll back";
    EXPECT_EQ(plan.injected(c.cause), 1u);

    // The plan pins attempt 0 only; the retry goes through untouched.
    const htm::AbortStatus retry =
        ctx.attempt([&](htm::SoftHtm::Tx& tx) { tx.write(w, 1); });
    EXPECT_TRUE(committed(retry));
    EXPECT_EQ(w.load(), 1u);
    EXPECT_EQ(plan.total_injected(), 1u);
  }
}

TEST(FaultPlan, ForcedFaultHitsTheExactOperation) {
  htm::SoftHtm tm;
  htm::SoftHtm::ThreadContext ctx(tm);
  FaultPlan plan;
  // Die at the SECOND read of the first attempt.
  plan.force(0, htm::TxOp::kRead, /*occurrence=*/1, htm::AbortStatus::conflict());
  ctx.set_fault_injector(&plan);
  std::vector<htm::TmWord> words(4);
  int reads_completed = 0;
  const htm::AbortStatus s = ctx.attempt([&](htm::SoftHtm::Tx& tx) {
    for (auto& w : words) {
      (void)tx.read(w);
      ++reads_completed;
    }
  });
  EXPECT_FALSE(committed(s));
  EXPECT_EQ(reads_completed, 1) << "fault fires before the targeted read runs";
}

TEST(FaultPlan, CommitFaultKillsAFinishedBody) {
  htm::SoftHtm tm;
  htm::SoftHtm::ThreadContext ctx(tm);
  FaultPlan plan;
  plan.force(0, htm::TxOp::kCommit, 0, htm::AbortStatus::capacity());
  ctx.set_fault_injector(&plan);
  htm::TmWord w{0};
  bool body_finished = false;
  const htm::AbortStatus s = ctx.attempt([&](htm::SoftHtm::Tx& tx) {
    tx.write(w, 9);
    body_finished = true;
  });
  EXPECT_TRUE(body_finished) << "the body ran to completion";
  EXPECT_FALSE(committed(s)) << "then the commit was killed";
  EXPECT_EQ(s.cause(), htm::AbortCause::kCapacity);
  EXPECT_EQ(w.load(), 0u);
}

TEST(FaultPlan, SubscribeFaultFiresBeforeTheSubscriptionRegisters) {
  // Tx::subscribe is a speculative access like any other — on real TSX the
  // fallback lock sits in the read set, so a plan must be able to pin an
  // abort to exactly the subscription point.
  htm::SoftHtm tm;
  htm::SoftHtm::ThreadContext ctx(tm);
  FaultPlan plan;
  plan.force(0, htm::TxOp::kSubscribe, 0, htm::AbortStatus::conflict());
  ctx.set_fault_injector(&plan);
  std::atomic<std::uint64_t> lock_word{0};
  htm::TmWord w{0};
  bool past_subscribe = false;
  const htm::AbortStatus s = ctx.attempt([&](htm::SoftHtm::Tx& tx) {
    tx.write(w, 1);
    tx.subscribe(lock_word, 0);
    past_subscribe = true;
  });
  EXPECT_FALSE(committed(s));
  EXPECT_EQ(s.cause(), htm::AbortCause::kConflict);
  EXPECT_FALSE(past_subscribe) << "the fault fires before subscribe completes";
  EXPECT_EQ(w.load(), 0u) << "injected abort must roll back the buffered write";
  EXPECT_EQ(plan.injected(htm::AbortCause::kConflict), 1u);

  // The plan pinned attempt 0 only: the retry subscribes and commits.
  const htm::AbortStatus retry = ctx.attempt([&](htm::SoftHtm::Tx& tx) {
    tx.write(w, 1);
    tx.subscribe(lock_word, 0);
  });
  EXPECT_TRUE(committed(retry));
  EXPECT_EQ(w.load(), 1u);
}

TEST(FaultPlan, SubscribeFaultThroughExecutorLandsOnRetryPath) {
  // The threaded executor's hardware path subscribes to the SGL word on
  // every speculative attempt, so a kSubscribe-pinned fault exercises the
  // hook exactly where production transactions hit it. The killed attempt
  // must surface as a normal conflict to the policy, and the retry (or the
  // fallback) still commits the body exactly once.
  htm::SoftHtm tm;
  rt::ThreadedExecutor::Options opts;
  opts.n_threads = 1;
  opts.n_types = 1;
  opts.physical_cores = 2;
  rt::PolicyConfig policy;
  policy.kind = rt::PolicyKind::kRtm;
  rt::ThreadedExecutor exec(tm, policy, opts);
  auto h = exec.make_handle(0);
  FaultPlan plan;
  plan.force(0, htm::TxOp::kSubscribe, 0, htm::AbortStatus::conflict());
  h->set_fault_injector(&plan);
  htm::TmWord w{0};
  (void)h->run(0, [&](auto& tx) { tx.write(w, tx.read(w) + 1); });
  EXPECT_EQ(w.load(), 1u);
  EXPECT_EQ(plan.injected(htm::AbortCause::kConflict), 1u)
      << "the subscription fault fired exactly once";
  const auto conflict_idx = static_cast<std::size_t>(htm::AbortCause::kConflict);
  EXPECT_GT(h->counters().aborts_by_cause[conflict_idx], 0u)
      << "the injected subscribe abort reached the policy's accounting";
}

TEST(FaultPlan, SeedReproducesInjectionSchedule) {
  // Identical (seed, op stream) pairs must produce identical injection
  // schedules — the property that makes failing property-test seeds replay.
  auto run = [](std::uint64_t seed) {
    htm::SoftHtm tm;
    htm::SoftHtm::ThreadContext ctx(tm);
    FaultPlan plan(FaultPlanConfig{
        .p_conflict = 0.05, .p_capacity = 0.05, .p_other = 0.05, .seed = seed});
    ctx.set_fault_injector(&plan);
    htm::TmWord w{0};
    std::vector<bool> aborted;
    for (int i = 0; i < 200; ++i) {
      const htm::AbortStatus s = ctx.attempt(
          [&](htm::SoftHtm::Tx& tx) { tx.write(w, tx.read(w) + 1); });
      aborted.push_back(!committed(s));
    }
    return std::pair{aborted, plan.total_injected()};
  };
  const auto [a1, n1] = run(42);
  const auto [a2, n2] = run(42);
  EXPECT_EQ(a1, a2) << "same seed, same op stream, same schedule";
  EXPECT_EQ(n1, n2);
  EXPECT_GT(n1, 0u) << "with p=0.15/op some injection must have fired";
  const auto [a3, n3] = run(43);
  EXPECT_NE(a1, a3) << "different seed, different schedule";
  (void)n3;
}

TEST(FaultPlan, FallbackPathIsExempt) {
  // attempt_unbounded models the pessimistic SGL path, which executes
  // non-speculatively: even a plan that kills every operation must not
  // touch it, or the fallback could never make progress.
  htm::SoftHtm tm;
  htm::SoftHtm::ThreadContext ctx(tm);
  FaultPlan plan(FaultPlanConfig{.p_other = 1.0});
  ctx.set_fault_injector(&plan);
  htm::TmWord w{0};

  const htm::AbortStatus spec =
      ctx.attempt([&](htm::SoftHtm::Tx& tx) { tx.write(w, 1); });
  EXPECT_FALSE(committed(spec)) << "speculative attempts are fair game";

  const htm::AbortStatus pess =
      ctx.attempt_unbounded([&](htm::SoftHtm::Tx& tx) { tx.write(w, 2); });
  EXPECT_TRUE(committed(pess));
  EXPECT_EQ(w.load(), 2u);
}

TEST(FaultPlan, ThreadedExecutorPassthroughStillCompletes) {
  // A hostile plan injected through the executor handle: the policy burns
  // its retry budget on synthetic aborts and lands on the SGL, but the
  // transaction still commits exactly once.
  htm::SoftHtm tm;
  rt::ThreadedExecutor::Options opts;
  opts.n_threads = 1;
  opts.n_types = 1;
  opts.physical_cores = 2;
  rt::PolicyConfig policy;
  policy.kind = rt::PolicyKind::kRtm;
  rt::ThreadedExecutor exec(tm, policy, opts);
  auto h = exec.make_handle(0);
  FaultPlan plan(FaultPlanConfig{.p_conflict = 1.0});
  h->set_fault_injector(&plan);
  htm::TmWord w{0};
  const rt::CommitMode mode =
      h->run(0, [&](auto& tx) { tx.write(w, tx.read(w) + 1); });
  EXPECT_EQ(mode, rt::CommitMode::kSglFallback);
  EXPECT_EQ(w.load(), 1u);
  const auto conflict_idx = static_cast<std::size_t>(htm::AbortCause::kConflict);
  EXPECT_GT(h->counters().aborts_by_cause[conflict_idx], 0u)
      << "the injected aborts reached the policy's accounting";
}

// ------------------------------------------- tier-promotion boundary ----
// With max_read_set = 8 the Tier-0 replay log holds exactly 8 reads; the
// 9th LOGGED read (occurrence 8) lands on the budget boundary and is the
// read that promotes to exact tracking (DESIGN.md §10). Duplicate re-reads
// keep the distinct count at 8, so promotion dedups back under budget and
// the transaction commits rather than capacity-aborting.

TEST(FaultPlan, ForcedFaultPinsThePromotionTriggeringRead) {
  htm::SoftHtm tm{htm::SoftHtm::Config{.max_read_set = 8}};
  htm::SoftHtm::ThreadContext ctx(tm);
  FaultPlan plan;
  plan.force(0, htm::TxOp::kRead, /*occurrence=*/8, htm::AbortStatus::conflict());
  ctx.set_fault_injector(&plan);
  std::vector<htm::TmWord> words(8);
  int reads_completed = 0;
  auto body = [&](htm::SoftHtm::Tx& tx) {
    std::uint64_t acc = 0;
    for (auto& w : words) {
      acc += tx.read(w);
      ++reads_completed;
    }
    acc += tx.read(words[0]);  // logged read 9: the promoting read
    ++reads_completed;
    (void)acc;
  };
  const htm::AbortStatus s = ctx.attempt(body);
  EXPECT_FALSE(committed(s));
  EXPECT_EQ(reads_completed, 8) << "the fault fires before the promoting read";
  EXPECT_EQ(ctx.read_promotions_capacity(), 0u)
      << "the attempt died before promote_reads ran";

  reads_completed = 0;
  const htm::AbortStatus retry = ctx.attempt(body);
  EXPECT_TRUE(committed(retry));
  EXPECT_EQ(reads_completed, 9);
  EXPECT_EQ(ctx.read_promotions_capacity(), 1u)
      << "the retry crossed the boundary and promoted";
}

TEST(FaultPlan, FaultJustAfterPromotionRollsBackTheExactTier) {
  // Kill the read AFTER the promoting one: the attempt dies with the exact
  // tier active and the replayed index populated. Rollback must leave the
  // context able to re-enter Tier 0 on the retry and promote again.
  htm::SoftHtm tm{htm::SoftHtm::Config{.max_read_set = 8}};
  htm::SoftHtm::ThreadContext ctx(tm);
  FaultPlan plan;
  plan.force(0, htm::TxOp::kRead, /*occurrence=*/9, htm::AbortStatus::capacity());
  ctx.set_fault_injector(&plan);
  std::vector<htm::TmWord> words(8);
  auto body = [&](htm::SoftHtm::Tx& tx) {
    std::uint64_t acc = 0;
    for (auto& w : words) acc += tx.read(w);
    acc += tx.read(words[0]);  // logged read 9: promotes
    acc += tx.read(words[1]);  // logged read 10: exact tier — killed
    (void)acc;
  };
  const htm::AbortStatus s = ctx.attempt(body);
  EXPECT_FALSE(committed(s));
  EXPECT_EQ(s.cause(), htm::AbortCause::kCapacity);
  EXPECT_EQ(ctx.read_promotions_capacity(), 1u)
      << "the first attempt promoted before dying";

  const htm::AbortStatus retry = ctx.attempt(body);
  EXPECT_TRUE(committed(retry));
  EXPECT_EQ(ctx.read_promotions_capacity(), 2u)
      << "every attempt starts over in Tier 0 and re-promotes";
}

// ----------------------------------------------------- opacity verifier ----

TEST(Opacity, CleanSingleThreadHistoryVerifies) {
  htm::SoftHtm tm;
  htm::SoftHtm::ThreadContext ctx(tm);
  htm::TxLog log;
  ctx.set_tx_log(&log);
  std::vector<htm::TmWord> words(4);
  MemorySnapshot initial;
  snapshot_words(initial, words.data(), words.size());

  for (int i = 0; i < 50; ++i) {
    const htm::AbortStatus s = ctx.attempt([&](htm::SoftHtm::Tx& tx) {
      const std::size_t j = static_cast<std::size_t>(i) % words.size();
      tx.write(words[j], tx.read(words[j]) + 1);
    });
    ASSERT_TRUE(committed(s));
  }
  const OpacityReport report = verify_opacity({&log}, initial);
  EXPECT_TRUE(report.ok()) << to_string(report.violations.front());
  EXPECT_EQ(report.transactions_checked, 50u);
  EXPECT_EQ(report.reads_checked, 50u);
}

TEST(Opacity, CleanConcurrentHistoryVerifies) {
  htm::SoftHtm tm;
  htm::TmWord counter{0};
  constexpr int kThreads = 4;
  constexpr int kIncrements = 1500;
  MemorySnapshot initial;
  snapshot_words(initial, &counter, 1);
  std::vector<htm::TxLog> logs(kThreads);
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      htm::SoftHtm::ThreadContext ctx(tm);
      ctx.set_tx_log(&logs[static_cast<std::size_t>(t)]);
      for (int i = 0; i < kIncrements; ++i) {
        while (true) {
          const htm::AbortStatus s = ctx.attempt([&](htm::SoftHtm::Tx& tx) {
            tx.write(counter, tx.read(counter) + 1);
          });
          if (committed(s)) break;
        }
      }
    });
  }
  for (auto& t : ts) t.join();
  std::vector<const htm::TxLog*> log_ptrs;
  for (const auto& l : logs) log_ptrs.push_back(&l);
  const OpacityReport report = verify_opacity(log_ptrs, initial);
  EXPECT_TRUE(report.ok()) << to_string(report.violations.front());
  EXPECT_EQ(report.transactions_checked,
            static_cast<std::size_t>(kThreads) * kIncrements);
  EXPECT_EQ(counter.load(), static_cast<std::uint64_t>(kThreads) * kIncrements);
}

// Hand-crafted logs: the verifier's classification must be exact.

TEST(Opacity, FlagsStaleReadAsLostUpdate) {
  const std::uint64_t word_a = 0;  // stands in for a TmWord's storage
  htm::TxLog log;
  // v1 writes a=2 (having read the initial 1); v2 then reads the
  // OVERWRITTEN value 1 — a lost update.
  log.push_back(htm::TxRecord{.begin_version = 0,
                              .commit_version = 1,
                              .writer = true,
                              .reads = {{&word_a, 1}},
                              .writes = {{&word_a, 2}}});
  log.push_back(htm::TxRecord{.begin_version = 0,
                              .commit_version = 2,
                              .writer = true,
                              .reads = {{&word_a, 1}},
                              .writes = {{&word_a, 3}}});
  const OpacityReport report = verify_opacity({&log}, {{&word_a, 1}});
  ASSERT_EQ(report.violations.size(), 1u);
  const Violation& v = report.violations.front();
  EXPECT_EQ(v.kind, ViolationKind::kStaleRead);
  EXPECT_EQ(v.commit_version, 2u);
  EXPECT_EQ(v.observed, 1u);
  EXPECT_EQ(v.expected, 2u);
}

TEST(Opacity, FlagsDirtyReadOfNeverCommittedValue) {
  const std::uint64_t word_a = 0;
  htm::TxLog log;
  log.push_back(htm::TxRecord{.begin_version = 0,
                              .commit_version = 1,
                              .writer = true,
                              .reads = {{&word_a, 99}},  // 99 never existed
                              .writes = {{&word_a, 2}}});
  const OpacityReport report = verify_opacity({&log}, {{&word_a, 1}});
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations.front().kind, ViolationKind::kDirtyRead);
}

TEST(Opacity, FlagsDuplicateCommitVersions) {
  const std::uint64_t word_a = 0;
  htm::TxLog log;
  for (int i = 0; i < 2; ++i) {
    log.push_back(htm::TxRecord{.begin_version = 0,
                                .commit_version = 7,
                                .writer = true,
                                .reads = {},
                                .writes = {{&word_a, 1}}});
  }
  const OpacityReport report = verify_opacity({&log}, {{&word_a, 0}});
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations.front().kind,
            ViolationKind::kDuplicateCommitVersion);
}

TEST(Opacity, ReadOnlySerializesAtItsSnapshot) {
  const std::uint64_t word_a = 0;
  htm::TxLog log;
  // Writer v1 sets a=2; a read-only tx with begin snapshot 1 must see a=2
  // (it serializes just after v1), even though a later writer sets a=3.
  log.push_back(htm::TxRecord{.begin_version = 0,
                              .commit_version = 1,
                              .writer = true,
                              .reads = {},
                              .writes = {{&word_a, 2}}});
  log.push_back(htm::TxRecord{.begin_version = 1,
                              .commit_version = 1,
                              .writer = false,
                              .reads = {{&word_a, 2}},
                              .writes = {}});
  log.push_back(htm::TxRecord{.begin_version = 1,
                              .commit_version = 2,
                              .writer = true,
                              .reads = {{&word_a, 2}},
                              .writes = {{&word_a, 3}}});
  const OpacityReport report = verify_opacity({&log}, {{&word_a, 1}});
  EXPECT_TRUE(report.ok()) << to_string(report.violations.front());
}

TEST(Opacity, UnsnapshottedWordsAdoptFirstReadValue) {
  const std::uint64_t word_a = 0;
  htm::TxLog log;
  log.push_back(htm::TxRecord{.begin_version = 0,
                              .commit_version = 0,
                              .writer = false,
                              .reads = {{&word_a, 123}},
                              .writes = {}});
  // No snapshot entry for word_a: the first sighting defines the model.
  const OpacityReport report = verify_opacity({&log}, {});
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.reads_checked, 1u);
}

// ------------------------------------------- broken-TM acceptance gates ----

// The defect skips commit-time read-set validation, so a transaction whose
// read was overwritten mid-flight publishes anyway — a lost update. This is
// the deterministic version of the acceptance criterion; the property
// harness (property_test.cpp) proves the same via random exploration.
TEST(OpacityGate, CatchesSkipCommitValidationDefect) {
  htm::SoftHtm tm(htm::SoftHtm::Config{
      .defect = htm::SoftHtm::Defect::kSkipCommitValidation});
  htm::SoftHtm::ThreadContext a(tm);
  htm::SoftHtm::ThreadContext b(tm);
  htm::TxLog log_a;
  htm::TxLog log_b;
  a.set_tx_log(&log_a);
  b.set_tx_log(&log_b);
  htm::TmWord w{0};
  htm::TmWord y{0};
  MemorySnapshot initial;
  snapshot_words(initial, &w, 1);
  snapshot_words(initial, &y, 1);

  const htm::AbortStatus s = a.attempt([&](htm::SoftHtm::Tx& tx) {
    const std::uint64_t v = tx.read(w);
    // B commits w=7 while A is speculating on the old value.
    const htm::AbortStatus sb =
        b.attempt([&](htm::SoftHtm::Tx& txb) { txb.write(w, 7); });
    ASSERT_TRUE(committed(sb));
    tx.write(y, v + 1);  // carries the doomed read into a published write
  });
  ASSERT_TRUE(committed(s)) << "the broken TM must NOT detect the conflict";

  const OpacityReport report = verify_opacity({&log_a, &log_b}, initial);
  ASSERT_FALSE(report.ok()) << "the checker must flag the zombie commit";
  EXPECT_EQ(report.violations.front().kind, ViolationKind::kStaleRead);
}

TEST(OpacityGate, SameInterleavingOnHealthyTmIsRejectedByTheTm) {
  htm::SoftHtm tm;  // Defect::kNone
  htm::SoftHtm::ThreadContext a(tm);
  htm::SoftHtm::ThreadContext b(tm);
  htm::TxLog log_a;
  htm::TxLog log_b;
  a.set_tx_log(&log_a);
  b.set_tx_log(&log_b);
  htm::TmWord w{0};
  htm::TmWord y{0};
  MemorySnapshot initial;
  snapshot_words(initial, &w, 1);
  snapshot_words(initial, &y, 1);

  const htm::AbortStatus s = a.attempt([&](htm::SoftHtm::Tx& tx) {
    const std::uint64_t v = tx.read(w);
    const htm::AbortStatus sb =
        b.attempt([&](htm::SoftHtm::Tx& txb) { txb.write(w, 7); });
    ASSERT_TRUE(committed(sb));
    tx.write(y, v + 1);
  });
  EXPECT_FALSE(committed(s)) << "a healthy TM aborts the doomed transaction";
  const OpacityReport report = verify_opacity({&log_a, &log_b}, initial);
  EXPECT_TRUE(report.ok()) << "only B committed; the history is clean";
  EXPECT_EQ(report.transactions_checked, 1u);
}

TEST(OpacityGate, SkipReadValidationDefectBreaksSnapshots) {
  // With per-read validation off, a reader can observe x and y from
  // DIFFERENT snapshots and still commit read-only; the replay flags the
  // mixed read set.
  htm::SoftHtm tm(htm::SoftHtm::Config{
      .defect = htm::SoftHtm::Defect::kSkipReadValidation});
  htm::SoftHtm::ThreadContext a(tm);
  htm::SoftHtm::ThreadContext b(tm);
  htm::TxLog log_a;
  htm::TxLog log_b;
  a.set_tx_log(&log_a);
  b.set_tx_log(&log_b);
  htm::TmWord x{1};
  htm::TmWord y{1};
  MemorySnapshot initial;
  snapshot_words(initial, &x, 1);
  snapshot_words(initial, &y, 1);

  const htm::AbortStatus s = a.attempt([&](htm::SoftHtm::Tx& tx) {
    (void)tx.read(x);  // old snapshot: x=1
    const htm::AbortStatus sb = b.attempt([&](htm::SoftHtm::Tx& txb) {
      txb.write(x, 2);
      txb.write(y, 2);
    });
    ASSERT_TRUE(committed(sb));
    (void)tx.read(y);  // new snapshot: y=2 — inconsistent, not detected
  });
  ASSERT_TRUE(committed(s));
  const OpacityReport report = verify_opacity({&log_a, &log_b}, initial);
  EXPECT_FALSE(report.ok()) << "mixed-snapshot read set must be flagged";
}

TEST(OpacityGate, CommitValidationGuardsReadsOnBothSidesOfThePromotion) {
  // The doomed read is taken in Tier 0 (signature + replay log only), the
  // read set then crosses the promotion boundary, and only commit-time
  // validation can catch the stale value. On a healthy TM the cross-tier
  // commit must abort; with kSkipCommitValidation the zombie publishes and
  // the offline replay must flag the stale read — proving the Tier-0 log
  // carries enough to validate reads made before the exact index existed.
  for (const bool broken : {false, true}) {
    htm::SoftHtm tm(htm::SoftHtm::Config{
        .max_read_set = 8,
        .defect = broken ? htm::SoftHtm::Defect::kSkipCommitValidation
                         : htm::SoftHtm::Defect::kNone});
    htm::SoftHtm::ThreadContext a(tm);
    htm::SoftHtm::ThreadContext b(tm);
    htm::TxLog log_a;
    htm::TxLog log_b;
    a.set_tx_log(&log_a);
    b.set_tx_log(&log_b);
    htm::TmWord w{0};
    htm::TmWord y{0};
    std::vector<htm::TmWord> fill(7);
    MemorySnapshot initial;
    snapshot_words(initial, &w, 1);
    snapshot_words(initial, &y, 1);
    snapshot_words(initial, fill.data(), fill.size());

    const htm::AbortStatus s = a.attempt([&](htm::SoftHtm::Tx& tx) {
      const std::uint64_t v = tx.read(w);  // Tier-0 read, about to go stale
      const htm::AbortStatus sb =
          b.attempt([&](htm::SoftHtm::Tx& txb) { txb.write(w, 7); });
      ASSERT_TRUE(committed(sb));
      for (auto& f : fill) (void)tx.read(f);  // fills the 8-slot log
      (void)tx.read(fill[0]);                 // logged read 9: promotes
      tx.write(y, v + 1);  // carries the doomed read into a published write
    });
    EXPECT_EQ(a.read_promotions_capacity(), 1u)
        << "the interleaving must actually cross the tier boundary";
    const OpacityReport report = verify_opacity({&log_a, &log_b}, initial);
    if (broken) {
      ASSERT_TRUE(committed(s)) << "the broken TM must NOT detect the conflict";
      ASSERT_FALSE(report.ok()) << "the checker must flag the zombie commit";
      EXPECT_EQ(report.violations.front().kind, ViolationKind::kStaleRead);
    } else {
      EXPECT_FALSE(committed(s))
          << "a healthy TM validates the Tier-0 read at commit and aborts";
      EXPECT_TRUE(report.ok()) << to_string(report.violations.front());
    }
  }
}

}  // namespace
}  // namespace seer::check
