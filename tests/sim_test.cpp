// Tests for the machine simulator: event queue, simulated locks, conflict
// predicates, and end-to-end Machine behaviour on synthetic workloads with
// controlled conflict/capacity structure (including failure injection).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/machine.hpp"
#include "sim/sim_lock.hpp"
#include "sim/workload.hpp"

namespace seer::sim {
namespace {

// --------------------------------------------------------- EventQueue ------

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  Event a;
  a.time = 30;
  Event b;
  b.time = 10;
  Event c;
  c.time = 20;
  q.push(a);
  q.push(b);
  q.push(c);
  EXPECT_EQ(q.pop().time, 10u);
  EXPECT_EQ(q.pop().time, 20u);
  EXPECT_EQ(q.pop().time, 30u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, TieBreaksByInsertionOrder) {
  EventQueue q;
  for (std::uint32_t i = 0; i < 10; ++i) {
    Event e;
    e.time = 5;
    e.thread = i;
    q.push(e);
  }
  for (std::uint32_t i = 0; i < 10; ++i) {
    EXPECT_EQ(q.pop().thread, i) << "FIFO among same-time events";
  }
}

TEST(EventQueue, SizeTracksContents) {
  EventQueue q;
  EXPECT_EQ(q.size(), 0u);
  q.push(Event{});
  q.push(Event{});
  EXPECT_EQ(q.size(), 2u);
  (void)q.pop();
  EXPECT_EQ(q.size(), 1u);
}

// ------------------------------------------------------------ SimLock ------

TEST(SimLock, TryAcquireAndRelease) {
  SimLock l;
  EXPECT_FALSE(l.is_locked());
  EXPECT_TRUE(l.try_acquire(3));
  EXPECT_TRUE(l.is_locked());
  EXPECT_EQ(l.owner(), 3u);
  EXPECT_FALSE(l.try_acquire(4));
  const auto out = l.release(3);
  EXPECT_FALSE(out.granted.has_value());
  EXPECT_FALSE(l.is_locked());
}

TEST(SimLock, FifoHandover) {
  SimLock l;
  ASSERT_TRUE(l.try_acquire(0));
  l.enqueue(1);
  l.enqueue(2);
  auto out = l.release(0);
  ASSERT_TRUE(out.granted.has_value());
  EXPECT_EQ(*out.granted, 1u);
  EXPECT_TRUE(l.is_locked()) << "handover keeps the lock held";
  EXPECT_TRUE(out.notified.empty()) << "no free notification on handover";
  out = l.release(1);
  EXPECT_EQ(*out.granted, 2u);
  out = l.release(2);
  EXPECT_FALSE(out.granted.has_value());
}

TEST(SimLock, SubscribersNotifiedOnlyWhenFree) {
  SimLock l;
  ASSERT_TRUE(l.try_acquire(0));
  l.subscribe_free(5, 42);
  l.subscribe_free(6, 43);
  l.enqueue(1);
  auto out = l.release(0);  // handover to 1 — no notifications
  EXPECT_TRUE(out.notified.empty());
  out = l.release(1);  // now actually free
  ASSERT_EQ(out.notified.size(), 2u);
  EXPECT_EQ(out.notified[0].thread, 5u);
  EXPECT_EQ(out.notified[0].gen, 42u);
  EXPECT_EQ(out.notified[1].thread, 6u);
}

TEST(SimLock, SubscriptionsAreOneShot) {
  SimLock l;
  ASSERT_TRUE(l.try_acquire(0));
  l.subscribe_free(5, 1);
  (void)l.release(0);
  ASSERT_TRUE(l.try_acquire(0));
  const auto out = l.release(0);
  EXPECT_TRUE(out.notified.empty());
}

TEST(SimLock, CancelWaitRemovesFromQueue) {
  SimLock l;
  ASSERT_TRUE(l.try_acquire(0));
  l.enqueue(1);
  l.enqueue(2);
  l.cancel_wait(1);
  const auto out = l.release(0);
  EXPECT_EQ(*out.granted, 2u);
}

// --------------------------------------------------------- TxInstance ------

TxInstance make_inst(std::vector<std::uint32_t> reads,
                     std::vector<std::uint32_t> writes) {
  TxInstance i;
  i.reads = std::move(reads);
  i.writes = std::move(writes);
  i.duration = 100;
  return i;
}

TEST(TxInstance, FootprintCountsUnion) {
  EXPECT_EQ(make_inst({1, 2, 3}, {3, 4}).footprint_lines(), 4u);
  EXPECT_EQ(make_inst({}, {}).footprint_lines(), 0u);
  EXPECT_EQ(make_inst({1, 2}, {}).footprint_lines(), 2u);
  EXPECT_EQ(make_inst({}, {7}).footprint_lines(), 1u);
  EXPECT_EQ(make_inst({1, 2, 3}, {1, 2, 3}).footprint_lines(), 3u);
}

TEST(TxInstance, WriteConflictSemantics) {
  const auto w_hits_r = make_inst({}, {5});
  const auto reader = make_inst({5}, {});
  EXPECT_TRUE(write_conflicts(w_hits_r, reader));
  EXPECT_FALSE(write_conflicts(reader, w_hits_r)) << "readers do not invalidate";
  EXPECT_TRUE(instances_conflict(w_hits_r, reader));
  EXPECT_TRUE(instances_conflict(reader, w_hits_r)) << "symmetric";
}

TEST(TxInstance, DisjointFootprintsNeverConflict) {
  const auto a = make_inst({1, 2}, {3});
  const auto b = make_inst({4, 5}, {6});
  EXPECT_FALSE(instances_conflict(a, b));
}

TEST(TxInstance, WriteWriteConflicts) {
  const auto a = make_inst({}, {10, 20});
  const auto b = make_inst({}, {20, 30});
  EXPECT_TRUE(instances_conflict(a, b));
}

// ------------------------------------------------- synthetic workloads -----

// A fully controllable workload for machine tests.
class SyntheticWorkload final : public Workload {
 public:
  struct Params {
    std::string name = "synthetic";
    std::uint64_t duration = 1000;
    std::uint64_t think = 200;
    std::size_t n_types = 2;
    // Line sets per type; every instance of a type uses exactly these.
    std::vector<std::vector<std::uint32_t>> reads;
    std::vector<std::vector<std::uint32_t>> writes;
    // Offset every line by thread id so instances on different threads are
    // disjoint (used to build genuinely conflict-free workloads).
    bool per_thread_lines = false;
  };

  explicit SyntheticWorkload(Params p) : p_(std::move(p)) {
    type_names_.reserve(p_.n_types);
    for (std::size_t i = 0; i < p_.n_types; ++i) {
      type_names_.push_back("t" + std::to_string(i));
    }
  }

  const std::string& name() const override { return p_.name; }
  std::size_t n_types() const override { return p_.n_types; }
  const std::string& type_name(core::TxTypeId t) const override {
    return type_names_[static_cast<std::size_t>(t)];
  }

  void next(core::ThreadId thread, double, util::Xoshiro256& rng,
            TxInstance& out) override {
    const auto type = static_cast<std::size_t>(rng.below(p_.n_types));
    out.type = static_cast<core::TxTypeId>(type);
    out.duration = p_.duration;
    out.reads = type < p_.reads.size() ? p_.reads[type] : std::vector<std::uint32_t>{};
    out.writes =
        type < p_.writes.size() ? p_.writes[type] : std::vector<std::uint32_t>{};
    if (p_.per_thread_lines) {
      const std::uint32_t offset = 100000u * (thread + 1);
      for (auto& l : out.reads) l += offset;
      for (auto& l : out.writes) l += offset;
    }
  }

  std::uint64_t think_time(core::ThreadId, util::Xoshiro256&) override {
    return p_.think;
  }

 private:
  Params p_;
  std::vector<std::string> type_names_;
};

SyntheticWorkload::Params no_conflict_params() {
  SyntheticWorkload::Params p;
  p.n_types = 2;
  // Per-thread disjoint footprints: no pair of concurrent instances can
  // ever conflict (same-thread instances never coexist).
  p.reads = {{1}, {2}};
  p.writes = {{10}, {20}};
  p.per_thread_lines = true;
  return p;
}

// Type 0 self-conflicts on one hot line; type 1 is read-only and clean —
// gives the inference a learnable contrast even at 8 threads.
SyntheticWorkload::Params hot_type_params() {
  SyntheticWorkload::Params p;
  p.n_types = 2;
  p.reads = {{1}, {2, 3}};
  p.writes = {{99}, {}};
  return p;
}

SyntheticWorkload::Params all_conflict_params() {
  SyntheticWorkload::Params p;
  p.n_types = 2;
  // Everyone writes the same line: every coexistence is a conflict candidate.
  p.reads = {{1}, {2}};
  p.writes = {{99}, {99}};
  return p;
}

MachineConfig base_config(rt::PolicyKind kind, std::size_t threads,
                          std::uint64_t txs = 400, std::uint64_t seed = 3) {
  MachineConfig cfg;
  cfg.n_threads = threads;
  cfg.txs_per_thread = txs;
  cfg.policy.kind = kind;
  cfg.seed = seed;
  return cfg;
}

// ------------------------------------------------------------ Machine ------

TEST(Machine, AllTransactionsAccounted) {
  const auto cfg = base_config(rt::PolicyKind::kRtm, 4);
  const MachineStats s =
      run_machine(cfg, std::make_unique<SyntheticWorkload>(no_conflict_params()));
  EXPECT_EQ(s.commits, 4u * 400u);
  std::uint64_t by_mode = 0;
  for (auto c : s.commits_by_mode) by_mode += c;
  EXPECT_EQ(by_mode, s.commits);
  std::uint64_t by_type = 0;
  for (auto c : s.commits_by_type) by_type += c;
  EXPECT_EQ(by_type, s.commits);
  EXPECT_GT(s.makespan, 0u);
  EXPECT_GT(s.serial_work, 0u);
}

TEST(Machine, DeterministicForSameSeed) {
  const auto cfg = base_config(rt::PolicyKind::kSeer, 6);
  const MachineStats a =
      run_machine(cfg, std::make_unique<SyntheticWorkload>(all_conflict_params()));
  const MachineStats b =
      run_machine(cfg, std::make_unique<SyntheticWorkload>(all_conflict_params()));
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.commits, b.commits);
  EXPECT_EQ(a.aborts(), b.aborts());
  EXPECT_EQ(a.commits_by_mode, b.commits_by_mode);
}

TEST(Machine, DifferentSeedsDiverge) {
  const auto wl = [] {
    return std::make_unique<SyntheticWorkload>(all_conflict_params());
  };
  auto cfg = base_config(rt::PolicyKind::kRtm, 6);
  const MachineStats a = run_machine(cfg, wl());
  cfg.seed = 999;
  const MachineStats b = run_machine(cfg, wl());
  EXPECT_NE(a.makespan, b.makespan);
}

TEST(Machine, NoConflictWorkloadScalesAndNeverAborts) {
  auto cfg = base_config(rt::PolicyKind::kRtm, 4);
  cfg.p_other_abort = 0.0;
  const MachineStats s =
      run_machine(cfg, std::make_unique<SyntheticWorkload>(no_conflict_params()));
  EXPECT_EQ(s.aborts(), 0u);
  EXPECT_GT(s.speedup(), 3.0);
  EXPECT_DOUBLE_EQ(s.mode_fraction(rt::CommitMode::kHtmNoLocks), 1.0);
}

TEST(Machine, SingleThreadSpeedupNearOne) {
  auto cfg = base_config(rt::PolicyKind::kRtm, 1);
  cfg.p_other_abort = 0.0;
  const MachineStats s =
      run_machine(cfg, std::make_unique<SyntheticWorkload>(no_conflict_params()));
  EXPECT_LE(s.speedup(), 1.0) << "TM overheads cannot beat sequential";
  EXPECT_GT(s.speedup(), 0.85);
}

TEST(Machine, ConflictsProduceAbortsAndFallbacks) {
  auto cfg = base_config(rt::PolicyKind::kRtm, 8, 600);
  const MachineStats s =
      run_machine(cfg, std::make_unique<SyntheticWorkload>(all_conflict_params()));
  EXPECT_GT(s.aborts_by_cause[static_cast<std::size_t>(htm::AbortCause::kConflict)], 0u);
  EXPECT_GT(s.mode_fraction(rt::CommitMode::kSglFallback), 0.0);
  EXPECT_EQ(s.commits, 8u * 600u) << "every transaction still completes";
}

TEST(Machine, SglPolicyIsFullySerialized) {
  const auto cfg = base_config(rt::PolicyKind::kSgl, 4);
  const MachineStats s =
      run_machine(cfg, std::make_unique<SyntheticWorkload>(all_conflict_params()));
  EXPECT_DOUBLE_EQ(s.mode_fraction(rt::CommitMode::kSglFallback), 1.0);
  EXPECT_EQ(s.hw_attempts, 0u);
  EXPECT_LT(s.speedup(), 1.0);
}

TEST(Machine, OtherAbortInjectionAlwaysAborting) {
  // Failure injection: every attempt suffers a background abort, so every
  // transaction must reach the SGL and the run must still terminate.
  auto cfg = base_config(rt::PolicyKind::kRtm, 2, 50);
  cfg.p_other_abort = 1.0;
  const MachineStats s =
      run_machine(cfg, std::make_unique<SyntheticWorkload>(no_conflict_params()));
  EXPECT_EQ(s.commits, 100u);
  EXPECT_DOUBLE_EQ(s.mode_fraction(rt::CommitMode::kSglFallback), 1.0);
  EXPECT_GT(s.aborts_by_cause[static_cast<std::size_t>(htm::AbortCause::kOther)], 0u);
}

TEST(Machine, TinyWaitBudgetStillTerminates) {
  auto cfg = base_config(rt::PolicyKind::kSeer, 8, 300);
  cfg.wait_budget = 1;
  const MachineStats s =
      run_machine(cfg, std::make_unique<SyntheticWorkload>(all_conflict_params()));
  EXPECT_EQ(s.commits, 8u * 300u);
}

// Capacity behaviour -------------------------------------------------------

SyntheticWorkload::Params big_footprint_params(std::uint32_t lines) {
  SyntheticWorkload::Params p;
  p.n_types = 1;
  p.duration = 2000;
  // Read-only bulk footprint: capacity pressure without any conflicts, so
  // the tests isolate the capacity/core-lock axis.
  std::vector<std::uint32_t> reads;
  for (std::uint32_t i = 0; i < lines; ++i) reads.push_back(1000 + i);
  p.reads = {reads};
  p.writes = {{}};
  return p;
}

TEST(Machine, NoCapacityAbortsWithoutSmtSharing) {
  // 4 threads on 4 physical cores: nobody shares, and the footprint (300)
  // fits the full per-core budget (448).
  auto cfg = base_config(rt::PolicyKind::kRtm, 4, 200);
  cfg.p_other_abort = 0.0;
  const MachineStats s =
      run_machine(cfg, std::make_unique<SyntheticWorkload>(big_footprint_params(300)));
  EXPECT_EQ(s.aborts_by_cause[static_cast<std::size_t>(htm::AbortCause::kCapacity)], 0u);
}

TEST(Machine, SmtSharingTriggersCapacityAborts) {
  // 8 threads on 4 cores: siblings halve the budget; 300 > 224.
  auto cfg = base_config(rt::PolicyKind::kRtm, 8, 200);
  cfg.p_other_abort = 0.0;
  const MachineStats s =
      run_machine(cfg, std::make_unique<SyntheticWorkload>(big_footprint_params(300)));
  EXPECT_GT(s.aborts_by_cause[static_cast<std::size_t>(htm::AbortCause::kCapacity)], 0u);
}

TEST(Machine, SeerCoreLocksAbsorbCapacityPressure) {
  auto cfg = base_config(rt::PolicyKind::kSeer, 8, 400);
  cfg.p_other_abort = 0.0;
  const MachineStats s =
      run_machine(cfg, std::make_unique<SyntheticWorkload>(big_footprint_params(300)));
  const double core_modes =
      s.mode_fraction(rt::CommitMode::kHtmCoreLock) +
      s.mode_fraction(rt::CommitMode::kHtmTxAndCore);
  EXPECT_GT(core_modes, 0.05) << "core locks should carry real traffic";
  EXPECT_LT(s.mode_fraction(rt::CommitMode::kSglFallback), 0.05);
}

TEST(Machine, SeerBeatsRtmUnderSmtCapacityPressure) {
  auto seer_cfg = base_config(rt::PolicyKind::kSeer, 8, 400);
  seer_cfg.p_other_abort = 0.0;
  auto rtm_cfg = base_config(rt::PolicyKind::kRtm, 8, 400);
  rtm_cfg.p_other_abort = 0.0;
  const MachineStats seer = run_machine(
      seer_cfg, std::make_unique<SyntheticWorkload>(big_footprint_params(300)));
  const MachineStats rtm = run_machine(
      rtm_cfg, std::make_unique<SyntheticWorkload>(big_footprint_params(300)));
  EXPECT_GT(seer.speedup(), rtm.speedup());
}

TEST(Machine, OversizedTransactionsAlwaysFallBack) {
  // Footprint beyond even the full per-core budget: deterministic capacity
  // failure, every instance ends up on the SGL.
  auto cfg = base_config(rt::PolicyKind::kRtm, 2, 60);
  cfg.p_other_abort = 0.0;
  const MachineStats s =
      run_machine(cfg, std::make_unique<SyntheticWorkload>(big_footprint_params(600)));
  EXPECT_DOUBLE_EQ(s.mode_fraction(rt::CommitMode::kSglFallback), 1.0);
}

// Seer-specific end-to-end -------------------------------------------------

TEST(Machine, SeerLearnsSelfConflictAndSerializes) {
  auto cfg = base_config(rt::PolicyKind::kSeer, 8, 1500, 17);
  cfg.policy.seer.update_period = 256;
  const MachineStats s =
      run_machine(cfg, std::make_unique<SyntheticWorkload>(hot_type_params()));
  EXPECT_GT(s.scheme_rebuilds, 0u);
  ASSERT_EQ(s.final_scheme.size(), 2u);
  // Type 0 writes line 99; the scheme must connect at least one hot pair.
  std::size_t edges = 0;
  for (const auto& row : s.final_scheme) edges += row.size();
  EXPECT_GT(edges, 0u) << "inference failed to find the planted conflict";
  EXPECT_GT(s.mode_fraction(rt::CommitMode::kHtmTxLocks) +
                s.mode_fraction(rt::CommitMode::kHtmTxAndCore),
            0.0);
}

TEST(Machine, SeerTxLockCensusPopulated) {
  auto cfg = base_config(rt::PolicyKind::kSeer, 8, 1500, 17);
  cfg.policy.seer.update_period = 256;
  const MachineStats s =
      run_machine(cfg, std::make_unique<SyntheticWorkload>(hot_type_params()));
  EXPECT_GT(s.txlock_fraction.count(), 0u);
  EXPECT_LE(s.txlock_fraction.percentile(1.0), 1.0);
}

TEST(Machine, RtmHasNoSeerArtifacts) {
  const auto cfg = base_config(rt::PolicyKind::kRtm, 4);
  const MachineStats s =
      run_machine(cfg, std::make_unique<SyntheticWorkload>(no_conflict_params()));
  EXPECT_EQ(s.scheme_rebuilds, 0u);
  EXPECT_TRUE(s.final_scheme.empty());
  EXPECT_EQ(s.txlock_fraction.count(), 0u);
}

// Every policy terminates with exact commit counts on a contended workload.
class MachinePolicyParam : public ::testing::TestWithParam<rt::PolicyKind> {};

TEST_P(MachinePolicyParam, ContendedRunCompletes) {
  const auto cfg = base_config(GetParam(), 8, 300);
  const MachineStats s =
      run_machine(cfg, std::make_unique<SyntheticWorkload>(all_conflict_params()));
  EXPECT_EQ(s.commits, 8u * 300u);
  for (std::size_t m = 0; m < s.commits_by_mode.size(); ++m) {
    EXPECT_LE(s.commits_by_mode[m], s.commits);
  }
  EXPECT_GT(s.speedup(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, MachinePolicyParam,
                         ::testing::Values(rt::PolicyKind::kHle, rt::PolicyKind::kRtm,
                                           rt::PolicyKind::kScm, rt::PolicyKind::kAts,
                                           rt::PolicyKind::kSgl, rt::PolicyKind::kSeer));

// Thread-count sweep: commits always exact, makespan monotone in work.
class MachineThreadParam : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MachineThreadParam, ExactCommitsAtEveryWidth) {
  const std::size_t threads = GetParam();
  const auto cfg = base_config(rt::PolicyKind::kSeer, threads, 200);
  const MachineStats s =
      run_machine(cfg, std::make_unique<SyntheticWorkload>(all_conflict_params()));
  EXPECT_EQ(s.commits, threads * 200u);
}

INSTANTIATE_TEST_SUITE_P(Widths, MachineThreadParam,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

// Physical bound: no scheduler can make N threads run more than N times the
// serial work rate (the simulator must conserve time).
class SpeedupBound : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SpeedupBound, NeverExceedsThreadCount) {
  const std::size_t threads = GetParam();
  for (auto kind : {rt::PolicyKind::kRtm, rt::PolicyKind::kScm,
                    rt::PolicyKind::kSeer, rt::PolicyKind::kOracle}) {
    const auto cfg = base_config(kind, threads, 300);
    const MachineStats s =
        run_machine(cfg, std::make_unique<SyntheticWorkload>(no_conflict_params()));
    EXPECT_LE(s.speedup(), static_cast<double>(threads) + 1e-9)
        << rt::to_string(kind) << " at " << threads << " threads";
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, SpeedupBound, ::testing::Values(1u, 2u, 4u, 8u));

}  // namespace
}  // namespace seer::sim
