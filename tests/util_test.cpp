// Unit and property tests for seer::util.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <thread>
#include <vector>

#include "util/cacheline.hpp"
#include "util/gaussian.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/small_vec.hpp"
#include "util/spinlock.hpp"
#include "util/stats.hpp"
#include "util/zipf.hpp"

namespace seer::util {
namespace {

// ---------------------------------------------------------------- RNG ------

TEST(SplitMix64, DeterministicAndDistinct) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t va = a.next();
    EXPECT_EQ(va, b.next());
    seen.insert(va);
  }
  EXPECT_EQ(seen.size(), 100u) << "collisions in the first 100 outputs";
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro256, Deterministic) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, BelowRespectsBound) {
  Xoshiro256 rng(3);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
  EXPECT_EQ(rng.below(0), 0u);
  EXPECT_EQ(rng.below(1), 0u);
}

TEST(Xoshiro256, RangeInclusive) {
  Xoshiro256 rng(5);
  bool hit_lo = false;
  bool hit_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.range(10, 13);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 13u);
    hit_lo |= (v == 10);
    hit_hi |= (v == 13);
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Xoshiro256, Uniform01HalfOpen) {
  Xoshiro256 rng(11);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Xoshiro256, BelowIsRoughlyUniform) {
  Xoshiro256 rng(13);
  constexpr std::uint64_t kBuckets = 8;
  std::array<int, kBuckets> counts{};
  constexpr int kN = 80000;
  for (int i = 0; i < kN; ++i) counts[rng.below(kBuckets)]++;
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), kN / 8.0, kN * 0.01);
  }
}

TEST(Xoshiro256, BernoulliExtremes) {
  Xoshiro256 rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Xoshiro256, BernoulliFrequency) {
  Xoshiro256 rng(19);
  int hits = 0;
  for (int i = 0; i < 50000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 50000.0, 0.3, 0.02);
}

TEST(Xoshiro256, SplitProducesIndependentStream) {
  Xoshiro256 parent(23);
  Xoshiro256 child = parent.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next() == child.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

// --------------------------------------------------------------- Zipf ------

TEST(Zipf, PmfSumsToOne) {
  const Zipf z(100, 0.8);
  double sum = 0.0;
  for (std::uint64_t k = 0; k < 100; ++k) sum += z.pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_EQ(z.pmf(100), 0.0);
}

TEST(Zipf, HeadIsHottest) {
  const Zipf z(50, 1.0);
  for (std::uint64_t k = 1; k < 50; ++k) {
    EXPECT_GE(z.pmf(k - 1), z.pmf(k)) << "pmf must be non-increasing in rank";
  }
}

TEST(Zipf, ZeroSkewIsUniform) {
  const Zipf z(64, 0.0);
  for (std::uint64_t k = 0; k < 64; ++k) {
    EXPECT_NEAR(z.pmf(k), 1.0 / 64.0, 1e-12);
  }
}

TEST(Zipf, HigherSkewConcentratesHead) {
  const Zipf mild(256, 0.5);
  const Zipf hot(256, 1.2);
  EXPECT_GT(hot.pmf(0), mild.pmf(0));
}

struct ZipfCase {
  std::uint64_t n;
  double s;
};

class ZipfParam : public ::testing::TestWithParam<ZipfCase> {};

TEST_P(ZipfParam, SamplesMatchPmf) {
  const auto [n, s] = GetParam();
  const Zipf z(n, s);
  Xoshiro256 rng(29);
  constexpr int kN = 60000;
  std::vector<int> counts(n, 0);
  for (int i = 0; i < kN; ++i) {
    const std::uint64_t k = z.sample(rng);
    ASSERT_LT(k, n);
    counts[k]++;
  }
  // Check the head frequencies against the pmf (the tail is too thin for a
  // tight bound at this sample size).
  for (std::uint64_t k = 0; k < std::min<std::uint64_t>(4, n); ++k) {
    EXPECT_NEAR(counts[k] / static_cast<double>(kN), z.pmf(k),
                5.0 * std::sqrt(z.pmf(k) / kN) + 0.005);
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, ZipfParam,
                         ::testing::Values(ZipfCase{2, 0.5}, ZipfCase{16, 0.0},
                                           ZipfCase{16, 0.99}, ZipfCase{256, 0.7},
                                           ZipfCase{1024, 1.2}));

// -------------------------------------------------------------- stats ------

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownMeanVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic population-variance example
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_NEAR(s.sample_variance(), 32.0 / 7.0, 1e-12);
}

TEST(RunningStats, MatchesDirectComputation) {
  Xoshiro256 rng(31);
  RunningStats s;
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform01() * 100.0 - 50.0;
    xs.push_back(x);
    s.add(x);
  }
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size());
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), var, 1e-7);
}

TEST(RunningStats, Reset) {
  RunningStats s;
  s.add(1.0);
  s.add(2.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(GeoMean, KnownValue) {
  GeoMean g;
  g.add(1.0);
  g.add(4.0);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  EXPECT_EQ(g.count(), 2u);
}

TEST(GeoMean, IgnoresNonPositive) {
  GeoMean g;
  g.add(0.0);
  g.add(-3.0);
  EXPECT_EQ(g.count(), 0u);
  EXPECT_EQ(g.value(), 0.0);
  g.add(8.0);
  EXPECT_DOUBLE_EQ(g.value(), 8.0);
}

TEST(PercentileSketch, InterpolatesBetweenRanks) {
  PercentileSketch p;
  for (double x : {10.0, 20.0, 30.0, 40.0}) p.add(x);
  EXPECT_DOUBLE_EQ(p.percentile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(p.percentile(1.0), 40.0);
  EXPECT_DOUBLE_EQ(p.percentile(0.5), 25.0);
  EXPECT_DOUBLE_EQ(p.percentile(1.0 / 3.0), 20.0);
  EXPECT_DOUBLE_EQ(p.mean(), 25.0);
}

TEST(PercentileSketch, EmptyAndClamped) {
  PercentileSketch p;
  EXPECT_EQ(p.percentile(0.5), 0.0);
  p.add(7.0);
  EXPECT_DOUBLE_EQ(p.percentile(-1.0), 7.0);
  EXPECT_DOUBLE_EQ(p.percentile(2.0), 7.0);
}

// ----------------------------------------------------------- gaussian ------

TEST(Gaussian, CdfKnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.959963985), 0.975, 1e-6);
  EXPECT_NEAR(normal_cdf(-1.959963985), 0.025, 1e-6);
  EXPECT_NEAR(normal_cdf(3.0), 0.99865, 1e-4);
}

TEST(Gaussian, QuantileKnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(normal_quantile(0.975), 1.959963985, 1e-6);
  EXPECT_NEAR(normal_quantile(0.8), 0.8416212, 1e-6);
}

class GaussianRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(GaussianRoundTrip, QuantileInvertsCdf) {
  const double p = GetParam();
  EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Grid, GaussianRoundTrip,
                         ::testing::Values(0.001, 0.01, 0.1, 0.3, 0.5, 0.7, 0.8,
                                           0.9, 0.99, 0.999));

TEST(Gaussian, QuantileMonotone) {
  double prev = normal_quantile(0.01);
  for (double p = 0.02; p < 1.0; p += 0.01) {
    const double q = normal_quantile(p);
    EXPECT_GT(q, prev);
    prev = q;
  }
}

TEST(Gaussian, PercentileDegenerateVariance) {
  EXPECT_DOUBLE_EQ(gaussian_percentile(0.4, 0.0, 0.8), 0.4);
  EXPECT_DOUBLE_EQ(gaussian_percentile(0.4, -1.0, 0.8), 0.4);  // clamped
}

TEST(Gaussian, PercentileMatchesFormula) {
  const double v = gaussian_percentile(2.0, 9.0, 0.975);
  EXPECT_NEAR(v, 2.0 + 3.0 * 1.959963985, 1e-5);
  // Below the median the percentile sits below the mean.
  EXPECT_LT(gaussian_percentile(2.0, 9.0, 0.2), 2.0);
}

TEST(Gaussian, ExtremePClamped) {
  EXPECT_TRUE(std::isfinite(normal_quantile(0.0)));
  EXPECT_TRUE(std::isfinite(normal_quantile(1.0)));
  EXPECT_LT(normal_quantile(0.0), -6.0);
  EXPECT_GT(normal_quantile(1.0), 6.0);
}

// ----------------------------------------------------------- SmallVec ------

TEST(SmallVec, BasicOps) {
  SmallVec<int, 4> v;
  EXPECT_TRUE(v.empty());
  v.push_back(3);
  v.push_back(1);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], 3);
  EXPECT_EQ(v.back(), 1);
  v.pop_back();
  EXPECT_EQ(v.size(), 1u);
  v.clear();
  EXPECT_TRUE(v.empty());
}

TEST(SmallVec, InitializerListAndEquality) {
  const SmallVec<int, 4> a{1, 2, 3};
  const SmallVec<int, 4> b{1, 2, 3};
  const SmallVec<int, 4> c{1, 2};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(SmallVec, TryPushRespectsCapacity) {
  SmallVec<int, 2> v;
  EXPECT_TRUE(v.try_push_back(1));
  EXPECT_TRUE(v.try_push_back(2));
  EXPECT_TRUE(v.full());
  EXPECT_FALSE(v.try_push_back(3));
  EXPECT_EQ(v.size(), 2u);
}

TEST(SmallVec, Contains) {
  const SmallVec<int, 4> v{5, 7};
  EXPECT_TRUE(v.contains(5));
  EXPECT_TRUE(v.contains(7));
  EXPECT_FALSE(v.contains(6));
}

TEST(SmallVec, IterationOrder) {
  SmallVec<int, 8> v;
  for (int i = 0; i < 8; ++i) v.push_back(i * i);
  int idx = 0;
  for (int x : v) {
    EXPECT_EQ(x, idx * idx);
    ++idx;
  }
}

// ----------------------------------------------------------- SpinLock ------

TEST(SpinLock, TryLockSemantics) {
  SpinLock l;
  EXPECT_FALSE(l.is_locked());
  EXPECT_TRUE(l.try_lock());
  EXPECT_TRUE(l.is_locked());
  EXPECT_FALSE(l.try_lock());
  l.unlock();
  EXPECT_FALSE(l.is_locked());
}

TEST(SpinLock, GuardReleases) {
  SpinLock l;
  {
    SpinGuard g(l);
    EXPECT_TRUE(l.is_locked());
  }
  EXPECT_FALSE(l.is_locked());
}

TEST(SpinLock, GuardEarlyRelease) {
  SpinLock l;
  SpinGuard g(l);
  g.release();
  EXPECT_FALSE(l.is_locked());
  g.release();  // idempotent
  EXPECT_FALSE(l.is_locked());
}

TEST(SpinLock, MutualExclusionUnderThreads) {
  SpinLock l;
  long counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  std::vector<std::thread> ts;
  ts.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        SpinGuard g(l);
        ++counter;
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIters);
}

// ------------------------------------------------------------ Padded ------

TEST(Padded, NoFalseSharingLayout) {
  Padded<int> arr[4];
  for (int i = 0; i < 3; ++i) {
    const auto a = reinterpret_cast<std::uintptr_t>(&arr[i].value);
    const auto b = reinterpret_cast<std::uintptr_t>(&arr[i + 1].value);
    EXPECT_GE(b - a, kCacheLineBytes);
  }
}

TEST(Padded, AccessorsWork) {
  Padded<int> p(41);
  EXPECT_EQ(*p, 41);
  *p += 1;
  EXPECT_EQ(p.value, 42);
}

// -------------------------------------------------------------- JSON ------

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(json::parse("null")->is_null());
  EXPECT_TRUE(json::parse("true")->boolean);
  EXPECT_FALSE(json::parse("false")->boolean);
  EXPECT_DOUBLE_EQ(json::parse("-12.5e2")->number, -1250.0);
  EXPECT_EQ(json::parse("\"hi\"")->string, "hi");
  EXPECT_EQ(json::parse("9007199254740993")->as_u64(), 9007199254740992ull)
      << "counters above 2^53 lose precision but stay finite";
  EXPECT_EQ(json::parse("18446744073709551615")->as_u64(),
            18446744073709551615ull)
      << "2^64-1 rounds up to 2^64; as_u64 saturates instead of overflowing";
}

TEST(Json, ParsesNestedDocument) {
  const auto v = json::parse(
      R"({"version": 1, "items": [{"x": 3, "name": "a"}, {"x": 4}], "ok": true})");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->u64("version"), 1u);
  const json::Value* items = v->find("items");
  ASSERT_NE(items, nullptr);
  ASSERT_EQ(items->array.size(), 2u);
  EXPECT_EQ(items->array[0].u64("x"), 3u);
  EXPECT_EQ(items->array[0].str("name"), "a");
  EXPECT_EQ(items->array[1].u64("x"), 4u);
  EXPECT_TRUE(v->find("ok")->boolean);
  EXPECT_EQ(v->find("absent"), nullptr);
  EXPECT_EQ(v->u64("absent", 7), 7u);
}

TEST(Json, PreservesObjectOrderAndKeepsFirstDuplicate) {
  const auto v = json::parse(R"({"b": 1, "a": 2, "b": 3})");
  ASSERT_TRUE(v.has_value());
  ASSERT_EQ(v->object.size(), 3u);
  EXPECT_EQ(v->object[0].first, "b");
  EXPECT_EQ(v->object[1].first, "a");
  EXPECT_EQ(v->u64("b"), 1u) << "lookup keeps the first occurrence";
}

TEST(Json, DecodesStringEscapes) {
  const auto v = json::parse(R"("a\"b\\c\n\tAé€")");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->string, "a\"b\\c\n\tA\xc3\xa9\xe2\x82\xac");
  const auto pair = json::parse(R"("😀")");  // surrogate pair
  ASSERT_TRUE(pair.has_value());
  EXPECT_EQ(pair->string, "\xf0\x9f\x98\x80");
}

TEST(Json, RejectsMalformedInputWithOffset) {
  std::string err;
  EXPECT_FALSE(json::parse("", &err).has_value());
  EXPECT_NE(err.find("offset"), std::string::npos) << err;
  EXPECT_FALSE(json::parse("{\"a\": }", &err).has_value());
  EXPECT_FALSE(json::parse("[1, 2", &err).has_value());
  EXPECT_FALSE(json::parse("{\"a\" 1}", &err).has_value());
  EXPECT_FALSE(json::parse("tru", &err).has_value());
  EXPECT_FALSE(json::parse("1 2", &err).has_value()) << "trailing garbage";
  EXPECT_FALSE(json::parse("\"unterminated", &err).has_value());
  EXPECT_FALSE(json::parse("01x", &err).has_value());
}

TEST(Json, RejectsRunawayNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  std::string err;
  EXPECT_FALSE(json::parse(deep, &err).has_value());
  EXPECT_NE(err.find("deep"), std::string::npos) << err;
  // 32 levels is comfortably inside the guard.
  std::string ok(32, '[');
  ok += "1";
  ok += std::string(32, ']');
  EXPECT_TRUE(json::parse(ok).has_value());
}

TEST(Json, ParseFileReportsMissingFile) {
  std::string err;
  EXPECT_FALSE(json::parse_file("/nonexistent/x.json", &err).has_value());
  EXPECT_NE(err.find("cannot open"), std::string::npos) << err;
}

}  // namespace
}  // namespace seer::util
