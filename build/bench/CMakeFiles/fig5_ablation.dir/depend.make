# Empty dependencies file for fig5_ablation.
# This may be replaced when dependencies are built.
