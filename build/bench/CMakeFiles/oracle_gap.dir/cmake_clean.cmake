file(REMOVE_RECURSE
  "CMakeFiles/oracle_gap.dir/oracle_gap.cpp.o"
  "CMakeFiles/oracle_gap.dir/oracle_gap.cpp.o.d"
  "oracle_gap"
  "oracle_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oracle_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
