# Empty dependencies file for oracle_gap.
# This may be replaced when dependencies are built.
