file(REMOVE_RECURSE
  "CMakeFiles/micro_htm.dir/micro_htm.cpp.o"
  "CMakeFiles/micro_htm.dir/micro_htm.cpp.o.d"
  "micro_htm"
  "micro_htm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_htm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
