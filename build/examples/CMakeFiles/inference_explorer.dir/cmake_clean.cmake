file(REMOVE_RECURSE
  "CMakeFiles/inference_explorer.dir/inference_explorer.cpp.o"
  "CMakeFiles/inference_explorer.dir/inference_explorer.cpp.o.d"
  "inference_explorer"
  "inference_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inference_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
