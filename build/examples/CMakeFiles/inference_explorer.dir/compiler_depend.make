# Empty compiler generated dependencies file for inference_explorer.
# This may be replaced when dependencies are built.
