file(REMOVE_RECURSE
  "CMakeFiles/seer_sim.dir/machine.cpp.o"
  "CMakeFiles/seer_sim.dir/machine.cpp.o.d"
  "CMakeFiles/seer_sim.dir/workload.cpp.o"
  "CMakeFiles/seer_sim.dir/workload.cpp.o.d"
  "libseer_sim.a"
  "libseer_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seer_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
