file(REMOVE_RECURSE
  "libseer_sim.a"
)
