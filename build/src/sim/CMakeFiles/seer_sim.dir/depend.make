# Empty dependencies file for seer_sim.
# This may be replaced when dependencies are built.
