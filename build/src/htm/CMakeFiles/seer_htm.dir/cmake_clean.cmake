file(REMOVE_RECURSE
  "CMakeFiles/seer_htm.dir/soft_htm.cpp.o"
  "CMakeFiles/seer_htm.dir/soft_htm.cpp.o.d"
  "libseer_htm.a"
  "libseer_htm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seer_htm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
