file(REMOVE_RECURSE
  "libseer_htm.a"
)
