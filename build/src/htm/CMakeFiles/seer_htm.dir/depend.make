# Empty dependencies file for seer_htm.
# This may be replaced when dependencies are built.
