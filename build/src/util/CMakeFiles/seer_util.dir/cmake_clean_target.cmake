file(REMOVE_RECURSE
  "libseer_util.a"
)
