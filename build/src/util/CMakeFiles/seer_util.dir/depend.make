# Empty dependencies file for seer_util.
# This may be replaced when dependencies are built.
