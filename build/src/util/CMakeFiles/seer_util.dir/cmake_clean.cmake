file(REMOVE_RECURSE
  "CMakeFiles/seer_util.dir/gaussian.cpp.o"
  "CMakeFiles/seer_util.dir/gaussian.cpp.o.d"
  "CMakeFiles/seer_util.dir/stats.cpp.o"
  "CMakeFiles/seer_util.dir/stats.cpp.o.d"
  "libseer_util.a"
  "libseer_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seer_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
