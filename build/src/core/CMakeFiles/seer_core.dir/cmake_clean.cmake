file(REMOVE_RECURSE
  "CMakeFiles/seer_core.dir/lock_scheme.cpp.o"
  "CMakeFiles/seer_core.dir/lock_scheme.cpp.o.d"
  "CMakeFiles/seer_core.dir/seer_scheduler.cpp.o"
  "CMakeFiles/seer_core.dir/seer_scheduler.cpp.o.d"
  "libseer_core.a"
  "libseer_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seer_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
