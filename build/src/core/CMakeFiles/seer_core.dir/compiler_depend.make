# Empty compiler generated dependencies file for seer_core.
# This may be replaced when dependencies are built.
