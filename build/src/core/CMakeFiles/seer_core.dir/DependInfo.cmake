
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/lock_scheme.cpp" "src/core/CMakeFiles/seer_core.dir/lock_scheme.cpp.o" "gcc" "src/core/CMakeFiles/seer_core.dir/lock_scheme.cpp.o.d"
  "/root/repo/src/core/seer_scheduler.cpp" "src/core/CMakeFiles/seer_core.dir/seer_scheduler.cpp.o" "gcc" "src/core/CMakeFiles/seer_core.dir/seer_scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/seer_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
