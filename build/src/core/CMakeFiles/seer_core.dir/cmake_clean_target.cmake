file(REMOVE_RECURSE
  "libseer_core.a"
)
