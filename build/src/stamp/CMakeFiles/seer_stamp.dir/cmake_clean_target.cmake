file(REMOVE_RECURSE
  "libseer_stamp.a"
)
