file(REMOVE_RECURSE
  "CMakeFiles/seer_stamp.dir/spec.cpp.o"
  "CMakeFiles/seer_stamp.dir/spec.cpp.o.d"
  "CMakeFiles/seer_stamp.dir/workloads.cpp.o"
  "CMakeFiles/seer_stamp.dir/workloads.cpp.o.d"
  "libseer_stamp.a"
  "libseer_stamp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seer_stamp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
