# Empty dependencies file for seer_stamp.
# This may be replaced when dependencies are built.
