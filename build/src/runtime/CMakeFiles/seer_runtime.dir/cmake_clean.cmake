file(REMOVE_RECURSE
  "CMakeFiles/seer_runtime.dir/policies.cpp.o"
  "CMakeFiles/seer_runtime.dir/policies.cpp.o.d"
  "CMakeFiles/seer_runtime.dir/threaded_executor.cpp.o"
  "CMakeFiles/seer_runtime.dir/threaded_executor.cpp.o.d"
  "libseer_runtime.a"
  "libseer_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seer_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
