# Empty dependencies file for seer_runtime.
# This may be replaced when dependencies are built.
