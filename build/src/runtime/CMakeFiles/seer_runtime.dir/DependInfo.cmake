
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/policies.cpp" "src/runtime/CMakeFiles/seer_runtime.dir/policies.cpp.o" "gcc" "src/runtime/CMakeFiles/seer_runtime.dir/policies.cpp.o.d"
  "/root/repo/src/runtime/threaded_executor.cpp" "src/runtime/CMakeFiles/seer_runtime.dir/threaded_executor.cpp.o" "gcc" "src/runtime/CMakeFiles/seer_runtime.dir/threaded_executor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/seer_core.dir/DependInfo.cmake"
  "/root/repo/build/src/htm/CMakeFiles/seer_htm.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/seer_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
