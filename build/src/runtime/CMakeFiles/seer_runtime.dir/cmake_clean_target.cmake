file(REMOVE_RECURSE
  "libseer_runtime.a"
)
