// Microbenchmarks of the SoftHtm software transactional backend.
#include <benchmark/benchmark.h>

#include <vector>

#include "htm/soft_htm.hpp"

namespace {

using namespace seer;

void BM_ReadOnlyTx(benchmark::State& state) {
  const auto n_reads = static_cast<std::size_t>(state.range(0));
  htm::SoftHtm tm;
  htm::SoftHtm::ThreadContext ctx(tm);
  std::vector<htm::TmWord> words(n_reads);
  for (auto _ : state) {
    std::uint64_t acc = 0;
    const auto s = ctx.attempt([&](htm::SoftHtm::Tx& tx) {
      for (auto& w : words) acc += tx.read(w);
    });
    benchmark::DoNotOptimize(acc);
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ReadOnlyTx)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_WriteTx(benchmark::State& state) {
  const auto n_writes = static_cast<std::size_t>(state.range(0));
  htm::SoftHtm tm;
  htm::SoftHtm::ThreadContext ctx(tm);
  std::vector<htm::TmWord> words(n_writes);
  std::uint64_t v = 0;
  for (auto _ : state) {
    const auto s = ctx.attempt([&](htm::SoftHtm::Tx& tx) {
      for (auto& w : words) tx.write(w, ++v);
    });
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WriteTx)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_ReadModifyWriteTx(benchmark::State& state) {
  htm::SoftHtm tm;
  htm::SoftHtm::ThreadContext ctx(tm);
  htm::TmWord counter{0};
  for (auto _ : state) {
    const auto s = ctx.attempt([&](htm::SoftHtm::Tx& tx) {
      tx.write(counter, tx.read(counter) + 1);
    });
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReadModifyWriteTx);

void BM_AbortRollback(benchmark::State& state) {
  htm::SoftHtm tm;
  htm::SoftHtm::ThreadContext ctx(tm);
  std::vector<htm::TmWord> words(8);
  for (auto _ : state) {
    const auto s = ctx.attempt([&](htm::SoftHtm::Tx& tx) {
      for (auto& w : words) tx.write(w, 1);
      tx.abort(0x01);
    });
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AbortRollback);

}  // namespace

BENCHMARK_MAIN();
