// Microbenchmarks of the SoftHtm software transactional backend.
//
// The multi-threaded variants (read-heavy, write-heavy, large-write-set,
// read-own-writes at 1/2/4/8 threads) isolate the per-access bookkeeping
// cost of the speculative hot path: every thread runs its own ThreadContext
// over its own disjoint words, so conflicts are (hash collisions aside)
// absent and ops/sec measures the TM's own overhead, not contention.
// EXPERIMENTS.md records the before/after numbers for the O(1) access-path
// rewrite; CI's bench-smoke job uploads this binary's JSON output.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "htm/soft_htm.hpp"

namespace {

using namespace seer;

void BM_ReadOnlyTx(benchmark::State& state) {
  const auto n_reads = static_cast<std::size_t>(state.range(0));
  htm::SoftHtm tm;
  htm::SoftHtm::ThreadContext ctx(tm);
  std::vector<htm::TmWord> words(n_reads);
  for (auto _ : state) {
    std::uint64_t acc = 0;
    const auto s = ctx.attempt([&](htm::SoftHtm::Tx& tx) {
      for (auto& w : words) acc += tx.read(w);
    });
    benchmark::DoNotOptimize(acc);
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ReadOnlyTx)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_WriteTx(benchmark::State& state) {
  const auto n_writes = static_cast<std::size_t>(state.range(0));
  htm::SoftHtm tm;
  htm::SoftHtm::ThreadContext ctx(tm);
  std::vector<htm::TmWord> words(n_writes);
  std::uint64_t v = 0;
  for (auto _ : state) {
    const auto s = ctx.attempt([&](htm::SoftHtm::Tx& tx) {
      for (auto& w : words) tx.write(w, ++v);
    });
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WriteTx)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_ReadModifyWriteTx(benchmark::State& state) {
  htm::SoftHtm tm;
  htm::SoftHtm::ThreadContext ctx(tm);
  htm::TmWord counter{0};
  for (auto _ : state) {
    const auto s = ctx.attempt([&](htm::SoftHtm::Tx& tx) {
      tx.write(counter, tx.read(counter) + 1);
    });
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReadModifyWriteTx);

void BM_AbortRollback(benchmark::State& state) {
  htm::SoftHtm tm;
  htm::SoftHtm::ThreadContext ctx(tm);
  std::vector<htm::TmWord> words(8);
  for (auto _ : state) {
    const auto s = ctx.attempt([&](htm::SoftHtm::Tx& tx) {
      for (auto& w : words) tx.write(w, 1);
      tx.abort(0x01);
    });
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AbortRollback);

// ------------------------------------------------- multi-threaded variants --
// One shared SoftHtm (shared clock + stripe table, as in any real embedding),
// per-thread contexts, per-thread disjoint words.

htm::SoftHtm& shared_tm() {
  static htm::SoftHtm tm;
  return tm;
}

// 256 reads of distinct words per transaction; read-only commit.
void BM_MtReadHeavy(benchmark::State& state) {
  constexpr std::size_t kWords = 256;
  htm::SoftHtm& tm = shared_tm();
  htm::SoftHtm::ThreadContext ctx(tm);
  std::vector<htm::TmWord> words(kWords);
  for (auto _ : state) {
    std::uint64_t acc = 0;
    const auto s = ctx.attempt([&](htm::SoftHtm::Tx& tx) {
      for (auto& w : words) acc += tx.read(w);
    });
    benchmark::DoNotOptimize(acc);
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations() * kWords);
}
BENCHMARK(BM_MtReadHeavy)->ThreadRange(1, 8)->UseRealTime();

// 64 writes to distinct words per transaction: the write-set dedup path.
void BM_MtWriteHeavy(benchmark::State& state) {
  constexpr std::size_t kWords = 64;
  htm::SoftHtm& tm = shared_tm();
  htm::SoftHtm::ThreadContext ctx(tm);
  std::vector<htm::TmWord> words(kWords);
  std::uint64_t v = 0;
  for (auto _ : state) {
    const auto s = ctx.attempt([&](htm::SoftHtm::Tx& tx) {
      for (auto& w : words) tx.write(w, ++v);
    });
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations() * kWords);
}
BENCHMARK(BM_MtWriteHeavy)->ThreadRange(1, 8)->UseRealTime();

// 256 distinct writes per transaction, near the modelled L1d write capacity.
void BM_MtLargeWriteSet(benchmark::State& state) {
  constexpr std::size_t kWords = 256;
  htm::SoftHtm& tm = shared_tm();
  htm::SoftHtm::ThreadContext ctx(tm);
  std::vector<htm::TmWord> words(kWords);
  std::uint64_t v = 0;
  for (auto _ : state) {
    const auto s = ctx.attempt([&](htm::SoftHtm::Tx& tx) {
      for (auto& w : words) tx.write(w, ++v);
    });
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations() * kWords);
}
BENCHMARK(BM_MtLargeWriteSet)->ThreadRange(1, 8)->UseRealTime();

// Buffer 64 writes, then read each written word 4 times: every read is
// satisfied from the write buffer (the read-own-writes probe).
void BM_MtReadOwnWrites(benchmark::State& state) {
  constexpr std::size_t kWords = 64;
  constexpr std::size_t kRereads = 4;
  htm::SoftHtm& tm = shared_tm();
  htm::SoftHtm::ThreadContext ctx(tm);
  std::vector<htm::TmWord> words(kWords);
  std::uint64_t v = 0;
  for (auto _ : state) {
    std::uint64_t acc = 0;
    const auto s = ctx.attempt([&](htm::SoftHtm::Tx& tx) {
      for (auto& w : words) tx.write(w, ++v);
      for (std::size_t r = 0; r < kRereads; ++r) {
        for (auto& w : words) acc += tx.read(w);
      }
    });
    benchmark::DoNotOptimize(acc);
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations() * kWords * kRereads);
}
BENCHMARK(BM_MtReadOwnWrites)->ThreadRange(1, 8)->UseRealTime();

// ------------------------------------------------ tier-boundary variants --
// The adaptive read-tracking boundary (DESIGN.md §10): transactions that do
// NOT stay in Tier 0. These price the worst cases the tiering introduces —
// a saturation-triggered promotion mid-transaction and a capacity-budget
// promotion every transaction — so a regression in promote_reads or the
// checkpoint path is as visible as one in the Tier-0 fast path.

// ~1024 distinct reads: the 1024-bit read signature saturates partway
// through (pop crosses 512 around read ~700), so every transaction pays one
// saturation checkpoint scan cascade, one promotion replay, and runs its
// tail reads through the exact index.
void BM_MtReadPromoteSaturation(benchmark::State& state) {
  constexpr std::size_t kWords = 1024;
  htm::SoftHtm& tm = shared_tm();
  htm::SoftHtm::ThreadContext ctx(tm);
  std::vector<htm::TmWord> words(kWords);
  for (auto _ : state) {
    std::uint64_t acc = 0;
    const auto s = ctx.attempt([&](htm::SoftHtm::Tx& tx) {
      for (auto& w : words) acc += tx.read(w);
    });
    benchmark::DoNotOptimize(acc);
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations() * kWords);
}
BENCHMARK(BM_MtReadPromoteSaturation)->ThreadRange(1, 8)->UseRealTime();

// Reads exactly at the capacity budget, then one re-read: the log hits the
// budget boundary and every transaction promotes (replay + dedup) without
// aborting — the capacity-edge price of staying signature-only up to the
// last possible read.
void BM_MtReadPromoteCapacityEdge(benchmark::State& state) {
  constexpr std::size_t kWords = 256;
  static htm::SoftHtm tm{htm::SoftHtm::Config{.max_read_set = kWords}};
  htm::SoftHtm::ThreadContext ctx(tm);
  std::vector<htm::TmWord> words(kWords);
  for (auto _ : state) {
    std::uint64_t acc = 0;
    const auto s = ctx.attempt([&](htm::SoftHtm::Tx& tx) {
      for (auto& w : words) acc += tx.read(w);
      acc += tx.read(words[0]);  // the budget-boundary read that promotes
    });
    benchmark::DoNotOptimize(acc);
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations() * (kWords + 1));
}
BENCHMARK(BM_MtReadPromoteCapacityEdge)->ThreadRange(1, 8)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
