// Microbenchmarks of the machine simulator: raw event throughput and
// whole-machine simulation rates (events and transactions per second).
#include <benchmark/benchmark.h>

#include "sim/event_queue.hpp"
#include "sim/machine.hpp"
#include "stamp/workloads.hpp"

namespace {

using namespace seer;

void BM_EventQueuePushPop(benchmark::State& state) {
  sim::EventQueue q;
  util::Xoshiro256 rng(3);
  // Keep a standing population, push one / pop one per iteration.
  for (int i = 0; i < 256; ++i) {
    sim::Event e;
    e.time = rng.below(100000);
    q.push(e);
  }
  for (auto _ : state) {
    sim::Event e;
    e.time = q.top().time + rng.below(1000);
    q.push(e);
    benchmark::DoNotOptimize(q.pop());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueuePushPop);

void BM_MachineRun(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  std::uint64_t total_commits = 0;
  for (auto _ : state) {
    sim::MachineConfig cfg;
    cfg.n_threads = threads;
    cfg.txs_per_thread = 500;
    cfg.policy.kind = rt::PolicyKind::kSeer;
    cfg.seed = 7;
    const auto stats =
        sim::run_machine(cfg, stamp::make_workload("intruder", threads));
    total_commits += stats.commits;
    benchmark::DoNotOptimize(stats.makespan);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(total_commits));
  state.SetLabel("items = simulated transactions");
}
BENCHMARK(BM_MachineRun)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_WorkloadSampling(benchmark::State& state) {
  const auto wl = stamp::make_workload("vacation-high", 8);
  util::Xoshiro256 rng(3);
  sim::TxInstance inst;
  for (auto _ : state) {
    wl->next(0, 0.5, rng, inst);
    benchmark::DoNotOptimize(inst.footprint_lines());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WorkloadSampling);

void BM_ConflictCheck(benchmark::State& state) {
  const auto wl = stamp::make_workload("yada", 8);
  util::Xoshiro256 rng(3);
  sim::TxInstance a;
  sim::TxInstance b;
  wl->next(0, 0.5, rng, a);
  wl->next(1, 0.5, rng, b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::instances_conflict(a, b));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConflictCheck);

}  // namespace

BENCHMARK_MAIN();
