// Figure 4 — "Overhead of Seer when profiling and calculating locks to
// acquire": a Seer variant that pays for ALL of its mechanisms (announce,
// active-table scans, periodic merge + inference, self-tuning) but never
// acquires any lock, shown relative to RTM at 1..8 threads. The paper
// reports a geometric-mean slowdown under 5%, at most 8%, and at most 4% on
// a low-contention hash-map microbenchmark — which is also reproduced here.
#include <cstdio>

#include "bench/runner.hpp"

namespace {

using namespace seer;
using bench::Options;

constexpr std::size_t kThreadCounts[] = {1, 2, 3, 4, 5, 6, 7, 8};

// The paper's §5.3 stress case: a small low-contention hash map (4k
// elements, 1k buckets) with short read-modify-write transactions — tiny
// transactions make fixed per-event instrumentation proportionally largest.
stamp::WorkloadSpec hashmap_spec() {
  stamp::WorkloadSpec w;
  w.name = "hashmap-4k";
  w.regions = {
      {.name = "buckets", .lines = 1024, .zipf_skew = 0.0},
      {.name = "elements", .lines = 4096, .zipf_skew = 0.0},
  };
  w.types = {
      {.name = "get",
       .duration_mean = 220,
       .duration_jitter = 0.25,
       .accesses = {{.region = 0, .reads = 1, .writes = 0},
                    {.region = 1, .reads = 2, .writes = 0}}},
      {.name = "put",
       .duration_mean = 300,
       .duration_jitter = 0.25,
       .accesses = {{.region = 0, .reads = 1, .writes = 0},
                    {.region = 1, .reads = 2, .writes = 1}}},
  };
  w.phases = {{.fraction = 1.0, .mix = {8, 2}}};
  w.think_mean = 150;
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = Options::parse(argc, argv);
  auto workloads = opts.selected();

  const rt::PolicyConfig profile_only = bench::seer_variant(false, false, false, true);
  const rt::PolicyConfig rtm = bench::policy_of(rt::PolicyKind::kRtm);
  const stamp::WorkloadInfo hm{"hashmap-4k", hashmap_spec, 8000};

  // Cells: the STAMP block [(ti, wi) × {Seer-profile, RTM}] followed by the
  // hash-map block [ti × {RTM, Seer-profile}].
  std::vector<bench::Cell> cells;
  for (std::size_t threads : kThreadCounts) {
    for (const auto& info : workloads) {
      cells.push_back({info, profile_only, threads, "Seer-profile-only"});
      cells.push_back({info, rtm, threads, {}});
    }
  }
  const std::size_t hm_base = cells.size();
  for (std::size_t threads : kThreadCounts) {
    cells.push_back({hm, rtm, threads, {}});
    cells.push_back({hm, profile_only, threads, "Seer-profile-only"});
  }
  const auto results = bench::run_cells(cells, opts);

  std::printf("=== Figure 4: overhead of profile-only Seer relative to RTM ===\n");
  std::printf("(Seer with statistics, inference and tuning enabled but no lock\n");
  std::printf(" acquisition; values < 1.0 are slowdown)\n\n");

  std::printf("%-6s  %10s\n", "thr", "geo-mean");
  double worst = 1.0;
  for (std::size_t ti = 0; ti < std::size(kThreadCounts); ++ti) {
    util::GeoMean ratio;
    for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
      const std::size_t idx = (ti * workloads.size() + wi) * 2;
      const double seer = results[idx].summary.speedup;
      const double base = results[idx + 1].summary.speedup;
      if (base > 0.0) ratio.add(seer / base);
    }
    std::printf("%-6zu  %10.3f\n", kThreadCounts[ti], ratio.value());
    if (ratio.value() < worst) worst = ratio.value();
  }
  std::printf("\nworst geo-mean point: %.1f%% slowdown  [paper: <5%% mean, <=8%% max]\n",
              100.0 * (1.0 - worst));

  // Low-contention hash map stress (paper: at most 4% overhead).
  std::printf("\n--- low-contention hash-map (4k elements / 1k buckets) ---\n");
  std::printf("%-6s  %10s  %10s  %10s\n", "thr", "RTM", "Seer-prof", "ratio");
  for (std::size_t ti = 0; ti < std::size(kThreadCounts); ++ti) {
    const double base = results[hm_base + 2 * ti].summary.speedup;
    const double seer = results[hm_base + 2 * ti + 1].summary.speedup;
    std::printf("%-6zu  %10.2f  %10.2f  %9.1f%%\n", kThreadCounts[ti], base, seer,
                100.0 * (seer / base - 1.0));
  }

  bench::write_outputs("fig4_overhead", cells, results, opts);
  return 0;
}
