// Figure 4 — "Overhead of Seer when profiling and calculating locks to
// acquire": a Seer variant that pays for ALL of its mechanisms (announce,
// active-table scans, periodic merge + inference, self-tuning) but never
// acquires any lock, shown relative to RTM at 1..8 threads. The paper
// reports a geometric-mean slowdown under 5%, at most 8%, and at most 4% on
// a low-contention hash-map microbenchmark — which is also reproduced here.
#include <cstdio>

#include "bench/common.hpp"

namespace {

using namespace seer;
using bench::Options;

constexpr std::size_t kThreadCounts[] = {1, 2, 3, 4, 5, 6, 7, 8};

// The paper's §5.3 stress case: a small low-contention hash map (4k
// elements, 1k buckets) with short read-modify-write transactions — tiny
// transactions make fixed per-event instrumentation proportionally largest.
stamp::WorkloadSpec hashmap_spec() {
  stamp::WorkloadSpec w;
  w.name = "hashmap-4k";
  w.regions = {
      {.name = "buckets", .lines = 1024, .zipf_skew = 0.0},
      {.name = "elements", .lines = 4096, .zipf_skew = 0.0},
  };
  w.types = {
      {.name = "get",
       .duration_mean = 220,
       .duration_jitter = 0.25,
       .accesses = {{.region = 0, .reads = 1, .writes = 0},
                    {.region = 1, .reads = 2, .writes = 0}}},
      {.name = "put",
       .duration_mean = 300,
       .duration_jitter = 0.25,
       .accesses = {{.region = 0, .reads = 1, .writes = 0},
                    {.region = 1, .reads = 2, .writes = 1}}},
  };
  w.phases = {{.fraction = 1.0, .mix = {8, 2}}};
  w.think_mean = 150;
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = Options::parse(argc, argv);
  auto workloads = opts.selected();

  std::printf("=== Figure 4: overhead of profile-only Seer relative to RTM ===\n");
  std::printf("(Seer with statistics, inference and tuning enabled but no lock\n");
  std::printf(" acquisition; values < 1.0 are slowdown)\n\n");

  const rt::PolicyConfig profile_only = bench::seer_variant(false, false, false, true);
  const rt::PolicyConfig rtm = bench::policy_of(rt::PolicyKind::kRtm);

  std::printf("%-6s  %10s\n", "thr", "geo-mean");
  double worst = 1.0;
  for (std::size_t threads : kThreadCounts) {
    util::GeoMean ratio;
    for (const auto& info : workloads) {
      const double seer = bench::run_config(info, opts, profile_only, threads).speedup;
      const double base = bench::run_config(info, opts, rtm, threads).speedup;
      if (base > 0.0) ratio.add(seer / base);
    }
    std::printf("%-6zu  %10.3f\n", threads, ratio.value());
    if (ratio.value() < worst) worst = ratio.value();
  }
  std::printf("\nworst geo-mean point: %.1f%% slowdown  [paper: <5%% mean, <=8%% max]\n",
              100.0 * (1.0 - worst));

  // Low-contention hash map stress (paper: at most 4% overhead).
  std::printf("\n--- low-contention hash-map (4k elements / 1k buckets) ---\n");
  stamp::WorkloadInfo hm{"hashmap-4k", hashmap_spec, 8000};
  std::printf("%-6s  %10s  %10s  %10s\n", "thr", "RTM", "Seer-prof", "ratio");
  for (std::size_t threads : kThreadCounts) {
    const double base = bench::run_config(hm, opts, rtm, threads).speedup;
    const double seer = bench::run_config(hm, opts, profile_only, threads).speedup;
    std::printf("%-6zu  %10.2f  %10.2f  %9.1f%%\n", threads, base, seer,
                100.0 * (seer / base - 1.0));
  }
  return 0;
}
