// Beyond-the-paper ablation: how much headroom does PRECISE conflict
// information buy over Seer's probabilistic inference?
//
// Figure 1 of the paper frames the whole problem: STMs report exactly which
// transaction caused an abort, commodity HTMs only a coarse category. Seer
// exists to close that gap with inference. The simulator — unlike real
// silicon — knows the aggressor of every conflict, so it can drive an
// Oracle scheduler with STM-grade feedback (exact pair conflict counts,
// serialization from the first retry). The distance RTM -> Seer -> Oracle
// quantifies how much of the precise-information benefit the probabilistic
// approach recovers on each workload.
#include <cstdio>

#include "bench/runner.hpp"

namespace {

using namespace seer;
using bench::Options;

constexpr rt::PolicyKind kPolicies[] = {rt::PolicyKind::kRtm, rt::PolicyKind::kSeer,
                                        rt::PolicyKind::kOracle};
constexpr std::size_t kThreadCounts[] = {2, 4, 6, 8};

}  // namespace

int main(int argc, char** argv) {
  const Options opts = Options::parse(argc, argv);
  const auto workloads = opts.selected();

  std::vector<bench::Cell> cells;
  for (const auto& info : workloads) {
    for (std::size_t threads : kThreadCounts) {
      for (auto kind : kPolicies) {
        cells.push_back({info, bench::policy_of(kind), threads, {}});
      }
    }
  }
  const auto results = bench::run_cells(cells, opts);

  std::printf("=== Oracle gap: imprecise (Seer) vs precise (Oracle) scheduling ===\n\n");

  util::GeoMean geo[std::size(kPolicies)][std::size(kThreadCounts)];

  for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
    std::printf("--- %s ---\n%-6s", workloads[wi].name.c_str(), "thr");
    for (auto kind : kPolicies) std::printf("  %8s", rt::to_string(kind));
    std::printf("  %10s\n", "recovered");
    for (std::size_t ti = 0; ti < std::size(kThreadCounts); ++ti) {
      double v[std::size(kPolicies)];
      std::printf("%-6zu", kThreadCounts[ti]);
      for (std::size_t pi = 0; pi < std::size(kPolicies); ++pi) {
        v[pi] = results[(wi * std::size(kThreadCounts) + ti) * std::size(kPolicies) +
                        pi]
                    .summary.speedup;
        std::printf("  %8.2f", v[pi]);
        geo[pi][ti].add(v[pi]);
      }
      // Fraction of the RTM->Oracle improvement that Seer captures.
      const double headroom = v[2] - v[0];
      if (headroom > 0.05) {
        std::printf("  %9.0f%%", 100.0 * (v[1] - v[0]) / headroom);
      } else {
        std::printf("  %10s", "n/a");
      }
      std::printf("\n");
    }
    std::printf("\n");
  }

  std::printf("--- geometric means ---\n%-6s", "thr");
  for (auto kind : kPolicies) std::printf("  %8s", rt::to_string(kind));
  std::printf("\n");
  for (std::size_t ti = 0; ti < std::size(kThreadCounts); ++ti) {
    std::printf("%-6zu", kThreadCounts[ti]);
    for (std::size_t pi = 0; pi < std::size(kPolicies); ++pi) {
      std::printf("  %8.2f", geo[pi][ti].value());
    }
    std::printf("\n");
  }
  std::printf(
      "\n('recovered' = share of the RTM->Oracle headroom that Seer attains\n"
      " without any precise feedback — the paper's central trade-off.)\n");

  bench::write_outputs("oracle_gap", cells, results, opts);
  return 0;
}
