// Figure 5 — "Cumulative contribution of each technique employed in Seer":
// starting from the profile-only variant (all mechanisms paid for, no lock
// ever taken), cumulatively enable
//   + tx-locks        (fine-grained transaction locks, Alg. 4 l.47-49)
//   + core-locks      (capacity-driven per-core locks, Alg. 4 l.44-46)
//   + htm lock acq.   (multi-CAS-by-HTM batched acquisition, §4)
//   + hill climbing   (self-tuning of Th1/Th2)
// and report the speedup of each variant relative to the profile-only
// baseline, per workload, at 2/4/6/8 threads.
//
// The final block reproduces the §5.3 side-experiment: core locks ALONE
// (paper: +9% at 6 threads, +22% at 8 threads, geometric mean).
#include <cstdio>

#include "bench/common.hpp"

namespace {

using namespace seer;
using bench::Options;

constexpr std::size_t kThreadCounts[] = {2, 4, 6, 8};

struct Variant {
  const char* label;
  rt::PolicyConfig policy;
};

}  // namespace

int main(int argc, char** argv) {
  const Options opts = Options::parse(argc, argv);
  const auto workloads = opts.selected();

  const Variant variants[] = {
      {"+tx-locks", bench::seer_variant(true, false, false, false)},
      {"+core-locks", bench::seer_variant(true, true, false, false)},
      {"+htm-lock-acq", bench::seer_variant(true, true, true, false)},
      {"+hill-climbing", bench::seer_variant(true, true, true, true)},
  };
  const rt::PolicyConfig baseline = bench::seer_variant(false, false, false, false);

  std::printf("=== Figure 5: cumulative contribution of Seer's techniques ===\n");
  std::printf("(speedup relative to profile-only Seer; >1.0 = the mechanism helps)\n\n");

  util::GeoMean geo[std::size(variants)][std::size(kThreadCounts)];

  for (const auto& info : workloads) {
    std::printf("--- %s ---\n", info.name.c_str());
    std::printf("%-16s", "variant");
    for (std::size_t t : kThreadCounts) std::printf("  %5zut", t);
    std::printf("\n");
    double base[std::size(kThreadCounts)];
    for (std::size_t ti = 0; ti < std::size(kThreadCounts); ++ti) {
      base[ti] = bench::run_config(info, opts, baseline, kThreadCounts[ti]).speedup;
    }
    for (std::size_t vi = 0; vi < std::size(variants); ++vi) {
      std::printf("%-16s", variants[vi].label);
      for (std::size_t ti = 0; ti < std::size(kThreadCounts); ++ti) {
        const double s =
            bench::run_config(info, opts, variants[vi].policy, kThreadCounts[ti])
                .speedup;
        const double rel = base[ti] > 0.0 ? s / base[ti] : 0.0;
        std::printf("  %6.2f", rel);
        geo[vi][ti].add(rel);
      }
      std::printf("\n");
    }
    std::printf("\n");
  }

  std::printf("--- geometric mean across benchmarks ---\n%-16s", "variant");
  for (std::size_t t : kThreadCounts) std::printf("  %5zut", t);
  std::printf("\n");
  for (std::size_t vi = 0; vi < std::size(variants); ++vi) {
    std::printf("%-16s", variants[vi].label);
    for (std::size_t ti = 0; ti < std::size(kThreadCounts); ++ti) {
      std::printf("  %6.2f", geo[vi][ti].value());
    }
    std::printf("\n");
  }

  // §5.3: enabling ONLY the core locks.
  std::printf("\n--- core locks only (§5.3: paper reports +9%% @6t, +22%% @8t) ---\n");
  const rt::PolicyConfig core_only = bench::seer_variant(false, true, false, false);
  std::printf("%-16s", "core-locks-only");
  for (std::size_t ti = 0; ti < std::size(kThreadCounts); ++ti) {
    util::GeoMean g;
    for (const auto& info : workloads) {
      const double b = bench::run_config(info, opts, baseline, kThreadCounts[ti]).speedup;
      const double s = bench::run_config(info, opts, core_only, kThreadCounts[ti]).speedup;
      if (b > 0.0) g.add(s / b);
    }
    std::printf("  %6.2f", g.value());
  }
  std::printf("\n");
  return 0;
}
