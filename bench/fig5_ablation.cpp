// Figure 5 — "Cumulative contribution of each technique employed in Seer":
// starting from the profile-only variant (all mechanisms paid for, no lock
// ever taken), cumulatively enable
//   + tx-locks        (fine-grained transaction locks, Alg. 4 l.47-49)
//   + core-locks      (capacity-driven per-core locks, Alg. 4 l.44-46)
//   + htm lock acq.   (multi-CAS-by-HTM batched acquisition, §4)
//   + hill climbing   (self-tuning of Th1/Th2)
// and report the speedup of each variant relative to the profile-only
// baseline, per workload, at 2/4/6/8 threads.
//
// The final block reproduces the §5.3 side-experiment: core locks ALONE
// (paper: +9% at 6 threads, +22% at 8 threads, geometric mean).
#include <cstdio>

#include "bench/runner.hpp"

namespace {

using namespace seer;
using bench::Options;

constexpr std::size_t kThreadCounts[] = {2, 4, 6, 8};

struct Variant {
  const char* label;
  rt::PolicyConfig policy;
};

}  // namespace

int main(int argc, char** argv) {
  const Options opts = Options::parse(argc, argv);
  const auto workloads = opts.selected();

  const Variant variants[] = {
      {"+tx-locks", bench::seer_variant(true, false, false, false)},
      {"+core-locks", bench::seer_variant(true, true, false, false)},
      {"+htm-lock-acq", bench::seer_variant(true, true, true, false)},
      {"+hill-climbing", bench::seer_variant(true, true, true, true)},
  };
  const rt::PolicyConfig baseline = bench::seer_variant(false, false, false, false);
  const rt::PolicyConfig core_only = bench::seer_variant(false, true, false, false);

  // Per workload: baseline at each thread count, then the four cumulative
  // variants at each thread count, then core-locks-only at each thread
  // count. Stride per workload = (1 + |variants| + 1) · |kThreadCounts|.
  const std::size_t n_tc = std::size(kThreadCounts);
  const std::size_t stride = (1 + std::size(variants) + 1) * n_tc;
  std::vector<bench::Cell> cells;
  for (const auto& info : workloads) {
    for (std::size_t threads : kThreadCounts) {
      cells.push_back({info, baseline, threads, "Seer-profile-only"});
    }
    for (const auto& v : variants) {
      for (std::size_t threads : kThreadCounts) {
        cells.push_back({info, v.policy, threads, v.label});
      }
    }
    for (std::size_t threads : kThreadCounts) {
      cells.push_back({info, core_only, threads, "core-locks-only"});
    }
  }
  const auto results = bench::run_cells(cells, opts);

  std::printf("=== Figure 5: cumulative contribution of Seer's techniques ===\n");
  std::printf("(speedup relative to profile-only Seer; >1.0 = the mechanism helps)\n\n");

  util::GeoMean geo[std::size(variants)][std::size(kThreadCounts)];

  for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
    std::printf("--- %s ---\n", workloads[wi].name.c_str());
    std::printf("%-16s", "variant");
    for (std::size_t t : kThreadCounts) std::printf("  %5zut", t);
    std::printf("\n");
    double base[std::size(kThreadCounts)];
    for (std::size_t ti = 0; ti < n_tc; ++ti) {
      base[ti] = results[wi * stride + ti].summary.speedup;
    }
    for (std::size_t vi = 0; vi < std::size(variants); ++vi) {
      std::printf("%-16s", variants[vi].label);
      for (std::size_t ti = 0; ti < n_tc; ++ti) {
        const double s = results[wi * stride + (1 + vi) * n_tc + ti].summary.speedup;
        const double rel = base[ti] > 0.0 ? s / base[ti] : 0.0;
        std::printf("  %6.2f", rel);
        geo[vi][ti].add(rel);
      }
      std::printf("\n");
    }
    std::printf("\n");
  }

  std::printf("--- geometric mean across benchmarks ---\n%-16s", "variant");
  for (std::size_t t : kThreadCounts) std::printf("  %5zut", t);
  std::printf("\n");
  for (std::size_t vi = 0; vi < std::size(variants); ++vi) {
    std::printf("%-16s", variants[vi].label);
    for (std::size_t ti = 0; ti < n_tc; ++ti) {
      std::printf("  %6.2f", geo[vi][ti].value());
    }
    std::printf("\n");
  }

  // §5.3: enabling ONLY the core locks.
  std::printf("\n--- core locks only (§5.3: paper reports +9%% @6t, +22%% @8t) ---\n");
  std::printf("%-16s", "core-locks-only");
  for (std::size_t ti = 0; ti < n_tc; ++ti) {
    util::GeoMean g;
    for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
      const double b = results[wi * stride + ti].summary.speedup;
      const double s =
          results[wi * stride + (1 + std::size(variants)) * n_tc + ti].summary.speedup;
      if (b > 0.0) g.add(s / b);
    }
    std::printf("  %6.2f", g.value());
  }
  std::printf("\n");

  bench::write_outputs("fig5_ablation", cells, results, opts);
  return 0;
}
