// Figure 3 — "Speedup of different HTM based approaches across STAMP
// benchmarks": speedup over sequential execution for HLE/RTM/SCM/Seer at
// 1..8 threads on each of the eight workloads, plus the geometric mean
// (Figure 3i). ATS is printed as an additional baseline (the paper subsumes
// it into the RTM/SGL discussion, Table 1).
//
// The whole sweep (workload × thread-count × policy) is evaluated first,
// fanned out across --jobs workers; printing then walks the results in cell
// order, so the output is byte-identical for any job count.
#include <cstdio>

#include "bench/runner.hpp"

namespace {

using namespace seer;
using bench::Options;

constexpr rt::PolicyKind kPolicies[] = {rt::PolicyKind::kHle, rt::PolicyKind::kRtm,
                                        rt::PolicyKind::kScm, rt::PolicyKind::kAts,
                                        rt::PolicyKind::kSeer};
constexpr std::size_t kThreadCounts[] = {1, 2, 3, 4, 5, 6, 7, 8};

}  // namespace

int main(int argc, char** argv) {
  const Options opts = Options::parse(argc, argv);
  const auto workloads = opts.selected();

  std::vector<bench::Cell> cells;
  for (const auto& info : workloads) {
    for (std::size_t threads : kThreadCounts) {
      for (auto kind : kPolicies) {
        cells.push_back({info, bench::policy_of(kind), threads, {}});
      }
    }
  }
  const auto results = bench::run_cells(cells, opts);
  // cell index of (workload wi, thread-count ti, policy pi):
  auto at = [&](std::size_t wi, std::size_t ti, std::size_t pi) -> const bench::Summary& {
    return results[(wi * std::size(kThreadCounts) + ti) * std::size(kPolicies) + pi]
        .summary;
  };

  std::printf("=== Figure 3: speedup vs sequential, 1-8 threads ===\n");
  std::printf("(runs per point: %d; deterministic simulator seeds)\n\n", opts.runs);

  // geo[policy][thread-count-index]
  util::GeoMean geo[std::size(kPolicies)][std::size(kThreadCounts)];

  for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
    std::printf("--- %s ---\n", workloads[wi].name.c_str());
    std::printf("%-6s", "thr");
    for (auto kind : kPolicies) std::printf("  %8s", rt::to_string(kind));
    std::printf("\n");
    for (std::size_t ti = 0; ti < std::size(kThreadCounts); ++ti) {
      std::printf("%-6zu", kThreadCounts[ti]);
      for (std::size_t pi = 0; pi < std::size(kPolicies); ++pi) {
        const bench::Summary& s = at(wi, ti, pi);
        std::printf("  %8.2f", s.speedup);
        geo[pi][ti].add(s.speedup);
      }
      std::printf("\n");
    }
    std::printf("\n");
  }

  std::printf("--- geometric mean across benchmarks (Figure 3i) ---\n");
  std::printf("%-6s", "thr");
  for (auto kind : kPolicies) std::printf("  %8s", rt::to_string(kind));
  std::printf("\n");
  for (std::size_t ti = 0; ti < std::size(kThreadCounts); ++ti) {
    std::printf("%-6zu", kThreadCounts[ti]);
    for (std::size_t pi = 0; pi < std::size(kPolicies); ++pi) {
      std::printf("  %8.2f", geo[pi][ti].value());
    }
    std::printf("\n");
  }

  // The headline numbers (§1, §5.1): Seer vs the RTM/SCM baselines at 8t.
  const std::size_t last = std::size(kThreadCounts) - 1;
  const double seer8 = geo[4][last].value();
  const double rtm8 = geo[1][last].value();
  const double scm8 = geo[2][last].value();
  std::printf(
      "\nheadline @8 threads: Seer/RTM = %.2fx (%+.0f%%), Seer/SCM = %.2fx "
      "(%+.0f%%)  [paper: +62%% avg over RTM and SCM, peaks 2-2.5x]\n",
      seer8 / rtm8, 100.0 * (seer8 / rtm8 - 1.0), seer8 / scm8,
      100.0 * (seer8 / scm8 - 1.0));

  bench::write_outputs("fig3_speedup", cells, results, opts);
  return 0;
}
