// Figure 3 — "Speedup of different HTM based approaches across STAMP
// benchmarks": speedup over sequential execution for HLE/RTM/SCM/Seer at
// 1..8 threads on each of the eight workloads, plus the geometric mean
// (Figure 3i). ATS is printed as an additional baseline (the paper subsumes
// it into the RTM/SGL discussion, Table 1).
#include <cstdio>

#include "bench/common.hpp"

namespace {

using namespace seer;
using bench::Options;

constexpr rt::PolicyKind kPolicies[] = {rt::PolicyKind::kHle, rt::PolicyKind::kRtm,
                                        rt::PolicyKind::kScm, rt::PolicyKind::kAts,
                                        rt::PolicyKind::kSeer};
constexpr std::size_t kThreadCounts[] = {1, 2, 3, 4, 5, 6, 7, 8};

}  // namespace

int main(int argc, char** argv) {
  const Options opts = Options::parse(argc, argv);
  const auto workloads = opts.selected();

  std::printf("=== Figure 3: speedup vs sequential, 1-8 threads ===\n");
  std::printf("(runs per point: %d; deterministic simulator seeds)\n\n", opts.runs);

  // geo[policy][thread-count-index]
  util::GeoMean geo[std::size(kPolicies)][std::size(kThreadCounts)];

  for (const auto& info : workloads) {
    std::printf("--- %s ---\n", info.name.c_str());
    std::printf("%-6s", "thr");
    for (auto kind : kPolicies) std::printf("  %8s", rt::to_string(kind));
    std::printf("\n");
    for (std::size_t ti = 0; ti < std::size(kThreadCounts); ++ti) {
      const std::size_t threads = kThreadCounts[ti];
      std::printf("%-6zu", threads);
      for (std::size_t pi = 0; pi < std::size(kPolicies); ++pi) {
        const bench::Summary s =
            bench::run_config(info, opts, bench::policy_of(kPolicies[pi]), threads);
        std::printf("  %8.2f", s.speedup);
        geo[pi][ti].add(s.speedup);
      }
      std::printf("\n");
    }
    std::printf("\n");
  }

  std::printf("--- geometric mean across benchmarks (Figure 3i) ---\n");
  std::printf("%-6s", "thr");
  for (auto kind : kPolicies) std::printf("  %8s", rt::to_string(kind));
  std::printf("\n");
  for (std::size_t ti = 0; ti < std::size(kThreadCounts); ++ti) {
    std::printf("%-6zu", kThreadCounts[ti]);
    for (std::size_t pi = 0; pi < std::size(kPolicies); ++pi) {
      std::printf("  %8.2f", geo[pi][ti].value());
    }
    std::printf("\n");
  }

  // The headline numbers (§1, §5.1): Seer vs the RTM/SCM baselines at 8t.
  const std::size_t last = std::size(kThreadCounts) - 1;
  const double seer8 = geo[4][last].value();
  const double rtm8 = geo[1][last].value();
  const double scm8 = geo[2][last].value();
  std::printf(
      "\nheadline @8 threads: Seer/RTM = %.2fx (%+.0f%%), Seer/SCM = %.2fx "
      "(%+.0f%%)  [paper: +62%% avg over RTM and SCM, peaks 2-2.5x]\n",
      seer8 / rtm8, 100.0 * (seer8 / rtm8 - 1.0), seer8 / scm8,
      100.0 * (seer8 / scm8 - 1.0));
  return 0;
}
