// Microbenchmarks of the Seer scheduler core's hot paths (google-benchmark).
//
// These quantify the per-event costs the paper's Figure 4 argues are small:
// announcing to the active table, scanning it on commit/abort (Alg. 3), the
// probability computations, and a full scheme rebuild (Alg. 5).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "core/active_tx_table.hpp"
#include "core/conflict_stats.hpp"
#include "core/hill_climber.hpp"
#include "core/lock_scheme.hpp"
#include "core/seer_scheduler.hpp"
#include "util/gaussian.hpp"
#include "util/rng.hpp"

namespace {

using namespace seer;

void BM_ActiveTableAnnounce(benchmark::State& state) {
  core::ActiveTxTable table(8);
  core::TxTypeId t = 0;
  for (auto _ : state) {
    table.announce(3, t);
    t = (t + 1) % 8;
    benchmark::DoNotOptimize(table.peek(3));
  }
}
BENCHMARK(BM_ActiveTableAnnounce);

void BM_RecordAbortScan(benchmark::State& state) {
  const auto n_threads = static_cast<std::size_t>(state.range(0));
  core::ActiveTxTable table(n_threads);
  for (core::ThreadId i = 0; i < n_threads; ++i) {
    table.announce(i, static_cast<core::TxTypeId>(i % 4));
  }
  core::ThreadStats stats(8);
  for (auto _ : state) {
    stats.record_abort(2, 0, table);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RecordAbortScan)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

// The stats hot path end-to-end, under genuine multi-thread recording: N
// threads each own one flattened slab (exactly the SeerScheduler layout) and
// record against one shared active table. Quantifies (a) that the contiguous
// slab keeps per-event cost flat as recording threads are added — no false
// sharing, no shared counters — and (b) the stats_sample_period win: with
// period k, k-1 of every k events pay only a single-counter bump instead of
// the execution bump + table scan.
void BM_StatsRecordHotPath(benchmark::State& state, std::uint32_t period) {
  constexpr std::size_t kSlots = 8;
  static core::ActiveTxTable* table = nullptr;
  static std::vector<std::unique_ptr<core::ThreadStats>>* slabs = nullptr;
  if (state.thread_index() == 0) {
    table = new core::ActiveTxTable(kSlots);
    for (core::ThreadId i = 0; i < kSlots; ++i) {
      table->announce(i, static_cast<core::TxTypeId>(i % 4));
    }
    slabs = new std::vector<std::unique_ptr<core::ThreadStats>>();
    for (std::size_t t = 0; t < kSlots; ++t) {
      slabs->push_back(std::make_unique<core::ThreadStats>(8, period));
    }
  }
  // google-benchmark's loop-entry barrier orders the setup above before any
  // thread starts iterating (and the loop-exit barrier before the teardown).
  const auto self =
      static_cast<core::ThreadId>(state.thread_index() % static_cast<int>(kSlots));
  core::ThreadStats& mine = *(*slabs)[self];
  std::uint64_t i = 0;
  for (auto _ : state) {
    // 1 abort per 3 commits, roughly the shape of a contended run.
    if ((++i & 3) == 0) {
      mine.record_abort(2, self, *table);
    } else {
      mine.record_commit(static_cast<core::TxTypeId>(i & 3), self, *table);
    }
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    delete slabs;
    slabs = nullptr;
    delete table;
    table = nullptr;
  }
}
BENCHMARK_CAPTURE(BM_StatsRecordHotPath, unsampled, 1)
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)->UseRealTime();
BENCHMARK_CAPTURE(BM_StatsRecordHotPath, sampled_k8, 8)
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)->UseRealTime();

void BM_MergeStats(benchmark::State& state) {
  const auto n_types = static_cast<std::size_t>(state.range(0));
  core::ThreadStats stats(n_types);
  for (auto _ : state) {
    core::GlobalStats g(n_types);
    stats.merge_into(g);
    benchmark::DoNotOptimize(g.total_executions());
  }
}
BENCHMARK(BM_MergeStats)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_BuildLockScheme(benchmark::State& state) {
  const auto n_types = static_cast<std::size_t>(state.range(0));
  core::GlobalStats g(n_types);
  util::Xoshiro256 rng(5);
  for (auto& a : g.aborts) a = rng.below(1000);
  for (auto& c : g.commits) c = rng.below(1000);
  for (auto& e : g.executions) e = 4000 + rng.below(1000);
  const core::InferenceParams params{.th1 = 0.2, .th2 = 0.7};
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::build_lock_scheme(g, params));
  }
}
BENCHMARK(BM_BuildLockScheme)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_GaussianPercentile(benchmark::State& state) {
  double p = 0.01;
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::gaussian_percentile(0.4, 0.05, p));
    p += 0.001;
    if (p >= 0.999) p = 0.01;
  }
}
BENCHMARK(BM_GaussianPercentile);

void BM_HillClimberFeed(benchmark::State& state) {
  core::HillClimber hc;
  double score = 0.1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hc.feed(score));
    score = score < 10.0 ? score + 0.01 : 0.1;
  }
}
BENCHMARK(BM_HillClimberFeed);

void BM_SchedulerRecordCommit(benchmark::State& state) {
  core::SeerConfig cfg;
  cfg.n_threads = 8;
  cfg.n_types = 8;
  core::SeerScheduler sched(cfg);
  for (core::ThreadId i = 1; i < 8; ++i) {
    sched.announce(i, static_cast<core::TxTypeId>(i % 4));
  }
  for (auto _ : state) {
    sched.record_commit(0, 2);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SchedulerRecordCommit);

}  // namespace

BENCHMARK_MAIN();
