// Microbenchmarks of the observability layer (google-benchmark).
//
// The contract being quantified (DESIGN.md §8): an attached MetricsRegistry
// may add at most a couple of relaxed single-writer counter bumps to the
// Alg. 3 stats hot path — under 2% of the path's cost — and a TraceSink
// emit stays a handful of stores. The paired *_detached / *_metrics
// benchmarks below are the observable form of that budget; the obs_test
// suite asserts the primitive costs, this file measures them.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <utility>

#include "core/seer_scheduler.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

using namespace seer;

// Raw primitive: one counter bump.
void BM_MetricsAdd(benchmark::State& state) {
  obs::MetricsRegistry reg(1);
  const obs::MetricId c = reg.counter("bench.counter");
  reg.freeze();
  for (auto _ : state) {
    reg.add(c, 0);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsAdd);

// Raw primitive: one histogram observation (bucket + count + sum bumps).
void BM_MetricsObserve(benchmark::State& state) {
  obs::MetricsRegistry reg(1);
  const obs::MetricId h = reg.histogram("bench.histogram");
  reg.freeze();
  std::uint64_t v = 0;
  for (auto _ : state) {
    reg.observe(h, 0, v++ & 1023);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsObserve);

// Raw primitive: one ring-buffer trace event.
void BM_TraceEmit(benchmark::State& state) {
  obs::TraceSink sink(1, 1u << 12);
  std::uint64_t ts = 0;
  for (auto _ : state) {
    sink.emit(0, obs::TraceKind::kTxCommit, ts++, 3);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceEmit);

// The claim that matters: SeerScheduler's record_commit (announce-table scan
// + per-thread stats slab, the path that runs once per transaction) with and
// without an attached registry. CI's overhead gate replays this pair and
// fails if the attached variant exceeds the detached one by more than the
// DESIGN.md §8 budget.
void BM_SchedulerRecordCommit_Detached(benchmark::State& state) {
  core::SeerConfig cfg;
  cfg.n_threads = 8;
  cfg.n_types = 8;
  core::SeerScheduler sched(cfg);
  for (core::ThreadId i = 1; i < 8; ++i) {
    sched.announce(i, static_cast<core::TxTypeId>(i % 4));
  }
  for (auto _ : state) {
    sched.record_commit(0, 2);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SchedulerRecordCommit_Detached);

void BM_SchedulerRecordCommit_Metrics(benchmark::State& state) {
  obs::MetricsRegistry reg(8);
  core::SeerConfig cfg;
  cfg.n_threads = 8;
  cfg.n_types = 8;
  cfg.metrics = &reg;
  core::SeerScheduler sched(cfg);
  reg.freeze();
  for (core::ThreadId i = 1; i < 8; ++i) {
    sched.announce(i, static_cast<core::TxTypeId>(i % 4));
  }
  for (auto _ : state) {
    sched.record_commit(0, 2);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SchedulerRecordCommit_Metrics);

// Flight recorder contract (DESIGN.md §9): attaching one must not change the
// per-transaction path at all — the recorder is fed only at rebuilds and on
// the SGL fallback path. This variant should measure the same as _Detached;
// any gap means recorder state leaked onto the commit path.
void BM_SchedulerRecordCommit_Recorder(benchmark::State& state) {
  obs::FlightRecorder rec;
  core::SeerConfig cfg;
  cfg.n_threads = 8;
  cfg.n_types = 8;
  cfg.recorder = &rec;
  core::SeerScheduler sched(cfg);
  for (core::ThreadId i = 1; i < 8; ++i) {
    sched.announce(i, static_cast<core::TxTypeId>(i % 4));
  }
  for (auto _ : state) {
    sched.record_commit(0, 2);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SchedulerRecordCommit_Recorder);

// The capture itself: merging 8 threads' stats slabs, copying the scheme,
// and reading the climber — the cost paid once per *retained* rebuild, off
// the transaction path entirely. Populates the slabs first so the merge
// walks real (non-zero) matrices.
void BM_ModelSnapshot(benchmark::State& state) {
  obs::FlightRecorder rec;
  core::SeerConfig cfg;
  cfg.n_threads = 8;
  cfg.n_types = 8;
  cfg.recorder = &rec;
  core::SeerScheduler sched(cfg);
  for (core::ThreadId t = 0; t < 8; ++t) {
    sched.announce(t, static_cast<core::TxTypeId>(t % 4));
    for (int i = 0; i < 64; ++i) {
      sched.record_abort(t, static_cast<core::TxTypeId>(i % 8));
      sched.record_commit(t, static_cast<core::TxTypeId>(i % 8));
    }
  }
  std::uint64_t now = 0;
  for (auto _ : state) {
    obs::ModelSnapshot snap = sched.make_model_snapshot(now++);
    benchmark::DoNotOptimize(snap.commits);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ModelSnapshot);

// Snapshot serialization (end-of-run / dump path only).
void BM_SnapshotToJson(benchmark::State& state) {
  core::SeerConfig cfg;
  cfg.n_threads = 8;
  cfg.n_types = 8;
  core::SeerScheduler sched(cfg);
  for (core::ThreadId t = 0; t < 8; ++t) {
    for (int i = 0; i < 64; ++i) {
      sched.record_abort(t, static_cast<core::TxTypeId>(i % 8));
      sched.record_commit(t, static_cast<core::TxTypeId>(i % 8));
    }
  }
  const obs::ModelSnapshot snap = sched.make_model_snapshot(1);
  std::string out;
  for (auto _ : state) {
    out.clear();
    snap.append_json(out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SnapshotToJson);

}  // namespace

BENCHMARK_MAIN();
