// Table 3 — "Breakdown of percentage (%) of types of transactions used in
// average across STAMP": for each policy at 2/4/6/8 threads, the share of
// transactions that committed in each mode (pure HTM, HTM under the
// policy's locks, SGL fallback), averaged across the eight workloads.
//
// Also prints the §5.2 fine-granularity census: in the cases where Seer
// acquires transaction locks, how small a fraction of the available locks
// it takes (the paper reports <23% of the locks in 50% of the cases).
#include <cstdio>

#include "bench/runner.hpp"

namespace {

using namespace seer;
using bench::Options;

constexpr rt::PolicyKind kPolicies[] = {rt::PolicyKind::kHle, rt::PolicyKind::kRtm,
                                        rt::PolicyKind::kScm, rt::PolicyKind::kAts,
                                        rt::PolicyKind::kSeer};
constexpr std::size_t kThreadCounts[] = {2, 4, 6, 8};

struct Row {
  const char* label;
  double bench::Summary::* field;
};

// Prints one policy's block from the precomputed result slice: results for
// policy pi live at index ((pi * |tc| + ti) * |workloads| + wi).
void print_policy(const char* name, std::size_t pi,
                  const std::vector<bench::CellResult>& results,
                  std::size_t n_workloads, bool census,
                  std::initializer_list<Row> rows) {
  bench::Summary avg[std::size(kThreadCounts)];
  for (std::size_t ti = 0; ti < std::size(kThreadCounts); ++ti) {
    for (std::size_t wi = 0; wi < n_workloads; ++wi) {
      const bench::Summary& s =
          results[(pi * std::size(kThreadCounts) + ti) * n_workloads + wi].summary;
      avg[ti].no_lock_fraction += s.no_lock_fraction;
      avg[ti].aux_fraction += s.aux_fraction;
      avg[ti].sched_fraction += s.sched_fraction;
      avg[ti].tx_fraction += s.tx_fraction;
      avg[ti].core_fraction += s.core_fraction;
      avg[ti].tx_core_fraction += s.tx_core_fraction;
      avg[ti].sgl_fraction += s.sgl_fraction;
      avg[ti].txlock_median_fraction += s.txlock_median_fraction;
      avg[ti].txlock_under_23pct += s.txlock_under_23pct;
    }
    const auto n = static_cast<double>(n_workloads);
    avg[ti].no_lock_fraction /= n;
    avg[ti].aux_fraction /= n;
    avg[ti].sched_fraction /= n;
    avg[ti].tx_fraction /= n;
    avg[ti].core_fraction /= n;
    avg[ti].tx_core_fraction /= n;
    avg[ti].sgl_fraction /= n;
    avg[ti].txlock_median_fraction /= n;
    avg[ti].txlock_under_23pct /= n;
  }

  std::printf("%s\n", name);
  for (const Row& row : rows) {
    std::printf("  %-24s", row.label);
    for (std::size_t ti = 0; ti < std::size(kThreadCounts); ++ti) {
      std::printf("  %5.1f", 100.0 * (avg[ti].*(row.field)));
    }
    std::printf("\n");
  }
  if (census) {
    std::printf("  %-24s", "[census] median tx-lock %");
    for (std::size_t ti = 0; ti < std::size(kThreadCounts); ++ti) {
      std::printf("  %5.1f", 100.0 * avg[ti].txlock_median_fraction);
    }
    std::printf("\n  %-24s", "[census] P(<23% of locks)");
    for (std::size_t ti = 0; ti < std::size(kThreadCounts); ++ti) {
      std::printf("  %5.1f", 100.0 * avg[ti].txlock_under_23pct);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = Options::parse(argc, argv);
  const auto workloads = opts.selected();

  std::vector<bench::Cell> cells;
  for (auto kind : kPolicies) {
    for (std::size_t threads : kThreadCounts) {
      for (const auto& info : workloads) {
        cells.push_back({info, bench::policy_of(kind), threads, {}});
      }
    }
  }
  const auto results = bench::run_cells(cells, opts);

  std::printf("=== Table 3: %% of transaction modes, averaged across STAMP ===\n");
  std::printf("%-26s", "Variant / Mode");
  for (std::size_t t : kThreadCounts) std::printf("  %4zut", t);
  std::printf("\n\n");

  const std::size_t nw = workloads.size();
  print_policy("HLE", 0, results, nw, false,
               {{"HTM no locks", &bench::Summary::no_lock_fraction},
                {"SGL fall-back", &bench::Summary::sgl_fraction}});

  print_policy("RTM", 1, results, nw, false,
               {{"HTM no locks", &bench::Summary::no_lock_fraction},
                {"SGL fall-back", &bench::Summary::sgl_fraction}});

  print_policy("SCM", 2, results, nw, false,
               {{"HTM no locks", &bench::Summary::no_lock_fraction},
                {"HTM + Aux lock", &bench::Summary::aux_fraction},
                {"SGL fall-back", &bench::Summary::sgl_fraction}});

  print_policy("ATS (extra baseline)", 3, results, nw, false,
               {{"HTM no locks", &bench::Summary::no_lock_fraction},
                {"HTM + Sched lock", &bench::Summary::sched_fraction},
                {"SGL fall-back", &bench::Summary::sgl_fraction}});

  print_policy("Seer", 4, results, nw, true,
               {{"HTM no locks", &bench::Summary::no_lock_fraction},
                {"HTM + Tx Locks", &bench::Summary::tx_fraction},
                {"HTM + Core Locks", &bench::Summary::core_fraction},
                {"HTM + Tx + Core Locks", &bench::Summary::tx_core_fraction},
                {"SGL fall-back", &bench::Summary::sgl_fraction}});

  std::printf(
      "paper reference @8t: HLE 23/77, RTM 63/37, SCM 66/29/5,\n"
      "                     Seer 80/3/4/12/1 (no-locks/tx/core/tx+core/SGL)\n");

  bench::write_outputs("table3_breakdown", cells, results, opts);
  return 0;
}
