// Shared harness for the paper-reproduction benchmarks.
//
// Each bench binary regenerates one exhibit of the paper's evaluation
// (Figure 3, Table 3, Figure 4, Figure 5). Runs are averaged over several
// seeds (the paper averages 20 hardware runs; the simulator is deterministic
// per seed so a handful suffices — override with --runs).
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "sim/machine.hpp"
#include "stamp/workloads.hpp"
#include "util/stats.hpp"

namespace seer::bench {

struct Options {
  int runs = 2;             // seeds per configuration (simulator runs are
                            // deterministic; raise for tighter averages)
  double txs_scale = 0.5;   // fraction of each workload's bench_txs_per_thread
  std::uint64_t base_seed = 1000;
  std::vector<std::string> workloads;  // empty = all eight

  static Options parse(int argc, char** argv) {
    Options o;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next = [&]() -> const char* {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "missing value for %s\n", arg.c_str());
          std::exit(2);
        }
        return argv[++i];
      };
      if (arg == "--runs") {
        o.runs = std::atoi(next());
      } else if (arg == "--txs-scale") {
        o.txs_scale = std::atof(next());
      } else if (arg == "--seed") {
        o.base_seed = static_cast<std::uint64_t>(std::atoll(next()));
      } else if (arg == "--workload") {
        o.workloads.push_back(next());
      } else if (arg == "--help" || arg == "-h") {
        std::printf(
            "options: --runs N  --txs-scale F  --seed S  --workload NAME "
            "(repeatable)\n");
        std::exit(0);
      } else {
        std::fprintf(stderr, "unknown option %s\n", arg.c_str());
        std::exit(2);
      }
    }
    return o;
  }

  [[nodiscard]] std::vector<stamp::WorkloadInfo> selected() const {
    std::vector<stamp::WorkloadInfo> out;
    for (const auto& info : stamp::all_workloads()) {
      if (workloads.empty()) {
        out.push_back(info);
        continue;
      }
      for (const auto& w : workloads) {
        if (info.name == w) out.push_back(info);
      }
    }
    return out;
  }
};

// Seed-averaged summary of one (workload, policy, threads) configuration.
struct Summary {
  double speedup = 0.0;
  double sgl_fraction = 0.0;
  double aux_fraction = 0.0;
  double sched_fraction = 0.0;
  double tx_fraction = 0.0;
  double core_fraction = 0.0;
  double tx_core_fraction = 0.0;
  double no_lock_fraction = 0.0;
  double aborts_per_commit = 0.0;
  double capacity_aborts = 0.0;
  // §5.2 census (Seer only): median fraction of tx locks per acquisition
  // and the share of acquisitions taking under 23% of the available locks.
  double txlock_median_fraction = 0.0;
  double txlock_under_23pct = 0.0;
};

inline Summary run_config(const stamp::WorkloadInfo& info, const Options& opts,
                          rt::PolicyConfig policy, std::size_t threads) {
  Summary sum;
  util::RunningStats speedup;
  double census_lt = 0.0;
  double census_median = 0.0;
  int census_runs = 0;
  for (int r = 0; r < opts.runs; ++r) {
    sim::MachineConfig cfg;
    cfg.n_threads = threads;
    cfg.txs_per_thread = std::max<std::uint64_t>(
        200, static_cast<std::uint64_t>(
                 static_cast<double>(info.bench_txs_per_thread) * opts.txs_scale));
    cfg.policy = policy;
    cfg.seed = opts.base_seed + static_cast<std::uint64_t>(r) * 7919;
    const sim::MachineStats s =
        sim::run_machine(cfg, std::make_unique<stamp::SpecWorkload>(info.spec(), threads));
    speedup.add(s.speedup());
    sum.sgl_fraction += s.mode_fraction(rt::CommitMode::kSglFallback);
    sum.aux_fraction += s.mode_fraction(rt::CommitMode::kHtmAuxLock);
    sum.sched_fraction += s.mode_fraction(rt::CommitMode::kHtmSchedLock);
    sum.tx_fraction += s.mode_fraction(rt::CommitMode::kHtmTxLocks);
    sum.core_fraction += s.mode_fraction(rt::CommitMode::kHtmCoreLock);
    sum.tx_core_fraction += s.mode_fraction(rt::CommitMode::kHtmTxAndCore);
    sum.no_lock_fraction += s.mode_fraction(rt::CommitMode::kHtmNoLocks);
    sum.aborts_per_commit +=
        s.commits > 0 ? static_cast<double>(s.aborts()) / static_cast<double>(s.commits)
                      : 0.0;
    sum.capacity_aborts += static_cast<double>(
        s.aborts_by_cause[static_cast<std::size_t>(htm::AbortCause::kCapacity)]);
    if (s.txlock_fraction.count() > 0) {
      census_median += s.txlock_fraction.percentile(0.5);
      // Share of acquisitions that took < 23% of the tx locks (§5.2).
      const double q23 = s.txlock_fraction.percentile(0.23);
      (void)q23;
      // Estimate P(fraction < 0.23) by scanning percentiles.
      double lo = 0.0;
      double hi = 1.0;
      for (int it = 0; it < 20; ++it) {
        const double mid = 0.5 * (lo + hi);
        if (s.txlock_fraction.percentile(mid) < 0.23) {
          lo = mid;
        } else {
          hi = mid;
        }
      }
      census_lt += 0.5 * (lo + hi);
      ++census_runs;
    }
  }
  const double n = static_cast<double>(opts.runs);
  sum.speedup = speedup.mean();
  sum.sgl_fraction /= n;
  sum.aux_fraction /= n;
  sum.sched_fraction /= n;
  sum.tx_fraction /= n;
  sum.core_fraction /= n;
  sum.tx_core_fraction /= n;
  sum.no_lock_fraction /= n;
  sum.aborts_per_commit /= n;
  sum.capacity_aborts /= n;
  if (census_runs > 0) {
    sum.txlock_median_fraction = census_median / census_runs;
    sum.txlock_under_23pct = census_lt / census_runs;
  }
  return sum;
}

inline rt::PolicyConfig policy_of(rt::PolicyKind kind) {
  rt::PolicyConfig cfg;
  cfg.kind = kind;
  return cfg;
}

// Seer with a subset of mechanisms (Figure 4 / Figure 5 variants).
inline rt::PolicyConfig seer_variant(bool tx_locks, bool core_locks,
                                     bool htm_acquire, bool hill_climbing) {
  rt::PolicyConfig cfg;
  cfg.kind = rt::PolicyKind::kSeer;
  cfg.seer.enable_tx_locks = tx_locks;
  cfg.seer.enable_core_locks = core_locks;
  cfg.seer.enable_htm_lock_acquire = htm_acquire;
  cfg.seer.enable_hill_climbing = hill_climbing;
  return cfg;
}

}  // namespace seer::bench
