// Shared harness for the paper-reproduction benchmarks.
//
// Each bench binary regenerates one exhibit of the paper's evaluation
// (Figure 3, Table 3, Figure 4, Figure 5). Runs are averaged over several
// seeds (the paper averages 20 hardware runs; the simulator is deterministic
// per seed so a handful suffices — override with --runs).
//
// Every exhibit is expressed as a flat list of independent configuration
// cells (bench/runner.hpp) fanned out across a thread pool: --jobs controls
// the worker count (default: all hardware threads) and NEVER changes the
// output, because each cell is deterministic and printing happens after the
// whole sweep, in cell order.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "sim/machine.hpp"
#include "stamp/workloads.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"
#include "workload/registry.hpp"

namespace seer::bench {

struct Options {
  int runs = 2;             // seeds per configuration (simulator runs are
                            // deterministic; raise for tighter averages)
  double txs_scale = 0.5;   // fraction of each workload's bench_txs_per_thread
  std::uint64_t base_seed = 1000;
  int jobs = 0;             // simulator runs in flight; 0 = hardware threads
  std::string json_path;    // per-config machine-readable results (--json)
  std::string metrics_path; // per-run MetricsRegistry snapshots (--metrics)
  std::string trace_path;   // Chrome trace_event JSON of cell 0 (--trace)
  std::string snapshots_path;  // per-run flight-recorder dumps (--snapshots)
  std::string record_path;     // instance-trace capture of cell 0 (--record)
  std::vector<std::string> workloads;  // names or *.json configs; empty = all eight

  static Options parse(int argc, char** argv) {
    Options o;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next = [&]() -> const char* {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "missing value for %s\n", arg.c_str());
          std::exit(2);
        }
        return argv[++i];
      };
      if (arg == "--runs") {
        o.runs = std::atoi(next());
      } else if (arg == "--txs-scale") {
        o.txs_scale = std::atof(next());
      } else if (arg == "--seed") {
        o.base_seed = static_cast<std::uint64_t>(std::atoll(next()));
      } else if (arg == "--jobs") {
        o.jobs = std::atoi(next());
      } else if (arg == "--json") {
        o.json_path = next();
      } else if (arg == "--metrics") {
        o.metrics_path = next();
      } else if (arg == "--trace") {
        o.trace_path = next();
      } else if (arg == "--snapshots") {
        o.snapshots_path = next();
      } else if (arg == "--record") {
        o.record_path = next();
      } else if (arg == "--workload") {
        o.workloads.push_back(next());
      } else if (arg == "--help" || arg == "-h") {
        std::printf(
            "options: --runs N  --txs-scale F  --seed S  --jobs N  "
            "--json PATH  --metrics PATH  --trace PATH  --snapshots PATH  "
            "--record PATH  --workload NAME|FILE.json (repeatable)\n");
        std::exit(0);
      } else {
        std::fprintf(stderr, "unknown option %s\n", arg.c_str());
        std::exit(2);
      }
    }
    return o;
  }

  // Worker threads for the sweep: --jobs if given, else every hardware
  // thread (the simulator is single-threaded, so cells pack one per core).
  [[nodiscard]] std::size_t effective_jobs() const {
    return jobs > 0 ? static_cast<std::size_t>(jobs)
                    : util::ThreadPool::hardware_jobs();
  }

  // Resolves --workload arguments through the generator registry: each is a
  // registered NAME or a FILE.json config; no arguments selects the eight
  // STAMP workloads in the paper's presentation order. A bad name or config
  // is a CLI usage error: diagnostic on stderr, exit 2 (same contract as
  // parse()).
  [[nodiscard]] std::vector<workload::Desc> selected() const {
    std::vector<workload::Desc> out;
    try {
      if (workloads.empty()) {
        for (const auto& name : workload::stamp_names()) {
          out.push_back(workload::find(name));
        }
      } else {
        for (const auto& w : workloads) {
          out.push_back(workload::resolve(w));
        }
      }
    } catch (const workload::ConfigError& e) {
      std::fprintf(stderr, "%s\n", e.what());
      std::exit(2);
    }
    return out;
  }
};

// Seed-averaged summary of one (workload, policy, threads) configuration.
struct Summary {
  double speedup = 0.0;
  double sgl_fraction = 0.0;
  double aux_fraction = 0.0;
  double sched_fraction = 0.0;
  double tx_fraction = 0.0;
  double core_fraction = 0.0;
  double tx_core_fraction = 0.0;
  double no_lock_fraction = 0.0;
  double aborts_per_commit = 0.0;
  double capacity_aborts = 0.0;
  // §5.2 census (Seer only): median fraction of tx locks per acquisition
  // and the share of acquisitions taking under 23% of the available locks.
  double txlock_median_fraction = 0.0;
  double txlock_under_23pct = 0.0;
};

inline rt::PolicyConfig policy_of(rt::PolicyKind kind) {
  rt::PolicyConfig cfg;
  cfg.kind = kind;
  return cfg;
}

// Seer with a subset of mechanisms (Figure 4 / Figure 5 variants).
inline rt::PolicyConfig seer_variant(bool tx_locks, bool core_locks,
                                     bool htm_acquire, bool hill_climbing) {
  rt::PolicyConfig cfg;
  cfg.kind = rt::PolicyKind::kSeer;
  cfg.seer.enable_tx_locks = tx_locks;
  cfg.seer.enable_core_locks = core_locks;
  cfg.seer.enable_htm_lock_acquire = htm_acquire;
  cfg.seer.enable_hill_climbing = hill_climbing;
  return cfg;
}

}  // namespace seer::bench
