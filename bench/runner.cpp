#include "bench/runner.hpp"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <stdexcept>

#include "htm/abort_code.hpp"
#include "util/thread_pool.hpp"

namespace seer::bench {

namespace {

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

// Sparse victim-major dump of the simulator's exact conflict attribution —
// the reference tools/seer_inspect scores the inferred scheme against.
std::string ground_truth_json(const sim::MachineStats& s) {
  const std::size_t n = s.commits_by_type.size();
  std::string out = "{\"n_types\": ";
  append_u64(out, n);
  out += ", \"commits_by_type\": [";
  for (std::size_t t = 0; t < n; ++t) {
    if (t > 0) out += ", ";
    append_u64(out, s.commits_by_type[t]);
  }
  out += "], \"conflicts\": [";
  bool first = true;
  for (std::size_t v = 0; v < n; ++v) {
    for (std::size_t a = 0; a < n; ++a) {
      const std::uint64_t c = s.gt_conflicts[v * n + a];
      if (c == 0) continue;
      out += first ? "{\"x\": " : ", {\"x\": ";
      append_u64(out, v);
      out += ", \"y\": ";
      append_u64(out, a);
      out += ", \"count\": ";
      append_u64(out, c);
      out += "}";
      first = false;
    }
  }
  out += "]}";
  return out;
}

std::string scheme_json(const std::vector<std::vector<core::TxTypeId>>& rows) {
  std::string out = "[";
  for (std::size_t x = 0; x < rows.size(); ++x) {
    if (x > 0) out += ", ";
    out += "[";
    for (std::size_t j = 0; j < rows[x].size(); ++j) {
      if (j > 0) out += ", ";
      append_u64(out, rows[x][j]);
    }
    out += "]";
  }
  out += "]";
  return out;
}

std::string params_json(const core::InferenceParams& p) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "{\"th1\": %.9g, \"th2\": %.9g}", p.th1, p.th2);
  return buf;
}

}  // namespace

CellResult run_cell(const Cell& cell, const Options& opts, obs::TraceSink* trace,
                    workload::InstanceTrace* record) {
  CellResult out;
  Summary& sum = out.summary;
  util::RunningStats speedup;
  double census_lt = 0.0;
  double census_median = 0.0;
  int census_runs = 0;
  const bool want_metrics = !opts.metrics_path.empty();
  const bool want_snapshots = !opts.snapshots_path.empty();
  out.runs.reserve(static_cast<std::size_t>(opts.runs));
  for (int r = 0; r < opts.runs; ++r) {
    sim::MachineConfig cfg;
    cfg.n_threads = cell.threads;
    cfg.txs_per_thread = std::max<std::uint64_t>(
        200, static_cast<std::uint64_t>(
                 static_cast<double>(cell.info.bench_txs_per_thread) *
                 opts.txs_scale));
    cfg.policy = cell.policy;
    cfg.seed = opts.base_seed + static_cast<std::uint64_t>(r) * 7919;
    // One registry per run: snapshots are per-(cell, seed), so concurrent
    // cells never share mutable observability state (the --jobs-invariance
    // argument above extends to the --metrics output).
    obs::MetricsRegistry reg(cell.threads);
    if (want_metrics) cfg.metrics = &reg;
    if (trace != nullptr && r == 0) cfg.trace = trace;
    // Same isolation story as the registry: one recorder per (cell, seed),
    // fed only by this run's single-threaded simulator.
    obs::FlightRecorder recorder;
    if (want_snapshots) cfg.recorder = &recorder;
    // The cell's generator comes from the registry (or an implicit STAMP
    // adapter); --record wraps the first seed's instance stream in a
    // pass-through recorder, leaving the draws untouched.
    std::unique_ptr<sim::Workload> wl = cell.info.make(cell.threads);
    if (record != nullptr && r == 0) {
      wl = std::make_unique<workload::InstanceTraceRecorder>(
          std::move(wl), cell.threads, record);
    }
    sim::Machine machine(cfg, std::move(wl));
    reg.freeze();  // every component has registered by now
    const sim::MachineStats s = machine.run();

    RunRecord rec;
    if (want_metrics) rec.metrics = reg.snapshot().to_json();
    if (want_snapshots) {
      rec.flight = recorder.to_json();
      rec.ground_truth = ground_truth_json(s);
      rec.final_scheme = scheme_json(s.final_scheme);
      rec.final_params = params_json(s.final_params);
    }
    rec.seed = cfg.seed;
    rec.speedup = s.speedup();
    rec.commits = s.commits;
    rec.makespan = s.makespan;
    rec.commits_per_mcycle =
        s.makespan == 0 ? 0.0
                        : 1e6 * static_cast<double>(s.commits) /
                              static_cast<double>(s.makespan);
    rec.aborts_by_cause = s.aborts_by_cause;
    out.runs.push_back(rec);

    speedup.add(s.speedup());
    sum.sgl_fraction += s.mode_fraction(rt::CommitMode::kSglFallback);
    sum.aux_fraction += s.mode_fraction(rt::CommitMode::kHtmAuxLock);
    sum.sched_fraction += s.mode_fraction(rt::CommitMode::kHtmSchedLock);
    sum.tx_fraction += s.mode_fraction(rt::CommitMode::kHtmTxLocks);
    sum.core_fraction += s.mode_fraction(rt::CommitMode::kHtmCoreLock);
    sum.tx_core_fraction += s.mode_fraction(rt::CommitMode::kHtmTxAndCore);
    sum.no_lock_fraction += s.mode_fraction(rt::CommitMode::kHtmNoLocks);
    sum.aborts_per_commit +=
        s.commits > 0 ? static_cast<double>(s.aborts()) / static_cast<double>(s.commits)
                      : 0.0;
    sum.capacity_aborts += static_cast<double>(
        s.aborts_by_cause[static_cast<std::size_t>(htm::AbortCause::kCapacity)]);
    if (s.txlock_fraction.count() > 0) {
      census_median += s.txlock_fraction.percentile(0.5);
      // Estimate P(fraction < 0.23) by bisecting the percentile function
      // (§5.2's "under 23% of the locks" share).
      double lo = 0.0;
      double hi = 1.0;
      for (int it = 0; it < 20; ++it) {
        const double mid = 0.5 * (lo + hi);
        if (s.txlock_fraction.percentile(mid) < 0.23) {
          lo = mid;
        } else {
          hi = mid;
        }
      }
      census_lt += 0.5 * (lo + hi);
      ++census_runs;
    }
  }
  const double n = static_cast<double>(opts.runs);
  sum.speedup = speedup.mean();
  sum.sgl_fraction /= n;
  sum.aux_fraction /= n;
  sum.sched_fraction /= n;
  sum.tx_fraction /= n;
  sum.core_fraction /= n;
  sum.tx_core_fraction /= n;
  sum.no_lock_fraction /= n;
  sum.aborts_per_commit /= n;
  sum.capacity_aborts /= n;
  if (census_runs > 0) {
    sum.txlock_median_fraction = census_median / census_runs;
    sum.txlock_under_23pct = census_lt / census_runs;
  }
  return out;
}

std::vector<CellResult> run_cells(const std::vector<Cell>& cells,
                                  const Options& opts) {
  // With --trace, cell 0's first seed records into a sink that outlives the
  // sweep; it is drained (race-free: the producing worker has returned)
  // after the pool finishes.
  std::unique_ptr<obs::TraceSink> trace;
  if (!opts.trace_path.empty() && !cells.empty()) {
    trace = std::make_unique<obs::TraceSink>(cells[0].threads);
  }
  // --record follows the same cell-0/first-seed convention as --trace.
  std::unique_ptr<workload::InstanceTrace> record;
  if (!opts.record_path.empty() && !cells.empty()) {
    record = std::make_unique<workload::InstanceTrace>();
  }
  auto results = util::parallel_for_indexed(
      opts.effective_jobs(), cells.size(), [&](std::size_t i) {
        return run_cell(cells[i], opts, i == 0 ? trace.get() : nullptr,
                        i == 0 ? record.get() : nullptr);
      });
  if (record != nullptr) {
    if (!workload::write_trace_json(*record, opts.record_path)) {
      std::fprintf(stderr, "cannot open --record path: %s\n",
                   opts.record_path.c_str());
      std::exit(2);
    }
  }
  if (trace != nullptr) {
    if (!trace->write_chrome_json(opts.trace_path)) {
      std::fprintf(stderr, "cannot open --trace path: %s\n", opts.trace_path.c_str());
      std::exit(2);
    }
    if (trace->dropped() > 0) {
      // The Chrome JSON is a suffix of reality; say so where the user will
      // see it, naming the lanes that wrapped.
      const std::vector<std::uint64_t> lane_drops = trace->dropped_per_lane();
      std::fprintf(stderr,
                   "WARNING: --trace ring overflowed, %llu events lost "
                   "(per thread:",
                   static_cast<unsigned long long>(trace->dropped()));
      for (std::size_t t = 0; t < lane_drops.size(); ++t) {
        std::fprintf(stderr, " %llu",
                     static_cast<unsigned long long>(lane_drops[t]));
      }
      std::fprintf(stderr, "); raise the sink capacity or trace fewer cells\n");
    }
  }
  return results;
}

Summary run_config(const workload::Desc& info, const Options& opts,
                   rt::PolicyConfig policy, std::size_t threads) {
  Cell cell;
  cell.info = info;
  cell.policy = policy;
  cell.threads = threads;
  return run_cell(cell, opts).summary;
}

void write_json(const std::string& exhibit, const std::vector<Cell>& cells,
                const std::vector<CellResult>& results, const Options& opts) {
  if (opts.json_path.empty()) return;
  if (cells.size() != results.size()) {
    throw std::logic_error("write_json: cells/results size mismatch");
  }
  std::FILE* f = std::fopen(opts.json_path.c_str(), "w");
  if (f == nullptr) {
    // A CLI usage error, not a programming error: report and exit cleanly
    // instead of letting the exception terminate() the bench binary.
    std::fprintf(stderr, "cannot open --json path: %s\n", opts.json_path.c_str());
    std::exit(2);
  }
  std::fprintf(f,
               "{\n"
               "  \"exhibit\": \"%s\",\n"
               "  \"runs\": %d,\n"
               "  \"txs_scale\": %g,\n"
               "  \"base_seed\": %llu,\n"
               "  \"results\": [\n",
               exhibit.c_str(), opts.runs, opts.txs_scale,
               static_cast<unsigned long long>(opts.base_seed));
  bool first = true;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    const char* policy = cell.policy_label.empty()
                             ? rt::to_string(cell.policy.kind)
                             : cell.policy_label.c_str();
    for (const RunRecord& r : results[i].runs) {
      std::fprintf(
          f,
          "%s    {\"workload\": \"%s\", \"policy\": \"%s\", \"threads\": %zu, "
          "\"seed\": %llu, \"speedup\": %.6f, \"commits\": %llu, "
          "\"makespan_cycles\": %llu, \"commits_per_mcycle\": %.6f, "
          "\"aborts\": {\"conflict\": %llu, \"capacity\": %llu, "
          "\"explicit\": %llu, \"other\": %llu}}",
          first ? "" : ",\n", cell.info.name.c_str(), policy, cell.threads,
          static_cast<unsigned long long>(r.seed), r.speedup,
          static_cast<unsigned long long>(r.commits),
          static_cast<unsigned long long>(r.makespan), r.commits_per_mcycle,
          static_cast<unsigned long long>(
              r.aborts_by_cause[static_cast<std::size_t>(htm::AbortCause::kConflict)]),
          static_cast<unsigned long long>(
              r.aborts_by_cause[static_cast<std::size_t>(htm::AbortCause::kCapacity)]),
          static_cast<unsigned long long>(
              r.aborts_by_cause[static_cast<std::size_t>(htm::AbortCause::kExplicit)]),
          static_cast<unsigned long long>(
              r.aborts_by_cause[static_cast<std::size_t>(htm::AbortCause::kOther)]));
      first = false;
    }
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
}

void write_metrics_json(const std::string& exhibit, const std::vector<Cell>& cells,
                        const std::vector<CellResult>& results, const Options& opts) {
  if (opts.metrics_path.empty()) return;
  if (cells.size() != results.size()) {
    throw std::logic_error("write_metrics_json: cells/results size mismatch");
  }
  std::FILE* f = std::fopen(opts.metrics_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open --metrics path: %s\n", opts.metrics_path.c_str());
    std::exit(2);
  }
  std::fprintf(f,
               "{\n"
               "  \"exhibit\": \"%s\",\n"
               "  \"runs\": %d,\n"
               "  \"txs_scale\": %g,\n"
               "  \"base_seed\": %llu,\n"
               "  \"results\": [\n",
               exhibit.c_str(), opts.runs, opts.txs_scale,
               static_cast<unsigned long long>(opts.base_seed));
  bool first = true;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    const char* policy = cell.policy_label.empty()
                             ? rt::to_string(cell.policy.kind)
                             : cell.policy_label.c_str();
    for (const RunRecord& r : results[i].runs) {
      // r.metrics is already a JSON object (MetricsSnapshot::to_json).
      std::fprintf(f,
                   "%s    {\"workload\": \"%s\", \"policy\": \"%s\", "
                   "\"threads\": %zu, \"seed\": %llu, \"metrics\": %s}",
                   first ? "" : ",\n", cell.info.name.c_str(), policy,
                   cell.threads, static_cast<unsigned long long>(r.seed),
                   r.metrics.empty() ? "{}" : r.metrics.c_str());
      first = false;
    }
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
}

void write_snapshots_json(const std::string& exhibit, const std::vector<Cell>& cells,
                          const std::vector<CellResult>& results, const Options& opts) {
  if (opts.snapshots_path.empty()) return;
  if (cells.size() != results.size()) {
    throw std::logic_error("write_snapshots_json: cells/results size mismatch");
  }
  std::FILE* f = std::fopen(opts.snapshots_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open --snapshots path: %s\n",
                 opts.snapshots_path.c_str());
    std::exit(2);
  }
  std::fprintf(f,
               "{\n"
               "  \"version\": 1,\n"
               "  \"exhibit\": \"%s\",\n"
               "  \"runs\": %d,\n"
               "  \"txs_scale\": %g,\n"
               "  \"base_seed\": %llu,\n"
               "  \"results\": [\n",
               exhibit.c_str(), opts.runs, opts.txs_scale,
               static_cast<unsigned long long>(opts.base_seed));
  bool first = true;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    const char* policy = cell.policy_label.empty()
                             ? rt::to_string(cell.policy.kind)
                             : cell.policy_label.c_str();
    for (const RunRecord& r : results[i].runs) {
      std::fprintf(f,
                   "%s    {\"workload\": \"%s\", \"policy\": \"%s\", "
                   "\"threads\": %zu, \"seed\": %llu, \"flight\": %s, "
                   "\"ground_truth\": %s, \"final_scheme\": %s, "
                   "\"final_params\": %s}",
                   first ? "" : ",\n", cell.info.name.c_str(), policy,
                   cell.threads, static_cast<unsigned long long>(r.seed),
                   r.flight.empty() ? "{}" : r.flight.c_str(),
                   r.ground_truth.empty() ? "{}" : r.ground_truth.c_str(),
                   r.final_scheme.empty() ? "[]" : r.final_scheme.c_str(),
                   r.final_params.empty() ? "{}" : r.final_params.c_str());
      first = false;
    }
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
}

void write_outputs(const std::string& exhibit, const std::vector<Cell>& cells,
                   const std::vector<CellResult>& results, const Options& opts) {
  write_json(exhibit, cells, results, opts);
  write_metrics_json(exhibit, cells, results, opts);
  write_snapshots_json(exhibit, cells, results, opts);
}

}  // namespace seer::bench
