// Parallel evaluation runner.
//
// An exhibit (Figure 3, Table 3, ...) is a flat vector of Cells — one per
// (workload, policy, thread-count) configuration. run_cells() fans them out
// across a worker pool and returns results indexed exactly like the input,
// so the printing code that follows is oblivious to how many workers ran.
// Determinism argument: a cell's result depends only on (cell, Options) —
// every simulator run builds its own Machine/PolicyShared/Workload from a
// fixed seed and shares nothing mutable — so the result vector, and hence
// the exhibit's output, is byte-identical for any --jobs value.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "workload/trace.hpp"

namespace seer::bench {

struct Cell {
  // Any registered generator (workload::Desc converts implicitly from
  // stamp::WorkloadInfo, so exhibits that hand-build STAMP cells compile
  // unchanged).
  workload::Desc info;
  rt::PolicyConfig policy;
  std::size_t threads = 8;
  // Label used in --json output; defaults to to_string(policy.kind) when
  // empty (variants like "Seer-profile-only" override it).
  std::string policy_label;
};

// One simulator run (one seed) of one cell — the unit of the --json output.
struct RunRecord {
  std::uint64_t seed = 0;
  double speedup = 0.0;
  std::uint64_t commits = 0;
  std::uint64_t makespan = 0;           // simulated cycles
  double commits_per_mcycle = 0.0;      // commit throughput (per 1e6 cycles)
  std::array<std::uint64_t, 4> aborts_by_cause{};  // indexed by AbortCause
  // MetricsRegistry snapshot of this run as a JSON object (--metrics only;
  // empty otherwise). Deterministic per (cell, seed): the simulator is
  // single-threaded and registration order is fixed, so the --metrics file
  // is byte-identical for any --jobs value.
  std::string metrics;
  // Model-introspection dump of this run as JSON fragments (--snapshots
  // only; empty otherwise). Deterministic per (cell, seed) by the same
  // argument as `metrics`: the per-run FlightRecorder is private to the
  // run and fed only from the single-threaded simulator.
  std::string flight;        // FlightRecorder::to_json() object
  std::string ground_truth;  // {"n_types": N, "conflicts": [{x,y,count}...]}
  std::string final_scheme;  // locksToAcquire rows as a JSON array
  std::string final_params;  // {"th1": ..., "th2": ...}
};

struct CellResult {
  Summary summary;
  std::vector<RunRecord> runs;  // in seed order
};

// Runs one configuration over opts.runs seeds — the serial kernel. When
// `trace` is non-null the first seed's run records trace events into it
// (the sink's lane count must cover cell.threads). When `record` is
// non-null the first seed's workload stream is captured into it as an
// instance trace (replayable via the "trace-replay" generator).
[[nodiscard]] CellResult run_cell(const Cell& cell, const Options& opts,
                                  obs::TraceSink* trace = nullptr,
                                  workload::InstanceTrace* record = nullptr);

// Runs every cell across opts.effective_jobs() workers; result i belongs to
// cells[i]. Exceptions from a cell propagate (lowest index first). With
// --trace, cell 0's first seed is traced and the Chrome JSON is written to
// opts.trace_path before returning; with --record, cell 0's first seed's
// instance stream is written to opts.record_path the same way.
[[nodiscard]] std::vector<CellResult> run_cells(const std::vector<Cell>& cells,
                                                const Options& opts);

// One-off convenience used by tests and ad-hoc probes.
[[nodiscard]] Summary run_config(const workload::Desc& info,
                                 const Options& opts, rt::PolicyConfig policy,
                                 std::size_t threads);

// Writes opts.json_path (no-op when empty): an object with the harness
// parameters and one record per (cell, seed), in cell order — the stable
// format BENCH_*.json perf trajectories are tracked with across PRs.
void write_json(const std::string& exhibit, const std::vector<Cell>& cells,
                const std::vector<CellResult>& results, const Options& opts);

// Writes opts.metrics_path (no-op when empty): one MetricsRegistry snapshot
// per (cell, seed), in cell order. Byte-identical for any --jobs value.
void write_metrics_json(const std::string& exhibit, const std::vector<Cell>& cells,
                        const std::vector<CellResult>& results, const Options& opts);

// Writes opts.snapshots_path (no-op when empty): one flight-recorder dump +
// simulator ground truth per (cell, seed), in cell order — the input format
// of tools/seer_inspect (DESIGN.md §9). Byte-identical for any --jobs value.
void write_snapshots_json(const std::string& exhibit, const std::vector<Cell>& cells,
                          const std::vector<CellResult>& results, const Options& opts);

// write_json + write_metrics_json + write_snapshots_json — what every
// exhibit main calls.
void write_outputs(const std::string& exhibit, const std::vector<Cell>& cells,
                   const std::vector<CellResult>& results, const Options& opts);

}  // namespace seer::bench
