#!/usr/bin/env python3
"""Subprocess tests for the workload-config front doors (stdlib unittest).

Exercises the two binaries that end users point at a workload JSON file —
`seer_inspect --validate-workload` and any bench exhibit's `--workload` —
and asserts that bad configs exit non-zero with a diagnostic naming the bad
key, while good configs validate cleanly.

Unlike test_check_bench_regression.py this needs compiled binaries, so it
runs under ctest (tests/CMakeLists.txt passes the paths via environment)
rather than in the source-only python-tools CI job. Run by hand with:

    SEER_INSPECT_BIN=build/tools/seer_inspect \
    SEER_BENCH_BIN=build/bench/fig3_speedup \
    python3 scripts/test_workload_config.py -v
"""

import json
import os
import subprocess
import tempfile
import unittest

INSPECT_BIN = os.environ.get("SEER_INSPECT_BIN", "")
BENCH_BIN = os.environ.get("SEER_BENCH_BIN", "")


def spec_config(**overrides):
    """A minimal valid "spec" workload config; keyword args replace keys."""
    doc = {
        "generator": "spec",
        "name": "mini",
        "txs_per_thread": 50,
        "params": {
            "regions": [{"name": "r", "lines": 64}],
            "types": [
                {"name": "get", "duration_mean": 100,
                 "accesses": [{"region": "r", "reads": 2}]},
            ],
            "mix": [1],
        },
    }
    doc.update(overrides)
    return doc


def phased_config():
    """A minimal valid two-phase config (regime shift at progress 0.5)."""
    spec = spec_config()["params"]
    return {
        "generator": "phased",
        "name": "mini-phased",
        "txs_per_thread": 50,
        "params": {
            "phases": [
                {"until": 0.5, "spec": spec},
                {"until": 1.0, "spec": spec},
            ],
        },
    }


@unittest.skipUnless(os.access(INSPECT_BIN, os.X_OK),
                     "SEER_INSPECT_BIN not set or not executable")
class ValidateWorkloadTest(unittest.TestCase):
    """seer_inspect --validate-workload CONFIG.json"""

    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def write(self, name, doc):
        path = os.path.join(self.tmp.name, name)
        with open(path, "w", encoding="utf-8") as f:
            json.dump(doc, f)
        return path

    def validate(self, path):
        proc = subprocess.run(
            [INSPECT_BIN, "--validate-workload", path],
            capture_output=True, text=True, check=False)
        return proc.returncode, proc.stdout, proc.stderr

    def test_good_spec_config_validates(self):
        code, out, err = self.validate(self.write("ok.json", spec_config()))
        self.assertEqual(code, 0, err)
        self.assertIn("OK", out)
        self.assertIn("mini", out)

    def test_good_phased_config_validates(self):
        code, out, err = self.validate(
            self.write("phased.json", phased_config()))
        self.assertEqual(code, 0, err)
        self.assertIn("OK", out)

    def test_unknown_generator_names_it_and_lists_known(self):
        doc = spec_config(generator="nope")
        code, _, err = self.validate(self.write("bad.json", doc))
        self.assertEqual(code, 2)
        self.assertIn("unknown generator", err)
        self.assertIn("nope", err)
        self.assertIn("genome", err)  # the listing of known names

    def test_missing_generator_key_is_named(self):
        doc = spec_config()
        del doc["generator"]
        code, _, err = self.validate(self.write("bad.json", doc))
        self.assertEqual(code, 2)
        self.assertIn("generator", err)

    def test_mistyped_field_is_named(self):
        doc = spec_config(txs_per_thread="lots")
        code, _, err = self.validate(self.write("bad.json", doc))
        self.assertEqual(code, 2)
        self.assertIn("txs_per_thread", err)

    def test_out_of_range_phase_boundary_is_named(self):
        doc = phased_config()
        doc["params"]["phases"][1]["until"] = 2.0
        code, _, err = self.validate(self.write("bad.json", doc))
        self.assertEqual(code, 2)
        self.assertIn("until", err)
        self.assertIn("(0, 1]", err)

    def test_unknown_param_key_is_named(self):
        doc = spec_config()
        doc["params"]["bogus"] = 1
        code, _, err = self.validate(self.write("bad.json", doc))
        self.assertEqual(code, 2)
        self.assertIn("bogus", err)

    def test_missing_file_fails_cleanly(self):
        code, _, err = self.validate(
            os.path.join(self.tmp.name, "absent.json"))
        self.assertEqual(code, 2)
        self.assertIn("absent.json", err)

    # --- open_loop section (the serving harness's traffic description) ----

    def open_loop_config(self, open_loop):
        return spec_config(open_loop=open_loop)

    def test_good_open_loop_section_validates(self):
        doc = self.open_loop_config({
            "rate": 1000, "process": "poisson", "duration_s": 1.0,
            "diurnal": {"period_s": 2.0, "amplitude": 0.3},
            "bursts": [{"at_s": 0.5, "duration_s": 0.2, "multiplier": 4.0}],
        })
        code, out, err = self.validate(self.write("serve.json", doc))
        self.assertEqual(code, 0, err)
        self.assertIn("OK", out)

    def test_open_loop_rate_and_sweep_are_mutually_exclusive(self):
        doc = self.open_loop_config(
            {"rate": 100, "sweep": {"rates": [100, 200]}})
        code, _, err = self.validate(self.write("bad.json", doc))
        self.assertEqual(code, 2)
        self.assertIn("mutually exclusive", err)

    def test_open_loop_without_rate_or_sweep_is_named(self):
        doc = self.open_loop_config({"duration_s": 1.0})
        code, _, err = self.validate(self.write("bad.json", doc))
        self.assertEqual(code, 2)
        self.assertIn("rate", err)

    def test_open_loop_unknown_process_is_named(self):
        doc = self.open_loop_config({"rate": 100, "process": "bursty"})
        code, _, err = self.validate(self.write("bad.json", doc))
        self.assertEqual(code, 2)
        self.assertIn("bursty", err)

    def test_open_loop_diurnal_amplitude_must_stay_below_one(self):
        doc = self.open_loop_config(
            {"rate": 100,
             "diurnal": {"period_s": 1.0, "amplitude": 1.0}})
        code, _, err = self.validate(self.write("bad.json", doc))
        self.assertEqual(code, 2)
        self.assertIn("amplitude", err)

    def test_open_loop_sweep_rates_must_strictly_increase(self):
        doc = self.open_loop_config({"sweep": {"rates": [200, 200]}})
        code, _, err = self.validate(self.write("bad.json", doc))
        self.assertEqual(code, 2)
        self.assertIn("strictly increasing", err)

    def test_open_loop_zero_queue_capacity_is_rejected(self):
        doc = self.open_loop_config({"rate": 100, "queue_capacity": 0})
        code, _, err = self.validate(self.write("bad.json", doc))
        self.assertEqual(code, 2)
        self.assertIn("queue_capacity", err)

    def test_open_loop_unknown_key_is_named(self):
        doc = self.open_loop_config({"rate": 100, "queue_cap": 64})
        code, _, err = self.validate(self.write("bad.json", doc))
        self.assertEqual(code, 2)
        self.assertIn("queue_cap", err)


@unittest.skipUnless(os.access(BENCH_BIN, os.X_OK),
                     "SEER_BENCH_BIN not set or not executable")
class BenchWorkloadFlagTest(unittest.TestCase):
    """A bench exhibit's --workload flag must reject bad inputs non-zero
    before running anything."""

    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def run_bench(self, workload_arg):
        proc = subprocess.run(
            [BENCH_BIN, "--runs", "1", "--txs-scale", "0.01",
             "--workload", workload_arg],
            capture_output=True, text=True, check=False)
        return proc.returncode, proc.stderr

    def test_unknown_workload_name_exits_nonzero(self):
        code, err = self.run_bench("no-such-workload")
        self.assertEqual(code, 2)
        self.assertIn("unknown generator", err)
        self.assertIn("no-such-workload", err)

    def test_bad_config_file_exits_nonzero_naming_the_key(self):
        doc = spec_config()
        del doc["params"]["regions"]
        path = os.path.join(self.tmp.name, "bad.json")
        with open(path, "w", encoding="utf-8") as f:
            json.dump(doc, f)
        code, err = self.run_bench(path)
        self.assertEqual(code, 2)
        self.assertIn("regions", err)

    def test_missing_config_file_exits_nonzero(self):
        code, err = self.run_bench(
            os.path.join(self.tmp.name, "absent.json"))
        self.assertEqual(code, 2)
        self.assertIn("absent.json", err)


if __name__ == "__main__":
    unittest.main()
