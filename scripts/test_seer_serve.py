#!/usr/bin/env python3
"""Subprocess tests for tools/seer_serve (stdlib unittest).

The contract under test is the serving harness's reproducibility story:
`--deterministic` must produce byte-identical JSONL across repeated runs and
across `--jobs`, bad configs must exit 2 with a diagnostic naming the
problem, and the emitted stream must satisfy scripts/process_serve_logs.py's
validator end to end.

Needs the compiled binary, so it runs under ctest (tests/CMakeLists.txt
passes the path via environment). Run by hand with:

    SEER_SERVE_BIN=build/tools/seer_serve \
    python3 scripts/test_seer_serve.py -v
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SERVE_BIN = os.environ.get("SEER_SERVE_BIN", "")
PROCESS_LOGS = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            "process_serve_logs.py")


def serve_config(open_loop):
    """A small valid service config; `open_loop` is the traffic section."""
    doc = {
        "generator": "spec",
        "name": "serve-cli-test",
        "params": {
            "think_mean": 0,
            "regions": [{"name": "hot", "lines": 64, "zipf_skew": 0.9}],
            "types": [
                {"name": "lookup", "duration_mean": 300,
                 "accesses": [{"region": "hot", "reads": 4}]},
                {"name": "update", "duration_mean": 500,
                 "accesses": [{"region": "hot", "reads": 2, "writes": 2}]},
            ],
            "mix": [3, 1],
        },
    }
    if open_loop is not None:
        doc["open_loop"] = open_loop
    return doc


SMALL_OPEN_LOOP = {
    "rate": 5000, "duration_s": 0.3, "warmup_s": 0.05,
    "queue_capacity": 64, "workers": 2, "emit_interval_ms": 50,
    "cycles_per_us": 1.0,
    "bursts": [{"at_s": 0.15, "duration_s": 0.05, "multiplier": 3.0}],
}

SWEEP_OPEN_LOOP = {
    "sweep": {"rates": [500, 2000, 8000], "knee_p99_ms": 2.0},
    "duration_s": 0.2, "queue_capacity": 64, "workers": 1,
    "cycles_per_us": 1.0,
}


@unittest.skipUnless(os.access(SERVE_BIN, os.X_OK),
                     "SEER_SERVE_BIN not set or not executable")
class SeerServeCliTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def write_config(self, open_loop, name="serve.json"):
        path = os.path.join(self.tmp.name, name)
        with open(path, "w", encoding="utf-8") as f:
            json.dump(serve_config(open_loop), f)
        return path

    def run_serve(self, *args):
        proc = subprocess.run([SERVE_BIN, *args], capture_output=True,
                              text=True, check=False)
        return proc.returncode, proc.stdout, proc.stderr

    def serve_bytes(self, config, *args):
        """One deterministic run; returns the JSONL bytes from --out."""
        out = os.path.join(self.tmp.name, "out.jsonl")
        code, _, err = self.run_serve("--workload", config, "--deterministic",
                                      "--out", out, *args)
        self.assertEqual(code, 0, err)
        with open(out, "rb") as f:
            return f.read()

    def test_deterministic_runs_are_byte_identical(self):
        config = self.write_config(SMALL_OPEN_LOOP)
        first = self.serve_bytes(config, "--seed", "3")
        second = self.serve_bytes(config, "--seed", "3")
        self.assertEqual(first, second)
        # A different seed must actually change the sampled arrivals.
        self.assertNotEqual(first, self.serve_bytes(config, "--seed", "4"))

    def test_sweep_is_jobs_invariant(self):
        config = self.write_config(SWEEP_OPEN_LOOP)
        serial = self.serve_bytes(config, "--jobs", "1")
        threaded = self.serve_bytes(config, "--jobs", "4")
        self.assertEqual(serial, threaded)

    def test_stream_passes_the_log_processor(self):
        config = self.write_config(SWEEP_OPEN_LOOP)
        out = os.path.join(self.tmp.name, "sweep.jsonl")
        code, _, err = self.run_serve("--workload", config, "--deterministic",
                                      "--out", out)
        self.assertEqual(code, 0, err)
        proc = subprocess.run(
            [sys.executable, PROCESS_LOGS, out, "--check"],
            capture_output=True, text=True, check=False)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("3 step(s)", proc.stdout)

    def test_config_without_open_loop_exits_2(self):
        config = self.write_config(None)
        code, _, err = self.run_serve("--workload", config, "--deterministic")
        self.assertEqual(code, 2)
        self.assertIn("open_loop", err)

    def test_bad_open_loop_key_is_named(self):
        bad = dict(SMALL_OPEN_LOOP)
        bad["queue_cap"] = 64
        config = self.write_config(bad)
        code, _, err = self.run_serve("--workload", config, "--deterministic")
        self.assertEqual(code, 2)
        self.assertIn("queue_cap", err)

    def test_unknown_policy_exits_2(self):
        config = self.write_config(SMALL_OPEN_LOOP)
        code, _, err = self.run_serve("--workload", config, "--deterministic",
                                      "--policy", "Oracle9000")
        self.assertEqual(code, 2)
        self.assertIn("Oracle9000", err)

    def test_missing_workload_flag_is_a_usage_error(self):
        code, _, err = self.run_serve("--deterministic")
        self.assertEqual(code, 2)
        self.assertIn("--workload", err)

    def test_rate_override_replaces_the_config_rate(self):
        config = self.write_config(SMALL_OPEN_LOOP)
        out = os.path.join(self.tmp.name, "o.jsonl")
        code, _, err = self.run_serve("--workload", config, "--deterministic",
                                      "--rate", "1234", "--out", out)
        self.assertEqual(code, 0, err)
        with open(out, encoding="utf-8") as f:
            header = json.loads(f.readline())
        self.assertEqual(header["rates"], [1234])


if __name__ == "__main__":
    unittest.main()
