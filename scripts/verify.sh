#!/usr/bin/env bash
# Full verification sweep: tier-1 tests, both sanitizer presets, and a
# 100-iteration property run (see README "Verification" and DESIGN.md §7).
# Usage: scripts/verify.sh [jobs]   (default: nproc)
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc)}"

echo "== tier-1: configure + build + ctest (build/, ${JOBS} jobs) =="
cmake -B build -S . >/dev/null
cmake --build build -j"${JOBS}"
ctest --test-dir build --output-on-failure -j"${JOBS}"

for preset in tsan asan-ubsan; do
  echo "== sanitizer preset: ${preset} =="
  cmake --preset "${preset}" >/dev/null
  cmake --build --preset "${preset}" -j"${JOBS}"
  ctest --preset "${preset}" -j"${JOBS}"
done

echo "== property sweep: 100 iterations =="
SEER_PROPERTY_ITERS=100 ./build/tests/property_test \
  --gtest_filter='PropertyHarness.RandomWorkloadsStayOpaque'

echo "verify.sh: all green"
