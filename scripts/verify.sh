#!/usr/bin/env bash
# Full verification sweep: tier-1 tests, both sanitizer presets, and a
# 100-iteration property run (see README "Verification" and DESIGN.md §7).
#
# Usage: scripts/verify.sh [stage] [jobs]
#   stage: tier1 | sanitizers | property | all   (default: all)
#   jobs:  parallel build/test jobs              (default: nproc)
# The old `scripts/verify.sh [jobs]` form still works: a numeric first
# argument is taken as the jobs count.

# `sh scripts/verify.sh` used to *pass* vacuously: dash rejects
# `set -o pipefail`, aborted before running a single test, and the exit
# status of the failed `set` was 0 on some shells. Re-exec under bash so the
# interpreter can never silently change what this script checks.
if [ -z "${BASH_VERSION:-}" ]; then
  exec bash "$0" "$@"
fi

set -euo pipefail
cd "$(dirname "$0")/.."

STAGE="all"
JOBS=""
for arg in "$@"; do
  case "${arg}" in
    tier1|sanitizers|property|all) STAGE="${arg}" ;;
    ''|*[!0-9]*)
      echo "usage: scripts/verify.sh [tier1|sanitizers|property|all] [jobs]" >&2
      exit 2
      ;;
    *) JOBS="${arg}" ;;
  esac
done
JOBS="${JOBS:-$(nproc)}"

run_tier1() {
  echo "== tier-1: configure + build + ctest (build/, ${JOBS} jobs) =="
  cmake -B build -S . >/dev/null
  cmake --build build -j"${JOBS}"
  ctest --test-dir build --output-on-failure -j"${JOBS}"
}

run_sanitizers() {
  local preset
  for preset in tsan asan-ubsan; do
    echo "== sanitizer preset: ${preset} =="
    cmake --preset "${preset}" >/dev/null
    cmake --build --preset "${preset}" -j"${JOBS}"
    ctest --preset "${preset}" -j"${JOBS}"
  done
}

run_property() {
  echo "== property sweep: 100 iterations =="
  if [ ! -x ./build/tests/property_test ]; then
    echo "build/tests/property_test missing — run the tier1 stage first" >&2
    exit 1
  fi
  SEER_PROPERTY_ITERS=100 ./build/tests/property_test \
    --gtest_filter='PropertyHarness.RandomWorkloadsStayOpaque'
}

case "${STAGE}" in
  tier1) run_tier1 ;;
  sanitizers) run_sanitizers ;;
  property) run_property ;;
  all)
    run_tier1
    run_sanitizers
    run_property
    ;;
esac

echo "verify.sh: stage '${STAGE}' green"
