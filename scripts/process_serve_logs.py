#!/usr/bin/env python3
"""Process a seer-serve JSONL run into summaries and graphs.

Input is the stream tools/seer_serve writes: one `serve_header` line, periodic
`interval` lines (traffic and queue-depth deltas plus bucket-estimate
latencies), one `step` line per swept rate (exact nearest-rank quantiles),
and a closing `summary` line naming the saturation knee.

Outputs, written to --out-dir:

  serve_summary.json   per-step latency/throughput record set, marked with
                       "serve_summary": 1 — the schema
                       scripts/check_bench_regression.py gates against
                       bench/baseline_serve.json
  timeseries.csv       the interval lines as CSV, for ad-hoc plotting
  serve_graph.svg      hand-rolled SVG (no plotting deps): offered vs
                       completed rate and queue depth over time, latency
                       estimates over time, and — for sweeps — the
                       tail-latency-vs-offered-load curve

With --check the stream is only validated (exit 0/2), nothing is written.

Exit codes: 0 ok, 2 malformed stream or usage error.
"""

import argparse
import csv
import json
import os
import sys

HEADER_REQUIRED = ("workload", "policy", "mode", "process", "workers",
                   "rates", "duration_s", "seed")
STEP_REQUIRED = ("step", "offered_rate", "duration_s", "arrivals", "accepted",
                 "rejected", "rejected_fraction", "completed",
                 "throughput_rps", "latency_ns", "queue_depth_peak",
                 "sgl_fraction")
LATENCY_REQUIRED = ("count", "mean", "p50", "p90", "p99", "p999", "max")
INTERVAL_REQUIRED = ("step", "t_s", "offered_rate", "arrivals", "accepted",
                     "rejected", "completed", "queue_depth", "p50_est_us",
                     "p99_est_us")
SUMMARY_REQUIRED = ("steps", "knee_rate", "saturated", "worst_p99_ns",
                    "arrivals", "rejected", "completed")


def fail(msg):
    print(f"error: {msg}", file=sys.stderr)
    sys.exit(2)


def require(rec, fields, where):
    missing = [f for f in fields if f not in rec]
    if missing:
        fail(f"{where}: missing {missing}")


def parse_stream(path):
    """Returns (header, intervals, steps, summary), validated."""
    header, intervals, steps, summary = None, [], [], None
    try:
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        fail(f"cannot read {path}: {e}")
    for n, line in enumerate(lines, 1):
        if not line.strip():
            continue
        where = f"{path}:{n}"
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as e:
            fail(f"{where}: not JSON: {e}")
        kind = rec.get("kind")
        if kind == "serve_header":
            if header is not None:
                fail(f"{where}: second serve_header")
            require(rec, HEADER_REQUIRED, where)
            header = rec
        elif kind == "interval":
            require(rec, INTERVAL_REQUIRED, where)
            intervals.append(rec)
        elif kind == "step":
            require(rec, STEP_REQUIRED, where)
            require(rec["latency_ns"], LATENCY_REQUIRED,
                    f"{where} latency_ns")
            steps.append(rec)
        elif kind == "summary":
            if summary is not None:
                fail(f"{where}: second summary")
            require(rec, SUMMARY_REQUIRED, where)
            summary = rec
        else:
            fail(f"{where}: unknown kind {kind!r}")
        if header is None:
            fail(f"{where}: first line must be the serve_header")
    if header is None:
        fail(f"{path}: empty stream")
    if not steps:
        fail(f"{path}: no step lines")
    if summary is None:
        fail(f"{path}: no summary line")
    if summary["steps"] != len(steps):
        fail(f"{path}: summary says {summary['steps']} steps, "
             f"stream has {len(steps)}")
    for s in steps:
        if s["accepted"] + s["rejected"] != s["arrivals"]:
            fail(f"{path}: step {s['step']}: accepted + rejected != arrivals")
    return header, intervals, steps, summary


def build_summary(path, header, steps, summary):
    recs = []
    for s in steps:
        lat = s["latency_ns"]
        recs.append({
            "offered_rate": s["offered_rate"],
            "throughput_rps": s["throughput_rps"],
            "rejected_fraction": s["rejected_fraction"],
            "completed": s["completed"],
            "mean_ns": lat["mean"],
            "p50_ns": lat["p50"],
            "p90_ns": lat["p90"],
            "p99_ns": lat["p99"],
            "p999_ns": lat["p999"],
            "max_ns": lat["max"],
            "queue_depth_peak": s["queue_depth_peak"],
            "sgl_fraction": s["sgl_fraction"],
        })
    return {
        "serve_summary": 1,
        "source": os.path.basename(path),
        "workload": header["workload"],
        "policy": header["policy"],
        "mode": header["mode"],
        "process": header["process"],
        "workers": header["workers"],
        "duration_s": header["duration_s"],
        "seed": header["seed"],
        "knee_rate": summary["knee_rate"],
        "saturated": summary["saturated"],
        "worst_p99_ns": summary["worst_p99_ns"],
        "steps": recs,
    }


# --- SVG (no plotting dependencies on CI runners) ---------------------------

W, H, PAD = 760, 220, 48
COLORS = ("#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e")


def polyline(points, color, width=1.5):
    pts = " ".join(f"{x:.1f},{y:.1f}" for x, y in points)
    return (f'<polyline fill="none" stroke="{color}" '
            f'stroke-width="{width}" points="{pts}"/>')


def text(x, y, s, size=11, color="#333", anchor="start"):
    return (f'<text x="{x:.1f}" y="{y:.1f}" font-size="{size}" '
            f'fill="{color}" text-anchor="{anchor}" '
            f'font-family="sans-serif">{s}</text>')


def panel(y0, title, series, xlabel, ylabel, logy=False):
    """One chart panel: series is [(label, [(x, y)...]), ...]."""
    import math
    out = [text(PAD, y0 + 14, title, size=12)]
    xs = [p[0] for _, pts in series for p in pts]
    ys = [p[1] for _, pts in series for p in pts]
    if not xs:
        return out
    xmin, xmax = min(xs), max(xs)
    ymin, ymax = min(ys), max(ys)
    if logy:
        floor = min((y for y in ys if y > 0), default=1.0)
        ymin = math.log10(max(floor, 1e-3))
        ymax = math.log10(max(ymax, 10 ** ymin * 10))
    if xmax <= xmin:
        xmax = xmin + 1
    if ymax <= ymin:
        ymax = ymin + 1
    px0, px1 = PAD, W - PAD
    py0, py1 = y0 + H - 28, y0 + 26

    def sx(x):
        return px0 + (x - xmin) / (xmax - xmin) * (px1 - px0)

    def sy(y):
        if logy:
            y = math.log10(y) if y > 0 else ymin
        return py0 - (y - ymin) / (ymax - ymin) * (py0 - py1)

    out.append(f'<rect x="{px0}" y="{py1}" width="{px1 - px0}" '
               f'height="{py0 - py1}" fill="none" stroke="#bbb"/>')
    for i, (label, pts) in enumerate(series):
        color = COLORS[i % len(COLORS)]
        out.append(polyline([(sx(x), sy(y)) for x, y in pts], color))
        out.append(text(px1 - 4, py1 + 14 + 13 * i, label, color=color,
                        anchor="end"))
    fmt = (lambda v: f"1e{v:.0f}") if logy else (lambda v: f"{v:g}")
    out.append(text(px0 - 4, py0 + 4, fmt(ymin), size=10, anchor="end"))
    out.append(text(px0 - 4, py1 + 4, fmt(ymax), size=10, anchor="end"))
    out.append(text(px0, py0 + 16, f"{xmin:g}", size=10))
    out.append(text(px1, py0 + 16, f"{xmax:g}", size=10, anchor="end"))
    out.append(text((px0 + px1) / 2, py0 + 16, xlabel, size=10,
                    anchor="middle"))
    out.append(text(px0 + 4, py1 + 14, ylabel, size=10))
    return out


def build_svg(header, intervals, steps):
    panels = []
    secs = [i["t_s"] for i in intervals]
    if intervals:
        em = max(1e-9, (secs[1] - secs[0]) if len(secs) > 1
                 else header.get("duration_s", 1))
        panels.append((
            "traffic over time "
            f"({header['workload']}, {header['policy']}, {header['mode']})",
            [("offered/s", [(i["t_s"], i["offered_rate"])
                            for i in intervals]),
             ("completed/s", [(i["t_s"], i["completed"] / em)
                              for i in intervals]),
             ("queue depth", [(i["t_s"], i["queue_depth"])
                              for i in intervals])],
            "t (s)", "rate / depth", False))
        panels.append((
            "latency estimate over time",
            [("p99 est (us)", [(i["t_s"], max(i["p99_est_us"], 1e-3))
                               for i in intervals]),
             ("p50 est (us)", [(i["t_s"], max(i["p50_est_us"], 1e-3))
                               for i in intervals])],
            "t (s)", "latency (us, log)", True))
    if len(steps) > 1:
        panels.append((
            "tail latency vs offered load",
            [(q, [(s["offered_rate"],
                   max(s["latency_ns"][q] / 1e6, 1e-3)) for s in steps])
             for q in ("p50", "p99", "p999")],
            "offered rate (req/s)", "latency (ms, log)", True))
    total_h = len(panels) * H + 10
    parts = [f'<svg xmlns="http://www.w3.org/2000/svg" width="{W}" '
             f'height="{total_h}" viewBox="0 0 {W} {total_h}">',
             f'<rect width="{W}" height="{total_h}" fill="white"/>']
    for i, (title, series, xl, yl, logy) in enumerate(panels):
        parts.extend(panel(i * H + 6, title, series, xl, yl, logy))
    parts.append("</svg>")
    return "\n".join(parts) + "\n"


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("jsonl", help="seer-serve JSONL output")
    ap.add_argument("-o", "--out-dir",
                    help="directory for summary/CSV/SVG artifacts")
    ap.add_argument("--check", action="store_true",
                    help="validate the stream only, write nothing")
    args = ap.parse_args()

    header, intervals, steps, summary = parse_stream(args.jsonl)
    knee = (f"knee at {summary['knee_rate']:g} req/s"
            if summary["saturated"] else "no saturation")
    print(f"{args.jsonl}: {header['workload']} / {header['policy']} "
          f"({header['mode']}): {len(steps)} step(s), "
          f"{len(intervals)} interval(s), {knee}")
    if args.check:
        return 0
    if not args.out_dir:
        fail("--out-dir is required unless --check")
    os.makedirs(args.out_dir, exist_ok=True)

    summary_path = os.path.join(args.out_dir, "serve_summary.json")
    with open(summary_path, "w", encoding="utf-8") as f:
        json.dump(build_summary(args.jsonl, header, steps, summary), f,
                  indent=2)
        f.write("\n")

    csv_path = os.path.join(args.out_dir, "timeseries.csv")
    with open(csv_path, "w", encoding="utf-8", newline="") as f:
        w = csv.DictWriter(f, fieldnames=list(INTERVAL_REQUIRED),
                           extrasaction="ignore")
        w.writeheader()
        for rec in intervals:
            w.writerow({k: rec.get(k) for k in INTERVAL_REQUIRED})

    svg_path = os.path.join(args.out_dir, "serve_graph.svg")
    with open(svg_path, "w", encoding="utf-8") as f:
        f.write(build_svg(header, intervals, steps))

    print(f"wrote {summary_path}, {csv_path}, {svg_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
