#!/usr/bin/env python3
"""Unit tests for process_serve_logs.py (stdlib unittest, subprocess-driven).

Feeds synthetic seer-serve JSONL streams — valid ones and every malformation
the validator must catch — and asserts the exit codes, the diagnostics, and
the artifact set (serve_summary.json with its gate-schema marker,
timeseries.csv, serve_graph.svg). Pure python: runs in the source-only
python-tools CI job as well as by hand:

    python3 scripts/test_process_serve_logs.py -v
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "process_serve_logs.py")


def header(**over):
    rec = {"kind": "serve_header", "version": 1, "workload": "syn",
           "policy": "RTM", "mode": "deterministic", "process": "poisson",
           "workers": 2, "queue_capacity": 64, "table_words": 4096,
           "rates": [1000], "duration_s": 1.0, "warmup_s": 0.0,
           "emit_interval_ms": 100, "seed": 1}
    rec.update(over)
    return rec


def interval(t_s, **over):
    rec = {"kind": "interval", "step": 0, "t_s": t_s, "offered_rate": 1000,
           "arrivals": 100, "accepted": 98, "rejected": 2, "completed": 97,
           "queue_depth": 3, "p50_est_us": 12.0, "p99_est_us": 48.0}
    rec.update(over)
    return rec


def step(n=0, rate=1000, **over):
    rec = {"kind": "step", "step": n, "offered_rate": rate, "duration_s": 1.0,
           "arrivals": 1000, "accepted": 980, "rejected": 20,
           "rejected_fraction": 0.02, "completed": 980,
           "throughput_rps": 980.0,
           "latency_ns": {"count": 980, "mean": 15000.0, "p50": 12000,
                          "p90": 30000, "p99": 48000, "p999": 90000,
                          "max": 120000},
           "queue_depth_peak": 9, "sgl_fraction": 0.0}
    rec.update(over)
    return rec


def summary(steps=1, **over):
    rec = {"kind": "summary", "steps": steps, "knee_rate": 0.0,
           "saturated": False, "worst_p99_ns": 48000, "arrivals": 1000,
           "rejected": 20, "completed": 980}
    rec.update(over)
    return rec


def valid_stream():
    return [header(), interval(0.1), interval(0.2), step(), summary()]


class ProcessServeLogsTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def write_stream(self, records):
        path = os.path.join(self.tmp.name, "run.jsonl")
        with open(path, "w", encoding="utf-8") as f:
            for rec in records:
                f.write(rec if isinstance(rec, str) else json.dumps(rec))
                f.write("\n")
        return path

    def run_script(self, *args):
        proc = subprocess.run([sys.executable, SCRIPT, *args],
                              capture_output=True, text=True, check=False)
        return proc.returncode, proc.stdout, proc.stderr

    def test_valid_stream_checks_clean(self):
        code, out, err = self.run_script(self.write_stream(valid_stream()),
                                         "--check")
        self.assertEqual(code, 0, err)
        self.assertIn("1 step(s)", out)
        self.assertIn("no saturation", out)

    def test_artifacts_are_written(self):
        out_dir = os.path.join(self.tmp.name, "artifacts")
        code, _, err = self.run_script(self.write_stream(valid_stream()),
                                       "-o", out_dir)
        self.assertEqual(code, 0, err)
        with open(os.path.join(out_dir, "serve_summary.json"),
                  encoding="utf-8") as f:
            doc = json.load(f)
        # The marker key check_bench_regression.py dispatches on.
        self.assertEqual(doc["serve_summary"], 1)
        self.assertEqual(len(doc["steps"]), 1)
        self.assertEqual(doc["steps"][0]["p99_ns"], 48000)
        self.assertEqual(doc["steps"][0]["rejected_fraction"], 0.02)
        with open(os.path.join(out_dir, "timeseries.csv"),
                  encoding="utf-8") as f:
            lines = f.read().splitlines()
        self.assertEqual(len(lines), 3)  # header + 2 intervals
        self.assertTrue(lines[0].startswith("step,t_s,offered_rate"))
        with open(os.path.join(out_dir, "serve_graph.svg"),
                  encoding="utf-8") as f:
            svg = f.read()
        self.assertIn("<svg", svg)
        self.assertIn("traffic over time", svg)

    def test_sweep_stream_gets_the_load_curve_panel(self):
        records = [header(rates=[500, 1000]), interval(0.1),
                   step(0, rate=500), step(1, rate=1000),
                   summary(steps=2, knee_rate=1000, saturated=True)]
        out_dir = os.path.join(self.tmp.name, "artifacts")
        path = self.write_stream(records)
        code, out, err = self.run_script(path, "-o", out_dir)
        self.assertEqual(code, 0, err)
        self.assertIn("knee at 1000 req/s", out)
        with open(os.path.join(out_dir, "serve_graph.svg"),
                  encoding="utf-8") as f:
            self.assertIn("tail latency vs offered load", f.read())

    def test_missing_header_fails(self):
        code, _, err = self.run_script(
            self.write_stream([interval(0.1), step(), summary()]), "--check")
        self.assertEqual(code, 2)
        self.assertIn("serve_header", err)

    def test_bad_json_line_fails_with_line_number(self):
        records = [header(), "{not json", step(), summary()]
        code, _, err = self.run_script(self.write_stream(records), "--check")
        self.assertEqual(code, 2)
        self.assertIn(":2", err)

    def test_stream_without_steps_fails(self):
        code, _, err = self.run_script(
            self.write_stream([header(), summary(steps=0)]), "--check")
        self.assertEqual(code, 2)
        self.assertIn("no step", err)

    def test_missing_summary_fails(self):
        code, _, err = self.run_script(
            self.write_stream([header(), step()]), "--check")
        self.assertEqual(code, 2)
        self.assertIn("summary", err)

    def test_second_summary_fails(self):
        code, _, err = self.run_script(
            self.write_stream([header(), step(), summary(), summary()]),
            "--check")
        self.assertEqual(code, 2)
        self.assertIn("second summary", err)

    def test_step_count_mismatch_fails(self):
        code, _, err = self.run_script(
            self.write_stream([header(), step(), summary(steps=2)]),
            "--check")
        self.assertEqual(code, 2)
        self.assertIn("2 steps", err)

    def test_accounting_mismatch_fails(self):
        bad = step(accepted=900)  # 900 + 20 != 1000
        code, _, err = self.run_script(
            self.write_stream([header(), bad, summary()]), "--check")
        self.assertEqual(code, 2)
        self.assertIn("accepted + rejected != arrivals", err)

    def test_missing_latency_field_is_named(self):
        bad = step()
        del bad["latency_ns"]["p999"]
        code, _, err = self.run_script(
            self.write_stream([header(), bad, summary()]), "--check")
        self.assertEqual(code, 2)
        self.assertIn("p999", err)

    def test_unknown_kind_fails(self):
        records = [header(), {"kind": "mystery"}, step(), summary()]
        code, _, err = self.run_script(self.write_stream(records), "--check")
        self.assertEqual(code, 2)
        self.assertIn("mystery", err)

    def test_out_dir_is_required_without_check(self):
        code, _, err = self.run_script(self.write_stream(valid_stream()))
        self.assertEqual(code, 2)
        self.assertIn("--out-dir", err)


if __name__ == "__main__":
    unittest.main()
