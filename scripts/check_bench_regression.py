#!/usr/bin/env python3
"""Gate bench-smoke throughput against the checked-in baseline.

Each bench exhibit's smoke run (ctest label `bench_smoke`) writes a --json
file with one record per (workload, policy, threads, seed). This script
compares every record's `commits_per_mcycle` — simulated commit throughput,
deterministic per seed, so it is stable across machines and CI runners —
against bench/baseline.json and fails when any record drops by more than the
threshold (default 10%).

Usage:
  check_bench_regression.py [--baseline PATH] [--threshold 0.10]
                            [--update] SMOKE_JSON [SMOKE_JSON ...]

  --update rewrites the baseline from the given smoke files instead of
  checking (run it after an intentional perf/behaviour change and commit the
  result).

Exit codes: 0 ok, 1 regression found, 2 usage/malformed input.
"""

import argparse
import json
import os
import sys

DEFAULT_BASELINE = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "bench", "baseline.json")


def load_records(paths):
    """Maps 'exhibit|workload|policy|threads|seed' -> commits_per_mcycle."""
    records = {}
    for path in paths:
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"error: cannot read {path}: {e}", file=sys.stderr)
            sys.exit(2)
        exhibit = doc.get("exhibit", os.path.basename(path))
        for rec in doc.get("results", []):
            key = "|".join(str(rec[k])
                           for k in ("workload", "policy", "threads", "seed"))
            key = f"{exhibit}|{key}"
            if key in records:
                print(f"error: duplicate record {key}", file=sys.stderr)
                sys.exit(2)
            records[key] = float(rec["commits_per_mcycle"])
    return records


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("smoke_json", nargs="+",
                    help="--json output of a bench smoke run")
    ap.add_argument("--baseline", default=DEFAULT_BASELINE)
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="max allowed fractional drop (default 0.10)")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the baseline instead of checking")
    args = ap.parse_args()

    current = load_records(args.smoke_json)
    if not current:
        print("error: no records in smoke files", file=sys.stderr)
        return 2

    if args.update:
        doc = {"threshold": args.threshold,
               "metric": "commits_per_mcycle",
               "records": {k: current[k] for k in sorted(current)}}
        with open(args.baseline, "w", encoding="utf-8") as f:
            json.dump(doc, f, indent=2, sort_keys=False)
            f.write("\n")
        print(f"baseline updated: {len(current)} records -> {args.baseline}")
        return 0

    try:
        with open(args.baseline, encoding="utf-8") as f:
            baseline = json.load(f)["records"]
    except (OSError, json.JSONDecodeError, KeyError) as e:
        print(f"error: cannot read baseline {args.baseline}: {e}",
              file=sys.stderr)
        return 2

    regressions = []
    missing = [k for k in current if k not in baseline]
    for key, base in sorted(baseline.items()):
        if key not in current:
            # Baseline entries absent from this invocation's smoke files are
            # fine: CI may check one exhibit at a time.
            continue
        cur = current[key]
        if base > 0 and cur < base * (1.0 - args.threshold):
            regressions.append((key, base, cur))

    checked = sum(1 for k in current if k in baseline)
    print(f"checked {checked} records against {args.baseline} "
          f"(threshold {args.threshold:.0%})")
    if missing:
        # New configurations are informational: they gate nothing until the
        # baseline is regenerated with --update.
        print(f"note: {len(missing)} record(s) not in baseline, e.g. {missing[0]}")
    if checked == 0:
        print("error: no smoke record matched the baseline — wrong files, or "
              "the baseline needs --update", file=sys.stderr)
        return 2
    for key, base, cur in regressions:
        drop = 1.0 - cur / base
        print(f"REGRESSION {key}: {base:.3f} -> {cur:.3f} (-{drop:.1%})")
    if regressions:
        print(f"{len(regressions)} regression(s) beyond {args.threshold:.0%}")
        return 1
    print("ok: no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
