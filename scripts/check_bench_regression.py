#!/usr/bin/env python3
"""Gate bench-smoke throughput against the checked-in baseline.

Three input schemas are auto-detected per file:

  * Exhibit JSON (the bench runner's --json): one record per (workload,
    policy, threads, seed); the gated metric is `commits_per_mcycle` —
    simulated commit throughput, deterministic per seed, so it is stable
    across machines and CI runners. Gated against bench/baseline.json.
  * google-benchmark JSON (a top-level "benchmarks" array, e.g. micro_htm's
    --benchmark_out): one record per benchmark instance; the gated metric is
    `items_per_second`. When the run used --benchmark_repetitions, only the
    median aggregates are gated (keyed by run_name); otherwise the raw
    iteration entries are (keyed by name). Wall-clock throughput IS
    machine-dependent, so gate these against their own baseline
    (bench/baseline_htm.json) with a noise-sized tolerance, not the default.
  * Serve summary JSON (process_serve_logs.py output, marked by a
    "serve_summary" key): one record pair per rate step — `p99_ns` and
    `rejected_fraction`, keyed
    `serve|workload|policy|mode|rate{R}|{metric}`. These are LOWER-IS-BETTER
    latency/shedding metrics, so the gate inverts: a record fails when it
    rises more than the tolerance above baseline (rejected_fraction with an
    absolute floor of 0.005, so a zero baseline still tolerates stray
    sheds). Gate the deterministic-mode summary (bench/baseline_serve.json)
    — it is machine-independent; real-mode numbers are whatever the runner
    was doing that day.

Usage:
  check_bench_regression.py [--baseline PATH] [--tolerance 0.10]
                            [--allow-missing] [--update]
                            SMOKE_JSON [SMOKE_JSON ...]

  --update rewrites the baseline from the given smoke files instead of
  checking (run it after an intentional perf/behaviour change and commit the
  result).

By default the record sets must match exactly: a baseline cell absent from
the smoke files (a silently-vanished configuration) and a smoke cell absent
from the baseline (an ungated new configuration) both fail the check with a
message naming the cell. Pass --allow-missing when deliberately checking a
subset (e.g. one exhibit's smoke file at a time).

Exit codes: 0 ok, 1 regression or record-set mismatch, 2 usage/malformed
input.
"""

import argparse
import json
import os
import sys

DEFAULT_BASELINE = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "bench", "baseline.json")

KEY_FIELDS = ("workload", "policy", "threads", "seed")
METRIC = "commits_per_mcycle"
GBENCH_METRIC = "items_per_second"
# serve| records gate lower-is-better metrics; absolute slack added on top of
# the fractional tolerance, per final key segment (a 0.0 baseline fraction
# must still tolerate a handful of shed requests).
SERVE_METRICS = ("p99_ns", "rejected_fraction")
SERVE_ABS_FLOOR = {"rejected_fraction": 0.005}


def is_lower_better(key):
    return key.startswith("serve|")


def add_record(records, key, value, where):
    if key in records:
        print(f"error: duplicate record {key}", file=sys.stderr)
        sys.exit(2)
    try:
        records[key] = float(value)
    except (TypeError, ValueError):
        print(f"error: {where}: non-numeric metric: {value!r}",
              file=sys.stderr)
        sys.exit(2)


def load_exhibit(path, doc, records):
    """Bench-runner --json: 'exhibit|workload|policy|threads|seed' cells."""
    exhibit = doc.get("exhibit", os.path.basename(path))
    for i, rec in enumerate(doc.get("results", [])):
        absent = [k for k in KEY_FIELDS if k not in rec]
        if absent or METRIC not in rec:
            print(f"error: {path} results[{i}] lacks "
                  f"{absent + ([METRIC] if METRIC not in rec else [])}",
                  file=sys.stderr)
            sys.exit(2)
        key = "|".join(str(rec[k]) for k in KEY_FIELDS)
        add_record(records, f"{exhibit}|{key}", rec[METRIC],
                   f"{path} results[{i}]")


def load_gbench(path, doc, records):
    """google-benchmark --benchmark_out JSON: 'binary|instance' cells.

    With --benchmark_repetitions the file carries both the raw repetition
    entries and mean/median/stddev/cv aggregates; gate only the medians
    (keyed by run_name — the instance name without the aggregate suffix).
    Without repetitions there are no aggregates and the raw entries are the
    only, and gated, records.
    """
    exe = str((doc.get("context") or {}).get("executable", ""))
    exhibit = os.path.basename(exe) or os.path.basename(path)
    entries = doc.get("benchmarks", [])
    medians = [b for b in entries if b.get("aggregate_name") == "median"]
    chosen = medians if medians else [
        b for b in entries if not b.get("aggregate_name")]
    for i, b in enumerate(chosen):
        name = b.get("run_name") or b.get("name")
        if not name or GBENCH_METRIC not in b:
            print(f"error: {path} benchmarks[{i}] lacks "
                  f"{'a name' if not name else GBENCH_METRIC} "
                  "(pass --benchmark_counters_tabular-free output with "
                  "SetItemsProcessed benchmarks)", file=sys.stderr)
            sys.exit(2)
        add_record(records, f"{exhibit}|{name}", b[GBENCH_METRIC],
                   f"{path} benchmarks[{i}]")


def load_serve(path, doc, records):
    """process_serve_logs.py summary: 'serve|workload|policy|mode|rateR|m'."""
    prefix = "|".join(str(doc.get(k, "?"))
                      for k in ("workload", "policy", "mode"))
    steps = doc.get("steps", [])
    if not steps:
        print(f"error: {path}: serve summary has no steps", file=sys.stderr)
        sys.exit(2)
    for i, s in enumerate(steps):
        missing = [k for k in ("offered_rate",) + SERVE_METRICS if k not in s]
        if missing:
            print(f"error: {path} steps[{i}] lacks {missing}",
                  file=sys.stderr)
            sys.exit(2)
        rate = s["offered_rate"]
        for m in SERVE_METRICS:
            add_record(records, f"serve|{prefix}|rate{rate:g}|{m}", s[m],
                       f"{path} steps[{i}]")


def load_records(paths):
    """Maps gate-cell key -> throughput metric, schema per file.

    Returns (records, metrics): the cells and the set of metric names they
    came from (informational — stamped into the baseline by --update).
    """
    records = {}
    metrics = set()
    for path in paths:
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"error: cannot read {path}: {e}", file=sys.stderr)
            sys.exit(2)
        if "serve_summary" in doc:
            load_serve(path, doc, records)
            metrics.add("serve_latency")
        elif "benchmarks" in doc:
            load_gbench(path, doc, records)
            metrics.add(GBENCH_METRIC)
        else:
            load_exhibit(path, doc, records)
            metrics.add(METRIC)
    return records, metrics


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("smoke_json", nargs="+",
                    help="--json output of a bench smoke run")
    ap.add_argument("--baseline", default=DEFAULT_BASELINE)
    ap.add_argument("--tolerance", "--threshold", type=float, default=0.10,
                    dest="tolerance",
                    help="max allowed fractional drop (default 0.10)")
    ap.add_argument("--allow-missing", action="store_true",
                    help="tolerate cells present in only one of "
                         "baseline/smoke (subset checks)")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the baseline instead of checking")
    args = ap.parse_args()

    current, metrics = load_records(args.smoke_json)
    if not current:
        print("error: no records in smoke files", file=sys.stderr)
        return 2

    if args.update:
        doc = {"tolerance": args.tolerance,
               "metric": "+".join(sorted(metrics)),
               "records": {k: current[k] for k in sorted(current)}}
        with open(args.baseline, "w", encoding="utf-8") as f:
            json.dump(doc, f, indent=2, sort_keys=False)
            f.write("\n")
        print(f"baseline updated: {len(current)} records -> {args.baseline}")
        return 0

    try:
        with open(args.baseline, encoding="utf-8") as f:
            baseline = json.load(f)["records"]
    except (OSError, json.JSONDecodeError, KeyError) as e:
        print(f"error: cannot read baseline {args.baseline}: {e}",
              file=sys.stderr)
        return 2

    regressions = []
    ungated = sorted(k for k in current if k not in baseline)
    vanished = sorted(k for k in baseline if k not in current)
    for key, base in sorted(baseline.items()):
        if key not in current:
            continue
        cur = current[key]
        if is_lower_better(key):
            floor = SERVE_ABS_FLOOR.get(key.rsplit("|", 1)[-1], 0.0)
            if cur > base * (1.0 + args.tolerance) + floor:
                regressions.append((key, base, cur))
        elif base > 0 and cur < base * (1.0 - args.tolerance):
            regressions.append((key, base, cur))

    checked = sum(1 for k in current if k in baseline)
    print(f"checked {checked} records against {args.baseline} "
          f"(tolerance {args.tolerance:.0%})")
    if checked == 0:
        print("error: no smoke record matched the baseline — wrong files, or "
              "the baseline needs --update", file=sys.stderr)
        return 2

    failed = False
    for name, keys, hint in (
            ("not in baseline", ungated,
             "regenerate the baseline with --update to gate them"),
            ("missing from smoke files", vanished,
             "a configuration disappeared, or a smoke file was not passed")):
        if not keys:
            continue
        if args.allow_missing:
            print(f"note: {len(keys)} record(s) {name}, e.g. {keys[0]}")
        else:
            failed = True
            print(f"MISSING: {len(keys)} record(s) {name} ({hint}):")
            for k in keys[:10]:
                print(f"  {k}")
            if len(keys) > 10:
                print(f"  ... and {len(keys) - 10} more")

    for key, base, cur in regressions:
        if is_lower_better(key):
            rise = cur / base - 1.0 if base > 0 else float("inf")
            print(f"REGRESSION {key}: {base:.3f} -> {cur:.3f} (+{rise:.1%})")
        else:
            drop = 1.0 - cur / base
            print(f"REGRESSION {key}: {base:.3f} -> {cur:.3f} (-{drop:.1%})")
    if regressions:
        print(f"{len(regressions)} regression(s) beyond {args.tolerance:.0%}")
    if regressions or failed:
        return 1
    print("ok: no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
