#!/usr/bin/env python3
"""Tests for check_bench_regression.py (stdlib unittest; run directly or via
`python3 -m unittest` — CI runs it in the build-test job)."""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "check_bench_regression.py")


def smoke_doc(records):
    """records: list of (workload, policy, threads, seed, cpm) tuples."""
    return {
        "exhibit": "test_exhibit",
        "runs": 1,
        "results": [
            {"workload": w, "policy": p, "threads": t, "seed": s,
             "commits_per_mcycle": cpm}
            for (w, p, t, s, cpm) in records
        ],
    }


def gbench_doc(entries, executable="/build/bench/micro_htm"):
    """entries: list of benchmark-entry dicts (google-benchmark schema)."""
    return {
        "context": {"executable": executable, "num_cpus": 4},
        "benchmarks": entries,
    }


def gbench_run(name, ips, **extra):
    """One raw (non-aggregate) google-benchmark iteration entry."""
    entry = {"name": name, "run_name": name, "run_type": "iteration",
             "real_time": 1.0, "cpu_time": 1.0, "time_unit": "ns",
             "items_per_second": ips}
    entry.update(extra)
    return entry


def serve_doc(steps, workload="serve-smoke", policy="RTM",
              mode="deterministic"):
    """steps: list of (offered_rate, p99_ns, rejected_fraction) tuples."""
    return {
        "serve_summary": 1,
        "workload": workload, "policy": policy, "mode": mode,
        "process": "poisson", "workers": 2, "duration_s": 3.0, "seed": 1,
        "knee_rate": 0, "saturated": False, "worst_p99_ns": 0,
        "steps": [
            {"offered_rate": r, "throughput_rps": r, "rejected_fraction": rf,
             "completed": 100, "mean_ns": p99 / 2, "p50_ns": p99 // 4,
             "p90_ns": p99 // 2, "p99_ns": p99, "p999_ns": p99 * 2,
             "max_ns": p99 * 3, "queue_depth_peak": 4, "sgl_fraction": 0.0}
            for (r, p99, rf) in steps
        ],
    }


def gbench_median(run_name, ips):
    """A median aggregate entry, as --benchmark_repetitions emits."""
    return gbench_run(f"{run_name}_median", ips, run_name=run_name,
                      run_type="aggregate", aggregate_name="median")


class CheckBenchRegressionTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def write(self, name, doc):
        path = os.path.join(self.tmp.name, name)
        with open(path, "w", encoding="utf-8") as f:
            json.dump(doc, f)
        return path

    def run_check(self, *argv):
        proc = subprocess.run(
            [sys.executable, SCRIPT, *argv],
            capture_output=True, text=True, check=False)
        return proc.returncode, proc.stdout + proc.stderr

    def make_baseline(self, smoke_path, name="baseline.json"):
        baseline = os.path.join(self.tmp.name, name)
        code, out = self.run_check("--baseline", baseline, "--update",
                                   smoke_path)
        self.assertEqual(code, 0, out)
        return baseline

    def test_identical_records_pass(self):
        smoke = self.write("smoke.json",
                           smoke_doc([("genome", "Seer", 8, 1000, 5.0)]))
        baseline = self.make_baseline(smoke)
        code, out = self.run_check("--baseline", baseline, smoke)
        self.assertEqual(code, 0, out)
        self.assertIn("ok: no regressions", out)

    def test_regression_fails_with_message(self):
        base_smoke = self.write("base.json",
                                smoke_doc([("genome", "Seer", 8, 1000, 5.0)]))
        baseline = self.make_baseline(base_smoke)
        bad = self.write("bad.json",
                         smoke_doc([("genome", "Seer", 8, 1000, 4.0)]))
        code, out = self.run_check("--baseline", baseline, bad)
        self.assertEqual(code, 1, out)
        self.assertIn("REGRESSION", out)

    def test_tolerance_flag_loosens_gate(self):
        base_smoke = self.write("base.json",
                                smoke_doc([("genome", "Seer", 8, 1000, 5.0)]))
        baseline = self.make_baseline(base_smoke)
        bad = self.write("bad.json",
                         smoke_doc([("genome", "Seer", 8, 1000, 4.0)]))
        code, out = self.run_check("--baseline", baseline,
                                   "--tolerance", "0.5", bad)
        self.assertEqual(code, 0, out)
        # --threshold stays as a compatibility alias.
        code, out = self.run_check("--baseline", baseline,
                                   "--threshold", "0.5", bad)
        self.assertEqual(code, 0, out)

    def test_cell_missing_from_smoke_fails_clearly(self):
        base_smoke = self.write("base.json", smoke_doc([
            ("genome", "Seer", 8, 1000, 5.0),
            ("genome", "HLE", 8, 1000, 3.0),
        ]))
        baseline = self.make_baseline(base_smoke)
        partial = self.write("partial.json",
                             smoke_doc([("genome", "Seer", 8, 1000, 5.0)]))
        code, out = self.run_check("--baseline", baseline, partial)
        self.assertEqual(code, 1, out)
        self.assertIn("MISSING", out)
        self.assertIn("HLE", out)
        self.assertNotIn("Traceback", out)

    def test_cell_missing_from_baseline_fails_clearly(self):
        base_smoke = self.write("base.json",
                                smoke_doc([("genome", "Seer", 8, 1000, 5.0)]))
        baseline = self.make_baseline(base_smoke)
        extra = self.write("extra.json", smoke_doc([
            ("genome", "Seer", 8, 1000, 5.0),
            ("intruder", "Seer", 8, 1000, 2.0),
        ]))
        code, out = self.run_check("--baseline", baseline, extra)
        self.assertEqual(code, 1, out)
        self.assertIn("MISSING", out)
        self.assertIn("intruder", out)

    def test_allow_missing_restores_subset_checks(self):
        base_smoke = self.write("base.json", smoke_doc([
            ("genome", "Seer", 8, 1000, 5.0),
            ("genome", "HLE", 8, 1000, 3.0),
        ]))
        baseline = self.make_baseline(base_smoke)
        partial = self.write("partial.json",
                             smoke_doc([("genome", "Seer", 8, 1000, 5.0)]))
        code, out = self.run_check("--baseline", baseline,
                                   "--allow-missing", partial)
        self.assertEqual(code, 0, out)
        self.assertIn("note:", out)

    def test_malformed_record_is_usage_error_not_traceback(self):
        doc = smoke_doc([("genome", "Seer", 8, 1000, 5.0)])
        del doc["results"][0]["commits_per_mcycle"]
        smoke = self.write("broken.json", doc)
        code, out = self.run_check(smoke)
        self.assertEqual(code, 2, out)
        self.assertIn("commits_per_mcycle", out)
        self.assertNotIn("Traceback", out)

    def test_non_numeric_metric_is_usage_error(self):
        doc = smoke_doc([("genome", "Seer", 8, 1000, 5.0)])
        doc["results"][0]["commits_per_mcycle"] = "fast"
        smoke = self.write("broken.json", doc)
        code, out = self.run_check(smoke)
        self.assertEqual(code, 2, out)
        self.assertIn("non-numeric", out)

    def test_unreadable_smoke_file_is_usage_error(self):
        code, out = self.run_check(os.path.join(self.tmp.name, "absent.json"))
        self.assertEqual(code, 2, out)
        self.assertIn("cannot read", out)

    # ---- google-benchmark JSON (micro_htm smoke) -------------------------

    def test_gbench_roundtrip_passes(self):
        smoke = self.write("htm.json", gbench_doc([
            gbench_run("BM_MtReadHeavy/real_time/threads:4", 170e6),
            gbench_run("BM_MtWriteHeavy/real_time/threads:4", 50e6),
        ]))
        baseline = self.make_baseline(smoke, "baseline_htm.json")
        code, out = self.run_check("--baseline", baseline, smoke)
        self.assertEqual(code, 0, out)
        self.assertIn("ok: no regressions", out)

    def test_gbench_regression_fails_and_names_the_instance(self):
        base = self.write("base.json", gbench_doc(
            [gbench_run("BM_MtReadHeavy/real_time/threads:4", 170e6)]))
        baseline = self.make_baseline(base, "baseline_htm.json")
        bad = self.write("bad.json", gbench_doc(
            [gbench_run("BM_MtReadHeavy/real_time/threads:4", 100e6)]))
        code, out = self.run_check("--baseline", baseline, bad)
        self.assertEqual(code, 1, out)
        self.assertIn("REGRESSION", out)
        self.assertIn("micro_htm|BM_MtReadHeavy/real_time/threads:4", out)

    def test_gbench_prefers_median_aggregates_over_repetitions(self):
        # Repetition entries include one wild outlier; the median aggregate
        # is what must be gated (keyed by run_name, no _median suffix).
        base = self.write("base.json", gbench_doc(
            [gbench_run("BM_MtReadHeavy/threads:4", 170e6)]))
        baseline = self.make_baseline(base, "baseline_htm.json")
        reps = self.write("reps.json", gbench_doc([
            gbench_run("BM_MtReadHeavy/threads:4", 1e6),  # outlier rep
            gbench_run("BM_MtReadHeavy/threads:4", 169e6),
            gbench_run("BM_MtReadHeavy/threads:4", 171e6),
            gbench_median("BM_MtReadHeavy/threads:4", 169e6),
        ]))
        code, out = self.run_check("--baseline", baseline, reps)
        self.assertEqual(code, 0, out)
        self.assertIn("checked 1 records", out)

    def test_gbench_missing_instance_fails_clearly(self):
        base = self.write("base.json", gbench_doc([
            gbench_run("BM_MtReadHeavy/threads:4", 170e6),
            gbench_run("BM_MtReadPromoteSaturation/threads:4", 100e6),
        ]))
        baseline = self.make_baseline(base, "baseline_htm.json")
        partial = self.write("partial.json", gbench_doc(
            [gbench_run("BM_MtReadHeavy/threads:4", 170e6)]))
        code, out = self.run_check("--baseline", baseline, partial)
        self.assertEqual(code, 1, out)
        self.assertIn("MISSING", out)
        self.assertIn("BM_MtReadPromoteSaturation", out)

    def test_gbench_entry_without_items_per_second_is_usage_error(self):
        entry = gbench_run("BM_MtReadHeavy/threads:4", 170e6)
        del entry["items_per_second"]
        smoke = self.write("broken.json", gbench_doc([entry]))
        code, out = self.run_check(smoke)
        self.assertEqual(code, 2, out)
        self.assertIn("items_per_second", out)
        self.assertNotIn("Traceback", out)

    # ---- serve summary JSON (seer-serve latency gate) --------------------

    def test_serve_roundtrip_passes(self):
        smoke = self.write("serve.json", serve_doc(
            [(2000, 500_000, 0.0), (4000, 2_000_000, 0.01)]))
        baseline = self.make_baseline(smoke, "baseline_serve.json")
        code, out = self.run_check("--baseline", baseline, smoke)
        self.assertEqual(code, 0, out)
        self.assertIn("ok: no regressions", out)
        self.assertIn("checked 4 records", out)  # p99 + rejected per step

    def test_serve_p99_increase_is_a_regression(self):
        base = self.write("base.json", serve_doc([(2000, 500_000, 0.0)]))
        baseline = self.make_baseline(base, "baseline_serve.json")
        slow = self.write("slow.json", serve_doc([(2000, 700_000, 0.0)]))
        code, out = self.run_check("--baseline", baseline, slow)
        self.assertEqual(code, 1, out)
        self.assertIn("REGRESSION", out)
        self.assertIn("rate2000|p99_ns", out)
        self.assertIn("+", out)  # reported as a rise, not a drop

    def test_serve_p99_decrease_passes(self):
        # Lower latency must never trip the (inverted) gate.
        base = self.write("base.json", serve_doc([(2000, 500_000, 0.0)]))
        baseline = self.make_baseline(base, "baseline_serve.json")
        fast = self.write("fast.json", serve_doc([(2000, 100_000, 0.0)]))
        code, out = self.run_check("--baseline", baseline, fast)
        self.assertEqual(code, 0, out)

    def test_serve_rejected_fraction_floor_tolerates_stray_sheds(self):
        # Baseline sheds nothing; 0.4% shed stays under the 0.005 absolute
        # floor, 5% does not.
        base = self.write("base.json", serve_doc([(2000, 500_000, 0.0)]))
        baseline = self.make_baseline(base, "baseline_serve.json")
        few = self.write("few.json", serve_doc([(2000, 500_000, 0.004)]))
        code, out = self.run_check("--baseline", baseline, few)
        self.assertEqual(code, 0, out)
        many = self.write("many.json", serve_doc([(2000, 500_000, 0.05)]))
        code, out = self.run_check("--baseline", baseline, many)
        self.assertEqual(code, 1, out)
        self.assertIn("rejected_fraction", out)

    def test_serve_missing_rate_step_fails_clearly(self):
        base = self.write("base.json", serve_doc(
            [(2000, 500_000, 0.0), (4000, 2_000_000, 0.0)]))
        baseline = self.make_baseline(base, "baseline_serve.json")
        partial = self.write("partial.json",
                             serve_doc([(2000, 500_000, 0.0)]))
        code, out = self.run_check("--baseline", baseline, partial)
        self.assertEqual(code, 1, out)
        self.assertIn("MISSING", out)
        self.assertIn("rate4000", out)

    def test_serve_step_without_p99_is_usage_error(self):
        doc = serve_doc([(2000, 500_000, 0.0)])
        del doc["steps"][0]["p99_ns"]
        smoke = self.write("broken.json", doc)
        code, out = self.run_check(smoke)
        self.assertEqual(code, 2, out)
        self.assertIn("p99_ns", out)
        self.assertNotIn("Traceback", out)

    def test_serve_empty_steps_is_usage_error(self):
        smoke = self.write("empty.json", serve_doc([]))
        code, out = self.run_check(smoke)
        self.assertEqual(code, 2, out)
        self.assertIn("no steps", out)

    def test_gbench_and_exhibit_files_gate_together(self):
        exhibit = self.write("exhibit.json",
                             smoke_doc([("genome", "Seer", 8, 1000, 5.0)]))
        htm = self.write("htm.json", gbench_doc(
            [gbench_run("BM_MtReadHeavy/threads:4", 170e6)]))
        baseline = self.make_baseline(exhibit, "mixed.json")
        code, out = self.run_check("--baseline", baseline, "--update",
                                   exhibit, htm)
        self.assertEqual(code, 0, out)
        code, out = self.run_check("--baseline", baseline, exhibit, htm)
        self.assertEqual(code, 0, out)
        self.assertIn("checked 2 records", out)
        with open(baseline, encoding="utf-8") as f:
            doc = json.load(f)
        self.assertEqual(doc["metric"],
                         "commits_per_mcycle+items_per_second")


if __name__ == "__main__":
    unittest.main()
